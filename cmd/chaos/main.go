// Command chaos runs deterministic fault-injection campaigns against the
// RTK-Spec TRON kernel model with live invariant oracles.
//
//	chaos -seeds 1000 -workers 8          # fan a campaign across 8 workers
//	chaos -seeds 100 -corrupt -minimize   # draw corruption faults, minimize failures
//	chaos -seed 42 -job 17 -v             # replay one job verbosely
//	chaos -seed 42 -job 17 -trace t.json  # replay with a Perfetto trace
//
// Every verdict derives from (base seed, job index) alone: the summary is
// byte-identical for any -workers value, and a failing job replays exactly
// with -job. Behavior-level faults (interrupt jitter/bursts/drops, execution
// -time inflation, delayed ticks, pool exhaustion, buffer flooding) must all
// pass on a correct kernel; -corrupt adds bookkeeping-corruption faults that
// the oracles must catch — the self-test proving the oracle layer works.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/sysc"
)

func main() {
	seeds := flag.Int("seeds", 16, "campaign jobs to run")
	seed := flag.Uint64("seed", 0, "campaign base seed")
	workers := flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS; never affects results)")
	dur := flag.Duration("dur", 150*time.Millisecond, "simulated time per job")
	tasks := flag.Int("tasks", 6, "application tasks per job")
	faults := flag.Int("faults", 5, "faults per schedule")
	corrupt := flag.Bool("corrupt", false, "include corruption faults (pool leak) the oracles must catch")
	minimize := flag.Bool("minimize", false, "ddmin failing schedules to a minimal repro")
	job := flag.Int("job", -1, "replay a single job index instead of the campaign")
	traceOut := flag.String("trace", "", "with -job: stream a Perfetto trace of the replay (load at ui.perfetto.dev)")
	verbose := flag.Bool("v", false, "print fired faults and repro artifacts")
	flag.Parse()

	cfg := chaos.Config{
		Seeds:    *seeds,
		BaseSeed: *seed,
		Workers:  *workers,
		Dur:      sysc.Time(dur.Nanoseconds()) * sysc.Ns,
		Tasks:    *tasks,
		Faults:   *faults,
		Corrupt:  *corrupt,
		Minimize: *minimize,
	}

	if *traceOut != "" && *job < 0 {
		fmt.Fprintln(os.Stderr, "-trace requires -job (one replay per trace file)")
		os.Exit(2)
	}

	if *job >= 0 {
		var v chaos.Verdict
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			v, err = chaos.RunJobTrace(cfg, *job, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				os.Exit(1)
			}
			fmt.Printf("trace written to %s (load at ui.perfetto.dev)\n", *traceOut)
		} else {
			v = chaos.RunJob(cfg, *job)
		}
		r := chaos.Report{Cfg: cfg, Verdicts: []chaos.Verdict{v}}
		fmt.Print(r.Summary())
		if *verbose || !v.Pass {
			fmt.Println(v.Repro)
		}
		if !v.Pass {
			os.Exit(1)
		}
		return
	}

	wall0 := time.Now()
	report := chaos.Run(cfg)
	wall := time.Since(wall0)

	fmt.Print(report.Summary())
	fmt.Fprintf(os.Stderr, "wall: %v (%d workers)\n", wall.Round(time.Millisecond), *workers)

	failures := report.Failures()
	if *verbose {
		for _, i := range failures {
			fmt.Printf("\n--- repro for job %d (replay: chaos -seed %d -job %d", i, *seed, i)
			if *corrupt {
				fmt.Print(" -corrupt")
			}
			fmt.Print(") ---\n")
			fmt.Println(report.Verdicts[i].Repro)
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}
