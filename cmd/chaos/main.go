// Command chaos runs deterministic fault-injection campaigns against the
// RTK-Spec TRON kernel model with live invariant oracles. It is a thin flag
// shim over the unified run façade — the same run.Spec submitted to
// rtkserve produces byte-identical artifacts.
//
//	chaos -seeds 1000 -workers 8          # fan a campaign across 8 workers
//	chaos -seeds 100 -corrupt -minimize   # draw corruption faults, minimize failures
//	chaos -seed 42 -job 17 -v             # replay one job verbosely
//	chaos -seed 42 -job 17 -trace t.json  # replay with a Perfetto trace
//	chaos -seeds 1000 -timeout 30s        # wall-clock cap; partial summary on expiry
//	chaos -spec run.json                  # load a full run.Spec from disk
//	chaos -seeds 50 -gen "tasks=8,irqs=2" # fresh generated task set per job
//
// With -spec, the file provides every field and any other flag given
// explicitly on the command line overrides the corresponding spec field
// (flags win over the file; unset flags leave the file's values alone).
// With -gen, each campaign job generates a fresh synthetic task set from
// its own seed instead of running the built-in chaos application.
//
// Every verdict derives from (base seed, job index) alone: the summary is
// byte-identical for any -workers value, and a failing job replays exactly
// with -job. Behavior-level faults (interrupt jitter/bursts/drops, execution
// -time inflation, delayed ticks, pool exhaustion, buffer flooding) must all
// pass on a correct kernel; -corrupt adds bookkeeping-corruption faults that
// the oracles must catch — the self-test proving the oracle layer works.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/run"
	"repro/internal/workload"
)

func main() {
	seeds := flag.Int("seeds", 16, "campaign jobs to run")
	seed := flag.Uint64("seed", 0, "campaign base seed")
	workers := flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS; never affects results)")
	dur := flag.Duration("dur", 150*time.Millisecond, "simulated time per job")
	tasks := flag.Int("tasks", 6, "application tasks per job")
	faults := flag.Int("faults", 5, "faults per schedule")
	corrupt := flag.Bool("corrupt", false, "include corruption faults (pool leak) the oracles must catch")
	minimize := flag.Bool("minimize", false, "ddmin failing schedules to a minimal repro")
	engine := flag.String("engine", "", "T-THREAD engine: goroutine (default) or continuation")
	job := flag.Int("job", -1, "replay a single job index instead of the campaign")
	traceOut := flag.String("trace", "", "with -job: stream a Perfetto trace of the replay (load at ui.perfetto.dev)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline; on expiry completed verdicts are reported and the exit code is 1")
	verbose := flag.Bool("v", false, "print fired faults and repro artifacts")
	specPath := flag.String("spec", "", "load a full run.Spec JSON file; explicit flags override its fields")
	genFlag := flag.String("gen", "", "generate a fresh synthetic task set per job: comma-separated key=value pairs (tasks, util, sems, mutexes, mbfs, flags, irqs, pmin, pmax); empty values allowed (-gen \"\")")
	flag.Parse()

	if *traceOut != "" && *job < 0 {
		fmt.Fprintln(os.Stderr, "-trace requires -job (one replay per trace file)")
		os.Exit(2)
	}

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var spec run.Spec
	if *specPath != "" {
		var err error
		spec, err = run.LoadSpecFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if spec.Scenario == "" {
			spec.Scenario = run.ScenarioChaos
		}
		if spec.Scenario != run.ScenarioChaos {
			fmt.Fprintf(os.Stderr, "chaos: spec scenario is %q, want %q\n", spec.Scenario, run.ScenarioChaos)
			os.Exit(2)
		}
	} else {
		spec = run.Spec{Scenario: run.ScenarioChaos}
	}
	if spec.Chaos == nil {
		spec.Chaos = &run.ChaosSpec{}
	}
	cs := spec.Chaos

	// Flags given explicitly win over the spec file; without -spec this
	// reproduces the historical all-flags construction.
	if *specPath == "" || explicit["seeds"] {
		cs.Seeds = *seeds
	}
	if *specPath == "" || explicit["workers"] {
		cs.Workers = *workers
	}
	if *specPath == "" || explicit["tasks"] {
		cs.Tasks = *tasks
	}
	if *specPath == "" || explicit["faults"] {
		cs.Faults = *faults
	}
	if *specPath == "" || explicit["corrupt"] {
		cs.Corrupt = *corrupt
	}
	if *specPath == "" || explicit["minimize"] {
		cs.Minimize = *minimize
	}
	if *specPath == "" || explicit["seed"] {
		spec.Seed = *seed
	}
	if *specPath == "" || explicit["engine"] {
		spec.Engine = *engine
	}
	if *specPath == "" || explicit["dur"] {
		spec.Dur = run.Duration(*dur)
	}
	if *specPath == "" || explicit["timeout"] {
		spec.Deadline = run.Duration(*timeout)
	}
	if *job >= 0 {
		cs.Job = job
	}
	if *genFlag != "" || explicit["gen"] {
		gs, err := workload.ParseGenFlag(*genFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cs.Synthetic = gs
	}
	if len(spec.Artifacts) == 0 {
		spec.Artifacts = []string{run.ArtifactSummary, run.ArtifactRepro}
	}
	if *traceOut != "" && !hasArtifact(spec.Artifacts, run.ArtifactTrace) {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactTrace)
	}

	res, runErr := run.Execute(context.Background(), spec)
	if *traceOut != "" && runErr == nil {
		if err := os.WriteFile(*traceOut, res.Artifacts[run.ArtifactTrace], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (load at ui.perfetto.dev)\n", *traceOut)
	}

	fmt.Print(string(res.Artifacts[run.ArtifactSummary]))
	fmt.Fprintf(os.Stderr, "wall: %v (%d workers)\n", res.Stats.Wall.Std().Round(time.Millisecond), cs.Workers)

	if repro := res.Artifacts[run.ArtifactRepro]; len(repro) > 0 && (*verbose || res.Stats.Failures > 0) {
		fmt.Println()
		os.Stdout.Write(repro)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "chaos:", runErr)
		os.Exit(1)
	}
	if res.Stats.Failures > 0 {
		os.Exit(1)
	}
}

func hasArtifact(arts []string, name string) bool {
	for _, a := range arts {
		if a == name {
			return true
		}
	}
	return false
}
