// Command chaos runs deterministic fault-injection campaigns against the
// RTK-Spec TRON kernel model with live invariant oracles. It is a thin flag
// shim over the unified run façade — the same run.Spec submitted to
// rtkserve produces byte-identical artifacts.
//
//	chaos -seeds 1000 -workers 8          # fan a campaign across 8 workers
//	chaos -seeds 100 -corrupt -minimize   # draw corruption faults, minimize failures
//	chaos -seed 42 -job 17 -v             # replay one job verbosely
//	chaos -seed 42 -job 17 -trace t.json  # replay with a Perfetto trace
//	chaos -seeds 1000 -timeout 30s        # wall-clock cap; partial summary on expiry
//
// Every verdict derives from (base seed, job index) alone: the summary is
// byte-identical for any -workers value, and a failing job replays exactly
// with -job. Behavior-level faults (interrupt jitter/bursts/drops, execution
// -time inflation, delayed ticks, pool exhaustion, buffer flooding) must all
// pass on a correct kernel; -corrupt adds bookkeeping-corruption faults that
// the oracles must catch — the self-test proving the oracle layer works.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/run"
)

func main() {
	seeds := flag.Int("seeds", 16, "campaign jobs to run")
	seed := flag.Uint64("seed", 0, "campaign base seed")
	workers := flag.Int("workers", 0, "sweep workers (0 = GOMAXPROCS; never affects results)")
	dur := flag.Duration("dur", 150*time.Millisecond, "simulated time per job")
	tasks := flag.Int("tasks", 6, "application tasks per job")
	faults := flag.Int("faults", 5, "faults per schedule")
	corrupt := flag.Bool("corrupt", false, "include corruption faults (pool leak) the oracles must catch")
	minimize := flag.Bool("minimize", false, "ddmin failing schedules to a minimal repro")
	engine := flag.String("engine", "", "T-THREAD engine: goroutine (default) or continuation")
	job := flag.Int("job", -1, "replay a single job index instead of the campaign")
	traceOut := flag.String("trace", "", "with -job: stream a Perfetto trace of the replay (load at ui.perfetto.dev)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline; on expiry completed verdicts are reported and the exit code is 1")
	verbose := flag.Bool("v", false, "print fired faults and repro artifacts")
	flag.Parse()

	if *traceOut != "" && *job < 0 {
		fmt.Fprintln(os.Stderr, "-trace requires -job (one replay per trace file)")
		os.Exit(2)
	}

	cs := &run.ChaosSpec{
		Seeds:    *seeds,
		Workers:  *workers,
		Tasks:    *tasks,
		Faults:   *faults,
		Corrupt:  *corrupt,
		Minimize: *minimize,
	}
	if *job >= 0 {
		cs.Job = job
	}
	spec := run.Spec{
		Scenario:  run.ScenarioChaos,
		Seed:      *seed,
		Engine:    *engine,
		Dur:       run.Duration(*dur),
		Deadline:  run.Duration(*timeout),
		Chaos:     cs,
		Artifacts: []string{run.ArtifactSummary, run.ArtifactRepro},
	}
	if *traceOut != "" {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactTrace)
	}

	res, runErr := run.Execute(context.Background(), spec)
	if *traceOut != "" && runErr == nil {
		if err := os.WriteFile(*traceOut, res.Artifacts[run.ArtifactTrace], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (load at ui.perfetto.dev)\n", *traceOut)
	}

	fmt.Print(string(res.Artifacts[run.ArtifactSummary]))
	fmt.Fprintf(os.Stderr, "wall: %v (%d workers)\n", res.Stats.Wall.Std().Round(time.Millisecond), *workers)

	if repro := res.Artifacts[run.ArtifactRepro]; len(repro) > 0 && (*verbose || res.Stats.Failures > 0) {
		fmt.Println()
		os.Stdout.Write(repro)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "chaos:", runErr)
		os.Exit(1)
	}
	if res.Stats.Failures > 0 {
		os.Exit(1)
	}
}
