// Command serveload load-tests the rtkserve fleet in-process and records
// the serving metrics that matter for capacity planning: sustained jobs/s,
// admission latency percentiles, and the result-cache hit ratio under a
// duplicate-heavy workload. It is also a correctness harness: every
// duplicate submission's artifacts must be byte-identical to the first
// copy's, and the fleet must simulate each distinct Spec exactly once —
// the content-addressed cache and singleflight dedupe doing their job.
//
//	go run ./cmd/serveload -shards 2 -workers 2 -jobs 24 -dup 4 \
//	    -out BENCH_serve.json
//
// With -baseline, the run additionally guards jobs/s against a previous
// report within a tolerance band (CI's throughput floor).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

// Report is the schema of BENCH_serve.json.
type Report struct {
	Shards    int `json:"shards"`
	Workers   int `json:"workers"`
	Distinct  int `json:"distinct_specs"`
	Duplicate int `json:"duplicates_per_spec"`
	Submitted int `json:"submissions"`

	// JobsPerSec is sustained throughput: submissions completed per
	// second of wall clock, duplicates included (they complete from
	// cache or by coalescing, which is the point of the design).
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Admission latency: time from first POST attempt to 202, including
	// any 429 backoff.
	AdmissionP50MS float64 `json:"admission_p50_ms"`
	AdmissionP99MS float64 `json:"admission_p99_ms"`
	// CacheHitRatio is the fraction of submissions served without a
	// fresh simulation (cache hits + coalesced followers).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Simulations actually executed; correctness requires exactly one
	// per distinct Spec.
	Simulations uint64 `json:"simulations"`
}

func main() {
	shards := flag.Int("shards", 2, "in-process fleet size (1 = single replica, no router)")
	workers := flag.Int("workers", 2, "simulation workers per shard")
	queue := flag.Int("queue", 64, "submission queue depth per shard")
	jobs := flag.Int("jobs", 24, "distinct Specs in the workload")
	dup := flag.Int("dup", 4, "submissions per distinct Spec")
	conc := flag.Int("conc", 16, "concurrent submitting clients")
	out := flag.String("out", "BENCH_serve.json", "output JSON report")
	baseline := flag.String("baseline", "", "baseline report to guard jobs/s against")
	tolerance := flag.Float64("tolerance", 30, "allowed jobs/s regression below baseline, in percent")
	flag.Parse()

	rep, err := run(*shards, *workers, *queue, *jobs, *dup, *conc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	fmt.Printf("serveload: %.1f jobs/s, admission p50 %.2fms p99 %.2fms, cache hit ratio %.2f (%d sims for %d submissions)\n",
		rep.JobsPerSec, rep.AdmissionP50MS, rep.AdmissionP99MS, rep.CacheHitRatio, rep.Simulations, rep.Submitted)
	fmt.Fprintf(os.Stderr, "serveload: wrote %s\n", *out)

	if *baseline != "" {
		if err := guard(rep, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			os.Exit(1)
		}
	}
}

func run(shards, workers, queue, jobs, dup, conc int) (Report, error) {
	// Build the fleet: real servers, real executor, in-process listener.
	var handler http.Handler
	var replicas []*server.Server
	mkShard := func(name string) *server.Server {
		s := server.New(server.Config{Name: name, Workers: workers, Queue: queue})
		replicas = append(replicas, s)
		return s
	}
	if shards > 1 {
		var rs []router.Shard
		for i := 0; i < shards; i++ {
			name := fmt.Sprintf("s%d", i)
			rs = append(rs, router.Shard{Name: name, Handler: mkShard(name)})
		}
		handler = router.New(rs, 0)
	} else {
		handler = mkShard("")
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Workload: light chaos campaigns — deterministic, cacheable, a few
	// milliseconds of simulation each — every distinct seed repeated dup
	// times, shuffled so duplicates interleave and exercise both the
	// cache (late duplicates) and singleflight (concurrent ones).
	type submission struct {
		spec string
		seed int
	}
	var work []submission
	for seed := 0; seed < jobs; seed++ {
		spec := fmt.Sprintf(`{"scenario":"chaos","dur":"40ms","seed":%d,`+
			`"chaos":{"seeds":2,"tasks":4,"faults":3},"artifacts":["summary.txt"]}`, seed)
		for d := 0; d < dup; d++ {
			work = append(work, submission{spec, seed})
		}
	}
	rand.New(rand.NewSource(1)).Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })

	var (
		mu         sync.Mutex
		admissions []time.Duration
		idsBySeed  = make(map[int][]string)
		firstErr   error
	)
	client := ts.Client()
	start := time.Now()
	ch := make(chan submission)
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				t0 := time.Now()
				id, err := submitWithRetry(client, ts.URL, s.spec)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				admissions = append(admissions, lat)
				idsBySeed[s.seed] = append(idsBySeed[s.seed], id)
				mu.Unlock()
			}
		}()
	}
	for _, s := range work {
		ch <- s
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return Report{}, firstErr
	}

	// Wait for every job to finish, then stop the clock: throughput is
	// submissions completed per wall second.
	for _, ids := range idsBySeed {
		for _, id := range ids {
			if err := waitDone(client, ts.URL, id); err != nil {
				return Report{}, err
			}
		}
	}
	wall := time.Since(start)

	// Correctness gate 1: duplicates are byte-identical to their first copy.
	for seed, ids := range idsBySeed {
		var first []byte
		for i, id := range ids {
			b, err := fetchArtifact(client, ts.URL, id, "summary.txt")
			if err != nil {
				return Report{}, err
			}
			if i == 0 {
				first = b
			} else if !bytes.Equal(first, b) {
				return Report{}, fmt.Errorf("seed %d: duplicate %s differs from first copy (%d vs %d bytes)",
					seed, id, len(first), len(b))
			}
		}
	}

	// Aggregate counters: single replica exposes server varz; the fleet
	// exposes the router's totals.
	submitted, deduped, sims, err := counters(client, ts.URL, shards > 1)
	if err != nil {
		return Report{}, err
	}
	total := jobs * dup
	if submitted != uint64(total) {
		return Report{}, fmt.Errorf("fleet accepted %d of %d submissions", submitted, total)
	}
	// Correctness gate 2: exactly one simulation per distinct Spec.
	if sims != uint64(jobs) {
		return Report{}, fmt.Errorf("fleet ran %d simulations for %d distinct specs — cache/dedupe broken", sims, jobs)
	}

	sort.Slice(admissions, func(i, j int) bool { return admissions[i] < admissions[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(admissions)-1))
		return float64(admissions[i].Microseconds()) / 1000
	}
	rep := Report{
		Shards:         shards,
		Workers:        workers,
		Distinct:       jobs,
		Duplicate:      dup,
		Submitted:      total,
		JobsPerSec:     float64(total) / wall.Seconds(),
		AdmissionP50MS: pct(0.50),
		AdmissionP99MS: pct(0.99),
		CacheHitRatio:  float64(deduped) / float64(total),
		Simulations:    sims,
	}
	return rep, nil
}

// submitWithRetry POSTs the spec, backing off on 429/503 until accepted.
func submitWithRetry(client *http.Client, base, spec string) (string, error) {
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return "", err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var v server.JobView
			if err := json.Unmarshal(body, &v); err != nil {
				return "", err
			}
			return v.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt > 2000 {
				return "", fmt.Errorf("submission never admitted: %s", body)
			}
			time.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", fmt.Errorf("submit: %d: %s", resp.StatusCode, body)
		}
	}
}

func waitDone(client *http.Client, base, id string) error {
	for i := 0; i < 6000; i++ {
		resp, err := client.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("job %s: %d: %s", id, resp.StatusCode, body)
		}
		var v server.JobView
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		switch v.State {
		case server.StateDone:
			return nil
		case server.StateFailed, server.StateCancelled:
			return fmt.Errorf("job %s: %s (%v)", id, v.State, v.Error)
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("job %s never finished", id)
}

func fetchArtifact(client *http.Client, base, id, name string) ([]byte, error) {
	resp, err := client.Get(base + "/api/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("artifact %s/%s: %d: %s", id, name, resp.StatusCode, body)
	}
	return body, nil
}

// counters pulls (accepted submissions, deduped submissions, simulations
// run) from the fleet's varz.
func counters(client *http.Client, base string, fleet bool) (submitted, deduped, sims uint64, err error) {
	resp, err := client.Get(base + "/varz")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("varz: %d: %s", resp.StatusCode, body)
	}
	if fleet {
		var v router.Varz
		if err := json.Unmarshal(body, &v); err != nil {
			return 0, 0, 0, err
		}
		t := v.Totals
		return t.JobsSubmitted, t.JobsFromCache + t.JobsCoalesced,
			t.JobsSubmitted - t.JobsFromCache - t.JobsCoalesced, nil
	}
	var v server.Varz
	if err := json.Unmarshal(body, &v); err != nil {
		return 0, 0, 0, err
	}
	return v.JobsSubmitted, v.JobsFromCache + v.JobsCoalesced,
		v.JobsSubmitted - v.JobsFromCache - v.JobsCoalesced, nil
}

// guard enforces the tolerance-banded throughput floor against a previous
// report. Correctness gates (identical duplicates, one sim per Spec) are
// unconditional in run(); this only bands the wall-clock metric.
func guard(rep Report, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	floor := base.JobsPerSec * (1 - tolerance/100)
	if rep.JobsPerSec < floor {
		return fmt.Errorf("regression: %.1f jobs/s, baseline %.1f (floor %.1f at -tolerance %g%%)",
			rep.JobsPerSec, base.JobsPerSec, floor, tolerance)
	}
	fmt.Fprintf(os.Stderr, "serveload: %.1f jobs/s vs baseline %.1f ok (floor %.1f)\n",
		rep.JobsPerSec, base.JobsPerSec, floor)
	return nil
}
