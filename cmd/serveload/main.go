// Command serveload load-tests the rtkserve fleet in-process and records
// the serving metrics that matter for capacity planning: sustained jobs/s,
// admission latency percentiles, and the result-cache hit ratio under a
// duplicate-heavy workload. It is also a correctness harness: every
// duplicate submission's artifacts must be byte-identical to the first
// copy's, and the fleet must simulate each distinct Spec exactly once —
// the content-addressed cache and singleflight dedupe doing their job.
// All HTTP goes through internal/client, the same package external
// tooling uses, so the harness exercises the public client surface too.
//
//	go run ./cmd/serveload -shards 2 -workers 2 -jobs 24 -dup 4 \
//	    -out BENCH_serve.json
//
// With -baseline, the run additionally guards jobs/s against a previous
// report within a tolerance band (CI's throughput floor).
//
// With -stream, the run appends a streaming benchmark: one long-trace
// synthetic job executed buffered and then streamed (?stream=1 + SSE
// events), recording stream-to-first-byte latency and the peak live heap
// of each mode. Its gates are structural, not timing-banded: streamed and
// buffered bytes must be identical, the first streamed byte must arrive
// before the job finishes, and the streamed run's peak live heap must sit
// at least half a trace below the buffered run's — the buffered server
// retains O(trace), the streaming server only the spill window.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/router"
	"repro/internal/server"
)

// Report is the schema of BENCH_serve.json.
type Report struct {
	Shards    int `json:"shards"`
	Workers   int `json:"workers"`
	Distinct  int `json:"distinct_specs"`
	Duplicate int `json:"duplicates_per_spec"`
	Submitted int `json:"submissions"`

	// JobsPerSec is sustained throughput: submissions completed per
	// second of wall clock, duplicates included (they complete from
	// cache or by coalescing, which is the point of the design).
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Admission latency: time from first POST attempt to 202, including
	// any 429 backoff.
	AdmissionP50MS float64 `json:"admission_p50_ms"`
	AdmissionP99MS float64 `json:"admission_p99_ms"`
	// CacheHitRatio is the fraction of submissions served without a
	// fresh simulation (cache hits + coalesced followers).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Simulations actually executed; correctness requires exactly one
	// per distinct Spec.
	Simulations uint64 `json:"simulations"`

	// Stream is the -stream benchmark section (absent without the flag).
	Stream *StreamReport `json:"stream,omitempty"`
}

// StreamReport records the streamed-vs-buffered memory and latency shape
// of one long-trace job. The live-heap peaks are sampled after forced GC,
// so they measure retained bytes, not allocation churn: both legs carry
// the same constant simulator state, and on top of it buffered retains
// the whole trace while streamed retains only the spill window.
type StreamReport struct {
	TraceBytes        int64   `json:"trace_bytes"`
	StreamWindowBytes int     `json:"stream_window_bytes"`
	FirstByteMS       float64 `json:"stream_first_byte_ms"`
	StreamJobMS       float64 `json:"stream_job_wall_ms"`
	BufferedJobMS     float64 `json:"buffered_job_wall_ms"`
	StreamPeakLive    uint64  `json:"stream_peak_live_bytes"`
	BufferedPeakLive  uint64  `json:"buffered_peak_live_bytes"`
	ByteIdentical     bool    `json:"byte_identical"`
}

func main() {
	shards := flag.Int("shards", 2, "in-process fleet size (1 = single replica, no router)")
	workers := flag.Int("workers", 2, "simulation workers per shard")
	queue := flag.Int("queue", 64, "submission queue depth per shard")
	jobs := flag.Int("jobs", 24, "distinct Specs in the workload")
	dup := flag.Int("dup", 4, "submissions per distinct Spec")
	conc := flag.Int("conc", 16, "concurrent submitting clients")
	stream := flag.Bool("stream", false, "append the streaming benchmark (long-trace job, buffered vs streamed)")
	out := flag.String("out", "BENCH_serve.json", "output JSON report")
	baseline := flag.String("baseline", "", "baseline report to guard jobs/s against")
	tolerance := flag.Float64("tolerance", 30, "allowed jobs/s regression below baseline, in percent")
	flag.Parse()

	rep, err := run(*shards, *workers, *queue, *jobs, *dup, *conc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	if *stream {
		sr, err := streamBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload: stream:", err)
			os.Exit(1)
		}
		rep.Stream = sr
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	fmt.Printf("serveload: %.1f jobs/s, admission p50 %.2fms p99 %.2fms, cache hit ratio %.2f (%d sims for %d submissions)\n",
		rep.JobsPerSec, rep.AdmissionP50MS, rep.AdmissionP99MS, rep.CacheHitRatio, rep.Simulations, rep.Submitted)
	if rep.Stream != nil {
		s := rep.Stream
		fmt.Printf("serveload: stream: %.1f MiB trace, first byte %.1fms into a %.0fms job, live heap %.2f MiB streamed vs %.2f MiB buffered\n",
			float64(s.TraceBytes)/(1<<20), s.FirstByteMS, s.StreamJobMS,
			float64(s.StreamPeakLive)/(1<<20), float64(s.BufferedPeakLive)/(1<<20))
	}
	fmt.Fprintf(os.Stderr, "serveload: wrote %s\n", *out)

	if *baseline != "" {
		if err := guard(rep, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			os.Exit(1)
		}
	}
}

func run(shards, workers, queue, jobs, dup, conc int) (Report, error) {
	ctx := context.Background()
	// Build the fleet: real servers, real executor, in-process listener.
	var handler http.Handler
	var replicas []*server.Server
	mkShard := func(name string) *server.Server {
		s := server.New(server.Config{Name: name, Workers: workers, Queue: queue})
		replicas = append(replicas, s)
		return s
	}
	if shards > 1 {
		var rs []router.Shard
		for i := 0; i < shards; i++ {
			name := fmt.Sprintf("s%d", i)
			rs = append(rs, router.Shard{Name: name, Handler: mkShard(name)})
		}
		handler = router.New(rs, 0)
	} else {
		handler = mkShard("")
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := client.New(ts.URL)
	c.HTTP = ts.Client()
	c.SubmitAttempts = 4000

	// Workload: light chaos campaigns — deterministic, cacheable, a few
	// milliseconds of simulation each — every distinct seed repeated dup
	// times, shuffled so duplicates interleave and exercise both the
	// cache (late duplicates) and singleflight (concurrent ones).
	type submission struct {
		spec string
		seed int
	}
	var work []submission
	for seed := 0; seed < jobs; seed++ {
		spec := fmt.Sprintf(`{"scenario":"chaos","dur":"40ms","seed":%d,`+
			`"chaos":{"seeds":2,"tasks":4,"faults":3},"artifacts":["summary.txt"]}`, seed)
		for d := 0; d < dup; d++ {
			work = append(work, submission{spec, seed})
		}
	}
	rand.New(rand.NewSource(1)).Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })

	var (
		mu         sync.Mutex
		admissions []time.Duration
		idsBySeed  = make(map[int][]string)
		firstErr   error
	)
	start := time.Now()
	ch := make(chan submission)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				t0 := time.Now()
				v, err := c.SubmitJSON(ctx, []byte(s.spec))
				lat := time.Since(t0)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				admissions = append(admissions, lat)
				idsBySeed[s.seed] = append(idsBySeed[s.seed], v.ID)
				mu.Unlock()
			}
		}()
	}
	for _, s := range work {
		ch <- s
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return Report{}, firstErr
	}

	// Wait for every job to finish, then stop the clock: throughput is
	// submissions completed per wall second.
	for _, ids := range idsBySeed {
		for _, id := range ids {
			v, err := c.Wait(ctx, id, time.Millisecond)
			if err != nil {
				return Report{}, err
			}
			if v.State != server.StateDone {
				return Report{}, fmt.Errorf("job %s: %s (%v)", id, v.State, v.Error)
			}
		}
	}
	wall := time.Since(start)

	// Correctness gate 1: duplicates are byte-identical to their first copy.
	for seed, ids := range idsBySeed {
		var first []byte
		for i, id := range ids {
			b, err := c.Artifact(ctx, id, "summary.txt")
			if err != nil {
				return Report{}, err
			}
			if i == 0 {
				first = b
			} else if !bytes.Equal(first, b) {
				return Report{}, fmt.Errorf("seed %d: duplicate %s differs from first copy (%d vs %d bytes)",
					seed, id, len(first), len(b))
			}
		}
	}

	// Aggregate counters: single replica exposes server varz; the fleet
	// exposes the router's totals.
	submitted, deduped, sims, err := counters(ts.Client(), ts.URL, shards > 1)
	if err != nil {
		return Report{}, err
	}
	total := jobs * dup
	if submitted != uint64(total) {
		return Report{}, fmt.Errorf("fleet accepted %d of %d submissions", submitted, total)
	}
	// Correctness gate 2: exactly one simulation per distinct Spec.
	if sims != uint64(jobs) {
		return Report{}, fmt.Errorf("fleet ran %d simulations for %d distinct specs — cache/dedupe broken", sims, jobs)
	}

	sort.Slice(admissions, func(i, j int) bool { return admissions[i] < admissions[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(admissions)-1))
		return float64(admissions[i].Microseconds()) / 1000
	}
	rep := Report{
		Shards:         shards,
		Workers:        workers,
		Distinct:       jobs,
		Duplicate:      dup,
		Submitted:      total,
		JobsPerSec:     float64(total) / wall.Seconds(),
		AdmissionP50MS: pct(0.50),
		AdmissionP99MS: pct(0.99),
		CacheHitRatio:  float64(deduped) / float64(total),
		Simulations:    sims,
	}
	return rep, nil
}

// streamWindow is the spill window of the benchmark server, deliberately
// tiny next to the ~5 MiB trace so O(window) and O(trace) are two orders
// of magnitude apart.
const streamWindow = 64 << 10

// streamSpec is the long-trace job: a 4s synthetic sim producing a
// multi-MiB Perfetto trace in under 100ms of wall clock.
const streamSpec = `{"scenario":"synthetic","dur":"8s","seed":5,` +
	`"synthetic":{"gen":{"tasks":10,"util":0.7,"interrupts":2}},` +
	`"artifacts":["trace.json","metrics.json"]%s}`

// streamBench runs the long-trace job streamed and then buffered against
// a single replica with caching off (so the buffered duplicate really
// simulates) and materialization off (so the streamed trace stays
// ring-backed — the O(1)-memory path under test).
func streamBench() (*StreamReport, error) {
	ctx := context.Background()
	srv := server.New(server.Config{
		Workers:           1,
		DisableCache:      true,
		StreamWindow:      streamWindow,
		MaxInlineArtifact: -1,
	})
	defer srv.Shutdown(ctx)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)
	c.HTTP = ts.Client()

	rep := &StreamReport{StreamWindowBytes: streamWindow}

	// Streamed leg: submit, consume the live trace feed hashing
	// incrementally (the client stays O(1) too), then drive the SSE event
	// feed to its terminal frame.
	stopSample, heap0 := sampleLiveHeap()
	t0 := time.Now()
	v, err := c.SubmitJSON(ctx, []byte(fmt.Sprintf(streamSpec, `,"stream":true`)))
	if err != nil {
		return nil, err
	}
	rc, err := c.StreamArtifact(ctx, v.ID, "trace.json")
	if err != nil {
		return nil, err
	}
	sh := sha256.New()
	var streamedLen int64
	buf := make([]byte, 32<<10)
	first := true
	for {
		n, err := rc.Read(buf)
		if n > 0 {
			if first {
				rep.FirstByteMS = float64(time.Since(t0).Microseconds()) / 1000
				first = false
			}
			sh.Write(buf[:n])
			streamedLen += int64(n)
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			rc.Close()
			return nil, fmt.Errorf("streamed read: %w", err)
		}
	}
	rc.Close()
	es, err := c.Events(ctx, v.ID, 0)
	if err != nil {
		return nil, err
	}
	var last server.Event
	for {
		e, err := es.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			es.Close()
			return nil, err
		}
		last = e
	}
	es.Close()
	if !last.Terminal || last.State != server.StateDone {
		return nil, fmt.Errorf("streamed job ended %s (%v)", last.State, last.Error)
	}
	rep.StreamJobMS = float64(time.Since(t0).Microseconds()) / 1000
	rep.StreamPeakLive = stopSample() - heap0

	// Buffered leg: same Spec without the stream flag, artifact hashed
	// through a reader so only the server holds the full trace.
	stopSample, heap0 = sampleLiveHeap()
	t1 := time.Now()
	bv, err := c.SubmitJSON(ctx, []byte(fmt.Sprintf(streamSpec, "")))
	if err != nil {
		return nil, err
	}
	if bv, err = c.Wait(ctx, bv.ID, time.Millisecond); err != nil {
		return nil, err
	}
	if bv.State != server.StateDone {
		return nil, fmt.Errorf("buffered job ended %s (%v)", bv.State, bv.Error)
	}
	rep.BufferedJobMS = float64(time.Since(t1).Microseconds()) / 1000
	brc, err := c.ArtifactReader(ctx, bv.ID, "trace.json")
	if err != nil {
		return nil, err
	}
	bh := sha256.New()
	bufferedLen, err := io.Copy(bh, brc)
	brc.Close()
	if err != nil {
		return nil, err
	}
	rep.BufferedPeakLive = stopSample() - heap0
	rep.TraceBytes = bufferedLen

	// Gates — all structural. Byte identity first: streaming must not
	// change a single byte of the deterministic artifact.
	rep.ByteIdentical = streamedLen == bufferedLen && bytes.Equal(sh.Sum(nil), bh.Sum(nil))
	if !rep.ByteIdentical {
		return nil, fmt.Errorf("streamed trace (%d bytes) != buffered trace (%d bytes)", streamedLen, bufferedLen)
	}
	if rep.FirstByteMS >= rep.StreamJobMS {
		return nil, fmt.Errorf("first streamed byte at %.1fms, after the job finished (%.1fms) — nothing streamed live",
			rep.FirstByteMS, rep.StreamJobMS)
	}
	if rep.TraceBytes < 16*streamWindow {
		return nil, fmt.Errorf("trace %d bytes is too small next to the %d-byte window to demonstrate O(1) memory",
			rep.TraceBytes, streamWindow)
	}
	// Memory shape. Both legs carry the same constant simulator state (a
	// few MiB regardless of Dur — measured flat from 4s to 8s), so the
	// O(trace)-vs-O(window) claim is about the artifact on top of it: the
	// buffered leg must retain the whole trace (the Result held in the job
	// table — its peak is at least the trace), and the streamed leg must
	// not (its peak stays at least half a trace below the buffered one).
	// Both gates are structural with wide margins, not timing bands.
	if rep.BufferedPeakLive < uint64(rep.TraceBytes)*3/4 {
		return nil, fmt.Errorf("buffered live heap grew only %d bytes for a %d-byte trace — measurement broken",
			rep.BufferedPeakLive, rep.TraceBytes)
	}
	if rep.StreamPeakLive+uint64(rep.TraceBytes)/2 > rep.BufferedPeakLive {
		return nil, fmt.Errorf("streamed live heap %d vs buffered %d for a %d-byte trace — streaming retained the trace",
			rep.StreamPeakLive, rep.BufferedPeakLive, rep.TraceBytes)
	}
	return rep, nil
}

// sampleLiveHeap samples peak live heap (HeapAlloc after forced GC) in
// the background until the returned stop function is called; stop
// returns the peak, and the second return is the post-GC baseline to
// subtract. Forcing GC each sample makes the number retained bytes —
// exactly the O(trace)-vs-O(window) quantity — rather than churn.
func sampleLiveHeap() (stop func() uint64, baseline uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline = ms.HeapAlloc
	peak := baseline
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
			}
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}()
	return func() uint64 {
		close(done)
		<-finished
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		return peak
	}, baseline
}

// counters pulls (accepted submissions, deduped submissions, simulations
// run) from the fleet's varz.
func counters(hc *http.Client, base string, fleet bool) (submitted, deduped, sims uint64, err error) {
	resp, err := hc.Get(base + "/varz")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("varz: %d: %s", resp.StatusCode, body)
	}
	if fleet {
		var v router.Varz
		if err := json.Unmarshal(body, &v); err != nil {
			return 0, 0, 0, err
		}
		t := v.Totals
		return t.JobsSubmitted, t.JobsFromCache + t.JobsCoalesced,
			t.JobsSubmitted - t.JobsFromCache - t.JobsCoalesced, nil
	}
	var v server.Varz
	if err := json.Unmarshal(body, &v); err != nil {
		return 0, 0, 0, err
	}
	return v.JobsSubmitted, v.JobsFromCache + v.JobsCoalesced,
		v.JobsSubmitted - v.JobsFromCache - v.JobsCoalesced, nil
}

// guard enforces the tolerance-banded throughput floor against a previous
// report. Correctness gates (identical duplicates, one sim per Spec,
// stream byte identity and memory shape) are unconditional in run() and
// streamBench(); this only bands the wall-clock metric.
func guard(rep Report, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	floor := base.JobsPerSec * (1 - tolerance/100)
	if rep.JobsPerSec < floor {
		return fmt.Errorf("regression: %.1f jobs/s, baseline %.1f (floor %.1f at -tolerance %g%%)",
			rep.JobsPerSec, base.JobsPerSec, floor, tolerance)
	}
	fmt.Fprintf(os.Stderr, "serveload: %.1f jobs/s vs baseline %.1f ok (floor %.1f)\n",
		rep.JobsPerSec, base.JobsPerSec, floor)
	return nil
}
