// Command benchjson converts `go test -bench` output on stdin into a JSON
// record of custom benchmark metrics, so the performance trajectory of the
// simulation engine can be tracked across PRs:
//
//	go test -run '^$' -bench BenchmarkTable2CoSimSpeed -benchtime 2s . \
//	    | go run ./cmd/benchjson -metric simsec/s -out BENCH_sysc.json
//
// Stdin is echoed through to stdout, so the harness still shows the live
// benchmark listing while capturing the JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/profiling"
)

// Report is the schema of the emitted JSON file.
type Report struct {
	// Metric is the custom unit captured per configuration.
	Metric string `json:"metric"`
	// Configs maps "Benchmark/sub/config" (GOMAXPROCS suffix stripped) to
	// the metric value.
	Configs map[string]float64 `json:"configs"`
	// NsPerOp maps the same keys to the wall nanoseconds per iteration.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	metric := flag.String("metric", "simsec/s", "custom metric unit to capture")
	out := flag.String("out", "BENCH_sysc.json", "output JSON file")
	baseline := flag.String("baseline", "", "baseline JSON to guard against: exit 1 if any shared config regresses")
	tolerance := flag.Float64("tolerance", 5, "allowed regression below the baseline metric, in percent")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	rep := Report{
		Metric:  *metric,
		Configs: map[string]float64{},
		NsPerOp: map[string]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case *metric:
				rep.Configs[name] = v
			case "ns/op":
				rep.NsPerOp[name] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Configs) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no %q metrics found on stdin\n", *metric)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d configs to %s\n", len(rep.Configs), *out)

	if *baseline != "" {
		if err := guard(rep, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// guard compares the captured metric against a baseline report: any config
// present in both whose metric falls more than tolerance percent below the
// baseline value fails the run. Higher metric = better (simsec/s).
func guard(rep Report, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	checked := 0
	for name, b := range base.Configs {
		v, ok := rep.Configs[name]
		if !ok {
			continue
		}
		checked++
		floor := b * (1 - tolerance/100)
		if v < floor {
			return fmt.Errorf("regression: %s %s = %.1f, baseline %.1f (floor %.1f at -tolerance %g%%)",
				name, rep.Metric, v, b, floor, tolerance)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s %s = %.1f vs baseline %.1f ok\n",
			name, rep.Metric, v, b)
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s shares no configs with this run", path)
	}
	return nil
}
