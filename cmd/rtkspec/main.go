// Command rtkspec runs the RTOS-centric co-simulator on the case-study
// system: RTK-Spec TRON + i8051 BFM + GUI widgets + the video game. It is a
// thin flag shim over the unified run façade — the same run.Spec submitted
// to rtkserve produces byte-identical artifacts.
//
//	rtkspec -dur 1s                 # animate mode, speed + distribution
//	rtkspec -step -dur 100ms        # step mode: per-tick GANTT trace
//	rtkspec -ds                     # dump the T-Kernel/DS listing at the end
//	rtkspec -vcd wave.vcd           # probe BFM signals into a VCD file
//	rtkspec -trace out.json         # stream a Perfetto/Chrome trace
//	rtkspec -metrics report.json    # per-task latency/wait/CET-CEE report
//	rtkspec -gui=false -frame 50ms  # sweep the Table 2 knobs by hand
//	rtkspec -timeout 10s            # wall-clock cap; exits 1 on expiry
//	rtkspec -cpuprofile cpu.out -memprofile mem.out  # pprof the run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/profiling"
	"repro/internal/run"
)

func main() {
	dur := flag.Duration("dur", time.Second, "simulated duration")
	step := flag.Bool("step", false, "step mode: advance tick by tick and render the trace")
	ds := flag.Bool("ds", false, "print the T-Kernel/DS listing at the end")
	gui := flag.Bool("gui", true, "model GUI widget overhead")
	frame := flag.Duration("frame", 10*time.Millisecond, "LCD frame period (widget-driving BFM access)")
	tick := flag.Duration("tick", 0, "kernel tick period (0 = model default, 1ms)")
	tickless := flag.Bool("tickless", true, "fast-forward the clock across provably idle ticks")
	idleSleep := flag.Duration("idle-sleep", 0, "make the idle task sleep in tk_dly_tsk per loop (0 = busy idle)")
	vcdOut := flag.String("vcd", "", "write a VCD waveform of BFM signals")
	traceOut := flag.String("trace", "", "stream a Perfetto/Chrome trace-event JSON file (load at ui.perfetto.dev)")
	metricsOut := flag.String("metrics", "", "write a per-task scheduling-metrics JSON report")
	seed := flag.Uint64("seed", 0, "seed the synthetic user's key presses (0 = fixed legacy pattern)")
	engine := flag.String("engine", "", "T-THREAD engine: goroutine (default) or continuation")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline; on expiry the run stops at a quiescent point and exits 1")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	spec := run.Spec{
		Dur:       run.Duration(*dur),
		Seed:      *seed,
		Engine:    *engine,
		Deadline:  run.Duration(*timeout),
		GUI:       gui,
		Frame:     run.Duration(*frame),
		Tick:      run.Duration(*tick),
		Tickless:  tickless,
		Step:      *step,
		IdleSleep: run.Duration(*idleSleep),
		Artifacts: []string{run.ArtifactConsole},
	}
	if *step {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactGantt)
	}
	if *ds {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactDS)
	}
	if *vcdOut != "" {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactVCD)
	}
	if *traceOut != "" {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactTrace)
	}
	if *metricsOut != "" {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactMetrics)
	}

	res, runErr := run.Execute(context.Background(), spec)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", runErr)
		os.Exit(1)
	}

	st := res.Stats
	fmt.Printf("RTK-Spec TRON co-simulation: S=%v R=%v S/R=%.2f mode=%s\n",
		st.SimTime.Std(), st.Wall.Std().Round(time.Millisecond), st.SimPerWall,
		map[bool]string{true: "step", false: "animate"}[*step])
	os.Stdout.Write(res.Artifacts[run.ArtifactConsole])

	if *step {
		fmt.Println("execution time/energy trace (first 100 ms):")
		os.Stdout.Write(res.Artifacts[run.ArtifactGantt])
	}
	if *ds {
		fmt.Println()
		os.Stdout.Write(res.Artifacts[run.ArtifactDS])
	}
	if *vcdOut != "" {
		if err := os.WriteFile(*vcdOut, res.Artifacts[run.ArtifactVCD], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwaveform: %d changes written to %s\n", st.VCDChanges, *vcdOut)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, res.Artifacts[run.ArtifactTrace], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events written to %s (load at ui.perfetto.dev)\n", st.TraceEvents, *traceOut)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, res.Artifacts[run.ArtifactMetrics], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics: per-task report written to %s\n", *metricsOut)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
