// Command rtkspec runs the RTOS-centric co-simulator on the case-study
// system: RTK-Spec TRON + i8051 BFM + GUI widgets + the video game. It is a
// thin flag shim over the unified run façade — the same run.Spec submitted
// to rtkserve produces byte-identical artifacts.
//
//	rtkspec -dur 1s                 # animate mode, speed + distribution
//	rtkspec -step -dur 100ms        # step mode: per-tick GANTT trace
//	rtkspec -ds                     # dump the T-Kernel/DS listing at the end
//	rtkspec -vcd wave.vcd           # probe BFM signals into a VCD file
//	rtkspec -trace out.json         # stream a Perfetto/Chrome trace
//	rtkspec -metrics report.json    # per-task latency/wait/CET-CEE report
//	rtkspec -gui=false -frame 50ms  # sweep the Table 2 knobs by hand
//	rtkspec -timeout 10s            # wall-clock cap; exits 1 on expiry
//	rtkspec -spec run.json          # load a full run.Spec (any scenario)
//	rtkspec -gen "tasks=8,util=0.7" # run a generated synthetic task set
//	rtkspec -cpuprofile cpu.out -memprofile mem.out  # pprof the run
//
// With -spec, the file provides every field and any other flag given
// explicitly on the command line overrides the corresponding spec field
// (flags win over the file; unset flags leave the file's values alone).
// Output flags (-trace, -metrics, -vcd, -ds, -step, -taskset) also append
// their artifact to the spec's artifact list.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/profiling"
	"repro/internal/run"
	"repro/internal/workload"
)

func main() {
	dur := flag.Duration("dur", time.Second, "simulated duration")
	step := flag.Bool("step", false, "step mode: advance tick by tick and render the trace")
	ds := flag.Bool("ds", false, "print the T-Kernel/DS listing at the end")
	gui := flag.Bool("gui", true, "model GUI widget overhead")
	frame := flag.Duration("frame", 10*time.Millisecond, "LCD frame period (widget-driving BFM access)")
	tick := flag.Duration("tick", 0, "kernel tick period (0 = model default, 1ms)")
	tickless := flag.Bool("tickless", true, "fast-forward the clock across provably idle ticks")
	idleSleep := flag.Duration("idle-sleep", 0, "make the idle task sleep in tk_dly_tsk per loop (0 = busy idle)")
	vcdOut := flag.String("vcd", "", "write a VCD waveform of BFM signals")
	traceOut := flag.String("trace", "", "stream a Perfetto/Chrome trace-event JSON file (load at ui.perfetto.dev)")
	metricsOut := flag.String("metrics", "", "write a per-task scheduling-metrics JSON report")
	seed := flag.Uint64("seed", 0, "seed the synthetic user's key presses (0 = fixed legacy pattern)")
	engine := flag.String("engine", "", "T-THREAD engine: goroutine (default) or continuation")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline; on expiry the run stops at a quiescent point and exits 1")
	specPath := flag.String("spec", "", "load a full run.Spec JSON file; explicit flags override its fields")
	genFlag := flag.String("gen", "", "run a generated synthetic task set: comma-separated key=value pairs (tasks, util, sems, mutexes, mbfs, flags, irqs, pmin, pmax); empty values allowed (-gen \"\")")
	tasksetOut := flag.String("taskset", "", "write the resolved synthetic task set JSON (synthetic scenario)")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var spec run.Spec
	if *specPath != "" {
		spec, err = run.LoadSpecFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		spec = run.Spec{
			GUI:       gui,
			Frame:     run.Duration(*frame),
			Tickless:  tickless,
			Artifacts: []string{run.ArtifactConsole},
		}
	}
	// Flags given explicitly win over the spec file; without -spec this
	// reproduces the historical all-flags construction.
	if *specPath == "" || explicit["dur"] {
		spec.Dur = run.Duration(*dur)
	}
	if *specPath == "" || explicit["seed"] {
		spec.Seed = *seed
	}
	if *specPath == "" || explicit["engine"] {
		spec.Engine = *engine
	}
	if *specPath == "" || explicit["timeout"] {
		spec.Deadline = run.Duration(*timeout)
	}
	if *specPath == "" || explicit["tick"] {
		spec.Tick = run.Duration(*tick)
	}
	if *specPath == "" || explicit["step"] {
		spec.Step = *step
	}
	if *specPath == "" || explicit["idle-sleep"] {
		spec.IdleSleep = run.Duration(*idleSleep)
	}
	if explicit["gui"] {
		spec.GUI = gui
	}
	if explicit["frame"] {
		spec.Frame = run.Duration(*frame)
	}
	if explicit["tickless"] {
		spec.Tickless = tickless
	}
	if *genFlag != "" || explicit["gen"] {
		gs, err := workload.ParseGenFlag(*genFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Scenario = run.ScenarioSynthetic
		spec.Synthetic = &run.SyntheticSpec{Gen: gs}
	}
	if spec.Scenario == run.ScenarioSynthetic {
		// The videogame-only console artifact does not exist here; default
		// to the resolved task set instead.
		spec.Artifacts = pruneArtifacts(spec.Artifacts, run.ArtifactConsole)
	}

	addArtifact := func(cond bool, name string) {
		if cond && !hasArtifact(spec.Artifacts, name) {
			spec.Artifacts = append(spec.Artifacts, name)
		}
	}
	addArtifact(spec.Step, run.ArtifactGantt)
	addArtifact(*ds, run.ArtifactDS)
	addArtifact(*vcdOut != "", run.ArtifactVCD)
	addArtifact(*traceOut != "", run.ArtifactTrace)
	addArtifact(*metricsOut != "", run.ArtifactMetrics)
	addArtifact(*tasksetOut != "", run.ArtifactTaskSet)

	res, runErr := run.Execute(context.Background(), spec)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", runErr)
		os.Exit(1)
	}

	st := res.Stats
	switch st.Scenario {
	case run.ScenarioSynthetic:
		fmt.Printf("RTK-Spec TRON synthetic workload: S=%v R=%v S/R=%.2f\n",
			st.SimTime.Std(), st.Wall.Std().Round(time.Millisecond), st.SimPerWall)
		fmt.Printf("kernel: ticks=%d ctxsw=%d preempt=%d irq=%d activations=%d\n",
			st.Ticks, st.CtxSwitches, st.Preemptions, st.Interrupts, st.Activations)
	default:
		fmt.Printf("RTK-Spec TRON co-simulation: S=%v R=%v S/R=%.2f mode=%s\n",
			st.SimTime.Std(), st.Wall.Std().Round(time.Millisecond), st.SimPerWall,
			map[bool]string{true: "step", false: "animate"}[spec.Step])
	}
	os.Stdout.Write(res.Artifacts[run.ArtifactConsole])
	os.Stdout.Write(res.Artifacts[run.ArtifactSummary])
	os.Stdout.Write(res.Artifacts[run.ArtifactReport])

	if spec.Step {
		fmt.Println("execution time/energy trace (first 100 ms):")
		os.Stdout.Write(res.Artifacts[run.ArtifactGantt])
	}
	if *ds {
		fmt.Println()
		os.Stdout.Write(res.Artifacts[run.ArtifactDS])
	}
	writeArtifact := func(path, name, note string) {
		if path == "" {
			return
		}
		if err := os.WriteFile(path, res.Artifacts[name], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(note)
	}
	writeArtifact(*vcdOut, run.ArtifactVCD,
		fmt.Sprintf("\nwaveform: %d changes written to %s", st.VCDChanges, *vcdOut))
	writeArtifact(*traceOut, run.ArtifactTrace,
		fmt.Sprintf("\ntrace: %d events written to %s (load at ui.perfetto.dev)", st.TraceEvents, *traceOut))
	writeArtifact(*metricsOut, run.ArtifactMetrics,
		fmt.Sprintf("metrics: per-task report written to %s", *metricsOut))
	writeArtifact(*tasksetOut, run.ArtifactTaskSet,
		fmt.Sprintf("taskset: resolved set written to %s", *tasksetOut))

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func hasArtifact(arts []string, name string) bool {
	for _, a := range arts {
		if a == name {
			return true
		}
	}
	return false
}

func pruneArtifacts(arts []string, drop string) []string {
	var out []string
	for _, a := range arts {
		if a != drop {
			out = append(out, a)
		}
	}
	return out
}
