// Command rtkspec runs the RTOS-centric co-simulator on the case-study
// system: RTK-Spec TRON + i8051 BFM + GUI widgets + the video game.
//
//	rtkspec -dur 1s                 # animate mode, speed + distribution
//	rtkspec -step -dur 100ms        # step mode: per-tick GANTT trace
//	rtkspec -ds                     # dump the T-Kernel/DS listing at the end
//	rtkspec -vcd wave.vcd           # probe BFM signals into a VCD file
//	rtkspec -trace out.json         # stream a Perfetto/Chrome trace
//	rtkspec -metrics report.json    # per-task latency/wait/CET-CEE report
//	rtkspec -gui=false -frame 50ms  # sweep the Table 2 knobs by hand
//	rtkspec -cpuprofile cpu.out -memprofile mem.out  # pprof the run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/app"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/profiling"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/trace"
)

func main() {
	dur := flag.Duration("dur", time.Second, "simulated duration")
	step := flag.Bool("step", false, "step mode: advance tick by tick and render the trace")
	ds := flag.Bool("ds", false, "print the T-Kernel/DS listing at the end")
	gui := flag.Bool("gui", true, "model GUI widget overhead")
	frame := flag.Duration("frame", 10*time.Millisecond, "LCD frame period (widget-driving BFM access)")
	vcdOut := flag.String("vcd", "", "write a VCD waveform of BFM signals")
	traceOut := flag.String("trace", "", "stream a Perfetto/Chrome trace-event JSON file (load at ui.perfetto.dev)")
	metricsOut := flag.String("metrics", "", "write a per-task scheduling-metrics JSON report")
	seed := flag.Uint64("seed", 0, "seed the synthetic user's key presses (0 = fixed legacy pattern)")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	g := trace.NewGantt()
	g.SetLimit(500000)
	var vcd *trace.VCD
	if *vcdOut != "" {
		vcd = trace.NewVCD()
	}
	bus := event.NewBus()
	var pf *trace.Perfetto
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		pf = trace.AttachPerfetto(bus, f)
	}
	var coll *metrics.Collector
	if *metricsOut != "" {
		coll = metrics.Attach(bus)
	}

	cfg := app.DefaultConfig()
	cfg.GUI = *gui
	cfg.FramePeriod = sysc.Time(frame.Nanoseconds()) * sysc.Ns
	cfg.Bus = bus
	cfg.Trace = g
	cfg.VCD = vcd
	cfg.Seed = *seed
	a := app.Build(cfg)
	defer a.Shutdown()

	simDur := sysc.Time(dur.Nanoseconds()) * sysc.Ns
	wall0 := time.Now()
	if *step {
		// Step mode: advance in steps of the system tick (1 ms) rather
		// than animate mode, as the paper prescribes for trace viewing.
		tick := a.K.Tick()
		for t := tick; t <= simDur; t += tick {
			if err := a.Run(t); err != nil {
				fmt.Fprintln(os.Stderr, "simulation error:", err)
				os.Exit(1)
			}
		}
	} else if err := a.Run(simDur); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}
	wall := time.Since(wall0)

	fmt.Printf("RTK-Spec TRON co-simulation: S=%v R=%v S/R=%.2f mode=%s\n",
		simDur, wall.Round(time.Millisecond), simDur.Seconds()/wall.Seconds(),
		map[bool]string{true: "step", false: "animate"}[*step])
	fmt.Printf("game: frames=%d score=%d bonus=%d  kernel: ticks=%d ctxsw=%d preempt=%d irq=%d\n\n",
		a.Frames(), a.Score(), a.Bonus(), a.K.Ticks(),
		a.K.API().ContextSwitches(), a.K.API().Preemptions(), a.K.API().Interrupts())

	fmt.Println(a.LCDW.RenderText())
	fmt.Println("SSD:", a.SSDW.RenderText())
	fmt.Println()
	fmt.Println(a.Battery.RenderText())

	if *step {
		fmt.Println("execution time/energy trace (first 100 ms):")
		g.Render(os.Stdout, 0, 100*sysc.Ms, 100)
	}
	if *ds {
		fmt.Println()
		tkds.New(a.K).Listing(os.Stdout)
	}
	if vcd != nil {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		vcd.Render(f)
		f.Close()
		fmt.Printf("\nwaveform: %d changes written to %s\n", vcd.Len(), *vcdOut)
		fmt.Println("probed signals (first 100 ms):")
		trace.NewWaveView(vcd).Render(os.Stdout, 0, 100*sysc.Ms, 100)
	}
	if pf != nil {
		if err := pf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events written to %s (load at ui.perfetto.dev)\n", pf.Events(), *traceOut)
	}
	if coll != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := coll.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("metrics: per-task report written to %s\n", *metricsOut)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
