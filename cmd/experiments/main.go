// Command experiments regenerates the paper's tables and figures. It is a
// thin flag shim over the unified run façade — the same run.Spec submitted
// to rtkserve produces the same report.
//
//	go run ./cmd/experiments -all
//	go run ./cmd/experiments -table2 -simtime 1s
//	go run ./cmd/experiments -fig6 -fig7 -fig8
//	go run ./cmd/experiments -fig4 -vcd out.vcd
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/run"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: SIM_API surface")
	t2 := flag.Bool("table2", false, "Table 2: co-simulation speed measure")
	f4 := flag.Bool("fig4", false, "Figure 4: BFM signal waveform (VCD)")
	f6 := flag.Bool("fig6", false, "Figure 6: execution time/energy trace")
	f7 := flag.Bool("fig7", false, "Figure 7: time/energy distribution + battery")
	f8 := flag.Bool("fig8", false, "Figure 8: T-Kernel/DS listing")
	a1 := flag.Bool("a1", false, "Ablation A1: delayed dispatching")
	a2 := flag.Bool("a2", false, "Ablation A2: tick granularity")
	a3 := flag.Bool("a3", false, "Ablation A3: scheduler comparison")
	speed := flag.Bool("speed", false, "RTOS-level vs cycle-stepped comparison")
	simtime := flag.Duration("simtime", time.Second, "simulated S per Table 2 configuration")
	seed := flag.Uint64("seed", 0,
		"base seed randomizing each sweep point's synthetic user input "+
			"(0 = fixed legacy pattern; results depend on the seed, never on -workers)")
	vcdOut := flag.String("vcd", "", "also write the Figure 4 VCD to this file")
	metricsOut := flag.String("metrics", "",
		"with -fig7: also write the per-task scheduling-metrics JSON report to this file")
	workers := flag.Int("workers", 1,
		"worker pool size for sweeps (1 = sequential reference, 0 = GOMAXPROCS); "+
			"simulated columns are identical for any value, wall-clock columns "+
			"reflect shared-core timing when > 1")
	timeout := flag.Duration("timeout", 0,
		"wall-clock deadline; on expiry the report ends at the last finished section and the exit code is 1")
	flag.Parse()

	// Sections run in the canonical report order regardless of flag order.
	var sections []string
	section := func(on bool, name string) {
		if on {
			sections = append(sections, name)
		}
	}
	section(*t1, "table1")
	section(*t2, "table2")
	section(*f6, "fig6")
	section(*f7, "fig7")
	section(*f8, "fig8")
	section(*f4, "fig4")
	section(*a1, "a1")
	section(*a2, "a2")
	section(*a3, "a3")
	section(*speed, "speed")
	if *all {
		sections = []string{"all"}
	}
	if len(sections) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	spec := run.Spec{
		Scenario: run.ScenarioExperiments,
		Seed:     *seed,
		Deadline: run.Duration(*timeout),
		Experiments: &run.ExperimentsSpec{
			Sections: sections,
			SimTime:  run.Duration(*simtime),
			Workers:  *workers,
		},
		Artifacts: []string{run.ArtifactReport},
	}
	if *vcdOut != "" {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactVCD)
	}
	if *metricsOut != "" {
		spec.Artifacts = append(spec.Artifacts, run.ArtifactMetrics)
	}

	res, runErr := run.Execute(context.Background(), spec)
	os.Stdout.Write(res.Artifacts[run.ArtifactReport])
	if *vcdOut != "" {
		if err := os.WriteFile(*vcdOut, res.Artifacts[run.ArtifactVCD], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, res.Artifacts[run.ArtifactMetrics], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}
