// Command experiments regenerates the paper's tables and figures.
//
//	go run ./cmd/experiments -all
//	go run ./cmd/experiments -table2 -simtime 1s
//	go run ./cmd/experiments -fig6 -fig7 -fig8
//	go run ./cmd/experiments -fig4 -vcd out.vcd
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/sysc"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: SIM_API surface")
	t2 := flag.Bool("table2", false, "Table 2: co-simulation speed measure")
	f4 := flag.Bool("fig4", false, "Figure 4: BFM signal waveform (VCD)")
	f6 := flag.Bool("fig6", false, "Figure 6: execution time/energy trace")
	f7 := flag.Bool("fig7", false, "Figure 7: time/energy distribution + battery")
	f8 := flag.Bool("fig8", false, "Figure 8: T-Kernel/DS listing")
	a1 := flag.Bool("a1", false, "Ablation A1: delayed dispatching")
	a2 := flag.Bool("a2", false, "Ablation A2: tick granularity")
	a3 := flag.Bool("a3", false, "Ablation A3: scheduler comparison")
	speed := flag.Bool("speed", false, "RTOS-level vs cycle-stepped comparison")
	simtime := flag.Duration("simtime", time.Second, "simulated S per Table 2 configuration")
	seed := flag.Uint64("seed", 0,
		"base seed randomizing each sweep point's synthetic user input "+
			"(0 = fixed legacy pattern; results depend on the seed, never on -workers)")
	vcdOut := flag.String("vcd", "", "also write the Figure 4 VCD to this file")
	metricsOut := flag.String("metrics", "",
		"with -fig7: also write the per-task scheduling-metrics JSON report to this file")
	workers := flag.Int("workers", 1,
		"worker pool size for sweeps (1 = sequential reference, 0 = GOMAXPROCS); "+
			"simulated columns are identical for any value, wall-clock columns "+
			"reflect shared-core timing when > 1")
	flag.Parse()

	simS := sysc.Time(simtime.Nanoseconds()) * sysc.Ns
	w := os.Stdout
	any := false
	section := func(on bool, run func()) {
		if on || *all {
			if any {
				fmt.Fprintln(w, "\n"+divider)
			}
			any = true
			run()
		}
	}

	section(*t1, func() { experiments.Table1(w) })
	section(*t2, func() {
		cfg := experiments.DefaultTable2Config()
		cfg.SimTime = simS
		cfg.BaseSeed = *seed
		if *workers == 1 {
			experiments.Table2(w, cfg)
		} else {
			experiments.Table2Parallel(w, cfg, *workers)
		}
	})
	section(*f6, func() { experiments.Figure6(w, 100*sysc.Ms) })
	section(*f7, func() {
		if *metricsOut == "" {
			experiments.Figure7(w, 1*sysc.Sec)
			return
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		experiments.Figure7Metrics(w, f, 1*sysc.Sec)
		fmt.Fprintf(w, "metrics: per-task report written to %s\n", *metricsOut)
	})
	section(*f8, func() { experiments.Figure8(w, 500*sysc.Ms) })
	section(*f4, func() {
		out := w
		if *vcdOut != "" {
			f, err := os.Create(*vcdOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
			fmt.Fprintf(w, "Figure 4 VCD written to %s\n", *vcdOut)
		}
		experiments.Figure4(out, 200*sysc.Ms)
	})
	section(*a1, func() {
		experiments.AblationDelayedDispatch(w, []sysc.Time{
			0, 500 * sysc.Us, 2 * sysc.Ms, 5 * sysc.Ms,
		})
	})
	section(*a2, func() {
		experiments.AblationGranularityParallel(w, []sysc.Time{
			100 * sysc.Us, 500 * sysc.Us, 1 * sysc.Ms, 5 * sysc.Ms, 10 * sysc.Ms,
		}, *workers)
	})
	section(*a3, func() { experiments.AblationSchedulers(w) })
	section(*speed, func() { experiments.SpeedComparison(w, simS) })

	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

const divider = "================================================================"
