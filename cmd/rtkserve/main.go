// Command rtkserve serves simulations as a service: a bounded HTTP/JSON
// job server over the unified run façade. Submit a run.Spec, poll the job,
// download its artifacts — the run is built by exactly the code path the
// CLIs use, so a fixed-seed Spec yields byte-identical artifacts over HTTP
// and on the command line.
//
//	rtkserve -addr :8080 -workers 4 -queue 28
//
//	curl -X POST localhost:8080/api/v1/jobs -d '{"dur":"250ms","seed":42,
//	    "artifacts":["trace.json","metrics.json"]}'
//	curl localhost:8080/api/v1/jobs/j1
//	curl localhost:8080/api/v1/jobs/j1/artifacts/trace.json
//	curl localhost:8080/varz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/profiling"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "simulation workers (one job each)")
	queue := flag.Int("queue", 0, "bounded submission queue depth (0 = 2*workers); full queue returns 429")
	maxJobTime := flag.Duration("max-job-time", 5*time.Minute, "wall-clock cap per job (0 = uncapped)")
	maxJobs := flag.Int("max-jobs", 1024, "retained job records before terminal jobs are evicted")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	svc := server.New(server.Config{
		Workers:    *workers,
		Queue:      *queue,
		MaxJobTime: *maxJobTime,
		MaxJobs:    *maxJobs,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("rtkserve: listening on %s (workers=%d queue=%d)\n", *addr, *workers, *queue)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the job
	// pool — queued and in-flight jobs run to completion within the budget,
	// stragglers are cancelled at their next quiescent point.
	fmt.Println("rtkserve: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "http shutdown:", err)
	}
	if err := svc.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("rtkserve: done")
}
