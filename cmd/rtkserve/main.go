// Command rtkserve serves simulations as a service: a bounded HTTP/JSON
// job server over the unified run façade. Submit a run.Spec, poll the job,
// download its artifacts — the run is built by exactly the code path the
// CLIs use, so a fixed-seed Spec yields byte-identical artifacts over HTTP
// and on the command line.
//
// Single replica (the default):
//
//	rtkserve -addr :8080 -workers 4 -queue 28
//
// In-process fleet — N shards behind one listener, submissions routed by
// Spec content hash so each shard's result cache works fleet-wide:
//
//	rtkserve -addr :8080 -shards 4 -workers 2
//
// Router over remote replicas (each started with the matching
// -shard-name):
//
//	rtkserve -addr :8081 -shard-name s0 ...
//	rtkserve -addr :8082 -shard-name s1 ...
//	rtkserve -addr :8080 -router -backends http://h1:8081,http://h2:8082
//
//	curl -X POST localhost:8080/api/v1/jobs -d '{"dur":"250ms","seed":42,
//	    "artifacts":["trace.json","metrics.json"]}'
//	curl localhost:8080/api/v1/jobs/s0-j1
//	curl localhost:8080/api/v1/jobs/s0-j1/artifacts/trace.json
//	curl localhost:8080/varz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/profiling"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "simulation workers per shard (one job each)")
	queue := flag.Int("queue", 0, "bounded submission queue depth per shard (0 = 2*workers); full queue returns 429")
	maxJobTime := flag.Duration("max-job-time", 5*time.Minute, "wall-clock cap per job (0 = uncapped)")
	maxJobs := flag.Int("max-jobs", 1024, "retained job records per shard before terminal jobs are evicted")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	shardName := flag.String("shard-name", "", "this replica's fleet name; prefixes job IDs (s0-j1) so a router can route them")
	shards := flag.Int("shards", 0, "run an in-process fleet of N shards behind a hash router (0 = single replica)")
	routerMode := flag.Bool("router", false, "run as a stateless router over -backends instead of simulating")
	backends := flag.String("backends", "", "comma-separated shard base URLs for -router; shard names are s0,s1,... in order")
	cacheEntries := flag.Int("cache-entries", 0, "result-cache entry bound per shard (0 = default, negative = disable)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte bound per shard (0 = default)")
	cacheDir := flag.String("cache-dir", "", "spill directory for LRU-evicted cache entries; a restarted server warms itself from it (per-shard subdirectories in fleet mode)")
	streamWindow := flag.Int("stream-window", 0, "in-memory bytes each streamed artifact keeps before spilling to disk (0 = 256 KiB)")
	spoolDir := flag.String("spool-dir", "", "spill directory for streamed artifacts (default: OS temp dir)")
	maxInline := flag.Int64("max-inline-artifact", 0, "largest streamed artifact materialized into the result cache (0 = 8 MiB, negative = never)")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	shardCfg := func(name string) server.Config {
		dir := *cacheDir
		if dir != "" && name != "" {
			// Shards own disjoint key ranges, but separate subdirectories keep
			// each replica's spill self-contained and restart-safe.
			dir = filepath.Join(dir, name)
		}
		return server.Config{
			Name:         name,
			Workers:      *workers,
			Queue:        *queue,
			MaxJobTime:   *maxJobTime,
			MaxJobs:      *maxJobs,
			Cache:             cache.Config{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, Dir: dir},
			DisableCache:      *cacheEntries < 0,
			StreamWindow:      *streamWindow,
			SpoolDir:          *spoolDir,
			MaxInlineArtifact: *maxInline,
		}
	}

	var handler http.Handler
	var replicas []*server.Server
	switch {
	case *routerMode:
		// Stateless router over remote replicas: reverse-proxy each shard.
		// Backend order fixes the shard names (s0, s1, ...), which must
		// match the -shard-name each replica was started with.
		var rs []router.Shard
		for i, b := range strings.Split(*backends, ",") {
			b = strings.TrimSpace(b)
			if b == "" {
				continue
			}
			u, err := url.Parse(b)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtkserve: backend %q: %v\n", b, err)
				os.Exit(1)
			}
			p := httputil.NewSingleHostReverseProxy(u)
			// Negative FlushInterval flushes immediately after each write:
			// chunked artifact streams and SSE event feeds must flow through
			// the proxy as the shard produces them, not when its buffer fills.
			p.FlushInterval = -1
			rs = append(rs, router.Shard{
				Name:    fmt.Sprintf("s%d", i),
				Handler: p,
			})
		}
		if len(rs) == 0 {
			fmt.Fprintln(os.Stderr, "rtkserve: -router needs -backends")
			os.Exit(1)
		}
		handler = router.New(rs, 0)
		fmt.Printf("rtkserve: routing over %d backends\n", len(rs))
	case *shards > 0:
		// In-process fleet: N full replicas behind one hash router.
		var rs []router.Shard
		for i := 0; i < *shards; i++ {
			name := fmt.Sprintf("s%d", i)
			s := server.New(shardCfg(name))
			replicas = append(replicas, s)
			rs = append(rs, router.Shard{Name: name, Handler: s})
		}
		handler = router.New(rs, 0)
	default:
		s := server.New(shardCfg(*shardName))
		replicas = append(replicas, s)
		handler = s
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("rtkserve: listening on %s (shards=%d workers=%d queue=%d)\n",
			*addr, max(len(replicas), 1), *workers, *queue)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain every
	// shard's job pool — queued and in-flight jobs run to completion within
	// the budget, stragglers are cancelled at their next quiescent point.
	fmt.Println("rtkserve: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "http shutdown:", err)
	}
	for _, s := range replicas {
		if err := s.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "drain:", err)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("rtkserve: done")
}
