# Build, verify, and benchmark the RTK-Spec TRON reproduction.
#
#   make check   - tier-1 gate: vet + build + tests + race detector
#   make bench   - co-simulation speed benchmark -> BENCH_sysc.json
#   make bench-all  - every benchmark, no JSON capture
#   make engine-diff - byte-identical A/B gate between the T-THREAD engines

GO ?= go
BENCHTIME ?= 2s

.PHONY: all build test vet race race-engine check serve serve-fleet serve-e2e serve-load serve-load-guard serve-stream chaos chaos-traced engine-diff snapshot-diff bench bench-guard bench-all perf-smoke scenarios synthetic-campaign clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The goroutine reference engine is the only multi-goroutine data path left —
# the continuation engine steps everything inline on the scheduler goroutine —
# so exercise it explicitly under the race detector through the differential
# A/B suite (which runs every scenario on engine=goroutine by name).
race-engine:
	$(GO) test -race ./internal/run -run 'TestEngineDiff' -v

check: vet build test race

# Simulation-as-a-service: the bounded HTTP/JSON job server over the run
# façade. POST a run.Spec to /api/v1/jobs, poll it, download artifacts; see
# README "Serving simulations" for curl examples.
serve:
	$(GO) run ./cmd/rtkserve -addr :8080 -workers 4 -queue 28

# In-process fleet: 4 shards behind a consistent-hash router, submissions
# routed by Spec content hash so each shard's result cache works
# fleet-wide. See README "Serving at scale".
serve-fleet:
	$(GO) run ./cmd/rtkserve -addr :8080 -shards 4 -workers 2

# Server end-to-end gate: 32 concurrent jobs on a 4-worker pool with 429
# backpressure past capacity, graceful-shutdown drain, job deadlines,
# byte-identical CLI-vs-HTTP artifacts for a fixed-seed Spec, plus the
# fleet-scale contracts — cache hits byte-identical to cold runs, 32
# concurrent duplicates collapsing to one simulation, and deterministic
# shard routing.
serve-e2e:
	$(GO) test ./internal/server -run \
		'TestBackpressure|TestGracefulShutdown|TestDeadlineExceeded|TestDeterminismHTTPvsCLI|TestCacheHitByteIdentical|TestSingleflightDedupe' -v
	$(GO) test ./internal/router -run 'TestRing|TestRouter' -v

# Fleet load harness: a duplicate-heavy workload against an in-process
# 2-shard fleet, recording jobs/s, admission latency percentiles, and the
# cache hit ratio to BENCH_serve.json, plus the -stream section (first-byte
# latency and streamed-vs-buffered live heap of a long-trace job). Fails
# hard if duplicates are not byte-identical or the fleet simulates a
# distinct Spec more than once.
serve-load:
	$(GO) run ./cmd/serveload -shards 2 -workers 2 -jobs 24 -dup 4 -stream -out BENCH_serve.json

# Re-run the load harness and fail if jobs/s falls more than 40% below the
# committed BENCH_serve.json (writes fresh numbers to a scratch file; the
# wide band absorbs shared-runner noise, the correctness gates are exact).
serve-load-guard:
	$(GO) run ./cmd/serveload -shards 2 -workers 2 -jobs 24 -dup 4 \
		-out /tmp/BENCH_serve.new.json -baseline BENCH_serve.json -tolerance 40

# Streaming gate: one ~10 MiB-trace job run buffered and then streamed
# (?stream=1 chunked download + SSE event feed) against a tiny 64 KiB
# spill window. Fails unless streamed bytes are identical to buffered,
# the first byte arrives while the job is still running, and the streamed
# server's peak live heap sits at least half a trace below the buffered
# one's — the O(window)-vs-O(trace) memory contract.
serve-stream:
	$(GO) run ./cmd/serveload -shards 1 -workers 2 -jobs 4 -dup 2 -stream \
		-out /tmp/BENCH_stream.json

# Deterministic fault-injection campaign with kernel invariant oracles.
# Behavior-level faults must all PASS on a correct kernel; add CHAOS_FLAGS
# (e.g. -corrupt -minimize) to exercise the oracle self-test path.
chaos:
	$(GO) run ./cmd/chaos -seeds 200 -workers 0 $(CHAOS_FLAGS)

# 20-seed campaign replayed with the streaming Perfetto exporter attached:
# every job must pass its oracles and every emitted trace must schema-check.
chaos-traced:
	$(GO) test ./internal/chaos -run 'TestTracedCampaignSchema|TestRunJobTraceVerdictMatchesRunJob' -v

# Differential A/B gate between the two T-THREAD engines: the videogame
# scenario across its headline configurations plus a 20-seed chaos campaign
# (with per-seed trace replays) must produce byte-identical artifacts on
# engine=goroutine and engine=continuation.
engine-diff:
	$(GO) test ./internal/run -run 'TestEngineDiff' -v

# Snapshot/restore byte-equality gate: pausing at a quiescent point, warm
# sweep forking, snapshot-resume over the run facade and over HTTP, and
# warm chaos-ddmin trials must all be byte- (or digest-) identical to their
# cold counterparts.
snapshot-diff:
	$(GO) test ./internal/run -run 'TestSyntheticCheckpointByteEquality|TestVideogameCheckpointByteEquality|TestSnapshotResumeByteEquality|TestWarmSweep' -v
	$(GO) test ./internal/chaos -run 'TestWarmTrialMatchesCold' -v
	$(GO) test ./internal/server -run 'TestResumeFromOverHTTP' -v

# Table 2 co-simulation speed (the paper's S/R headline metric) per
# configuration, plus the bare-kernel synthetic workload and the
# warm-start sweep benchmark, captured to BENCH_sysc.json so the perf
# trajectory is tracked across PRs.
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkTable2CoSimSpeed|BenchmarkSyntheticCoSimSpeed|BenchmarkSweepWarmStart' \
		-benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -metric simsec/s -out BENCH_sysc.json

# Re-run the speed benchmarks and fail on regression below the committed
# BENCH_sysc.json baseline (writes the fresh numbers to scratch files,
# never the baseline). Two tolerances: 5% for the single-run kernel
# benchmarks, 20% for the warm-start sweep, whose cold/warm ratio (the
# ~4x forking speedup) matters more than its absolute noise floor.
bench-guard:
	$(GO) test -run '^$$' -bench BenchmarkTable2CoSimSpeed -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -metric simsec/s -out /tmp/BENCH_sysc.new.json \
			-baseline BENCH_sysc.json -tolerance 5
	$(GO) test -run '^$$' -bench BenchmarkSweepWarmStart -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -metric simsec/s -out /tmp/BENCH_sweep.new.json \
			-baseline BENCH_sysc.json -tolerance 20

bench-all:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

# CI perf smoke: the headline gui=off/frame=off configuration (plus its idle
# twins) and the fixed synthetic workload against the committed baseline,
# with a generous 20% tolerance to absorb shared-runner noise while still
# catching order-of-magnitude regressions in the kernel hot path.
perf-smoke:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkTable2CoSimSpeed/gui=off/frame=off|BenchmarkSyntheticCoSimSpeed' \
		-benchtime 1s . \
		| $(GO) run ./cmd/benchjson -metric simsec/s -out /tmp/BENCH_sysc.smoke.json \
			-baseline BENCH_sysc.json -tolerance 20

# Run every example scenario under examples/scenarios on both T-THREAD
# engines through the -spec file path (the same run.Spec JSON rtkserve
# accepts). Each file must validate, build, and complete on each engine.
scenarios:
	@for f in examples/scenarios/*.json; do \
		for e in goroutine continuation; do \
			echo "== $$f ($$e)"; \
			$(GO) run ./cmd/rtkspec -spec $$f -engine $$e || exit 1; \
		done; \
	done

# Seeded synthetic chaos campaign: every job draws a fresh generated task
# set from its own seed and must pass all kernel invariant oracles on the
# continuation engine (the goroutine engine is covered by engine-diff).
synthetic-campaign:
	$(GO) run ./cmd/chaos -seeds 50 -engine continuation \
		-gen "tasks=6,util=0.6,irqs=2"

clean:
	$(GO) clean ./...
