# Build, verify, and benchmark the RTK-Spec TRON reproduction.
#
#   make check   - tier-1 gate: vet + build + tests + race detector
#   make bench   - co-simulation speed benchmark -> BENCH_sysc.json
#   make bench-all  - every benchmark, no JSON capture

GO ?= go
BENCHTIME ?= 2s

.PHONY: all build test vet race check bench bench-all clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet build test race

# Table 2 co-simulation speed (the paper's S/R headline metric) per
# configuration, captured to BENCH_sysc.json so the perf trajectory is
# tracked across PRs.
bench:
	$(GO) test -run '^$$' -bench BenchmarkTable2CoSimSpeed -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -metric simsec/s -out BENCH_sysc.json

bench-all:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

clean:
	$(GO) clean ./...
