// Energy: HW/SW partitioning exploration with the battery widget.
//
// The paper's Figure 7 use case: run an application, watch the consumed
// time/energy distribution over T-THREADs and the battery's projected
// lifespan, then "move a task to hardware" (replace its software ETM/EEM
// with a cheap BFM access) and compare lifespans — the partitioning
// decision the widget is designed to support.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gui"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// scenario runs a DSP-ish pipeline; if hwFilter is true the filter stage is
// "moved to hardware": its per-block cost drops to a register write.
func scenario(hwFilter bool) (lifespan sysc.Time, report string) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.DefaultCosts()})

	filterCost := core.Cost{Time: 4 * sysc.Ms, Energy: 900 * petri.MicroJ} // software FIR
	if hwFilter {
		filterCost = core.Cost{Time: 20 * sysc.Us, Energy: 5 * petri.MicroJ} // ASIC access
	}

	k.Boot(func(k *tkernel.Kernel) {
		samples, _ := k.CreSem("samples", tkernel.TaTFIFO, 0, 64)
		filtered, _ := k.CreSem("filtered", tkernel.TaTFIFO, 0, 64)

		sampler, _ := k.CreTsk("sampler", 8, func(task *tkernel.Task) {
			for {
				_ = k.DlyTsk(10 * sysc.Ms)
				k.Work(core.Cost{Time: 200 * sysc.Us, Energy: 20 * petri.MicroJ}, "sample")
				_ = k.SigSem(samples, 1)
			}
		})
		filter, _ := k.CreTsk("filter", 10, func(task *tkernel.Task) {
			for {
				if er := k.WaiSem(samples, 1, tkernel.TmoFevr); er != tkernel.EOK {
					return
				}
				k.Work(filterCost, "fir-filter")
				_ = k.SigSem(filtered, 1)
			}
		})
		sink, _ := k.CreTsk("sink", 12, func(task *tkernel.Task) {
			for {
				if er := k.WaiSem(filtered, 1, tkernel.TmoFevr); er != tkernel.EOK {
					return
				}
				k.Work(core.Cost{Time: 300 * sysc.Us, Energy: 30 * petri.MicroJ}, "emit")
			}
		})
		_ = k.StaTsk(sampler)
		_ = k.StaTsk(filter)
		_ = k.StaTsk(sink)
	})

	m := gui.NewManager(false)
	bat := gui.NewBatteryWidget(m, k.API(), 10*petri.WattHour)

	if err := sim.Start(2 * sysc.Sec); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}
	life, _ := bat.Lifespan(sim.Now())
	return life, bat.RenderText()
}

func main() {
	swLife, swReport := scenario(false)
	hwLife, hwReport := scenario(true)

	fmt.Println("=== filter in SOFTWARE ===")
	fmt.Println(swReport)
	fmt.Printf("projected battery lifespan: %.1f hours\n\n", swLife.Seconds()/3600)

	fmt.Println("=== filter moved to HARDWARE (ASIC behind a BFM access) ===")
	fmt.Println(hwReport)
	fmt.Printf("projected battery lifespan: %.1f hours\n\n", hwLife.Seconds()/3600)

	fmt.Printf("partitioning gain: %.1fx battery life\n",
		float64(hwLife)/float64(swLife))
}
