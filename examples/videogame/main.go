// Videogame: the paper's full case study (Section 5) — RTK-Spec TRON +
// i8051 BFM + GUI widgets + the four-task/two-handler video game.
//
// Runs one simulated second (the paper's reference unit time S), reports
// the co-simulation speed ratio S/R, then prints the virtual prototype:
// LCD and SSD widgets, battery status, the execution trace of the first
// 100 ms, and the T-Kernel/DS listing.
//
//	go run ./examples/videogame [-gui=false] [-frame 10ms] [-dur 1s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/app"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/trace"
)

func main() {
	guiOn := flag.Bool("gui", true, "model GUI widget overhead")
	frame := flag.Duration("frame", 10*time.Millisecond, "LCD frame period (BFM access rate driving the widget)")
	dur := flag.Duration("dur", time.Second, "simulated duration")
	flag.Parse()

	g := trace.NewGantt()
	g.SetLimit(200000)

	cfg := app.DefaultConfig()
	cfg.GUI = *guiOn
	cfg.FramePeriod = sysc.Time(frame.Nanoseconds()) * sysc.Ns
	cfg.Gantt = g

	a := app.Build(cfg)
	defer a.Shutdown()

	simDur := sysc.Time(dur.Nanoseconds()) * sysc.Ns
	wall0 := time.Now()
	if err := a.Run(simDur); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}
	wall := time.Since(wall0)

	s := simDur.Seconds()
	r := wall.Seconds()
	fmt.Printf("co-simulation: S=%v wall R=%v  S/R=%.3f (gui=%v, frame=%v)\n\n",
		simDur, wall.Round(time.Millisecond), s/r, *guiOn, *frame)

	fmt.Printf("game: frames=%d score=%d bonus=%d\n\n", a.Frames(), a.Score(), a.Bonus())
	fmt.Println("LCD widget:")
	fmt.Println(a.LCDW.RenderText())
	fmt.Println("\nSSD widget:", a.SSDW.RenderText())

	fmt.Println("\nBattery / consumed time & energy distribution (Figure 7):")
	fmt.Println(a.Battery.RenderText())

	fmt.Println("Execution time/energy trace, first 100 ms (Figure 6):")
	g.Render(os.Stdout, 0, 100*sysc.Ms, 100)

	fmt.Println("\nT-Kernel/DS listing (Figure 8):")
	tkds.New(a.K).Listing(os.Stdout)
}
