// Itron: the same kernel through the µITRON 4.0 veneer, plus a rendezvous
// port and the kernel-dynamics event trace.
//
// A sensor task samples every 20 ms and pushes readings into a data queue
// (snd_dtq); a logger task drains it (rcv_dtq) and asks a calibration
// server for a corrected value through a rendezvous port (tk_cal_por /
// tk_acp_por / tk_rpl_rdv). At the end the kernel event trace shows the
// dispatches, blocks and releases that made it happen.
//
//	go run ./examples/itron
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/itron"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/tkernel"
)

func main() {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.DefaultCosts()})
	a := itron.New(k)
	ds := tkds.New(k)
	elog := ds.AttachEventLog(40)

	var calibrated []uint64

	k.Boot(func(_ *tkernel.Kernel) {
		dtq, _ := a.CreDtq(itron.T_CDTQ{Name: "readings", DtqCnt: 8})
		por, _ := k.CrePor("calib-svc", tkernel.TaTFIFO, 16, 16)

		sensor, _ := a.CreTsk(itron.T_CTSK{Name: "sensor", Pri: 10,
			Task: func(task *tkernel.Task) {
				for i := uint64(1); i <= 10; i++ {
					_ = a.DlyTsk(20 * sysc.Ms)
					k.Work(core.Cost{Time: 150 * sysc.Us}, "sample-adc")
					_ = a.SndDtq(dtq, i*10) // raw reading
				}
			}})
		logger, _ := a.CreTsk(itron.T_CTSK{Name: "logger", Pri: 12,
			Task: func(task *tkernel.Task) {
				for {
					raw, er := a.RcvDtq(dtq)
					if er != tkernel.EOK {
						return
					}
					// Ask the calibration server to correct the value.
					reply, er := k.CalPor(por, 1, []byte{byte(raw)}, tkernel.TmoFevr)
					if er != tkernel.EOK || len(reply) == 0 {
						return
					}
					calibrated = append(calibrated, uint64(reply[0]))
				}
			}})
		server, _ := a.CreTsk(itron.T_CTSK{Name: "calib-srv", Pri: 8,
			Task: func(task *tkernel.Task) {
				for {
					no, msg, er := k.AcpPor(por, 1, tkernel.TmoFevr)
					if er != tkernel.EOK {
						return
					}
					k.Work(core.Cost{Time: 80 * sysc.Us}, "calibrate")
					_ = k.RplRdv(no, []byte{msg[0] + 3}) // offset correction
				}
			}})
		_ = a.ActTsk(sensor)
		_ = a.ActTsk(logger)
		_ = a.ActTsk(server)
	})

	if err := sim.Start(300 * sysc.Ms); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}

	fmt.Printf("calibrated readings (%d): %v\n\n", len(calibrated), calibrated)

	fmt.Println("kernel-dynamics event trace (first 40 events):")
	fmt.Printf("events recorded: %d\n", elog.Len())
	ds.KernelEvents(os.Stdout)

	fmt.Println("\ntask states at t=300 ms:")
	ds.ListTasks(os.Stdout)
}
