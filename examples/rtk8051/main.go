// RTK8051: the same task set on RTK-Spec I (round-robin) and RTK-Spec II
// (priority-preemptive), both driven by the i8051 BFM's real-time clock —
// the generality check the paper ran before building RTK-Spec TRON.
//
// Three tasks of different priorities each need 20 ms of CPU and log their
// completion; the two kernels order them differently while the same SIM_API
// constructs (T-THREADs, dispatching, preemption points) drive both.
//
//	go run ./examples/rtk8051
package main

import (
	"fmt"
	"os"

	"repro/internal/bfm"
	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/rtk"
	"repro/internal/run/opts"
	"repro/internal/sysc"
)

func runPolicy(policy rtk.Policy) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()

	// The 8051 BFM provides the tick.
	b := bfm.New(sim, nil, bfm.DefaultConfig())
	k := rtk.New(sim, rtk.Config{
		CommonOptions: opts.CommonOptions{
			TimeSlice: 5 * sysc.Ms,
			Tick:      b.RTC.Period(),
		},
		Policy:      policy,
		TickSource:  b.RTC.TickEvent(),
		ServiceCost: core.Cost{Time: 10 * sysc.Us, Energy: petri.MicroJ},
	})
	b.SetAPI(k.API())

	fmt.Printf("== %v ==\n", policy)
	type done struct {
		name string
		at   sysc.Time
	}
	var log []done
	for i, name := range []string{"sensor(hi)", "control(mid)", "logger(lo)"} {
		prio := (i + 1) * 10
		n := name
		task := k.CreateTask(n, prio, func(task *rtk.Task) {
			for j := 0; j < 4; j++ {
				task.Work(core.Cost{Time: 5 * sysc.Ms, Energy: 100 * petri.MicroJ}, "compute")
				// Touch the BFM: store a result to XRAM.
				b.Mem.Write(uint16(0x100+j), byte(j))
			}
			log = append(log, done{n, sim.Now()})
		})
		if err := k.Start(task); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := sim.Start(200 * sysc.Ms); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}
	for _, d := range log {
		fmt.Printf("  %-14s finished at %v\n", d.name, d.at)
	}
	fmt.Printf("  context switches=%d preemptions=%d rotations=%d bus-accesses=%d\n\n",
		k.API().ContextSwitches(), k.API().Preemptions(), k.Slices(), b.Accesses())
}

func main() {
	runPolicy(rtk.PriorityPreemptive)
	runPolicy(rtk.RoundRobin)
}
