// Quickstart: two tasks synchronizing through a semaphore on RTK-Spec TRON.
//
// This is the smallest useful co-simulation: boot the kernel, create a
// producer and a consumer, run one simulated second, and print the kernel's
// energy distribution and a DS listing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/tkernel"
)

func main() {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()

	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.DefaultCosts()})

	produced, consumed := 0, 0

	k.Boot(func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("items", tkernel.TaTFIFO, 0, 16)

		consumer, _ := k.CreTsk("consumer", 10, func(task *tkernel.Task) {
			for {
				if er := k.WaiSem(sem, 1, tkernel.TmoFevr); er != tkernel.EOK {
					return
				}
				// Annotated application work: 2 ms / 40 uJ per item.
				k.Work(core.Cost{Time: 2 * sysc.Ms, Energy: 40 * petri.MicroJ}, "consume")
				consumed++
			}
		})
		producer, _ := k.CreTsk("producer", 12, func(task *tkernel.Task) {
			for i := 0; i < 50; i++ {
				k.Work(core.Cost{Time: 5 * sysc.Ms, Energy: 60 * petri.MicroJ}, "produce")
				_ = k.SigSem(sem, 1)
				produced++
				_ = k.DlyTsk(10 * sysc.Ms)
			}
		})
		_ = k.StaTsk(consumer)
		_ = k.StaTsk(producer)
	})

	if err := sim.Start(1 * sysc.Sec); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}

	fmt.Printf("simulated %v: produced=%d consumed=%d\n\n", sim.Now(), produced, consumed)
	fmt.Println("Per-thread consumed execution time/energy (CET/CEE):")
	k.API().EnergyReport(os.Stdout)
	fmt.Println()
	tkds.New(k).ListTasks(os.Stdout)
}
