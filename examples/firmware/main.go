// Firmware: real 8051 machine code on the instruction-set simulator,
// sharing the co-simulation platform's XRAM and observing port/serial
// activity — the "ISS level" the paper's RTOS-level approach replaces.
//
// The firmware computes the first 12 Fibonacci numbers, stores them to
// external RAM through the BFM memory bus, prints a banner over the serial
// SFR, and blinks P1. The host side (this program) reads the results back
// from the shared XRAM and reports simulated vs wall time.
//
//	go run ./examples/firmware
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bfm"
	"repro/internal/i8051"
	"repro/internal/sysc"
)

func firmware() []byte {
	a := i8051.NewAsm()
	// Banner over serial.
	for _, ch := range []byte("FIB!") {
		a.MovDirImm(i8051.SfrSBUF, ch)
	}
	// R0=fib(i), R1=fib(i+1); store 12 values at XRAM 0x0100.
	a.MovRImm(0, 0).
		MovRImm(1, 1).
		MovRImm(2, 12). // count
		MovDPTR(0x0100).
		Label("loop").
		MovAR(0).
		MovxDPTRA(). // store fib(i)
		IncDPTR().
		MovDirImm(i8051.SfrP1, 0x55). // blink
		MovDirImm(i8051.SfrP1, 0xAA).
		MovAR(0).
		AddAR(1).              // A = fib(i) + fib(i+1)
		MovDirDir(0x00, 0x01). // R0 <- R1
		MovRA(1).              // R1 <- A
		DjnzR(2, "loop").
		Halt()
	return a.Assemble()
}

func main() {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()

	b := bfm.New(sim, nil, bfm.DefaultConfig())
	cpu := i8051.New(firmware())
	cpu.XRAM = b.Mem // share the platform bus

	var serial []byte
	cpu.SerialOut = func(v byte) { serial = append(serial, v) }
	blinks := 0
	cpu.PortOut = func(port int, v byte) {
		if port == 1 {
			blinks++
		}
	}

	m := i8051.NewMachine(sim, cpu, b.MachineCycle(), 1)
	wall0 := time.Now()
	// The BFM RTC free-runs, so advance in bounded steps until the
	// firmware halts.
	for t := sysc.Ms; !m.Halted() && t <= sysc.Sec; t += sysc.Ms {
		if err := sim.Start(t); err != nil {
			fmt.Fprintln(os.Stderr, "simulation error:", err)
			os.Exit(1)
		}
	}
	wall := time.Since(wall0)

	fmt.Printf("firmware halted after %d instructions, %d machine cycles\n",
		cpu.Instrs, cpu.Cycles)
	fmt.Printf("simulated %v in %v wall (ISS level)\n", sim.Now(), wall.Round(time.Microsecond))
	fmt.Printf("serial banner: %q   P1 blinks: %d   halted=%v\n\n", serial, blinks, m.Halted())

	fmt.Print("fibonacci from shared XRAM: ")
	for i := 0; i < 12; i++ {
		fmt.Printf("%d ", b.Mem.Read(uint16(0x0100+i)))
	}
	fmt.Println()
}
