// Package repro is a from-scratch Go reproduction of "RTK-Spec TRON: A
// Simulation Model of an ITRON Based RTOS Kernel in SystemC" (DATE 2005).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are in cmd/ and examples/; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation (see EXPERIMENTS.md).
package repro
