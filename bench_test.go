package repro

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/petri"
	"repro/internal/rtk"
	"repro/internal/run"
	"repro/internal/run/opts"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/tkernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchSimWindow is the simulated time per benchmark iteration. Table 2's
// published S is 1 s; a 250 ms window keeps iterations short while the
// reported simsec/s metric stays comparable.
const benchSimWindow = 250 * sysc.Ms

// BenchmarkTable2CoSimSpeed regenerates Table 2: co-simulation speed of the
// full framework (RTK-Spec TRON + i8051 BFM + video game) across GUI
// overhead and widget-driving BFM access rates. The custom metric
// simsec/s is the paper's S/R. Every configuration runs on both T-THREAD
// engines: the continuation engine is the headline (plain config name, what
// BENCH_sysc.json and the perf gates track) and the goroutine reference
// engine rides along under an engine=goroutine suffix so the handoff-cost
// gap stays measured.
func BenchmarkTable2CoSimSpeed(b *testing.B) {
	type cfg struct {
		name       string
		gui        bool
		frame      sysc.Time
		idleSleep  sysc.Time
		noTickless bool
		window     sysc.Time // overrides benchSimWindow when non-zero
	}
	cases := []cfg{
		{name: "gui=off/frame=off"},
		{name: "gui=off/frame=100ms", frame: 100 * sysc.Ms},
		{name: "gui=off/frame=50ms", frame: 50 * sysc.Ms},
		{name: "gui=off/frame=20ms", frame: 20 * sysc.Ms},
		{name: "gui=off/frame=10ms", frame: 10 * sysc.Ms},
		{name: "gui=on/frame=off", gui: true},
		{name: "gui=on/frame=100ms", gui: true, frame: 100 * sysc.Ms},
		{name: "gui=on/frame=50ms", gui: true, frame: 50 * sysc.Ms},
		{name: "gui=on/frame=20ms", gui: true, frame: 20 * sysc.Ms},
		{name: "gui=on/frame=10ms", gui: true, frame: 10 * sysc.Ms},
		// Idle-heavy variant: T4 sleeps in tk_dly_tsk instead of modelling
		// busy work, so most system ticks have nothing to do — the tickless
		// fast-forward case. The tickless=off twin measures its gain. The
		// longer window amortizes model construction, which otherwise
		// dominates an idle iteration and hides the steady-state gain.
		{name: "gui=off/frame=off/idle=sleep", idleSleep: 50 * sysc.Ms, window: 2500 * sysc.Ms},
		{name: "gui=off/frame=off/idle=sleep/tickless=off", idleSleep: 50 * sysc.Ms, noTickless: true, window: 2500 * sysc.Ms},
	}
	for _, c := range cases {
		for _, engine := range []string{opts.EngineContinuation, opts.EngineGoroutine} {
			engine := engine
			name := c.name
			if engine == opts.EngineGoroutine {
				name += "/engine=goroutine"
			}
			b.Run(name, func(b *testing.B) {
				window := benchSimWindow
				if c.window != 0 {
					window = c.window
				}
				for i := 0; i < b.N; i++ {
					acfg := app.DefaultConfig()
					acfg.Engine = engine
					acfg.GUI = c.gui
					acfg.GUIWorkFactor = experiments.GUIWorkFactor
					acfg.FramePeriod = c.frame
					acfg.IdleSleep = c.idleSleep
					acfg.DisableTickless = c.noTickless
					a := app.Build(acfg)
					if err := a.Run(window); err != nil {
						b.Fatal(err)
					}
					a.Shutdown()
				}
				simsec := window.Seconds() * float64(b.N)
				b.ReportMetric(simsec/b.Elapsed().Seconds(), "simsec/s")
			})
		}
	}
}

// BenchmarkSweepWarmStart measures warm-start sweep forking against the
// cold baseline: 16 variant seeds of a 12-simsec synthetic run that share
// a 10-simsec prefix. Cold simulates every variant from t=0; warm
// simulates the prefix once, snapshots at the quiescent point, and forks
// each variant from the snapshot — identical artifacts (the byte-equality
// property tests pin that), so the simsec/s ratio between the two modes
// is pure wall-clock speedup. One worker keeps the comparison purely
// algorithmic: exactly one shared prefix, no scheduling noise.
func BenchmarkSweepWarmStart(b *testing.B) {
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(1000 + i)
	}
	base := run.SweepSpec{
		Base: run.Spec{
			Scenario:  run.ScenarioSynthetic,
			Seed:      42,
			Dur:       run.Duration(12 * time.Second),
			Engine:    opts.EngineContinuation,
			Synthetic: &run.SyntheticSpec{Gen: &workload.GenSpec{}},
		},
		Prefix:  run.Duration(10 * time.Second),
		Seeds:   seeds,
		Workers: 1,
	}
	for _, mode := range []string{"cold", "warm"} {
		sw := base
		sw.Warm = mode == "warm"
		b.Run("mode="+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := run.ExecuteSweep(context.Background(), sw)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(seeds) {
					b.Fatalf("%d results, want %d", len(res), len(seeds))
				}
			}
			// Simulated coverage delivered per mode is the same (seeds x
			// full duration), so warm's higher simsec/s IS the speedup.
			simsec := sw.Base.Dur.Std().Seconds() * float64(len(seeds)) * float64(b.N)
			b.ReportMetric(simsec/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}

// BenchmarkFigure6Trace regenerates the step-mode execution time/energy
// trace: the framework runs tick by tick with the GANTT recorder attached,
// then renders the chart.
func BenchmarkFigure6Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := trace.NewGantt()
		cfg := app.DefaultConfig()
		cfg.GUI = false
		cfg.Gantt = g
		a := app.Build(cfg)
		tick := a.K.Tick()
		for t := tick; t <= 100*sysc.Ms; t += tick {
			if err := a.Run(t); err != nil {
				b.Fatal(err)
			}
		}
		var sb strings.Builder
		g.Render(&sb, 0, 100*sysc.Ms, 100)
		if len(g.Segments) == 0 || sb.Len() == 0 {
			b.Fatal("empty trace")
		}
		a.Shutdown()
	}
}

// BenchmarkFigure7Energy regenerates the consumed time/energy distribution
// with the 10 Wh battery; the metric reports the application's average
// power draw the widget displays.
func BenchmarkFigure7Energy(b *testing.B) {
	var lastPower float64
	for i := 0; i < b.N; i++ {
		cfg := app.DefaultConfig()
		cfg.GUI = false
		a := app.Build(cfg)
		if err := a.Run(benchSimWindow); err != nil {
			b.Fatal(err)
		}
		lastPower = a.Battery.Consumed().Joules() / benchSimWindow.Seconds()
		if a.Battery.Consumed() <= 0 {
			b.Fatal("no energy accounted")
		}
		a.Shutdown()
	}
	b.ReportMetric(lastPower*1e6, "uW-avg")
}

// BenchmarkFigure8DSListing regenerates the T-Kernel/DS output listing.
func BenchmarkFigure8DSListing(b *testing.B) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	a := app.Build(cfg)
	defer a.Shutdown()
	if err := a.Run(benchSimWindow); err != nil {
		b.Fatal(err)
	}
	ds := tkds.New(a.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		ds.Listing(&sb)
		if sb.Len() == 0 {
			b.Fatal("empty listing")
		}
	}
}

// BenchmarkFigure4Waveform regenerates the probed-signal waveform: the
// framework runs with a VCD recorder on the BFM signals.
func BenchmarkFigure4Waveform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vcd := trace.NewVCD()
		cfg := app.DefaultConfig()
		cfg.GUI = false
		cfg.VCD = vcd
		a := app.Build(cfg)
		if err := a.Run(100 * sysc.Ms); err != nil {
			b.Fatal(err)
		}
		if vcd.Len() == 0 {
			b.Fatal("no signal changes")
		}
		vcd.Render(io.Discard)
		a.Shutdown()
	}
}

// BenchmarkAblationDelayedDispatch measures the wakeup-to-dispatch latency
// of a high-priority task woken from inside a handler: with delayed
// dispatching the latency tracks the handler's remaining execution time.
func BenchmarkAblationDelayedDispatch(b *testing.B) {
	for _, hw := range []sysc.Time{0, 1 * sysc.Ms, 5 * sysc.Ms} {
		b.Run("handler="+hw.String(), func(b *testing.B) {
			var latency sysc.Time
			for i := 0; i < b.N; i++ {
				latency = delayedDispatchLatency(b, hw)
			}
			b.ReportMetric(float64(latency)/float64(sysc.Us), "latency-us")
		})
	}
}

func delayedDispatchLatency(b *testing.B, handlerWork sysc.Time) sysc.Time {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	var wokeAt, raisedAt sysc.Time
	k.Boot(func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("hi", 1, func(task *tkernel.Task) {
			_ = k.SlpTsk(tkernel.TmoFevr)
			wokeAt = sim.Now()
		})
		_ = k.StaTsk(id)
		alm, _ := k.CreAlm("h", func(h *tkernel.HandlerCtx) {
			raisedAt = sim.Now()
			_ = h.K.WupTsk(id)
			h.Work(core.Cost{Time: handlerWork}, "rest")
		})
		_ = k.StaAlm(alm, 10*sysc.Ms)
	})
	if err := sim.Start(sysc.Sec); err != nil {
		b.Fatal(err)
	}
	if wokeAt < raisedAt+handlerWork {
		b.Fatalf("dispatch not delayed: woke %v, handler until %v",
			wokeAt, raisedAt+handlerWork)
	}
	return wokeAt - raisedAt
}

// BenchmarkAblationGranularity sweeps the system tick: finer ticks buy
// timeout accuracy at the cost of simulation events per simulated second.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, tick := range []sysc.Time{100 * sysc.Us, 1 * sysc.Ms, 10 * sysc.Ms} {
		b.Run("tick="+tick.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := sysc.NewSimulator()
				k := tkernel.New(sim, tkernel.Config{CommonOptions: opts.CommonOptions{Tick: tick}, Costs: tkernel.ZeroCosts()})
				k.Boot(func(k *tkernel.Kernel) {
					id, _ := k.CreTsk("t", 10, func(task *tkernel.Task) {
						for {
							_ = k.DlyTsk(5 * sysc.Ms)
						}
					})
					_ = k.StaTsk(id)
				})
				if err := sim.Start(benchSimWindow); err != nil {
					b.Fatal(err)
				}
				sim.Shutdown()
			}
			simsec := benchSimWindow.Seconds() * float64(b.N)
			b.ReportMetric(simsec/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}

// BenchmarkAblationSchedulers runs the same workload on RTK-Spec I,
// RTK-Spec II and RTK-Spec TRON.
func BenchmarkAblationSchedulers(b *testing.B) {
	work := func(k *rtk.RTK) {
		for i := 0; i < 3; i++ {
			t := k.CreateTask("t", (i+1)*10, func(task *rtk.Task) {
				for j := 0; j < 50; j++ {
					task.Work(core.Cost{Time: 1 * sysc.Ms}, "")
				}
			})
			_ = k.Start(t)
		}
	}
	for _, p := range []rtk.Policy{rtk.RoundRobin, rtk.PriorityPreemptive} {
		name := "rtk1-roundrobin"
		if p == rtk.PriorityPreemptive {
			name = "rtk2-priority"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := sysc.NewSimulator()
				k := rtk.New(sim, rtk.Config{CommonOptions: opts.CommonOptions{TimeSlice: 2 * sysc.Ms}, Policy: p})
				work(k)
				if err := sim.Start(benchSimWindow); err != nil {
					b.Fatal(err)
				}
				sim.Shutdown()
			}
		})
	}
	b.Run("tron-tkernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim := sysc.NewSimulator()
			k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
			k.Boot(func(k *tkernel.Kernel) {
				for j := 0; j < 3; j++ {
					id, _ := k.CreTsk("t", (j+1)*10, func(task *tkernel.Task) {
						for n := 0; n < 50; n++ {
							k.Work(core.Cost{Time: 1 * sysc.Ms}, "")
						}
					})
					_ = k.StaTsk(id)
				}
			})
			if err := sim.Start(benchSimWindow); err != nil {
				b.Fatal(err)
			}
			sim.Shutdown()
		}
	})
}

// BenchmarkCycleSteppedBaseline is the ISS/RTL-level proxy the paper's
// conclusion compares against: the simulator evaluates one event per 8051
// machine cycle. Compare simsec/s with BenchmarkTable2CoSimSpeed to
// reproduce the "significant speed gain" claim.
func BenchmarkCycleSteppedBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wall, cycles := experiments.CycleSteppedBaseline(100 * sysc.Ms)
		if cycles == 0 || wall <= 0 {
			b.Fatal("baseline did not run")
		}
	}
	simsec := 0.1 * float64(b.N)
	b.ReportMetric(simsec/b.Elapsed().Seconds(), "simsec/s")
}

// BenchmarkISSLevelBaseline runs real 8051 firmware on the full
// instruction-set simulator coupled to the simulation clock — the honest
// "ISS level" whose simsec/s the paper's RTOS level beats by orders of
// magnitude (compare with BenchmarkTable2CoSimSpeed).
func BenchmarkISSLevelBaseline(b *testing.B) {
	for _, batch := range []int{1, 100} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wall, instrs := experiments.ISSBaseline(100*sysc.Ms, batch)
				if instrs == 0 || wall <= 0 {
					b.Fatal("ISS did not run")
				}
			}
			simsec := 0.1 * float64(b.N)
			b.ReportMetric(simsec/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}

// BenchmarkServiceCall measures the raw cost of one kernel service call
// (tk_sig_sem with no waiters) in the simulation.
func BenchmarkServiceCall(b *testing.B) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	var sem tkernel.ID
	k.Boot(func(k *tkernel.Kernel) {
		sem, _ = k.CreSem("s", tkernel.TaTFIFO, 0, 1<<30)
	})
	if err := sim.Start(10 * sysc.Ms); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if er := k.SigSem(sem, 1); er != tkernel.EOK {
			b.Fatal(er)
		}
	}
}

// BenchmarkContextSwitch measures a full ping-pong context switch between
// two tasks through sleep/wakeup.
func BenchmarkContextSwitch(b *testing.B) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	var aID, bID tkernel.ID
	k.Boot(func(k *tkernel.Kernel) {
		// Each ping carries a 1 us annotated cost so simulated time
		// advances (a zero-cost ping-pong would loop within one instant).
		aID, _ = k.CreTsk("a", 10, func(task *tkernel.Task) {
			for {
				k.Work(core.Cost{Time: sysc.Us}, "")
				_ = k.WupTsk(bID)
				if er := k.SlpTsk(tkernel.TmoFevr); er != tkernel.EOK {
					return
				}
			}
		})
		bID, _ = k.CreTsk("b", 10, func(task *tkernel.Task) {
			for {
				k.Work(core.Cost{Time: sysc.Us}, "")
				_ = k.WupTsk(aID)
				if er := k.SlpTsk(tkernel.TmoFevr); er != tkernel.EOK {
					return
				}
			}
		})
		_ = k.StaTsk(aID)
		_ = k.StaTsk(bID)
	})
	if err := sim.Start(1 * sysc.Ms); err != nil {
		b.Fatal(err)
	}
	swBefore := k.API().ContextSwitches()
	b.ResetTimer()
	target := swBefore + uint64(b.N)
	horizon := 2 * sysc.Ms
	for k.API().ContextSwitches() < target {
		if err := sim.Start(horizon); err != nil {
			b.Fatal(err)
		}
		horizon += 2 * sysc.Ms
	}
	b.ReportMetric(float64(k.API().ContextSwitches()-swBefore)/b.Elapsed().Seconds(), "ctxsw/s")
}

// BenchmarkTThreadConsume measures SIM_Wait throughput: annotated execution
// slices per wall second.
func BenchmarkTThreadConsume(b *testing.B) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	slices := 0
	k.Boot(func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("t", 10, func(task *tkernel.Task) {
			for {
				k.Work(core.Cost{Time: 10 * sysc.Us, Energy: petri.NanoJ}, "")
				slices++
			}
		})
		_ = k.StaTsk(id)
	})
	b.ResetTimer()
	horizon := sysc.Time(0)
	for slices < b.N {
		horizon += 10 * sysc.Ms
		if err := sim.Start(horizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyntheticCoSimSpeed measures kernel simulation speed on a
// generated synthetic task set — the default workload.GenSpec draw at a
// fixed seed, so the set (6 tasks, utilization 0.6, one sem/mutex/mbf/flag,
// one interrupt source) is identical across runs and machines. Unlike the
// Table 2 benchmark there is no BFM or GUI layer: this tracks the bare
// kernel data path under a mixed periodic/blocking load. Both T-THREAD
// engines run; the continuation engine is the headline.
func BenchmarkSyntheticCoSimSpeed(b *testing.B) {
	ts := workload.Generate(sweep.NewRNG(sweep.Seed(42, 0)), workload.GenSpec{})
	for _, engine := range []string{opts.EngineContinuation, opts.EngineGoroutine} {
		name := "gen=default"
		if engine == opts.EngineGoroutine {
			name += "/engine=goroutine"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := sysc.NewSimulator()
				kcfg := tkernel.Config{Costs: tkernel.DefaultCosts()}
				kcfg.Engine = engine
				k := tkernel.New(sim, kcfg)
				inst := workload.Build(sim, k, ts, 42)
				if err := sim.Start(benchSimWindow); err != nil {
					b.Fatal(err)
				}
				if inst.Activations() == 0 {
					b.Fatal("no task activations")
				}
				sim.Shutdown()
			}
			simsec := benchSimWindow.Seconds() * float64(b.N)
			b.ReportMetric(simsec/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}
