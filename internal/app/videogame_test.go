package app_test

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/bfm"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/trace"
)

// buildAndRun assembles the full co-simulation framework and simulates d.
func buildAndRun(t *testing.T, cfg app.Config, d sysc.Time) *app.App {
	t.Helper()
	a := app.Build(cfg)
	t.Cleanup(a.Shutdown)
	if err := a.Run(d); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestVideoGameOneSecond(t *testing.T) {
	cfg := app.DefaultConfig()
	cfg.GUI = false // keep the functional test fast
	a := buildAndRun(t, cfg, sysc.Sec)

	// H1 fires every 10 ms: ~100 frames in one second.
	if a.Frames() < 95 || a.Frames() > 101 {
		t.Fatalf("frames = %d, want ~100", a.Frames())
	}
	// H2 fires at 500 ms and re-arms: 2 bonuses by t=1 s.
	if a.Bonus() < 1 || a.Bonus() > 3 {
		t.Fatalf("bonus = %d", a.Bonus())
	}
	// The ball traverses 16 cells at 100 frames/s: several paddle chances;
	// the key pattern holds the paddle up often enough to score.
	if a.Score() == 0 {
		t.Fatal("no paddle hits scored")
	}
	// Keypad interrupts were raised and dispatched.
	info, er := a.K.RefInt(bfm.KeypadIntLine)
	if er.OK() == false || info.Fires == 0 {
		t.Fatalf("keypad ISR fires = %+v %v", info, er)
	}
	// The SSD shows the current total.
	total := a.Score() + a.Bonus()
	if a.SSD.Value() != total {
		t.Fatalf("SSD shows %d, want %d", a.SSD.Value(), total)
	}
	// Serial transmitted score reports (one per score update).
	if a.B.Serial.TxCount() == 0 {
		t.Fatal("no serial traffic")
	}
	// Energy accounting: all four tasks consumed energy; the idle task
	// consumed the most CPU time (it runs whenever nothing else does).
	api := a.K.API()
	idle := api.LookupByName("T4.idle")
	lcd := api.LookupByName("T1.lcd")
	if idle == nil || lcd == nil {
		t.Fatal("tasks missing from registry")
	}
	if idle.CET() < lcd.CET() {
		t.Fatalf("idle CET %v < lcd CET %v", idle.CET(), lcd.CET())
	}
	if api.BusyTime() == 0 || api.TotalCEE() == 0 {
		t.Fatal("no busy time / energy accounted")
	}
	// CPU cannot be busy longer than simulated time.
	if api.BusyTime() > sysc.Sec {
		t.Fatalf("busy %v exceeds simulated 1 s", api.BusyTime())
	}
}

func TestVideoGameTraceNoOverlap(t *testing.T) {
	g := trace.NewGantt()
	cfg := app.DefaultConfig()
	cfg.GUI = false
	cfg.Gantt = g
	a := buildAndRun(t, cfg, 200*sysc.Ms)
	if len(g.Segments) == 0 {
		t.Fatal("no trace segments")
	}
	if s1, s2, overlap := g.CheckNoOverlap(); overlap {
		t.Fatalf("overlap: %+v vs %+v", s1, s2)
	}
	// The trace shows all execution contexts of Figure 6.
	byCtx := map[trace.Context]bool{}
	for _, s := range g.Segments {
		byCtx[s.Ctx] = true
	}
	for _, ctx := range []trace.Context{trace.CtxTask, trace.CtxService, trace.CtxHandler, trace.CtxBFM} {
		if !byCtx[ctx] {
			t.Errorf("context %v missing from trace", ctx)
		}
	}
	_ = a
}

func TestVideoGameBattery(t *testing.T) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	a := buildAndRun(t, cfg, sysc.Sec)
	if a.Battery.Consumed() <= 0 {
		t.Fatal("battery not depleting")
	}
	if a.Battery.Percent() >= 100 || a.Battery.Percent() <= 0 {
		t.Fatalf("percent = %v", a.Battery.Percent())
	}
	life, ok := a.Battery.Lifespan(sysc.Sec)
	if !ok || life <= sysc.Sec {
		t.Fatalf("lifespan = %v %v", life, ok)
	}
	// Render includes the bar and the distribution table.
	txt := a.Battery.RenderText()
	if !strings.Contains(txt, "BATTERY [") || !strings.Contains(txt, "TOTAL") {
		t.Fatalf("battery widget:\n%s", txt)
	}
}

func TestVideoGameDSListing(t *testing.T) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	a := buildAndRun(t, cfg, 100*sysc.Ms)
	ds := tkds.New(a.K)
	var b strings.Builder
	ds.Listing(&b)
	out := b.String()
	for _, name := range []string{"T1.lcd", "T2.keypad", "T3.ssd", "T4.idle",
		"frame-flg", "key-mbx", "score-sem", "H1.cyclic", "H2.alarm", "key-isr"} {
		if !strings.Contains(out, name) {
			t.Errorf("DS listing missing %q", name)
		}
	}
}

func TestVideoGameGUIRefreshesFollowBFMAccess(t *testing.T) {
	cfg := app.DefaultConfig()
	cfg.GUIWorkFactor = 1 // minimal host work, still counted
	a := buildAndRun(t, cfg, 200*sysc.Ms)
	// Every LCD/SSD device write refreshes its widget: ~20 frames × ~5
	// writes plus SSD updates.
	if a.GUI.Refreshes() < 50 {
		t.Fatalf("refreshes = %d", a.GUI.Refreshes())
	}
	if a.GUI.RasterChecksum() == 0 {
		t.Fatal("raster work was optimized away")
	}
}

func TestVideoGameNoFrames(t *testing.T) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	cfg.FramePeriod = 0 // no LCD frames: the BFM-access knob at "off"
	cfg.KeyPeriod = 0
	a := buildAndRun(t, cfg, 200*sysc.Ms)
	if a.Frames() != 0 {
		t.Fatalf("frames = %d, want 0", a.Frames())
	}
	if a.LCD.Writes() != 0 {
		t.Fatalf("lcd writes = %d", a.LCD.Writes())
	}
}

func TestVideoGameDeterministic(t *testing.T) {
	runOnce := func() (uint64, int, int, sysc.Time) {
		cfg := app.DefaultConfig()
		cfg.GUI = false
		a := app.Build(cfg)
		defer a.Shutdown()
		if err := a.Run(500 * sysc.Ms); err != nil {
			t.Fatal(err)
		}
		return a.Frames(), a.Score(), a.Bonus(), a.K.API().BusyTime()
	}
	f1, s1, b1, t1 := runOnce()
	f2, s2, b2, t2 := runOnce()
	if f1 != f2 || s1 != s2 || b1 != b2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
			f1, s1, b1, t1, f2, s2, b2, t2)
	}
}

func TestVideoGameLCDShowsBall(t *testing.T) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	a := buildAndRun(t, cfg, 100*sysc.Ms)
	if !strings.Contains(a.LCD.Render(), "o") {
		t.Fatalf("no ball on LCD:\n%s", a.LCD.Render())
	}
}
