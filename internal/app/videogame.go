// Package app implements the case-study application of Section 5.2: a video
// game that maps onto four communicating tasks {LCD:T1, Keypad:T2, SSD:T3,
// IDLE:T4} and two handlers {Cyclic:H1, Alarm:H2}, running on RTK-Spec TRON
// over the i8051 BFM, with GUI widgets wrapping the peripherals.
//
// The game is a one-row pong: a ball bounces across the 16×2 LCD, the
// player moves a paddle with the keypad, the score shows on the
// seven-segment display. H1 paces the frames, the keypad ISR forwards key
// events to T2 through a mailbox, T1 renders frames into the LCD over the
// parallel port (the BFM access that drives the GUI widget), T3 updates the
// SSD when the score changes, and T4 idles at the lowest priority.
package app

import (
	"context"

	"repro/internal/bfm"
	"repro/internal/core"
	"repro/internal/gui"
	"repro/internal/petri"
	"repro/internal/run/opts"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// Config parameterizes the co-simulation framework build. The embedded
// CommonOptions carry the cross-kernel knobs: Tick sets the BFM real-time
// clock period driving the kernel's central module (default 1 ms), Bus/Gantt
// the observability wiring; TimeSlice is ignored (RTK-Spec TRON is purely
// priority-preemptive).
type Config struct {
	opts.CommonOptions

	// FramePeriod is the cyclic-handler period pacing LCD frames — the BFM
	// access rate that drives the GUI widget (the paper sweeps this; max
	// rate is a widget refresh every 10 ms). Zero disables LCD frames.
	FramePeriod sysc.Time
	// AlarmPeriod re-arms the bonus alarm handler (default 500 ms).
	AlarmPeriod sysc.Time
	// KeyPeriod is the synthetic user pressing a key every KeyPeriod
	// (captures user events; zero disables).
	KeyPeriod sysc.Time
	// GUI enables the widget layer's host overhead.
	GUI bool
	// GUIWorkFactor overrides the widget raster work (0 = default).
	GUIWorkFactor int
	// VCD attaches a waveform recorder probing BFM signals (Figure 4).
	VCD *trace.VCD
	// Costs is the kernel annotation model (default DefaultCosts).
	Costs *tkernel.Costs
	// FrameWork is T1's computation per frame (default 300 us / 15 uJ).
	FrameWork core.Cost
	// IdleSlice is T4's work chunk per loop (default 10 ms at low power).
	// The slice is only a trace-segmentation granule: SIM_Wait is a
	// preemption point that wakes on the preempt event and charges pro
	// rata, so a longer slice changes neither scheduling instants nor
	// consumed time/energy — it just cuts the idle thread's park/wake
	// round-trips (and, under tickless, lets the clock skip across it).
	IdleSlice core.Cost
	// IdleSleep, when positive, makes T4 block in tk_dly_tsk for this long
	// per loop instead of modelling IdleSlice of busy work — the
	// halt-the-CPU idle loop of a real RTOS, and the configuration where
	// the tickless fast-forward pays off.
	IdleSleep sysc.Time
	// DisableTickless forces every RTC tick to be simulated (A/B trace
	// comparison, debugging).
	DisableTickless bool
	// Seed randomizes the synthetic user's key presses (deterministic per
	// seed). Zero keeps the legacy fixed up/down pattern.
	Seed uint64
}

// DefaultConfig returns the case-study configuration: a frame every 10 ms
// (the paper's maximum BFM access rate driving a GUI widget), bonus alarm
// every 500 ms, a key press every 120 ms.
func DefaultConfig() Config {
	return Config{
		FramePeriod: 10 * sysc.Ms,
		AlarmPeriod: 500 * sysc.Ms,
		KeyPeriod:   120 * sysc.Ms,
		GUI:         true,
	}
}

// App is the assembled co-simulation framework of Figure 5: RTK-Spec TRON +
// i8051 BFM + peripherals wrapped in GUI widgets + the video-game tasks.
type App struct {
	Sim *sysc.Simulator
	K   *tkernel.Kernel
	B   *bfm.BFM
	GUI *gui.Manager

	LCD *bfm.LCD
	Pad *bfm.Keypad
	SSD *bfm.SSD

	LCDW    *gui.LCDWidget
	SSDW    *gui.SSDWidget
	PadW    *gui.KeypadWidget
	Battery *gui.BatteryWidget
	TraceW  *gui.TraceWidget
	cfg     Config

	T1, T2, T3, T4 tkernel.ID
	H1, H2         tkernel.ID

	frameFlg tkernel.ID // H1 -> T1 frame pacing
	keyMbx   tkernel.ID // ISR -> T2 key events
	scoreSem tkernel.ID // T2 -> T3 score updates

	// Game state (guarded by task structure: only T1/T2 mutate).
	ballX, ballDir int
	paddle         int
	score          int
	bonus          int
	frames         uint64
}

// Flag bits on frameFlg.
const (
	flgFrame uint32 = 1 << 0
	flgQuit  uint32 = 1 << 1
)

// Build assembles the framework on a fresh simulator and boots the kernel.
// Call Run (or drive app.Sim yourself) afterwards.
func Build(cfg Config) *App {
	if cfg.AlarmPeriod <= 0 {
		cfg.AlarmPeriod = 500 * sysc.Ms
	}
	if cfg.FrameWork == (core.Cost{}) {
		cfg.FrameWork = core.Cost{Time: 300 * sysc.Us, Energy: 15 * petri.MicroJ}
	}
	if cfg.IdleSlice == (core.Cost{}) {
		cfg.IdleSlice = core.Cost{Time: 10 * sysc.Ms, Energy: 20 * petri.MicroJ}
	}
	costs := tkernel.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}

	a := &App{Sim: sysc.NewSimulator(), cfg: cfg, ballDir: 1}

	// Hardware side: BFM with RTC driving the kernel tick.
	a.GUI = gui.NewManager(cfg.GUI)
	if cfg.GUIWorkFactor > 0 {
		a.GUI.WorkFactor = cfg.GUIWorkFactor
	}

	// BFM first: its real-time clock (1 ms resolution) drives the kernel's
	// central module, exactly as in Figure 5. The SIM_API reference for
	// access-budget attribution is attached after kernel construction.
	bcfg := bfm.DefaultConfig()
	bcfg.VCD = cfg.VCD
	if cfg.Tick > 0 {
		bcfg.TickPeriod = cfg.Tick
	}
	a.B = bfm.New(a.Sim, nil, bcfg)
	a.K = tkernel.New(a.Sim, tkernel.Config{
		CommonOptions: opts.CommonOptions{
			Engine: cfg.Engine,
			Tick:   a.B.RTC.Period(),
			Bus:    cfg.Bus,
			Gantt:  cfg.Gantt,
		},
		Costs:           costs,
		TickSource:      a.B.RTC.TickEvent(),
		Ticker:          a.B.RTC.Ticker(),
		DisableTickless: cfg.DisableTickless,
	})
	a.B.SetAPI(a.K.API())

	// Peripherals on the multiplexed parallel I/O (port 1) and interrupt
	// wiring.
	a.LCD = bfm.NewLCD(2, 16)
	a.Pad = bfm.NewKeypad(a.B.IntC)
	a.SSD = bfm.NewSSD()
	a.B.Ports[1].Attach(a.LCD) // select index 0
	a.B.Ports[1].Attach(a.SSD) // select index 1
	a.B.Ports[2].Attach(a.Pad)

	// Widgets wrapping the peripherals.
	a.LCDW = gui.NewLCDWidget(a.GUI, a.LCD)
	a.SSDW = gui.NewSSDWidget(a.GUI, a.SSD)
	a.PadW = gui.NewKeypadWidget(a.GUI, a.Pad)
	a.Battery = gui.NewBatteryWidget(a.GUI, a.K.API(), 10*petri.WattHour)
	if cfg.Gantt != nil {
		a.TraceW = gui.NewTraceWidget(a.GUI, cfg.Gantt, 100*sysc.Ms)
	}

	// Interrupt controller -> kernel interrupt dispatch.
	a.B.IntC.SetSink(func(line int) { _ = a.K.RaiseInterrupt(line) })
	a.B.IntC.EnableLine(bfm.KeypadIntLine)
	a.B.IntC.EnableLine(bfm.SerialIntLine)

	a.K.Boot(a.userMain)

	// Synthetic user pressing keys (GUI event capture). A non-zero seed
	// draws the up/down sequence from a deterministic stream instead of the
	// legacy fixed pattern, so runs vary by seed but replay exactly. Under
	// the continuation engine the user runs as a step-function coroutine —
	// same click instants, no goroutine.
	if cfg.KeyPeriod > 0 {
		keys := []byte{2, 8, 2, 2, 8, 8} // up/down pattern
		var rng *sweep.RNG
		if cfg.Seed != 0 {
			rng = sweep.NewRNG(cfg.Seed)
		}
		click := func(i int) {
			key := keys[i%len(keys)]
			if rng != nil {
				key = keys[rng.Intn(len(keys))]
			}
			a.PadW.Click(key)
		}
		if cfg.Engine == opts.EngineContinuation {
			i, started := 0, false
			a.Sim.SpawnCoro("user.keys", func(c *sysc.Coro) {
				if started {
					click(i)
					i++
				}
				started = true
				c.Wait(cfg.KeyPeriod)
			})
		} else {
			a.Sim.Spawn("user.keys", func(th *sysc.Thread) {
				for i := 0; ; i++ {
					th.Wait(cfg.KeyPeriod)
					click(i)
				}
			})
		}
	}
	return a
}

// userMain is the user main entry called by the INIT task: it creates and
// starts tasks, handlers and application resources (Figure 3's startup).
// Every body is a tkernel.Program, so the same op sequence runs on either
// T-THREAD engine: the goroutine engine interprets it, the continuation
// engine drives it inline as a resumable machine.
func (a *App) userMain(k *tkernel.Kernel) {
	a.frameFlg, _ = k.CreFlg("frame-flg", tkernel.TaWMUL, 0)
	a.keyMbx, _ = k.CreMbx("key-mbx", tkernel.TaMFIFO)
	a.scoreSem, _ = k.CreSem("score-sem", tkernel.TaTFIFO, 0, 100)

	a.T1, _ = k.CreTskProg("T1.lcd", 10, a.lcdProgram(k))
	a.T2, _ = k.CreTskProg("T2.keypad", 8, a.keypadProgram(k))
	a.T3, _ = k.CreTskProg("T3.ssd", 12, a.ssdProgram(k))
	a.T4, _ = k.CreTskProg("T4.idle", 100, a.idleProgram(k))

	_ = k.StaTsk(a.T1)
	_ = k.StaTsk(a.T2)
	_ = k.StaTsk(a.T3)
	_ = k.StaTsk(a.T4)

	// H1: cyclic handler pacing frames at the BFM access rate.
	if a.cfg.FramePeriod > 0 {
		a.H1, _ = k.CreCycProg("H1.cyclic", a.cfg.FramePeriod, 0,
			k.NewHandlerProgram("H1.cyclic").
				Work(core.Cost{Time: 20 * sysc.Us, Energy: petri.MicroJ}, "frame-tick").
				SetFlg(&a.frameFlg, flgFrame, nil))
		_ = k.StaCyc(a.H1)
	}

	// H2: alarm handler awarding a periodic bonus, re-arming itself (the
	// StaAlm op reads &a.H2, assigned below after the program is built).
	a.H2, _ = k.CreAlmProg("H2.alarm",
		k.NewHandlerProgram("H2.alarm").
			Work(core.Cost{Time: 15 * sysc.Us, Energy: petri.MicroJ}, "bonus").
			Atom(func() { a.bonus++ }).
			SigSem(&a.scoreSem, 1, nil).
			StaAlm(&a.H2, a.cfg.AlarmPeriod, nil))
	_ = k.StaAlm(a.H2, a.cfg.AlarmPeriod)

	// Keypad ISR: read the key from the port, post it to T2's mailbox.
	var keyMsg *tkernel.Message
	_ = k.DefIntProg(bfm.KeypadIntLine, "key-isr",
		k.NewHandlerProgram("key-isr").
			Work(core.Cost{Time: 10 * sysc.Us, Energy: petri.MicroJ}, "key-isr").
			AtomIo(func() { // keypad port read consumes BFM time
				a.B.Ports[2].Select(0)
				keyMsg = &tkernel.Message{Payload: a.B.Ports[2].Read()}
			}).
			SndMbx(&a.keyMbx, &keyMsg, nil))
	// Serial ISR: count transmit completions (waveform fodder).
	_ = k.DefIntProg(bfm.SerialIntLine, "ser-isr",
		k.NewHandlerProgram("ser-isr").
			Work(core.Cost{Time: 5 * sysc.Us, Energy: 500 * petri.NanoJ}, "ser-isr"))
}

// lcdProgram is T1: wait for the frame event, compute the next game frame
// and render it into the LCD through BFM port writes.
func (a *App) lcdProgram(k *tkernel.Kernel) *tkernel.Program {
	var (
		ptn    uint32
		er     tkernel.ER
		scored bool
	)
	return k.NewProgram("T1.lcd").
		Label("loop").
		WaiFlg(&a.frameFlg, flgFrame|flgQuit, tkernel.TwfORW|tkernel.TwfBitCLR,
			tkernel.TmoFevr, &ptn, &er).
		Br(func() bool { return er != tkernel.EOK || ptn&flgQuit != 0 }, "end").
		Work(a.cfg.FrameWork, "frame-compute").
		Atom(func() { scored = a.stepGame() }).
		Br(func() bool { return !scored }, "render").
		SigSem(&a.scoreSem, 1, nil).
		Label("render").
		AtomIo(func() { // LCD port writes consume BFM/GUI time
			a.renderFrame()
			a.frames++
		}).
		Jump("loop").
		Label("end")
}

// stepGame advances the ball and reports a paddle hit (the caller signals
// the score semaphore as its own program op).
func (a *App) stepGame() bool {
	a.ballX += a.ballDir
	if a.ballX <= 0 {
		a.ballX = 0
		a.ballDir = 1
	}
	if a.ballX >= 15 {
		a.ballX = 15
		a.ballDir = -1
		if a.paddle == 1 { // paddle in the ball's row half
			a.score++
			return true
		}
	}
	return false
}

// renderFrame writes the frame to the LCD over the parallel port: the BFM
// access driving the GUI widget.
func (a *App) renderFrame() {
	p := a.B.Ports[1]
	p.Select(0) // LCD
	p.Write(0x01)
	p.Write(0x80 | byte(a.ballX))
	p.Write('o')
	p.Write(0x80 | 16 | 15) // paddle column, row 1
	if a.paddle == 1 {
		p.Write(']')
	} else {
		p.Write(' ')
	}
}

// keypadProgram is T2: receive key events from the ISR's mailbox and move
// the paddle.
func (a *App) keypadProgram(k *tkernel.Kernel) *tkernel.Program {
	var (
		msg *tkernel.Message
		er  tkernel.ER
	)
	return k.NewProgram("T2.keypad").
		Label("loop").
		RcvMbx(&a.keyMbx, tkernel.TmoFevr, &msg, &er).
		Br(func() bool { return er != tkernel.EOK }, "end").
		Work(core.Cost{Time: 80 * sysc.Us, Energy: 4 * petri.MicroJ}, "key-handle").
		Atom(func() {
			key, _ := msg.Payload.(byte)
			switch key {
			case 2: // up
				a.paddle = 1
			case 8: // down
				a.paddle = 0
			}
		}).
		Jump("loop").
		Label("end")
}

// ssdProgram is T3: update the score display whenever the score semaphore
// is signalled (by T1 scoring or H2 bonuses).
func (a *App) ssdProgram(k *tkernel.Kernel) *tkernel.Program {
	var er tkernel.ER
	return k.NewProgram("T3.ssd").
		Label("loop").
		WaiSem(&a.scoreSem, 1, tkernel.TmoFevr, &er).
		Br(func() bool { return er != tkernel.EOK }, "end").
		Work(core.Cost{Time: 60 * sysc.Us, Energy: 3 * petri.MicroJ}, "score-update").
		AtomIo(func() { // SSD port writes + serial send consume BFM time
			total := a.score + a.bonus
			p := a.B.Ports[1]
			p.Select(1) // SSD
			p.Write(byte(0x00 | (total/1000)%10))
			p.Write(byte(0x10 | (total/100)%10))
			p.Write(byte(0x20 | (total/10)%10))
			p.Write(byte(0x30 | total%10))
			// Report the score over the serial channel (waveform traffic;
			// transmission completion raises the serial ISR).
			a.B.Serial.Send(byte(total))
		}).
		Jump("loop").
		Label("end")
}

// idleProgram is T4: the lowest-priority task burning idle cycles (its
// share in the time/energy distribution shows the CPU headroom, Figure 7).
// With IdleSleep set it blocks in tk_dly_tsk instead, leaving the CPU
// genuinely idle between events.
func (a *App) idleProgram(k *tkernel.Kernel) *tkernel.Program {
	p := k.NewProgram("T4.idle")
	if a.cfg.IdleSleep > 0 {
		var er tkernel.ER
		return p.Label("loop").
			DlyTsk(a.cfg.IdleSleep, &er).
			Br(func() bool { return er != tkernel.EOK }, "end").
			Jump("loop").
			Label("end")
	}
	return p.Label("loop").
		Work(a.cfg.IdleSlice, "idle").
		Jump("loop")
}

// Run simulates d of system time and returns the simulator error, if any.
func (a *App) Run(d sysc.Time) error { return a.Sim.Start(d) }

// RunContext runs like Run but observes ctx at every quiescent point: a
// cancelled or expired context stops the simulation at the next stable
// instant and its error is returned (the server's job-cancellation path).
func (a *App) RunContext(ctx context.Context, d sysc.Time) error {
	return a.Sim.StartContext(ctx, d)
}

// Shutdown reclaims the simulation processes.
func (a *App) Shutdown() { a.Sim.Shutdown() }

// Score returns the paddle-hit score.
func (a *App) Score() int { return a.score }

// Bonus returns the alarm-awarded bonus count.
func (a *App) Bonus() int { return a.bonus }

// Frames returns the number of frames T1 rendered.
func (a *App) Frames() uint64 { return a.frames }
