package app_test

import (
	"bytes"
	"testing"

	"repro/internal/app"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// abRun builds the case study with full observability attached, runs 2 s of
// system time, and returns the perfetto trace bytes, the metrics JSON bytes
// and the kernel tick count.
func abRun(t *testing.T, cfg app.Config, disable bool) ([]byte, []byte, uint64) {
	t.Helper()
	bus := event.NewBus()
	var tbuf bytes.Buffer
	pf := trace.AttachPerfetto(bus, &tbuf)
	coll := metrics.Attach(bus)
	cfg.Bus = bus
	cfg.DisableTickless = disable
	a := app.Build(cfg)
	defer a.Shutdown()
	if err := a.Run(2 * sysc.Sec); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if err := coll.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	coll.Close()
	return tbuf.Bytes(), mbuf.Bytes(), a.K.Ticks()
}

// TestTicklessObservablyIdentical asserts the tickless fast-forward is
// invisible to every observer: for a fixed seed, the perfetto trace and the
// metrics JSON are byte-identical with tickless on and off, in both the busy
// default configuration and a sleeping-idle one where most ticks are
// skipped.
func TestTicklessObservablyIdentical(t *testing.T) {
	busy := app.DefaultConfig()
	busy.GUI = false
	busy.Seed = 7

	idle := app.DefaultConfig()
	idle.GUI = false
	idle.Seed = 7
	idle.FramePeriod = 0
	idle.IdleSleep = 20 * sysc.Ms

	for name, cfg := range map[string]app.Config{"busy": busy, "idle": idle} {
		t.Run(name, func(t *testing.T) {
			trOn, mOn, ticksOn := abRun(t, cfg, false)
			trOff, mOff, ticksOff := abRun(t, cfg, true)
			if ticksOn != ticksOff {
				t.Fatalf("ticks: tickless %d, baseline %d", ticksOn, ticksOff)
			}
			if ticksOn != 2000 {
				t.Fatalf("ticks = %d, want 2000", ticksOn)
			}
			if !bytes.Equal(trOn, trOff) {
				t.Fatalf("perfetto trace differs (%d vs %d bytes)", len(trOn), len(trOff))
			}
			if !bytes.Equal(mOn, mOff) {
				t.Fatalf("metrics JSON differs:\n%s\n---\n%s", mOn, mOff)
			}
			if len(trOn) == 0 || len(mOn) == 0 {
				t.Fatal("empty observability output")
			}
		})
	}
}
