package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/run"
	"repro/internal/workload"
)

// TestSyntheticHTTPvsCLI extends the cross-transport contract to the
// synthetic scenario: a fixed-seed generated task set produces
// byte-identical trace, metrics, and resolved-taskset artifacts whether
// executed directly or through the job server.
func TestSyntheticHTTPvsCLI(t *testing.T) {
	spec := run.Spec{
		Scenario:  run.ScenarioSynthetic,
		Dur:       run.Duration(100 * time.Millisecond),
		Seed:      42,
		Synthetic: &run.SyntheticSpec{Gen: &workload.GenSpec{Interrupts: 2}},
		Artifacts: []string{run.ArtifactTrace, run.ArtifactMetrics, run.ArtifactTaskSet},
	}
	direct, err := run.Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(spec)
	id := submit(t, ts, string(body))
	v := waitTerminal(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("state %s (%v)", v.State, v.Error)
	}
	for _, name := range spec.Artifacts {
		got := fetchArtifact(t, ts, id, name)
		want := direct.Artifacts[name]
		if len(want) == 0 {
			t.Fatalf("%s: empty direct artifact", name)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: HTTP and direct bytes differ (%d vs %d)", name, len(got), len(want))
		}
	}
	if v.Stats.Activations != direct.Stats.Activations || v.Stats.CtxSwitches != direct.Stats.CtxSwitches {
		t.Fatalf("stats digest differs: %+v vs %+v", v.Stats, direct.Stats)
	}
	if direct.Stats.Activations == 0 {
		t.Fatal("synthetic run recorded no task activations")
	}
}
