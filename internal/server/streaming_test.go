package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/run"
)

// --- SSE wire helpers ---

// sseFrame is one decoded server-sent event.
type sseFrame struct {
	ID    uint64
	Event string
	Data  Event
}

// readSSE decodes frames from an open SSE body until limit frames have
// been read (0 = until EOF). It returns the decoded frames.
func readSSE(t *testing.T, body io.Reader, limit int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if limit > 0 && len(frames) == limit {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			cur.ID = n
		case strings.HasPrefix(line, "event: "):
			cur.Event = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return frames
}

// openEvents opens the SSE feed for a job, optionally resuming.
func openEvents(t *testing.T, ts *httptest.Server, id string, lastEventID uint64) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+id+"/events", nil)
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events feed: %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	return resp
}

// streamingExec is a controllable fake streaming executor: it writes the
// given chunks to the trace sink, pausing on gate between chunks when
// gate is non-nil, emits one progress snapshot per chunk, and returns
// when done is closed (or the context ends, returning its cause).
func streamingExec(chunks [][]byte, gate <-chan struct{}, done <-chan struct{}) func(context.Context, run.Spec, run.StreamOptions) (run.Result, error) {
	return func(ctx context.Context, spec run.Spec, o run.StreamOptions) (run.Result, error) {
		sink := o.Sinks[run.ArtifactTrace]
		for _, c := range chunks {
			if gate != nil {
				select {
				case <-gate:
				case <-ctx.Done():
					return run.Result{}, context.Cause(ctx)
				}
			}
			if _, err := sink.Write(c); err != nil {
				return run.Result{}, err
			}
			if o.Progress != nil {
				o.Progress(run.Stats{Scenario: spec.Scenario, Jobs: 1})
			}
		}
		select {
		case <-done:
		case <-ctx.Done():
			return run.Result{}, context.Cause(ctx)
		}
		return run.Result{Stats: run.Stats{Scenario: spec.Scenario}, Artifacts: map[string][]byte{}}, nil
	}
}

const streamSpecBody = `{"dur":"60ms","seed":7,"artifacts":["trace.json","metrics.json","console.txt"],"stream":true}`
const bufferedSpecBody = `{"dur":"60ms","seed":7,"artifacts":["trace.json","metrics.json","console.txt"]}`

// TestStreamByteIdenticalOverHTTP runs the same spec buffered and
// streamed through the real executor and asserts every artifact crosses
// the wire byte-identical, with matching strong ETags.
func TestStreamByteIdenticalOverHTTP(t *testing.T) {
	s := New(Config{Workers: 2, DisableCache: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	bufID := submit(t, ts, bufferedSpecBody)
	if v := waitTerminal(t, ts, bufID); v.State != StateDone {
		t.Fatalf("buffered job: %s %v", v.State, v.Error)
	}

	strID := submit(t, ts, streamSpecBody)
	v := waitTerminal(t, ts, strID)
	if v.State != StateDone {
		t.Fatalf("streamed job: %s %v", v.State, v.Error)
	}
	if !v.Stream {
		t.Fatal("job view lost the stream flag")
	}
	if len(v.Artifacts) != 3 {
		t.Fatalf("streamed artifact listing: %v", v.Artifacts)
	}

	for _, name := range []string{run.ArtifactTrace, run.ArtifactMetrics, run.ArtifactConsole} {
		want := fetchArtifact(t, ts, bufID, name)
		got := fetchArtifact(t, ts, strID, name)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: streamed %d bytes != buffered %d bytes", name, len(got), len(want))
		}
		// ?stream=1 on a finished artifact serves the same bytes.
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + strID + "/artifacts/" + name + "?stream=1")
		if err != nil {
			t.Fatal(err)
		}
		live, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(live, want) {
			t.Errorf("%s: ?stream=1 served %d bytes, want %d", name, len(live), len(want))
		}
		if name == run.ArtifactConsole {
			continue // buffered artifact: ETag computed per request, same path
		}
		if et := resp.Header.Get("ETag"); et != etagOf(want) {
			t.Errorf("%s: ring ETag %s != buffered %s", name, et, etagOf(want))
		}
	}

	// Conditional revalidation against the ring's incremental ETag.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+strID+"/artifacts/trace.json", nil)
	req.Header.Set("If-None-Match", etagOf(fetchArtifact(t, ts, bufID, run.ArtifactTrace)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match on ring artifact: %d", resp.StatusCode)
	}
}

// TestStreamLiveChunked drives the live path with a controllable
// executor: the client receives the first chunk while the job is still
// running (streaming, not buffering), a plain GET still answers 409, and
// the finished stream carries no error trailer.
func TestStreamLiveChunked(t *testing.T) {
	gate := make(chan struct{})
	done := make(chan struct{})
	chunks := [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma")}
	s := New(Config{Workers: 1, ExecuteStream: streamingExec(chunks, gate, done)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"60ms","artifacts":["trace.json"],"stream":true}`)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/artifacts/trace.json?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live stream: %d", resp.StatusCode)
	}

	// First chunk arrives while the producer still runs.
	gate <- struct{}{}
	buf := make([]byte, 64)
	n, err := io.ReadAtLeast(resp.Body, buf, len(chunks[0]))
	if err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if string(buf[:n]) != "alpha-" {
		t.Fatalf("first chunk %q", buf[:n])
	}

	// The job is verifiably still running — and a plain GET conflicts.
	if v := getJob(t, ts, id); v.State != StateRunning {
		t.Fatalf("state %s after first chunk", v.State)
	}
	pr, _ := http.Get(ts.URL + "/api/v1/jobs/" + id + "/artifacts/trace.json")
	pb, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusConflict || errorCode(t, pb) != CodeConflict {
		t.Fatalf("plain GET mid-stream: %d %s", pr.StatusCode, pb)
	}

	// Release the rest and drain to EOF: full content, clean trailer.
	gate <- struct{}{}
	gate <- struct{}{}
	close(done)
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := string(buf[:n]) + string(rest); got != "alpha-beta-gamma" {
		t.Fatalf("full stream %q", got)
	}
	if tr := resp.Trailer.Get(TrailerStreamError); tr != "" {
		t.Fatalf("clean stream set error trailer %q", tr)
	}

	if v := waitTerminal(t, ts, id); v.State != StateDone {
		t.Fatalf("final state %s", v.State)
	}
}

// TestStreamCancelMidStream cancels a running streamed job and checks
// both feeds observe the same terminal: the artifact stream ends with the
// X-Stream-Error trailer and the SSE feed with a terminal cancelled
// state event.
func TestStreamCancelMidStream(t *testing.T) {
	gate := make(chan struct{})
	done := make(chan struct{}) // never closed: job ends only by cancel
	s := New(Config{Workers: 1, ExecuteStream: streamingExec([][]byte{[]byte("partial")}, gate, done)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"60ms","artifacts":["trace.json"],"stream":true}`)
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/artifacts/trace.json?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ev := openEvents(t, ts, id, 0)
	defer ev.Body.Close()

	gate <- struct{}{}
	first := make([]byte, 16)
	n, err := io.ReadAtLeast(resp.Body, first, len("partial"))
	if err != nil {
		t.Fatalf("first bytes: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+id, nil)
	if dresp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
	}

	rest, _ := io.ReadAll(resp.Body)
	if got := string(first[:n]) + string(rest); got != "partial" {
		t.Fatalf("cancelled stream content %q", got)
	}
	tr := resp.Trailer.Get(TrailerStreamError)
	if !strings.Contains(tr, CodeCancelled) {
		t.Fatalf("cancel trailer %q, want code %s", tr, CodeCancelled)
	}

	frames := readSSE(t, ev.Body, 0) // server closes the feed at terminal
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	last := frames[len(frames)-1]
	if last.Event != EventState || !last.Data.Terminal || last.Data.State != StateCancelled {
		t.Fatalf("terminal frame %+v", last)
	}
	if v := getJob(t, ts, id); v.State != StateCancelled {
		t.Fatalf("job state %s", v.State)
	}
}

// TestSSEReconnectResume breaks an SSE feed mid-history and resumes with
// Last-Event-ID: the union of both connections is exactly the event
// sequence 1..N — no gaps, no duplicates.
func TestSSEReconnectResume(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, streamSpecBody)
	if v := waitTerminal(t, ts, id); v.State != StateDone {
		t.Fatalf("job: %s %v", v.State, v.Error)
	}

	// First connection: read a prefix, then drop it.
	ev1 := openEvents(t, ts, id, 0)
	prefix := readSSE(t, ev1.Body, 3)
	ev1.Body.Close()
	if len(prefix) != 3 {
		t.Fatalf("prefix frames: %d", len(prefix))
	}

	// Resume from the last seen ID.
	ev2 := openEvents(t, ts, id, prefix[len(prefix)-1].ID)
	suffix := readSSE(t, ev2.Body, 0)
	ev2.Body.Close()

	all := append(prefix, suffix...)
	for i, f := range all {
		if f.ID != uint64(i)+1 {
			t.Fatalf("event %d has ID %d (gap or duplicate): %+v", i, f.ID, f)
		}
		if f.Data.JobID != id {
			t.Fatalf("event for wrong job: %+v", f)
		}
	}
	if first := all[0]; first.Event != EventState || first.Data.State != StateQueued {
		t.Fatalf("first event %+v", first)
	}
	last := all[len(all)-1]
	if last.Event != EventState || !last.Data.Terminal || last.Data.State != StateDone {
		t.Fatalf("terminal event %+v", last)
	}
	// The feed carried progress and artifact-ready events in between.
	kinds := map[string]int{}
	for _, f := range all {
		kinds[f.Event]++
	}
	if kinds[EventProgress] == 0 {
		t.Errorf("no progress events: %v", kinds)
	}
	if kinds[EventArtifact] != 3 {
		t.Errorf("artifact events: %v", kinds)
	}
}

// TestStreamCacheLanding checks a finished streamed run still feeds the
// content-addressed cache: an identical buffered submission afterwards is
// answered from cache with byte-identical artifacts.
func TestStreamCacheLanding(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	strID := submit(t, ts, streamSpecBody)
	if v := waitTerminal(t, ts, strID); v.State != StateDone {
		t.Fatalf("streamed job: %s %v", v.State, v.Error)
	}

	bufID := submit(t, ts, bufferedSpecBody)
	v := waitTerminal(t, ts, bufID)
	if v.State != StateDone || !v.Cached {
		t.Fatalf("buffered duplicate not served from cache: %+v", v)
	}
	for _, name := range []string{run.ArtifactTrace, run.ArtifactMetrics, run.ArtifactConsole} {
		if !bytes.Equal(fetchArtifact(t, ts, bufID, name), fetchArtifact(t, ts, strID, name)) {
			t.Errorf("%s: cached copy differs from streamed original", name)
		}
	}

	var vz Varz
	vresp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(vresp.Body).Decode(&vz); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vz.StreamJobs != 1 || vz.StreamResultsCached != 1 || vz.JobsFromCache != 1 {
		t.Fatalf("varz: stream_jobs=%d stream_results_cached=%d from_cache=%d",
			vz.StreamJobs, vz.StreamResultsCached, vz.JobsFromCache)
	}

	// And the mirror image: a streamed duplicate of a cached spec answers
	// from cache, born terminal.
	str2 := submit(t, ts, streamSpecBody)
	v2 := getJob(t, ts, str2)
	if v2.State != StateDone || !v2.Cached {
		t.Fatalf("streamed duplicate not served from cache: %+v", v2)
	}
}

// TestStreamOversizeStaysRingBacked checks an artifact past the inline
// bound is not cached but remains fully downloadable from its ring.
func TestStreamOversizeStaysRingBacked(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	done := make(chan struct{})
	close(done)
	s := New(Config{
		Workers:           1,
		MaxInlineArtifact: 128,
		StreamWindow:      256, // force the spill path too
		ExecuteStream:     streamingExec([][]byte{payload}, nil, done),
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"60ms","artifacts":["trace.json"],"stream":true}`)
	if v := waitTerminal(t, ts, id); v.State != StateDone {
		t.Fatalf("job: %s %v", v.State, v.Error)
	}
	if got := fetchArtifact(t, ts, id, run.ArtifactTrace); !bytes.Equal(got, payload) {
		t.Fatalf("oversize artifact: %d bytes, want %d", len(got), len(payload))
	}

	var vz Varz
	vresp, _ := http.Get(ts.URL + "/varz")
	_ = json.NewDecoder(vresp.Body).Decode(&vz)
	vresp.Body.Close()
	if vz.StreamResultsOversize != 1 || vz.StreamResultsCached != 0 {
		t.Fatalf("varz: oversize=%d cached=%d", vz.StreamResultsOversize, vz.StreamResultsCached)
	}
}

// TestStreamSubmitValidation covers the v3 rejection surface.
func TestStreamSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		// No streamable artifact requested.
		`{"dur":"50ms","artifacts":["console.txt"],"stream":true}`,
		// Scenario that cannot stream.
		`{"dur":"50ms","scenario":"experiments","artifacts":["report.txt"],"stream":true}`,
		// Stream and checkpoint are exclusive (run.Validate).
		`{"dur":"50ms","artifacts":["trace.json"],"stream":true,"checkpoint":{"at":"10ms"}}`,
	} {
		code, b, _ := postSpec(t, ts, body)
		if code != http.StatusBadRequest || errorCode(t, b) != CodeInvalidSpec {
			t.Errorf("spec %s: %d %s", body, code, b)
		}
	}

	// Events feed of an unknown job.
	resp, _ := http.Get(ts.URL + "/api/v1/jobs/zzz/events")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events of unknown job: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed Last-Event-ID.
	id := submit(t, ts, `{"dur":"50ms","artifacts":["console.txt"]}`)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed Last-Event-ID: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestEventsBufferedJob checks non-streaming jobs carry a coherent feed
// too: queued, running, artifact-ready, terminal done.
func TestEventsBufferedJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"50ms","artifacts":["console.txt"]}`)
	ev := openEvents(t, ts, id, 0)
	frames := readSSE(t, ev.Body, 0)
	ev.Body.Close()

	var states []State
	for _, f := range frames {
		if f.Event == EventState {
			states = append(states, f.Data.State)
		}
	}
	want := []State{StateQueued, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("states %v", states)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states %v, want %v", states, want)
		}
	}
	if last := frames[len(frames)-1]; !last.Data.Terminal || last.Data.Stats == nil {
		t.Fatalf("terminal frame %+v", last)
	}
	// Late subscriber on a long-gone terminal job: full replay, instant close.
	start := time.Now()
	ev2 := openEvents(t, ts, id, 0)
	replay := readSSE(t, ev2.Body, 0)
	ev2.Body.Close()
	if len(replay) != len(frames) {
		t.Fatalf("replay %d frames, want %d", len(replay), len(frames))
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("terminal replay blocked")
	}
}
