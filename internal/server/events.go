package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/run"
)

// This file is the live half of the v3 jobs API: every job carries an
// append-only event log — state transitions, periodic Stats progress,
// artifact-ready marks — and GET /api/v1/jobs/{id}/events serves it as
// Server-Sent Events. Event IDs are monotonic per job starting at 1, so a
// client that reconnects with Last-Event-ID resumes exactly where its
// previous feed broke: no gaps, no duplicates. The log is bounded by
// construction (a handful of state events, at most one progress event per
// grid slot, one artifact event per artifact), so retaining it costs a few
// hundred bytes per job, never O(run length).

// Event types, carried both as the SSE "event:" field and in the JSON body.
const (
	// EventState records a lifecycle transition. The terminal transition
	// (done/failed/cancelled) sets Terminal and closes every feed.
	EventState = "state"
	// EventProgress carries a mid-run Stats snapshot, taken at a quiescent
	// point of the simulation (streamed jobs only).
	EventProgress = "progress"
	// EventArtifact announces one completed artifact, ready to download.
	EventArtifact = "artifact"
)

// Event is one record on a job's event feed.
type Event struct {
	ID       uint64     `json:"id"`
	Type     string     `json:"type"`
	JobID    string     `json:"job_id"`
	State    State      `json:"state,omitempty"`
	Terminal bool       `json:"terminal,omitempty"`
	Stats    *run.Stats `json:"stats,omitempty"`
	Artifact string     `json:"artifact,omitempty"`
	Error    *APIError  `json:"error,omitempty"`
}

// eventLog is one job's append-only event history plus the wake channel
// its live feeds park on. IDs are assigned on append; nothing is ever
// dropped or reordered, which is what makes Last-Event-ID resume exact.
type eventLog struct {
	mu       sync.Mutex
	events   []Event
	terminal bool
	wake     chan struct{}
}

func newEventLog() *eventLog { return &eventLog{wake: make(chan struct{})} }

// append stamps the next ID onto e and wakes every parked feed. Appends
// after the terminal state event are dropped — the feed contract is that
// the terminal event is last.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.terminal {
		return
	}
	e.ID = uint64(len(l.events)) + 1
	l.events = append(l.events, e)
	if e.Type == EventState && e.Terminal {
		l.terminal = true
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// since returns the events with ID > after, whether the log is terminal,
// and the channel to park on when caught up.
func (l *eventLog) since(after uint64) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if after < uint64(len(l.events)) {
		out = append(out, l.events[after:]...)
	}
	return out, l.terminal, l.wake
}

// event appends to a job's feed, stamping the job ID.
func (s *Server) event(job *Job, e Event) {
	if job.events == nil {
		return
	}
	e.JobID = job.ID
	job.events.append(e)
}

// finishEvents publishes the terminal tail of a job's feed: one
// artifact-ready event per completed artifact (successful jobs only — a
// failed run's partial artifacts are inspectable but never announced
// ready), then the terminal state event carrying the final Stats and, on
// failure, the same typed error the job document shows.
func (s *Server) finishEvents(job *Job) {
	s.mu.Lock()
	state := job.State
	stats := job.Stats
	var apiErr *APIError
	if job.Err != "" || job.ErrCode != "" {
		apiErr = &APIError{Code: job.ErrCode, Message: job.Err}
	}
	names := artifactNames(job)
	s.mu.Unlock()

	if state == StateDone {
		for _, name := range names {
			s.event(job, Event{Type: EventArtifact, Artifact: name})
		}
	}
	s.event(job, Event{Type: EventState, State: state, Terminal: true, Stats: &stats, Error: apiErr})
}

// handleEvents serves GET /api/v1/jobs/{id}/events: the job's event feed
// as Server-Sent Events. The feed replays history from the start — or
// from the Last-Event-ID header (or ?after= parameter) on reconnect —
// then follows live until the terminal event, after which it closes. A
// feed opened on an already-terminal job replays everything and closes
// immediately, so polling clients and streaming clients converge on the
// same final history.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	if ok {
		s.eventStreams++
	}
	s.mu.Unlock()
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job", 0)
		return
	}

	after := uint64(0)
	resume := r.Header.Get("Last-Event-ID")
	if v := r.URL.Query().Get("after"); v != "" {
		resume = v
	}
	if resume != "" {
		n, err := strconv.ParseUint(resume, 10, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "malformed event ID "+strconv.Quote(resume), 0)
			return
		}
		after = n
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	for {
		events, terminal, wake := job.events.since(after)
		if len(events) > 0 {
			for _, e := range events {
				data, err := json.Marshal(e)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, data); err != nil {
					return
				}
				after = e.ID
			}
			if rc.Flush() != nil {
				return
			}
			continue // drain anything appended while writing
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
