package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/run"
)

// This file is the jobs API's wire surface: the structured error envelope
// every handler speaks, the job document, and the small HTTP conventions
// (ETags, Retry-After, pagination parameters) the fleet relies on. The
// router package reuses these types so a shard and the router in front of
// it are indistinguishable on the wire.

// Error codes. Every non-2xx response carries exactly one of these in the
// envelope; clients switch on the code, never on the message text.
const (
	// CodeInvalidSpec rejects a submission whose body is not a valid
	// run.Spec (malformed JSON, unknown fields, or a run.Validate failure).
	CodeInvalidSpec = "invalid_spec"
	// CodeInvalidArgument rejects bad query parameters (state/limit/cursor).
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound names a missing job or artifact.
	CodeNotFound = "not_found"
	// CodeConflict rejects an artifact fetch before the job is terminal.
	CodeConflict = "conflict"
	// CodeSaturated is the backpressure signal: the bounded queue is full.
	// 429; retry_after_ms says when to come back.
	CodeSaturated = "saturated"
	// CodeDraining rejects submissions while the server shuts down. 503;
	// retry_after_ms hints at finding another replica.
	CodeDraining = "draining"
	// CodeDeadlineExceeded marks a job whose wall-clock budget expired
	// before the simulation finished.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCancelled marks a job cancelled by the client (DELETE).
	CodeCancelled = "cancelled"
	// CodeExecutionFailed marks a job whose run failed for any other
	// reason; the message carries the run error.
	CodeExecutionFailed = "execution_failed"
	// CodeInternal is the catch-all for server-side faults.
	CodeInternal = "internal"
)

// APIError is the structured error body: a stable code, a human-readable
// message, and — on retryable rejections — a retry hint.
type APIError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx response: {"error":{...}}.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// WriteError emits the structured envelope with the given status. A
// non-zero retryAfter additionally sets the Retry-After header (whole
// seconds, rounded up) and the envelope's retry_after_ms.
func WriteError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	e := APIError{Code: code, Message: msg}
	if retryAfter > 0 {
		e.RetryAfterMS = retryAfter.Milliseconds()
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	WriteJSON(w, status, ErrorEnvelope{Error: e})
}

// WriteJSON emits v as indented JSON with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// JobView is the wire form of a job: the v2 job document. SpecHash is the
// canonical content hash of the spec — the identity the cache and the
// shard router key on; Cached and Coalesced record how the job was
// served.
type JobView struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash,omitempty"`
	State    State  `json:"state"`
	// Cached marks a job answered from the content-addressed result cache
	// without simulating.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a job deduplicated onto an identical in-flight run
	// (singleflight): it consumed no worker and shares the leader's result.
	Coalesced bool `json:"coalesced,omitempty"`
	// Stream marks a streaming submission (v3): its streamable artifacts
	// are downloadable live via ?stream=1 and its /events feed carries
	// mid-run progress.
	Stream    bool       `json:"stream,omitempty"`
	Spec      run.Spec   `json:"spec"`
	Error     *APIError  `json:"error,omitempty"`
	Stats     *run.Stats `json:"stats,omitempty"`
	Artifacts []string   `json:"artifacts,omitempty"`
}

// JobList is the paginated list document. NextCursor, when non-empty, is
// the opaque cursor of the next page; pass it back as ?cursor=.
type JobList struct {
	Jobs       []JobView `json:"jobs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// listQuery is the parsed pagination surface of GET /api/v1/jobs.
type listQuery struct {
	state State  // "" = all states
	limit int    // bounded page size
	after uint64 // only jobs with seq > after (cursor)
}

// Pagination bounds.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// parseListQuery validates ?state=, ?limit= and ?cursor=.
func parseListQuery(r *http.Request) (listQuery, *APIError) {
	q := listQuery{limit: defaultListLimit}
	if s := r.URL.Query().Get("state"); s != "" {
		switch st := State(s); st {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
			q.state = st
		default:
			return q, &APIError{Code: CodeInvalidArgument, Message: "unknown state " + strconv.Quote(s)}
		}
	}
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			return q, &APIError{Code: CodeInvalidArgument, Message: "limit must be a positive integer"}
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		q.limit = n
	}
	if c := r.URL.Query().Get("cursor"); c != "" {
		n, err := strconv.ParseUint(c, 10, 64)
		if err != nil {
			return q, &APIError{Code: CodeInvalidArgument, Message: "malformed cursor"}
		}
		q.after = n
	}
	return q, nil
}

// etagOf computes the strong entity tag of an artifact body: the quoted
// hex SHA-256 of its content. Identical bytes — e.g. the same artifact of
// a cached and a cold run — get identical tags, so If-None-Match
// revalidation works across jobs.
func etagOf(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// etagMatches implements the If-None-Match comparison for strong tags.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// errorCodeOf maps a terminal run error message back to a typed code.
// Job errors cross the mutex as strings (the run layer returns wrapped
// context causes), so the mapping is by the stable context sentinels'
// message text.
func errorCodeOf(msg string) string {
	switch {
	case strings.Contains(msg, "deadline exceeded"):
		return CodeDeadlineExceeded
	case strings.Contains(msg, "canceled") || strings.Contains(msg, "cancelled"):
		return CodeCancelled
	default:
		return CodeExecutionFailed
	}
}

func contentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	default:
		return "text/plain; charset=utf-8"
	}
}
