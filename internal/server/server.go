// Package server is the simulation-as-a-service layer: a bounded HTTP/JSON
// job service over the run façade. Clients POST a run.Spec, poll the job,
// and download the artifacts the run produced; the server executes every
// job through run.Execute on a persistent sweep.Pool, so a Spec submitted
// over HTTP is built by exactly the code path the CLIs use and yields
// byte-identical artifacts.
//
// Capacity is explicit: a fixed worker count, a bounded submission queue,
// and a 429 + Retry-After rejection once the queue is full — the service
// never buffers unbounded work. Jobs are cancellable (DELETE) and
// deadline-bounded (Spec.Deadline, capped by Config.MaxJobTime), and
// Shutdown drains in-flight jobs before returning.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/run"
	"repro/internal/sweep"
)

// State is a job's lifecycle phase.
type State string

// Job states. A job is terminal in StateDone, StateFailed or
// StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Config parameterizes the service.
type Config struct {
	// Workers is the simulation pool size (default 1). Each worker runs one
	// job at a time.
	Workers int
	// Queue bounds the number of accepted-but-not-started jobs (default
	// 2*Workers). A full queue rejects submissions with 429.
	Queue int
	// MaxJobTime caps every job's wall-clock time; a Spec deadline may only
	// tighten it (0 = no cap).
	MaxJobTime time.Duration
	// MaxJobs bounds the number of retained job records; once exceeded the
	// oldest terminal jobs are evicted (default 1024).
	MaxJobs int
	// Execute overrides the run executor. Tests use it to substitute
	// controllable fakes; nil means run.Execute.
	Execute func(context.Context, run.Spec) (run.Result, error)
}

// Job is one submitted run and its outcome.
type Job struct {
	ID        string
	Spec      run.Spec
	State     State
	Err       string // terminal error (failed/cancelled)
	Stats     run.Stats
	Artifacts map[string][]byte

	cancel context.CancelCauseFunc
	seq    uint64
}

// JobView is the wire form of a job's status.
type JobView struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Spec      run.Spec   `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Stats     *run.Stats `json:"stats,omitempty"`
	Artifacts []string   `json:"artifacts,omitempty"`
}

// Server is the job service. Create with New, mount as an http.Handler,
// stop with Shutdown.
type Server struct {
	cfg  Config
	pool *sweep.Pool
	mux  *http.ServeMux

	ctx  context.Context // base context of every job; cancelled by Shutdown(force)
	stop context.CancelCauseFunc
	exec func(context.Context, run.Spec) (run.Result, error)

	mu   sync.Mutex
	jobs map[string]*Job
	seq  uint64

	// varz counters.
	submitted uint64
	rejected  uint64
	completed uint64
	failed    uint64
	cancelled uint64
}

// New builds and starts the service: the worker pool is live and the
// handler ready to mount.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	s := &Server{
		cfg:  cfg,
		pool: sweep.NewPool(cfg.Workers, cfg.Queue),
		jobs: make(map[string]*Job),
		exec: cfg.Execute,
	}
	if s.exec == nil {
		s.exec = run.Execute
	}
	s.ctx, s.stop = context.WithCancelCause(context.Background())

	m := http.NewServeMux()
	m.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	m.HandleFunc("GET /api/v1/jobs", s.handleList)
	m.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	m.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	m.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /varz", s.handleVarz)
	s.mux = m
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown gracefully stops the service: admission closes immediately
// (submissions get 503), queued and in-flight jobs run to completion, and
// Shutdown returns once the pool is idle. If ctx expires first, remaining
// jobs are cancelled at their next quiescent point and their completion is
// awaited before returning ctx's cause.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.pool.Drain(ctx)
	if err != nil {
		// Deadline hit: force-cancel whatever is still running, then wait
		// for the workers to wind down (cancellation lands at the next
		// quiescent point, so this is prompt).
		s.stop(fmt.Errorf("server: shutdown: %w", err))
		_ = s.pool.Drain(context.Background())
	}
	return err
}

// --- job lifecycle ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec run.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	if err := run.Validate(spec); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	s.seq++
	job := &Job{
		ID:    "j" + strconv.FormatUint(s.seq, 10),
		Spec:  spec,
		State: StateQueued,
		seq:   s.seq,
	}
	jctx, cancel := context.WithCancelCause(s.ctx)
	job.cancel = cancel
	s.jobs[job.ID] = job
	s.evictLocked()
	s.mu.Unlock()

	err := s.pool.TrySubmit(func(int) { s.runJob(job, jctx) })
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.rejected++
		s.mu.Unlock()
		cancel(nil)
		switch {
		case errors.Is(err, sweep.ErrSaturated):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "queue full, retry later")
		case errors.Is(err, sweep.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.mu.Lock()
	s.submitted++
	view := viewOf(job)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}

// runJob executes one job on a pool worker.
func (s *Server) runJob(job *Job, jctx context.Context) {
	defer job.cancel(nil)

	s.mu.Lock()
	if job.State == StateCancelled {
		// Cancelled while queued: never run.
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	s.mu.Unlock()

	ctx := jctx
	if s.cfg.MaxJobTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.MaxJobTime)
		defer cancel()
	}
	res, err := s.exec(ctx, job.Spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	job.Stats = res.Stats
	job.Artifacts = res.Artifacts
	switch {
	case err == nil:
		job.State = StateDone
		s.completed++
	case jctx.Err() != nil && s.ctx.Err() == nil && !errors.Is(context.Cause(jctx), context.DeadlineExceeded):
		// Client-initiated cancel (DELETE).
		job.State = StateCancelled
		job.Err = err.Error()
		s.cancelled++
	default:
		job.State = StateFailed
		job.Err = err.Error()
		s.failed++
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var view JobView
	if ok {
		view = viewOf(job)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	order := make(map[string]uint64, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, viewOf(j))
		order[j.ID] = j.seq
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool { return order[views[i].ID] < order[views[k].ID] })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	if ok {
		switch job.State {
		case StateQueued:
			// The queued closure will observe the state and skip execution.
			job.State = StateCancelled
			job.Err = "cancelled before start"
			s.cancelled++
		case StateRunning:
			job.cancel(context.Canceled)
		}
	}
	var view JobView
	if ok {
		view = viewOf(job)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	s.mu.Lock()
	job, ok := s.jobs[id]
	var state State
	var body []byte
	var have bool
	if ok {
		state = job.State
		body, have = job.Artifacts[name]
	}
	s.mu.Unlock()
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "no such job")
	case state == StateQueued || state == StateRunning:
		httpError(w, http.StatusConflict, "job not finished")
	case !have:
		httpError(w, http.StatusNotFound, "no such artifact")
	default:
		w.Header().Set("Content-Type", contentType(name))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	}
}

// evictLocked drops the oldest terminal jobs once the record table exceeds
// MaxJobs. Live (queued/running) jobs are never evicted.
func (s *Server) evictLocked() {
	over := len(s.jobs) - s.cfg.MaxJobs
	if over <= 0 {
		return
	}
	terminal := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		switch j.State {
		case StateDone, StateFailed, StateCancelled:
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for i := 0; i < len(terminal) && i < over; i++ {
		delete(s.jobs, terminal[i].ID)
	}
}

// --- introspection ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Varz is the self-metrics document served at /varz.
type Varz struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsRetained  int    `json:"jobs_retained"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	v := Varz{
		Workers:       s.cfg.Workers,
		QueueCap:      s.pool.Cap(),
		Queued:        s.pool.Queued(),
		InFlight:      s.pool.InFlight(),
		JobsSubmitted: s.submitted,
		JobsRejected:  s.rejected,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsCancelled: s.cancelled,
		JobsRetained:  len(s.jobs),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// --- helpers ---

// viewOf snapshots a job for the wire. Caller holds s.mu.
func viewOf(j *Job) JobView {
	v := JobView{ID: j.ID, State: j.State, Spec: j.Spec, Error: j.Err}
	if j.State == StateDone || j.State == StateFailed {
		stats := j.Stats
		v.Stats = &stats
		names := make([]string, 0, len(j.Artifacts))
		for name := range j.Artifacts {
			names = append(names, name)
		}
		sort.Strings(names)
		v.Artifacts = names
	}
	return v
}

func contentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	default:
		return "text/plain; charset=utf-8"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "code": code})
}
