// Package server is the simulation-as-a-service layer: a bounded HTTP/JSON
// job service over the run façade. Clients POST a run.Spec, poll the job,
// and download the artifacts the run produced; the server executes every
// job through run.Execute on a persistent sweep.Pool, so a Spec submitted
// over HTTP is built by exactly the code path the CLIs use and yields
// byte-identical artifacts.
//
// Determinism is exploited for scale: every spec is canonicalized to a
// content hash (run.Hash), completed results live in a bounded
// content-addressed cache, and identical in-flight submissions coalesce
// onto one simulation (singleflight) — N duplicate submissions cost one
// worker. A fleet of these servers behind internal/router behaves as one
// service, with the hash doubling as the shard-routing key.
//
// Capacity is explicit: a fixed worker count, a bounded submission queue,
// and a 429 + Retry-After rejection once the queue is full — the service
// never buffers unbounded work. Jobs are cancellable (DELETE) and
// deadline-bounded (Spec.Deadline, capped by Config.MaxJobTime), and
// Shutdown drains in-flight jobs before returning. All errors cross the
// wire as the structured envelope defined in api.go.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/run"
	"repro/internal/stream"
	"repro/internal/sweep"
)

// State is a job's lifecycle phase.
type State string

// Job states. A job is terminal in StateDone, StateFailed or
// StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Retry hints: how long a rejected client should back off before
// resubmitting.
const (
	saturatedRetryAfter = 1 * time.Second
	drainingRetryAfter  = 5 * time.Second
)

// Config parameterizes the service.
type Config struct {
	// Name identifies this replica in a sharded fleet; when non-empty it
	// prefixes every job ID ("s0" -> "s0-j1") so the router can map an ID
	// back to its shard, and it is reported in /varz.
	Name string
	// Workers is the simulation pool size (default 1). Each worker runs one
	// job at a time.
	Workers int
	// Queue bounds the number of accepted-but-not-started jobs (default
	// 2*Workers). A full queue rejects submissions with 429.
	Queue int
	// MaxJobTime caps every job's wall-clock time; a Spec deadline may only
	// tighten it (0 = no cap).
	MaxJobTime time.Duration
	// MaxJobs bounds the number of retained job records; once exceeded the
	// oldest terminal jobs are evicted (default 1024).
	MaxJobs int
	// Cache bounds the content-addressed result cache (zero value: package
	// cache defaults).
	Cache cache.Config
	// DisableCache turns the result cache and singleflight dedupe off:
	// every submission simulates.
	DisableCache bool
	// StreamWindow bounds the in-memory bytes each streamed artifact keeps
	// (default stream.DefaultWindow); older bytes spill to disk.
	StreamWindow int
	// SpoolDir is where streamed artifacts spill past the window (default:
	// the OS temp dir). Spill files are unlinked on creation.
	SpoolDir string
	// MaxInlineArtifact caps the size at which a finished streamed artifact
	// is materialized into the result cache (default 8 MiB; negative
	// disables cache landing for streamed jobs entirely). Oversize
	// artifacts stay ring-backed — served from disk + window — and their
	// job's result is not cached.
	MaxInlineArtifact int64
	// Execute overrides the run executor. Tests use it to substitute
	// controllable fakes; nil means run.Execute.
	Execute func(context.Context, run.Spec) (run.Result, error)
	// ExecuteStream overrides the streaming executor (nil: run.ExecuteStream).
	ExecuteStream func(context.Context, run.Spec, run.StreamOptions) (run.Result, error)
}

// Job is one submitted run and its outcome.
type Job struct {
	ID        string
	Spec      run.Spec
	Hash      string // canonical content hash of Spec ("" if unhashable)
	State     State
	Cached    bool   // served from the result cache
	Coalesced bool   // deduplicated onto an identical in-flight run
	Stream    bool   // streaming submission (Spec.Stream)
	ErrCode   string // terminal error code (failed/cancelled)
	Err       string // terminal error message
	Stats     run.Stats
	Artifacts map[string][]byte

	// streams holds the live (and, after completion, disk-backed) rings of
	// a streaming job's streamable artifacts; these names never appear in
	// Artifacts. events is the job's SSE feed.
	streams map[string]*stream.Ring
	events  *eventLog

	cancel context.CancelCauseFunc
	seq    uint64
}

// Server is the job service. Create with New, mount as an http.Handler,
// stop with Shutdown.
type Server struct {
	cfg   Config
	pool  *sweep.Pool
	cache *cache.Cache // nil when disabled
	mux   *http.ServeMux

	ctx        context.Context // base context of every job; cancelled by Shutdown(force)
	stop       context.CancelCauseFunc
	exec       func(context.Context, run.Spec) (run.Result, error)
	execStream func(context.Context, run.Spec, run.StreamOptions) (run.Result, error)

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      uint64
	draining bool

	// varz counters.
	submitted      uint64
	rejected       uint64
	completed      uint64
	failed         uint64
	cancelled      uint64
	fromCache      uint64
	coalesced      uint64
	streamJobs     uint64
	streamsServed  uint64
	eventStreams   uint64
	streamCached   uint64
	streamOversize uint64
}

// New builds and starts the service: the worker pool is live and the
// handler ready to mount.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.MaxInlineArtifact == 0 {
		cfg.MaxInlineArtifact = DefaultMaxInlineArtifact
	}
	s := &Server{
		cfg:        cfg,
		pool:       sweep.NewPool(cfg.Workers, cfg.Queue),
		jobs:       make(map[string]*Job),
		exec:       cfg.Execute,
		execStream: cfg.ExecuteStream,
	}
	if !cfg.DisableCache {
		s.cache = cache.New(cfg.Cache)
	}
	if s.exec == nil {
		s.exec = run.Execute
	}
	if s.execStream == nil {
		s.execStream = run.ExecuteStream
	}
	s.ctx, s.stop = context.WithCancelCause(context.Background())

	m := http.NewServeMux()
	m.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	m.HandleFunc("GET /api/v1/jobs", s.handleList)
	m.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	m.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	m.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	m.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /varz", s.handleVarz)
	s.mux = m
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown gracefully stops the service: admission closes immediately
// (submissions get 503 + Retry-After), queued and in-flight jobs run to
// completion, and Shutdown returns once the pool is idle. If ctx expires
// first, remaining jobs are cancelled at their next quiescent point and
// their completion is awaited before returning ctx's cause.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	err := s.pool.Drain(ctx)
	if err != nil {
		// Deadline hit: force-cancel whatever is still running, then wait
		// for the workers to wind down (cancellation lands at the next
		// quiescent point, so this is prompt).
		s.stop(fmt.Errorf("server: shutdown: %w", err))
		_ = s.pool.Drain(context.Background())
	}
	return err
}

// --- job lifecycle ---

// maxSubmitBody bounds a submission body. Sized for specs carrying a
// checkpoint resume_from payload (a base64 snapshot of a full task set's
// kernel state), not just hand-written JSON.
const maxSubmitBody = 4 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec run.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("bad spec: %v", err), 0)
		return
	}
	if err := run.Validate(spec); err != nil {
		WriteError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error(), 0)
		return
	}
	hash, err := run.Hash(spec)
	if err != nil {
		// Validate passed, so this is a marshalling fault on our side; run
		// the job uncached rather than reject it.
		hash = ""
	}

	// A streaming submission needs something to stream; build its rings
	// before admission so the job record is complete when it becomes
	// visible.
	var rings map[string]*stream.Ring
	if spec.Stream {
		streamable := run.StreamableArtifacts(spec)
		if len(streamable) == 0 {
			WriteError(w, http.StatusBadRequest, CodeInvalidSpec,
				"stream: spec requests no streamable artifact (trace, metrics)", 0)
			return
		}
		rings = make(map[string]*stream.Ring, len(streamable))
		for _, name := range streamable {
			rings[name] = stream.NewRing(s.cfg.SpoolDir, s.cfg.StreamWindow)
		}
	}

	s.mu.Lock()
	if s.draining {
		// Admission is closed outright during a drain — even for specs the
		// cache could answer — so a fleet router sees one consistent signal.
		s.rejected++
		s.mu.Unlock()
		WriteError(w, http.StatusServiceUnavailable, CodeDraining, "server shutting down", drainingRetryAfter)
		return
	}
	s.seq++
	job := &Job{
		ID:      s.jobID(s.seq),
		Spec:    spec,
		Hash:    hash,
		State:   StateQueued,
		Stream:  spec.Stream,
		streams: rings,
		events:  newEventLog(),
		seq:     s.seq,
	}
	jctx, cancel := context.WithCancelCause(s.ctx)
	job.cancel = cancel
	s.jobs[job.ID] = job
	s.evictLocked()
	s.mu.Unlock()

	if spec.Stream {
		s.submitStream(w, job, jctx)
		return
	}

	// Content-addressed serving: a completed identical spec answers from
	// cache, an in-flight identical spec absorbs this job as a follower
	// (singleflight), and only a genuinely new spec claims a worker.
	var flight *cache.Flight
	if s.cache != nil && hash != "" && run.Cacheable(spec) {
		res, f, leader := s.cache.Begin(hash)
		switch {
		case f == nil: // hit
			s.finishFromCache(job, res)
			s.respondAccepted(w, job)
			return
		case !leader: // follower: wait out the leader's run, off-pool
			s.mu.Lock()
			job.Coalesced = true
			s.submitted++
			s.coalesced++
			view := viewOf(job)
			s.mu.Unlock()
			s.event(job, Event{Type: EventState, State: StateQueued})
			go s.waitCoalesced(job, jctx, f)
			s.respondAcceptedView(w, view)
			return
		default: // leader: simulate, then publish through the flight
			flight = f
		}
	}

	err = s.pool.TrySubmit(func(int) { s.runJob(job, jctx, flight) })
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.rejected++
		s.mu.Unlock()
		cancel(nil)
		if flight != nil {
			// Followers that joined between Begin and this failure must not
			// hang on a flight whose leader never ran.
			flight.Complete(run.Result{}, fmt.Errorf("leader admission failed: %w", err))
		}
		switch {
		case errors.Is(err, sweep.ErrSaturated):
			WriteError(w, http.StatusTooManyRequests, CodeSaturated, "queue full, retry later", saturatedRetryAfter)
		case errors.Is(err, sweep.ErrClosed):
			WriteError(w, http.StatusServiceUnavailable, CodeDraining, "server shutting down", drainingRetryAfter)
		default:
			WriteError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		}
		return
	}
	s.mu.Lock()
	s.submitted++
	view := viewOf(job)
	s.mu.Unlock()
	s.event(job, Event{Type: EventState, State: StateQueued})
	s.respondAcceptedView(w, view)
}

// submitStream admits a streaming job. It bypasses singleflight — every
// live feed needs its own run — but not the cache: a completed identical
// spec answers immediately (its rings are dropped; the finished bytes
// serve buffered), and a successful streamed run lands back in the cache
// when its artifacts fit the inline bound, so streamed and buffered
// submissions of one spec stay one cache entry (Spec.Stream is erased by
// canonicalization).
func (s *Server) submitStream(w http.ResponseWriter, job *Job, jctx context.Context) {
	if s.cache != nil && job.Hash != "" && run.Cacheable(job.Spec) {
		if res, ok := s.cache.Get(job.Hash); ok {
			s.mu.Lock()
			job.streams = nil
			s.mu.Unlock()
			s.finishFromCache(job, res)
			s.respondAccepted(w, job)
			return
		}
	}
	if err := s.pool.TrySubmit(func(int) { s.runJob(job, jctx, nil) }); err != nil {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.rejected++
		s.mu.Unlock()
		job.cancel(nil)
		for _, ring := range job.streams {
			ring.Release()
		}
		switch {
		case errors.Is(err, sweep.ErrSaturated):
			WriteError(w, http.StatusTooManyRequests, CodeSaturated, "queue full, retry later", saturatedRetryAfter)
		case errors.Is(err, sweep.ErrClosed):
			WriteError(w, http.StatusServiceUnavailable, CodeDraining, "server shutting down", drainingRetryAfter)
		default:
			WriteError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		}
		return
	}
	s.mu.Lock()
	s.submitted++
	s.streamJobs++
	view := viewOf(job)
	s.mu.Unlock()
	s.event(job, Event{Type: EventState, State: StateQueued})
	s.respondAcceptedView(w, view)
}

// jobID renders a sequence number as a wire ID, prefixed with the shard
// name when this replica is part of a fleet.
func (s *Server) jobID(seq uint64) string {
	id := "j" + strconv.FormatUint(seq, 10)
	if s.cfg.Name != "" {
		id = s.cfg.Name + "-" + id
	}
	return id
}

// finishFromCache completes a job synchronously from a cached result.
func (s *Server) finishFromCache(job *Job, res run.Result) {
	job.cancel(nil)
	s.mu.Lock()
	job.State = StateDone
	job.Cached = true
	job.Stats = res.Stats
	job.Artifacts = res.Artifacts
	s.submitted++
	s.completed++
	s.fromCache++
	s.mu.Unlock()
	s.event(job, Event{Type: EventState, State: StateQueued})
	s.finishEvents(job)
}

// respondAccepted snapshots the job under the mutex and answers 202.
func (s *Server) respondAccepted(w http.ResponseWriter, job *Job) {
	s.mu.Lock()
	view := viewOf(job)
	s.mu.Unlock()
	s.respondAcceptedView(w, view)
}

func (s *Server) respondAcceptedView(w http.ResponseWriter, view JobView) {
	w.Header().Set("Location", "/api/v1/jobs/"+view.ID)
	WriteJSON(w, http.StatusAccepted, view)
}

// runJob executes one job on a pool worker. A non-nil flight makes this
// job the singleflight leader for its hash: the outcome is published to
// every coalesced follower, and a successful result enters the cache.
func (s *Server) runJob(job *Job, jctx context.Context, flight *cache.Flight) {
	defer job.cancel(nil)

	s.mu.Lock()
	if job.State == StateCancelled {
		// Cancelled while queued: never run.
		s.mu.Unlock()
		if flight != nil {
			flight.Complete(run.Result{}, errors.New("leader cancelled before start"))
		}
		return
	}
	job.State = StateRunning
	s.mu.Unlock()
	s.event(job, Event{Type: EventState, State: StateRunning})

	ctx := jctx
	if s.cfg.MaxJobTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.MaxJobTime)
		defer cancel()
	}
	var res run.Result
	var err error
	if job.Stream && len(job.streams) > 0 {
		res, err = s.runStreamed(ctx, job)
	} else {
		res, err = s.exec(ctx, job.Spec)
	}

	s.mu.Lock()
	job.Stats = res.Stats
	job.Artifacts = res.Artifacts
	switch {
	case err == nil:
		job.State = StateDone
		s.completed++
	case jctx.Err() != nil && s.ctx.Err() == nil && !errors.Is(context.Cause(jctx), context.DeadlineExceeded):
		// Client-initiated cancel (DELETE).
		job.State = StateCancelled
		job.ErrCode = CodeCancelled
		job.Err = err.Error()
		s.cancelled++
	default:
		job.State = StateFailed
		job.ErrCode = errorCodeOf(err.Error())
		job.Err = err.Error()
		s.failed++
	}
	s.mu.Unlock()
	if flight != nil {
		flight.Complete(res, err)
	}
	s.finishEvents(job)
}

// waitCoalesced parks a follower job on its leader's flight — no pool
// worker is consumed. The follower still honors its own deadline and
// cancellation while waiting; on success it shares the leader's result
// byte-for-byte (the determinism contract makes that indistinguishable
// from a fresh run).
func (s *Server) waitCoalesced(job *Job, jctx context.Context, flight *cache.Flight) {
	defer job.cancel(nil)
	ctx := jctx
	if s.cfg.MaxJobTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.MaxJobTime)
		defer cancel()
	}
	if d := job.Spec.Deadline; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.Std())
		defer cancel()
	}

	terminal := false
	select {
	case <-flight.Done():
		res, err := flight.Result()
		s.mu.Lock()
		if job.State == StateQueued {
			terminal = true
			job.Stats = res.Stats
			job.Artifacts = res.Artifacts
			if err == nil {
				job.State = StateDone
				s.completed++
			} else {
				job.State = StateFailed
				job.ErrCode = errorCodeOf(err.Error())
				job.Err = "coalesced run: " + err.Error()
				s.failed++
			}
		}
		s.mu.Unlock()
	case <-ctx.Done():
		cause := context.Cause(ctx)
		s.mu.Lock()
		if job.State == StateQueued {
			terminal = true
			if jctx.Err() != nil && s.ctx.Err() == nil && !errors.Is(context.Cause(jctx), context.DeadlineExceeded) {
				job.State = StateCancelled
				job.ErrCode = CodeCancelled
				job.Err = cause.Error()
				s.cancelled++
			} else {
				job.State = StateFailed
				job.ErrCode = errorCodeOf(cause.Error())
				job.Err = cause.Error()
				s.failed++
			}
		}
		s.mu.Unlock()
	}
	if terminal {
		s.finishEvents(job)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var view JobView
	if ok {
		view = viewOf(job)
	}
	s.mu.Unlock()
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job", 0)
		return
	}
	WriteJSON(w, http.StatusOK, view)
}

// handleList serves the paginated job listing: ?state= filters, ?limit=
// bounds the page (default 100, max 1000), and ?cursor= resumes after the
// page whose next_cursor it came from. Jobs are ordered by submission.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q, apiErr := parseListQuery(r)
	if apiErr != nil {
		WriteError(w, http.StatusBadRequest, apiErr.Code, apiErr.Message, 0)
		return
	}

	s.mu.Lock()
	matching := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.seq > q.after && (q.state == "" || j.State == q.state) {
			matching = append(matching, j)
		}
	}
	sort.Slice(matching, func(i, k int) bool { return matching[i].seq < matching[k].seq })
	list := JobList{Jobs: make([]JobView, 0, min(len(matching), q.limit))}
	for i, j := range matching {
		if i == q.limit {
			list.NextCursor = strconv.FormatUint(matching[i-1].seq, 10)
			break
		}
		list.Jobs = append(list.Jobs, viewOf(j))
	}
	s.mu.Unlock()
	WriteJSON(w, http.StatusOK, list)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	finished := false
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	if ok {
		switch {
		case job.Coalesced && job.State == StateQueued:
			// The waiter goroutine owns the terminal transition.
			job.cancel(context.Canceled)
		case job.State == StateQueued:
			// The queued closure will observe the state and skip execution.
			job.State = StateCancelled
			job.ErrCode = CodeCancelled
			job.Err = "cancelled before start"
			s.cancelled++
			finished = true
		case job.State == StateRunning:
			job.cancel(context.Canceled)
		}
	}
	var view JobView
	if ok {
		view = viewOf(job)
	}
	s.mu.Unlock()
	if finished {
		// Never-started rings would park live readers forever; end them.
		for _, ring := range job.streams {
			ring.Close(context.Canceled)
		}
		s.finishEvents(job)
	}
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job", 0)
		return
	}
	WriteJSON(w, http.StatusOK, view)
}

// handleArtifact serves one artifact with a strong ETag (the SHA-256 of
// the content) and honors If-None-Match with 304 — a polling client
// re-downloading a cached fleet's artifacts pays headers, not bodies.
// Ring-backed artifacts (streaming jobs) serve from their ring instead:
// finished ones identically to buffered bytes but with O(window) memory,
// live ones as a chunked stream when ?stream=1 is passed.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	live := r.URL.Query().Get("stream") != ""
	s.mu.Lock()
	job, ok := s.jobs[id]
	var state State
	var body []byte
	var have bool
	var ring *stream.Ring
	if ok {
		state = job.State
		body, have = job.Artifacts[name]
		ring = job.streams[name]
	}
	s.mu.Unlock()
	switch {
	case !ok:
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job", 0)
	case ring != nil:
		s.serveRing(w, r, name, ring, live)
	case state == StateQueued || state == StateRunning:
		WriteError(w, http.StatusConflict, CodeConflict, "job not finished", 0)
	case !have:
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such artifact", 0)
	default:
		etag := etagOf(body)
		w.Header().Set("ETag", etag)
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", contentType(name))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	}
}

// evictLocked drops the oldest terminal jobs once the record table exceeds
// MaxJobs. Live (queued/running) jobs are never evicted.
func (s *Server) evictLocked() {
	over := len(s.jobs) - s.cfg.MaxJobs
	if over <= 0 {
		return
	}
	terminal := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		switch j.State {
		case StateDone, StateFailed, StateCancelled:
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	for i := 0; i < len(terminal) && i < over; i++ {
		delete(s.jobs, terminal[i].ID)
		for _, ring := range terminal[i].streams {
			ring.Release()
		}
	}
}

// --- introspection ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Varz is the self-metrics document served at /varz.
type Varz struct {
	Name     string `json:"name,omitempty"`
	Workers  int    `json:"workers"`
	QueueCap int    `json:"queue_cap"`
	// QueueDepth is the number of accepted-but-not-started jobs — the
	// admission headroom signal that accompanies Retry-After.
	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"in_flight"`
	Draining   bool `json:"draining,omitempty"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsFromCache uint64 `json:"jobs_from_cache"`
	JobsCoalesced uint64 `json:"jobs_coalesced"`
	JobsRetained  int    `json:"jobs_retained"`

	// Streaming pipeline counters (v3).
	StreamJobs uint64 `json:"stream_jobs,omitempty"`
	// ArtifactStreamsServed counts live chunked artifact downloads
	// (?stream=1 feeds opened while the producing run was in flight).
	ArtifactStreamsServed uint64 `json:"artifact_streams_served,omitempty"`
	// EventStreamsServed counts SSE feeds opened on /events.
	EventStreamsServed uint64 `json:"event_streams_served,omitempty"`
	// StreamResultsCached counts streamed runs whose artifacts fit the
	// inline bound and landed in the result cache; StreamResultsOversize
	// counts those that stayed ring-backed and uncached.
	StreamResultsCached   uint64 `json:"stream_results_cached,omitempty"`
	StreamResultsOversize uint64 `json:"stream_results_oversize,omitempty"`

	Pool  sweep.PoolStats `json:"pool"`
	Cache *cache.Stats    `json:"cache,omitempty"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	v := Varz{
		Name:          s.cfg.Name,
		Workers:       s.cfg.Workers,
		QueueCap:      s.pool.Cap(),
		QueueDepth:    s.pool.Queued(),
		InFlight:      s.pool.InFlight(),
		Draining:      s.draining,
		JobsSubmitted: s.submitted,
		JobsRejected:  s.rejected,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsCancelled: s.cancelled,
		JobsFromCache: s.fromCache,
		JobsCoalesced: s.coalesced,
		JobsRetained:  len(s.jobs),

		StreamJobs:            s.streamJobs,
		ArtifactStreamsServed: s.streamsServed,
		EventStreamsServed:    s.eventStreams,
		StreamResultsCached:   s.streamCached,
		StreamResultsOversize: s.streamOversize,

		Pool: s.pool.Stats(),
	}
	s.mu.Unlock()
	if s.cache != nil {
		cs := s.cache.Stats()
		v.Cache = &cs
	}
	WriteJSON(w, http.StatusOK, v)
}

// --- helpers ---

// viewOf snapshots a job for the wire. Caller holds s.mu.
func viewOf(j *Job) JobView {
	v := JobView{
		ID:        j.ID,
		SpecHash:  j.Hash,
		State:     j.State,
		Cached:    j.Cached,
		Coalesced: j.Coalesced,
		Stream:    j.Stream,
		Spec:      j.Spec,
	}
	if j.Err != "" || j.ErrCode != "" {
		v.Error = &APIError{Code: j.ErrCode, Message: j.Err}
	}
	if j.State == StateDone || j.State == StateFailed {
		stats := j.Stats
		v.Stats = &stats
		v.Artifacts = artifactNames(j)
	}
	return v
}

// artifactNames lists a job's available artifacts — the buffered map plus
// the ring-backed streams. Caller holds s.mu.
func artifactNames(j *Job) []string {
	names := make([]string, 0, len(j.Artifacts)+len(j.streams))
	for name := range j.Artifacts {
		names = append(names, name)
	}
	for name := range j.streams {
		if _, dup := j.Artifacts[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
