package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/run"
)

// postSpec submits a spec and returns the response status, body and
// headers.
func postSpec(t *testing.T, ts *httptest.Server, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header
}

// submit submits a spec expecting 202 and returns the job ID. A cache hit
// is born terminal, so both queued and done are acceptable on admission.
func submit(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	code, b, hdr := postSpec(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, b)
	}
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || (v.State != StateQueued && v.State != StateDone) {
		t.Fatalf("submit view: %+v", v)
	}
	if loc := hdr.Get("Location"); loc != "/api/v1/jobs/"+v.ID {
		t.Fatalf("Location header %q for job %s", loc, v.ID)
	}
	if v.SpecHash == "" {
		t.Fatalf("submit view missing spec_hash: %+v", v)
	}
	return v.ID
}

// errorCode decodes the structured error envelope of a non-2xx body.
func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	if env.Error.Code == "" {
		t.Fatalf("envelope without code: %s", body)
	}
	return env.Error.Code
}

// getJob fetches a job's status view.
func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d: %s", id, resp.StatusCode, b)
	}
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitTerminal polls until the job leaves queued/running.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State != StateQueued && v.State != StateRunning {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// fetchArtifact downloads one artifact of a finished job.
func fetchArtifact(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s/%s: %d: %s", id, name, resp.StatusCode, b)
	}
	return b
}

// TestSubmitPollFetch is the happy path end to end with the real executor:
// submit a short videogame run, poll to completion, download artifacts.
func TestSubmitPollFetch(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"60ms","seed":7,"artifacts":["metrics.json","console.txt"]}`)
	v := waitTerminal(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("state %s, err %v", v.State, v.Error)
	}
	if v.Stats == nil || v.Stats.Ticks == 0 {
		t.Fatalf("missing stats: %+v", v)
	}
	if len(v.Artifacts) != 2 {
		t.Fatalf("artifacts: %v", v.Artifacts)
	}
	m := fetchArtifact(t, ts, id, "metrics.json")
	if !json.Valid(m) {
		t.Fatalf("metrics not JSON: %.80s", m)
	}
	if c := fetchArtifact(t, ts, id, "console.txt"); !bytes.Contains(c, []byte("game:")) {
		t.Fatalf("console artifact: %.80s", c)
	}

	// Unknown artifact and unknown job.
	if resp, _ := http.Get(ts.URL + "/api/v1/jobs/" + id + "/artifacts/nope.txt"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown artifact: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/api/v1/jobs/zzz"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// TestSubmitValidation checks malformed and invalid specs fail with 400 at
// submission, before touching the pool.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		`{not json`,
		`{"bogus_field":1}`,
		`{"scenario":"warp"}`,
		`{"artifacts":["nope.bin"]}`,
		`{"scenario":"chaos","artifacts":["trace.json"]}`, // trace needs chaos.job
	} {
		code, b, _ := postSpec(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d: %s", body, code, b)
			continue
		}
		if c := errorCode(t, b); c != CodeInvalidSpec {
			t.Errorf("spec %s: error code %q", body, c)
		}
	}
}

// blockingExec returns a fake executor that signals each start on started,
// then blocks until release is closed (or the job context ends).
func blockingExec(started chan<- string, release <-chan struct{}) func(context.Context, run.Spec) (run.Result, error) {
	return func(ctx context.Context, spec run.Spec) (run.Result, error) {
		if started != nil {
			started <- string(spec.Scenario)
		}
		select {
		case <-release:
			return run.Result{
				Stats:     run.Stats{Scenario: spec.Scenario, Jobs: 1},
				Artifacts: map[string][]byte{run.ArtifactSummary: []byte("ok\n")},
			}, nil
		case <-ctx.Done():
			return run.Result{}, context.Cause(ctx)
		}
	}
}

// TestBackpressure proves the acceptance scenario: 32 concurrent jobs on a
// 4-worker pool with a bounded queue are all accepted, the 33rd submission
// is rejected with 429 + Retry-After, and after the queue drains every
// accepted job completes.
func TestBackpressure(t *testing.T) {
	started := make(chan string, 64)
	release := make(chan struct{})
	s := New(Config{
		Workers: 4,
		Queue:   28, // 4 in flight + 28 queued = 32 concurrent jobs
		Execute: blockingExec(started, release),
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Distinct seeds keep every submission a distinct content hash — the
	// singleflight path is exercised by TestSingleflightDedupe, here we
	// want 32 genuinely independent jobs.
	spec := func(i int) string {
		return fmt.Sprintf(`{"scenario":"chaos","seed":%d,"artifacts":["summary.txt"]}`, i)
	}

	// Fill the workers first so the queue arithmetic below is exact.
	ids := make([]string, 0, 32)
	for i := 0; i < 4; i++ {
		ids = append(ids, submit(t, ts, spec(i)))
	}
	for i := 0; i < 4; i++ {
		<-started // all four workers are now busy
	}
	// Fill the bounded queue.
	for i := 0; i < 28; i++ {
		ids = append(ids, submit(t, ts, spec(4+i)))
	}

	// Past capacity: 429 with a Retry-After hint and a typed envelope.
	code, b, hdr := postSpec(t, ts, spec(99))
	if code != http.StatusTooManyRequests {
		t.Fatalf("33rd submission: status %d: %s", code, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if c := errorCode(t, b); c != CodeSaturated {
		t.Fatalf("429 error code %q", c)
	}

	// The rejection is visible in /varz.
	var v Varz
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.JobsSubmitted != 32 || v.JobsRejected != 1 || v.InFlight != 4 || v.QueueDepth != 28 {
		t.Fatalf("varz: %+v", v)
	}

	// Drain: every accepted job completes.
	close(release)
	for _, id := range ids {
		if v := waitTerminal(t, ts, id); v.State != StateDone {
			t.Fatalf("job %s: %s (%v)", id, v.State, v.Error)
		}
	}
}

// TestDeadlineExceeded submits a job whose Spec deadline is far shorter
// than its simulated duration: the run must stop at a quiescent point and
// the job must surface the deadline error.
func TestDeadlineExceeded(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"1h","deadline":"30ms"}`)
	v := waitTerminal(t, ts, id)
	if v.State != StateFailed {
		t.Fatalf("state %s", v.State)
	}
	if v.Error == nil || v.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("error %+v", v.Error)
	}
	if v.Stats == nil || v.Stats.SimTime.Std() >= time.Hour {
		t.Fatal("partial stats missing or not cut short")
	}
}

// TestCancelRunning cancels an in-flight job via DELETE.
func TestCancelRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Workers: 1, Execute: blockingExec(started, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{}`)
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := waitTerminal(t, ts, id); v.State != StateCancelled {
		t.Fatalf("state %s (%v)", v.State, v.Error)
	}
}

// TestGracefulShutdown proves the drain contract: Shutdown stops admission
// (503 for new submissions) while queued and in-flight jobs run to
// completion.
func TestGracefulShutdown(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 2, Queue: 2, Execute: blockingExec(started, release)})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := func(i int) string {
		return fmt.Sprintf(`{"scenario":"chaos","seed":%d,"artifacts":["summary.txt"]}`, i)
	}
	ids := []string{submit(t, ts, spec(0)), submit(t, ts, spec(1))}
	<-started
	<-started
	ids = append(ids, submit(t, ts, spec(2)), submit(t, ts, spec(3))) // queued

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// Admission is closed while the drain is in progress, and the 503
	// carries a Retry-After hint plus the typed draining envelope — the
	// satellite fix: saturation is not the only backpressure that says
	// when to come back.
	waitClosed := time.Now().Add(5 * time.Second)
	for i := 100; ; i++ {
		code, b, hdr := postSpec(t, ts, spec(i))
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Fatal("drain 503 without Retry-After")
			}
			if c := errorCode(t, b); c != CodeDraining {
				t.Fatalf("drain 503 error code %q", c)
			}
			break
		}
		if time.Now().After(waitClosed) {
			t.Fatalf("admission never closed: last status %d", code)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("shutdown returned before drain: %v", err)
	default:
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every accepted job completed; records are still queryable.
	for _, id := range ids {
		if v := getJob(t, ts, id); v.State != StateDone {
			t.Fatalf("job %s: %s (%v)", id, v.State, v.Error)
		}
	}
}

// TestShutdownDeadlineForcesCancel: a drain whose context expires cancels
// the stragglers instead of hanging.
func TestShutdownDeadlineForcesCancel(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{}) // never closed: the job only ends via ctx
	s := New(Config{Workers: 1, Execute: blockingExec(started, release)})
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{}`)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("expired drain reported success")
	}
	if v := getJob(t, ts, id); v.State != StateFailed {
		t.Fatalf("straggler state %s", v.State)
	}
}

// TestDeterminismHTTPvsCLI is the façade's cross-transport contract: a
// fixed-seed Spec produces byte-identical trace and metrics artifacts
// whether executed directly (the CLI path) or through the job server.
func TestDeterminismHTTPvsCLI(t *testing.T) {
	spec := run.Spec{
		Dur:       run.Duration(100 * time.Millisecond),
		Seed:      42,
		Artifacts: []string{run.ArtifactTrace, run.ArtifactMetrics, run.ArtifactGantt},
	}
	direct, err := run.Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(spec)
	id := submit(t, ts, string(body))
	v := waitTerminal(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("state %s (%v)", v.State, v.Error)
	}
	for _, name := range spec.Artifacts {
		got := fetchArtifact(t, ts, id, name)
		want := direct.Artifacts[name]
		if len(want) == 0 {
			t.Fatalf("%s: empty direct artifact", name)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: HTTP and direct bytes differ (%d vs %d)", name, len(got), len(want))
		}
	}
	// The deterministic stats digest matches too.
	if v.Stats.Frames != direct.Stats.Frames || v.Stats.CtxSwitches != direct.Stats.CtxSwitches {
		t.Fatalf("stats digest differs: %+v vs %+v", v.Stats, direct.Stats)
	}
}

// TestHealthzVarz smoke-tests the introspection endpoints.
func TestHealthzVarz(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}

	var v Varz
	resp, err = http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.Workers != 1 || v.QueueCap != 2 {
		t.Fatalf("varz: %+v", v)
	}
}

// TestJobEviction checks the record table stays bounded: terminal jobs are
// evicted oldest-first once MaxJobs is exceeded.
func TestJobEviction(t *testing.T) {
	release := make(chan struct{})
	close(release) // jobs complete immediately
	s := New(Config{Workers: 1, MaxJobs: 4, Execute: blockingExec(nil, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	var last string
	for i := 0; i < 8; i++ {
		last = submit(t, ts, `{}`)
		waitTerminal(t, ts, last)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) > 4 {
		t.Fatalf("retained %d records", len(list.Jobs))
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == last {
			found = true
		}
	}
	if !found {
		t.Fatalf("newest job evicted: %v", list.Jobs)
	}
	// The first job is gone.
	if resp, _ := http.Get(ts.URL + "/api/v1/jobs/j1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest job survived eviction: %d", resp.StatusCode)
	}
}
