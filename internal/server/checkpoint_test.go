package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/run"
	"repro/internal/run/opts"
	"repro/internal/workload"
)

// TestResumeFromOverHTTP is the service half of the snapshot contract: a
// capture job's snapshot.bin artifact, resubmitted as checkpoint.resume_from,
// completes the run with artifacts byte-identical to the straight run —
// entirely over the jobs API.
func TestResumeFromOverHTTP(t *testing.T) {
	arts := []string{run.ArtifactTrace, run.ArtifactMetrics, run.ArtifactTaskSet}
	base := run.Spec{
		Scenario:  run.ScenarioSynthetic,
		Dur:       run.Duration(100 * time.Millisecond),
		Seed:      9,
		Engine:    opts.EngineContinuation,
		Synthetic: &run.SyntheticSpec{Gen: &workload.GenSpec{Interrupts: 2}},
		Artifacts: arts,
	}
	straight, err := run.Execute(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Capture at T over HTTP.
	capSpec := base
	capSpec.Checkpoint = &run.CheckpointSpec{At: run.Duration(50 * time.Millisecond)}
	capSpec.Artifacts = append([]string{run.ArtifactSnapshot}, arts...)
	body, _ := json.Marshal(capSpec)
	id := submit(t, ts, string(body))
	if v := waitTerminal(t, ts, id); v.State != StateDone {
		t.Fatalf("capture job: %s (%v)", v.State, v.Error)
	}
	snap := fetchArtifact(t, ts, id, run.ArtifactSnapshot)
	if len(snap) == 0 {
		t.Fatal("empty snapshot artifact over HTTP")
	}

	// Resume the snapshot to 2T over HTTP.
	resume := run.Spec{
		Scenario:   run.ScenarioSynthetic,
		Dur:        base.Dur,
		Checkpoint: &run.CheckpointSpec{ResumeFrom: snap},
		Artifacts:  arts,
	}
	body, _ = json.Marshal(resume)
	id = submit(t, ts, string(body))
	v := waitTerminal(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("resume job: %s (%v)", v.State, v.Error)
	}
	for _, name := range arts {
		got := fetchArtifact(t, ts, id, name)
		if !bytes.Equal(got, straight.Artifacts[name]) {
			t.Errorf("%s: resumed-over-HTTP bytes differ from straight run (%d vs %d)",
				name, len(got), len(straight.Artifacts[name]))
		}
	}

	// Resume jobs carry a one-shot payload and must not be cached: an
	// identical resubmission simulates again rather than dedupe.
	if v.Cached || v.Coalesced {
		t.Fatalf("resume job served from cache: %+v", v)
	}

	// A corrupted payload is rejected with the invalid-spec/failed path,
	// not accepted silently.
	bad := resume
	bad.Checkpoint = &run.CheckpointSpec{ResumeFrom: append([]byte(nil), snap...)}
	bad.Checkpoint.ResumeFrom[len(snap)/2] ^= 0x40
	body, _ = json.Marshal(bad)
	id = submit(t, ts, string(body))
	if v := waitTerminal(t, ts, id); v.State != StateFailed {
		t.Fatalf("corrupt resume job: %s, want failed", v.State)
	}
}
