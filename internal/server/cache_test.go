package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/run"
)

func getVarz(t *testing.T, ts *httptest.Server) Varz {
	t.Helper()
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v Varz
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCacheHitByteIdentical is the acceptance criterion: resubmitting an
// identical Spec — even spelled with its defaults materialized — is
// served from cache without simulating, and every artifact is
// byte-identical to the cold run's.
func TestCacheHitByteIdentical(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := `{"dur":"60ms","seed":11,"artifacts":["metrics.json","gantt.txt","console.txt"]}`
	cold := submit(t, ts, spec)
	cv := waitTerminal(t, ts, cold)
	if cv.State != StateDone || cv.Cached {
		t.Fatalf("cold run: %+v", cv)
	}

	// Same job, defaults spelled out and artifacts reordered: canonical
	// encoding must land it on the same hash.
	respelled := `{"scenario":"videogame","dur":"60ms","seed":11,"gui":true,"tickless":true,
		"engine":"goroutine","frame":"10ms","tick":"1ms",
		"artifacts":["console.txt","gantt.txt","metrics.json"]}`
	warm := submit(t, ts, respelled)
	wv := waitTerminal(t, ts, warm)
	if wv.State != StateDone || !wv.Cached {
		t.Fatalf("warm run not served from cache: %+v", wv)
	}
	if wv.SpecHash != cv.SpecHash {
		t.Fatalf("canonical hash mismatch: %s vs %s", wv.SpecHash, cv.SpecHash)
	}

	for _, name := range []string{"metrics.json", "gantt.txt", "console.txt"} {
		a := fetchArtifact(t, ts, cold, name)
		b := fetchArtifact(t, ts, warm, name)
		if len(a) == 0 || !bytes.Equal(a, b) {
			t.Fatalf("%s: cache hit differs from cold run (%d vs %d bytes)", name, len(a), len(b))
		}
	}
	// The deterministic stats digest rides along with the cached result.
	if wv.Stats == nil || cv.Stats == nil || wv.Stats.CtxSwitches != cv.Stats.CtxSwitches {
		t.Fatalf("stats digest differs: %+v vs %+v", wv.Stats, cv.Stats)
	}

	v := getVarz(t, ts)
	if v.JobsFromCache != 1 || v.Cache == nil || v.Cache.Hits != 1 {
		t.Fatalf("varz cache accounting: %+v cache=%+v", v, v.Cache)
	}
}

// blockingExecCounting builds a fake executor that counts invocations and
// blocks until release closes. Singleflight correctness is measured by the
// counter: N identical submissions must cost exactly one call.
func blockingExecCounting(calls *atomic.Int64, release <-chan struct{}) func(context.Context, run.Spec) (run.Result, error) {
	return func(ctx context.Context, spec run.Spec) (run.Result, error) {
		calls.Add(1)
		select {
		case <-release:
			return run.Result{
				Stats:     run.Stats{Scenario: spec.Scenario},
				Artifacts: map[string][]byte{"summary.txt": []byte("ok\n")},
			}, nil
		case <-ctx.Done():
			return run.Result{}, context.Cause(ctx)
		}
	}
}

// TestSingleflightDedupe is the acceptance criterion: 32 concurrent
// submissions of one identical Spec perform exactly one simulation — one
// leader on the pool, 31 followers parked off-pool — and every job ends
// done with the leader's result.
func TestSingleflightDedupe(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	s := New(Config{
		Workers: 1,
		Queue:   1, // deliberately tiny: followers must not consume queue slots
		Execute: blockingExecCounting(&calls, release),
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := `{"scenario":"chaos","seed":5,"artifacts":["summary.txt"]}`
	const n = 32
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, b, _ := postSpec(t, ts, spec)
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("submission %d: status %d: %s", i, code, b)
				return
			}
			var v JobView
			if err := json.Unmarshal(b, &v); err != nil {
				errs <- err
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	close(release)
	coalesced := 0
	for _, id := range ids {
		v := waitTerminal(t, ts, id)
		if v.State != StateDone {
			t.Fatalf("job %s: %s (%v)", id, v.State, v.Error)
		}
		if v.Coalesced {
			coalesced++
		}
		if a := fetchArtifact(t, ts, id, "summary.txt"); string(a) != "ok\n" {
			t.Fatalf("job %s artifact: %q", id, a)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("executed %d simulations for %d identical submissions", got, n)
	}
	// Everyone but the leader (and any late cache hits) coalesced.
	v := getVarz(t, ts)
	if v.JobsCoalesced+v.JobsFromCache != n-1 {
		t.Fatalf("dedupe accounting: coalesced=%d from_cache=%d want %d total",
			v.JobsCoalesced, v.JobsFromCache, n-1)
	}
	if coalesced != int(v.JobsCoalesced) {
		t.Fatalf("job docs report %d coalesced, varz %d", coalesced, v.JobsCoalesced)
	}
}

// TestExperimentsNeverCached: the experiments scenario embeds wall-clock
// measurements, so identical submissions must each simulate.
func TestExperimentsNeverCached(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release)
	s := New(Config{Workers: 1, Execute: blockingExecCounting(&calls, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := `{"scenario":"experiments","experiments":{"sections":["table1"]},"artifacts":["report.txt"]}`
	for i := 0; i < 3; i++ {
		waitTerminal(t, ts, submit(t, ts, spec))
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("experiments deduped: %d executions for 3 submissions", got)
	}
}

// TestCacheDisabled: DisableCache restores run-everything behavior.
func TestCacheDisabled(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release)
	s := New(Config{Workers: 1, DisableCache: true, Execute: blockingExecCounting(&calls, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := `{"seed":3,"artifacts":[]}`
	for i := 0; i < 2; i++ {
		waitTerminal(t, ts, submit(t, ts, spec))
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("cache not disabled: %d executions", got)
	}
	if v := getVarz(t, ts); v.Cache != nil {
		t.Fatalf("varz reports a cache while disabled: %+v", v.Cache)
	}
}

// TestArtifactETag: artifact responses carry a strong content-hash ETag
// and honor If-None-Match with 304.
func TestArtifactETag(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submit(t, ts, `{"dur":"40ms","seed":2,"artifacts":["console.txt"]}`)
	waitTerminal(t, ts, id)

	url := ts.URL + "/api/v1/jobs/" + id + "/artifacts/console.txt"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("artifact GET: %d etag=%q", resp.StatusCode, etag)
	}
	if want := etagOf(body); etag != want {
		t.Fatalf("etag %q is not the content hash %q", etag, want)
	}

	// Conditional refetch: headers only.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(nb) != 0 {
		t.Fatalf("If-None-Match: %d body=%d bytes", resp.StatusCode, len(nb))
	}
	// A stale tag still gets the body.
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(rb, body) {
		t.Fatalf("stale tag: %d, %d bytes", resp.StatusCode, len(rb))
	}
}

// TestListPagination: ?limit= pages with cursors, ?state= filters, and
// bad parameters get typed envelopes.
func TestListPagination(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release)
	s := New(Config{Workers: 1, Execute: blockingExecCounting(&calls, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 7 distinct jobs (distinct seeds), all terminal.
	for i := 0; i < 7; i++ {
		waitTerminal(t, ts, submit(t, ts, fmt.Sprintf(`{"seed":%d}`, i)))
	}

	page := func(query string) JobList {
		t.Helper()
		resp, err := http.Get(ts.URL + "/api/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %s: %d: %s", query, resp.StatusCode, b)
		}
		var l JobList
		if err := json.Unmarshal(b, &l); err != nil {
			t.Fatal(err)
		}
		return l
	}

	var all []string
	cursor := ""
	pages := 0
	for {
		q := "?limit=3"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		l := page(q)
		if len(l.Jobs) > 3 {
			t.Fatalf("page over limit: %d jobs", len(l.Jobs))
		}
		for _, j := range l.Jobs {
			all = append(all, j.ID)
		}
		pages++
		if l.NextCursor == "" {
			break
		}
		cursor = l.NextCursor
	}
	if len(all) != 7 || pages != 3 {
		t.Fatalf("walked %d jobs in %d pages: %v", len(all), pages, all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] && len(all[i-1]) >= len(all[i]) {
			t.Fatalf("page order broken: %v", all)
		}
	}

	// State filter: everything is done.
	if l := page("?state=done"); len(l.Jobs) != 7 {
		t.Fatalf("state=done: %d jobs", len(l.Jobs))
	}
	if l := page("?state=running"); len(l.Jobs) != 0 {
		t.Fatalf("state=running: %d jobs", len(l.Jobs))
	}

	// Bad parameters: typed envelope.
	for _, q := range []string{"?state=warp", "?limit=0", "?limit=x", "?cursor=x"} {
		resp, err := http.Get(ts.URL + "/api/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("list %s: %d", q, resp.StatusCode)
		}
		if c := errorCode(t, b); c != CodeInvalidArgument {
			t.Fatalf("list %s: code %q", q, c)
		}
	}
}
