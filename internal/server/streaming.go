package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/run"
	"repro/internal/stream"
)

// This file is the bounded-memory artifact pipeline of the v3 jobs API. A
// submission with "stream": true runs through run.ExecuteStream with each
// streamable artifact (trace, metrics) attached to a stream.Ring: the
// exporters write into the ring from their bus subscribers as the
// simulation emits events, the ring keeps only a fixed window in memory
// (older bytes spill to an unlinked temp file), and GET
// .../artifacts/{name}?stream=1 serves the ring over chunked transfer
// while the job still runs. Server memory per streamed artifact is
// O(window), never O(trace).
//
// The determinism contract is preserved end to end: a streamed artifact
// is byte-identical to its buffered twin (same exporter, different
// io.Writer), Spec.Stream is erased by canonicalization so both
// submissions share one content hash, and a finished streamed result
// small enough to materialize still lands in the result cache — streaming
// changes transport, never content or identity.

// TrailerStreamError is the HTTP trailer a live artifact stream sets when
// the producing run fails mid-stream. Error envelopes need headers, and
// headers are gone once chunks flow — the trailer ("code: message") is
// the post-header error channel; a clean stream omits it.
const TrailerStreamError = "X-Stream-Error"

// DefaultMaxInlineArtifact bounds which finished streamed artifacts are
// materialized into the result cache.
const DefaultMaxInlineArtifact = 8 << 20

// runStreamed executes a streaming job: every pre-built ring becomes the
// sink for its artifact, progress snapshots feed the job's event log, and
// the rings are closed with the run's terminal status so every live
// reader observes the same end the job did. On success the result is
// landed in the content-addressed cache when all streamed artifacts fit
// the inline bound; an oversize artifact stays ring-backed (disk + window,
// strong ETag) and the result is simply not cached.
func (s *Server) runStreamed(ctx context.Context, job *Job) (run.Result, error) {
	sinks := make(run.Sinks, len(job.streams))
	for name, ring := range job.streams {
		sinks[name] = ring
	}
	res, err := s.execStream(ctx, job.Spec, run.StreamOptions{
		Sinks: sinks,
		Progress: func(st run.Stats) {
			stc := st
			s.event(job, Event{Type: EventProgress, Stats: &stc})
		},
	})
	for _, ring := range job.streams {
		ring.Close(err)
	}
	if err == nil && s.cache != nil && job.Hash != "" && run.Cacheable(job.Spec) {
		if full, ok := s.materialize(job, res); ok {
			s.cache.Put(job.Hash, full)
			s.mu.Lock()
			s.streamCached++
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			s.streamOversize++
			s.mu.Unlock()
		}
	}
	return res, err
}

// materialize rebuilds the full buffered result of a finished streamed
// job for the cache: the buffered artifacts plus each ring's content,
// refusing any ring past the inline bound.
func (s *Server) materialize(job *Job, res run.Result) (run.Result, bool) {
	max := s.cfg.MaxInlineArtifact
	if max < 0 {
		return run.Result{}, false
	}
	full := run.Result{
		Stats:     res.Stats,
		Artifacts: make(map[string][]byte, len(res.Artifacts)+len(job.streams)),
	}
	for name, b := range res.Artifacts {
		full.Artifacts[name] = b
	}
	for name, ring := range job.streams {
		b, err := ring.Bytes(max)
		if err != nil {
			return run.Result{}, false
		}
		full.Artifacts[name] = b
	}
	return full, true
}

// serveRing serves a ring-backed artifact. Finished rings serve like any
// buffered artifact — strong ETag (computed incrementally during the
// run), If-None-Match, Content-Length — except the bytes come from the
// window + spill file, so even the finished path is O(window) memory. A
// live ring requires ?stream=1 (a plain GET keeps the v2 "job not
// finished" conflict) and serves chunked with a flush per read, declaring
// the X-Stream-Error trailer for mid-stream failures.
func (s *Server) serveRing(w http.ResponseWriter, r *http.Request, name string, ring *stream.Ring, live bool) {
	if ring.Closed() {
		etag := ring.ETag()
		w.Header().Set("ETag", etag)
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", contentType(name))
		w.Header().Set("Content-Length", strconv.FormatInt(ring.Size(), 10))
		w.WriteHeader(http.StatusOK)
		_, _ = io.Copy(w, ring.Reader(r.Context()))
		return
	}
	if !live {
		WriteError(w, http.StatusConflict, CodeConflict, "job not finished; pass ?stream=1 to stream it live", 0)
		return
	}

	s.mu.Lock()
	s.streamsServed++
	s.mu.Unlock()

	w.Header().Set("Content-Type", contentType(name))
	w.Header().Set("Trailer", TrailerStreamError)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	rd := ring.Reader(r.Context())
	buf := make([]byte, 32<<10)
	for {
		n, err := rd.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		}
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return // clean end: no trailer
		case r.Context().Err() != nil:
			return // client went away
		default:
			w.Header().Set(TrailerStreamError, errorCodeOf(err.Error())+": "+err.Error())
			return
		}
	}
}
