package tkds_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/tkernel"
)

// buildKernel boots a kernel with a few objects of every class so the
// listings have content.
func buildKernel(t *testing.T) (*tkernel.Kernel, *sysc.Simulator) {
	t.Helper()
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("lcd-sem", tkernel.TaTFIFO, 1, 4)
		_, _ = k.CreFlg("key-flg", tkernel.TaWMUL, 0)
		_, _ = k.CreMtx("bus-mtx", tkernel.TaInherit, 0)
		_, _ = k.CreMbx("vid-mbx", tkernel.TaMFIFO)
		_, _ = k.CreMbf("ser-mbf", tkernel.TaTFIFO, 128, 32)
		_, _ = k.CreMpf("frame-mpf", tkernel.TaTFIFO, 4, 64)
		_, _ = k.CreMpl("heap-mpl", tkernel.TaTFIFO, 512)
		cyc, _ := k.CreCyc("H1", 10*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {})
		_ = k.StaCyc(cyc)
		_, _ = k.CreAlm("H2", func(h *tkernel.HandlerCtx) {})
		_ = k.DefInt(0, "key-isr", func(h *tkernel.HandlerCtx) {})
		id, _ := k.CreTsk("T1", 10, func(task *tkernel.Task) {
			_ = k.WaiSem(sem, 1, tkernel.TmoFevr)
		})
		_ = k.StaTsk(id)
		id2, _ := k.CreTsk("T2", 12, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 500 * sysc.Ms}, "spin")
		})
		_ = k.StaTsk(id2)
	})
	t.Cleanup(sim.Shutdown)
	if err := sim.Start(20 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	return k, sim
}

func TestListingContainsAllSections(t *testing.T) {
	k, _ := buildKernel(t)
	ds := tkds.New(k)
	var b strings.Builder
	ds.Listing(&b)
	out := b.String()
	for _, section := range []string{
		"== TASK ==", "== SEMAPHORE ==", "== EVENTFLAG ==", "== MUTEX ==",
		"== MAILBOX ==", "== MSGBUF ==", "== MEMPOOL(F) ==", "== MEMPOOL(V) ==",
		"== CYCLIC ==", "== ALARM ==", "== INTERRUPT ==",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("listing missing %q", section)
		}
	}
	for _, name := range []string{"T1", "T2", "lcd-sem", "key-flg", "bus-mtx",
		"vid-mbx", "ser-mbf", "frame-mpf", "heap-mpl", "H1", "H2", "key-isr"} {
		if !strings.Contains(out, name) {
			t.Errorf("listing missing object %q", name)
		}
	}
}

func TestListingShowsRunningAndWaitingStates(t *testing.T) {
	k, _ := buildKernel(t)
	ds := tkds.New(k)
	var b strings.Builder
	ds.ListTasks(&b)
	out := b.String()
	if !strings.Contains(out, "RUNNING") {
		t.Errorf("no RUNNING task in:\n%s", out)
	}
	// T1 consumed the initial count then waits again? It waits after the
	// count is taken once; with init count 1 the first WaiSem succeeds, so
	// T1 may be DORMANT. T2 spins: RUNNING. Check T2's row.
	if !strings.Contains(out, "T2") {
		t.Errorf("missing T2:\n%s", out)
	}
}

func TestTraceEventsShowsTokens(t *testing.T) {
	k, _ := buildKernel(t)
	ds := tkds.New(k)
	var b strings.Builder
	ds.TraceEvents(&b)
	out := b.String()
	if !strings.Contains(out, "running") && !strings.Contains(out, "dormant") {
		t.Errorf("no token places in:\n%s", out)
	}
	if !strings.Contains(out, "T2") {
		t.Errorf("missing T2 row:\n%s", out)
	}
}

func TestEnergyDistribution(t *testing.T) {
	k, _ := buildKernel(t)
	ds := tkds.New(k)
	var b strings.Builder
	ds.EnergyDistribution(&b)
	if !strings.Contains(b.String(), "TOTAL") {
		t.Fatalf("energy table malformed:\n%s", b.String())
	}
}

func TestSnapshotAndWatch(t *testing.T) {
	k, sim := buildKernel(t)
	ds := tkds.New(k)
	snap := ds.Snapshot("t0")
	if !strings.Contains(snap, "snapshot: t0") || !strings.Contains(snap, "== TASK ==") {
		t.Fatal("snapshot malformed")
	}
	var b strings.Builder
	stop := ds.Watch(5*sysc.Ms, &b)
	if err := sim.Start(40 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	stop()
	if strings.Count(b.String(), "snapshot:") < 3 {
		t.Fatalf("watch produced %d snapshots", strings.Count(b.String(), "snapshot:"))
	}
}
