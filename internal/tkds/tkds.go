// Package tkds models T-Kernel/DS, the debugger-support component of
// RTK-Spec TRON: it references kernel resources and internal state through
// the kernel's tk_ref_* functions and renders the object listings of the
// paper's Figure 8, plus a kernel event trace for tracing internal state
// changes at run time.
package tkds

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// DS is a debugger-support session bound to a kernel instance.
type DS struct {
	k *tkernel.Kernel
}

// New attaches debugger support to a kernel.
func New(k *tkernel.Kernel) *DS { return &DS{k: k} }

// ListTasks writes the task listing: ID, name, state, priorities, wait
// object, statistics.
func (d *DS) ListTasks(w io.Writer) {
	fmt.Fprintf(w, "== TASK ==\n")
	fmt.Fprintf(w, "%-4s %-12s %-18s %4s %4s %-18s %4s %4s %12s\n",
		"ID", "NAME", "STATE", "PRI", "BPRI", "WAIT-OBJ", "WUP", "SUS", "CET")
	for _, id := range d.k.TaskList() {
		info, er := d.k.RefTsk(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %-18s %4d %4d %-18s %4d %4d %12s\n",
			id, info.Name, info.State, info.Priority, info.BasePrio,
			dash(info.WaitObj), info.WupCount, info.SusCount, info.CET)
	}
}

// ListSemaphores writes the semaphore listing.
func (d *DS) ListSemaphores(w io.Writer) {
	fmt.Fprintf(w, "== SEMAPHORE ==\n")
	fmt.Fprintf(w, "%-4s %-12s %6s %6s %s\n", "ID", "NAME", "CNT", "MAX", "WAITING")
	for _, id := range d.k.SemList() {
		info, er := d.k.RefSem(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %6d %6d %s\n",
			id, info.Name, info.Count, info.MaxCount, list(info.Waiting))
	}
}

// ListFlags writes the event-flag listing.
func (d *DS) ListFlags(w io.Writer) {
	fmt.Fprintf(w, "== EVENTFLAG ==\n")
	fmt.Fprintf(w, "%-4s %-12s %10s %s\n", "ID", "NAME", "PATTERN", "WAITING")
	for _, id := range d.k.FlgList() {
		info, er := d.k.RefFlg(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s 0x%08x %s\n", id, info.Name, info.Pattern, list(info.Waiting))
	}
}

// ListMutexes writes the mutex listing.
func (d *DS) ListMutexes(w io.Writer) {
	fmt.Fprintf(w, "== MUTEX ==\n")
	fmt.Fprintf(w, "%-4s %-12s %-12s %s\n", "ID", "NAME", "OWNER", "WAITING")
	for _, id := range d.k.MtxList() {
		info, er := d.k.RefMtx(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %-12s %s\n", id, info.Name, dash(info.OwnerName), list(info.Waiting))
	}
}

// ListMailboxes writes the mailbox listing.
func (d *DS) ListMailboxes(w io.Writer) {
	fmt.Fprintf(w, "== MAILBOX ==\n")
	fmt.Fprintf(w, "%-4s %-12s %6s %s\n", "ID", "NAME", "MSGS", "WAITING")
	for _, id := range d.k.MbxList() {
		info, er := d.k.RefMbx(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %6d %s\n", id, info.Name, info.Messages, list(info.Waiting))
	}
}

// ListMessageBuffers writes the message-buffer listing.
func (d *DS) ListMessageBuffers(w io.Writer) {
	fmt.Fprintf(w, "== MSGBUF ==\n")
	fmt.Fprintf(w, "%-4s %-12s %6s %6s %-16s %s\n", "ID", "NAME", "MSGS", "FREE", "SND-WAIT", "RCV-WAIT")
	for _, id := range d.k.MbfList() {
		info, er := d.k.RefMbf(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %6d %6d %-16s %s\n",
			id, info.Name, info.Messages, info.FreeBytes,
			list(info.SendWaiting), list(info.RecvWaiting))
	}
}

// ListMemoryPools writes fixed- and variable-pool listings.
func (d *DS) ListMemoryPools(w io.Writer) {
	fmt.Fprintf(w, "== MEMPOOL(F) ==\n")
	fmt.Fprintf(w, "%-4s %-12s %6s %6s %s\n", "ID", "NAME", "FREE", "BLKSZ", "WAITING")
	for _, id := range d.k.MpfList() {
		info, er := d.k.RefMpf(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %6d %6d %s\n",
			id, info.Name, info.Free, info.BlockSize, list(info.Waiting))
	}
	fmt.Fprintf(w, "== MEMPOOL(V) ==\n")
	fmt.Fprintf(w, "%-4s %-12s %8s %8s %s\n", "ID", "NAME", "FREE", "MAXBLK", "WAITING")
	for _, id := range d.k.MplList() {
		info, er := d.k.RefMpl(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %8d %8d %s\n",
			id, info.Name, info.FreeBytes, info.FreeMax, list(info.Waiting))
	}
}

// ListTimeHandlers writes cyclic- and alarm-handler listings.
func (d *DS) ListTimeHandlers(w io.Writer) {
	fmt.Fprintf(w, "== CYCLIC ==\n")
	fmt.Fprintf(w, "%-4s %-12s %-7s %-12s %6s %8s\n", "ID", "NAME", "ACTIVE", "INTERVAL", "FIRES", "OVERRUNS")
	for _, id := range d.k.CycList() {
		info, er := d.k.RefCyc(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %-7v %-12s %6d %8d\n",
			id, info.Name, info.Active, info.Interval, info.Fires, info.Overruns)
	}
	fmt.Fprintf(w, "== ALARM ==\n")
	fmt.Fprintf(w, "%-4s %-12s %-7s %6s\n", "ID", "NAME", "ACTIVE", "FIRES")
	for _, id := range d.k.AlmList() {
		info, er := d.k.RefAlm(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %-7v %6d\n", id, info.Name, info.Active, info.Fires)
	}
}

// ListPorts writes the rendezvous-port listing.
func (d *DS) ListPorts(w io.Writer) {
	fmt.Fprintf(w, "== PORT ==\n")
	fmt.Fprintf(w, "%-4s %-12s %6s %-16s %s\n", "ID", "NAME", "RDV", "CALL-WAIT", "ACP-WAIT")
	for _, id := range d.k.PorList() {
		info, er := d.k.RefPor(id)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-4d %-12s %6d %-16s %s\n",
			id, info.Name, info.OpenRdv, list(info.CallWaiting), list(info.AcceptWait))
	}
}

// ListInterrupts writes the interrupt-handler listing.
func (d *DS) ListInterrupts(w io.Writer) {
	fmt.Fprintf(w, "== INTERRUPT ==\n")
	fmt.Fprintf(w, "%-6s %-12s %6s %6s\n", "INTNO", "NAME", "FIRES", "MISSED")
	for _, n := range d.k.IntList() {
		info, er := d.k.RefInt(n)
		if er != tkernel.EOK {
			continue
		}
		fmt.Fprintf(w, "%-6d %-12s %6d %6d\n", n, info.Name, info.Fires, info.Missed)
	}
}

// Listing writes the full T-Kernel/DS output listing (Figure 8): system
// state header followed by all object-class listings.
func (d *DS) Listing(w io.Writer) {
	sys := d.k.RefSys()
	ver := d.k.RefVer()
	fmt.Fprintf(w, "T-Kernel/DS LISTING — %s (%s)\n", ver.Product, ver.SpecVer)
	fmt.Fprintf(w, "systime=%v tick=%v ticks=%d run=%s handler=%v nest=%d dispatch-dis=%v\n",
		sys.SystemTime, sys.Tick, sys.Ticks, dash(sys.RunTask),
		sys.InHandler, sys.IntNesting, sys.DispatchDis)
	fmt.Fprintln(w, strings.Repeat("-", 78))
	d.ListTasks(w)
	d.ListSemaphores(w)
	d.ListFlags(w)
	d.ListMutexes(w)
	d.ListMailboxes(w)
	d.ListMessageBuffers(w)
	d.ListMemoryPools(w)
	d.ListPorts(w)
	d.ListTimeHandlers(w)
	d.ListInterrupts(w)
}

// EnergyDistribution writes the per-T-THREAD consumed time/energy table of
// Figure 7 through the SIM_API statistics.
func (d *DS) EnergyDistribution(w io.Writer) {
	d.k.API().EnergyReport(w)
}

// TraceEvents samples the SIM_API registry into a compact event summary:
// one line per T-THREAD with its current state, token marking and counters.
func (d *DS) TraceEvents(w io.Writer) {
	fmt.Fprintf(w, "%-16s %-8s %-18s %-10s %8s %12s %12s\n",
		"T-THREAD", "KIND", "STATE", "TOKEN", "CYCLES", "CET", "CEE")
	for _, tt := range d.k.API().Threads() {
		fmt.Fprintf(w, "%-16s %-8s %-18s %-10s %8d %12s %12s\n",
			tt.Name(), tt.Kind(), tt.State(), tokenPlace(tt),
			tt.Cycles(), tt.CET(), fmt.Sprint(tt.CEE()))
	}
}

// tokenPlace names the Petri-net place currently marked.
func tokenPlace(tt *core.TThread) string {
	for _, p := range tt.Net().Places {
		if p.Tokens > 0 {
			return p.Name
		}
	}
	return "?"
}

// Snapshot returns the full listing as a string at the given label time.
func (d *DS) Snapshot(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- snapshot: %s ---\n", label)
	d.Listing(&b)
	return b.String()
}

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func list(refs []tkernel.WaitRef) string {
	if len(refs) == 0 {
		return "-"
	}
	names := make([]string, len(refs))
	for i, r := range refs {
		names[i] = r.Name
	}
	return strings.Join(names, ",")
}

// AttachEventLog attaches a kernel-dynamics event recorder (dispatches,
// preemptions, blocks, releases, interrupt entries/exits...) capped at
// limit events (0 = unlimited), and returns it. Rendering goes through
// KernelEvents.
func (d *DS) AttachEventLog(limit int) *core.EventLog {
	l := core.NewEventLog(limit)
	d.k.API().SetEventLog(l)
	return l
}

// KernelEvents writes the recorded kernel-dynamics event trace.
func (d *DS) KernelEvents(w io.Writer) {
	l := d.k.API().EventLog()
	if l == nil {
		fmt.Fprintln(w, "(no event log attached)")
		return
	}
	l.Render(w)
}

// Watch registers a periodic DS dump into sink every interval of simulated
// time (the paper's run-time tracing of kernel internal states). It returns
// a stop function.
func (d *DS) Watch(interval sysc.Time, sink io.Writer) (stop func()) {
	stopped := false
	tk := sysc.NewTicker(d.k.Sim(), "tkds.watch", interval)
	d.k.Sim().SpawnMethod("tkds.dump", func() {
		if stopped {
			return
		}
		fmt.Fprintln(sink, d.Snapshot(fmt.Sprint(d.k.Sim().Now())))
	}, tk.Event())
	return func() { stopped = true }
}
