package sysc

// Primitive channels beyond sc_signal: sc_fifo, sc_mutex and sc_semaphore.
// They follow the SystemC semantics: fifo reads/writes take effect with
// update-phase visibility of the data-written/data-read events, blocking
// variants suspend the calling thread process, and the mutex/semaphore are
// cooperative (no priority, FIFO grant order).

// Fifo is an sc_fifo<T>-style bounded channel for thread processes.
type Fifo[T any] struct {
	sim      *Simulator
	name     string
	buf      []T
	capacity int
	written  *Event // data written (readers wait on this)
	read     *Event // data read (writers wait on this)
}

// NewFifo creates a fifo with the given capacity (default 16 when <= 0,
// like sc_fifo's default).
func NewFifo[T any](s *Simulator, name string, capacity int) *Fifo[T] {
	if capacity <= 0 {
		capacity = 16
	}
	return &Fifo[T]{
		sim: s, name: name, capacity: capacity,
		written: s.NewEvent(name + ".data_written"),
		read:    s.NewEvent(name + ".data_read"),
	}
}

// Name returns the channel name.
func (f *Fifo[T]) Name() string { return f.name }

// Num returns the number of elements available for reading.
func (f *Fifo[T]) Num() int { return len(f.buf) }

// Free returns the remaining capacity.
func (f *Fifo[T]) Free() int { return f.capacity - len(f.buf) }

// Write blocks the calling thread while the fifo is full, then appends v.
func (f *Fifo[T]) Write(th *Thread, v T) {
	for len(f.buf) >= f.capacity {
		th.WaitEvent(f.read)
	}
	f.buf = append(f.buf, v)
	f.written.NotifyDelta()
}

// TryWrite appends v without blocking; ok is false when full (nb_write).
func (f *Fifo[T]) TryWrite(v T) bool {
	if len(f.buf) >= f.capacity {
		return false
	}
	f.buf = append(f.buf, v)
	f.written.NotifyDelta()
	return true
}

// Read blocks the calling thread while the fifo is empty, then pops the
// oldest element.
func (f *Fifo[T]) Read(th *Thread) T {
	for len(f.buf) == 0 {
		th.WaitEvent(f.written)
	}
	v := f.buf[0]
	f.buf = f.buf[1:]
	f.read.NotifyDelta()
	return v
}

// TryRead pops without blocking; ok is false when empty (nb_read).
func (f *Fifo[T]) TryRead() (v T, ok bool) {
	if len(f.buf) == 0 {
		return v, false
	}
	v = f.buf[0]
	f.buf = f.buf[1:]
	f.read.NotifyDelta()
	return v, true
}

// DataWritten returns the event notified (delta) after each write.
func (f *Fifo[T]) DataWritten() *Event { return f.written }

// DataRead returns the event notified (delta) after each read.
func (f *Fifo[T]) DataRead() *Event { return f.read }

// Mutex is an sc_mutex-style cooperative lock for thread processes.
type Mutex struct {
	sim      *Simulator
	name     string
	owner    *Thread
	unlocked *Event
}

// NewMutex creates an unlocked mutex.
func NewMutex(s *Simulator, name string) *Mutex {
	return &Mutex{sim: s, name: name, unlocked: s.NewEvent(name + ".unlocked")}
}

// Lock blocks the calling thread until the mutex is free, then takes it.
func (m *Mutex) Lock(th *Thread) {
	for m.owner != nil {
		th.WaitEvent(m.unlocked)
	}
	m.owner = th
}

// TryLock takes the mutex without blocking; false when already owned.
func (m *Mutex) TryLock(th *Thread) bool {
	if m.owner != nil {
		return false
	}
	m.owner = th
	return true
}

// Unlock releases the mutex; only the owner may unlock (sc_mutex rule).
func (m *Mutex) Unlock(th *Thread) bool {
	if m.owner != th {
		return false
	}
	m.owner = nil
	m.unlocked.Notify()
	return true
}

// Owner returns the locking thread (nil when free).
func (m *Mutex) Owner() *Thread { return m.owner }

// Semaphore is an sc_semaphore-style counting semaphore for threads.
type Semaphore struct {
	sim    *Simulator
	name   string
	count  int
	posted *Event
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(s *Simulator, name string, init int) *Semaphore {
	return &Semaphore{sim: s, name: name, count: init,
		posted: s.NewEvent(name + ".posted")}
}

// Wait blocks until the count is positive, then decrements it.
func (sem *Semaphore) Wait(th *Thread) {
	for sem.count <= 0 {
		th.WaitEvent(sem.posted)
	}
	sem.count--
}

// TryWait decrements without blocking; false when the count is zero.
func (sem *Semaphore) TryWait() bool {
	if sem.count <= 0 {
		return false
	}
	sem.count--
	return true
}

// Post increments the count and wakes waiters.
func (sem *Semaphore) Post() {
	sem.count++
	sem.posted.Notify()
}

// Value returns the current count.
func (sem *Semaphore) Value() int { return sem.count }
