package sysc

import (
	"testing"
	"testing/quick"
)

func TestFifoBlockingReadWrite(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	f := NewFifo[int](sim, "f", 2)
	var got []int
	sim.Spawn("producer", func(th *Thread) {
		for i := 1; i <= 5; i++ {
			f.Write(th, i) // blocks when the 2-slot fifo fills
			th.Wait(Ms)
		}
	})
	sim.Spawn("consumer", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Wait(3 * Ms) // slower than the producer
			got = append(got, f.Read(th))
		}
	})
	if err := sim.Start(100 * Ms); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestFifoBackpressureBlocksWriter(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	f := NewFifo[int](sim, "f", 1)
	var thirdWriteAt Time
	sim.Spawn("producer", func(th *Thread) {
		f.Write(th, 1)
		f.Write(th, 2) // fills after the consumer takes #1... blocks first
		f.Write(th, 3)
		thirdWriteAt = th.Now()
	})
	sim.Spawn("consumer", func(th *Thread) {
		th.Wait(5 * Ms)
		_ = f.Read(th)
		th.Wait(5 * Ms)
		_ = f.Read(th)
		th.Wait(5 * Ms)
		_ = f.Read(th)
	})
	if err := sim.Start(100 * Ms); err != nil {
		t.Fatal(err)
	}
	if thirdWriteAt != 10*Ms {
		t.Fatalf("third write at %v, want 10 ms", thirdWriteAt)
	}
}

func TestFifoNonBlocking(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	f := NewFifo[string](sim, "f", 1)
	if _, ok := f.TryRead(); ok {
		t.Fatal("read from empty")
	}
	if !f.TryWrite("a") {
		t.Fatal("write to empty failed")
	}
	if f.TryWrite("b") {
		t.Fatal("write to full succeeded")
	}
	if f.Num() != 1 || f.Free() != 0 {
		t.Fatalf("num=%d free=%d", f.Num(), f.Free())
	}
	v, ok := f.TryRead()
	if !ok || v != "a" {
		t.Fatalf("got %q %v", v, ok)
	}
}

func TestFifoDefaultCapacity(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	f := NewFifo[int](sim, "f", 0)
	if f.Free() != 16 {
		t.Fatalf("default capacity = %d", f.Free())
	}
}

// Property: FIFO order is preserved for any write sequence through the
// non-blocking interface.
func TestPropertyFifoOrder(t *testing.T) {
	fn := func(vals []int) bool {
		sim := NewSimulator()
		defer sim.Shutdown()
		f := NewFifo[int](sim, "f", len(vals)+1)
		for _, v := range vals {
			if !f.TryWrite(v) {
				return false
			}
		}
		for _, want := range vals {
			got, ok := f.TryRead()
			if !ok || got != want {
				return false
			}
		}
		_, ok := f.TryRead()
		return !ok
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMutexExclusion(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	m := NewMutex(sim, "m")
	var order []string
	sim.Spawn("a", func(th *Thread) {
		m.Lock(th)
		order = append(order, "a-in")
		th.Wait(5 * Ms)
		order = append(order, "a-out")
		m.Unlock(th)
	})
	sim.Spawn("b", func(th *Thread) {
		th.Wait(Ms)
		m.Lock(th) // blocks until a unlocks
		order = append(order, "b-in")
		m.Unlock(th)
	})
	if err := sim.Start(100 * Ms); err != nil {
		t.Fatal(err)
	}
	want := "a-in,a-out,b-in"
	if got := join(order); got != want {
		t.Fatalf("order %q", got)
	}
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func TestMutexOwnershipRules(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	m := NewMutex(sim, "m")
	sim.Spawn("a", func(th *Thread) {
		if !m.TryLock(th) {
			t.Error("trylock free failed")
		}
		if m.TryLock(th) {
			t.Error("double trylock succeeded")
		}
		if m.Owner() != th {
			t.Error("owner wrong")
		}
		if !m.Unlock(th) {
			t.Error("owner unlock failed")
		}
		if m.Unlock(th) {
			t.Error("unlock when free succeeded")
		}
	})
	if err := sim.Start(Ms); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphorePrimitives(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sem := NewSemaphore(sim, "s", 0)
	var at Time
	sim.Spawn("waiter", func(th *Thread) {
		sem.Wait(th)
		at = th.Now()
	})
	sim.Spawn("poster", func(th *Thread) {
		th.Wait(4 * Ms)
		sem.Post()
	})
	if err := sim.Start(100 * Ms); err != nil {
		t.Fatal(err)
	}
	if at != 4*Ms {
		t.Fatalf("woke at %v", at)
	}
	if !func() bool { sem.Post(); return sem.TryWait() }() {
		t.Fatal("trywait after post failed")
	}
	if sem.TryWait() {
		t.Fatal("trywait at zero succeeded")
	}
	if sem.Value() != 0 {
		t.Fatalf("value = %d", sem.Value())
	}
}
