package sysc

// Event is a synchronization primitive with SystemC sc_event semantics.
// Processes wait on events dynamically (Thread.Wait*) or are statically
// sensitive to them (Method processes). An event holds at most one pending
// notification; re-notification follows the SystemC override rules:
// an immediate notification discards any pending one, a delta notification
// overrides a timed one, and an earlier timed notification overrides a
// later one.
//
// Events are not persistent: notifying an event nobody is waiting on has no
// effect on later waiters.
type Event struct {
	sim  *Simulator
	name string
	idx  int32 // position in the simulator's creation-order registry

	// waiters are threads dynamically waiting on this event.
	waiters []*Thread
	// cwaiters are coroutines dynamically waiting on this event.
	cwaiters []*Coro
	// static are processes statically sensitive to this event.
	static []*Method

	// pending notification state.
	pendingKind  notifyKind
	pendingWhen  Time       // valid when pendingKind == notifyTimed
	pendingEntry *timedItem // heap entry, for cancellation
}

type notifyKind uint8

const (
	notifyNone notifyKind = iota
	notifyDelta
	notifyTimed
)

// NewEvent creates a named event bound to the simulator.
func (s *Simulator) NewEvent(name string) *Event {
	e := &Event{sim: s, name: name, idx: int32(len(s.events))}
	s.events = append(s.events, e)
	return e
}

// Name returns the event's diagnostic name.
func (e *Event) Name() string { return e.name }

// Notify triggers the event immediately, in the current evaluation phase:
// all processes waiting on it become runnable right away. Any pending
// delayed notification is cancelled first.
func (e *Event) Notify() {
	e.Cancel()
	e.sim.trigger(e)
}

// NotifyDelta schedules the event to trigger in the next delta cycle at the
// current simulation time. It overrides a pending timed notification and is
// a no-op if a delta notification is already pending.
func (e *Event) NotifyDelta() {
	switch e.pendingKind {
	case notifyDelta:
		return
	case notifyTimed:
		e.Cancel()
	}
	e.pendingKind = notifyDelta
	e.sim.deltaQ = append(e.sim.deltaQ, e)
}

// NotifyAfter schedules the event to trigger d after the current simulation
// time. A pending delta notification wins over any timed one; among timed
// notifications the earlier wins. Negative d is treated as zero (a timed
// notification at the current time, still later than any delta).
func (e *Event) NotifyAfter(d Time) {
	if d < 0 {
		d = 0
	}
	when := e.sim.now + d
	switch e.pendingKind {
	case notifyDelta:
		return
	case notifyTimed:
		if e.pendingWhen <= when {
			return
		}
		e.Cancel()
	}
	e.pendingKind = notifyTimed
	e.pendingWhen = when
	e.pendingEntry = e.sim.timed.push(when, e)
}

// Cancel removes any pending delta or timed notification.
func (e *Event) Cancel() {
	switch e.pendingKind {
	case notifyDelta:
		// Lazy removal: the delta queue checks pendingKind on fire.
	case notifyTimed:
		if e.pendingEntry != nil {
			e.sim.timed.cancel(e.pendingEntry)
			e.pendingEntry = nil
		}
	}
	e.pendingKind = notifyNone
}

// Pending reports whether a delta or timed notification is outstanding.
func (e *Event) Pending() bool { return e.pendingKind != notifyNone }

// addStatic registers a method process as statically sensitive.
func (e *Event) addStatic(m *Method) { e.static = append(e.static, m) }

// removeWaiter detaches a thread from the waiter list (when the thread is
// resumed by a different event of its wait set, or killed). Swap-delete: the
// relative order of the remaining waiters is not preserved, which is fine —
// wake order is fixed per run (the list mutates identically on every run),
// so the simulation stays deterministic.
func (e *Event) removeWaiter(t *Thread) {
	for i, w := range e.waiters {
		if w == t {
			last := len(e.waiters) - 1
			e.waiters[i] = e.waiters[last]
			e.waiters[last] = nil
			e.waiters = e.waiters[:last]
			return
		}
	}
}

// removeCoroWaiter is removeWaiter for coroutine waiters, with the same
// swap-delete determinism argument.
func (e *Event) removeCoroWaiter(c *Coro) {
	for i, w := range e.cwaiters {
		if w == c {
			last := len(e.cwaiters) - 1
			e.cwaiters[i] = e.cwaiters[last]
			e.cwaiters[last] = nil
			e.cwaiters = e.cwaiters[:last]
			return
		}
	}
}
