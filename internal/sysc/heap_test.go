package sysc

import (
	"fmt"
	"testing"
)

// Cancelled items are skipped (and recycled) rather than fired: the queue
// reports the next live time, not the cancelled head.
func TestTimedQueueLazyCancellationSkipped(t *testing.T) {
	var q timedQueue
	sim := NewSimulator()
	e1, e2 := sim.NewEvent("e1"), sim.NewEvent("e2")
	it1 := q.push(5, e1)
	q.push(10, e2)
	q.cancel(it1)
	next, ok := q.nextTime()
	if !ok || next != 10 {
		t.Fatalf("nextTime = %v,%v; want 10,true (cancelled head skipped)", next, ok)
	}
	it := q.pop()
	if it.ev != e2 || it.when != 10 {
		t.Fatalf("pop = {%v %v}; want live e2@10", it.when, it.ev)
	}
	if !q.empty() {
		t.Fatal("queue should be empty after the only live item popped")
	}
}

// Equal-time items fire in schedule order: the (when, seq) tie-break.
func TestTimedQueueTieBreakScheduleOrder(t *testing.T) {
	var q timedQueue
	sim := NewSimulator()
	const n = 20
	evs := make([]*Event, n)
	for i := range evs {
		evs[i] = sim.NewEvent(fmt.Sprintf("e%d", i))
		q.push(42, evs[i])
	}
	for i := 0; i < n; i++ {
		if _, ok := q.nextTime(); !ok {
			t.Fatalf("queue empty after %d pops, want %d items", i, n)
		}
		it := q.pop()
		if it.ev != evs[i] {
			t.Fatalf("pop %d returned %q, want %q (schedule order)",
				i, it.ev.Name(), evs[i].Name())
		}
	}
}

// Released items are recycled: a push after a pop+release reuses the same
// timedItem instead of allocating.
func TestTimedQueuePoolReuse(t *testing.T) {
	var q timedQueue
	sim := NewSimulator()
	ev := sim.NewEvent("e")
	first := q.push(1, ev)
	got := q.pop()
	if got != first {
		t.Fatal("pop returned a different item than pushed")
	}
	q.release(got)
	second := q.push(2, ev)
	if second != first {
		t.Fatal("push after release did not recycle the pooled item")
	}
	if second.when != 2 || second.ev != ev || second.cancelled {
		t.Fatalf("recycled item not reset: %+v", second)
	}
}

// Cancelled items are also recycled when nextTime discards them.
func TestTimedQueueCancelRecyclesViaNextTime(t *testing.T) {
	var q timedQueue
	sim := NewSimulator()
	ev := sim.NewEvent("e")
	it := q.push(1, ev)
	q.cancel(it)
	if _, ok := q.nextTime(); ok {
		t.Fatal("queue with only a cancelled item should report empty")
	}
	again := q.push(3, ev)
	if again != it {
		t.Fatal("cancelled item was not recycled through the free list")
	}
}

// Once cancelled items exceed the live fraction the heap compacts eagerly,
// so a cancel-heavy workload (the WaitTimeout pattern) keeps the heap small.
func TestTimedQueueEagerCompaction(t *testing.T) {
	var q timedQueue
	sim := NewSimulator()
	ev := sim.NewEvent("e")
	n := compactMin * 2
	items := make([]*timedItem, n)
	for i := 0; i < n; i++ {
		items[i] = q.push(Time(i), ev)
	}
	// Cancel just over half: the queue must shed the dead entries.
	for i := 0; i < n/2+1; i++ {
		q.cancel(items[i])
	}
	if len(q.items) > n/2 {
		t.Fatalf("heap holds %d entries after heavy cancellation, want <= %d (compacted)",
			len(q.items), n/2)
	}
	if q.ncancel != 0 {
		t.Fatalf("ncancel = %d after compaction, want 0", q.ncancel)
	}
	// Survivors must still pop in (when, seq) order.
	last := Time(-1)
	for !q.empty() {
		it := q.pop()
		if it.when < last {
			t.Fatalf("order violated after compaction: %v after %v", it.when, last)
		}
		last = it.when
	}
	if last != Time(n-1) {
		t.Fatalf("last live item popped at %v, want %v", last, Time(n-1))
	}
}

// Shutdown must reclaim every goroutine, including threads parked deep in
// WaitEvent on events that will never fire, and threads inside WaitTimeout.
func TestShutdownReclaimsThreadsParkedInWaitEvent(t *testing.T) {
	sim := NewSimulator()
	never := sim.NewEvent("never")
	var threads []*Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, sim.Spawn(fmt.Sprintf("w%d", i), func(th *Thread) {
			th.WaitEvent(never)
		}))
	}
	threads = append(threads, sim.Spawn("timeout", func(th *Thread) {
		th.WaitTimeout(MaxTime/2, never)
	}))
	if err := sim.Start(Ms); err != nil {
		t.Fatal(err)
	}
	sim.Shutdown()
	for _, th := range threads {
		if !th.Done() {
			t.Fatalf("thread %q not reclaimed by Shutdown", th.Name())
		}
	}
	// Shutdown is idempotent.
	sim.Shutdown()
}

// CurrentThread is nil while a method executes, even though methods now run
// inline on whichever goroutine passes the baton.
func TestCurrentThreadNilInsideMethod(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	var inMethod *Thread = &Thread{} // sentinel: overwritten by the method
	sim.SpawnMethod("m", func() { inMethod = sim.CurrentThread() }, ev)
	var inThread *Thread
	th := sim.Spawn("t", func(th *Thread) {
		inThread = sim.CurrentThread()
		ev.Notify()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if inMethod != nil {
		t.Fatal("CurrentThread inside a method should be nil")
	}
	if inThread != th {
		t.Fatal("CurrentThread inside a thread should be the thread itself")
	}
}

// A long cancel/re-arm workload (the WaitTimeout pattern under load) must
// not grow the timed heap without bound.
func TestTimedQueueBoundedUnderCancelChurn(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("data")
	sim.Spawn("consumer", func(th *Thread) {
		for {
			th.WaitTimeout(100*Ms, ev) // timeout always loses to the notify
		}
	})
	sim.Spawn("producer", func(th *Thread) {
		for i := 0; i < 10000; i++ {
			th.Wait(Us)
			ev.Notify()
		}
	})
	if err := sim.Start(20 * Ms); err != nil {
		t.Fatal(err)
	}
	if n := len(sim.timed.items); n > compactMin*2 {
		t.Fatalf("timed heap grew to %d entries under cancel churn, want bounded", n)
	}
}
