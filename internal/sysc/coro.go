package sysc

import "fmt"

// Coro is a continuation-style process: a resumable step function driven
// inline by the scheduler loop. Where a Thread parks its goroutine at every
// Wait* call (one channel handoff per context switch), a Coro's step
// function *returns* having armed its next wait, and the scheduler simply
// calls it again when that wait fires — the steady-state data path runs on
// a single goroutine with zero channel operations per context switch.
//
// The yield-point contract: a step must arm at most one wait (WaitEvent /
// WaitTimeout / Wait / YieldDelta) and then return. Returning without
// arming terminates the coroutine. State that must survive across steps
// lives in variables the step closure captures (or in an explicit state
// machine the closure drives); the Fired/TimedOut accessors report what
// resumed the current step.
type Coro struct {
	sim  *Simulator
	id   int
	idx  int32 // position in the simulator's creation-order registry
	name string
	step func(*Coro)

	queued  bool     // already on the runnable queue
	waiting []*Event // events of the armed wait set
	scratch []*Event // reusable wait-set buffer (WaitTimeout fast path)
	trigEv  *Event   // event that fired the current resumption
	timer   *Event   // per-coroutine timer for Wait/WaitTimeout

	armed bool // a wait was armed during the current step
	done  bool
}

// SpawnCoro creates a coroutine process. Like a Thread it becomes runnable
// immediately: at elaboration it runs when Start is first called, and when
// spawned from a running process it runs within the current evaluation
// phase. Unlike a Thread it owns no goroutine.
func (s *Simulator) SpawnCoro(name string, step func(*Coro)) *Coro {
	s.nextID++
	c := &Coro{sim: s, id: s.nextID, name: name, step: step, idx: int32(len(s.coros))}
	s.coros = append(s.coros, c)
	c.timer = s.NewEvent(name + ".timer")
	s.makeRunnable(procRef{c: c})
	return c
}

// Name returns the coroutine's diagnostic name.
func (c *Coro) Name() string { return c.name }

// Sim returns the owning simulator.
func (c *Coro) Sim() *Simulator { return c.sim }

// Now returns the current simulation time.
func (c *Coro) Now() Time { return c.sim.now }

// Done reports whether the coroutine has terminated (a step returned
// without arming a wait).
func (c *Coro) Done() bool { return c.done }

// Fired returns the event that resumed the current step (nil on the first
// step and after a Wait timeout).
func (c *Coro) Fired() *Event { return c.trigEv }

// WaitEvent arms the coroutine to resume when one of the given events
// triggers, then the step must return. The next step's Fired reports which
// event it was. Arming twice in one step panics: a coroutine can be parked
// on only one wait set at a time.
func (c *Coro) WaitEvent(evs ...*Event) {
	if len(evs) == 0 {
		panic(fmt.Sprintf("sysc: coroutine %q waits on empty event set", c.name))
	}
	if c.armed {
		panic(fmt.Sprintf("sysc: coroutine %q armed two waits in one step", c.name))
	}
	c.waiting = append(c.waiting[:0], evs...)
	for _, e := range evs {
		e.cwaiters = append(e.cwaiters, c)
	}
	c.trigEv = nil
	c.armed = true
}

// Wait arms the coroutine to resume after duration d of simulated time.
func (c *Coro) Wait(d Time) {
	c.timer.NotifyAfter(d)
	c.WaitEvent(c.timer)
}

// WaitTimeout arms the coroutine to resume when one of evs triggers or d
// elapses. The resumed step calls TimedOut to resolve which it was. The
// combined wait set lives in a per-coroutine scratch buffer so the call
// does not allocate.
func (c *Coro) WaitTimeout(d Time, evs ...*Event) {
	c.timer.NotifyAfter(d)
	c.scratch = append(c.scratch[:0], c.timer)
	c.scratch = append(c.scratch, evs...)
	c.WaitEvent(c.scratch...)
}

// TimedOut resolves the WaitTimeout that parked the previous step: it
// reports whether the timeout fired, and — exactly as Thread.WaitTimeout
// does on its resume path — cancels the pending timer notification when
// another event of the set fired first.
func (c *Coro) TimedOut() bool {
	if c.trigEv == c.timer {
		return true
	}
	c.timer.Cancel()
	return false
}

// YieldDelta arms the coroutine to resume in the next delta cycle, after
// all currently runnable processes have run.
func (c *Coro) YieldDelta() {
	c.timer.NotifyDelta()
	c.WaitEvent(c.timer)
}

// runCoro executes one step of a coroutine inline, converting a panic into
// a simulation abort. Like methods it may run on the scheduler goroutine or
// on a thread goroutine passing the baton; CurrentThread is nil either way,
// and CurrentCoro names the stepping coroutine for the duration.
func (s *Simulator) runCoro(c *Coro) {
	prev := s.curCoro
	s.curCoro = c
	defer func() {
		s.curCoro = prev
		if r := recover(); r != nil && s.err == nil {
			s.err = fmt.Errorf("sysc: coroutine %q panicked: %v", c.name, r)
			s.stopRequested = true
		}
	}()
	c.armed = false
	c.step(c)
	if !c.armed {
		c.done = true
	}
}