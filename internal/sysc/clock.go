package sysc

// Clock is an sc_clock-style periodic boolean signal. The paper's BFM uses a
// real-time clock with a 1 ms default resolution to drive the kernel's
// central module; a Clock with period 1 ms provides exactly that tick.
type Clock struct {
	*BoolSignal
	period Time
	thread *Thread
}

// NewClock creates a free-running clock with the given period (first rising
// edge at one period after time zero; 50% duty cycle).
func NewClock(s *Simulator, name string, period Time) *Clock {
	if period <= 0 {
		panic("sysc: clock period must be positive")
	}
	c := &Clock{BoolSignal: NewBoolSignal(s, name, false), period: period}
	c.thread = s.Spawn(name+".gen", func(t *Thread) {
		half := period / 2
		if half == 0 {
			half = 1
		}
		for {
			t.Wait(period - half)
			c.Write(true)
			t.Wait(half)
			c.Write(false)
		}
	})
	return c
}

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Ticker is a lighter-weight periodic event source (no signal semantics):
// its event fires every period. Kernel tick dispatch in the central module
// is naturally modelled as a method sensitive to a Ticker.
type Ticker struct {
	ev     *Event
	period Time
	thread *Thread
}

// NewTicker creates a periodic event firing first at `period` and then
// every `period` thereafter.
func NewTicker(s *Simulator, name string, period Time) *Ticker {
	if period <= 0 {
		panic("sysc: ticker period must be positive")
	}
	tk := &Ticker{ev: s.NewEvent(name + ".tick"), period: period}
	tk.thread = s.Spawn(name+".gen", func(t *Thread) {
		for {
			t.Wait(period)
			tk.ev.Notify()
		}
	})
	return tk
}

// Event returns the periodic event.
func (tk *Ticker) Event() *Event { return tk.ev }

// Period returns the tick period.
func (tk *Ticker) Period() Time { return tk.period }
