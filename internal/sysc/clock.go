package sysc

// Clock is an sc_clock-style periodic boolean signal. The paper's BFM uses a
// real-time clock with a 1 ms default resolution to drive the kernel's
// central module; a Clock with period 1 ms provides exactly that tick.
//
// The generator is a method process re-arming its own timed event, not a
// thread: a clock edge costs zero goroutine handoffs, which matters because
// clocks and tickers dominate the event population of RTOS-level models.
type Clock struct {
	*BoolSignal
	period Time
	gen    *Event
	high   bool
}

// NewClock creates a free-running clock with the given period (first rising
// edge at one period after time zero; 50% duty cycle).
func NewClock(s *Simulator, name string, period Time) *Clock {
	if period <= 0 {
		panic("sysc: clock period must be positive")
	}
	c := &Clock{BoolSignal: NewBoolSignal(s, name, false), period: period}
	half := period / 2
	if half == 0 {
		half = 1
	}
	c.gen = s.NewEvent(name + ".gen")
	s.SpawnMethod(name+".gen", func() {
		c.high = !c.high
		c.Write(c.high)
		if c.high {
			c.gen.NotifyAfter(half)
		} else {
			c.gen.NotifyAfter(period - half)
		}
	}, c.gen)
	c.gen.NotifyAfter(period - half)
	return c
}

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Ticker is a lighter-weight periodic event source (no signal semantics):
// its event fires every period. Kernel tick dispatch in the central module
// is naturally modelled as a method sensitive to a Ticker. Like Clock, the
// generator is a self-re-arming method process with no goroutine of its own.
type Ticker struct {
	ev     *Event
	gen    *Event
	period Time
}

// NewTicker creates a periodic event firing first at `period` and then
// every `period` thereafter.
func NewTicker(s *Simulator, name string, period Time) *Ticker {
	if period <= 0 {
		panic("sysc: ticker period must be positive")
	}
	tk := &Ticker{ev: s.NewEvent(name + ".tick"), period: period}
	tk.gen = s.NewEvent(name + ".gen")
	s.SpawnMethod(name+".gen", func() {
		tk.ev.Notify()
		tk.gen.NotifyAfter(period)
	}, tk.gen)
	tk.gen.NotifyAfter(period)
	return tk
}

// Event returns the periodic event.
func (tk *Ticker) Event() *Event { return tk.ev }

// Period returns the tick period.
func (tk *Ticker) Period() Time { return tk.period }

// Gen returns the internal generator event. A warp hook passes it to
// Simulator.NextTimedExcluding to ask what, besides this ticker, needs to
// run next.
func (tk *Ticker) Gen() *Event { return tk.gen }

// NextFire returns the time of the next tick (the generator's pending timed
// notification); ok is false when the generator is not armed.
func (tk *Ticker) NextFire() (Time, bool) {
	if tk.gen.pendingKind != notifyTimed {
		return 0, false
	}
	return tk.gen.pendingWhen, true
}

// SkipTo fast-forwards the ticker across firings that are known to be no-ops:
// the generator is re-armed at the first point of the tick grid at or after
// `when`, preserving phase, and the number of skipped firings is returned so
// the caller can keep tick accounting exact. A `when` at or before the next
// fire is a no-op.
func (tk *Ticker) SkipTo(when Time) int {
	next, ok := tk.NextFire()
	if !ok || when <= next {
		return 0
	}
	n := (when - next + tk.period - 1) / tk.period
	tk.gen.Cancel()
	tk.gen.NotifyAfter(next + n*tk.period - tk.gen.sim.now)
	return int(n)
}

// EnsureFire pulls the generator back so a tick fires at the first grid
// point at or after `when` — the backstop undoing an earlier SkipTo when a
// new deadline lands inside the skipped gap. It returns the number of
// firings re-instated (to subtract from any skip credit). No-op when the
// next fire is already at or before that grid point.
func (tk *Ticker) EnsureFire(when Time) int {
	next, ok := tk.NextFire()
	if !ok || next-when <= 0 {
		return 0
	}
	g := next - ((next-when)/tk.period)*tk.period
	if g == next {
		return 0
	}
	tk.gen.Cancel()
	tk.gen.NotifyAfter(g - tk.gen.sim.now)
	return int((next - g) / tk.period)
}
