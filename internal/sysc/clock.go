package sysc

// Clock is an sc_clock-style periodic boolean signal. The paper's BFM uses a
// real-time clock with a 1 ms default resolution to drive the kernel's
// central module; a Clock with period 1 ms provides exactly that tick.
//
// The generator is a method process re-arming its own timed event, not a
// thread: a clock edge costs zero goroutine handoffs, which matters because
// clocks and tickers dominate the event population of RTOS-level models.
type Clock struct {
	*BoolSignal
	period Time
	gen    *Event
	high   bool
}

// NewClock creates a free-running clock with the given period (first rising
// edge at one period after time zero; 50% duty cycle).
func NewClock(s *Simulator, name string, period Time) *Clock {
	if period <= 0 {
		panic("sysc: clock period must be positive")
	}
	c := &Clock{BoolSignal: NewBoolSignal(s, name, false), period: period}
	half := period / 2
	if half == 0 {
		half = 1
	}
	c.gen = s.NewEvent(name + ".gen")
	s.SpawnMethod(name+".gen", func() {
		c.high = !c.high
		c.Write(c.high)
		if c.high {
			c.gen.NotifyAfter(half)
		} else {
			c.gen.NotifyAfter(period - half)
		}
	}, c.gen)
	c.gen.NotifyAfter(period - half)
	return c
}

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Ticker is a lighter-weight periodic event source (no signal semantics):
// its event fires every period. Kernel tick dispatch in the central module
// is naturally modelled as a method sensitive to a Ticker. Like Clock, the
// generator is a self-re-arming method process with no goroutine of its own.
type Ticker struct {
	ev     *Event
	gen    *Event
	period Time
}

// NewTicker creates a periodic event firing first at `period` and then
// every `period` thereafter.
func NewTicker(s *Simulator, name string, period Time) *Ticker {
	if period <= 0 {
		panic("sysc: ticker period must be positive")
	}
	tk := &Ticker{ev: s.NewEvent(name + ".tick"), period: period}
	tk.gen = s.NewEvent(name + ".gen")
	s.SpawnMethod(name+".gen", func() {
		tk.ev.Notify()
		tk.gen.NotifyAfter(period)
	}, tk.gen)
	tk.gen.NotifyAfter(period)
	return tk
}

// Event returns the periodic event.
func (tk *Ticker) Event() *Event { return tk.ev }

// Period returns the tick period.
func (tk *Ticker) Period() Time { return tk.period }
