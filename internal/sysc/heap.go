package sysc

// timedItem is a scheduled timed notification. Cancellation is lazy: the
// item stays in the heap but is skipped when popped.
type timedItem struct {
	when      Time
	seq       uint64 // tie-break so equal-time items fire in schedule order
	ev        *Event
	cancelled bool
}

// timedQueue is a binary min-heap of timed notifications ordered by
// (when, seq).
type timedQueue struct {
	items []*timedItem
	seq   uint64
}

func (q *timedQueue) push(when Time, ev *Event) *timedItem {
	q.seq++
	it := &timedItem{when: when, seq: q.seq, ev: ev}
	q.items = append(q.items, it)
	q.up(len(q.items) - 1)
	return it
}

func (q *timedQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *timedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *timedQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

func (q *timedQueue) pop() *timedItem {
	n := len(q.items)
	it := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	return it
}

// nextTime returns the time of the earliest live notification, skipping and
// discarding cancelled ones. ok is false when the queue is effectively empty.
func (q *timedQueue) nextTime() (t Time, ok bool) {
	for len(q.items) > 0 {
		if q.items[0].cancelled {
			q.pop()
			continue
		}
		return q.items[0].when, true
	}
	return 0, false
}

func (q *timedQueue) empty() bool {
	_, ok := q.nextTime()
	return !ok
}
