package sysc

// timedItem is a scheduled timed notification. Cancellation is lazy by
// default: the item stays in the heap but is skipped when popped. When
// cancelled items outnumber live ones the queue compacts eagerly, so a
// model that schedules and cancels many timeouts (the WaitTimeout pattern)
// never accumulates an arbitrarily large dead tail.
type timedItem struct {
	when      Time
	seq       uint64 // tie-break so equal-time items fire in schedule order
	ev        *Event
	cancelled bool
}

// timedQueue is a binary min-heap of timed notifications ordered by
// (when, seq). Popped and cancelled items are recycled through a free list
// so steady-state scheduling does not allocate.
type timedQueue struct {
	items []*timedItem
	seq   uint64

	free    []*timedItem // recycled items available for push
	ncancel int          // cancelled items still sitting in the heap
}

// compactMin is the heap size below which compaction is never worth it.
const compactMin = 64

func (q *timedQueue) push(when Time, ev *Event) *timedItem {
	q.seq++
	var it *timedItem
	if n := len(q.free); n > 0 {
		it = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		it.when, it.seq, it.ev, it.cancelled = when, q.seq, ev, false
	} else {
		it = &timedItem{when: when, seq: q.seq, ev: ev}
	}
	q.items = append(q.items, it)
	q.up(len(q.items) - 1)
	return it
}

// pushExact inserts an item with an explicit sequence number instead of
// drawing a fresh one — the state-restore path (state.go) re-creates
// captured entries with their original seqs so same-instant firing order
// is preserved bit-for-bit. The caller restores q.seq separately.
func (q *timedQueue) pushExact(when Time, seq uint64, ev *Event) *timedItem {
	var it *timedItem
	if n := len(q.free); n > 0 {
		it = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		it.when, it.seq, it.ev, it.cancelled = when, seq, ev, false
	} else {
		it = &timedItem{when: when, seq: seq, ev: ev}
	}
	q.items = append(q.items, it)
	q.up(len(q.items) - 1)
	return it
}

// reset empties the heap (recycling every item) and force-sets the seq
// counter — the state-restore path rebuilds the heap from a capture.
func (q *timedQueue) reset(seq uint64) {
	for i, it := range q.items {
		it.cancelled = false
		q.release(it)
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.ncancel = 0
	q.seq = seq
}

// cancel marks a scheduled item dead. The heap slot is reclaimed lazily on
// pop, or eagerly via compact once dead items exceed the live fraction.
func (q *timedQueue) cancel(it *timedItem) {
	if it == nil || it.cancelled {
		return
	}
	it.cancelled = true
	it.ev = nil
	q.ncancel++
	if len(q.items) >= compactMin && q.ncancel*2 > len(q.items) {
		q.compact()
	}
}

// release returns a popped item to the free list for reuse.
func (q *timedQueue) release(it *timedItem) {
	it.ev = nil
	q.free = append(q.free, it)
}

// compact drops every cancelled item and restores the heap invariant in
// O(n). Live-item (when, seq) ordering is unaffected.
func (q *timedQueue) compact() {
	live := q.items[:0]
	for _, it := range q.items {
		if it.cancelled {
			q.release(it)
		} else {
			live = append(live, it)
		}
	}
	for i := len(live); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = live
	q.ncancel = 0
	for i := len(q.items)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

func (q *timedQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *timedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *timedQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

func (q *timedQueue) pop() *timedItem {
	n := len(q.items)
	it := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	if it.cancelled {
		q.ncancel--
	}
	return it
}

// nextTime returns the time of the earliest live notification, skipping,
// discarding and recycling cancelled ones. ok is false when the queue is
// effectively empty.
func (q *timedQueue) nextTime() (t Time, ok bool) {
	for len(q.items) > 0 {
		if q.items[0].cancelled {
			q.release(q.pop())
			continue
		}
		return q.items[0].when, true
	}
	return 0, false
}

func (q *timedQueue) empty() bool {
	_, ok := q.nextTime()
	return !ok
}
