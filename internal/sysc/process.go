package sysc

import "fmt"

// Thread is an SC_THREAD-style process: a function running on its own
// goroutine, cooperatively scheduled so that exactly one process executes at
// a time. The body receives the Thread itself and blocks simulated time via
// the Wait* methods. When the body returns the thread terminates.
type Thread struct {
	sim  *Simulator
	id   int
	idx  int32 // position in the simulator's creation-order registry
	name string
	fn   func(*Thread)

	resume chan struct{}
	park   chan struct{}

	queued  bool // already on the runnable queue
	waiting []*Event
	scratch []*Event // reusable wait-set buffer (WaitTimeout fast path)
	trigEv  *Event   // event that resumed the last wait
	timer   *Event   // per-thread timer for Wait/WaitTimeout

	done   bool
	killed bool
}

// killedSentinel unwinds a thread goroutine during Simulator.Shutdown.
type killedSentinel struct{}

// Spawn creates a thread process. The thread becomes runnable immediately
// (at elaboration it runs when Start is first called; when spawned from a
// running process it runs within the current evaluation phase).
func (s *Simulator) Spawn(name string, fn func(*Thread)) *Thread {
	s.nextID++
	// The handoff channels are buffered (capacity 1) so neither side ever
	// blocks on send: at most one token is in flight per direction, and a
	// send whose peer has not yet reached its receive completes immediately
	// instead of parking the sender for an extra Go-scheduler round trip.
	t := &Thread{
		sim:    s,
		id:     s.nextID,
		idx:    int32(len(s.threads)),
		name:   name,
		fn:     fn,
		resume: make(chan struct{}, 1),
		park:   make(chan struct{}, 1),
	}
	t.timer = s.NewEvent(name + ".timer")
	s.threads = append(s.threads, t)
	go t.main()
	s.makeRunnable(procRef{t: t})
	return t
}

func (t *Thread) main() {
	<-t.resume
	defer func() {
		r := recover()
		if _, ok := r.(killedSentinel); ok {
			r = nil
		}
		t.done = true
		if t.killed {
			// Shutdown handshake: the killer waits on the park channel.
			t.park <- struct{}{}
			return
		}
		// Normal termination (or a body panic) during simulation: record
		// the outcome and pass the evaluation baton on.
		t.sim.threadExit(t, r)
	}()
	if !t.killed {
		t.fn(t)
	}
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Sim returns the owning simulator.
func (t *Thread) Sim() *Simulator { return t.sim }

// Now returns the current simulation time.
func (t *Thread) Now() Time { return t.sim.now }

// Done reports whether the thread body has returned.
func (t *Thread) Done() bool { return t.done }

// yield suspends the thread: it passes the evaluation baton to the next
// runnable process (or wakes the scheduler when the phase is over) and parks
// until resumed. It panics with killedSentinel when the simulator is
// shutting down.
func (t *Thread) yield() {
	t.sim.passBaton()
	<-t.resume
	if t.killed {
		panic(killedSentinel{})
	}
}

// Wait suspends the thread for duration d of simulated time.
func (t *Thread) Wait(d Time) {
	t.timer.NotifyAfter(d)
	t.WaitEvent(t.timer)
}

// WaitEvent suspends the thread until one of the given events triggers and
// returns the event that fired. It panics if called with no events (the
// thread could never resume).
func (t *Thread) WaitEvent(evs ...*Event) *Event {
	if len(evs) == 0 {
		panic(fmt.Sprintf("sysc: thread %q waits on empty event set", t.name))
	}
	t.waiting = append(t.waiting[:0], evs...)
	for _, e := range evs {
		e.waiters = append(e.waiters, t)
	}
	t.trigEv = nil
	t.yield()
	return t.trigEv
}

// WaitTimeout suspends the thread until one of evs triggers or d elapses.
// It returns the triggering event and false, or nil and true on timeout.
// The combined wait set lives in a per-thread scratch buffer so the call
// does not allocate.
func (t *Thread) WaitTimeout(d Time, evs ...*Event) (fired *Event, timedOut bool) {
	t.timer.NotifyAfter(d)
	t.scratch = append(t.scratch[:0], t.timer)
	t.scratch = append(t.scratch, evs...)
	got := t.WaitEvent(t.scratch...)
	if got == t.timer {
		return nil, true
	}
	t.timer.Cancel()
	return got, false
}

// YieldDelta suspends the thread for one delta cycle: it resumes at the same
// simulation time, after all currently runnable processes have run.
func (t *Thread) YieldDelta() {
	t.timer.NotifyDelta()
	t.WaitEvent(t.timer)
}

// Method is an SC_METHOD-style process: a function invoked (never blocking)
// each time one of the events in its static sensitivity list triggers.
type Method struct {
	sim    *Simulator
	id     int
	name   string
	fn     func()
	queued bool
}

// SpawnMethod creates a method process statically sensitive to the given
// events. Unlike threads, methods do not run at elaboration; they run only
// when triggered.
func (s *Simulator) SpawnMethod(name string, fn func(), sensitivity ...*Event) *Method {
	s.nextID++
	m := &Method{sim: s, id: s.nextID, name: name, fn: fn}
	for _, e := range sensitivity {
		e.addStatic(m)
	}
	return m
}

// Name returns the method's diagnostic name.
func (m *Method) Name() string { return m.name }

// procRef is one entry in the runnable queue: exactly one of t, m, c is set.
type procRef struct {
	t *Thread
	m *Method
	c *Coro
}
