package sysc

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0 s"},
		{Sec, "1 s"},
		{5 * Ms, "5 ms"},
		{250 * Us, "250 us"},
		{3 * Ns, "3 ns"},
		{7 * Ps, "7 ps"},
		{1500 * Us, "1500 us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Sec).Seconds() != 2.0 {
		t.Errorf("Seconds: got %v", (2 * Sec).Seconds())
	}
	if (3 * Ms).Milliseconds() != 3.0 {
		t.Errorf("Milliseconds: got %v", (3 * Ms).Milliseconds())
	}
	if Ns.Picoseconds() != 1000 {
		t.Errorf("Picoseconds: got %v", Ns.Picoseconds())
	}
}

func TestThreadWaitAdvancesTime(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	var at []Time
	sim.Spawn("w", func(th *Thread) {
		th.Wait(5 * Ms)
		at = append(at, th.Now())
		th.Wait(3 * Ms)
		at = append(at, th.Now())
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 5*Ms || at[1] != 8*Ms {
		t.Fatalf("wait times = %v, want [5ms 8ms]", at)
	}
}

func TestStartHorizonStepsClock(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("never")
	sim.Spawn("idle", func(th *Thread) { th.WaitEvent(ev) })
	for i := 1; i <= 3; i++ {
		if err := sim.Start(Time(i) * Ms); err != nil {
			t.Fatal(err)
		}
		if sim.Now() != Time(i)*Ms {
			t.Fatalf("step %d: now = %v", i, sim.Now())
		}
	}
}

func TestEventNotifyWakesWaiter(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("go")
	var woke Time
	sim.Spawn("waiter", func(th *Thread) {
		th.WaitEvent(ev)
		woke = th.Now()
	})
	sim.Spawn("notifier", func(th *Thread) {
		th.Wait(7 * Ms)
		ev.Notify()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 7*Ms {
		t.Fatalf("woke at %v, want 7 ms", woke)
	}
}

func TestEventNotifyAfter(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("later")
	ev.NotifyAfter(4 * Ms)
	var woke Time = -1
	sim.Spawn("waiter", func(th *Thread) {
		th.WaitEvent(ev)
		woke = th.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4*Ms {
		t.Fatalf("woke at %v, want 4 ms", woke)
	}
}

func TestEventEarlierTimedOverridesLater(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	ev.NotifyAfter(10 * Ms)
	ev.NotifyAfter(3 * Ms) // earlier wins
	ev.NotifyAfter(20 * Ms)
	var woke Time = -1
	sim.Spawn("waiter", func(th *Thread) {
		th.WaitEvent(ev)
		woke = th.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3*Ms {
		t.Fatalf("woke at %v, want 3 ms", woke)
	}
}

func TestEventCancel(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	ev.NotifyAfter(2 * Ms)
	ev.Cancel()
	fired := false
	sim.Spawn("waiter", func(th *Thread) {
		th.WaitEvent(ev)
		fired = true
	})
	if err := sim.Start(10 * Ms); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled notification still fired")
	}
	if sim.Now() != 10*Ms {
		t.Fatalf("now = %v, want 10 ms horizon", sim.Now())
	}
}

func TestEventDeltaOverridesTimed(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	var woke Time = -1
	var delta uint64
	sim.Spawn("waiter", func(th *Thread) {
		th.WaitEvent(ev)
		woke = th.Now()
		delta = th.sim.DeltaCount()
	})
	sim.Spawn("notifier", func(th *Thread) {
		th.Wait(1 * Ms)
		ev.NotifyAfter(5 * Ms)
		ev.NotifyDelta() // overrides the timed notification
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 1*Ms {
		t.Fatalf("woke at %v, want 1 ms (delta override)", woke)
	}
	if delta == 0 {
		t.Fatal("expected at least one delta cycle")
	}
}

func TestWaitTimeout(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("slow")
	var timedOut bool
	var at Time
	sim.Spawn("waiter", func(th *Thread) {
		_, timedOut = th.WaitTimeout(5*Ms, ev)
		at = th.Now()
	})
	sim.Spawn("late", func(th *Thread) {
		th.Wait(50 * Ms)
		ev.Notify()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || at != 5*Ms {
		t.Fatalf("timedOut=%v at=%v, want timeout at 5 ms", timedOut, at)
	}
}

func TestWaitTimeoutEventWins(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("fast")
	var timedOut bool
	var fired *Event
	sim.Spawn("waiter", func(th *Thread) {
		fired, timedOut = th.WaitTimeout(50*Ms, ev)
	})
	sim.Spawn("early", func(th *Thread) {
		th.Wait(2 * Ms)
		ev.Notify()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if timedOut || fired != ev {
		t.Fatalf("timedOut=%v fired=%v, want event win", timedOut, fired)
	}
}

func TestWaitOnMultipleEvents(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	a := sim.NewEvent("a")
	b := sim.NewEvent("b")
	var got []string
	sim.Spawn("waiter", func(th *Thread) {
		for i := 0; i < 2; i++ {
			e := th.WaitEvent(a, b)
			got = append(got, e.Name())
		}
	})
	sim.Spawn("driver", func(th *Thread) {
		th.Wait(1 * Ms)
		b.Notify()
		th.Wait(1 * Ms)
		a.Notify()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("got %v, want [b a]", got)
	}
}

func TestImmediateNotifyNotPersistent(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	ev.Notify() // nobody waiting: lost
	woke := false
	sim.Spawn("late-waiter", func(th *Thread) {
		th.WaitEvent(ev)
		woke = true
	})
	if err := sim.Start(Ms); err != nil {
		t.Fatal(err)
	}
	if woke {
		t.Fatal("event persisted to a later waiter")
	}
}

func TestMethodStaticSensitivity(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("trigger")
	count := 0
	sim.SpawnMethod("m", func() { count++ }, ev)
	sim.Spawn("driver", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Wait(1 * Ms)
			ev.Notify()
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("method ran %d times, want 3", count)
	}
}

func TestSignalUpdateSemantics(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sig := NewSignal(sim, "s", 0)
	var seenDuringWrite, seenAfterDelta int
	sim.Spawn("writer", func(th *Thread) {
		sig.Write(42)
		seenDuringWrite = sig.Read() // old value until update phase
		th.YieldDelta()
		seenAfterDelta = sig.Read()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if seenDuringWrite != 0 {
		t.Errorf("read during write delta = %d, want 0", seenDuringWrite)
	}
	if seenAfterDelta != 42 {
		t.Errorf("read after delta = %d, want 42", seenAfterDelta)
	}
}

func TestSignalValueChangedEvent(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sig := NewSignal(sim, "s", 0)
	changes := 0
	sim.SpawnMethod("watcher", func() { changes++ }, sig.ValueChanged())
	sim.Spawn("writer", func(th *Thread) {
		th.Wait(Ms)
		sig.Write(1)
		th.Wait(Ms)
		sig.Write(1) // no change: no event
		th.Wait(Ms)
		sig.Write(2)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if changes != 2 {
		t.Fatalf("value_changed fired %d times, want 2", changes)
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sig := NewSignal(sim, "s", 0)
	var got int
	sim.Spawn("writer", func(th *Thread) {
		sig.Write(1)
		sig.Write(2)
		sig.Write(3)
		th.YieldDelta()
		got = sig.Read()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("got %d, want 3 (last write wins)", got)
	}
}

func TestBoolSignalEdges(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sig := NewBoolSignal(sim, "b", false)
	pos, neg := 0, 0
	sim.SpawnMethod("pw", func() { pos++ }, sig.Posedge())
	sim.SpawnMethod("nw", func() { neg++ }, sig.Negedge())
	sim.Spawn("writer", func(th *Thread) {
		th.Wait(Ms)
		sig.Write(true)
		th.Wait(Ms)
		sig.Write(false)
		th.Wait(Ms)
		sig.Write(true)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if pos != 2 || neg != 1 {
		t.Fatalf("pos=%d neg=%d, want 2/1", pos, neg)
	}
}

func TestClockTicks(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	clk := NewClock(sim, "clk", 2*Ms)
	rises := 0
	sim.SpawnMethod("counter", func() { rises++ }, clk.Posedge())
	if err := sim.Start(10 * Ms); err != nil {
		t.Fatal(err)
	}
	// Rising edges at 1,3,5,7,9 ms (period 2 ms, first half-period low).
	if rises != 5 {
		t.Fatalf("rises = %d, want 5", rises)
	}
	if clk.Period() != 2*Ms {
		t.Fatalf("period = %v", clk.Period())
	}
}

func TestTickerPeriodicEvents(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	tick := NewTicker(sim, "sys", 1*Ms)
	var times []Time
	sim.SpawnMethod("counter", func() { times = append(times, sim.Now()) }, tick.Event())
	if err := sim.Start(5 * Ms); err != nil {
		t.Fatal(err)
	}
	want := []Time{1 * Ms, 2 * Ms, 3 * Ms, 4 * Ms, 5 * Ms}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sim.Spawn("bomb", func(th *Thread) {
		th.Wait(Ms)
		panic("boom")
	})
	err := sim.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestMethodPanicPropagates(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	sim.SpawnMethod("bomb", func() { panic("boom") }, ev)
	ev.NotifyAfter(Ms)
	if err := sim.Run(); err == nil {
		t.Fatal("expected error from panicking method")
	}
}

func TestStopEndsSimulation(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	n := 0
	sim.Spawn("loop", func(th *Thread) {
		for {
			th.Wait(Ms)
			n++
			if n == 3 {
				th.Sim().Stop()
			}
		}
	})
	if err := sim.Start(100 * Ms); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("iterations = %d, want 3", n)
	}
	if !sim.Stopped() {
		t.Fatal("Stopped() should be true")
	}
}

func TestSpawnDuringSimulation(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	var childRan Time = -1
	sim.Spawn("parent", func(th *Thread) {
		th.Wait(2 * Ms)
		th.Sim().Spawn("child", func(c *Thread) {
			c.Wait(3 * Ms)
			childRan = c.Now()
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if childRan != 5*Ms {
		t.Fatalf("child finished at %v, want 5 ms", childRan)
	}
}

func TestShutdownReclaimsBlockedThreads(t *testing.T) {
	sim := NewSimulator()
	ev := sim.NewEvent("never")
	th := sim.Spawn("stuck", func(t *Thread) { t.WaitEvent(ev) })
	if err := sim.Start(Ms); err != nil {
		t.Fatal(err)
	}
	sim.Shutdown()
	if !th.Done() {
		t.Fatal("thread not reclaimed by Shutdown")
	}
	if err := sim.Start(2 * Ms); err == nil {
		t.Fatal("Start after Shutdown should fail")
	}
}

func TestDeterministicRunnableOrder(t *testing.T) {
	run := func() []string {
		sim := NewSimulator()
		defer sim.Shutdown()
		var order []string
		ev := sim.NewEvent("go")
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("t%d", i)
			sim.Spawn(name, func(th *Thread) {
				th.WaitEvent(ev)
				order = append(order, th.Name())
			})
		}
		sim.Spawn("notifier", func(th *Thread) {
			th.Wait(Ms)
			ev.Notify()
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("non-deterministic order: %v vs %v", got, first)
		}
	}
	want := []string{"t0", "t1", "t2", "t3", "t4"}
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Fatalf("order %v, want registration order %v", first, want)
	}
}

// Property: for any set of positive delays, every thread wakes exactly at
// its scheduled time and the set of wake times observed matches the input.
func TestPropertyTimedWakeups(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		sim := NewSimulator()
		defer sim.Shutdown()
		wake := make([]Time, len(raw))
		for i, r := range raw {
			d := Time(int64(r)%1000+1) * Us
			idx := i
			sim.Spawn(fmt.Sprintf("p%d", i), func(th *Thread) {
				th.Wait(d)
				wake[idx] = th.Now()
			})
		}
		if err := sim.Run(); err != nil {
			return false
		}
		for i, r := range raw {
			if wake[i] != Time(int64(r)%1000+1)*Us {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap pops timed notifications in nondecreasing time order with
// FIFO order among equal times.
func TestPropertyHeapOrdering(t *testing.T) {
	f := func(raw []uint8) bool {
		var q timedQueue
		for _, r := range raw {
			q.push(Time(r), nil)
		}
		var last Time = -1
		var lastSeq uint64
		for !q.empty() {
			it := q.pop()
			if it.when < last {
				return false
			}
			if it.when == last && it.seq < lastSeq {
				return false
			}
			last, lastSeq = it.when, it.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventPendingIntrospection(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ev := sim.NewEvent("e")
	if ev.Pending() {
		t.Fatal("fresh event pending")
	}
	ev.NotifyAfter(Ms)
	if !ev.Pending() {
		t.Fatal("timed notification should be pending")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("cancel should clear pending")
	}
}

func TestWaitEventEmptySetPanics(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	sim.Spawn("bad", func(th *Thread) { th.WaitEvent() })
	if err := sim.Run(); err == nil {
		t.Fatal("expected error for empty wait set")
	}
}
