package sysc_test

import (
	"testing"

	"repro/internal/sysc"
)

// TestTickerSkipToPhase asserts SkipTo counts skipped firings exactly and
// keeps the generator on the original tick grid, and that EnsureFire undoes
// a skip down to the first grid point covering a new deadline.
func TestTickerSkipToPhase(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	tk := sysc.NewTicker(sim, "t", 10*sysc.Ms)
	var fires []sysc.Time
	sim.SpawnMethod("probe", func() { fires = append(fires, sim.Now()) }, tk.Event())

	if next, ok := tk.NextFire(); !ok || next != 10*sysc.Ms {
		t.Fatalf("NextFire = %v %v", next, ok)
	}
	// No-op skips: at or before the next fire.
	if n := tk.SkipTo(10 * sysc.Ms); n != 0 {
		t.Fatalf("SkipTo(next) skipped %d", n)
	}
	// Skip past 10, 20, 30 ms; the grid-ceiled target is 40 ms.
	if n := tk.SkipTo(35 * sysc.Ms); n != 3 {
		t.Fatalf("SkipTo(35ms) skipped %d, want 3", n)
	}
	if next, _ := tk.NextFire(); next != 40*sysc.Ms {
		t.Fatalf("NextFire after skip = %v", next)
	}
	// Pull back for a deadline at 15 ms: the covering grid point is 20 ms,
	// re-instating the firings at 20 and 30 ms.
	if n := tk.EnsureFire(15 * sysc.Ms); n != 2 {
		t.Fatalf("EnsureFire(15ms) re-instated %d, want 2", n)
	}
	if next, _ := tk.NextFire(); next != 20*sysc.Ms {
		t.Fatalf("NextFire after pull-back = %v", next)
	}
	if n := tk.EnsureFire(20 * sysc.Ms); n != 0 {
		t.Fatalf("EnsureFire(on next) re-instated %d", n)
	}
	if err := sim.Start(60 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	want := []sysc.Time{20 * sysc.Ms, 30 * sysc.Ms, 40 * sysc.Ms, 50 * sysc.Ms, 60 * sysc.Ms}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v", fires)
	}
	for i, w := range want {
		if fires[i] != w {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

// TestNextTimedExcluding asserts the warp query skips exactly the excluded
// event's pending notification.
func TestNextTimedExcluding(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	a := sim.NewEvent("a")
	b := sim.NewEvent("b")
	if _, ok := sim.NextTimedExcluding(a); ok {
		t.Fatal("empty queue reported a time")
	}
	a.NotifyAfter(5 * sysc.Ms)
	b.NotifyAfter(8 * sysc.Ms)
	if w, ok := sim.NextTimedExcluding(nil); !ok || w != 5*sysc.Ms {
		t.Fatalf("excluding nothing: %v %v", w, ok)
	}
	if w, ok := sim.NextTimedExcluding(a); !ok || w != 8*sysc.Ms {
		t.Fatalf("excluding root: %v %v", w, ok)
	}
	if w, ok := sim.NextTimedExcluding(b); !ok || w != 5*sysc.Ms {
		t.Fatalf("excluding non-root: %v %v", w, ok)
	}
	b.Cancel()
	if _, ok := sim.NextTimedExcluding(a); ok {
		t.Fatal("cancelled entry counted")
	}
}
