package sysc

import "fmt"

// Simulator owns a complete discrete-event simulation: the time wheel, the
// runnable queue, delta and timed notification queues, and all processes.
// Build a model by spawning processes and creating events/signals, then call
// Start. Start may be called repeatedly with increasing horizons to step the
// simulation (the paper's "step mode"). Call Shutdown when finished to
// reclaim process goroutines.
type Simulator struct {
	now        Time
	deltaCount uint64

	runnable []procRef
	deltaQ   []*Event
	timed    timedQueue
	updates  []updater

	threads []*Thread
	running *Thread // thread currently executing (nil outside evaluate)
	nextID  int

	stopRequested bool
	shutdown      bool
	err           error
}

// updater is anything with update semantics in the update phase (signals).
type updater interface{ update() }

// NewSimulator returns an empty simulation ready for model construction.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// CurrentThread returns the thread process executing right now (nil when
// called from outside the evaluation of a thread, e.g. from a Method).
func (s *Simulator) CurrentThread() *Thread { return s.running }

// DeltaCount returns the number of delta cycles executed so far.
func (s *Simulator) DeltaCount() uint64 { return s.deltaCount }

// Stop requests that the simulation stop at the end of the current delta
// cycle (sc_stop semantics).
func (s *Simulator) Stop() { s.stopRequested = true }

// Stopped reports whether Stop has been requested.
func (s *Simulator) Stopped() bool { return s.stopRequested }

// Err returns the first process panic converted to an error, if any.
func (s *Simulator) Err() error { return s.err }

// makeRunnable appends a process to the runnable queue exactly once.
func (s *Simulator) makeRunnable(p procRef) {
	switch {
	case p.t != nil:
		if p.t.queued || p.t.done {
			return
		}
		p.t.queued = true
	case p.m != nil:
		if p.m.queued {
			return
		}
		p.m.queued = true
	}
	s.runnable = append(s.runnable, p)
}

// requestUpdate queues a primitive-channel update for the update phase.
func (s *Simulator) requestUpdate(u updater) {
	s.updates = append(s.updates, u)
}

// trigger fires an event immediately: every dynamically waiting thread and
// every statically sensitive method becomes runnable in the current
// evaluation phase.
func (s *Simulator) trigger(e *Event) {
	if len(e.waiters) > 0 {
		ws := e.waiters
		e.waiters = nil
		for _, t := range ws {
			// Detach the thread from the other events of its wait set.
			for _, other := range t.waiting {
				if other != e {
					other.removeWaiter(t)
				}
			}
			t.waiting = t.waiting[:0]
			t.trigEv = e
			s.makeRunnable(procRef{t: t})
		}
	}
	for _, m := range e.static {
		s.makeRunnable(procRef{m: m})
	}
}

// runProcess executes one runnable process to its next wait (threads) or to
// completion (methods). Process panics abort the simulation.
func (s *Simulator) runProcess(p procRef) {
	switch {
	case p.t != nil:
		t := p.t
		t.queued = false
		if t.done {
			return
		}
		t.started = true
		prev := s.running
		s.running = t
		t.resume <- struct{}{}
		<-t.park
		s.running = prev
		if t.panicVal != nil && s.err == nil {
			s.err = fmt.Errorf("sysc: process %q panicked: %v", t.name, t.panicVal)
			s.stopRequested = true
		}
	case p.m != nil:
		m := p.m
		m.queued = false
		func() {
			defer func() {
				if r := recover(); r != nil && s.err == nil {
					s.err = fmt.Errorf("sysc: method %q panicked: %v", m.name, r)
					s.stopRequested = true
				}
			}()
			m.fn()
		}()
	}
}

// Start runs the simulation until no activity remains, Stop is called, a
// process panics, or simulated time would pass `until`. When the model goes
// quiet before the horizon, time advances to `until` so that successive
// Start calls step the clock deterministically. It returns the first process
// panic as an error.
func (s *Simulator) Start(until Time) error {
	if s.shutdown {
		return fmt.Errorf("sysc: simulator already shut down")
	}
	for !s.stopRequested {
		// Evaluation phase: run until no process is runnable.
		for len(s.runnable) > 0 {
			p := s.runnable[0]
			s.runnable = s.runnable[1:]
			s.runProcess(p)
			if s.stopRequested {
				break
			}
		}
		if s.stopRequested {
			break
		}

		// Update phase: primitive channel updates (may schedule deltas).
		if len(s.updates) > 0 {
			ups := s.updates
			s.updates = nil
			for _, u := range ups {
				u.update()
			}
		}

		// Delta notification phase.
		if len(s.deltaQ) > 0 {
			s.deltaCount++
			dq := s.deltaQ
			s.deltaQ = nil
			fired := false
			for _, e := range dq {
				if e.pendingKind != notifyDelta {
					continue // cancelled or overridden
				}
				e.pendingKind = notifyNone
				s.trigger(e)
				fired = true
			}
			if fired || len(s.runnable) > 0 || len(s.updates) > 0 {
				continue
			}
		}
		if len(s.runnable) > 0 || len(s.updates) > 0 {
			continue
		}

		// Timed notification phase: advance to the next event time.
		next, ok := s.timed.nextTime()
		if !ok || next > until {
			// Step mode: advance the clock to the horizon so successive
			// Start calls tick deterministically — except for an unbounded
			// Run, which stops at the last event.
			if until > s.now && until != MaxTime {
				s.now = until
			}
			break
		}
		s.now = next
		for {
			t, ok := s.timed.nextTime()
			if !ok || t != s.now {
				break
			}
			it := s.timed.pop()
			if it.cancelled || it.ev.pendingKind != notifyTimed || it.ev.pendingEntry != it {
				continue
			}
			it.ev.pendingKind = notifyNone
			it.ev.pendingEntry = nil
			s.trigger(it.ev)
		}
	}
	return s.err
}

// Run is Start with an unbounded horizon: it returns when the model goes
// quiet or Stop is called.
func (s *Simulator) Run() error { return s.Start(MaxTime) }

// Shutdown terminates all live process goroutines. The simulator cannot be
// restarted afterwards. It is safe to call multiple times.
func (s *Simulator) Shutdown() {
	if s.shutdown {
		return
	}
	s.shutdown = true
	s.stopRequested = true
	for _, t := range s.threads {
		if t.done {
			continue
		}
		t.killed = true
		t.resume <- struct{}{}
		<-t.park
	}
}
