package sysc

import (
	"context"
	"fmt"
)

// Simulator owns a complete discrete-event simulation: the time wheel, the
// runnable queue, delta and timed notification queues, and all processes.
// Build a model by spawning processes and creating events/signals, then call
// Start. Start may be called repeatedly with increasing horizons to step the
// simulation (the paper's "step mode"). Call Shutdown when finished to
// reclaim process goroutines.
type Simulator struct {
	now        Time
	deltaCount uint64

	runnable []procRef
	runHead  int // index of the next runnable entry (index-based drain)
	deltaQ   []*Event
	timed    timedQueue
	updates  []updater

	threads []*Thread
	events  []*Event // every event ever created, in creation order (state.go)
	coros   []*Coro  // every coroutine ever spawned, in creation order
	running *Thread  // thread currently executing (nil outside evaluate)
	curCoro *Coro    // coroutine currently stepping (nil outside a step)
	nextID  int

	// observer, when set, watches scheduler milestones: quiescent points
	// (no runnable process, no pending update, no pending delta at the
	// current time, immediately before the timed phase advances the clock)
	// and timed-phase clock advances.
	observer Observer

	// warp, when set, runs at every quiescent point after the observer and
	// before the timed phase picks the next event time. Unlike an Observer it
	// may re-schedule timed notifications (cancel + re-arm) — the tickless
	// fast-forward moves a Ticker's generator across a gap of no-op firings —
	// but it must not make any process runnable at the current time.
	warp func(now, horizon Time)

	// schedWake resumes the scheduler goroutine when an evaluation phase
	// drains. Buffered so the scheduler can hand itself the token when the
	// whole phase ran inline (methods only).
	schedWake chan struct{}

	// cancel, when non-nil, is polled at every quiescent point (the model
	// is stable there): once closed, the run stops before the clock
	// advances again and cancelled records that the stop came from the
	// context, not the model (StartContext).
	cancel    <-chan struct{}
	cancelled bool

	stopRequested bool
	shutdown      bool
	err           error
}

// updater is anything with update semantics in the update phase (signals).
type updater interface{ update() }

// NewSimulator returns an empty simulation ready for model construction.
func NewSimulator() *Simulator {
	return &Simulator{schedWake: make(chan struct{}, 1)}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// CurrentThread returns the thread process executing right now (nil when
// called from outside the evaluation of a thread, e.g. from a Method).
func (s *Simulator) CurrentThread() *Thread { return s.running }

// CurrentCoro returns the coroutine process stepping right now (nil when
// called from outside a coroutine step).
func (s *Simulator) CurrentCoro() *Coro { return s.curCoro }

// DeltaCount returns the number of delta cycles executed so far.
func (s *Simulator) DeltaCount() uint64 { return s.deltaCount }

// Observer watches the simulator's phase milestones. Quiescent fires at
// every quiescent point: all activity at the current time has drained and
// the timed phase is about to advance the clock (or the run is about to end
// at its horizon). At that instant the model state is stable, which makes it
// the natural place for live invariant checking. TimeAdvance fires after the
// timed phase moves the clock from `from` to `to`. Observers must only
// observe — they must not spawn processes or notify events.
type Observer interface {
	Quiescent(now Time)
	TimeAdvance(from, to Time)
}

// SetObserver installs the simulator's single observer slot (nil removes
// it). Multi-consumer fan-out belongs to the event bus layered on top.
func (s *Simulator) SetObserver(o Observer) { s.observer = o }

// SetWarpHook installs the quiescent-point warp hook (nil removes it). The
// hook runs when the model is stable at the current time, receives the
// current time and the Start horizon, and may re-arm timed notifications to
// fast-forward periodic sources across provably idle gaps. One slot: the
// kernel layer owns it.
func (s *Simulator) SetWarpHook(fn func(now, horizon Time)) { s.warp = fn }

// NextTimedExcluding returns the earliest pending timed-notification time
// belonging to any event other than ex (the tickless fast-forward asks
// "when does anything besides my own tick generator need to run?").
func (s *Simulator) NextTimedExcluding(ex *Event) (Time, bool) {
	t, ok := s.timed.nextTime()
	if !ok {
		return 0, false
	}
	if s.timed.items[0].ev != ex {
		return t, true
	}
	// The excluded event holds the heap root; scan for the earliest other
	// live entry (an event has at most one live entry, so skipping the root
	// suffices for ex).
	found := false
	var min Time
	for _, it := range s.timed.items[1:] {
		if it.cancelled {
			continue
		}
		if !found || it.when < min {
			found, min = true, it.when
		}
	}
	return min, found
}

// Stop requests that the simulation stop at the end of the current delta
// cycle (sc_stop semantics).
func (s *Simulator) Stop() { s.stopRequested = true }

// Stopped reports whether Stop has been requested.
func (s *Simulator) Stopped() bool { return s.stopRequested }

// Err returns the first process panic converted to an error, if any.
func (s *Simulator) Err() error { return s.err }

// makeRunnable appends a process to the runnable queue exactly once.
func (s *Simulator) makeRunnable(p procRef) {
	switch {
	case p.t != nil:
		if p.t.queued || p.t.done {
			return
		}
		p.t.queued = true
	case p.m != nil:
		if p.m.queued {
			return
		}
		p.m.queued = true
	case p.c != nil:
		if p.c.queued || p.c.done {
			return
		}
		p.c.queued = true
	}
	s.runnable = append(s.runnable, p)
}

// requestUpdate queues a primitive-channel update for the update phase.
func (s *Simulator) requestUpdate(u updater) {
	s.updates = append(s.updates, u)
}

// trigger fires an event immediately: every dynamically waiting thread and
// every statically sensitive method becomes runnable in the current
// evaluation phase.
func (s *Simulator) trigger(e *Event) {
	if len(e.waiters) > 0 {
		// Keep the backing array for the next wait generation: nothing can
		// re-append to e.waiters while this loop runs (woken threads only
		// become runnable here; they execute later in the evaluation phase).
		ws := e.waiters
		e.waiters = ws[:0]
		for _, t := range ws {
			// Detach the thread from the other events of its wait set.
			for _, other := range t.waiting {
				if other != e {
					other.removeWaiter(t)
				}
			}
			t.waiting = t.waiting[:0]
			t.trigEv = e
			s.makeRunnable(procRef{t: t})
		}
	}
	if len(e.cwaiters) > 0 {
		// Coroutine waiters wake after threads, before static methods — the
		// order is fixed, so runs stay deterministic. The backing array is
		// kept for the next wait generation like the thread list above.
		cs := e.cwaiters
		e.cwaiters = cs[:0]
		for _, c := range cs {
			for _, other := range c.waiting {
				if other != e {
					other.removeCoroWaiter(c)
				}
			}
			c.waiting = c.waiting[:0]
			c.trigEv = e
			s.makeRunnable(procRef{c: c})
		}
	}
	for _, m := range e.static {
		s.makeRunnable(procRef{m: m})
	}
}

// passBaton advances the evaluation phase from whichever goroutine currently
// holds control: the scheduler at the start of a phase, or a thread that is
// yielding or terminating. Runnable methods execute inline (no goroutine
// switch); the first runnable thread receives the baton directly, so a
// thread-to-thread context switch costs a single channel handoff instead of
// the former two (thread -> scheduler -> thread). When the queue drains (or
// a stop is requested) the scheduler goroutine is woken to run the update,
// delta and timed phases.
func (s *Simulator) passBaton() {
	if !s.stopRequested {
		for s.runHead < len(s.runnable) {
			p := s.runnable[s.runHead]
			s.runHead++
			if m := p.m; m != nil {
				m.queued = false
				s.running = nil
				s.runMethod(m)
				if s.stopRequested {
					break
				}
				continue
			}
			if c := p.c; c != nil {
				c.queued = false
				if c.done {
					continue
				}
				s.running = nil
				s.runCoro(c)
				if s.stopRequested {
					break
				}
				continue
			}
			t := p.t
			t.queued = false
			if t.done {
				continue
			}
			s.running = t
			t.resume <- struct{}{}
			return
		}
	}
	s.running = nil
	s.schedWake <- struct{}{}
}

// runMethod invokes a method process, converting a panic into a simulation
// abort. It may run on the scheduler goroutine or inline on a thread
// goroutine passing the baton; CurrentThread is nil either way.
func (s *Simulator) runMethod(m *Method) {
	defer func() {
		if r := recover(); r != nil && s.err == nil {
			s.err = fmt.Errorf("sysc: method %q panicked: %v", m.name, r)
			s.stopRequested = true
		}
	}()
	m.fn()
}

// threadExit finishes a thread's participation in the evaluation phase from
// the thread's own goroutine: record a panic, then pass the baton on.
func (s *Simulator) threadExit(t *Thread, panicVal any) {
	if panicVal != nil && s.err == nil {
		s.err = fmt.Errorf("sysc: process %q panicked: %v", t.name, panicVal)
		s.stopRequested = true
	}
	s.passBaton()
}

// Start runs the simulation until no activity remains, Stop is called, a
// process panics, or simulated time would pass `until`. When the model goes
// quiet before the horizon, time advances to `until` so that successive
// Start calls step the clock deterministically. It returns the first process
// panic as an error.
func (s *Simulator) Start(until Time) error {
	if s.shutdown {
		return fmt.Errorf("sysc: simulator already shut down")
	}
	for !s.stopRequested {
		// Evaluation phase: run until no process is runnable. Methods and
		// coroutines execute inline on the scheduler goroutine; only when a
		// thread reaches the queue head does the baton pass engage (threads
		// resume each other directly and the scheduler sleeps until the
		// phase is over). A phase containing no runnable thread therefore
		// completes without a single channel operation. The queue drains by
		// index so the head pop neither copies nor pins the whole backing
		// array; once empty it resets to reuse the capacity.
		for s.runHead < len(s.runnable) && !s.stopRequested {
			p := s.runnable[s.runHead]
			if p.t != nil {
				s.passBaton()
				<-s.schedWake
				break
			}
			s.runHead++
			if m := p.m; m != nil {
				m.queued = false
				s.running = nil
				s.runMethod(m)
				continue
			}
			c := p.c
			c.queued = false
			if c.done {
				continue
			}
			s.running = nil
			s.runCoro(c)
		}
		if s.runHead == len(s.runnable) {
			s.runnable = s.runnable[:0]
			s.runHead = 0
		}
		if s.stopRequested {
			break
		}

		// Update phase: primitive channel updates (may schedule deltas).
		if len(s.updates) > 0 {
			ups := s.updates
			s.updates = ups[:0]
			for _, u := range ups {
				u.update()
			}
		}

		// Delta notification phase. The slice is reused: trigger only queues
		// processes, so nothing appends to deltaQ while dq is iterated.
		if len(s.deltaQ) > 0 {
			s.deltaCount++
			dq := s.deltaQ
			s.deltaQ = dq[:0]
			fired := false
			for _, e := range dq {
				if e.pendingKind != notifyDelta {
					continue // cancelled or overridden
				}
				e.pendingKind = notifyNone
				s.trigger(e)
				fired = true
			}
			if fired || s.runHead < len(s.runnable) || len(s.updates) > 0 {
				continue
			}
		}
		if s.runHead < len(s.runnable) || len(s.updates) > 0 {
			continue
		}

		// Timed notification phase: advance to the next event time. The
		// model is quiescent at s.now here — nothing runnable, no updates,
		// no deltas — so observers get a stable snapshot.
		if s.cancel != nil {
			select {
			case <-s.cancel:
				s.cancelled = true
				return s.err
			default:
			}
		}
		if s.observer != nil {
			s.observer.Quiescent(s.now)
		}
		if s.warp != nil {
			s.warp(s.now, until)
		}
		next, ok := s.timed.nextTime()
		if !ok || next > until {
			// Step mode: advance the clock to the horizon so successive
			// Start calls tick deterministically — except for an unbounded
			// Run, which stops at the last event.
			if until > s.now && until != MaxTime {
				prev := s.now
				s.now = until
				if s.observer != nil {
					s.observer.TimeAdvance(prev, s.now)
				}
			}
			break
		}
		prev := s.now
		s.now = next
		if s.observer != nil {
			s.observer.TimeAdvance(prev, s.now)
		}
		for {
			t, ok := s.timed.nextTime()
			if !ok || t != s.now {
				break
			}
			it := s.timed.pop()
			ev := it.ev
			live := !it.cancelled && ev != nil &&
				ev.pendingKind == notifyTimed && ev.pendingEntry == it
			s.timed.release(it)
			if !live {
				continue
			}
			ev.pendingKind = notifyNone
			ev.pendingEntry = nil
			s.trigger(ev)
		}
	}
	return s.err
}

// Run is Start with an unbounded horizon: it returns when the model goes
// quiet or Stop is called.
func (s *Simulator) Run() error { return s.Start(MaxTime) }

// StartContext runs like Start but observes ctx at every quiescent point:
// once ctx is done the run stops at the next stable instant — before the
// clock advances again — and the context's cause is returned. Model state
// stays consistent, so the caller can still harvest partial results (the
// server's per-job deadline and cancellation path, and the CLIs' -timeout
// flags). A simulation that completes its horizon first returns exactly
// what Start would, even if ctx expires afterwards.
func (s *Simulator) StartContext(ctx context.Context, until Time) error {
	done := ctx.Done()
	if done == nil {
		return s.Start(until)
	}
	s.cancel = done
	s.cancelled = false
	defer func() { s.cancel = nil }()
	if err := s.Start(until); err != nil {
		return err
	}
	if s.cancelled {
		return context.Cause(ctx)
	}
	return nil
}

// Shutdown terminates all live process goroutines. The simulator cannot be
// restarted afterwards. It is safe to call multiple times.
func (s *Simulator) Shutdown() {
	if s.shutdown {
		return
	}
	s.shutdown = true
	s.stopRequested = true
	for _, t := range s.threads {
		if t.done {
			continue
		}
		t.killed = true
		t.resume <- struct{}{}
		<-t.park
	}
}
