package sysc

import "testing"

// The engine microbenchmarks isolate the per-handoff cost of the two process
// engines. Each pair is structurally identical — same events, same
// notification discipline, same step count — so the goroutine/continuation
// delta is exactly the cost of parking a goroutine versus returning from a
// step function.

// BenchmarkContextSwitch measures a two-process ping-pong: each round is one
// delta notification plus one process-to-process handoff in each direction.
func BenchmarkContextSwitch(b *testing.B) {
	b.Run("goroutine", func(b *testing.B) {
		b.ReportAllocs()
		sim := NewSimulator()
		defer sim.Shutdown()
		ping := sim.NewEvent("ping")
		pong := sim.NewEvent("pong")
		sim.Spawn("A", func(th *Thread) {
			for {
				ping.NotifyDelta()
				th.WaitEvent(pong)
			}
		})
		n := 0
		sim.Spawn("B", func(th *Thread) {
			for {
				th.WaitEvent(ping)
				n++
				if n >= b.N {
					sim.Stop()
					return
				}
				pong.NotifyDelta()
			}
		})
		b.ResetTimer()
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("continuation", func(b *testing.B) {
		b.ReportAllocs()
		sim := NewSimulator()
		defer sim.Shutdown()
		ping := sim.NewEvent("ping")
		pong := sim.NewEvent("pong")
		sim.SpawnCoro("A", func(c *Coro) {
			ping.NotifyDelta()
			c.WaitEvent(pong)
		})
		n := 0
		sim.SpawnCoro("B", func(c *Coro) {
			if c.Fired() == nil { // first step: arm only
				c.WaitEvent(ping)
				return
			}
			n++
			if n >= b.N {
				sim.Stop()
				return
			}
			pong.NotifyDelta()
			c.WaitEvent(ping)
		})
		b.ResetTimer()
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkYieldResume measures a single process yielding to the timed phase
// and resuming one tick later: timer arm, heap push/pop, trigger, resume.
func BenchmarkYieldResume(b *testing.B) {
	b.Run("goroutine", func(b *testing.B) {
		b.ReportAllocs()
		sim := NewSimulator()
		defer sim.Shutdown()
		sim.Spawn("Y", func(th *Thread) {
			for i := 0; i < b.N; i++ {
				th.Wait(1)
			}
			sim.Stop()
		})
		b.ResetTimer()
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("continuation", func(b *testing.B) {
		b.ReportAllocs()
		sim := NewSimulator()
		defer sim.Shutdown()
		i := 0
		sim.SpawnCoro("Y", func(c *Coro) {
			if i >= b.N {
				sim.Stop()
				return
			}
			i++
			c.Wait(1)
		})
		b.ResetTimer()
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// TestContinuationSteadyStateZeroAlloc asserts the continuation engine's
// steady-state data path — timer self-yields, event ping-pong handoffs, and
// the WaitTimeout scratch-buffer path — performs zero heap allocations per
// Start window once warm. The timed queue recycles entries through its free
// list, trigger keeps waiter backing arrays, and WaitTimeout builds its wait
// set in the per-coroutine scratch buffer, so nothing on this path should
// ever reach the allocator after warmup.
func TestContinuationSteadyStateZeroAlloc(t *testing.T) {
	sim := NewSimulator()
	defer sim.Shutdown()
	ping := sim.NewEvent("ping")
	pong := sim.NewEvent("pong")
	never := sim.NewEvent("never")

	// Timer self-yield: one handoff per time unit.
	sim.SpawnCoro("yield", func(c *Coro) { c.Wait(1) })
	// Event ping-pong: exercises WaitEvent arming and trigger wakeup.
	sim.SpawnCoro("A", func(c *Coro) {
		ping.NotifyAfter(1)
		c.WaitEvent(pong)
	})
	sim.SpawnCoro("B", func(c *Coro) {
		if c.Fired() != nil {
			pong.NotifyAfter(1)
		}
		c.WaitEvent(ping)
	})
	// WaitTimeout scratch path: the timeout always wins, detaching the
	// coroutine from the never-firing event each round.
	sim.SpawnCoro("tmo", func(c *Coro) {
		if c.Fired() != nil && !c.TimedOut() {
			t.Error("tmo: unexpected event fire")
		}
		c.WaitTimeout(1, never)
	})

	// Warm up: stabilize runnable-queue, waiter-list, scratch and timed-heap
	// free-list capacities.
	var end Time = 1000
	if err := sim.Start(end); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(50, func() {
		end += 1000
		if err := sim.Start(end); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("continuation steady state allocated %.1f times per 1000-handoff window, want 0", allocs)
	}
}
