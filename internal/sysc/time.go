// Package sysc implements a SystemC-like discrete-event simulation kernel:
// simulated time, events with immediate/delta/timed notification, thread and
// method processes, evaluate/update phases with delta cycles, signals and
// clocks. It is the substrate on which the T-THREAD process model and the
// SIM_API library (internal/core) are built, mirroring the role SystemC 2.0
// plays in the paper.
//
// The kernel is deterministic: exactly one process runs at a time, runnable
// processes execute in notification order, and repeated runs of the same
// model produce identical traces.
package sysc

import "fmt"

// Time is a point in (or duration of) simulated time, in picoseconds.
// The zero value is the simulation epoch.
type Time int64

// Time units. A duration is written e.g. 5*sysc.Ms.
const (
	Ps  Time = 1
	Ns  Time = 1000 * Ps
	Us  Time = 1000 * Ns
	Ms  Time = 1000 * Us
	Sec Time = 1000 * Ms
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = 1<<63 - 1

// Picoseconds returns t as a raw picosecond count.
func (t Time) Picoseconds() int64 { return int64(t) }

// Seconds returns t converted to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Sec) }

// Milliseconds returns t converted to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Ms) }

// String renders the time with the largest unit that divides it evenly,
// matching the sc_time convention ("5 ms", "250 us", "1 s").
func (t Time) String() string {
	if t == 0 {
		return "0 s"
	}
	type unit struct {
		d    Time
		name string
	}
	units := []unit{{Sec, "s"}, {Ms, "ms"}, {Us, "us"}, {Ns, "ns"}, {Ps, "ps"}}
	for _, u := range units {
		if t%u.d == 0 {
			return fmt.Sprintf("%d %s", int64(t/u.d), u.name)
		}
	}
	return fmt.Sprintf("%d ps", int64(t))
}
