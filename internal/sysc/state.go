package sysc

import "fmt"

// This file implements quiescent-point state capture and in-place restore
// for the discrete-event core — the bottom layer of the kernel snapshot
// stack (internal/snapshot).
//
// The contract: capture is legal only *between* Start calls, when the
// model is stable — nothing runnable, no pending update or delta. At that
// instant the whole dynamic state of the simulator is plain data: the
// clock, the delta counter, the timed heap's live (when, seq, event)
// triples, each event's wait lists, and each coroutine's armed wait set.
//
// Goroutine-backed threads are the one process kind whose resumption
// state (a parked stack) cannot be serialized. They are handled by
// *pinning*: a live thread's armed wait set is captured, and LoadState
// verifies the thread is still parked on exactly that wait set — meaning
// its goroutine has not moved since the capture, so its stack needs no
// rewinding at all. A thread that advanced between capture and restore
// (anything the goroutine engine dispatches) fails the check and the load
// is refused; callers fall back to a cold run. The continuation engine
// exists precisely so that hot-path configurations have no moving
// goroutine threads — only pinned ones (the INIT boot task parked forever
// at the top of its cycle).
//
// LoadState writes a captured state back into the *same* construction.
// Pointer identities (events, coroutines, closures) are stable across one
// construction, so wait lists rebuild from registry indices onto the
// original objects and the step closures resume exactly where the capture
// left them. Processes created *after* the capture (a warm fork may spawn
// per-variant fault threads) are neutralized: notifications cancelled,
// wait-list membership dropped, so they can never fire into the restored
// timeline.

// ErrThreadMoved reports a restore attempt after a goroutine-backed
// thread advanced past its captured park point. Callers treat it as
// "this configuration is not warm-restorable", not as a fault.
type ErrThreadMoved struct{ Name string }

func (e *ErrThreadMoved) Error() string {
	return fmt.Sprintf("sysc: thread %q moved since the capture; goroutine stacks cannot be rewound", e.Name)
}

// TimedItemState is one live entry of the timed notification heap. Seq is
// the original push sequence number: restoring with the exact sequence
// preserves same-instant firing order bit-for-bit.
type TimedItemState struct {
	When Time
	Seq  uint64
	Ev   int32 // event registry index
}

// EventState is the per-event dynamic state. Pending notifications are
// not stored here — the heap list is their single source of truth — so an
// event's own state is its wait lists, in wake (append) order.
type EventState struct {
	Waiters  []int32 // thread registry indices (pinned live threads)
	CWaiters []int32 // coro registry indices
}

// ThreadState is the captured state of a goroutine-backed thread: either
// done, or parked on an armed wait set it must still hold at restore.
type ThreadState struct {
	Done    bool
	Waiting []int32 // armed wait set, event registry indices in arm order
}

// CoroState is the resumption state of one coroutine between steps.
type CoroState struct {
	Waiting []int32 // armed wait set, event registry indices in arm order
	TrigEv  int32   // event that resumed the last step, -1 if none
	Armed   bool
	Done    bool
}

// SimState is the complete captured dynamic state of a Simulator at a
// quiescent point. All fields are plain data; the snapshot package owns
// the binary encoding.
type SimState struct {
	Now        Time
	DeltaCount uint64
	HeapSeq    uint64           // timed queue's next-seq counter
	Heap       []TimedItemState // live entries sorted by (When, Seq)
	Events     []EventState     // registry order
	Threads    []ThreadState    // registry order
	Coros      []CoroState      // registry order
}

// SaveState captures the simulator's dynamic state. It must be called
// between Start calls; it fails when the model is not quiescent (which
// cannot happen between Start calls of a healthy run).
func (s *Simulator) SaveState() (*SimState, error) {
	if s.shutdown {
		return nil, fmt.Errorf("sysc: cannot capture state after shutdown")
	}
	if s.err != nil {
		return nil, fmt.Errorf("sysc: cannot capture state of a failed simulation: %w", s.err)
	}
	if s.runHead < len(s.runnable) || len(s.updates) > 0 || len(s.deltaQ) > 0 {
		return nil, fmt.Errorf("sysc: capture requires a quiescent model (runnable=%d updates=%d delta=%d)",
			len(s.runnable)-s.runHead, len(s.updates), len(s.deltaQ))
	}
	st := &SimState{
		Now:        s.now,
		DeltaCount: s.deltaCount,
		HeapSeq:    s.timed.seq,
		Events:     make([]EventState, len(s.events)),
		Threads:    make([]ThreadState, len(s.threads)),
		Coros:      make([]CoroState, len(s.coros)),
	}
	for _, it := range s.timed.items {
		ev := it.ev
		if it.cancelled || ev == nil || ev.pendingKind != notifyTimed || ev.pendingEntry != it {
			continue
		}
		st.Heap = append(st.Heap, TimedItemState{When: it.when, Seq: it.seq, Ev: ev.idx})
	}
	sortHeapState(st.Heap)
	for i, e := range s.events {
		if e.pendingKind == notifyDelta {
			return nil, fmt.Errorf("sysc: event %q has a pending delta at a quiescent point", e.name)
		}
		if n := len(e.waiters); n > 0 {
			ws := make([]int32, n)
			for j, t := range e.waiters {
				ws[j] = t.idx
			}
			st.Events[i].Waiters = ws
		}
		if n := len(e.cwaiters); n > 0 {
			ws := make([]int32, n)
			for j, c := range e.cwaiters {
				ws[j] = c.idx
			}
			st.Events[i].CWaiters = ws
		}
	}
	for i, t := range s.threads {
		ts := ThreadState{Done: t.done}
		if !t.done {
			if len(t.waiting) == 0 {
				// Unreachable at a quiescent point: a live thread not parked
				// on anything would be runnable.
				return nil, fmt.Errorf("sysc: live thread %q is not parked at a quiescent point", t.name)
			}
			ws := make([]int32, len(t.waiting))
			for j, e := range t.waiting {
				ws[j] = e.idx
			}
			ts.Waiting = ws
		}
		st.Threads[i] = ts
	}
	for i, c := range s.coros {
		cs := CoroState{TrigEv: -1, Armed: c.armed, Done: c.done}
		if c.trigEv != nil {
			cs.TrigEv = c.trigEv.idx
		}
		if n := len(c.waiting); n > 0 {
			ws := make([]int32, n)
			for j, e := range c.waiting {
				ws[j] = e.idx
			}
			cs.Waiting = ws
		}
		st.Coros[i] = cs
	}
	return st, nil
}

// LoadState restores a state captured from this same construction. The
// registries may have grown since the capture (processes spawned after a
// fork); the extras are neutralized. Shrunken registries mean the state
// belongs to a different construction and the load is refused, as is any
// goroutine thread that moved past its captured park point.
func (s *Simulator) LoadState(st *SimState) error {
	if s.shutdown {
		return fmt.Errorf("sysc: cannot restore state after shutdown")
	}
	if s.err != nil {
		return fmt.Errorf("sysc: cannot restore state into a failed simulation: %w", s.err)
	}
	if len(s.events) < len(st.Events) || len(s.coros) < len(st.Coros) || len(s.threads) < len(st.Threads) {
		return fmt.Errorf("sysc: state mismatch: captured %d events/%d coros/%d threads, simulator has %d/%d/%d",
			len(st.Events), len(st.Coros), len(st.Threads), len(s.events), len(s.coros), len(s.threads))
	}
	// Verify every captured goroutine thread is exactly where the capture
	// left it before mutating anything: done threads must still be done,
	// live ones must still hold the identical armed wait set.
	for i, t := range s.threads {
		if i >= len(st.Threads) {
			continue // spawned after the capture: neutralized below
		}
		ts := &st.Threads[i]
		if t.done != ts.Done {
			return &ErrThreadMoved{Name: t.name}
		}
		if t.done {
			continue
		}
		if len(t.waiting) != len(ts.Waiting) {
			return &ErrThreadMoved{Name: t.name}
		}
		for j, e := range t.waiting {
			if e.idx != ts.Waiting[j] {
				return &ErrThreadMoved{Name: t.name}
			}
		}
	}
	s.now = st.Now
	s.deltaCount = st.DeltaCount
	s.stopRequested = false
	s.cancelled = false
	s.runnable = s.runnable[:0]
	s.runHead = 0
	s.updates = s.updates[:0]
	s.deltaQ = s.deltaQ[:0]

	// Clear every event's dynamic state, then rebuild from the capture.
	for _, e := range s.events {
		e.pendingKind = notifyNone
		e.pendingEntry = nil
		clearWaiters(e)
	}
	s.timed.reset(st.HeapSeq)
	for i := range st.Heap {
		h := &st.Heap[i]
		if int(h.Ev) >= len(s.events) {
			return fmt.Errorf("sysc: heap entry references unknown event %d", h.Ev)
		}
		ev := s.events[h.Ev]
		ev.pendingKind = notifyTimed
		ev.pendingWhen = h.When
		ev.pendingEntry = s.timed.pushExact(h.When, h.Seq, ev)
	}
	for i := range st.Events {
		e := s.events[i]
		for _, ti := range st.Events[i].Waiters {
			if int(ti) >= len(s.threads) {
				return fmt.Errorf("sysc: event %q wait list references unknown thread %d", e.name, ti)
			}
			e.waiters = append(e.waiters, s.threads[ti])
		}
		for _, ci := range st.Events[i].CWaiters {
			if int(ci) >= len(s.coros) {
				return fmt.Errorf("sysc: event %q wait list references unknown coro %d", e.name, ci)
			}
			e.cwaiters = append(e.cwaiters, s.coros[ci])
		}
	}
	// Threads past len(st.Threads) were never re-added to a waiters list
	// above, so they stay parked until Shutdown kills them.
	for _, t := range s.threads {
		t.queued = false
	}
	for i, c := range s.coros {
		c.queued = false
		if i >= len(st.Coros) {
			// Spawned after the capture: park it forever.
			c.waiting = c.waiting[:0]
			c.trigEv = nil
			c.armed = false
			c.done = true
			continue
		}
		cs := &st.Coros[i]
		c.armed = cs.Armed
		c.done = cs.Done
		c.trigEv = nil
		if cs.TrigEv >= 0 {
			c.trigEv = s.events[cs.TrigEv]
		}
		c.waiting = c.waiting[:0]
		for _, ei := range cs.Waiting {
			c.waiting = append(c.waiting, s.events[ei])
		}
	}
	return nil
}

// clearWaiters empties an event's dynamic wait lists without freeing the
// backing arrays.
func clearWaiters(e *Event) {
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	for i := range e.cwaiters {
		e.cwaiters[i] = nil
	}
	e.cwaiters = e.cwaiters[:0]
}

// sortHeapState orders heap entries by (When, Seq) — insertion sort; live
// heaps at quiescent points are small and nearly ordered.
func sortHeapState(h []TimedItemState) {
	for i := 1; i < len(h); i++ {
		for j := i; j > 0; j-- {
			a, b := &h[j-1], &h[j]
			if a.When < b.When || (a.When == b.When && a.Seq < b.Seq) {
				break
			}
			h[j-1], h[j] = h[j], h[j-1]
		}
	}
}
