package sysc

// Signal is an sc_signal-style primitive channel: writes take effect in the
// update phase, and a value change triggers the signal's ValueChanged event
// in the next delta cycle. T must be comparable so changes can be detected.
type Signal[T comparable] struct {
	sim     *Simulator
	name    string
	cur     T
	next    T
	hasNext bool
	changed *Event
}

// NewSignal creates a signal with the given initial value.
func NewSignal[T comparable](s *Simulator, name string, init T) *Signal[T] {
	return &Signal[T]{sim: s, name: name, cur: init, next: init,
		changed: s.NewEvent(name + ".value_changed")}
}

// Name returns the signal's diagnostic name.
func (sig *Signal[T]) Name() string { return sig.name }

// Read returns the current (stable) value of the signal.
func (sig *Signal[T]) Read() T { return sig.cur }

// Write schedules v to become the signal's value in the update phase of the
// current delta cycle. The last write in an evaluation phase wins.
func (sig *Signal[T]) Write(v T) {
	sig.next = v
	if !sig.hasNext {
		sig.hasNext = true
		sig.sim.requestUpdate(sig)
	}
}

// update applies the pending write and fires ValueChanged on a real change.
func (sig *Signal[T]) update() {
	sig.hasNext = false
	if sig.next == sig.cur {
		return
	}
	sig.cur = sig.next
	sig.changed.NotifyDelta()
}

// ValueChanged returns the event triggered one delta after any value change.
func (sig *Signal[T]) ValueChanged() *Event { return sig.changed }

// BoolSignal augments Signal[bool] with edge events, mirroring
// sc_signal<bool>'s posedge_event/negedge_event.
type BoolSignal struct {
	Signal[bool]
	pos *Event
	neg *Event
}

// NewBoolSignal creates a boolean signal with edge events.
func NewBoolSignal(s *Simulator, name string, init bool) *BoolSignal {
	b := &BoolSignal{
		Signal: Signal[bool]{sim: s, name: name, cur: init, next: init,
			changed: s.NewEvent(name + ".value_changed")},
		pos: s.NewEvent(name + ".posedge"),
		neg: s.NewEvent(name + ".negedge"),
	}
	return b
}

func (b *BoolSignal) update() {
	b.hasNext = false
	if b.next == b.cur {
		return
	}
	b.cur = b.next
	b.changed.NotifyDelta()
	if b.cur {
		b.pos.NotifyDelta()
	} else {
		b.neg.NotifyDelta()
	}
}

// Write schedules v; overridden so the update phase uses BoolSignal.update.
func (b *BoolSignal) Write(v bool) {
	b.next = v
	if !b.hasNext {
		b.hasNext = true
		b.sim.requestUpdate(b)
	}
}

// Posedge returns the event fired when the signal transitions false→true.
func (b *BoolSignal) Posedge() *Event { return b.pos }

// Negedge returns the event fired when the signal transitions true→false.
func (b *BoolSignal) Negedge() *Event { return b.neg }
