package calib_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/i8051"
	"repro/internal/sysc"
)

func TestProfileBlockMeasuresCycles(t *testing.T) {
	p := calib.NewProfiler()
	// 10-iteration DJNZ loop: MOV R0 (1) + 10×(INC A 1 + DJNZ 2) = 31 cy.
	m, err := p.ProfileBlock("loop10", func(a *i8051.Asm) {
		a.MovRImm(0, 10).
			Label("l").
			IncA().
			DjnzR(0, "l")
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles != 31 {
		t.Fatalf("cycles = %d, want 31", m.Cycles)
	}
	if m.Time != 31*sysc.Us {
		t.Fatalf("time = %v", m.Time)
	}
	if m.Instructions != 21 {
		t.Fatalf("instrs = %d", m.Instructions)
	}
	if m.Energy <= 0 {
		t.Fatal("no energy model")
	}
}

func TestProfileNonHaltingFails(t *testing.T) {
	p := calib.NewProfiler()
	p.MaxInstructions = 1000
	_, err := p.ProfileProgram("spin", i8051.NewAsm().
		Label("l").
		IncA().
		Sjmp("l"). // real infinite loop (not the halt idiom)
		Assemble())
	if err == nil {
		t.Fatal("non-halting block should fail")
	}
}

func TestCostTableLookupAndFallback(t *testing.T) {
	p := calib.NewProfiler()
	tab := calib.NewCostTable()
	m, _ := p.ProfileBlock("b1", func(a *i8051.Asm) { a.IncA() })
	tab.Put(m)
	c, ok := tab.Cost("b1")
	if !ok || c.Time != 1*sysc.Us {
		t.Fatalf("cost = %v %v", c, ok)
	}
	est := core.Cost{Time: 99 * sysc.Us}
	if got := tab.CostOr("b1", est); got.Time != 1*sysc.Us {
		t.Fatal("calibrated block should use measurement")
	}
	if got := tab.CostOr("unknown", est); got.Time != 99*sysc.Us {
		t.Fatal("uncalibrated block should use estimate")
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := calib.NewProfiler()
	tab := calib.NewCostTable()
	for _, name := range []string{"alpha", "beta"} {
		m, err := p.ProfileBlock(name, func(a *i8051.Asm) {
			a.MovAImm(5).AddAImm(7).MovDirA(0x30)
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Block = name
		tab.Put(m)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := calib.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d", loaded.Len())
	}
	c1, _ := tab.Cost("alpha")
	c2, _ := loaded.Cost("alpha")
	if c1 != c2 {
		t.Fatalf("round trip changed cost: %v vs %v", c1, c2)
	}
}

func TestErrorReport(t *testing.T) {
	p := calib.NewProfiler()
	tab := calib.NewCostTable()
	m, _ := p.ProfileBlock("blk", func(a *i8051.Asm) {
		a.MovRImm(0, 100).Label("l").DjnzR(0, "l") // 1 + 200 cycles
	})
	tab.Put(m)
	errs := tab.ErrorReport(map[string]core.Cost{
		"blk":     {Time: m.Time * 2}, // estimate 100% high
		"missing": {Time: sysc.Us},
	})
	if len(errs) != 1 {
		t.Fatalf("errors = %v", errs)
	}
	if e := errs["blk"]; e < 0.99 || e > 1.01 {
		t.Fatalf("relative error = %v, want ~1.0", e)
	}
}

func TestCalibratedVideoGameFrameCost(t *testing.T) {
	// End-to-end calibration story: profile the video game's frame-compute
	// block as 8051 code (clear + draw loop over XRAM framebuffer), then
	// check the measurement is a plausible replacement for the estimated
	// 300 us annotation used by the case study.
	p := calib.NewProfiler()
	m, err := p.ProfileBlock("frame-compute", func(a *i8051.Asm) {
		a.MovDPTR(0x0200). // framebuffer
					MovRImm(0, 32). // 32 cells
					ClrA().
					Label("clear").
					MovxDPTRA().
					IncDPTR().
					DjnzR(0, "clear").
			// ball physics: a few arithmetic ops
			MovADir(0x30).
			AddAImm(1).
			CjneAImm(16, "nowrap").
			ClrA().
			Label("nowrap").
			MovDirA(0x30)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 32 cells × (MOVX 2 + INC DPTR 2 + DJNZ 2) plus setup: ~200 cycles.
	if m.Time < 100*sysc.Us || m.Time > 500*sysc.Us {
		t.Fatalf("frame cost %v implausible", m.Time)
	}
	var sb strings.Builder
	tab := calib.NewCostTable()
	tab.Put(m)
	tab.Report(&sb)
	if !strings.Contains(sb.String(), "frame-compute") {
		t.Fatal("report missing block")
	}
}
