package calib_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/i8051"
	"repro/internal/sysc"
)

// TestCalibratedAnnotationsDriveTheCoSimulation realizes the paper's
// future-work loop end to end: profile the application's basic block as
// 8051 firmware on the ISS, then run the RTOS-level co-simulation with the
// calibrated annotation instead of the estimate, and confirm the change is
// visible in the accounted execution time.
func TestCalibratedAnnotationsDriveTheCoSimulation(t *testing.T) {
	p := calib.NewProfiler()
	m, err := p.ProfileBlock("frame-compute", func(a *i8051.Asm) {
		// The frame routine as target code: clear a 32-byte framebuffer in
		// XRAM, advance the ball, bounce at the walls.
		a.MovDPTR(0x0200).
			MovRImm(0, 32).
			ClrA().
			Label("clear").
			MovxDPTRA().
			IncDPTR().
			DjnzR(0, "clear").
			MovADir(0x30).
			AddAImm(1).
			CjneAImm(16, "ok").
			ClrA().
			Label("ok").
			MovDirA(0x30)
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := calib.NewCostTable()
	tab.Put(m)

	run := func(frameCost core.Cost) sysc.Time {
		cfg := app.DefaultConfig()
		cfg.GUI = false
		cfg.KeyPeriod = 0
		cfg.FrameWork = frameCost
		a := app.Build(cfg)
		defer a.Shutdown()
		if err := a.Run(500 * sysc.Ms); err != nil {
			t.Fatal(err)
		}
		return a.K.API().LookupByName("T1.lcd").CET()
	}

	estimate := core.Cost{Time: 300 * sysc.Us} // the case study's guess
	calibrated := tab.CostOr("frame-compute", estimate)
	if calibrated.Time == estimate.Time {
		t.Fatal("calibration did not replace the estimate")
	}

	cetEst := run(estimate)
	cetCal := run(calibrated)

	// ~49 frames in 500 ms: the per-frame difference must appear in the
	// accounted CET with the expected sign and rough magnitude.
	frames := sysc.Time(49)
	wantDelta := frames * (calibrated.Time - estimate.Time)
	gotDelta := cetCal - cetEst
	if wantDelta > 0 != (gotDelta > 0) {
		t.Fatalf("delta sign wrong: want %v, got %v", wantDelta, gotDelta)
	}
	ratio := float64(gotDelta) / float64(wantDelta)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("calibrated delta %v vs expected %v (ratio %.2f)",
			gotDelta, wantDelta, ratio)
	}
}
