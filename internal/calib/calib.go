// Package calib implements the paper's stated future work: "By cross
// profiling or calibration against ISS or T-Engine emulation ... we can
// raise the accuracy of co-simulation, and create a virtual prototype of
// the application running on the synthesis platform."
//
// A Profiler executes the target-code realization of an application basic
// block on the i8051 instruction-set simulator, measures its machine
// cycles, and converts them into the ETM/EEM annotation (core.Cost) that
// the RTOS-level model then uses in SIM_Wait. A CostTable collects the
// calibrated annotations by block name, can be persisted as JSON, and
// reports the calibration error against previously estimated costs.
package calib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/i8051"
	"repro/internal/petri"
	"repro/internal/sysc"
)

// Profiler measures basic blocks on the ISS with a given platform timing
// and energy model.
type Profiler struct {
	// MachineCycle is the duration of one 8051 machine cycle (default 1 us
	// at 12 MHz).
	MachineCycle sysc.Time
	// EnergyPerCycle is the platform energy estimate per machine cycle.
	EnergyPerCycle petri.Energy
	// MaxInstructions bounds a profiled block (guards non-terminating
	// firmware; default 10M).
	MaxInstructions int
}

// NewProfiler returns a profiler with the case-study platform parameters.
func NewProfiler() *Profiler {
	return &Profiler{
		MachineCycle:    sysc.Us,
		EnergyPerCycle:  2 * petri.NanoJ,
		MaxInstructions: 10_000_000,
	}
}

// Measurement is the profile of one basic block.
type Measurement struct {
	Block        string    `json:"block"`
	Instructions uint64    `json:"instructions"`
	Cycles       uint64    `json:"cycles"`
	Time         sysc.Time `json:"time_ps"`
	Energy       float64   `json:"energy_j"`
}

// Cost converts the measurement into an ETM/EEM annotation.
func (m Measurement) Cost() core.Cost {
	return core.Cost{Time: m.Time, Energy: petri.Energy(m.Energy)}
}

// ProfileProgram runs an assembled firmware image until it halts and
// returns its measurement. The firmware must end with the halt idiom
// (Asm.Halt); the halt instruction itself is excluded from the count.
func (p *Profiler) ProfileProgram(block string, program []byte) (Measurement, error) {
	cpu := i8051.New(program)
	max := p.MaxInstructions
	if max <= 0 {
		max = 10_000_000
	}
	cpu.Run(max)
	if !cpu.Halted {
		return Measurement{}, fmt.Errorf("calib: block %q did not halt within %d instructions", block, max)
	}
	cycles := cpu.Cycles - 2 // exclude the final SJMP-self
	mc := p.MachineCycle
	if mc <= 0 {
		mc = sysc.Us
	}
	return Measurement{
		Block:        block,
		Instructions: cpu.Instrs - 1,
		Cycles:       cycles,
		Time:         sysc.Time(cycles) * mc,
		Energy:       (petri.Energy(cycles) * p.EnergyPerCycle).Joules(),
	}, nil
}

// ProfileBlock assembles and profiles a block built with the mini-assembler
// (the Halt is appended automatically).
func (p *Profiler) ProfileBlock(block string, build func(*i8051.Asm)) (Measurement, error) {
	a := i8051.NewAsm()
	build(a)
	a.Halt()
	return p.ProfileProgram(block, a.Assemble())
}

// CostTable is a calibrated annotation store keyed by block name.
type CostTable struct {
	entries map[string]Measurement
}

// NewCostTable returns an empty table.
func NewCostTable() *CostTable {
	return &CostTable{entries: map[string]Measurement{}}
}

// Put stores a measurement.
func (t *CostTable) Put(m Measurement) { t.entries[m.Block] = m }

// Cost returns the calibrated annotation for a block; ok is false when the
// block was never profiled.
func (t *CostTable) Cost(block string) (core.Cost, bool) {
	m, ok := t.entries[block]
	return m.Cost(), ok
}

// CostOr returns the calibrated annotation or the given estimate when the
// block is uncalibrated — the migration path from estimated to calibrated
// models the paper describes.
func (t *CostTable) CostOr(block string, estimate core.Cost) core.Cost {
	if c, ok := t.Cost(block); ok {
		return c
	}
	return estimate
}

// Blocks returns the profiled block names, sorted.
func (t *CostTable) Blocks() []string {
	out := make([]string, 0, len(t.entries))
	for b := range t.entries {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of calibrated blocks.
func (t *CostTable) Len() int { return len(t.entries) }

// Save writes the table as JSON.
func (t *CostTable) Save(w io.Writer) error {
	var ms []Measurement
	for _, b := range t.Blocks() {
		ms = append(ms, t.entries[b])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}

// Load reads a table previously written by Save.
func Load(r io.Reader) (*CostTable, error) {
	var ms []Measurement
	if err := json.NewDecoder(r).Decode(&ms); err != nil {
		return nil, fmt.Errorf("calib: load: %w", err)
	}
	t := NewCostTable()
	for _, m := range ms {
		t.Put(m)
	}
	return t, nil
}

// ErrorReport compares estimated annotations against the calibrated table
// and returns per-block relative time error: (estimate-measured)/measured.
func (t *CostTable) ErrorReport(estimates map[string]core.Cost) map[string]float64 {
	out := map[string]float64{}
	for block, est := range estimates {
		m, ok := t.entries[block]
		if !ok || m.Time == 0 {
			continue
		}
		out[block] = float64(est.Time-m.Time) / float64(m.Time)
	}
	return out
}

// Report writes a readable calibration summary.
func (t *CostTable) Report(w io.Writer) {
	fmt.Fprintf(w, "%-20s %12s %10s %14s %14s\n",
		"BLOCK", "INSTRS", "CYCLES", "ETM", "EEM")
	for _, b := range t.Blocks() {
		m := t.entries[b]
		fmt.Fprintf(w, "%-20s %12d %10d %14s %14s\n",
			m.Block, m.Instructions, m.Cycles, m.Time, petri.Energy(m.Energy))
	}
}
