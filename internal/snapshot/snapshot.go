// Package snapshot captures and restores complete simulator state at
// sysc quiescent points — the tentpole of warm-start sweep forking.
//
// Two forms exist:
//
//   - An in-memory checkpoint (State): a deep copy of every mutable cell
//     of a live System, restorable only into the same construction
//     (RestoreInPlace). This is the warm-fork fast path: simulate a
//     shared prefix once, then restore + reseed per variant.
//
//   - A versioned binary snapshot ([]byte): a deterministic flattened
//     encoding with the producing Spec embedded. Restoring from bytes is
//     replay-based — the caller rebuilds the system from the embedded
//     Spec, runs it to the capture time, and Verify re-captures and
//     byte-compares, so a successful restore is self-checking.
//
// The snapshot envelope is the continuation T-THREAD engine: goroutine
// engines park real stacks that cannot be copied, so Capture refuses
// them (ErrUnsnapshottable) and callers fall back to a cold run. The
// same applies to kernel object classes whose state roots in caller
// memory (mailboxes, memory pools, rendezvous).
package snapshot

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/run/opts"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Typed refusal errors. All are errors.Is-able sentinels; wrapped forms
// carry detail.
var (
	// ErrUnsnapshottable: the configuration is outside the snapshot
	// envelope (goroutine engine, unsupported kernel objects, a goroutine
	// thread mid-body). Callers fall back to cold execution.
	ErrUnsnapshottable = errors.New("snapshot: configuration cannot be snapshotted")
	// ErrIncompatible: the snapshot is from a different format version or
	// engine than the restoring side.
	ErrIncompatible = errors.New("snapshot: incompatible snapshot")
	// ErrCorrupt: the snapshot bytes fail structural checks, or the
	// replayed system does not reproduce them.
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
)

// System bundles the live pieces of one constructed synthetic run. Sim,
// Kernel and Inst are required; the observer fields are captured only
// when non-nil so sweeps without artifacts pay nothing.
type System struct {
	Sim    *sysc.Simulator
	Kernel *tkernel.Kernel
	Inst   *workload.Instance

	Gantt    *trace.Gantt
	Perfetto *trace.Perfetto
	TraceBuf *bytes.Buffer // the buffer Perfetto streams into
	Metrics  *metrics.Collector
}

// State is an in-memory checkpoint: opaque, tied to the construction it
// was captured from.
type State struct {
	At sysc.Time

	sim  *sysc.SimState
	api  *core.APIState
	kern *tkernel.KernelState
	inst *workload.InstanceState

	hasGantt bool
	gantt    trace.GanttState
	hasPf    bool
	pf       trace.PerfettoState
	traceLog []byte
	hasColl  bool
	coll     metrics.CollectorState
}

// Capture deep-copies the system's complete dynamic state. The simulator
// must be quiescent (between Start calls).
func Capture(sys System) (*State, error) {
	if sys.Sim == nil || sys.Kernel == nil || sys.Inst == nil {
		return nil, fmt.Errorf("snapshot: incomplete system (sim/kernel/instance required)")
	}
	if eng := sys.Kernel.Engine(); eng != opts.EngineContinuation {
		return nil, fmt.Errorf("%w: engine %q (goroutine stacks cannot be copied)", ErrUnsnapshottable, eng)
	}
	st := &State{At: sys.Sim.Now()}
	var err error
	if st.kern, err = sys.Kernel.SaveState(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsnapshottable, err)
	}
	if st.sim, err = sys.Sim.SaveState(); err != nil {
		return nil, err
	}
	if st.api, err = sys.Kernel.API().SaveState(); err != nil {
		return nil, err
	}
	st.inst = sys.Inst.SaveState()
	if sys.Gantt != nil {
		st.hasGantt = true
		st.gantt = sys.Gantt.SaveState()
	}
	if sys.Perfetto != nil {
		if err := sys.Perfetto.Flush(); err != nil {
			return nil, fmt.Errorf("snapshot: trace flush: %w", err)
		}
		st.hasPf = true
		st.pf = sys.Perfetto.SaveState()
		if sys.TraceBuf != nil {
			st.traceLog = append([]byte(nil), sys.TraceBuf.Bytes()...)
		}
	}
	if sys.Metrics != nil {
		st.hasColl = true
		st.coll = sys.Metrics.SaveState()
	}
	return st, nil
}

// RestoreInPlace writes a captured state back into the same construction
// it came from, leaving the system ready to run from State.At. Processes
// spawned after the capture are neutralized; a goroutine thread that
// moved past its captured park point refuses the restore
// (*sysc.ErrThreadMoved), leaving the system untouched.
func RestoreInPlace(sys System, st *State) error {
	if st == nil {
		return fmt.Errorf("snapshot: nil state")
	}
	// The sysc layer verifies thread pins before mutating anything, so a
	// refusal here leaves the system intact.
	if err := sys.Sim.LoadState(st.sim); err != nil {
		return err
	}
	if err := sys.Kernel.API().LoadState(st.api); err != nil {
		return err
	}
	if err := sys.Kernel.LoadState(st.kern); err != nil {
		return err
	}
	if err := sys.Inst.LoadState(st.inst); err != nil {
		return err
	}
	if st.hasGantt && sys.Gantt != nil {
		sys.Gantt.LoadState(st.gantt)
	}
	if st.hasPf && sys.Perfetto != nil {
		if sys.TraceBuf != nil {
			sys.TraceBuf.Reset()
			sys.TraceBuf.Write(st.traceLog)
		}
		sys.Perfetto.LoadState(st.pf)
	}
	if st.hasColl && sys.Metrics != nil {
		sys.Metrics.LoadState(st.coll)
	}
	return nil
}

// Fork restores the checkpoint and reseeds the workload's arrival
// streams from seed — one warm-start sweep variant. The byte-equality
// contract: a cold run that reaches State.At and calls Inst.Reseed(seed)
// there produces identical artifacts to Fork + run.
func Fork(sys System, st *State, seed uint64) error {
	if err := RestoreInPlace(sys, st); err != nil {
		return err
	}
	sys.Inst.Reseed(seed)
	return nil
}
