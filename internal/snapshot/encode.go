package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tkernel"
)

// Binary snapshot format, version 1. Everything is little-endian with
// fixed-width integers; strings and byte blobs are u32 length + bytes.
// All pointers are flattened to registry indices, all maps are emitted
// in sorted-key order (the Save layers already do this), so encoding is
// a pure function of the captured state: two captures of byte-identical
// simulations encode byte-identically, which is what makes replay-based
// Verify a real integrity check.
//
// Layout: header (magic, version, engine, capture time, producer Spec
// JSON), then the sysc section, the SIM_API section, the kernel section
// and the workload section. Observer state is not encoded — a restore
// from bytes replays construction, which regenerates observer content
// deterministically. Closures (wait cancellations, timer callbacks) are
// likewise elided: replay re-creates them, and their guard counters ARE
// encoded.

var magic = [8]byte{'R', 'T', 'K', 'S', 'N', 'A', 'P', '1'}

// Version is the binary snapshot format version.
const Version uint32 = 1

// relNil marks a nil release code on the wire (release codes are
// otherwise T-Kernel ER values, all small negatives).
const relNil = math.MinInt32

// Meta is the snapshot header: what produced it and where it stops.
type Meta struct {
	Engine string
	At     int64 // capture time, sysc picoseconds
	Spec   []byte // canonical producer Spec JSON, for replay
}

type enc struct{ b bytes.Buffer }

func (e *enc) u8(v uint8)   { e.b.WriteByte(v) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) u32(v uint32) {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], v)
	e.b.Write(x[:])
}
func (e *enc) u64(v uint64) {
	var x [8]byte
	binary.LittleEndian.PutUint64(x[:], v)
	e.b.Write(x[:])
}
func (e *enc) i32(v int32)     { e.u32(uint32(v)) }
func (e *enc) i64(v int64)     { e.u64(uint64(v)) }
func (e *enc) f64(v float64)   { e.u64(math.Float64bits(v)) }
func (e *enc) blob(v []byte)   { e.u32(uint32(len(v))); e.b.Write(v) }
func (e *enc) str(v string)    { e.u32(uint32(len(v))); e.b.WriteString(v) }
func (e *enc) i32s(v []int32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i32(x)
	}
}
func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i32(int32(x))
	}
}

// relCode flattens a task release code: nil or a T-Kernel ER singleton.
func relCode(err error) (int32, error) {
	if err == nil {
		return relNil, nil
	}
	if er, ok := err.(tkernel.ER); ok {
		return int32(er), nil
	}
	return 0, fmt.Errorf("snapshot: release code %v is not a T-Kernel ER", err)
}

// Encode flattens an in-memory checkpoint into the versioned binary
// form. sys must be the system st was captured from (it resolves
// delivery pointers to scratch indices).
func Encode(sys System, st *State, meta Meta) ([]byte, error) {
	e := &enc{}
	e.b.Write(magic[:])
	e.u32(Version)
	e.str(meta.Engine)
	e.i64(int64(st.At))
	e.blob(meta.Spec)

	// sysc section.
	s := st.sim
	e.i64(int64(s.Now))
	e.u64(s.DeltaCount)
	e.u64(s.HeapSeq)
	e.u32(uint32(len(s.Heap)))
	for _, h := range s.Heap {
		e.i64(int64(h.When))
		e.u64(h.Seq)
		e.i32(h.Ev)
	}
	e.u32(uint32(len(s.Events)))
	for _, ev := range s.Events {
		e.i32s(ev.Waiters)
		e.i32s(ev.CWaiters)
	}
	e.u32(uint32(len(s.Threads)))
	for _, t := range s.Threads {
		e.boolean(t.Done)
		e.i32s(t.Waiting)
	}
	e.u32(uint32(len(s.Coros)))
	for _, c := range s.Coros {
		e.i32s(c.Waiting)
		e.i32(c.TrigEv)
		e.boolean(c.Armed)
		e.boolean(c.Done)
	}

	// SIM_API section.
	a := st.api
	e.u32(uint32(len(a.Threads)))
	for i := range a.Threads {
		t := &a.Threads[i]
		e.i32(int32(t.ID))
		e.i32(int32(t.Priority))
		e.i32(int32(t.BasePriority))
		e.u8(uint8(t.State))
		e.i32(int32(t.SuspCount))
		e.boolean(t.Terminated)
		e.str(t.WaitObj)
		rel, err := relCode(t.RelCode)
		if err != nil {
			return nil, err
		}
		e.i32(rel)
		e.i32(int32(t.ActCount))
		rel, err = relCode(t.PendingRel)
		if err != nil {
			return nil, err
		}
		e.i32(rel)
		e.boolean(t.HasPendingRel)
		e.boolean(t.CrInBody)
		e.u8(t.Consume.Phase)
		e.i64(int64(t.Consume.Cost.Time))
		e.f64(float64(t.Consume.Cost.Energy))
		e.i32(int32(t.Consume.Ctx))
		e.str(t.Consume.Note)
		e.i64(int64(t.Consume.Total))
		e.i64(int64(t.Consume.Remaining))
		e.i64(int64(t.Consume.Start))
		e.u8(t.Block)
		e.ints(t.Marking)
		e.i32(int32(t.Seq.N))
		e.ints(t.Seq.Counts)
		e.i64(int64(t.Seq.Total.Time))
		e.f64(float64(t.Seq.Total.Energy))
		e.i32(int32(t.Acc.Cycles))
		e.i64(int64(t.Acc.CET))
		e.f64(float64(t.Acc.CEE))
		e.ints(t.LastCV)
	}
	e.ints(a.Ready)
	e.i32(int32(a.Current))
	e.ints(a.IStack)
	e.i32(int32(a.DispatchLocked))
	e.boolean(a.PendingDispatch)
	e.i64(int64(a.Busy))
	e.u64(a.CtxSwitches)
	e.u64(a.Preemptions)
	e.u64(a.Interrupts)
	e.i32(int32(a.MaxIStack))

	// Kernel section.
	k := st.kern
	e.u32(uint32(len(k.Tasks)))
	for i := range k.Tasks {
		t := &k.Tasks[i]
		e.i32(int32(t.ID))
		e.i32(int32(t.WupCount))
		e.i32(int32(t.WaitSeq))
		e.boolean(t.Cancel != nil)
		e.boolean(t.AwTask)
		e.str(t.AwObj)
		e.u32(uint32(len(t.Owned)))
		for _, id := range t.Owned {
			e.i32(int32(id))
		}
		e.boolean(t.HasMachine)
		e.i32(int32(t.PC))
		e.u8(t.SP)
		e.boolean(t.AwArmed)
	}
	e.u32(uint32(len(k.Sems)))
	for i := range k.Sems {
		sm := &k.Sems[i]
		e.i32(int32(sm.ID))
		e.i32(int32(sm.Count))
		e.u32(uint32(len(sm.Wait)))
		for j := range sm.Wait {
			e.i32(int32(sm.Wait[j]))
			e.i32(int32(sm.Need[j]))
		}
	}
	e.u32(uint32(len(k.Flags)))
	for i := range k.Flags {
		f := &k.Flags[i]
		e.i32(int32(f.ID))
		e.u32(f.Pattern)
		e.u32(uint32(len(f.Wait)))
		for j := range f.Wait {
			e.i32(int32(f.Wait[j]))
			e.u32(f.Waiptn[j])
			e.u32(uint32(f.Mode[j]))
			idx := int32(-1)
			if p := f.Relptn[j]; p != nil {
				n := sys.Inst.ScratchPtnIndex(p)
				if n < 0 {
					return nil, fmt.Errorf("snapshot: flag %d waiter %d delivery pointer is not a task scratch slot", f.ID, j)
				}
				idx = int32(n)
			}
			e.i32(idx)
		}
	}
	e.u32(uint32(len(k.Mtxs)))
	for i := range k.Mtxs {
		m := &k.Mtxs[i]
		e.i32(int32(m.ID))
		e.boolean(m.HasOwner)
		e.i32(int32(m.Owner))
		e.u32(uint32(len(m.Wait)))
		for _, id := range m.Wait {
			e.i32(int32(id))
		}
	}
	e.u32(uint32(len(k.Mbfs)))
	for i := range k.Mbfs {
		b := &k.Mbfs[i]
		e.i32(int32(b.ID))
		e.i32(int32(b.Used))
		e.u32(uint32(len(b.Msgs)))
		for _, msg := range b.Msgs {
			e.blob(msg)
		}
		e.u32(uint32(len(b.SendQ)))
		for j := range b.SendQ {
			e.i32(int32(b.SendQ[j]))
			e.blob(b.SendMsg[j])
		}
		e.u32(uint32(len(b.RecvQ)))
		for j := range b.RecvQ {
			e.i32(int32(b.RecvQ[j]))
			idx := int32(-1)
			if p := b.RecvDst[j]; p != nil {
				n := sys.Inst.ScratchRcvIndex(p)
				if n < 0 {
					return nil, fmt.Errorf("snapshot: mbf %d receiver %d delivery pointer is not a task scratch slot", b.ID, j)
				}
				idx = int32(n)
			}
			e.i32(idx)
		}
	}
	e.u32(uint32(len(k.Cycs)))
	for i := range k.Cycs {
		c := &k.Cycs[i]
		e.i32(int32(c.ID))
		e.boolean(c.Active)
		e.i32(int32(c.Fires))
		e.i32(int32(c.Overruns))
		e.i32(int32(c.Gen))
		e.boolean(c.HasMachine)
		e.i32(int32(c.PC))
		e.u8(c.SP)
	}
	e.u32(uint32(len(k.Alms)))
	for i := range k.Alms {
		al := &k.Alms[i]
		e.i32(int32(al.ID))
		e.boolean(al.Active)
		e.i32(int32(al.Fires))
		e.i32(int32(al.Gen))
		e.boolean(al.HasMachine)
		e.i32(int32(al.PC))
		e.u8(al.SP)
	}
	e.u32(uint32(len(k.Isrs)))
	for i := range k.Isrs {
		is := &k.Isrs[i]
		e.i32(int32(is.IntNo))
		e.i32(int32(is.Fires))
		e.i32(int32(is.Missed))
		e.i32(int32(is.Dropped))
		e.boolean(is.HasMachine)
		e.i32(int32(is.PC))
		e.u8(is.SP)
	}
	timer := k.TimerEntries()
	e.u32(uint32(len(timer)))
	for _, it := range timer {
		e.i64(int64(it.When))
		e.u64(it.Seq)
	}
	e.u64(k.TimerSeq)
	e.i64(int64(k.SysBase))
	e.u64(k.Ticks)
	e.boolean(k.DisDsp)

	// Workload section.
	in := st.inst
	e.u64(in.Activations)
	e.u32(uint32(len(in.Scratch)))
	for i := range in.Scratch {
		sc := &in.Scratch[i]
		e.i32(int32(sc.Er))
		e.u32(sc.Ptn)
		e.blob(sc.Rcv)
	}
	e.u32(uint32(len(in.Devices)))
	for i := range in.Devices {
		d := &in.Devices[i]
		e.u64(d.RNG)
		e.boolean(d.Started)
	}
	return e.b.Bytes(), nil
}

// DecodeMeta parses and validates a snapshot header. It distinguishes
// structural damage (ErrCorrupt) from honest version/format drift
// (ErrIncompatible).
func DecodeMeta(data []byte) (Meta, error) {
	if len(data) < len(magic)+4 {
		return Meta{}, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return Meta{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(magic)
	ver := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if ver != Version {
		return Meta{}, fmt.Errorf("%w: format version %d (this build reads %d)", ErrIncompatible, ver, Version)
	}
	engine, off, err := readStr(data, off)
	if err != nil {
		return Meta{}, err
	}
	if off+8 > len(data) {
		return Meta{}, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	at := int64(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	spec, _, err := readBlob(data, off)
	if err != nil {
		return Meta{}, err
	}
	return Meta{Engine: engine, At: at, Spec: spec}, nil
}

func readBlob(data []byte, off int) ([]byte, int, error) {
	if off+4 > len(data) {
		return nil, 0, fmt.Errorf("%w: truncated length", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if n < 0 || off+n > len(data) {
		return nil, 0, fmt.Errorf("%w: blob overruns snapshot (%d bytes at %d)", ErrCorrupt, n, off)
	}
	return data[off : off+n : off+n], off + n, nil
}

func readStr(data []byte, off int) (string, int, error) {
	b, off, err := readBlob(data, off)
	return string(b), off, err
}

// Verify checks that sys — expected to have been replayed from the
// snapshot's embedded Spec to its capture time — reproduces the snapshot
// bit-for-bit. A mismatch means the bytes do not describe a reachable
// state of that Spec: ErrCorrupt.
func Verify(sys System, data []byte) error {
	meta, err := DecodeMeta(data)
	if err != nil {
		return err
	}
	if eng := sys.Kernel.Engine(); eng != meta.Engine {
		return fmt.Errorf("%w: snapshot engine %q, system runs %q", ErrIncompatible, meta.Engine, eng)
	}
	st, err := Capture(sys)
	if err != nil {
		return err
	}
	if int64(st.At) != meta.At {
		return fmt.Errorf("%w: replay stopped at %d ps, snapshot captured at %d ps", ErrCorrupt, st.At, meta.At)
	}
	got, err := Encode(sys, st, meta)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("%w: replayed state does not reproduce the snapshot bytes", ErrCorrupt)
	}
	return nil
}
