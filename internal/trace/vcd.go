package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sysc"
)

// VCD is a value-change dump recorder in the spirit of the paper's waveform
// viewer (Figure 4): H/W signals and variables are probed by name and every
// change is logged with its timestamp. Render writes an IEEE-1364-style VCD
// file; Table prints a human-readable change log.
type VCD struct {
	Timescale sysc.Time // time per VCD tick (default 1 us)
	signals   []*vcdSignal
	byName    map[string]*vcdSignal
	changes   []vcdChange
	enabled   bool
}

type vcdSignal struct {
	name  string
	id    string // VCD identifier code
	width int
	last  uint64
	init  uint64
	seen  bool
}

type vcdChange struct {
	t   sysc.Time
	sig *vcdSignal
	val uint64
}

// NewVCD returns an enabled recorder with a 1 us timescale.
func NewVCD() *VCD {
	return &VCD{Timescale: sysc.Us, byName: map[string]*vcdSignal{}, enabled: true}
}

// SetEnabled turns change recording on or off.
func (v *VCD) SetEnabled(on bool) { v.enabled = on }

// Probe registers a signal with the given bit width (1 for wires).
func (v *VCD) Probe(name string, width int) {
	if _, dup := v.byName[name]; dup {
		return
	}
	if width <= 0 {
		width = 1
	}
	s := &vcdSignal{name: name, id: vcdID(len(v.signals)), width: width}
	v.signals = append(v.signals, s)
	v.byName[name] = s
}

// vcdID converts an index into a short printable identifier code.
func vcdID(i int) string {
	const first, last = 33, 126 // printable ASCII
	n := last - first + 1
	id := ""
	for {
		id += string(rune(first + i%n))
		i /= n
		if i == 0 {
			return id
		}
	}
}

// Change records a new value for a probed signal at time t. Unknown signals
// are auto-probed with width 64. Unchanged values are ignored.
func (v *VCD) Change(name string, t sysc.Time, val uint64) {
	if !v.enabled {
		return
	}
	s, ok := v.byName[name]
	if !ok {
		v.Probe(name, 64)
		s = v.byName[name]
	}
	if s.seen && s.last == val {
		return
	}
	s.seen = true
	s.last = val
	v.changes = append(v.changes, vcdChange{t: t, sig: s, val: val})
}

// ChangeBool records a boolean signal value.
func (v *VCD) ChangeBool(name string, t sysc.Time, val bool) {
	x := uint64(0)
	if val {
		x = 1
	}
	v.Change(name, t, x)
}

// Len returns the number of recorded changes.
func (v *VCD) Len() int { return len(v.changes) }

// Render writes the dump in VCD format.
func (v *VCD) Render(w io.Writer) {
	fmt.Fprintf(w, "$timescale %s $end\n", v.Timescale)
	fmt.Fprintf(w, "$scope module rtkspec $end\n")
	for _, s := range v.signals {
		fmt.Fprintf(w, "$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")
	changes := make([]vcdChange, len(v.changes))
	copy(changes, v.changes)
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].t < changes[j].t })
	var cur sysc.Time = -1
	for _, c := range changes {
		if c.t != cur {
			cur = c.t
			fmt.Fprintf(w, "#%d\n", int64(cur/v.Timescale))
		}
		if c.sig.width == 1 {
			fmt.Fprintf(w, "%d%s\n", c.val&1, c.sig.id)
		} else {
			fmt.Fprintf(w, "b%b %s\n", c.val, c.sig.id)
		}
	}
}

// Table writes a readable change log: one line per change.
func (v *VCD) Table(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-24s %s\n", "TIME", "SIGNAL", "VALUE")
	for _, c := range v.changes {
		fmt.Fprintf(w, "%-14s %-24s 0x%x\n", c.t, c.sig.name, c.val)
	}
}
