package trace

import "repro/internal/event"

// AttachGantt subscribes the Gantt recorder to the event bus: every charged
// run slice (KindRunSlice) becomes one trace segment. This replaces the old
// direct coupling between the core library and the recorder — the Gantt is
// now just one subscriber among many. The returned subscription detaches it.
func AttachGantt(b *event.Bus, g *Gantt) *event.Subscription {
	return b.Subscribe(func(e event.Event) {
		g.Add(Segment{
			Thread: e.Thread,
			Start:  e.Start,
			End:    e.Time,
			Ctx:    Context(e.Ctx),
			Energy: e.Energy,
			Note:   e.Obj,
		})
	}, event.KindRunSlice)
}
