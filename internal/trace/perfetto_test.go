package trace_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/run/opts"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// golden covers one record of every phase the exporter emits, from a
// synthetic event sequence with hand-checkable timestamps.
func TestPerfettoGolden(t *testing.T) {
	b := event.NewBus()
	var buf bytes.Buffer
	p := trace.AttachPerfetto(b, &buf)

	b.Publish(event.Event{Kind: event.KindDispatch, Thread: "worker", Time: 1 * sysc.Ms})
	b.Publish(event.Event{Kind: event.KindRunSlice, Thread: "worker", Ctx: 1,
		Start: 1 * sysc.Ms, Time: 4 * sysc.Ms, Energy: 2 * petri.MilliJ, Obj: "step"})
	b.Publish(event.Event{Kind: event.KindSvcExit, Thread: "worker", Time: 4 * sysc.Ms,
		Obj: "tk_sig_sem", Code: int(tkernel.ENOEXS)})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	want := strings.TrimLeft(fmt.Sprintf(`[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"rtk-spec-tron"}},
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"kernel"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"worker"}},
{"name":"dispatch","cat":"dispatch","ph":"i","ts":1000,"pid":1,"tid":1,"s":"t"},
{"name":"step","cat":"task","ph":"X","ts":1000,"dur":3000,"pid":1,"tid":1,"args":{"energy_j":0.002}},
{"name":"tk_sig_sem","cat":"svc-exit","ph":"i","ts":4000,"pid":1,"tid":1,"s":"t","args":{"er":%d}}
]
`, int(tkernel.ENOEXS)), "\n")
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
	if n, err := trace.ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil || n != 6 {
		t.Fatalf("validate: n=%d err=%v", n, err)
	}
}

// traceRun boots a seeded two-task kernel scenario with a Perfetto exporter
// attached and returns the trace bytes.
func traceRun(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	bus := event.NewBus()
	p := trace.AttachPerfetto(bus, &buf)
	k := tkernel.New(sim, tkernel.Config{CommonOptions: opts.CommonOptions{Bus: bus}, Costs: tkernel.ZeroCosts()})
	k.Boot(func(k *tkernel.Kernel) {
		work := core.Cost{Time: 10 * sysc.Ms, Energy: 1 * petri.MilliJ}
		sem, _ := k.CreSem("gate", tkernel.TaTFIFO, 0, 1)
		hi, _ := k.CreTsk("hi", 5, func(task *tkernel.Task) {
			_ = k.WaiSem(sem, 1, tkernel.TmoFevr)
			k.Work(work, "hi-work")
		})
		lo, _ := k.CreTsk("lo", 20, func(task *tkernel.Task) {
			k.Work(work, "lo-work")
			_ = k.SigSem(sem, 1)
			k.Work(work, "lo-tail")
		})
		_ = k.StaTsk(hi)
		_ = k.StaTsk(lo)
	})
	if err := sim.Start(200 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Events() == 0 {
		t.Fatal("no events recorded")
	}
	return buf.Bytes()
}

// TestPerfettoKernelTraceValidates runs a real kernel scenario and
// schema-checks the result.
func TestPerfettoKernelTraceValidates(t *testing.T) {
	out := traceRun(t)
	n, err := trace.ValidatePerfetto(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("record %d: %v", n, err)
	}
	if n < 10 {
		t.Fatalf("suspiciously small trace: %d records", n)
	}
}

// TestPerfettoDeterministic asserts byte-identical traces across two runs of
// the same scenario.
func TestPerfettoDeterministic(t *testing.T) {
	one, two := traceRun(t), traceRun(t)
	if !bytes.Equal(one, two) {
		t.Fatal("traces differ across identical runs")
	}
}
