package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/petri"
	"repro/internal/sysc"
)

func seg(th string, a, b sysc.Time, ctx Context) Segment {
	return Segment{Thread: th, Start: a, End: b, Ctx: ctx}
}

func TestGanttAddAndThreads(t *testing.T) {
	g := NewGantt()
	g.Add(seg("t1", 0, 5*sysc.Ms, CtxTask))
	g.Add(seg("t2", 5*sysc.Ms, 7*sysc.Ms, CtxHandler))
	g.Add(seg("t1", 7*sysc.Ms, 9*sysc.Ms, CtxTask))
	if got := g.Threads(); len(got) != 2 || got[0] != "t1" || got[1] != "t2" {
		t.Fatalf("threads = %v", got)
	}
	if len(g.Segments) != 3 {
		t.Fatalf("segments = %d", len(g.Segments))
	}
}

func TestGanttRejectsInvalidSegments(t *testing.T) {
	g := NewGantt()
	g.Add(seg("x", 5*sysc.Ms, 3*sysc.Ms, CtxTask)) // end < start
	g.Add(seg("x", 5*sysc.Ms, 5*sysc.Ms, CtxTask)) // zero with no note
	if len(g.Segments) != 0 {
		t.Fatalf("invalid segments kept: %v", g.Segments)
	}
	g.Add(Segment{Thread: "x", Start: sysc.Ms, End: sysc.Ms, Note: "svc"})
	if len(g.Segments) != 1 {
		t.Fatal("zero-length noted segment dropped")
	}
}

func TestGanttDisabledAndLimit(t *testing.T) {
	g := NewGantt()
	g.SetEnabled(false)
	g.Add(seg("x", 0, sysc.Ms, CtxTask))
	if len(g.Segments) != 0 {
		t.Fatal("disabled recorder recorded")
	}
	g.SetEnabled(true)
	g.SetLimit(2)
	for i := 0; i < 5; i++ {
		g.Add(seg("x", sysc.Time(i)*sysc.Ms, sysc.Time(i+1)*sysc.Ms, CtxTask))
	}
	if len(g.Segments) != 2 {
		t.Fatalf("limit ignored: %d", len(g.Segments))
	}
}

func TestGanttBusyTimeAndBreakdown(t *testing.T) {
	g := NewGantt()
	g.Add(seg("t1", 0, 5*sysc.Ms, CtxTask))
	g.Add(seg("t1", 5*sysc.Ms, 6*sysc.Ms, CtxService))
	g.Add(seg("t2", 6*sysc.Ms, 8*sysc.Ms, CtxHandler))
	busy := g.BusyTime()
	if busy["t1"] != 6*sysc.Ms || busy["t2"] != 2*sysc.Ms {
		t.Fatalf("busy = %v", busy)
	}
	bd := g.ContextBreakdown("t1")
	if bd[CtxTask] != 5*sysc.Ms || bd[CtxService] != sysc.Ms {
		t.Fatalf("breakdown = %v", bd)
	}
}

func TestGanttWindow(t *testing.T) {
	g := NewGantt()
	g.Add(seg("a", 0, 10*sysc.Ms, CtxTask))
	g.Add(seg("b", 20*sysc.Ms, 30*sysc.Ms, CtxTask))
	w := g.Window(5*sysc.Ms, 15*sysc.Ms)
	if len(w) != 1 || w[0].Thread != "a" {
		t.Fatalf("window = %v", w)
	}
}

func TestGanttOverlapDetection(t *testing.T) {
	g := NewGantt()
	g.Add(seg("a", 0, 10*sysc.Ms, CtxTask))
	g.Add(seg("b", 5*sysc.Ms, 8*sysc.Ms, CtxTask))
	if _, _, overlap := g.CheckNoOverlap(); !overlap {
		t.Fatal("overlap not detected")
	}
	g.Reset()
	g.Add(seg("a", 0, 5*sysc.Ms, CtxTask))
	g.Add(seg("b", 5*sysc.Ms, 8*sysc.Ms, CtxTask))
	if _, _, overlap := g.CheckNoOverlap(); overlap {
		t.Fatal("adjacent segments flagged")
	}
}

func TestGanttRenderPatterns(t *testing.T) {
	g := NewGantt()
	g.Add(seg("task", 0, 10*sysc.Ms, CtxTask))
	g.Add(seg("isr", 10*sysc.Ms, 20*sysc.Ms, CtxHandler))
	g.Add(seg("io", 20*sysc.Ms, 30*sysc.Ms, CtxBFM))
	var b strings.Builder
	g.Render(&b, 0, 30*sysc.Ms, 30)
	out := b.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "!") || !strings.Contains(out, "%") {
		t.Fatalf("patterns missing:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Fatal("legend missing")
	}
	if g.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestGanttSummary(t *testing.T) {
	g := NewGantt()
	g.Add(Segment{Thread: "t1", Start: 0, End: 2 * sysc.Ms, Ctx: CtxTask,
		Energy: 3 * petri.MilliJ})
	var b strings.Builder
	g.Summary(&b)
	if !strings.Contains(b.String(), "t1") || !strings.Contains(b.String(), "ENERGY") {
		t.Fatalf("summary:\n%s", b.String())
	}
}

func TestContextStrings(t *testing.T) {
	for ctx, want := range map[Context]string{
		CtxStartup: "startup", CtxTask: "task", CtxService: "service",
		CtxHandler: "handler", CtxBFM: "bfm", CtxIdle: "idle",
	} {
		if ctx.String() != want {
			t.Errorf("%d -> %q", ctx, ctx.String())
		}
	}
}

// Property: BusyTime equals the sum of durations per thread for arbitrary
// non-overlapping segment sets.
func TestPropertyBusyTimeSum(t *testing.T) {
	f := func(durs []uint8) bool {
		g := NewGantt()
		var cursor sysc.Time
		var want sysc.Time
		for _, d := range durs {
			dur := sysc.Time(d%50+1) * sysc.Us
			g.Add(seg("t", cursor, cursor+dur, CtxTask))
			cursor += dur + sysc.Us
			want += dur
		}
		if _, _, overlap := g.CheckNoOverlap(); overlap {
			return false
		}
		return g.BusyTime()["t"] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVCDRenderFormat(t *testing.T) {
	v := NewVCD()
	v.Probe("clk", 1)
	v.Probe("bus", 8)
	v.ChangeBool("clk", 0, true)
	v.Change("bus", sysc.Us, 0xAB)
	v.ChangeBool("clk", 2*sysc.Us, false)
	v.Change("bus", 2*sysc.Us, 0xAB) // unchanged: ignored
	if v.Len() != 3 {
		t.Fatalf("changes = %d", v.Len())
	}
	var b strings.Builder
	v.Render(&b)
	out := b.String()
	for _, want := range []string{"$timescale", "$var wire 1", "$var wire 8",
		"$enddefinitions", "#0", "#1", "#2", "b10101011"} {
		if !strings.Contains(out, want) {
			t.Errorf("vcd missing %q:\n%s", want, out)
		}
	}
}

func TestVCDAutoProbeAndTable(t *testing.T) {
	v := NewVCD()
	v.Change("auto", 0, 7)
	var b strings.Builder
	v.Table(&b)
	if !strings.Contains(b.String(), "auto") || !strings.Contains(b.String(), "0x7") {
		t.Fatalf("table:\n%s", b.String())
	}
}

func TestVCDDisabled(t *testing.T) {
	v := NewVCD()
	v.SetEnabled(false)
	v.Change("x", 0, 1)
	if v.Len() != 0 {
		t.Fatal("disabled recorder recorded")
	}
}

func TestVCDIDGeneration(t *testing.T) {
	ids := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if ids[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		ids[id] = true
	}
}
