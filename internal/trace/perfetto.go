package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/sysc"
)

// Perfetto streams kernel events into the Chrome trace-event JSON format
// (the "JSON Array Format"), which ui.perfetto.dev and chrome://tracing load
// directly. Charged run slices become complete ("X") events with durations;
// kernel dynamics (dispatch, preemption, interrupts, service calls, timer
// fires...) become instant ("i") events on the owning thread's row, or on a
// synthetic "kernel" row when no thread is involved.
//
// The exporter writes incrementally — each event is encoded and flushed to
// the underlying writer as it is published, so arbitrarily long runs never
// buffer the whole trace in memory. Output is deterministic: records are
// emitted in publish order with fixed field order, so two runs of the same
// seeded model produce byte-identical files.
type Perfetto struct {
	w       *bufio.Writer
	sub     *event.Subscription
	tids    map[string]int
	nextTid int
	n       int // records written
	err     error
}

// tidKernel is the synthetic row carrying events without a subject thread.
const tidKernel = 0

// pfPid is the single process ID used for the whole simulation.
const pfPid = 1

// picosecond -> microsecond (the trace-event ts/dur unit).
const psPerUs = 1e6

type pfMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type pfComplete struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type pfInstant struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args,omitempty"`
}

// pfKinds is the event subset the exporter records. Quiescent points and
// time advances are deliberately excluded: they occur at every timed-phase
// boundary and would dominate the file without adding visual information.
var pfKinds = []event.Kind{
	event.KindRunSlice,
	event.KindSvcEnter, event.KindSvcExit,
	event.KindDispatch, event.KindPreempt,
	event.KindBlock, event.KindRelease,
	event.KindIntEnter, event.KindIntExit,
	event.KindActivate, event.KindExit, event.KindTerminate,
	event.KindSuspend, event.KindResume,
	event.KindTimerFire,
}

// AttachPerfetto subscribes a streaming exporter to the bus, writing the
// JSON array to w. Call Close after the run to finish the array and flush.
func AttachPerfetto(b *event.Bus, w io.Writer) *Perfetto {
	p := &Perfetto{
		w:       bufio.NewWriter(w),
		tids:    map[string]int{},
		nextTid: tidKernel + 1,
	}
	p.w.WriteString("[")
	p.meta("process_name", pfPid, tidKernel, map[string]any{"name": "rtk-spec-tron"})
	p.meta("thread_name", pfPid, tidKernel, map[string]any{"name": "kernel"})
	p.sub = b.Subscribe(p.handle, pfKinds...)
	return p
}

// Close detaches the exporter from the bus, terminates the JSON array and
// flushes. It returns the first write or encode error encountered.
func (p *Perfetto) Close() error {
	p.sub.Close()
	p.w.WriteString("\n]\n")
	if err := p.w.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}

// Events returns the number of trace records written so far.
func (p *Perfetto) Events() int { return p.n }

// tid returns the row for a thread name, assigning one (and emitting its
// thread_name metadata) on first sight. Events without a subject thread go
// to the kernel row.
func (p *Perfetto) tid(thread string) int {
	if thread == "" {
		return tidKernel
	}
	if id, ok := p.tids[thread]; ok {
		return id
	}
	id := p.nextTid
	p.nextTid++
	p.tids[thread] = id
	p.meta("thread_name", pfPid, id, map[string]any{"name": thread})
	return id
}

func (p *Perfetto) handle(e event.Event) {
	switch e.Kind {
	case event.KindRunSlice:
		name := e.Obj
		if name == "" {
			name = Context(e.Ctx).String()
		}
		p.emit(pfComplete{
			Name: name, Cat: Context(e.Ctx).String(), Ph: "X",
			Ts: us(e.Start), Dur: us(e.Time - e.Start),
			Pid: pfPid, Tid: p.tid(e.Thread),
			Args: map[string]any{"energy_j": float64(e.Energy)},
		})
	case event.KindSvcExit:
		p.instant(e, e.Obj, map[string]any{"er": e.Code})
	case event.KindSvcEnter:
		p.instant(e, e.Obj, nil)
	case event.KindPreempt, event.KindBlock, event.KindRelease:
		var args map[string]any
		if e.Obj != "" {
			args = map[string]any{"detail": e.Obj}
		}
		p.instant(e, e.Kind.String(), args)
	case event.KindIntEnter:
		p.instant(e, e.Kind.String(), map[string]any{"depth": e.Seq})
	case event.KindTimerFire:
		p.instant(e, e.Kind.String(), map[string]any{"armed_us": us(e.Start), "seq": e.Seq})
	default:
		p.instant(e, e.Kind.String(), nil)
	}
}

// instant emits an "i" record for e on its thread's row.
func (p *Perfetto) instant(e event.Event, name string, args map[string]any) {
	p.emit(pfInstant{
		Name: name, Cat: e.Kind.String(), Ph: "i",
		Ts: us(e.Time), Pid: pfPid, Tid: p.tid(e.Thread), S: "t",
		Args: args,
	})
}

func (p *Perfetto) meta(name string, pid, tid int, args map[string]any) {
	p.emit(pfMeta{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
}

// emit encodes one record and appends it to the array.
func (p *Perfetto) emit(rec any) {
	if p.err != nil {
		return
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		p.err = err
		return
	}
	if p.n > 0 {
		p.w.WriteString(",\n")
	} else {
		p.w.WriteString("\n")
	}
	if _, err := p.w.Write(buf); err != nil {
		p.err = err
		return
	}
	p.n++
}

// us converts simulation picoseconds to trace-event microseconds.
func us(t sysc.Time) float64 { return float64(t) / psPerUs }

// ValidatePerfetto schema-checks a trace-event JSON array: every record must
// carry a known phase (M/X/i), pid and tid, a numeric ts for X/i records and
// a non-negative dur for X records. It returns the number of records.
func ValidatePerfetto(r io.Reader) (int, error) {
	var recs []map[string]any
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return 0, fmt.Errorf("trace: not a JSON array: %w", err)
	}
	for i, rec := range recs {
		ph, _ := rec["ph"].(string)
		switch ph {
		case "M", "X", "i":
		default:
			return i, fmt.Errorf("trace: record %d: bad ph %q", i, rec["ph"])
		}
		if _, ok := rec["pid"].(float64); !ok {
			return i, fmt.Errorf("trace: record %d: missing pid", i)
		}
		if _, ok := rec["tid"].(float64); !ok {
			return i, fmt.Errorf("trace: record %d: missing tid", i)
		}
		if ph == "M" {
			continue
		}
		if _, ok := rec["ts"].(float64); !ok {
			return i, fmt.Errorf("trace: record %d: missing ts", i)
		}
		if ph == "X" {
			dur, ok := rec["dur"].(float64)
			if !ok || dur < 0 {
				return i, fmt.Errorf("trace: record %d: bad dur %v", i, rec["dur"])
			}
		}
	}
	return len(recs), nil
}
