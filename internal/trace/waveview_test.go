package trace

import (
	"strings"
	"testing"

	"repro/internal/sysc"
)

func TestWaveViewRender(t *testing.T) {
	v := NewVCD()
	v.Probe("clk", 1)
	v.Probe("bus", 8)
	v.Change("clk", 0, 1)
	v.Change("bus", 10*sysc.Us, 0xAB)
	v.Change("clk", 20*sysc.Us, 0)
	v.Change("bus", 30*sysc.Us, 0xCD)
	wv := NewWaveView(v)
	var b strings.Builder
	wv.Render(&b, 0, 40*sysc.Us, 40)
	out := b.String()
	if !strings.Contains(out, "WAVE") {
		t.Fatalf("header missing:\n%s", out)
	}
	for _, want := range []string{"clk", "bus", "ab", "cd"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestWaveViewEmptyWindow(t *testing.T) {
	v := NewVCD()
	wv := NewWaveView(v)
	var b strings.Builder
	wv.Render(&b, 10, 10, 40)
	if !strings.Contains(b.String(), "empty window") {
		t.Fatal("empty window not reported")
	}
}

func TestWaveViewRenderAll(t *testing.T) {
	v := NewVCD()
	v.Change("sig", 5*sysc.Us, 7)
	v.Change("sig", 15*sysc.Us, 9)
	var b strings.Builder
	NewWaveView(v).RenderAll(&b, 20)
	if !strings.Contains(b.String(), "sig") || !strings.Contains(b.String(), "9") {
		t.Fatalf("render-all:\n%s", b.String())
	}
}
