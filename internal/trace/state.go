package trace

// Snapshot support for the trace observers. A warm-start sweep runs the
// shared prefix once with observers attached, captures their cursors, and
// rewinds them before each forked variant so every variant's artifacts
// contain the prefix records exactly as a cold run would have produced
// them.

// GanttState is the captured segment log of a Gantt recorder. Opaque:
// it only flows back into LoadState on the same recorder.
type GanttState struct {
	segments []Segment
}

// SaveState captures the recorded segments.
func (g *Gantt) SaveState() GanttState {
	return GanttState{segments: append([]Segment(nil), g.Segments...)}
}

// LoadState rewinds the recorder to a captured segment log.
func (g *Gantt) LoadState(st GanttState) {
	g.Segments = append(g.Segments[:0], st.segments...)
}

// PerfettoState is the captured cursor of a streaming Perfetto exporter:
// the row-assignment table and the record count. The caller owns the
// underlying writer (a buffer, for warm sweeps) and rewinds it in step —
// Flush first so the buffer holds everything the cursor accounts for.
type PerfettoState struct {
	tids    map[string]int
	nextTid int
	n       int
}

// Flush pushes buffered output through to the underlying writer without
// closing the record stream.
func (p *Perfetto) Flush() error {
	if err := p.w.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}

// SaveState captures the exporter cursor. Call Flush first when the
// underlying buffer is captured alongside.
func (p *Perfetto) SaveState() PerfettoState {
	tids := make(map[string]int, len(p.tids))
	for k, v := range p.tids {
		tids[k] = v
	}
	return PerfettoState{tids: tids, nextTid: p.nextTid, n: p.n}
}

// LoadState rewinds the exporter to a captured cursor. Any buffered but
// unflushed output is discarded by resetting onto the (caller-rewound)
// underlying writer.
func (p *Perfetto) LoadState(st PerfettoState) {
	clear(p.tids)
	for k, v := range st.tids {
		p.tids[k] = v
	}
	p.nextTid = st.nextTid
	p.n = st.n
}
