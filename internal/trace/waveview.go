package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sysc"
)

// WaveView renders recorded VCD signals as ASCII timelines — the textual
// analogue of the waveform viewer of Figure 4: one row per probed signal,
// value-change markers along a common time axis.
//
//	xram.addr |----23--------42-------------|
//	p1        |--01----55---------aa--------|
type WaveView struct {
	vcd *VCD
}

// NewWaveView creates a viewer over a VCD recorder.
func NewWaveView(v *VCD) *WaveView { return &WaveView{vcd: v} }

// Render draws the window [from,to) over cols columns. Each change prints
// its new value (hex) starting at its column; '-' fills steady state.
func (w *WaveView) Render(out io.Writer, from, to sysc.Time, cols int) {
	if cols <= 0 {
		cols = 80
	}
	if to <= from {
		fmt.Fprintln(out, "(empty window)")
		return
	}
	span := to - from

	// Group changes per signal, time-sorted.
	type chg struct {
		t   sysc.Time
		val uint64
	}
	perSig := map[string][]chg{}
	var names []string
	for _, c := range w.vcd.changes {
		if c.t < from || c.t >= to {
			continue
		}
		if _, ok := perSig[c.sig.name]; !ok {
			names = append(names, c.sig.name)
		}
		perSig[c.sig.name] = append(perSig[c.sig.name], chg{c.t, c.val})
	}
	sort.Strings(names)

	nameW := 8
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	fmt.Fprintf(out, "WAVE %v .. %v  (1 col = %v)\n", from, to, span/sysc.Time(cols))
	for _, name := range names {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '-'
		}
		for _, c := range perSig[name] {
			col := int(int64(c.t-from) * int64(cols) / int64(span))
			label := fmt.Sprintf("%x", c.val)
			for i := 0; i < len(label) && col+i < cols; i++ {
				row[col+i] = label[i]
			}
		}
		fmt.Fprintf(out, "%-*s |%s|\n", nameW, name, string(row))
	}
}

// RenderAll draws the full recorded span.
func (w *WaveView) RenderAll(out io.Writer, cols int) {
	var from, to sysc.Time
	for i, c := range w.vcd.changes {
		if i == 0 || c.t < from {
			from = c.t
		}
		if c.t > to {
			to = c.t
		}
	}
	w.Render(out, from, to+1, cols)
}
