// Package trace records and renders execution traces of a co-simulation:
// the time/energy GANTT chart of Figure 6 (per-thread execution segments
// tagged with their context — OS service, basic block, handler, BFM access),
// a VCD-style waveform dump for probing BFM signals (Figure 4), and
// per-thread consumed time/energy reports (Figure 7).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/petri"
	"repro/internal/sysc"
)

// Context tags the execution context of a trace segment. Different contexts
// are rendered with different patterns, as in the paper's trace widget.
type Context int

// Execution contexts, per the paper: startup, application task basic block,
// OS service call, time-event/interrupt handler, BFM (hardware) access, and
// CPU idle.
const (
	CtxStartup Context = iota
	CtxTask
	CtxService
	CtxHandler
	CtxBFM
	CtxIdle
)

// String returns the context's short name.
func (c Context) String() string {
	switch c {
	case CtxStartup:
		return "startup"
	case CtxTask:
		return "task"
	case CtxService:
		return "service"
	case CtxHandler:
		return "handler"
	case CtxBFM:
		return "bfm"
	case CtxIdle:
		return "idle"
	}
	return "?"
}

// pattern is the fill glyph used when rendering a segment of this context.
func (c Context) pattern() rune {
	switch c {
	case CtxStartup:
		return 'S'
	case CtxTask:
		return '#'
	case CtxService:
		return '='
	case CtxHandler:
		return '!'
	case CtxBFM:
		return '%'
	case CtxIdle:
		return '.'
	}
	return '?'
}

// Segment is one contiguous slice of execution by one thread.
type Segment struct {
	Thread string
	Start  sysc.Time
	End    sysc.Time
	Ctx    Context
	Energy petri.Energy
	Note   string // e.g. the service call or BFM function name
}

// Duration returns the simulated length of the segment.
func (s Segment) Duration() sysc.Time { return s.End - s.Start }

// Gantt accumulates execution segments for all threads of a simulation.
// The zero value is ready to use.
type Gantt struct {
	Segments []Segment
	enabled  bool
	limit    int // optional cap on recorded segments; 0 = unlimited
}

// NewGantt returns an enabled recorder.
func NewGantt() *Gantt { return &Gantt{enabled: true} }

// SetEnabled turns recording on or off (off for speed-measure runs, on for
// the paper's "step mode" debugging).
func (g *Gantt) SetEnabled(on bool) { g.enabled = on }

// Enabled reports whether segments are being recorded.
func (g *Gantt) Enabled() bool { return g.enabled }

// SetLimit caps the number of recorded segments (0 = unlimited).
func (g *Gantt) SetLimit(n int) { g.limit = n }

// Add records one execution segment. Zero-length segments are kept only if
// they carry a note (service-call markers).
func (g *Gantt) Add(seg Segment) {
	if !g.enabled {
		return
	}
	if g.limit > 0 && len(g.Segments) >= g.limit {
		return
	}
	if seg.End < seg.Start {
		return
	}
	if seg.Start == seg.End && seg.Note == "" {
		return
	}
	g.Segments = append(g.Segments, seg)
}

// Reset discards all recorded segments.
func (g *Gantt) Reset() { g.Segments = g.Segments[:0] }

// Threads returns the distinct thread names in first-appearance order.
func (g *Gantt) Threads() []string {
	var names []string
	seen := map[string]bool{}
	for _, s := range g.Segments {
		if !seen[s.Thread] {
			seen[s.Thread] = true
			names = append(names, s.Thread)
		}
	}
	return names
}

// Window returns the segments overlapping [from,to).
func (g *Gantt) Window(from, to sysc.Time) []Segment {
	var out []Segment
	for _, s := range g.Segments {
		if s.End > from && s.Start < to || (s.Start == s.End && s.Start >= from && s.Start < to) {
			out = append(out, s)
		}
	}
	return out
}

// BusyTime returns per-thread total execution time.
func (g *Gantt) BusyTime() map[string]sysc.Time {
	m := map[string]sysc.Time{}
	for _, s := range g.Segments {
		m[s.Thread] += s.Duration()
	}
	return m
}

// Render writes a text GANTT chart of the window [from,to) using `cols`
// character columns. Each thread is one row; cells use the context pattern
// of the segment covering that instant (later segments win ties, matching
// dispatch order). This is the textual analogue of the paper's Execution
// Time/Energy Trace widget.
func (g *Gantt) Render(w io.Writer, from, to sysc.Time, cols int) {
	if cols <= 0 {
		cols = 80
	}
	if to <= from {
		fmt.Fprintln(w, "(empty window)")
		return
	}
	span := to - from
	threads := g.Threads()
	nameW := 8
	for _, n := range threads {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	fmt.Fprintf(w, "GANTT %v .. %v  (1 col = %v)\n", from, to, span/sysc.Time(cols))
	for _, name := range threads {
		row := make([]rune, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range g.Segments {
			if s.Thread != name || s.End <= from || s.Start >= to {
				continue
			}
			c0 := int(int64(s.Start-from) * int64(cols) / int64(span))
			c1 := int(int64(s.End-from) * int64(cols) / int64(span))
			if c1 == c0 {
				c1 = c0 + 1
			}
			for i := c0; i < c1 && i < cols; i++ {
				if i >= 0 {
					row[i] = s.Ctx.pattern()
				}
			}
		}
		fmt.Fprintf(w, "%-*s |%s|\n", nameW, name, string(row))
	}
	fmt.Fprintf(w, "%-*s  legend: #=task ==service !=handler %%=bfm S=startup .=idle\n", nameW, "")
}

// Summary writes a per-thread table of segment counts, busy time and energy.
func (g *Gantt) Summary(w io.Writer) {
	type row struct {
		name   string
		n      int
		busy   sysc.Time
		energy petri.Energy
	}
	idx := map[string]*row{}
	var order []string
	for _, s := range g.Segments {
		r, ok := idx[s.Thread]
		if !ok {
			r = &row{name: s.Thread}
			idx[s.Thread] = r
			order = append(order, s.Thread)
		}
		r.n++
		r.busy += s.Duration()
		r.energy += s.Energy
	}
	fmt.Fprintf(w, "%-16s %8s %14s %14s\n", "THREAD", "SEGS", "BUSY", "ENERGY")
	for _, name := range order {
		r := idx[name]
		fmt.Fprintf(w, "%-16s %8d %14s %14s\n", r.name, r.n, r.busy, r.energy)
	}
}

// ContextBreakdown returns, for one thread, busy time per context — the
// data behind the per-pattern display of Figure 6.
func (g *Gantt) ContextBreakdown(thread string) map[Context]sysc.Time {
	m := map[Context]sysc.Time{}
	for _, s := range g.Segments {
		if s.Thread == thread {
			m[s.Ctx] += s.Duration()
		}
	}
	return m
}

// CheckNoOverlap verifies the single-CPU invariant: no two segments overlap
// in time (handlers preempt tasks, so at any instant at most one thread
// executes). It returns the first offending pair, if any.
func (g *Gantt) CheckNoOverlap() (a, b Segment, overlap bool) {
	segs := make([]Segment, len(g.Segments))
	copy(segs, g.Segments)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		return segs[i].End < segs[j].End
	})
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].End {
			return segs[i-1], segs[i], true
		}
	}
	return Segment{}, Segment{}, false
}

// String renders the full chart into a string (80 columns).
func (g *Gantt) String() string {
	var b strings.Builder
	var from, to sysc.Time
	for i, s := range g.Segments {
		if i == 0 || s.Start < from {
			from = s.Start
		}
		if s.End > to {
			to = s.End
		}
	}
	g.Render(&b, from, to, 80)
	return b.String()
}
