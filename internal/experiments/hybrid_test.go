package experiments

import (
	"testing"

	"repro/internal/bfm"
	"repro/internal/i8051"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// TestHybridISSCoprocessor runs a mixed-level co-simulation: an RTOS-level
// task (annotated host code on RTK-Spec TRON) offloads a computation to a
// coprocessor that is real 8051 firmware executing cycle-by-cycle on the
// ISS. They share the BFM's external RAM; the coprocessor signals
// completion through a port write that the interrupt controller turns into
// a kernel ISR, which wakes the waiting task.
//
// This exercises every level of the reproduced platform in one simulation:
// sysc kernel, SIM_API dispatching, T-Kernel services, BFM memory/interrupt
// fabric, and the instruction-set simulator.
func TestHybridISSCoprocessor(t *testing.T) {
	const (
		cmdAddr    = 0x0000 // command mailbox: host writes length, coproc clears
		dataAddr   = 0x0010 // input vector
		resultAddr = 0x0080 // coproc writes the sum here
		doneLine   = 2      // interrupt line pulsed by the coprocessor
	)

	// Coprocessor firmware: poll the command mailbox; when non-zero, sum
	// that many bytes from dataAddr, store the result, clear the command,
	// and pulse P1 (the done interrupt). Loops forever.
	fw := i8051.NewAsm().
		Label("poll").
		MovDPTR(cmdAddr).
		MovxADPTR().
		Jz("poll").
		MovRA(2). // R2 = count
		ClrA().
		MovRA(3). // R3 = accumulator
		MovDPTR(dataAddr).
		Label("sum").
		MovxADPTR().
		AddAR(3).
		MovRA(3).
		IncDPTR().
		DjnzR(2, "sum").
		MovDPTR(resultAddr).
		MovAR(3).
		MovxDPTRA(). // store the sum
		ClrA().
		MovDPTR(cmdAddr).
		MovxDPTRA().               // clear the command
		MovDirImm(i8051.SfrP1, 1). // pulse: done interrupt
		Ljmp("poll").
		Assemble()

	sim := sysc.NewSimulator()
	defer sim.Shutdown()

	b := bfm.New(sim, nil, bfm.DefaultConfig())
	k := tkernel.New(sim, tkernel.Config{
		Costs:      tkernel.ZeroCosts(),
		TickSource: b.RTC.TickEvent(),
	})
	b.SetAPI(k.API())
	b.IntC.SetSink(func(line int) { _ = k.RaiseInterrupt(line) })
	b.IntC.EnableLine(doneLine)

	cpu := i8051.New(fw)
	cpu.XRAM = b.Mem // shared platform memory
	cpu.PortOut = func(port int, v byte) {
		if port == 1 && v != 0 {
			b.IntC.Raise(doneLine)
		}
	}
	i8051.NewMachine(sim, cpu, b.MachineCycle(), 4)

	var result byte
	var doneAt sysc.Time
	k.Boot(func(k *tkernel.Kernel) {
		var hostID tkernel.ID
		_ = k.DefInt(doneLine, "coproc-done", func(h *tkernel.HandlerCtx) {
			_ = h.K.WupTsk(hostID)
		})
		hostID, _ = k.CreTsk("host", 10, func(task *tkernel.Task) {
			// Write the input vector 1..8 through the BFM bus.
			for i := 0; i < 8; i++ {
				b.Mem.Write(dataAddr+uint16(i), byte(i+1))
			}
			b.Mem.Write(cmdAddr, 8) // issue the command
			// Sleep until the coprocessor's done interrupt wakes us.
			if er := k.SlpTsk(tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("SlpTsk: %v", er)
				return
			}
			result = b.Mem.Read(resultAddr)
			doneAt = sim.Now()
		})
		_ = k.StaTsk(hostID)
	})

	if err := sim.Start(50 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if result != 36 { // 1+2+...+8
		t.Fatalf("coprocessor result = %d, want 36", result)
	}
	if doneAt <= 0 || doneAt > 10*sysc.Ms {
		t.Fatalf("completion at %v", doneAt)
	}
	if cpu.Instrs == 0 {
		t.Fatal("ISS never executed")
	}
	info, _ := k.RefInt(doneLine)
	if info.Fires != 1 {
		t.Fatalf("done interrupts = %d", info.Fires)
	}
}
