package experiments

import (
	"strings"
	"testing"

	"repro/internal/sysc"
)

func TestTable1ListsAPIs(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	out := b.String()
	for _, api := range []string{"SIM_CreateThread", "SIM_Wait", "SIM_Sleep",
		"SIM_IntEnter", "SIM_LockDisp", "SIM_HashTB", "SIM_Gantt"} {
		if !strings.Contains(out, api) {
			t.Errorf("Table 1 missing %s", api)
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	// Short sweep: S/R must decrease monotonically with the BFM/widget
	// access rate once the GUI is on, and the GUI run at the maximum rate
	// must be slower than the corresponding no-GUI run.
	cfg := Table2Config{
		SimTime:      500 * sysc.Ms,
		FramePeriods: []sysc.Time{100 * sysc.Ms, 10 * sysc.Ms},
		WorkFactor:   GUIWorkFactor,
	}
	var b strings.Builder
	rows := Table2(&b, cfg)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	noGUIMax, guiSlow, guiFast := rows[1], rows[2], rows[3]
	if guiFast.SpeedSoverR >= guiSlow.SpeedSoverR {
		t.Errorf("GUI S/R did not fall with access rate: %v vs %v",
			guiFast.SpeedSoverR, guiSlow.SpeedSoverR)
	}
	if guiFast.SpeedSoverR >= noGUIMax.SpeedSoverR {
		t.Errorf("GUI at max rate (%.1f) not slower than no-GUI (%.1f)",
			guiFast.SpeedSoverR, noGUIMax.SpeedSoverR)
	}
	if guiFast.Frames == 0 || guiFast.Refreshes <= guiSlow.Refreshes {
		t.Errorf("refresh counts wrong: %+v vs %+v", guiFast, guiSlow)
	}
}

func TestFigure6ProducesTrace(t *testing.T) {
	var b strings.Builder
	g := Figure6(&b, 50*sysc.Ms)
	if len(g.Segments) == 0 {
		t.Fatal("no segments")
	}
	if _, _, overlap := g.CheckNoOverlap(); overlap {
		t.Fatal("trace overlaps")
	}
	out := b.String()
	if !strings.Contains(out, "GANTT") || !strings.Contains(out, "T1.lcd") {
		t.Fatalf("figure 6 output:\n%s", out)
	}
}

func TestFigure7And8(t *testing.T) {
	var b7 strings.Builder
	Figure7(&b7, 200*sysc.Ms)
	if !strings.Contains(b7.String(), "BATTERY [") {
		t.Fatal("figure 7 missing battery bar")
	}
	var b8 strings.Builder
	Figure8(&b8, 100*sysc.Ms)
	if !strings.Contains(b8.String(), "== TASK ==") {
		t.Fatal("figure 8 missing task listing")
	}
}

func TestFigure4ProducesVCD(t *testing.T) {
	var b strings.Builder
	vcd := Figure4(&b, 100*sysc.Ms)
	if vcd.Len() == 0 {
		t.Fatal("no changes")
	}
	if !strings.Contains(b.String(), "$enddefinitions") {
		t.Fatal("not VCD output")
	}
}

func TestDelayedDispatchLatencyTracksHandler(t *testing.T) {
	for _, hw := range []sysc.Time{0, 2 * sysc.Ms} {
		lat := delayedDispatchLatency(hw)
		if lat != hw {
			t.Errorf("handler %v: latency %v", hw, lat)
		}
	}
}

func TestGranularityTimeoutError(t *testing.T) {
	// A 1.5 ms deadline on a 1 ms tick lands on the 2 ms tick: +0.5 ms.
	_, terr := granularityRun(1 * sysc.Ms)
	if terr != 500*sysc.Us {
		t.Errorf("timeout error = %v, want 500 us", terr)
	}
	// On a 100 us tick the same deadline is exact.
	_, terr = granularityRun(100 * sysc.Us)
	if terr != 0 {
		t.Errorf("timeout error = %v, want 0", terr)
	}
}

func TestAblationSchedulersOrders(t *testing.T) {
	var b strings.Builder
	AblationSchedulers(&b)
	out := b.String()
	if !strings.Contains(out, "RTK-Spec I") || !strings.Contains(out, "TRON") {
		t.Fatalf("output:\n%s", out)
	}
	// Priority kernels complete strictly in priority order.
	if !strings.Contains(out, "ABC") {
		t.Fatalf("priority order missing:\n%s", out)
	}
}

func TestISSBaselineExecutes(t *testing.T) {
	wall, instrs := ISSBaseline(2*sysc.Ms, 10)
	if instrs == 0 || wall <= 0 {
		t.Fatalf("instrs=%d wall=%v", instrs, wall)
	}
	// The firmware loop body is 8 cycles / 5 instructions per iteration:
	// 2 ms at 1 us/cycle is about 250 iterations.
	if instrs < 1000 || instrs > 1500 {
		t.Fatalf("instrs = %d, want ~1250", instrs)
	}
}

func TestCycleSteppedBaselineCounts(t *testing.T) {
	_, cycles := CycleSteppedBaseline(5 * sysc.Ms)
	if cycles != 5000 {
		t.Fatalf("cycles = %d, want 5000 (one per us)", cycles)
	}
}

func TestTable2SweepParallelMatchesSequential(t *testing.T) {
	// The acceptance bar for the sweep runner: the Table 2 grid run across
	// workers must merge to rows identical to the sequential path in every
	// simulated (deterministic) column, byte for byte.
	cfg := Table2Config{
		SimTime:      100 * sysc.Ms,
		FramePeriods: []sysc.Time{0, 50 * sysc.Ms, 10 * sysc.Ms},
		WorkFactor:   GUIWorkFactor,
	}
	render := func(rows []Table2Row) string {
		var b strings.Builder
		for _, r := range rows {
			b.WriteString(r.DeterministicString())
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq := render(Table2Sweep(cfg, 1))
	if !strings.Contains(seq, "gui=false frame=off") ||
		!strings.Contains(seq, "gui=true frame=10 ms") {
		t.Fatalf("sequential sweep missing grid points:\n%s", seq)
	}
	for _, workers := range []int{2, 0} {
		if par := render(Table2Sweep(cfg, workers)); par != seq {
			t.Errorf("workers=%d merged rows differ from sequential:\n--- parallel\n%s--- sequential\n%s",
				workers, par, seq)
		}
	}
}

func TestTable2ParallelPrintsFullGrid(t *testing.T) {
	cfg := Table2Config{
		SimTime:      50 * sysc.Ms,
		FramePeriods: []sysc.Time{0, 10 * sysc.Ms},
		WorkFactor:   GUIWorkFactor,
	}
	var b strings.Builder
	rows := Table2Parallel(&b, cfg, 0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	out := b.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "REFRESHES") {
		t.Fatalf("parallel table output malformed:\n%s", out)
	}
}
