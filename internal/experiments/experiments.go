// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduced system:
//
//	Table 1  — the RTOS modeling API surface of SIM_API
//	Table 2  — co-simulation speed (S/R) vs GUI overhead and BFM access rate
//	Figure 4 — waveform probing of BFM signals (VCD)
//	Figure 6 — execution time/energy trace (step-mode GANTT)
//	Figure 7 — consumed time/energy distribution and battery status
//	Figure 8 — T-Kernel/DS output listing
//
// plus the ablations called out in DESIGN.md: delayed dispatching, tick
// granularity, scheduler policy, and a cycle-stepped baseline standing in
// for the ISS/RTL-level co-simulation the paper compares against.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gui"
	"repro/internal/i8051"
	"repro/internal/metrics"
	"repro/internal/petri"
	"repro/internal/rtk"
	"repro/internal/run/opts"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// GUIWorkFactor calibrates the synthetic widget raster so that, at the
// maximum BFM access rate (a widget refresh every 10 ms), GUI overhead
// roughly halves co-simulation speed — the relationship Table 2 reports
// (S/R 0.2 without GUI vs 0.1 with GUI on the paper's Pentium III).
const GUIWorkFactor = 45

// Table1 prints the SIM_API surface with its paper-name mapping.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — RTOS modeling APIs (SIM_API)")
	fmt.Fprintf(w, "%-18s %-34s %s\n", "PAPER API", "THIS LIBRARY", "PURPOSE")
	rows := [][3]string{
		{"SIM_CreateThread", "SimAPI.CreateThread", "register a T-THREAD (task/handler) in SIM_HashTB"},
		{"SIM_StartThread", "SimAPI.Activate", "make a dormant T-THREAD ready and dispatch"},
		{"SIM_Wait", "TThread.Consume", "consume ETM/EEM with preemption points"},
		{"SIM_Sleep", "SimAPI.BlockCurrent", "wait for a sleep event Ew"},
		{"SIM_Wakeup", "SimAPI.Release", "deliver a sleep event (wait release code)"},
		{"SIM_Preempt", "SimAPI.RequestDispatch", "scheduler-driven preemption request"},
		{"SIM_IntEnter", "SimAPI.EnterInterrupt", "push handler on SIM_Stack, pause CPU owner"},
		{"SIM_IntReturn", "(handler body return)", "pop SIM_Stack, delayed dispatch, resume (Ei)"},
		{"SIM_LockDisp", "SimAPI.LockDispatch/Unlock", "service-call atomicity, tk_dis_dsp"},
		{"SIM_RotRdq", "SimAPI.RotateReady", "rotate a precedence class (time slicing)"},
		{"SIM_Suspend", "SimAPI.SuspendForce/Resume", "forced suspension (tk_sus_tsk)"},
		{"SIM_ChgPri", "SimAPI.ChangePriority", "base/effective priority changes"},
		{"SIM_HashTB", "SimAPI.Threads/Lookup", "thread registry queries"},
		{"SIM_Gantt", "SimAPI.Gantt + trace.Gantt", "time GANTT chart of all T-THREADs"},
		{"SIM_EnergyStat", "SimAPI.EnergyReport", "CET/CEE statistics per T-THREAD"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-34s %s\n", r[0], r[1], r[2])
	}
}

// Table2Row is one configuration of the co-simulation speed measure.
type Table2Row struct {
	GUI         bool
	FramePeriod sysc.Time // 0 = no widget-driving BFM access
	SimSeconds  float64   // S
	WallSeconds float64   // R
	SpeedSoverR float64   // S/R
	Frames      uint64
	Refreshes   uint64
}

// Table2Config parameterizes the sweep.
type Table2Config struct {
	// SimTime is the reference unit time S (paper: 1 s).
	SimTime sysc.Time
	// FramePeriods are the widget-driving BFM access rates (paper: up to a
	// refresh every 10 ms).
	FramePeriods []sysc.Time
	// WorkFactor overrides the GUI raster calibration (0 = GUIWorkFactor).
	WorkFactor int
	// BaseSeed randomizes each grid point's synthetic user input (every
	// point gets sweep.Seed(BaseSeed, index), so results depend only on the
	// base seed and grid position, never on worker count). Zero keeps the
	// legacy fixed key pattern.
	BaseSeed uint64
}

// DefaultTable2Config mirrors the paper's sweep.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		SimTime: 1 * sysc.Sec,
		FramePeriods: []sysc.Time{
			0, 100 * sysc.Ms, 50 * sysc.Ms, 20 * sysc.Ms, 10 * sysc.Ms,
		},
	}
}

// Table2Run measures one configuration: simulate S of the video game and
// time the wall clock R.
func Table2Run(guiOn bool, framePeriod sysc.Time, simTime sysc.Time, workFactor int) Table2Row {
	return table2RunSeeded(guiOn, framePeriod, simTime, workFactor, 0)
}

// table2RunSeeded is Table2Run with the synthetic user seeded (0 = legacy
// fixed key pattern).
func table2RunSeeded(guiOn bool, framePeriod sysc.Time, simTime sysc.Time, workFactor int, seed uint64) Table2Row {
	if workFactor <= 0 {
		workFactor = GUIWorkFactor
	}
	cfg := app.DefaultConfig()
	cfg.GUI = guiOn
	cfg.GUIWorkFactor = workFactor
	cfg.FramePeriod = framePeriod
	cfg.Seed = seed
	a := app.Build(cfg)
	defer a.Shutdown()
	start := time.Now()
	if err := a.Run(simTime); err != nil {
		panic(err)
	}
	wall := time.Since(start).Seconds()
	s := simTime.Seconds()
	return Table2Row{
		GUI: guiOn, FramePeriod: framePeriod,
		SimSeconds: s, WallSeconds: wall, SpeedSoverR: s / wall,
		Frames: a.Frames(), Refreshes: a.GUI.Refreshes(),
	}
}

// Table2Case is one grid point of the co-simulation speed sweep.
type Table2Case struct {
	GUI         bool
	FramePeriod sysc.Time
}

// Table2Cases expands the config into the grid in canonical (merge) order:
// GUI off before on, frame periods in config order.
func Table2Cases(cfg Table2Config) []Table2Case {
	var cases []Table2Case
	for _, gui := range []bool{false, true} {
		for _, fp := range cfg.FramePeriods {
			cases = append(cases, Table2Case{GUI: gui, FramePeriod: fp})
		}
	}
	return cases
}

// Table2Sweep runs the grid across `workers` cores (1 = the sequential
// reference path; <= 0 = GOMAXPROCS) and returns rows merged in grid order.
// Every grid point is an independent Simulator, so the simulated results
// (frames, refreshes, simulated seconds) are identical for any worker
// count; only the wall-clock measurements vary.
func Table2Sweep(cfg Table2Config, workers int) []Table2Row {
	return sweep.Run(sweep.Runner{Workers: workers, BaseSeed: cfg.BaseSeed}, Table2Cases(cfg),
		func(job sweep.Job, c Table2Case) Table2Row {
			seed := uint64(0)
			if cfg.BaseSeed != 0 {
				seed = job.Seed
			}
			return table2RunSeeded(c.GUI, c.FramePeriod, cfg.SimTime, cfg.WorkFactor, seed)
		})
}

// DeterministicString renders the worker-count-independent columns of a row
// (everything except the wall-clock measurements). Parallel and sequential
// sweeps of the same config produce byte-identical merged listings.
func (r Table2Row) DeterministicString() string {
	period := "off"
	if r.FramePeriod > 0 {
		period = fmt.Sprint(r.FramePeriod)
	}
	return fmt.Sprintf("gui=%v frame=%s S=%.3f frames=%d refreshes=%d",
		r.GUI, period, r.SimSeconds, r.Frames, r.Refreshes)
}

func renderTable2(w io.Writer, cfg Table2Config, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2 — co-simulation speed measure")
	fmt.Fprintf(w, "S = %v of simulated system time per configuration\n", cfg.SimTime)
	fmt.Fprintf(w, "%-6s %-14s %10s %12s %10s %10s\n",
		"GUI", "BFM->WIDGET", "WALL R", "S/R", "FRAMES", "REFRESHES")
	for _, row := range rows {
		period := "off"
		if row.FramePeriod > 0 {
			period = fmt.Sprint(row.FramePeriod)
		}
		fmt.Fprintf(w, "%-6v %-14s %9.3fs %12.2f %10d %10d\n",
			row.GUI, period, row.WallSeconds, row.SpeedSoverR, row.Frames, row.Refreshes)
	}
}

// Table2 runs the full sweep sequentially and prints the speed table.
func Table2(w io.Writer, cfg Table2Config) []Table2Row {
	rows := Table2Sweep(cfg, 1)
	renderTable2(w, cfg, rows)
	return rows
}

// Table2Parallel runs the full sweep across the worker pool and prints the
// speed table. Simulated columns match the sequential path exactly; the
// wall-clock columns reflect the shared-core timing.
func Table2Parallel(w io.Writer, cfg Table2Config, workers int) []Table2Row {
	rows := Table2Sweep(cfg, workers)
	renderTable2(w, cfg, rows)
	return rows
}

// Figure6 runs the video game in step mode for the given window with the
// trace recorder attached and renders the execution time/energy trace.
func Figure6(w io.Writer, window sysc.Time) *trace.Gantt {
	g := trace.NewGantt()
	cfg := app.DefaultConfig()
	cfg.GUI = false
	cfg.Gantt = g
	a := app.Build(cfg)
	defer a.Shutdown()
	a.GUI.SetMode(gui.Step)
	// Step mode: advance one system tick (1 ms) at a time.
	for t := sysc.Ms; t <= window; t += sysc.Ms {
		if err := a.Run(t); err != nil {
			panic(err)
		}
	}
	fmt.Fprintln(w, "Figure 6 — execution time/energy trace (step mode)")
	g.Render(w, 0, window, 100)
	fmt.Fprintln(w)
	g.Summary(w)
	fmt.Fprintln(w, "\nper-context breakdown of T1.lcd:")
	for ctx, d := range g.ContextBreakdown("T1.lcd") {
		fmt.Fprintf(w, "  %-8s %v\n", ctx, d)
	}
	return g
}

// Figure7 runs the video game for d and prints the consumed time/energy
// distribution with the 10 Wh battery status.
func Figure7(w io.Writer, d sysc.Time) { Figure7Metrics(w, nil, d) }

// Figure7Metrics is Figure7 plus, when metricsW is non-nil, a machine-
// readable per-task scheduling-metrics report (dispatch latency, wait time,
// preemption counts, CET/CEE rollups) derived from the kernel event bus and
// written as JSON next to the human-readable distribution.
func Figure7Metrics(w, metricsW io.Writer, d sysc.Time) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	var coll *metrics.Collector
	if metricsW != nil {
		cfg.Bus = event.NewBus()
		coll = metrics.Attach(cfg.Bus)
	}
	a := app.Build(cfg)
	defer a.Shutdown()
	if err := a.Run(d); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "Figure 7 — consumed time/energy distribution (animate mode)")
	fmt.Fprintln(w, a.Battery.RenderText())
	if life, ok := a.Battery.Lifespan(d); ok {
		fmt.Fprintf(w, "projected battery lifespan at this load: %.1f hours\n",
			life.Seconds()/3600)
	}
	if coll != nil {
		if err := coll.WriteJSON(metricsW); err != nil {
			panic(err)
		}
	}
}

// Figure8 runs the video game for d and prints the T-Kernel/DS listing.
func Figure8(w io.Writer, d sysc.Time) {
	cfg := app.DefaultConfig()
	cfg.GUI = false
	a := app.Build(cfg)
	defer a.Shutdown()
	if err := a.Run(d); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "Figure 8 — T-Kernel/DS output listing")
	tkds.New(a.K).Listing(w)
}

// Figure4 runs the video game with a VCD recorder probing BFM signals and
// writes both the waveform file and a readable change table.
func Figure4(w io.Writer, d sysc.Time) *trace.VCD {
	vcd := trace.NewVCD()
	cfg := app.DefaultConfig()
	cfg.GUI = false
	cfg.VCD = vcd
	a := app.Build(cfg)
	defer a.Shutdown()
	if err := a.Run(d); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "Figure 4 — probed H/W signals (waveform viewer)")
	fmt.Fprintf(w, "%d value changes recorded; VCD follows\n\n", vcd.Len())
	vcd.Render(w)
	return vcd
}

// AblationDelayedDispatch measures the wakeup-to-dispatch latency of a
// high-priority task woken from inside a handler, as a function of the
// handler's remaining execution: with delayed dispatching the latency
// equals the remaining handler time (never less), demonstrating the rule.
func AblationDelayedDispatch(w io.Writer, handlerWork []sysc.Time) {
	fmt.Fprintln(w, "Ablation A1 — delayed dispatching: wakeup-to-dispatch latency")
	fmt.Fprintf(w, "%-18s %-18s\n", "HANDLER REMAINING", "OBSERVED LATENCY")
	for _, hw := range handlerWork {
		lat := delayedDispatchLatency(hw)
		fmt.Fprintf(w, "%-18v %-18v\n", hw, lat)
	}
}

func delayedDispatchLatency(handlerWork sysc.Time) sysc.Time {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	var wokeAt, raisedAt sysc.Time
	k.Boot(func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("hi", 1, func(task *tkernel.Task) {
			_ = k.SlpTsk(tkernel.TmoFevr)
			wokeAt = sim.Now()
		})
		_ = k.StaTsk(id)
		alm, _ := k.CreAlm("h", func(h *tkernel.HandlerCtx) {
			raisedAt = sim.Now()
			_ = h.K.WupTsk(id) // wake first...
			h.Work(core.Cost{Time: handlerWork}, "rest")
		})
		_ = k.StaAlm(alm, 10*sysc.Ms)
	})
	if err := sim.Start(sysc.Sec); err != nil {
		panic(err)
	}
	return wokeAt - raisedAt
}

// AblationGranularity sweeps the system tick and reports simulation cost
// (events processed per simulated second rise as the tick shrinks) and the
// timeout accuracy it buys.
func AblationGranularity(w io.Writer, ticks []sysc.Time) {
	AblationGranularityParallel(w, ticks, 1)
}

// AblationGranularityParallel is AblationGranularity across a worker pool:
// each tick configuration is an independent simulation, so the sweep
// parallelizes point-wise. The timeout-error column is deterministic for
// any worker count; wall-clock figures reflect shared-core timing.
func AblationGranularityParallel(w io.Writer, ticks []sysc.Time, workers int) {
	type res struct {
		wall float64
		terr sysc.Time
	}
	results := sweep.Run(sweep.Runner{Workers: workers}, ticks,
		func(_ sweep.Job, tick sysc.Time) res {
			wall, terr := granularityRun(tick)
			return res{wall: wall, terr: terr}
		})
	fmt.Fprintln(w, "Ablation A2 — preemption/tick granularity vs speed")
	fmt.Fprintf(w, "%-10s %12s %14s %16s\n", "TICK", "WALL R", "S/R", "TIMEOUT ERROR")
	for i, tick := range ticks {
		fmt.Fprintf(w, "%-10v %11.4fs %14.1f %16v\n",
			tick, results[i].wall, 1.0/results[i].wall, results[i].terr)
	}
}

func granularityRun(tick sysc.Time) (wallSeconds float64, timeoutErr sysc.Time) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{CommonOptions: opts.CommonOptions{Tick: tick}, Costs: tkernel.ZeroCosts()})
	var wake sysc.Time
	const want = 1500 * sysc.Us // deliberately off-tick deadline
	k.Boot(func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("t", 10, func(task *tkernel.Task) {
			_ = k.SlpTsk(want)
			wake = sim.Now()
		})
		_ = k.StaTsk(id)
	})
	start := time.Now()
	if err := sim.Start(1 * sysc.Sec); err != nil {
		panic(err)
	}
	return time.Since(start).Seconds(), wake - want
}

// AblationSchedulers runs the same task set on RTK-Spec I, RTK-Spec II and
// RTK-Spec TRON and reports completion orders and kernel activity.
func AblationSchedulers(w io.Writer) {
	fmt.Fprintln(w, "Ablation A3 — the same task set on all three kernel models")
	fmt.Fprintf(w, "%-36s %-22s %8s %8s\n", "KERNEL", "COMPLETION ORDER", "CTXSW", "PREEMPT")

	for _, p := range []rtk.Policy{rtk.RoundRobin, rtk.PriorityPreemptive} {
		order, ctxsw, pre := rtkRun(p)
		fmt.Fprintf(w, "%-36s %-22s %8d %8d\n", p, order, ctxsw, pre)
	}
	order, ctxsw, pre := tronRun()
	fmt.Fprintf(w, "%-36s %-22s %8d %8d\n", "RTK-Spec TRON (T-Kernel/OS)", order, ctxsw, pre)
}

func rtkRun(p rtk.Policy) (order string, ctxsw, pre uint64) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := rtk.New(sim, rtk.Config{CommonOptions: opts.CommonOptions{TimeSlice: 2 * sysc.Ms}, Policy: p})
	var done string
	for i, name := range []string{"A", "B", "C"} {
		n := name
		prio := (i + 1) * 10
		t := k.CreateTask(n, prio, func(task *rtk.Task) {
			task.Work(core.Cost{Time: 6 * sysc.Ms}, "")
			done += n
		})
		_ = k.Start(t)
	}
	if err := sim.Start(100 * sysc.Ms); err != nil {
		panic(err)
	}
	return done, k.API().ContextSwitches(), k.API().Preemptions()
}

func tronRun() (order string, ctxsw, pre uint64) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	var done string
	k.Boot(func(k *tkernel.Kernel) {
		for i, name := range []string{"A", "B", "C"} {
			n := name
			prio := (i + 1) * 10
			id, _ := k.CreTsk(n, prio, func(task *tkernel.Task) {
				k.Work(core.Cost{Time: 6 * sysc.Ms}, "")
				done += n
			})
			_ = k.StaTsk(id)
		}
	})
	if err := sim.Start(100 * sysc.Ms); err != nil {
		panic(err)
	}
	return done, k.API().ContextSwitches(), k.API().Preemptions()
}

// CycleSteppedBaseline emulates the cost of cycle-level (ISS/RTL-style)
// co-simulation of the same workload: the simulator is forced to evaluate
// an event every machine cycle (1 us) instead of only at RTOS-level
// activity. The paper's conclusion — RTOS-level simulation gains
// significant speed over ISS/RTL-level — is the ratio of these two rates.
func CycleSteppedBaseline(simTime sysc.Time) (wallSeconds float64, cycles uint64) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	var n uint64
	sim.Spawn("cycle-stepper", func(th *sysc.Thread) {
		for {
			th.Wait(1 * sysc.Us) // one 8051 machine cycle per event
			n++
		}
	})
	start := time.Now()
	if err := sim.Start(simTime); err != nil {
		panic(err)
	}
	return time.Since(start).Seconds(), n
}

// ISSBaseline runs real 8051 firmware (a busy counting loop touching XRAM)
// on the full instruction-set simulator coupled to the simulation clock —
// the honest "ISS level" of co-simulation. batch instructions execute per
// simulation event (1 = fully interleaved).
func ISSBaseline(simTime sysc.Time, batch int) (wallSeconds float64, instrs uint64) {
	fw := i8051.NewAsm().
		MovDPTR(0x0000).
		Label("loop").
		IncA().
		MovxDPTRA(). // store the counter to XRAM via the bus
		IncDPTR().
		AddAImm(3).
		Sjmp("loop").
		Assemble()
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	cpu := i8051.New(fw)
	m := i8051.NewMachine(sim, cpu, sysc.Us, batch)
	start := time.Now()
	if err := sim.Start(simTime); err != nil {
		panic(err)
	}
	_ = m
	return time.Since(start).Seconds(), cpu.Instrs
}

// SpeedComparison prints RTOS-level vs ISS-level vs cycle-stepped speed,
// the paper's headline claim ("performing simulation at RTOS level,
// significant speed gain can be obtained compared to the RTL or ISS level
// co-simulation measures").
func SpeedComparison(w io.Writer, simTime sysc.Time) {
	rtos := Table2Run(false, 10*sysc.Ms, simTime, 1)
	issWall, instrs := ISSBaseline(simTime, 1)
	cycWall, cycles := CycleSteppedBaseline(simTime)
	fmt.Fprintln(w, "RTOS-level vs ISS-level vs cycle-stepped simulation speed")
	fmt.Fprintf(w, "%-34s %12s %12s\n", "LEVEL", "WALL R", "S/R")
	fmt.Fprintf(w, "%-34s %11.4fs %12.2f\n", "RTOS level (this paper)",
		rtos.WallSeconds, rtos.SpeedSoverR)
	fmt.Fprintf(w, "%-34s %11.4fs %12.2f   (%d instructions)\n",
		"ISS level (i8051 ISS, batch=1)", issWall, simTime.Seconds()/issWall, instrs)
	fmt.Fprintf(w, "%-34s %11.4fs %12.2f   (%d cycle events)\n",
		"cycle-stepped event baseline", cycWall, simTime.Seconds()/cycWall, cycles)
	fmt.Fprintf(w, "speedup of RTOS level over ISS level: %.1fx\n",
		issWall/rtos.WallSeconds)
}

// Energy is re-exported for report helpers.
type Energy = petri.Energy
