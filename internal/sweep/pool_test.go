package sweep

import (
	"context"
	"sync"
	"testing"
)

// TestPoolStats: the instrumentation counts every accepted task exactly
// once and records sane queue waits.
func TestPoolStats(t *testing.T) {
	p := NewPool(2, 8)
	var mu sync.Mutex
	ran := 0
	const n = 8
	for i := 0; i < n; i++ {
		err := p.TrySubmit(func(int) {
			mu.Lock()
			ran++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d of %d", ran, n)
	}
	s := p.Stats()
	if s.Submitted != n || s.Completed != n {
		t.Fatalf("stats: %+v", s)
	}
	if s.QueueWaitAvgMS < 0 || s.QueueWaitMaxMS < s.QueueWaitAvgMS {
		t.Fatalf("wait stats inconsistent: %+v", s)
	}
}

// TestPoolStatsSaturated: rejected submissions are not counted as
// submitted.
func TestPoolStatsSaturated(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	_ = p.TrySubmit(func(int) { <-block }) // occupies the worker
	_ = p.TrySubmit(func(int) { <-block }) // occupies the queue slot
	// Now the queue is full (racing the worker pickup is fine: at most one
	// extra accept).
	var rejected int
	for i := 0; i < 4; i++ {
		if err := p.TrySubmit(func(int) {}); err == ErrSaturated {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no rejection from a full queue")
	}
	close(block)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Submitted != s.Completed {
		t.Fatalf("submitted %d != completed %d", s.Submitted, s.Completed)
	}
	if s.Submitted > 6-uint64(rejected) {
		t.Fatalf("rejected tasks counted: %+v (rejected=%d)", s, rejected)
	}
}
