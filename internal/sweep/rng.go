package sweep

// RNG is a small deterministic random stream (splitmix64) for seeded
// simulation inputs. It exists so models can draw platform-stable random
// numbers from a Job seed without importing math/rand: the sequence depends
// only on the seed, never on global state, so any draw is replayable from
// (base seed, job index) alone. Derive independent streams for separate
// concerns with NewRNG(Seed(jobSeed, n)) so adding draws to one concern
// cannot perturb another.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with s. Equal seeds yield equal sequences.
func NewRNG(s uint64) *RNG { return &RNG{state: s} }

// State returns the stream cursor. A stream rewound to a captured cursor
// with SetState replays the exact draw sequence from that point — the
// snapshot layer uses the pair to make restored runs draw identically.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds (or advances) the stream to a cursor captured via State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sweep.RNG.Intn: n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sweep.RNG.Int63n: n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
