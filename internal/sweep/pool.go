package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Pool errors.
var (
	// ErrSaturated is returned by TrySubmit when the bounded queue is full —
	// the backpressure signal a server maps to 429 + Retry-After.
	ErrSaturated = errors.New("sweep: pool queue full")
	// ErrClosed is returned by TrySubmit after Close.
	ErrClosed = errors.New("sweep: pool closed")
)

// Pool is the long-running sibling of Run: a persistent worker pool with a
// bounded submission queue. Where Run executes a known batch and returns,
// Pool serves an open-ended stream of independent tasks (the simulation job
// server) with explicit backpressure — a full queue rejects instead of
// blocking — and a drain path for graceful shutdown.
type Pool struct {
	queue chan func(worker int)
	wg    sync.WaitGroup

	queued   atomic.Int64
	inFlight atomic.Int64

	// Instrumentation: lifetime counters and queue-wait tracking (the time
	// an accepted task sits in the queue before a worker picks it up).
	// Diagnostics only — nothing here feeds results.
	submitted   atomic.Uint64
	completed   atomic.Uint64
	waitTotalNs atomic.Int64
	waitMaxNs   atomic.Int64

	mu     sync.Mutex
	closed bool
	idle   chan struct{} // closed when queued+inFlight drops to 0 after Close
}

// NewPool starts workers goroutines serving a queue of at most depth
// pending tasks. workers <= 0 defaults to 1; depth <= 0 defaults to
// 2*workers.
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	p := &Pool{
		queue: make(chan func(worker int), depth),
		idle:  make(chan struct{}),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer p.wg.Done()
			for fn := range p.queue {
				p.queued.Add(-1)
				p.inFlight.Add(1)
				fn(worker)
				p.inFlight.Add(-1)
			}
		}(w)
	}
	return p
}

// TrySubmit enqueues fn without blocking. It returns ErrSaturated when the
// queue is full and ErrClosed after Close; nil means a worker will run fn.
func (p *Pool) TrySubmit(fn func(worker int)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	enqueued := time.Now()
	wrapped := func(worker int) {
		wait := time.Since(enqueued).Nanoseconds()
		p.waitTotalNs.Add(wait)
		for {
			cur := p.waitMaxNs.Load()
			if wait <= cur || p.waitMaxNs.CompareAndSwap(cur, wait) {
				break
			}
		}
		fn(worker)
		p.completed.Add(1)
	}
	select {
	case p.queue <- wrapped:
		p.queued.Add(1)
		p.submitted.Add(1)
		return nil
	default:
		return ErrSaturated
	}
}

// PoolStats is a snapshot of the pool's lifetime instrumentation.
type PoolStats struct {
	// Submitted counts tasks accepted by TrySubmit.
	Submitted uint64 `json:"submitted"`
	// Completed counts tasks that finished executing.
	Completed uint64 `json:"completed"`
	// QueueWaitAvgMS is the mean queue wait of completed-or-started tasks.
	QueueWaitAvgMS float64 `json:"queue_wait_avg_ms"`
	// QueueWaitMaxMS is the worst queue wait observed.
	QueueWaitMaxMS float64 `json:"queue_wait_max_ms"`
}

// Stats returns the pool's instrumentation snapshot. Counters are read
// individually, so a snapshot taken under load is approximate.
func (p *Pool) Stats() PoolStats {
	s := PoolStats{
		Submitted:      p.submitted.Load(),
		Completed:      p.completed.Load(),
		QueueWaitMaxMS: float64(p.waitMaxNs.Load()) / 1e6,
	}
	if started := s.Submitted - uint64(p.queued.Load()); started > 0 {
		s.QueueWaitAvgMS = float64(p.waitTotalNs.Load()) / 1e6 / float64(started)
	}
	return s
}

// Queued returns the number of accepted tasks not yet picked up by a
// worker.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// InFlight returns the number of tasks currently executing.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Cap returns the queue capacity.
func (p *Pool) Cap() int { return cap(p.queue) }

// Close stops admission. Tasks already accepted — queued or in flight —
// still run to completion; use Drain to wait for them. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.queue)
	go func() {
		p.wg.Wait()
		close(p.idle)
	}()
}

// Drain closes the pool and blocks until every accepted task has finished
// or ctx is done, returning ctx's cause in the latter case — the graceful-
// shutdown path: stop accepting, let in-flight jobs complete.
func (p *Pool) Drain(ctx context.Context) error {
	p.Close()
	select {
	case <-p.idle:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
