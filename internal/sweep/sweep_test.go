package sweep

import (
	"fmt"
	"testing"

	"repro/internal/sysc"
)

// simJob runs a tiny self-contained simulation whose result depends only on
// the job parameters — the shape every sweep job must have.
func simJob(period sysc.Time, horizon sysc.Time) int {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	ticks := 0
	sim.Spawn("ticker", func(th *sysc.Thread) {
		for {
			th.Wait(period)
			ticks++
		}
	})
	if err := sim.Start(horizon); err != nil {
		panic(err)
	}
	return ticks
}

func TestRunMergesInJobOrder(t *testing.T) {
	jobs := []sysc.Time{1 * sysc.Ms, 2 * sysc.Ms, 5 * sysc.Ms, 10 * sysc.Ms, 3 * sysc.Ms}
	want := Run(Runner{Workers: 1}, jobs, func(_ Job, p sysc.Time) int {
		return simJob(p, 100*sysc.Ms)
	})
	for _, workers := range []int{2, 4, 0} {
		got := Run(Runner{Workers: workers}, jobs, func(_ Job, p sysc.Time) int {
			return simJob(p, 100*sysc.Ms)
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: merged results %v, want sequential %v",
				workers, got, want)
		}
	}
	if want[0] != 100 || want[3] != 10 {
		t.Fatalf("simulated tick counts wrong: %v", want)
	}
}

func TestJobCarriesIndexAndDeterministicSeed(t *testing.T) {
	jobs := make([]int, 16)
	type meta struct {
		index int
		seed  uint64
	}
	collect := func(workers int) []meta {
		out := make([]meta, len(jobs))
		Run(Runner{Workers: workers, BaseSeed: 7}, jobs, func(j Job, _ int) int {
			out[j.Index] = meta{index: j.Index, seed: j.Seed}
			return 0
		})
		return out
	}
	seq := collect(1)
	par := collect(4)
	for i := range seq {
		if seq[i].index != i {
			t.Fatalf("job %d reported index %d", i, seq[i].index)
		}
		if seq[i] != par[i] {
			t.Fatalf("job %d metadata differs across worker counts: %v vs %v",
				i, seq[i], par[i])
		}
		if seq[i].seed != Seed(7, i) {
			t.Fatalf("job %d seed %#x, want Seed(7,%d)=%#x",
				i, seq[i].seed, i, Seed(7, i))
		}
	}
	// Distinct indices must get distinct seeds.
	seen := map[uint64]bool{}
	for _, m := range seq {
		if seen[m.seed] {
			t.Fatalf("duplicate seed %#x", m.seed)
		}
		seen[m.seed] = true
	}
}

func TestRunHandlesEdgeShapes(t *testing.T) {
	if got := Run(Runner{Workers: 4}, nil, func(_ Job, _ int) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty job list returned %v", got)
	}
	// More workers than jobs: the pool clamps and still covers every job.
	got := Run(Runner{Workers: 64}, []int{10, 20}, func(_ Job, v int) int { return v * 2 })
	if got[0] != 20 || got[1] != 40 {
		t.Fatalf("clamped pool returned %v", got)
	}
	// Map uses default settings.
	got = Map([]int{1, 2, 3}, func(j Job, v int) int { return v + j.Index })
	if fmt.Sprint(got) != "[1 3 5]" {
		t.Fatalf("Map returned %v", got)
	}
}
