// Package sweep runs batches of independent simulations across a worker
// pool. Experiment grids (the Table 2 sweep, ablations, calibration runs)
// are embarrassingly parallel: every grid point builds its own Simulator, so
// N points can run on N cores. The runner preserves determinism — results
// come back in job order regardless of worker count, and each job gets a
// deterministic seed derived from (base seed, job index) — so a parallel
// sweep merges to the same table as a sequential one.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Job carries the scheduling context handed to each run function.
type Job struct {
	// Index is the job's position in the input slice (and in the merged
	// result slice).
	Index int
	// Seed is a deterministic per-job seed derived from the runner's base
	// seed and Index. Jobs that need randomness must use it (never global
	// rand) so results are independent of worker count and replayable.
	Seed uint64
	// Worker identifies the pool worker executing the job. Diagnostics
	// only: anything affecting results must depend on Index/Seed alone.
	Worker int
}

// Seed derives the per-job seed for index i from base using a splitmix64
// step: cheap, well-distributed, and stable across platforms.
func Seed(base uint64, i int) uint64 {
	z := base + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Runner executes independent jobs across a bounded worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// BaseSeed is folded into every job seed (0 is a valid base).
	BaseSeed uint64
}

// Run executes run(job, jobs[i]) for every element of jobs and returns the
// results in input order. Each call must be self-contained: build its own
// Simulator, run it, extract results. With Workers == 1 jobs execute
// strictly in input order on the calling goroutine — the sequential
// reference path.
func Run[J, R any](r Runner, jobs []J, run func(Job, J) R) []R {
	results, _ := RunContext(context.Background(), r, jobs, run)
	return results
}

// RunContext is Run threaded through a context: no new job starts once ctx
// is done. Jobs already in flight finish (a run function that wants
// mid-job cancellation should itself observe ctx, e.g. via
// sysc.StartContext), queued jobs are skipped, and the context's cause is
// returned alongside the partial results — results[i] is the zero R for
// every job that never ran. A nil error means every job completed.
func RunContext[J, R any](ctx context.Context, r Runner, jobs []J, run func(Job, J) R) ([]R, error) {
	results := make([]R, len(jobs))
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	done := ctx.Done()
	if workers <= 1 {
		for i, j := range jobs {
			if err := cancelled(ctx, done); err != nil {
				return results, err
			}
			results[i] = run(Job{Index: i, Seed: Seed(r.BaseSeed, i), Worker: 0}, j)
		}
		return results, nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				if cancelled(ctx, done) != nil {
					continue // drain without running
				}
				results[i] = run(Job{Index: i, Seed: Seed(r.BaseSeed, i), Worker: worker}, jobs[i])
			}
		}(w)
	}
	var err error
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-done:
			err = context.Cause(ctx)
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err == nil {
		err = cancelled(ctx, done)
	}
	return results, err
}

// cancelled reports the context's cause once its done channel is closed
// (done == nil means the context can never be cancelled).
func cancelled(ctx context.Context, done <-chan struct{}) error {
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return context.Cause(ctx)
	default:
		return nil
	}
}

// Map is Run with default Runner settings (GOMAXPROCS workers, base seed 0).
func Map[J, R any](jobs []J, run func(Job, J) R) []R {
	return Run(Runner{}, jobs, run)
}
