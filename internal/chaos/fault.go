// Package chaos runs deterministic fault-injection campaigns against the
// RTK-Spec TRON kernel model with live invariant oracles.
//
// A campaign fans seeded jobs across a sweep worker pool. Each job builds a
// random-but-seeded task system (system.go), installs a random schedule of
// kernel perturbations through the fault hooks exposed by sysc/core/tkernel
// (injector.go), and checks kernel invariants at every quiescent point of
// the simulation (oracle.go). Everything a job does derives from
// (campaign base seed, job index) alone, so any verdict — including a
// failure — replays bit-for-bit regardless of worker count, and a failing
// fault schedule can be minimized offline (minimize.go).
package chaos

import (
	"fmt"

	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// FaultKind classifies one injected perturbation.
type FaultKind int

// Fault kinds. All except PoolLeak are behavior-level faults: they perturb
// timing and resource availability in ways a correct kernel must absorb
// without violating any invariant. PoolLeak corrupts kernel bookkeeping
// itself and therefore MUST be flagged by the pool-accounting oracle — it is
// the self-test proving the oracle layer catches real defects.
const (
	// SpuriousIRQ raises interrupt IntNo once at time At (jittered arrival
	// of an edge the device never generated).
	SpuriousIRQ FaultKind = iota
	// IRQBurst raises interrupt IntNo Count times, Gap apart, starting at
	// At (interrupt storm).
	IRQBurst
	// DropIRQ suppresses every raise of interrupt IntNo during [At, At+Dur)
	// (lost edge: faulty wire or masked controller).
	DropIRQ
	// ETMInflate multiplies every Consume cost by Pct/100 during
	// [At, At+Dur) (miscalibrated ETM, cache pollution, DVFS throttling).
	ETMInflate
	// TickDelay defers the timer-queue pass of every system tick in
	// [At, At+Dur) by Gap (late RTC interrupt delivery).
	TickDelay
	// PoolExhaust polls fixed pool Obj dry at At, holds every block for
	// Dur, then returns them all (a greedy driver hogging buffers).
	PoolExhaust
	// MbfFlood fills message buffer Obj with junk messages at At until the
	// buffer rejects them (a babbling producer).
	MbfFlood
	// PoolLeak corrupts fixed pool Obj's accounting at At: one free block
	// vanishes without being recorded as outstanding. Corruption-class.
	PoolLeak
)

// String returns the kind's short name.
func (k FaultKind) String() string {
	switch k {
	case SpuriousIRQ:
		return "spurious-irq"
	case IRQBurst:
		return "irq-burst"
	case DropIRQ:
		return "drop-irq"
	case ETMInflate:
		return "etm-inflate"
	case TickDelay:
		return "tick-delay"
	case PoolExhaust:
		return "pool-exhaust"
	case MbfFlood:
		return "mbf-flood"
	case PoolLeak:
		return "pool-leak"
	}
	return "?"
}

// Fault is one scheduled perturbation. Which fields matter depends on Kind.
type Fault struct {
	Kind  FaultKind
	At    sysc.Time  // injection time
	Dur   sysc.Time  // window length (DropIRQ, ETMInflate, TickDelay, PoolExhaust)
	Gap   sysc.Time  // spacing (IRQBurst) or deferral (TickDelay)
	IntNo int        // target interrupt (SpuriousIRQ, IRQBurst, DropIRQ)
	Obj   tkernel.ID // target object (PoolExhaust, MbfFlood, PoolLeak)
	Pct   int        // cost multiplier in percent (ETMInflate)
	Count int        // raises in a burst (IRQBurst)
}

// String renders the fault compactly for logs and repro reports.
func (f Fault) String() string {
	switch f.Kind {
	case SpuriousIRQ:
		return fmt.Sprintf("%v %s int=%d", f.At, f.Kind, f.IntNo)
	case IRQBurst:
		return fmt.Sprintf("%v %s int=%d n=%d gap=%v", f.At, f.Kind, f.IntNo, f.Count, f.Gap)
	case DropIRQ:
		return fmt.Sprintf("%v %s int=%d dur=%v", f.At, f.Kind, f.IntNo, f.Dur)
	case ETMInflate:
		return fmt.Sprintf("%v %s pct=%d dur=%v", f.At, f.Kind, f.Pct, f.Dur)
	case TickDelay:
		return fmt.Sprintf("%v %s defer=%v dur=%v", f.At, f.Kind, f.Gap, f.Dur)
	case PoolExhaust:
		return fmt.Sprintf("%v %s mpf=%d hold=%v", f.At, f.Kind, f.Obj, f.Dur)
	case MbfFlood:
		return fmt.Sprintf("%v %s mbf=%d", f.At, f.Kind, f.Obj)
	case PoolLeak:
		return fmt.Sprintf("%v %s mpf=%d", f.At, f.Kind, f.Obj)
	}
	return fmt.Sprintf("%v ?", f.At)
}

// Schedule is an injector program: the faults of one job, in creation order
// (injection order is governed by each fault's At).
type Schedule []Fault

// Targets names the kernel objects a schedule may perturb. BuildSystem
// creates objects in a fixed order, so IDs are the same for every seed.
type Targets struct {
	IntNos []int      // defined external interrupts
	Mpf    tkernel.ID // fixed pool to exhaust/leak
	Mbf    tkernel.ID // message buffer to flood
}

// behaviorKinds are the fault kinds a correct kernel must absorb.
var behaviorKinds = []FaultKind{
	SpuriousIRQ, IRQBurst, DropIRQ, ETMInflate, TickDelay, PoolExhaust, MbfFlood,
}

// available reports whether the targets provide what kind needs: IRQ
// faults need a defined interrupt, pool faults a fixed pool, floods a
// message buffer. ETMInflate and TickDelay perturb the kernel itself and
// are always available.
func (t Targets) available(kind FaultKind) bool {
	switch kind {
	case SpuriousIRQ, IRQBurst, DropIRQ:
		return len(t.IntNos) > 0
	case PoolExhaust, PoolLeak:
		return t.Mpf != 0
	case MbfFlood:
		return t.Mbf != 0
	}
	return true
}

// RandomSchedule draws n faults over the window [0, dur) from rng. With
// corrupt set, PoolLeak joins the draw pool, so some schedules contain
// corruption faults the oracles must catch. Kinds whose target class the
// Targets lack are filtered out of the pool (order preserved, so full
// targets draw exactly as before). All draws come from rng alone: equal
// (rng seed, targets, n, dur, corrupt) give equal schedules.
func RandomSchedule(rng *sweep.RNG, t Targets, n int, dur sysc.Time, corrupt bool) Schedule {
	all := behaviorKinds
	if corrupt {
		all = append(append([]FaultKind(nil), behaviorKinds...), PoolLeak)
	}
	var kinds []FaultKind
	for _, k := range all {
		if t.available(k) {
			kinds = append(kinds, k)
		}
	}
	var out Schedule
	for i := 0; i < n; i++ {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))]}
		// Land inside the middle 80% of the run so windows neither straddle
		// boot nor get truncated by the horizon.
		f.At = dur/10 + sysc.Time(rng.Int63n(int64(dur*8/10)))
		switch f.Kind {
		case SpuriousIRQ:
			f.IntNo = t.IntNos[rng.Intn(len(t.IntNos))]
		case IRQBurst:
			f.IntNo = t.IntNos[rng.Intn(len(t.IntNos))]
			f.Count = 2 + rng.Intn(6)
			f.Gap = sysc.Time(50+rng.Intn(400)) * sysc.Us
		case DropIRQ:
			f.IntNo = t.IntNos[rng.Intn(len(t.IntNos))]
			f.Dur = sysc.Time(2+rng.Intn(10)) * sysc.Ms
		case ETMInflate:
			f.Pct = 110 + 10*rng.Intn(30) // 1.1x .. 4.0x
			f.Dur = sysc.Time(2+rng.Intn(10)) * sysc.Ms
		case TickDelay:
			f.Gap = sysc.Time(100+100*rng.Intn(8)) * sysc.Us
			f.Dur = sysc.Time(2+rng.Intn(8)) * sysc.Ms
		case PoolExhaust:
			f.Obj = t.Mpf
			f.Dur = sysc.Time(1+rng.Intn(8)) * sysc.Ms
		case MbfFlood:
			f.Obj = t.Mbf
		case PoolLeak:
			f.Obj = t.Mpf
		}
		out = append(out, f)
	}
	return out
}
