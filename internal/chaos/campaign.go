package chaos

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/event"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a campaign.
type Config struct {
	Seeds    int    // jobs to run (default 16)
	BaseSeed uint64 // campaign seed; job i uses sweep.Seed(BaseSeed, i)
	Workers  int    // sweep pool size (<= 0: GOMAXPROCS); never affects results

	Dur      sysc.Time // simulated time per job (default 150 ms)
	Tasks    int       // application tasks per job (default 6)
	Faults   int       // faults per schedule (default 5)
	Corrupt  bool      // include corruption faults (PoolLeak) in the draw
	Minimize bool      // ddmin failing schedules to a minimal repro
	Engine   string    // T-THREAD engine ("" = goroutine)

	// Synthetic, when non-nil, replaces the built-in chaos application:
	// each job generates a fresh workload.TaskSet from stream 0 of its own
	// seed and runs it under the fault schedule, with targets derived from
	// the generated objects. Tasks is ignored (the generator's Tasks field
	// governs).
	Synthetic *workload.GenSpec

	OracleInterval sysc.Time // oracle throttle (default 1 ms)
}

func (c Config) normalized() Config {
	if c.Seeds <= 0 {
		c.Seeds = 16
	}
	if c.Dur <= 0 {
		c.Dur = 150 * sysc.Ms
	}
	if c.Tasks <= 0 {
		c.Tasks = 6
	}
	if c.Faults < 0 {
		c.Faults = 0
	} else if c.Faults == 0 {
		c.Faults = 5
	}
	if c.OracleInterval <= 0 {
		c.OracleInterval = 1 * sysc.Ms
	}
	return c
}

// Verdict is one job's outcome. Every field derives from (BaseSeed, Index)
// alone — nothing here depends on worker count or wall-clock — so campaign
// summaries are byte-identical however the pool is sized.
type Verdict struct {
	Index int
	Seed  uint64
	Pass  bool

	Schedule    Schedule
	FaultsFired int
	Checks      int
	Violations  []Violation

	// Deterministic activity digest.
	Ticks       uint64
	CtxSwitches uint64
	Preemptions uint64
	Interrupts  uint64
	Cycles      int

	// Failure artifacts.
	Minimized    Schedule // minimal failing sub-schedule (when minimization ran)
	MinimizeRuns int
	Repro        string // fault log + violations + fault-annotated Gantt window
}

// Report is a full campaign result.
type Report struct {
	Cfg      Config
	Verdicts []Verdict
}

// Failures returns the indexes of failing jobs, in order.
func (r Report) Failures() []int {
	var out []int
	for _, v := range r.Verdicts {
		if !v.Pass {
			out = append(out, v.Index)
		}
	}
	return out
}

// Summary renders the campaign verdict table. The text is a pure function
// of the verdicts, which are pure functions of (BaseSeed, job index): any
// worker count yields the identical byte sequence.
func (r Report) Summary() string {
	var b strings.Builder
	c := r.Cfg
	fmt.Fprintf(&b, "chaos campaign: seeds=%d base=0x%016x dur=%v tasks=%d faults=%d corrupt=%v\n",
		c.Seeds, c.BaseSeed, c.Dur, c.Tasks, c.Faults, c.Corrupt)
	if c.Synthetic != nil {
		gs := c.Synthetic.Normalized()
		fmt.Fprintf(&b, "synthetic workload: tasks=%d util=%.2f periods=%v..%v sems=%d mutexes=%d mbfs=%d flags=%d irqs=%d\n",
			gs.Tasks, gs.Util, gs.PeriodMin.Std(), gs.PeriodMax.Std(),
			gs.Sems, gs.Mutexes, gs.Mbfs, gs.Flags, gs.Interrupts)
	}
	for _, v := range r.Verdicts {
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "job %4d seed=0x%016x %s fired=%d/%d checks=%d ticks=%d ctx=%d pre=%d irq=%d cycles=%d\n",
			v.Index, v.Seed, status, v.FaultsFired, len(v.Schedule), v.Checks,
			v.Ticks, v.CtxSwitches, v.Preemptions, v.Interrupts, v.Cycles)
		for _, viol := range v.Violations {
			fmt.Fprintf(&b, "         %s\n", viol)
		}
		if v.Minimized != nil {
			fmt.Fprintf(&b, "         minimized to %d fault(s) in %d runs:\n",
				len(v.Minimized), v.MinimizeRuns)
			for _, f := range v.Minimized {
				fmt.Fprintf(&b, "           %s\n", f)
			}
		}
	}
	fmt.Fprintf(&b, "failures: %d/%d\n", len(r.Failures()), len(r.Verdicts))
	return b.String()
}

// Run executes the campaign across the sweep pool and returns all verdicts
// in job order.
func Run(cfg Config) Report {
	r, _ := RunContext(context.Background(), cfg)
	return r
}

// RunContext runs the campaign under a context: once ctx is done no new job
// starts and in-flight simulations stop at their next quiescent point. The
// report then holds the verdicts of the jobs that completed (original
// indices kept) alongside the context's cause — the partial-result
// contract shared by server job cancellation and the CLI -timeout flag.
func RunContext(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.normalized()
	jobs := make([]int, cfg.Seeds)
	completed := make([]bool, cfg.Seeds)
	runner := sweep.Runner{Workers: cfg.Workers, BaseSeed: cfg.BaseSeed}
	verdicts, err := sweep.RunContext(ctx, runner, jobs, func(job sweep.Job, _ int) Verdict {
		v, ok := runSeed(ctx, cfg, job.Index, job.Seed)
		completed[job.Index] = ok
		return v
	})
	if err == nil {
		return Report{Cfg: cfg, Verdicts: verdicts}, nil
	}
	kept := make([]Verdict, 0, len(verdicts))
	for i, v := range verdicts {
		if completed[i] {
			kept = append(kept, v)
		}
	}
	return Report{Cfg: cfg, Verdicts: kept}, err
}

// RunJob replays a single campaign job from (cfg.BaseSeed, index) — the
// whole failure-replay contract in one call.
func RunJob(cfg Config, index int) Verdict {
	v, _ := RunJobContext(context.Background(), cfg, index)
	return v
}

// RunJobContext is RunJob under a context (see RunContext). The boolean
// reports whether the job ran to completion.
func RunJobContext(ctx context.Context, cfg Config, index int) (Verdict, bool) {
	cfg = cfg.normalized()
	return runSeed(ctx, cfg, index, sweep.Seed(cfg.BaseSeed, index))
}

// RunJobTrace replays a single campaign job with a streaming Perfetto
// exporter subscribed to the kernel's event bus, writing the trace-event
// JSON to w. Minimization is skipped: the trace documents the full original
// schedule. It returns the verdict and any trace-write error.
func RunJobTrace(cfg Config, index int, w io.Writer) (Verdict, error) {
	return RunJobTraceContext(context.Background(), cfg, index, w)
}

// RunJobTraceContext is RunJobTrace under a context (see RunContext).
func RunJobTraceContext(ctx context.Context, cfg Config, index int, w io.Writer) (Verdict, error) {
	cfg = cfg.normalized()
	seed := sweep.Seed(cfg.BaseSeed, index)
	sched := drawSchedule(cfg, seed)

	v, err := execute(ctx, cfg, seed, sched, w)
	v.Index = index
	v.Seed = seed
	return v, err
}

// jobTargets returns the fault targets of one job: the fixed object layout
// of the built-in application, or the objects the job's generated TaskSet
// will create (workload.Build allocates IDs in declaration order, so the
// targets are known before anything is built).
func jobTargets(cfg Config, seed uint64) Targets {
	if cfg.Synthetic == nil {
		return Targets{IntNos: []int{1, 2}, Mpf: 1, Mbf: 1}
	}
	ts := synthTaskSet(cfg, seed)
	t := Targets{}
	for _, irq := range ts.Interrupts {
		t.IntNos = append(t.IntNos, irq.IntNo)
	}
	if len(ts.Mbfs) > 0 {
		t.Mbf = 1
	}
	return t
}

// synthTaskSet draws the job's synthetic task set: stream 0 of the job
// seed, the same stream the built-in application draws from.
func synthTaskSet(cfg Config, seed uint64) *workload.TaskSet {
	return workload.Generate(sweep.NewRNG(sweep.Seed(seed, 0)), *cfg.Synthetic)
}

// drawSchedule draws the job's fault schedule. Stream 1 of the job seed
// drives the schedule; stream 0 drives the application (built-in steps or
// generated task set). Separate streams keep the two draws independent of
// each other's draw counts.
func drawSchedule(cfg Config, seed uint64) Schedule {
	rng := sweep.NewRNG(sweep.Seed(seed, 1))
	return RandomSchedule(rng, jobTargets(cfg, seed), cfg.Faults, cfg.Dur, cfg.Corrupt)
}

// runSeed draws the job's fault schedule, executes it, and minimizes on
// failure. The boolean is false when ctx stopped the run early — the
// verdict is then partial and must not count as a campaign result.
func runSeed(ctx context.Context, cfg Config, index int, seed uint64) (Verdict, bool) {
	sched := drawSchedule(cfg, seed)

	v, err := execute(ctx, cfg, seed, sched, nil)
	v.Index = index
	v.Seed = seed
	if err != nil && ctx.Err() != nil {
		return v, false
	}

	if !v.Pass && cfg.Minimize && len(sched) > 1 {
		// Warm path: bisect from an in-memory checkpoint of the fault-free
		// prefix when the configuration supports it; any warm failure drops
		// the trial — and all later ones — back to a cold rebuild.
		wm := newWarmMinimizer(ctx, cfg, seed, sched)
		min, runs := ddmin(sched, func(sub Schedule) bool {
			if wm != nil {
				if pass, err := wm.trial(ctx, sub); err == nil {
					return !pass
				}
				wm.close()
				wm = nil
			}
			sv, _ := execute(ctx, cfg, seed, sub, nil)
			return !sv.Pass
		})
		if wm != nil {
			wm.close()
		}
		v.MinimizeRuns = runs
		if len(min) < len(sched) {
			v.Minimized = min
			// Re-derive the repro from the minimal schedule so the report
			// shows only the faults that matter.
			rv, _ := execute(ctx, cfg, seed, min, nil)
			v.Repro = rv.Repro
		}
		if ctx.Err() != nil {
			return v, false
		}
	}
	return v, true
}

// execute runs one simulation of seed's application under sched and renders
// failure artifacts. A non-nil traceW attaches a streaming Perfetto exporter
// for the run; its write/encode error — or the context's cause when ctx
// stopped the run early — is returned.
func execute(ctx context.Context, cfg Config, seed uint64, sched Schedule, traceW io.Writer) (Verdict, error) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()

	scfg := SystemConfig{Tasks: cfg.Tasks, Costs: tkernel.DefaultCosts(), Schedule: sched,
		Engine: cfg.Engine}
	var pf *trace.Perfetto
	if traceW != nil {
		scfg.Bus = event.NewBus()
		pf = trace.AttachPerfetto(scfg.Bus, traceW)
	}
	var sys *System
	if cfg.Synthetic != nil {
		sys = BuildSyntheticSystem(sim, seed, scfg, synthTaskSet(cfg, seed))
	} else {
		sys = BuildSystem(sim, seed, scfg)
	}
	inj := sys.Inj
	orc := Attach(sys.K, sys.Gantt, cfg.OracleInterval)

	var cancelErr error
	if err := sim.StartContext(ctx, cfg.Dur); err != nil {
		if ctx.Err() != nil {
			cancelErr = err
		} else {
			orc.fail(sim.Now(), "simulator", "%v", err)
		}
	}
	orc.Final(sim.Now())

	v := Verdict{
		Pass:        orc.Passed(),
		Schedule:    sched,
		FaultsFired: len(inj.Fired()),
		Checks:      orc.Checks(),
		Violations:  orc.Violations,
		Ticks:       sys.K.Ticks(),
		CtxSwitches: sys.K.API().ContextSwitches(),
		Preemptions: sys.K.API().Preemptions(),
		Interrupts:  sys.K.API().Interrupts(),
		Cycles:      sys.Cycles(),
	}
	if !v.Pass {
		v.Repro = renderRepro(sys, inj, orc)
	}
	if pf != nil {
		if err := pf.Close(); err != nil && cancelErr == nil {
			cancelErr = err
		}
	}
	return v, cancelErr
}

// renderRepro builds the failure report: the injected-fault log, every
// violation, and a fault-annotated Gantt window around the first violation.
func renderRepro(sys *System, inj *Injector, orc *Oracles) string {
	var b strings.Builder
	b.WriteString("fault schedule:\n")
	for _, f := range inj.Fired() {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	b.WriteString("violations:\n")
	for _, v := range orc.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	first := orc.Violations[0].At
	from := first - 10*sysc.Ms
	if from < 0 {
		from = 0
	}
	to := first + 2*sysc.Ms
	fmt.Fprintf(&b, "trace window around first violation (%v):\n", first)
	sys.Gantt.Render(&b, from, to, 100)
	for _, f := range inj.Fired() {
		if f.At >= from && f.At < to {
			fmt.Fprintf(&b, "  fault @ %v: %s\n", f.At, f.F)
		}
	}
	return b.String()
}
