package chaos

import (
	"context"
	"testing"

	"repro/internal/run/opts"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/workload"
)

// TestWarmTrialMatchesCold is the warm-ddmin equivalence property: for 20
// campaign seeds, every ddmin-style trial — the full schedule, each
// single-fault subset and the empty subset — must produce the same verdict
// and the same deterministic activity digest whether it runs warm
// (checkpoint restore + subset activation) or cold (full rebuild). This is
// exactly the predicate ddmin consults, so trial equivalence implies
// minimized-schedule equivalence.
func TestWarmTrialMatchesCold(t *testing.T) {
	cfg := Config{
		BaseSeed:  0xD15EA5E,
		Dur:       50 * sysc.Ms,
		Engine:    opts.EngineContinuation,
		Synthetic: &workload.GenSpec{Interrupts: 2},
	}.normalized()
	ctx := context.Background()
	for index := 0; index < 20; index++ {
		seed := sweep.Seed(cfg.BaseSeed, index)
		sched := drawSchedule(cfg, seed)

		wm := newWarmMinimizer(ctx, cfg, seed, sched)
		if wm == nil {
			t.Fatalf("job %d: warm minimizer refused a synthetic continuation config", index)
		}

		subsets := []Schedule{sched, nil}
		for i := range sched {
			subsets = append(subsets, Schedule{sched[i]})
		}
		for si, sub := range subsets {
			warmPass, err := wm.trial(ctx, sub)
			if err != nil {
				t.Fatalf("job %d subset %d: warm trial: %v", index, si, err)
			}
			warmTicks := wm.sys.K.Ticks()
			warmCtx := wm.sys.K.API().ContextSwitches()
			warmIrq := wm.sys.K.API().Interrupts()
			warmCycles := wm.sys.Cycles()

			cold, _ := execute(ctx, cfg, seed, sub, nil)
			if cold.Pass != warmPass {
				t.Errorf("job %d subset %d: verdict differs: warm pass=%v cold pass=%v",
					index, si, warmPass, cold.Pass)
			}
			if cold.Ticks != warmTicks || cold.CtxSwitches != warmCtx ||
				cold.Interrupts != warmIrq || cold.Cycles != warmCycles {
				t.Errorf("job %d subset %d: digest differs: warm ticks=%d ctx=%d irq=%d cycles=%d, cold ticks=%d ctx=%d irq=%d cycles=%d",
					index, si, warmTicks, warmCtx, warmIrq, warmCycles,
					cold.Ticks, cold.CtxSwitches, cold.Interrupts, cold.Cycles)
			}
		}
		wm.close()
	}
}

// TestWarmMinimizerRefusesUnsupported: the built-in application and the
// goroutine engine are outside the snapshot envelope — the minimizer must
// signal cold fallback by returning nil, never by failing trials.
func TestWarmMinimizerRefusesUnsupported(t *testing.T) {
	ctx := context.Background()
	builtin := Config{Dur: 50 * sysc.Ms, Engine: opts.EngineContinuation}.normalized()
	if wm := newWarmMinimizer(ctx, builtin, 1, drawSchedule(builtin, 1)); wm != nil {
		wm.close()
		t.Fatalf("built-in app: want nil warm minimizer")
	}
	goro := Config{Dur: 50 * sysc.Ms, Synthetic: &workload.GenSpec{}}.normalized()
	if wm := newWarmMinimizer(ctx, goro, 1, drawSchedule(goro, 1)); wm != nil {
		wm.close()
		t.Fatalf("goroutine engine: want nil warm minimizer")
	}
}
