package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// Fired is one injection the injector actually performed, for the fault log
// of a repro report.
type Fired struct {
	At   sysc.Time
	F    Fault
	Note string
}

// String renders one fault-log line.
func (e Fired) String() string {
	if e.Note == "" {
		return fmt.Sprintf("[%v] fired %s", e.At, e.F)
	}
	return fmt.Sprintf("[%v] fired %s (%s)", e.At, e.F, e.Note)
}

// Injector drives one schedule of faults into a kernel instance. Window
// faults (ETMInflate, TickDelay, DropIRQ) install as construction-time
// hooks consulted by the kernel on its own paths; event faults
// (SpuriousIRQ, IRQBurst, PoolExhaust, MbfFlood, PoolLeak) each get a
// dedicated simulation thread that sleeps until its injection time —
// overlapping holds never delay later faults.
//
// Lifecycle: NewInjector partitions the schedule before the kernel exists,
// Configure freezes the window-fault hooks into the tkernel.Config, and
// Bind attaches the built kernel and spawns the event-fault threads. The
// kernel's fault instrumentation is therefore immutable from New onward —
// concurrent server jobs can never race on setter state.
type Injector struct {
	k     *tkernel.Kernel
	sched Schedule
	fired []Fired

	etm   []Fault // ETMInflate windows
	drops []Fault // DropIRQ windows
	ticks []Fault // TickDelay windows

	// One-shot firing latches so window faults log once, not per hit.
	logged map[int]bool
}

// NewInjector partitions sched into window and event faults. Call Configure
// on the kernel config, build the kernel, then Bind it.
func NewInjector(sched Schedule) *Injector {
	inj := &Injector{sched: sched, logged: map[int]bool{}}
	for _, f := range sched {
		switch f.Kind {
		case ETMInflate:
			inj.etm = append(inj.etm, f)
		case DropIRQ:
			inj.drops = append(inj.drops, f)
		case TickDelay:
			inj.ticks = append(inj.ticks, f)
		}
	}
	return inj
}

// Configure freezes the schedule's window-fault hooks into cfg. Hooks are
// only installed for fault kinds the schedule actually draws, so a
// fault-free schedule costs the kernel nothing.
func (inj *Injector) Configure(cfg *tkernel.Config) {
	if len(inj.etm) > 0 {
		cfg.ConsumeShaper = inj.shapeCost
	}
	if len(inj.drops) > 0 {
		cfg.InterruptFilter = inj.filterInt
	}
	if len(inj.ticks) > 0 {
		cfg.TickDelay = inj.delayTick
	}
}

// Bind attaches the kernel built from the Configure-d config and spawns the
// event-fault threads. Must run before the simulation starts (hooks are
// consulted from Boot onward; injection threads spawn at time zero and
// sleep until their fault's At).
func (inj *Injector) Bind(k *tkernel.Kernel) {
	inj.k = k
	for i, f := range inj.sched {
		switch f.Kind {
		case ETMInflate, DropIRQ, TickDelay:
		default:
			inj.spawnEvent(i, f)
		}
	}
}

// BindHooks attaches the kernel like Bind but spawns no event-fault
// threads — the warm-minimizer path, which simulates a fault-free prefix
// first and spawns each ddmin trial's threads after restoring the
// checkpoint (SpawnEvents). Pair with SetActive(nil) so the window hooks
// stay inert during the prefix.
func (inj *Injector) BindHooks(k *tkernel.Kernel) { inj.k = k }

// SetActive replaces the live window-fault partitions with those of sub.
// Hooks were frozen at Configure time from the full schedule, so sub must
// be a subset of it; kinds absent from sub leave their hook installed but
// inert (an inert hook is an identity function, indistinguishable from an
// absent one). Only meaningful on BindHooks-bound injectors.
func (inj *Injector) SetActive(sub Schedule) {
	inj.etm, inj.drops, inj.ticks = nil, nil, nil
	for _, f := range sub {
		switch f.Kind {
		case ETMInflate:
			inj.etm = append(inj.etm, f)
		case DropIRQ:
			inj.drops = append(inj.drops, f)
		case TickDelay:
			inj.ticks = append(inj.ticks, f)
		}
	}
}

// SpawnEvents spawns the event-fault threads of sub. Fault times are
// absolute and each thread sleeps until its own At, so spawning mid-run —
// right after a checkpoint restore — fires them exactly as threads spawned
// at time zero would.
func (inj *Injector) SpawnEvents(sub Schedule) {
	for i, f := range sub {
		switch f.Kind {
		case ETMInflate, DropIRQ, TickDelay:
		default:
			inj.spawnEvent(i, f)
		}
	}
}

// Reset clears the injection log for the next warm trial.
func (inj *Injector) Reset() {
	inj.fired = nil
	clear(inj.logged)
}

// Fired returns the fault log in injection order.
func (inj *Injector) Fired() []Fired { return inj.fired }

// log records one injection.
func (inj *Injector) log(f Fault, note string) {
	inj.fired = append(inj.fired, Fired{At: inj.k.Sim().Now(), F: f, Note: note})
}

// logWindowOnce records a window fault's first hit only.
func (inj *Injector) logWindowOnce(key int, f Fault, note string) {
	if !inj.logged[key] {
		inj.logged[key] = true
		inj.log(f, note)
	}
}

// in reports whether now lies in f's window.
func in(f Fault, now sysc.Time) bool { return now >= f.At && now < f.At+f.Dur }

// shapeCost is the Consume shaper: inside any ETMInflate window, execution
// costs stretch by the window's factor (stacking multiplicatively when
// windows overlap).
func (inj *Injector) shapeCost(t *core.TThread, c core.Cost, ctx trace.Context) core.Cost {
	now := inj.k.Sim().Now()
	for i, f := range inj.etm {
		if in(f, now) {
			inj.logWindowOnce(0x100+i, f, "first inflated slice: "+t.Name())
			c.Time = c.Time * sysc.Time(f.Pct) / 100
			c.Energy = c.Energy * core.Energy(f.Pct) / 100
		}
	}
	return c
}

// filterInt is the interrupt filter: raises of a dropped interrupt inside a
// DropIRQ window are suppressed.
func (inj *Injector) filterInt(intno int) tkernel.IntDecision {
	now := inj.k.Sim().Now()
	for i, f := range inj.drops {
		if f.IntNo == intno && in(f, now) {
			inj.logWindowOnce(0x200+i, f, fmt.Sprintf("dropping int %d", intno))
			return tkernel.IntDrop
		}
	}
	return tkernel.IntPass
}

// delayTick is the tick-delay hook: ticks inside a TickDelay window deliver
// their timer pass late (overlapping deferrals merge per sc_event rules).
func (inj *Injector) delayTick(tick uint64) sysc.Time {
	now := inj.k.Sim().Now()
	var d sysc.Time
	for i, f := range inj.ticks {
		if in(f, now) && f.Gap > d {
			inj.logWindowOnce(0x300+i, f, fmt.Sprintf("deferring tick %d", tick))
			d = f.Gap
		}
	}
	return d
}

// spawnEvent dedicates a simulation thread to one event fault. The thread is
// a plain sysc process (no T-THREAD): its service calls consume no kernel
// cost and use polling timeouts only, so it perturbs the system exactly as
// scheduled and never blocks in the kernel.
func (inj *Injector) spawnEvent(i int, f Fault) {
	k := inj.k
	k.Sim().Spawn(fmt.Sprintf("chaos.fault%d", i), func(th *sysc.Thread) {
		if f.At > th.Now() {
			th.Wait(f.At - th.Now())
		}
		switch f.Kind {
		case SpuriousIRQ:
			er := k.RaiseInterrupt(f.IntNo)
			inj.log(f, "raise: "+er.Error())
		case IRQBurst:
			for n := 0; n < f.Count; n++ {
				er := k.RaiseInterrupt(f.IntNo)
				if n == 0 {
					inj.log(f, "first raise: "+er.Error())
				}
				if f.Gap > 0 {
					th.Wait(f.Gap)
				}
			}
		case PoolExhaust:
			var held []*tkernel.MemBlock
			for {
				b, er := k.GetMpf(f.Obj, tkernel.TmoPol)
				if er != tkernel.EOK {
					break
				}
				held = append(held, b)
			}
			inj.log(f, fmt.Sprintf("holding %d blocks", len(held)))
			if f.Dur > 0 {
				th.Wait(f.Dur)
			}
			for _, b := range held {
				k.RelMpf(f.Obj, b)
			}
		case MbfFlood:
			junk := []byte("chaos-flood!")
			n := 0
			for n < 1024 {
				if er := k.SndMbf(f.Obj, junk, tkernel.TmoPol); er != tkernel.EOK {
					break
				}
				n++
			}
			inj.log(f, fmt.Sprintf("flooded %d messages", n))
		case PoolLeak:
			er := k.InjectPoolLeak(f.Obj)
			inj.log(f, "leak: "+er.Error())
		}
	})
}
