package chaos

import (
	"bytes"
	"testing"

	"repro/internal/sysc"
	"repro/internal/trace"
)

// TestTracedCampaignSchema replays a 20-seed campaign with a Perfetto
// exporter subscribed to each job's kernel bus: every job must pass its
// oracles (behavior-level faults only) and every trace must schema-check.
// This is the CI traced-campaign gate.
func TestTracedCampaignSchema(t *testing.T) {
	cfg := Config{Seeds: 20, BaseSeed: 0xDECAF, Dur: 60 * sysc.Ms}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		v, err := RunJobTrace(cfg, i, &buf)
		if err != nil {
			t.Fatalf("job %d: trace error: %v", i, err)
		}
		if !v.Pass {
			t.Errorf("job %d: oracle violations under tracing:\n%s", i, v.Repro)
		}
		n, err := trace.ValidatePerfetto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("job %d: trace record %d: %v", i, n, err)
		}
		if n < 100 {
			t.Errorf("job %d: suspiciously small trace: %d records", i, n)
		}
	}
}

// TestRunJobTraceVerdictMatchesRunJob pins that attaching the exporter does
// not perturb the simulation: the traced replay and the plain replay of the
// same job reach identical verdicts.
func TestRunJobTraceVerdictMatchesRunJob(t *testing.T) {
	cfg := Config{Seeds: 4, BaseSeed: 7, Dur: 80 * sysc.Ms}
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		tv, err := RunJobTrace(cfg, i, &buf)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		pv := RunJob(cfg, i)
		if tv.Pass != pv.Pass || tv.Checks != pv.Checks || tv.Ticks != pv.Ticks ||
			tv.CtxSwitches != pv.CtxSwitches || tv.Preemptions != pv.Preemptions ||
			tv.Interrupts != pv.Interrupts || tv.FaultsFired != pv.FaultsFired {
			t.Errorf("job %d: traced verdict %+v != plain verdict %+v", i, tv, pv)
		}
	}
}
