package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// Violation is one invariant breach caught by an oracle.
type Violation struct {
	At     sysc.Time
	Oracle string
	Detail string
}

// String renders one violation line.
func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Oracle, v.Detail)
}

// maxViolations bounds the report per run: a broken invariant tends to stay
// broken at every subsequent check, and the first few hits carry the signal.
const maxViolations = 32

// Oracles checks kernel invariants live during a simulation. Attach
// subscribes it to the kernel's event bus for quiescent points: checks run
// only when nothing is runnable and no update/delta activity remains — a
// stable snapshot between timesteps — throttled to one pass per interval of
// simulated time.
//
// Structural checks that can observe legal mid-transition states (a service
// body parked inside its atomic section while holding the dispatch lock, a
// handler interrupted at quiescence, a latched delayed dispatch) are gated
// on the kernel being scheduling-quiet; accounting checks (Gantt overlap,
// pool conservation, CET monotonicity, Petri token count) hold at every
// quiescent point unconditionally.
type Oracles struct {
	k        *tkernel.Kernel
	g        *trace.Gantt
	interval sysc.Time

	last   sysc.Time
	primed bool

	// Incremental overlap scan: Gantt segments are appended in nondecreasing
	// End order (threads are charged when their run slice completes), so one
	// high-water mark detects every overlap in O(1) per segment.
	segIdx int
	maxEnd sysc.Time

	lastBusy sysc.Time
	lastCET  map[*core.TThread]sysc.Time

	checks     int
	Violations []Violation
}

// Attach creates the oracle set for k (with optional Gantt g for the overlap
// check) and subscribes it to the kernel's event bus for quiescent points.
// interval <= 0 defaults to one check per millisecond of simulated time.
func Attach(k *tkernel.Kernel, g *trace.Gantt, interval sysc.Time) *Oracles {
	if interval <= 0 {
		interval = 1 * sysc.Ms
	}
	o := &Oracles{k: k, g: g, interval: interval, lastCET: map[*core.TThread]sysc.Time{}}
	k.Bus().Subscribe(o.observe, event.KindQuiescent)
	return o
}

// Checks returns how many oracle passes ran.
func (o *Oracles) Checks() int { return o.checks }

// Passed reports whether no invariant was violated.
func (o *Oracles) Passed() bool { return len(o.Violations) == 0 }

// observe handles quiescent-point events: throttle, then check.
func (o *Oracles) observe(e event.Event) {
	now := e.Time
	if o.primed && now-o.last < o.interval {
		return
	}
	o.primed = true
	o.last = now
	o.Check(now)
}

// Final runs one last unthrottled pass (call after the simulation returns,
// so the end-of-run state is always checked).
func (o *Oracles) Final(now sysc.Time) { o.Check(now) }

// fail records a violation, capped at maxViolations.
func (o *Oracles) fail(now sysc.Time, oracle, format string, args ...any) {
	if len(o.Violations) >= maxViolations {
		return
	}
	o.Violations = append(o.Violations, Violation{
		At: now, Oracle: oracle, Detail: fmt.Sprintf(format, args...),
	})
}

// Check runs every oracle once against the current kernel state.
func (o *Oracles) Check(now sysc.Time) {
	if len(o.Violations) >= maxViolations {
		return
	}
	o.checks++
	api := o.k.API()

	o.checkOverlap(now)
	o.checkAccounting(now)
	o.checkPools(now)

	// Scheduling-structure oracles only fire when no transient window is
	// open: a parked service body (dispatch locked), an interrupted handler,
	// or a latched delayed dispatch all legally show mixed state.
	if !api.DispatchLocked() && !api.InHandler() && !api.DispatchPending() {
		tasks := o.k.SnapshotTasks()
		o.checkRunning(now, tasks)
		o.checkReadyQueue(now, tasks)
		o.checkWaitQueues(now, tasks)
		o.checkMutexes(now, tasks)
	}
}

// checkOverlap: single-CPU non-overlap of Gantt execution segments.
func (o *Oracles) checkOverlap(now sysc.Time) {
	if o.g == nil {
		return
	}
	segs := o.g.Segments
	for ; o.segIdx < len(segs); o.segIdx++ {
		s := segs[o.segIdx]
		if s.Start < o.maxEnd && s.End > s.Start {
			o.fail(now, "gantt-overlap",
				"segment %s [%v,%v) starts before prior segment end %v",
				s.Thread, s.Start, s.End, o.maxEnd)
		}
		if s.End > o.maxEnd {
			o.maxEnd = s.End
		}
	}
}

// checkAccounting: CPU busy time and per-thread CET are monotone, busy never
// exceeds elapsed time, and every T-THREAD Petri net holds exactly one token.
func (o *Oracles) checkAccounting(now sysc.Time) {
	api := o.k.API()
	if b := api.BusyTime(); b < o.lastBusy {
		o.fail(now, "cpu-accounting", "busy time went backwards: %v -> %v", o.lastBusy, b)
	} else {
		o.lastBusy = b
		if b > now {
			o.fail(now, "cpu-accounting", "busy %v exceeds elapsed %v on one CPU", b, now)
		}
	}
	for _, tt := range api.Threads() {
		if n := tt.Net().TotalTokens(); n != 1 {
			o.fail(now, "petri-token", "thread %s holds %d tokens", tt.Name(), n)
		}
		if c := tt.CET(); c < o.lastCET[tt] {
			o.fail(now, "cet-monotonic", "thread %s CET went backwards: %v -> %v",
				tt.Name(), o.lastCET[tt], c)
		} else {
			o.lastCET[tt] = c
		}
	}
}

// checkPools: memory-pool conservation. Fixed pools: free + outstanding
// blocks == created blocks. Variable pools: free hole bytes + carved bytes
// == arena size. This is the oracle that catches PoolLeak corruption.
func (o *Oracles) checkPools(now sysc.Time) {
	for _, p := range o.k.SnapshotFixedPools() {
		if p.Free+p.Outstanding != p.Total {
			o.fail(now, "pool-accounting",
				"mpf#%d(%s): free %d + outstanding %d != total %d",
				p.ID, p.Name, p.Free, p.Outstanding, p.Total)
		}
	}
	for _, p := range o.k.SnapshotVariablePools() {
		if p.FreeBytes+p.AllocBytes != p.ArenaSize {
			o.fail(now, "pool-accounting",
				"mpl#%d(%s): free %d + allocated %d != arena %d",
				p.ID, p.Name, p.FreeBytes, p.AllocBytes, p.ArenaSize)
		}
	}
}

// checkRunning: at most one task RUNNING at any stable instant.
func (o *Oracles) checkRunning(now sysc.Time, tasks []tkernel.TaskInfo) {
	running := 0
	for _, t := range tasks {
		if t.State == core.StateRunning {
			running++
		}
	}
	if running > 1 {
		o.fail(now, "single-running", "%d tasks RUNNING simultaneously", running)
	}
}

// checkReadyQueue: the external scheduler's queue population equals the
// number of READY threads (the RUNNING thread is never queued).
func (o *Oracles) checkReadyQueue(now sysc.Time, tasks []tkernel.TaskInfo) {
	ready := 0
	for _, tt := range o.k.API().Threads() {
		if tt.State() == core.StateReady {
			ready++
		}
	}
	if n := o.k.API().ReadyCount(); n != ready {
		o.fail(now, "ready-queue", "scheduler holds %d threads, %d are READY", n, ready)
	}
}

// checkWaitQueues: no lost wakeups, expressed structurally — every task
// WAITING on a queue-backed kernel object must be a member of that object's
// wait queue (a task missing from the queue can never be granted the
// resource and would sleep forever). Bare waits ("sleep", "delay") have no
// queue; object classes without snapshots (flags, mailboxes, rendezvous)
// are skipped.
func (o *Oracles) checkWaitQueues(now sysc.Time, tasks []tkernel.TaskInfo) {
	sets := map[string]map[tkernel.ID]bool{}
	add := func(class string, id tkernel.ID, name string, waiting ...[]tkernel.WaitRef) {
		set := map[tkernel.ID]bool{}
		for _, refs := range waiting {
			for _, w := range refs {
				set[w.ID] = true
			}
		}
		sets[objLabel(class, id, name)] = set
	}
	for _, m := range o.k.SnapshotMutexes() {
		add("mtx", m.ID, m.Name, m.Waiting)
	}
	for _, s := range o.k.SnapshotSemaphores() {
		add("sem", s.ID, s.Name, s.Waiting)
	}
	for _, p := range o.k.SnapshotFixedPools() {
		add("mpf", p.ID, p.Name, p.Waiting)
	}
	for _, p := range o.k.SnapshotVariablePools() {
		add("mpl", p.ID, p.Name, p.Waiting)
	}
	for _, b := range o.k.SnapshotMessageBuffers() {
		add("mbf", b.ID, b.Name, b.SendWaiting, b.RecvWaiting)
	}
	for _, t := range tasks {
		if t.State != core.StateWaiting && t.State != core.StateWaitSuspended {
			continue
		}
		set, ok := sets[t.WaitObj]
		if !ok {
			continue
		}
		if !set[t.ID] {
			o.fail(now, "wait-queue",
				"task#%d(%s) WAITING on %s but absent from its wait queue",
				t.ID, t.Name, t.WaitObj)
		}
	}
}

// checkMutexes: ownership sanity and priority-inheritance correctness. A
// task's effective priority must equal the strongest of its base priority,
// the ceilings of owned TA_CEILING mutexes, and the head-waiter priority of
// owned TA_INHERIT mutexes (mirroring the kernel's recompute rule); owners
// are never dormant and never wait on a mutex they own.
func (o *Oracles) checkMutexes(now sysc.Time, tasks []tkernel.TaskInfo) {
	byID := map[tkernel.ID]tkernel.TaskInfo{}
	for _, t := range tasks {
		byID[t.ID] = t
	}
	expected := map[tkernel.ID]int{}
	for _, t := range tasks {
		expected[t.ID] = t.BasePrio
	}
	for _, m := range o.k.SnapshotMutexes() {
		if !m.HasOwner {
			continue
		}
		owner, ok := byID[m.Owner]
		if !ok {
			o.fail(now, "mutex", "mtx#%d(%s) owned by unknown task %d", m.ID, m.Name, m.Owner)
			continue
		}
		if owner.State == core.StateDormant {
			o.fail(now, "mutex", "mtx#%d(%s) owned by DORMANT task#%d(%s)",
				m.ID, m.Name, owner.ID, owner.Name)
		}
		for _, w := range m.Waiting {
			if w.ID == m.Owner {
				o.fail(now, "mutex", "mtx#%d(%s): owner task#%d waits on its own mutex",
					m.ID, m.Name, w.ID)
			}
		}
		if m.Attr&tkernel.TaCeiling != 0 && m.Ceiling < expected[m.Owner] {
			expected[m.Owner] = m.Ceiling
		}
		if m.Attr&tkernel.TaInherit != 0 && len(m.Waiting) > 0 &&
			m.Waiting[0].Priority < expected[m.Owner] {
			expected[m.Owner] = m.Waiting[0].Priority
		}
	}
	for _, t := range tasks {
		if t.State == core.StateDormant {
			continue
		}
		if want := expected[t.ID]; t.Priority != want {
			o.fail(now, "priority",
				"task#%d(%s) effective priority %d, expected %d (base %d)",
				t.ID, t.Name, t.Priority, want, t.BasePrio)
		}
	}
}

// OracleState is the captured accumulator state of an Oracles set, taken
// at a checkpoint of a passing run so warm ddmin trials can rewind the
// oracles alongside the kernel.
type OracleState struct {
	last     sysc.Time
	primed   bool
	segIdx   int
	maxEnd   sysc.Time
	lastBusy sysc.Time
	lastCET  map[*core.TThread]sysc.Time
	checks   int
}

// SaveState captures the oracle accumulators. It refuses a state with
// recorded violations: a checkpoint is only a valid trial base when the
// prefix was clean.
func (o *Oracles) SaveState() (OracleState, error) {
	if len(o.Violations) > 0 {
		return OracleState{}, fmt.Errorf("chaos: cannot checkpoint oracles with %d violation(s)", len(o.Violations))
	}
	st := OracleState{
		last: o.last, primed: o.primed,
		segIdx: o.segIdx, maxEnd: o.maxEnd,
		lastBusy: o.lastBusy, checks: o.checks,
		lastCET: make(map[*core.TThread]sysc.Time, len(o.lastCET)),
	}
	for tt, c := range o.lastCET {
		st.lastCET[tt] = c
	}
	return st, nil
}

// LoadState rewinds the oracles to a captured state, clearing violations.
func (o *Oracles) LoadState(st OracleState) {
	o.last = st.last
	o.primed = st.primed
	o.segIdx = st.segIdx
	o.maxEnd = st.maxEnd
	o.lastBusy = st.lastBusy
	o.checks = st.checks
	clear(o.lastCET)
	for tt, c := range st.lastCET {
		o.lastCET[tt] = c
	}
	o.Violations = nil
}

// objLabel mirrors the kernel's wait-object label ("class#id(name)").
func objLabel(class string, id tkernel.ID, name string) string {
	if name != "" {
		return fmt.Sprintf("%s#%d(%s)", class, id, name)
	}
	return fmt.Sprintf("%s#%d", class, id)
}
