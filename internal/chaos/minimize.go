package chaos

// ddmin is Zeller's delta-debugging minimization specialized to fault
// schedules: it shrinks a failing schedule to a smaller one that still
// fails, by testing subsets and complements at increasing granularity. The
// predicate must be deterministic (ours replays the same seed under a
// sub-schedule, which the determinism contract guarantees). Returns the
// minimized schedule and how many predicate runs were spent. The result is
// 1-minimal up to the run budget: removing any single remaining fault makes
// the failure disappear.
func ddmin(sched Schedule, fails func(Schedule) bool) (Schedule, int) {
	const maxRuns = 64
	runs := 0
	test := func(s Schedule) bool {
		runs++
		return fails(s)
	}

	cur := sched
	n := 2
	for len(cur) >= 2 && runs < maxRuns {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		// Try each subset, then each complement.
		for i := 0; i < len(cur) && runs < maxRuns; i += chunk {
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			subset := append(Schedule(nil), cur[i:end]...)
			if test(subset) {
				cur, n, reduced = subset, 2, true
				break
			}
			complement := append(append(Schedule(nil), cur[:i]...), cur[end:]...)
			if len(complement) > 0 && test(complement) {
				cur, reduced = complement, true
				if n > 2 {
					n--
				}
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur, runs
}
