package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/run/opts"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SystemConfig parameterizes the synthetic application a chaos job runs.
type SystemConfig struct {
	Tasks int // application tasks (default 6)
	Costs tkernel.Costs
	// Bus optionally supplies the kernel event bus, letting callers attach
	// exporters before the run. Nil lets the kernel create a private one.
	Bus *event.Bus
	// Schedule is the fault schedule to inject. Window-fault hooks are
	// frozen into the kernel's construction config and the injector is
	// bound before BuildSystem returns (reachable via System.Inj).
	Schedule Schedule
	// Engine selects the T-THREAD execution engine (opts.EngineGoroutine /
	// opts.EngineContinuation; empty = goroutine).
	Engine string
	// DeferFaults binds the injector's hooks but spawns no event-fault
	// threads and starts with an empty active schedule — the warm-minimizer
	// construction, which simulates a fault-free prefix, checkpoints it, and
	// activates each ddmin trial's subset after restoring.
	DeferFaults bool
}

// System is one built job: a kernel hosting a seeded random application that
// exercises every service family the oracles watch — semaphore hand-offs,
// PI and ceiling mutexes, message buffers, both memory-pool kinds, bounded
// sleeps woken by a cyclic handler, ready-queue rotation, and two external
// interrupts raised by a periodic device model.
type System struct {
	K       *tkernel.Kernel
	Inj     *Injector
	Gantt   *trace.Gantt
	Targets Targets
	TaskIDs []tkernel.ID

	cycles int                // completed task program iterations (activity digest)
	inst   *workload.Instance // synthetic workload, when this system runs one
}

// Cycles returns how many task program iterations completed — a cheap
// deterministic activity digest for verdict summaries.
func (s *System) Cycles() int {
	if s.inst != nil {
		return int(s.inst.Activations())
	}
	return s.cycles
}

// BuildSyntheticSystem constructs a job around a generated (or hand-written)
// workload.TaskSet instead of the built-in application: same injector
// wiring, same oracles, but the kernel hosts the declarative task set and
// the fault targets are the set's own objects.
func BuildSyntheticSystem(sim *sysc.Simulator, seed uint64, cfg SystemConfig, ts *workload.TaskSet) *System {
	g := trace.NewGantt()
	inj := NewInjector(cfg.Schedule)
	kcfg := tkernel.Config{Costs: cfg.Costs}
	kcfg.Engine = cfg.Engine
	kcfg.Bus = cfg.Bus
	kcfg.Gantt = g
	inj.Configure(&kcfg)
	k := tkernel.New(sim, kcfg)
	if cfg.DeferFaults {
		inj.BindHooks(k)
		inj.SetActive(nil)
	} else {
		inj.Bind(k)
	}

	inst := workload.Build(sim, k, ts, seed)
	targets := Targets{IntNos: inst.IntNos}
	if len(inst.MbfIDs) > 0 {
		targets.Mbf = inst.MbfIDs[0]
	}
	return &System{
		K: k, Inj: inj, Gantt: g,
		Targets: targets,
		TaskIDs: inst.TaskIDs,
		inst:    inst,
	}
}

// Program step opcodes (drawn per task from the system seed).
const (
	opWork = iota
	opDelay
	opSigSem
	opWaiSem
	opLockInherit
	opLockCeiling
	opSndMbf
	opRcvMbf
	opGetMpf
	opGetMpl
	opSleep
	opRotate
	opCount
)

type step struct {
	op   int
	dur  sysc.Time
	size int
}

// BuildSystem constructs the synthetic application on sim, fully determined
// by seed. Object creation order is fixed, so the injector's Targets are
// identical for every seed: interrupts {1, 2}, mpf#1, mbf#1.
func BuildSystem(sim *sysc.Simulator, seed uint64, cfg SystemConfig) *System {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 6
	}
	rng := sweep.NewRNG(sweep.Seed(seed, 0))
	g := trace.NewGantt()
	inj := NewInjector(cfg.Schedule)
	kcfg := tkernel.Config{Costs: cfg.Costs}
	kcfg.Engine = cfg.Engine
	kcfg.Bus = cfg.Bus
	kcfg.Gantt = g
	inj.Configure(&kcfg)
	k := tkernel.New(sim, kcfg)
	inj.Bind(k)
	sys := &System{
		K: k, Inj: inj, Gantt: g,
		Targets: Targets{IntNos: []int{1, 2}, Mpf: 1, Mbf: 1},
		TaskIDs: make([]tkernel.ID, cfg.Tasks),
	}

	// Pre-draw every task's priority and program before Boot so the draw
	// order never depends on scheduling.
	prios := make([]int, cfg.Tasks)
	programs := make([][]step, cfg.Tasks)
	for i := range programs {
		prios[i] = 5 + rng.Intn(20)
		n := 4 + rng.Intn(5)
		for j := 0; j < n; j++ {
			st := step{
				op:   rng.Intn(opCount),
				dur:  sysc.Time(1+rng.Intn(4)) * sysc.Ms,
				size: 8 + 8*rng.Intn(6),
			}
			programs[i] = append(programs[i], st)
		}
		// Every loop iteration ends with a delay so no program can pin the
		// CPU and every task keeps making progress across the whole run.
		programs[i] = append(programs[i], step{op: opDelay, dur: sysc.Time(1+rng.Intn(3)) * sysc.Ms})
	}

	k.Boot(func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("chaos-sem", tkernel.TaTPRI, 2, 1<<30)
		mtxI, _ := k.CreMtx("chaos-pi", tkernel.TaInherit, 0)
		mtxC, _ := k.CreMtx("chaos-ceil", tkernel.TaCeiling, 4)
		mbf, _ := k.CreMbf("chaos-mbf", tkernel.TaTPRI, 96, 16)
		mpf, _ := k.CreMpf("chaos-mpf", tkernel.TaTPRI, 4, 32)
		mpl, _ := k.CreMpl("chaos-mpl", tkernel.TaTPRI, 256)
		objs := &chaosObjs{sem: sem, mtxI: mtxI, mtxC: mtxC, mbf: mbf, mpf: mpf, mpl: mpl}

		// Cyclic handler: keeps the semaphore supplied and wakes sleepers
		// round-robin (the partner of every opSleep step).
		var wakeNext int
		var wakeID tkernel.ID
		cyc, _ := k.CreCycProg("chaos-cyc", 7*sysc.Ms, 0,
			k.NewHandlerProgram("chaos-cyc").
				Work(core.Cost{Time: 80 * sysc.Us, Energy: 4e-9}, "cyc-work").
				SigSem(&objs.sem, 1, nil).
				Atom(func() {
					wakeID = sys.TaskIDs[wakeNext%cfg.Tasks]
					wakeNext++
				}).
				WupTsk(&wakeID, nil))
		_ = k.StaCyc(cyc)

		// Two external interrupts: int 1 is the periodic device below; int 2
		// only ever fires from injected spurious raises/bursts.
		_ = k.DefIntProg(1, "chaos-isr1",
			k.NewHandlerProgram("chaos-isr1").
				Work(core.Cost{Time: 60 * sysc.Us, Energy: 3e-9}, "isr1").
				SigSem(&objs.sem, 1, nil))
		_ = k.DefIntProg(2, "chaos-isr2",
			k.NewHandlerProgram("chaos-isr2").
				Work(core.Cost{Time: 40 * sysc.Us, Energy: 2e-9}, "isr2"))

		for i := 0; i < cfg.Tasks; i++ {
			name := fmt.Sprintf("chaos%d", i)
			id, _ := k.CreTskProg(name, prios[i],
				buildStepProgram(k, name, programs[i], sys, objs))
			sys.TaskIDs[i] = id
			_ = k.StaTsk(id)
		}
	})

	// Periodic device model: raises interrupt 1 every 5 ms (the target the
	// DropIRQ fault suppresses and IRQBurst storms). On the continuation
	// engine it runs as a step-function coroutine — same raise instants, no
	// goroutine.
	if cfg.Engine == opts.EngineContinuation {
		started := false
		sim.SpawnCoro("chaos.device", func(c *sysc.Coro) {
			if started {
				_ = k.RaiseInterrupt(1)
			}
			started = true
			c.Wait(5 * sysc.Ms)
		})
	} else {
		sim.Spawn("chaos.device", func(th *sysc.Thread) {
			for {
				th.Wait(5 * sysc.Ms)
				_ = k.RaiseInterrupt(1)
			}
		})
	}

	return sys
}

// chaosObjs holds the shared kernel-object IDs a step program references.
type chaosObjs struct {
	sem, mtxI, mtxC, mbf, mpf, mpl tkernel.ID
}

// buildStepProgram compiles one task's pre-drawn step list into a Program:
// the op sequence of the old runStep loop, one label per conditional step.
// Every wait is bounded, so injected exhaustion or flooding shows up as
// E_TMOUT — never a stuck system.
func buildStepProgram(k *tkernel.Kernel, name string, steps []step,
	sys *System, o *chaosObjs) *tkernel.Program {
	var (
		er  tkernel.ER
		blk *tkernel.MemBlock
		snd = make([]byte, 8) // SndMbf copies; one zeroed buffer suffices
		rcv []byte
	)
	p := k.NewProgram(name).Label("loop")
	for j, st := range steps {
		skip := fmt.Sprintf("s%d", j)
		switch st.op {
		case opWork:
			p.Work(core.Cost{Time: st.dur, Energy: 1e-6}, "app-work")
		case opDelay:
			p.DlyTsk(st.dur, nil)
		case opSigSem:
			p.SigSem(&o.sem, 1, nil)
		case opWaiSem:
			p.WaiSem(&o.sem, 1, st.dur, nil)
		case opLockInherit:
			p.LocMtx(&o.mtxI, st.dur, &er).
				Br(func() bool { return er != tkernel.EOK }, skip).
				Work(core.Cost{Time: 400 * sysc.Us, Energy: 2e-7}, "crit-pi").
				UnlMtx(&o.mtxI, nil).
				Label(skip)
		case opLockCeiling:
			p.LocMtx(&o.mtxC, st.dur, &er).
				Br(func() bool { return er != tkernel.EOK }, skip).
				Work(core.Cost{Time: 250 * sysc.Us, Energy: 1e-7}, "crit-ceil").
				UnlMtx(&o.mtxC, nil).
				Label(skip)
		case opSndMbf:
			p.SndMbf(&o.mbf, &snd, st.dur, nil)
		case opRcvMbf:
			p.RcvMbf(&o.mbf, st.dur, &rcv, nil)
		case opGetMpf:
			p.GetMpf(&o.mpf, st.dur, &blk, &er).
				Br(func() bool { return er != tkernel.EOK }, skip).
				Work(core.Cost{Time: 150 * sysc.Us, Energy: 5e-8}, "use-mpf").
				RelMpf(&o.mpf, &blk, nil).
				Label(skip)
		case opGetMpl:
			p.GetMpl(&o.mpl, st.size, st.dur, &blk, &er).
				Br(func() bool { return er != tkernel.EOK }, skip).
				Work(core.Cost{Time: 150 * sysc.Us, Energy: 5e-8}, "use-mpl").
				RelMpl(&o.mpl, &blk, nil).
				Label(skip)
		case opSleep:
			p.SlpTsk(st.dur, nil)
		case opRotate:
			p.RotRdq(0, nil)
		}
	}
	return p.Atom(func() { sys.cycles++ }).Jump("loop")
}
