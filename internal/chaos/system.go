package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// SystemConfig parameterizes the synthetic application a chaos job runs.
type SystemConfig struct {
	Tasks int // application tasks (default 6)
	Costs tkernel.Costs
	// Bus optionally supplies the kernel event bus, letting callers attach
	// exporters before the run. Nil lets the kernel create a private one.
	Bus *event.Bus
	// Schedule is the fault schedule to inject. Window-fault hooks are
	// frozen into the kernel's construction config and the injector is
	// bound before BuildSystem returns (reachable via System.Inj).
	Schedule Schedule
}

// System is one built job: a kernel hosting a seeded random application that
// exercises every service family the oracles watch — semaphore hand-offs,
// PI and ceiling mutexes, message buffers, both memory-pool kinds, bounded
// sleeps woken by a cyclic handler, ready-queue rotation, and two external
// interrupts raised by a periodic device model.
type System struct {
	K       *tkernel.Kernel
	Inj     *Injector
	Gantt   *trace.Gantt
	Targets Targets
	TaskIDs []tkernel.ID

	cycles int // completed task program iterations (activity digest)
}

// Cycles returns how many task program iterations completed — a cheap
// deterministic activity digest for verdict summaries.
func (s *System) Cycles() int { return s.cycles }

// Program step opcodes (drawn per task from the system seed).
const (
	opWork = iota
	opDelay
	opSigSem
	opWaiSem
	opLockInherit
	opLockCeiling
	opSndMbf
	opRcvMbf
	opGetMpf
	opGetMpl
	opSleep
	opRotate
	opCount
)

type step struct {
	op   int
	dur  sysc.Time
	size int
}

// BuildSystem constructs the synthetic application on sim, fully determined
// by seed. Object creation order is fixed, so the injector's Targets are
// identical for every seed: interrupts {1, 2}, mpf#1, mbf#1.
func BuildSystem(sim *sysc.Simulator, seed uint64, cfg SystemConfig) *System {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 6
	}
	rng := sweep.NewRNG(sweep.Seed(seed, 0))
	g := trace.NewGantt()
	inj := NewInjector(cfg.Schedule)
	kcfg := tkernel.Config{Costs: cfg.Costs}
	kcfg.Bus = cfg.Bus
	kcfg.Gantt = g
	inj.Configure(&kcfg)
	k := tkernel.New(sim, kcfg)
	inj.Bind(k)
	sys := &System{
		K: k, Inj: inj, Gantt: g,
		Targets: Targets{IntNos: []int{1, 2}, Mpf: 1, Mbf: 1},
		TaskIDs: make([]tkernel.ID, cfg.Tasks),
	}

	// Pre-draw every task's priority and program before Boot so the draw
	// order never depends on scheduling.
	prios := make([]int, cfg.Tasks)
	programs := make([][]step, cfg.Tasks)
	for i := range programs {
		prios[i] = 5 + rng.Intn(20)
		n := 4 + rng.Intn(5)
		for j := 0; j < n; j++ {
			st := step{
				op:   rng.Intn(opCount),
				dur:  sysc.Time(1+rng.Intn(4)) * sysc.Ms,
				size: 8 + 8*rng.Intn(6),
			}
			programs[i] = append(programs[i], st)
		}
		// Every loop iteration ends with a delay so no program can pin the
		// CPU and every task keeps making progress across the whole run.
		programs[i] = append(programs[i], step{op: opDelay, dur: sysc.Time(1+rng.Intn(3)) * sysc.Ms})
	}

	k.Boot(func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("chaos-sem", tkernel.TaTPRI, 2, 1<<30)
		mtxI, _ := k.CreMtx("chaos-pi", tkernel.TaInherit, 0)
		mtxC, _ := k.CreMtx("chaos-ceil", tkernel.TaCeiling, 4)
		mbf, _ := k.CreMbf("chaos-mbf", tkernel.TaTPRI, 96, 16)
		mpf, _ := k.CreMpf("chaos-mpf", tkernel.TaTPRI, 4, 32)
		mpl, _ := k.CreMpl("chaos-mpl", tkernel.TaTPRI, 256)

		// Cyclic handler: keeps the semaphore supplied and wakes sleepers
		// round-robin (the partner of every opSleep step).
		var wakeNext int
		cyc, _ := k.CreCyc("chaos-cyc", 7*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 80 * sysc.Us, Energy: 4e-9}, "cyc-work")
			_ = h.K.SigSem(sem, 1)
			_ = h.K.WupTsk(sys.TaskIDs[wakeNext%cfg.Tasks])
			wakeNext++
		})
		_ = k.StaCyc(cyc)

		// Two external interrupts: int 1 is the periodic device below; int 2
		// only ever fires from injected spurious raises/bursts.
		_ = k.DefInt(1, "chaos-isr1", func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 60 * sysc.Us, Energy: 3e-9}, "isr1")
			_ = h.K.SigSem(sem, 1)
		})
		_ = k.DefInt(2, "chaos-isr2", func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 40 * sysc.Us, Energy: 2e-9}, "isr2")
		})

		for i := 0; i < cfg.Tasks; i++ {
			prog := programs[i]
			id, _ := k.CreTsk(fmt.Sprintf("chaos%d", i), prios[i], func(task *tkernel.Task) {
				for {
					for _, st := range prog {
						runStep(k, st, sem, mtxI, mtxC, mbf, mpf, mpl)
					}
					sys.cycles++
				}
			})
			sys.TaskIDs[i] = id
			_ = k.StaTsk(id)
		}
	})

	// Periodic device model: raises interrupt 1 every 5 ms (the target the
	// DropIRQ fault suppresses and IRQBurst storms).
	sim.Spawn("chaos.device", func(th *sysc.Thread) {
		for {
			th.Wait(5 * sysc.Ms)
			_ = k.RaiseInterrupt(1)
		}
	})

	return sys
}

// runStep executes one program step. Every wait is bounded, so injected
// exhaustion or flooding shows up as E_TMOUT — never a stuck system.
func runStep(k *tkernel.Kernel, st step, sem, mtxI, mtxC, mbf, mpf, mpl tkernel.ID) {
	switch st.op {
	case opWork:
		k.Work(core.Cost{Time: st.dur, Energy: 1e-6}, "app-work")
	case opDelay:
		_ = k.DlyTsk(st.dur)
	case opSigSem:
		_ = k.SigSem(sem, 1)
	case opWaiSem:
		_ = k.WaiSem(sem, 1, st.dur)
	case opLockInherit:
		if k.LocMtx(mtxI, st.dur) == tkernel.EOK {
			k.Work(core.Cost{Time: 400 * sysc.Us, Energy: 2e-7}, "crit-pi")
			_ = k.UnlMtx(mtxI)
		}
	case opLockCeiling:
		if k.LocMtx(mtxC, st.dur) == tkernel.EOK {
			k.Work(core.Cost{Time: 250 * sysc.Us, Energy: 1e-7}, "crit-ceil")
			_ = k.UnlMtx(mtxC)
		}
	case opSndMbf:
		msg := make([]byte, 8)
		_ = k.SndMbf(mbf, msg, st.dur)
	case opRcvMbf:
		_, _ = k.RcvMbf(mbf, st.dur)
	case opGetMpf:
		if b, er := k.GetMpf(mpf, st.dur); er == tkernel.EOK {
			k.Work(core.Cost{Time: 150 * sysc.Us, Energy: 5e-8}, "use-mpf")
			_ = k.RelMpf(mpf, b)
		}
	case opGetMpl:
		if b, er := k.GetMpl(mpl, st.size, st.dur); er == tkernel.EOK {
			k.Work(core.Cost{Time: 150 * sysc.Us, Energy: 5e-8}, "use-mpl")
			_ = k.RelMpl(mpl, b)
		}
	case opSleep:
		_ = k.SlpTsk(st.dur)
	case opRotate:
		_ = k.RotRdq(0)
	}
}
