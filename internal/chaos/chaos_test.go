package chaos

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/sysc"
)

// A correct kernel must absorb every behavior-level fault without violating
// any invariant: campaigns without corruption faults pass on every seed.
func TestCampaignBehaviorFaultsAllPass(t *testing.T) {
	r := Run(Config{Seeds: 8, BaseSeed: 0xC0FFEE, Dur: 120 * sysc.Ms, Workers: 1})
	if f := r.Failures(); len(f) != 0 {
		for _, i := range f {
			t.Logf("job %d:\n%s", i, r.Verdicts[i].Repro)
		}
		t.Fatalf("behavior-only campaign failed jobs %v", f)
	}
	for _, v := range r.Verdicts {
		if v.Checks == 0 {
			t.Fatalf("job %d: oracles never ran", v.Index)
		}
		if v.Cycles == 0 {
			t.Fatalf("job %d: application made no progress", v.Index)
		}
	}
}

// The acceptance contract: verdict summaries are byte-identical for any
// worker count, because every verdict is a pure function of (base seed,
// job index).
func TestCampaignWorkerCountDeterminism(t *testing.T) {
	cfg := Config{Seeds: 6, BaseSeed: 42, Dur: 80 * sysc.Ms, Corrupt: true}
	cfg.Workers = 1
	seq := Run(cfg).Summary()
	cfg.Workers = 4
	par := Run(cfg).Summary()
	if seq != par {
		t.Fatalf("summaries differ between 1 and 4 workers:\n--- w=1\n%s\n--- w=4\n%s", seq, par)
	}
	cfg.Workers = 3
	if got := Run(cfg).Summary(); got != seq {
		t.Fatalf("summary differs with 3 workers")
	}
}

// A corruption fault (pool leak) must be caught by the pool-accounting
// oracle, and the verdict must replay from (base seed, index) alone.
// execT runs execute without tracing, for tests that drive it directly.
func execT(cfg Config, seed uint64, sched Schedule) Verdict {
	v, _ := execute(context.Background(), cfg, seed, sched, nil)
	return v
}

func TestLeakCaughtAndReplays(t *testing.T) {
	cfg := Config{Seeds: 1, BaseSeed: 7, Dur: 60 * sysc.Ms, Workers: 1}
	seed := sweep.Seed(cfg.BaseSeed, 0)

	// Hand-build a schedule with a single leak to hit the oracle directly.
	sched := Schedule{{Kind: PoolLeak, At: 20 * sysc.Ms, Obj: 1}}
	v := execT(cfg.normalized(), seed, sched)
	if v.Pass {
		t.Fatal("pool leak not caught")
	}
	found := false
	for _, viol := range v.Violations {
		if viol.Oracle == "pool-accounting" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a pool-accounting violation, got %v", v.Violations)
	}
	if v.Repro == "" || !strings.Contains(v.Repro, "pool-leak") {
		t.Fatalf("repro missing fault annotation:\n%s", v.Repro)
	}

	// Replay: identical verdict both times.
	w := execT(cfg.normalized(), seed, sched)
	if w.Pass != v.Pass || w.Ticks != v.Ticks || w.CtxSwitches != v.CtxSwitches ||
		w.Cycles != v.Cycles || len(w.Violations) != len(v.Violations) {
		t.Fatalf("replay diverged: %+v vs %+v", v, w)
	}
}

// Minimization shrinks a failing schedule down to the corruption fault that
// actually causes the failure.
func TestMinimizeIsolatesLeak(t *testing.T) {
	cfg := Config{Dur: 60 * sysc.Ms, Tasks: 4}.normalized()
	seed := sweep.Seed(99, 0)
	sched := Schedule{
		{Kind: SpuriousIRQ, At: 10 * sysc.Ms, IntNo: 2},
		{Kind: ETMInflate, At: 15 * sysc.Ms, Dur: 5 * sysc.Ms, Pct: 200},
		{Kind: PoolLeak, At: 25 * sysc.Ms, Obj: 1},
		{Kind: IRQBurst, At: 30 * sysc.Ms, IntNo: 1, Count: 3, Gap: 200 * sysc.Us},
		{Kind: TickDelay, At: 35 * sysc.Ms, Dur: 4 * sysc.Ms, Gap: 300 * sysc.Us},
	}
	if execT(cfg, seed, sched).Pass {
		t.Fatal("schedule with leak unexpectedly passed")
	}
	min, runs := ddmin(sched, func(sub Schedule) bool {
		return !execT(cfg, seed, sub).Pass
	})
	if len(min) != 1 || min[0].Kind != PoolLeak {
		t.Fatalf("minimization kept %d faults (%v) after %d runs", len(min), min, runs)
	}
	if execT(cfg, seed, min).Pass {
		t.Fatal("minimized schedule no longer fails")
	}
}

// RunJob replays exactly what the campaign computed for that index.
func TestRunJobMatchesCampaign(t *testing.T) {
	cfg := Config{Seeds: 3, BaseSeed: 1234, Dur: 60 * sysc.Ms, Workers: 2, Corrupt: true}
	r := Run(cfg)
	for i := range r.Verdicts {
		v := RunJob(cfg, i)
		a, b := r.Verdicts[i], v
		if a.Pass != b.Pass || a.Ticks != b.Ticks || a.CtxSwitches != b.CtxSwitches ||
			a.Cycles != b.Cycles || a.FaultsFired != b.FaultsFired {
			t.Fatalf("job %d: campaign %+v != replay %+v", i, a, b)
		}
	}
}

// The random schedule draw itself is deterministic and respects the corrupt
// gate.
func TestRandomScheduleDeterministicAndGated(t *testing.T) {
	tg := Targets{IntNos: []int{1, 2}, Mpf: 1, Mbf: 1}
	a := RandomSchedule(sweep.NewRNG(5), tg, 12, 100*sysc.Ms, true)
	b := RandomSchedule(sweep.NewRNG(5), tg, 12, 100*sysc.Ms, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	clean := RandomSchedule(sweep.NewRNG(5), tg, 64, 100*sysc.Ms, false)
	for _, f := range clean {
		if f.Kind == PoolLeak {
			t.Fatal("PoolLeak drawn without corrupt mode")
		}
	}
}
