package chaos

import (
	"context"

	"repro/internal/run/opts"
	"repro/internal/snapshot"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// Warm ddmin: every fault of a random schedule lands at or after dur/10
// (RandomSchedule's middle-80% rule), so the first tenth of every trial is
// the identical fault-free prefix. The warm minimizer simulates that prefix
// once, checkpoints kernel + oracles just before the earliest possible
// fault time, and runs each ddmin trial as restore → activate subset →
// simulate the fault window. Trials agree with cold rebuilds bit-for-bit
// (the property tests compare minimized schedules warm vs cold), so this
// is purely a wall-clock optimization for -minimize campaigns.

// warmMinimizer owns one live system restored per ddmin trial.
type warmMinimizer struct {
	cfg Config
	sim *sysc.Simulator
	sys *System
	orc *Oracles
	st  *snapshot.State
	ost OracleState
}

// newWarmMinimizer builds the trial base, or returns nil when the
// configuration is outside the snapshot envelope: the built-in chaos
// application roots state in goroutine closures (synthetic workloads
// only), and goroutine engines park uncopyable stacks (continuation
// engine only). Callers fall back to cold rebuild trials.
func newWarmMinimizer(ctx context.Context, cfg Config, seed uint64, sched Schedule) *warmMinimizer {
	if cfg.Synthetic == nil || cfg.Engine != opts.EngineContinuation {
		return nil
	}
	tck := cfg.Dur/10 - 1 // 1 tick before the earliest possible fault
	if tck <= 0 {
		return nil
	}
	sim := sysc.NewSimulator()
	scfg := SystemConfig{Tasks: cfg.Tasks, Costs: tkernel.DefaultCosts(), Schedule: sched,
		Engine: cfg.Engine, DeferFaults: true}
	sys := BuildSyntheticSystem(sim, seed, scfg, synthTaskSet(cfg, seed))
	orc := Attach(sys.K, sys.Gantt, cfg.OracleInterval)
	if sim.StartContext(ctx, tck) != nil {
		sim.Shutdown()
		return nil
	}
	st, err := snapshot.Capture(snapshot.System{Sim: sim, Kernel: sys.K, Inst: sys.inst, Gantt: sys.Gantt})
	if err != nil {
		sim.Shutdown()
		return nil
	}
	ost, err := orc.SaveState()
	if err != nil {
		sim.Shutdown()
		return nil
	}
	return &warmMinimizer{cfg: cfg, sim: sim, sys: sys, orc: orc, st: st, ost: ost}
}

// snapSystem bundles the pieces for the snapshot layer (no observers
// beyond the Gantt: warm trials only need a pass/fail verdict).
func (w *warmMinimizer) snapSystem() snapshot.System {
	return snapshot.System{Sim: w.sim, Kernel: w.sys.K, Inst: w.sys.inst, Gantt: w.sys.Gantt}
}

// trial restores the checkpoint, activates sub, and simulates the fault
// window. It reports whether the oracles passed.
func (w *warmMinimizer) trial(ctx context.Context, sub Schedule) (bool, error) {
	if err := snapshot.RestoreInPlace(w.snapSystem(), w.st); err != nil {
		return false, err
	}
	w.orc.LoadState(w.ost)
	w.sys.Inj.Reset()
	w.sys.Inj.SetActive(sub)
	w.sys.Inj.SpawnEvents(sub)
	if err := w.sim.StartContext(ctx, w.cfg.Dur); err != nil {
		return false, err
	}
	w.orc.Final(w.sim.Now())
	return w.orc.Passed(), nil
}

func (w *warmMinimizer) close() { w.sim.Shutdown() }
