package chaos

import (
	"strings"
	"testing"

	"repro/internal/run/opts"
	"repro/internal/sysc"
	"repro/internal/workload"
)

// TestSyntheticCampaign runs a small campaign over generated task sets on
// both engines: every job must pass the oracles, and the summaries must be
// byte-identical across engines (the chaos half of the synthetic
// determinism contract).
func TestSyntheticCampaign(t *testing.T) {
	base := Config{
		Seeds:     5,
		BaseSeed:  0xC0FFEE,
		Workers:   1,
		Dur:       80 * sysc.Ms,
		Synthetic: &workload.GenSpec{Interrupts: 2},
	}
	summaries := map[string]string{}
	for _, engine := range []string{opts.EngineGoroutine, opts.EngineContinuation} {
		cfg := base
		cfg.Engine = engine
		rep := Run(cfg)
		if got := len(rep.Verdicts); got != base.Seeds {
			t.Fatalf("engine=%s: %d verdicts, want %d", engine, got, base.Seeds)
		}
		for _, v := range rep.Verdicts {
			if !v.Pass {
				t.Errorf("engine=%s: job %d failed:\n%s", engine, v.Index, v.Repro)
			}
			if v.Cycles == 0 {
				t.Errorf("engine=%s: job %d made no activations", engine, v.Index)
			}
		}
		summaries[engine] = rep.Summary()
	}
	g, c := summaries[opts.EngineGoroutine], summaries[opts.EngineContinuation]
	if g != c {
		t.Errorf("summaries differ between engines:\n--- goroutine ---\n%s--- continuation ---\n%s", g, c)
	}
	if !strings.Contains(g, "synthetic workload:") {
		t.Errorf("summary missing the synthetic header:\n%s", g)
	}
}

// TestSyntheticTargetsFilterKinds asserts a target set without pools or
// interrupts never draws faults it cannot inject (RandomSchedule used to
// assume the built-in layout).
func TestSyntheticTargetsFilterKinds(t *testing.T) {
	cfg := Config{Synthetic: &workload.GenSpec{Interrupts: -1, Mbfs: -1}}.normalized()
	targets := jobTargets(cfg, 1)
	if len(targets.IntNos) != 0 || targets.Mbf != 0 || targets.Mpf != 0 {
		t.Fatalf("unexpected targets: %+v", targets)
	}
	sched := drawSchedule(cfg, 1)
	if len(sched) != cfg.Faults {
		t.Fatalf("%d faults drawn, want %d", len(sched), cfg.Faults)
	}
	for _, f := range sched {
		switch f.Kind {
		case ETMInflate, TickDelay:
		default:
			t.Errorf("fault kind %v drawn without a target for it", f.Kind)
		}
	}
}
