package itron_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/itron"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// boot builds an ITRON API over a fresh kernel and boots userMain.
func boot(t *testing.T, main func(a *itron.API)) (*itron.API, *sysc.Simulator) {
	t.Helper()
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	api := itron.New(k)
	k.Boot(func(k *tkernel.Kernel) { main(api) })
	t.Cleanup(sim.Shutdown)
	return api, sim
}

func run(t *testing.T, sim *sysc.Simulator, until sysc.Time) {
	t.Helper()
	if err := sim.Start(until); err != nil {
		t.Fatal(err)
	}
}

func TestActTskQueuesWhileActive(t *testing.T) {
	// The defining act_tsk difference from tk_sta_tsk: activating a
	// running task queues the request and the task re-runs on exit.
	runs := 0
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			a.K.Work(core.Cost{Time: 2 * sysc.Ms}, "")
			runs++
		}})
		if er := a.ActTsk(id); er != tkernel.EOK {
			t.Errorf("first act: %v", er)
		}
		if er := a.ActTsk(id); er != tkernel.EOK { // queued
			t.Errorf("second act: %v", er)
		}
		if er := a.ActTsk(id); er != tkernel.EOK { // queued
			t.Errorf("third act: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if runs != 3 {
		t.Fatalf("runs = %d, want 3 (one live + two queued)", runs)
	}
}

func TestCanActCancelsQueue(t *testing.T) {
	runs := 0
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			a.K.Work(core.Cost{Time: 2 * sysc.Ms}, "")
			runs++
		}})
		_ = a.ActTsk(id)
		_ = a.ActTsk(id)
		_ = a.ActTsk(id)
		n, er := a.CanAct(id)
		if er != tkernel.EOK || n != 2 {
			t.Errorf("CanAct = %d, %v", n, er)
		}
	})
	run(t, sim, sysc.Sec)
	if runs != 1 {
		t.Fatalf("runs = %d after can_act", runs)
	}
}

func TestSigSemSingleCount(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		sem, _ := a.CreSem(itron.T_CSEM{Name: "s", IsemCnt: 0, MaxSem: 2})
		if er := a.PolSem(sem); er != tkernel.ETMOUT {
			t.Errorf("empty poll: %v", er)
		}
		_ = a.SigSem(sem)
		if er := a.PolSem(sem); er != tkernel.EOK {
			t.Errorf("after one signal: %v", er)
		}
		if er := a.PolSem(sem); er != tkernel.ETMOUT {
			t.Errorf("sig_sem must release exactly one: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestTwaiSemTimeout(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	_, sim := boot(t, func(a *itron.API) {
		sem, _ := a.CreSem(itron.T_CSEM{Name: "s", MaxSem: 1})
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			code = a.TwaiSem(sem, 6*sysc.Ms)
			at = a.K.Sim().Now()
		}})
		_ = a.ActTsk(id)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ETMOUT || at != 6*sysc.Ms {
		t.Fatalf("code=%v at=%v", code, at)
	}
}

func TestFlagTAClrAttribute(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		flg, _ := a.CreFlg(itron.T_CFLG{Name: "f", Attr: tkernel.TaWMUL, Clear: true})
		_ = a.SetFlg(flg, 0b11)
		ptn, er := a.PolFlg(flg, 0b01, tkernel.TwfORW)
		if er != tkernel.EOK || ptn != 0b11 {
			t.Errorf("pol_flg: %b %v", ptn, er)
		}
		// TA_CLR: the whole pattern cleared by the completed wait.
		if _, er := a.PolFlg(flg, 0b10, tkernel.TwfORW); er != tkernel.ETMOUT {
			t.Errorf("pattern should have been cleared: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestDataQueueRoundTrip(t *testing.T) {
	var got []uint64
	_, sim := boot(t, func(a *itron.API) {
		dtq, er := a.CreDtq(itron.T_CDTQ{Name: "q", DtqCnt: 4})
		if er != tkernel.EOK {
			t.Fatalf("cre_dtq: %v", er)
		}
		rcv, _ := a.CreTsk(itron.T_CTSK{Name: "rcv", Pri: 10, Task: func(task *tkernel.Task) {
			for i := 0; i < 3; i++ {
				v, er := a.RcvDtq(dtq)
				if er != tkernel.EOK {
					t.Errorf("rcv_dtq: %v", er)
					return
				}
				got = append(got, v)
			}
		}})
		snd, _ := a.CreTsk(itron.T_CTSK{Name: "snd", Pri: 12, Task: func(task *tkernel.Task) {
			for i := uint64(1); i <= 3; i++ {
				a.K.Work(core.Cost{Time: sysc.Ms}, "")
				if er := a.SndDtq(dtq, i*100); er != tkernel.EOK {
					t.Errorf("snd_dtq: %v", er)
				}
			}
		}})
		_ = a.ActTsk(rcv)
		_ = a.ActTsk(snd)
	})
	run(t, sim, sysc.Sec)
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("got %v", got)
	}
}

func TestDataQueueBlocksWhenFull(t *testing.T) {
	var sentAt sysc.Time
	_, sim := boot(t, func(a *itron.API) {
		dtq, _ := a.CreDtq(itron.T_CDTQ{Name: "q", DtqCnt: 1})
		snd, _ := a.CreTsk(itron.T_CTSK{Name: "snd", Pri: 10, Task: func(task *tkernel.Task) {
			_ = a.SndDtq(dtq, 1) // fills
			if er := a.SndDtq(dtq, 2); er != tkernel.EOK {
				t.Errorf("blocked send: %v", er)
			}
			sentAt = a.K.Sim().Now()
		}})
		_ = a.ActTsk(snd)
		_ = a.DlyTsk(5 * sysc.Ms)
		if v, er := a.PrcvDtq(dtq); er != tkernel.EOK || v != 1 {
			t.Errorf("drain: %v %v", v, er)
		}
	})
	run(t, sim, sysc.Sec)
	if sentAt != 5*sysc.Ms {
		t.Fatalf("second send at %v", sentAt)
	}
}

func TestRefTskStates(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			_ = a.SlpTsk()
		}})
		st, _ := a.RefTsk(id)
		if st.Tskstat != itron.TTSDmt {
			t.Errorf("dormant: %v", st.Tskstat)
		}
		_ = a.ActTsk(id)
		_ = a.DlyTsk(2 * sysc.Ms)
		st, _ = a.RefTsk(id)
		if st.Tskstat != itron.TTSWai {
			t.Errorf("waiting: %v", st.Tskstat)
		}
		_ = a.SusTsk(id)
		st, _ = a.RefTsk(id)
		if st.Tskstat != itron.TTSWas {
			t.Errorf("waiting-suspended: %v", st.Tskstat)
		}
		_ = a.RsmTsk(id)
		_ = a.WupTsk(id)
	})
	run(t, sim, sysc.Sec)
}

func TestGetPriAndLocCpu(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 17, Task: func(task *tkernel.Task) {}})
		_ = a.ActTsk(id)
		pri, er := a.GetPri(id)
		if er != tkernel.EOK || pri != 17 {
			t.Errorf("get_pri = %d %v", pri, er)
		}
		if er := a.LocCpu(); er != tkernel.EOK {
			t.Errorf("loc_cpu: %v", er)
		}
		if er := a.UnlCpu(); er != tkernel.EOK {
			t.Errorf("unl_cpu: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestTskstatStrings(t *testing.T) {
	for st, want := range map[itron.TSKSTAT]string{
		itron.TTSRun: "TTS_RUN", itron.TTSRdy: "TTS_RDY", itron.TTSWai: "TTS_WAI",
		itron.TTSSus: "TTS_SUS", itron.TTSWas: "TTS_WAS", itron.TTSDmt: "TTS_DMT",
	} {
		if st.String() != want {
			t.Errorf("%d -> %s", st, st.String())
		}
	}
}
