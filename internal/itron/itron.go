// Package itron is a µITRON 4.0 compatibility veneer over the RTK-Spec TRON
// kernel model. The paper motivates its approach by the µITRON standard's
// market share ("over 40% of RTOSs are based on one specification standard,
// i.e. µ-ITRON") and validates the SIM_API dynamics against the µITRON v4
// specification; this package exposes the kernel through µITRON service
// names and semantics where they differ from T-Kernel:
//
//   - act_tsk/can_act queue activation requests (tk_sta_tsk is strict);
//   - sig_sem releases exactly one resource (no count argument);
//   - wait services come in the v4 triple: blocking (wai_*), polling
//     (pol_*), and with timeout (twai_*);
//   - event-flag clearing is an object attribute (TA_CLR), not a per-wait
//     mode bit;
//   - data queues (snd_dtq/rcv_dtq) carry fixed-size words, realized over
//     the kernel's message buffers;
//   - loc_cpu/unl_cpu map to dispatch disabling.
package itron

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// Re-exported kernel types so ITRON application code needs only this
// package.
type (
	// ID identifies a kernel object.
	ID = tkernel.ID
	// ER is the service-call error code.
	ER = tkernel.ER
	// TMO is a wait timeout.
	TMO = tkernel.TMO
)

// µITRON v4 constants.
const (
	TmoPol  = tkernel.TmoPol
	TmoFevr = tkernel.TmoFevr

	// TMaxActCnt is the maximum queued activation count (TMAX_ACTCNT).
	TMaxActCnt = 255
	// TMaxWupCnt is the maximum queued wakeup count (TMAX_WUPCNT).
	TMaxWupCnt = 255
)

// TSKSTAT is the µITRON task state encoding returned by RefTsk.
type TSKSTAT int

// Task states (µITRON v4 TTS_* values).
const (
	TTSRun TSKSTAT = 0x01
	TTSRdy TSKSTAT = 0x02
	TTSWai TSKSTAT = 0x04
	TTSSus TSKSTAT = 0x08
	TTSWas TSKSTAT = 0x0C
	TTSDmt TSKSTAT = 0x10
)

// String names the state.
func (s TSKSTAT) String() string {
	switch s {
	case TTSRun:
		return "TTS_RUN"
	case TTSRdy:
		return "TTS_RDY"
	case TTSWai:
		return "TTS_WAI"
	case TTSSus:
		return "TTS_SUS"
	case TTSWas:
		return "TTS_WAS"
	case TTSDmt:
		return "TTS_DMT"
	}
	return "TTS_?"
}

// tskstatOf maps the core scheduling state to the µITRON encoding.
func tskstatOf(s core.State) TSKSTAT {
	switch s {
	case core.StateRunning:
		return TTSRun
	case core.StateReady:
		return TTSRdy
	case core.StateWaiting:
		return TTSWai
	case core.StateSuspended:
		return TTSSus
	case core.StateWaitSuspended:
		return TTSWas
	default:
		return TTSDmt
	}
}

// API is a µITRON 4.0 view of a kernel instance.
type API struct {
	K *tkernel.Kernel

	clrFlags map[ID]bool // event flags created with TA_CLR
	dtqSize  map[ID]int  // element size per data queue
}

// New wraps a kernel.
func New(k *tkernel.Kernel) *API {
	return &API{K: k, clrFlags: map[ID]bool{}, dtqSize: map[ID]int{}}
}

// --- task management ---

// T_CTSK is the µITRON task creation packet.
type T_CTSK struct {
	Name string
	Pri  int
	Task func(*tkernel.Task)
}

// CreTsk creates a task (cre_tsk).
func (a *API) CreTsk(pk T_CTSK) (ID, ER) { return a.K.CreTsk(pk.Name, pk.Pri, pk.Task) }

// ActTsk activates a task, queuing the request when it is not dormant
// (act_tsk).
func (a *API) ActTsk(id ID) ER { return a.K.ActTsk(id, TMaxActCnt) }

// CanAct cancels queued activations (can_act).
func (a *API) CanAct(id ID) (int, ER) { return a.K.CanAct(id) }

// StaTsk starts a dormant task (sta_tsk; no start-code in this model).
func (a *API) StaTsk(id ID) ER { return a.K.StaTsk(id) }

// ExtTsk exits the calling task (ext_tsk).
func (a *API) ExtTsk() ER { return a.K.ExtTsk() }

// TerTsk terminates another task (ter_tsk).
func (a *API) TerTsk(id ID) ER { return a.K.TerTsk(id) }

// ChgPri changes a task's priority (chg_pri).
func (a *API) ChgPri(id ID, pri int) ER { return a.K.ChgPri(id, pri) }

// GetPri returns a task's current priority (get_pri). id 0 = caller.
func (a *API) GetPri(id ID) (int, ER) {
	info, er := a.K.RefTsk(id)
	if er != tkernel.EOK {
		return 0, er
	}
	return info.Priority, tkernel.EOK
}

// T_RTSK is the ref_tsk packet.
type T_RTSK struct {
	Tskstat TSKSTAT
	Tskpri  int
	Tskbpri int
	Wupcnt  int
	Actcnt  int
	Suscnt  int
}

// RefTsk returns the µITRON task state (ref_tsk).
func (a *API) RefTsk(id ID) (T_RTSK, ER) {
	info, er := a.K.RefTsk(id)
	if er != tkernel.EOK {
		return T_RTSK{}, er
	}
	return T_RTSK{
		Tskstat: tskstatOf(info.State),
		Tskpri:  info.Priority,
		Tskbpri: info.BasePrio,
		Wupcnt:  info.WupCount,
		Suscnt:  info.SusCount,
	}, tkernel.EOK
}

// GetTid returns the calling task's ID (get_tid).
func (a *API) GetTid() ID { return a.K.GetTid() }

// --- task-dependent synchronization ---

// SlpTsk sleeps forever until a wakeup (slp_tsk).
func (a *API) SlpTsk() ER { return a.K.SlpTsk(TmoFevr) }

// TslpTsk sleeps with a timeout (tslp_tsk).
func (a *API) TslpTsk(tmout TMO) ER { return a.K.SlpTsk(tmout) }

// WupTsk wakes a task, queueing the wakeup when it is not sleeping
// (wup_tsk).
func (a *API) WupTsk(id ID) ER { return a.K.WupTsk(id) }

// CanWup cancels queued wakeups (can_wup).
func (a *API) CanWup(id ID) (int, ER) { return a.K.CanWup(id) }

// DlyTsk delays the calling task (dly_tsk).
func (a *API) DlyTsk(d sysc.Time) ER { return a.K.DlyTsk(d) }

// RelWai releases another task's wait with E_RLWAI (rel_wai).
func (a *API) RelWai(id ID) ER { return a.K.RelWai(id) }

// SusTsk / RsmTsk / FrsmTsk forcibly suspend and resume (sus_tsk family).
func (a *API) SusTsk(id ID) ER  { return a.K.SusTsk(id) }
func (a *API) RsmTsk(id ID) ER  { return a.K.RsmTsk(id) }
func (a *API) FrsmTsk(id ID) ER { return a.K.FrsmTsk(id) }

// RotRdq rotates a precedence class (rot_rdq; 0 = caller's priority).
func (a *API) RotRdq(pri int) ER { return a.K.RotRdq(pri) }

// LocCpu disables dispatching (loc_cpu; interrupts still modelled).
func (a *API) LocCpu() ER { return a.K.DisDsp() }

// UnlCpu re-enables dispatching (unl_cpu).
func (a *API) UnlCpu() ER { return a.K.EnaDsp() }

// --- semaphores ---

// T_CSEM is the semaphore creation packet.
type T_CSEM struct {
	Name    string
	Attr    tkernel.Attr
	IsemCnt int
	MaxSem  int
}

// CreSem creates a semaphore (cre_sem).
func (a *API) CreSem(pk T_CSEM) (ID, ER) {
	return a.K.CreSem(pk.Name, pk.Attr, pk.IsemCnt, pk.MaxSem)
}

// SigSem releases exactly one resource (sig_sem has no count in µITRON).
func (a *API) SigSem(id ID) ER { return a.K.SigSem(id, 1) }

// WaiSem acquires one resource, blocking (wai_sem).
func (a *API) WaiSem(id ID) ER { return a.K.WaiSem(id, 1, TmoFevr) }

// PolSem acquires one resource without waiting (pol_sem).
func (a *API) PolSem(id ID) ER { return a.K.WaiSem(id, 1, TmoPol) }

// TwaiSem acquires one resource with a timeout (twai_sem).
func (a *API) TwaiSem(id ID, tmout TMO) ER { return a.K.WaiSem(id, 1, tmout) }

// DelSem deletes a semaphore (del_sem).
func (a *API) DelSem(id ID) ER { return a.K.DelSem(id) }

// --- event flags ---

// T_CFLG is the event-flag creation packet. TA_CLR semantics (clear the
// whole pattern when a wait completes) are an object attribute in µITRON.
type T_CFLG struct {
	Name    string
	Attr    tkernel.Attr
	Clear   bool // TA_CLR
	IflgPtn uint32
}

// CreFlg creates an event flag (cre_flg).
func (a *API) CreFlg(pk T_CFLG) (ID, ER) {
	id, er := a.K.CreFlg(pk.Name, pk.Attr, pk.IflgPtn)
	if er == tkernel.EOK {
		a.clrFlags[id] = pk.Clear
	}
	return id, er
}

// SetFlg sets pattern bits (set_flg).
func (a *API) SetFlg(id ID, ptn uint32) ER { return a.K.SetFlg(id, ptn) }

// ClrFlg clears bits: pattern &= clrptn (clr_flg).
func (a *API) ClrFlg(id ID, clrptn uint32) ER { return a.K.ClrFlg(id, clrptn) }

// WaiFlg waits for the pattern (wai_flg); the object's TA_CLR attribute
// selects clearing.
func (a *API) WaiFlg(id ID, waiptn uint32, mode tkernel.FlagMode) (uint32, ER) {
	return a.K.WaiFlg(id, waiptn, a.mode(id, mode), TmoFevr)
}

// PolFlg polls the pattern (pol_flg).
func (a *API) PolFlg(id ID, waiptn uint32, mode tkernel.FlagMode) (uint32, ER) {
	return a.K.WaiFlg(id, waiptn, a.mode(id, mode), TmoPol)
}

// TwaiFlg waits with a timeout (twai_flg).
func (a *API) TwaiFlg(id ID, waiptn uint32, mode tkernel.FlagMode, tmout TMO) (uint32, ER) {
	return a.K.WaiFlg(id, waiptn, a.mode(id, mode), tmout)
}

func (a *API) mode(id ID, m tkernel.FlagMode) tkernel.FlagMode {
	if a.clrFlags[id] {
		m |= tkernel.TwfCLR
	}
	return m
}

// --- data queues (µITRON v4 object absent from T-Kernel) ---

// dtqWordSize is the serialized size of one data element (a VP_INT word).
const dtqWordSize = 8

// T_CDTQ is the data-queue creation packet: capacity counts queued words;
// capacity 0 gives a fully synchronous queue.
type T_CDTQ struct {
	Name   string
	DtqCnt int
}

// CreDtq creates a data queue (cre_dtq), realized over a kernel message
// buffer sized for DtqCnt words.
func (a *API) CreDtq(pk T_CDTQ) (ID, ER) {
	bufsz := pk.DtqCnt * (dtqWordSize + 4)
	id, er := a.K.CreMbf(pk.Name, tkernel.TaTFIFO, bufsz, dtqWordSize)
	if er == tkernel.EOK {
		a.dtqSize[id] = pk.DtqCnt
	}
	return id, er
}

// SndDtq sends one word, blocking while the queue is full (snd_dtq).
func (a *API) SndDtq(id ID, data uint64) ER {
	var b [dtqWordSize]byte
	binary.LittleEndian.PutUint64(b[:], data)
	return a.K.SndMbf(id, b[:], TmoFevr)
}

// PsndDtq sends without waiting (psnd_dtq).
func (a *API) PsndDtq(id ID, data uint64) ER {
	var b [dtqWordSize]byte
	binary.LittleEndian.PutUint64(b[:], data)
	return a.K.SndMbf(id, b[:], TmoPol)
}

// TsndDtq sends with a timeout (tsnd_dtq).
func (a *API) TsndDtq(id ID, data uint64, tmout TMO) ER {
	var b [dtqWordSize]byte
	binary.LittleEndian.PutUint64(b[:], data)
	return a.K.SndMbf(id, b[:], tmout)
}

// RcvDtq receives one word, blocking while empty (rcv_dtq).
func (a *API) RcvDtq(id ID) (uint64, ER) {
	msg, er := a.K.RcvMbf(id, TmoFevr)
	if er != tkernel.EOK {
		return 0, er
	}
	return binary.LittleEndian.Uint64(msg), tkernel.EOK
}

// PrcvDtq receives without waiting (prcv_dtq).
func (a *API) PrcvDtq(id ID) (uint64, ER) {
	msg, er := a.K.RcvMbf(id, TmoPol)
	if er != tkernel.EOK {
		return 0, er
	}
	return binary.LittleEndian.Uint64(msg), tkernel.EOK
}

// TrcvDtq receives with a timeout (trcv_dtq).
func (a *API) TrcvDtq(id ID, tmout TMO) (uint64, ER) {
	msg, er := a.K.RcvMbf(id, tmout)
	if er != tkernel.EOK {
		return 0, er
	}
	return binary.LittleEndian.Uint64(msg), tkernel.EOK
}

// DelDtq deletes a data queue (del_dtq).
func (a *API) DelDtq(id ID) ER { return a.K.DelMbf(id) }
