package itron_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/itron"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// TestVeneerTaskServices exercises the thin task-management wrappers.
func TestVeneerTaskServices(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			if a.GetTid() == 0 {
				t.Error("get_tid in task context returned 0")
			}
			a.K.Work(core.Cost{Time: 20 * sysc.Ms}, "")
		}})
		if er := a.StaTsk(id); er != tkernel.EOK {
			t.Errorf("sta_tsk: %v", er)
		}
		_ = a.DlyTsk(2 * sysc.Ms)
		if er := a.ChgPri(id, 7); er != tkernel.EOK {
			t.Errorf("chg_pri: %v", er)
		}
		if pri, _ := a.GetPri(id); pri != 7 {
			t.Errorf("get_pri = %d", pri)
		}
		if er := a.RotRdq(7); er != tkernel.EOK {
			t.Errorf("rot_rdq: %v", er)
		}
		if er := a.TerTsk(id); er != tkernel.EOK {
			t.Errorf("ter_tsk: %v", er)
		}
		st, _ := a.RefTsk(id)
		if st.Tskstat != itron.TTSDmt {
			t.Errorf("after ter: %v", st.Tskstat)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestVeneerExtTskUnwinds(t *testing.T) {
	after := false
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "q", Pri: 10, Task: func(task *tkernel.Task) {
			_ = a.ExtTsk()
			after = true
		}})
		_ = a.ActTsk(id)
	})
	run(t, sim, 50*sysc.Ms)
	if after {
		t.Fatal("code after ext_tsk ran")
	}
}

func TestVeneerSleepWakeRelease(t *testing.T) {
	var tslpCode, relCode tkernel.ER
	_, sim := boot(t, func(a *itron.API) {
		sleeper, _ := a.CreTsk(itron.T_CTSK{Name: "s", Pri: 10, Task: func(task *tkernel.Task) {
			tslpCode = a.TslpTsk(5 * sysc.Ms) // times out
			relCode = a.TslpTsk(itron.TmoFevr)
		}})
		_ = a.ActTsk(sleeper)
		_ = a.DlyTsk(10 * sysc.Ms)
		_ = a.WupTsk(sleeper)
		_ = a.WupTsk(sleeper) // queues
		if n, _ := a.CanWup(sleeper); n > 1 {
			t.Errorf("can_wup = %d", n)
		}
		_ = a.DlyTsk(5 * sysc.Ms)
		// Sleeper may be blocked again; force-release if waiting.
		st, _ := a.RefTsk(sleeper)
		if st.Tskstat == itron.TTSWai {
			if er := a.RelWai(sleeper); er != tkernel.EOK {
				t.Errorf("rel_wai: %v", er)
			}
		}
	})
	run(t, sim, sysc.Sec)
	if tslpCode != tkernel.ETMOUT {
		t.Fatalf("tslp code = %v", tslpCode)
	}
	_ = relCode // either E_OK (queued wakeup) or E_RLWAI (forced)
}

func TestVeneerSuspendFamily(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		id, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			a.K.Work(core.Cost{Time: 30 * sysc.Ms}, "")
		}})
		_ = a.ActTsk(id)
		_ = a.DlyTsk(2 * sysc.Ms)
		_ = a.SusTsk(id)
		_ = a.SusTsk(id)
		st, _ := a.RefTsk(id)
		if st.Tskstat != itron.TTSSus || st.Suscnt != 2 {
			t.Errorf("sus state: %+v", st)
		}
		_ = a.RsmTsk(id)
		_ = a.FrsmTsk(id)
		st, _ = a.RefTsk(id)
		if st.Suscnt != 0 {
			t.Errorf("after frsm: %+v", st)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestVeneerSemWaiAndDelete(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(a *itron.API) {
		sem, _ := a.CreSem(itron.T_CSEM{Name: "s", IsemCnt: 1, MaxSem: 4})
		if er := a.WaiSem(sem); er != tkernel.EOK {
			t.Errorf("wai_sem: %v", er)
		}
		w, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			code = a.WaiSem(sem) // blocks; released by deletion
		}})
		_ = a.ActTsk(w)
		_ = a.DlyTsk(2 * sysc.Ms)
		if er := a.DelSem(sem); er != tkernel.EOK {
			t.Errorf("del_sem: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.EDLT {
		t.Fatalf("waiter code = %v", code)
	}
}

func TestVeneerFlagWaitForms(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		flg, _ := a.CreFlg(itron.T_CFLG{Name: "f", Attr: tkernel.TaWMUL})
		w, _ := a.CreTsk(itron.T_CTSK{Name: "w", Pri: 10, Task: func(task *tkernel.Task) {
			ptn, er := a.WaiFlg(flg, 0b10, tkernel.TwfORW)
			if er != tkernel.EOK || ptn&0b10 == 0 {
				t.Errorf("wai_flg: %b %v", ptn, er)
			}
			if _, er := a.TwaiFlg(flg, 0b100, tkernel.TwfANDW, 3*sysc.Ms); er != tkernel.ETMOUT {
				t.Errorf("twai_flg: %v", er)
			}
		}})
		_ = a.ActTsk(w)
		_ = a.DlyTsk(2 * sysc.Ms)
		_ = a.SetFlg(flg, 0b10)
		_ = a.DlyTsk(10 * sysc.Ms)
		_ = a.ClrFlg(flg, 0) // clear everything
		ptn, er := a.PolFlg(flg, 0xFF, tkernel.TwfORW)
		if er != tkernel.ETMOUT {
			t.Errorf("after clr_flg: %b %v", ptn, er)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestVeneerDtqTimedForms(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		dtq, _ := a.CreDtq(itron.T_CDTQ{Name: "q", DtqCnt: 1})
		if er := a.PsndDtq(dtq, 11); er != tkernel.EOK {
			t.Errorf("psnd: %v", er)
		}
		if er := a.PsndDtq(dtq, 22); er != tkernel.ETMOUT {
			t.Errorf("psnd full: %v", er)
		}
		if er := a.TsndDtq(dtq, 33, 3*sysc.Ms); er != tkernel.ETMOUT {
			t.Errorf("tsnd timeout: %v", er)
		}
		v, er := a.TrcvDtq(dtq, 3*sysc.Ms)
		if er != tkernel.EOK || v != 11 {
			t.Errorf("trcv: %d %v", v, er)
		}
		if _, er := a.TrcvDtq(dtq, 3*sysc.Ms); er != tkernel.ETMOUT {
			t.Errorf("trcv empty: %v", er)
		}
		if er := a.DelDtq(dtq); er != tkernel.EOK {
			t.Errorf("del_dtq: %v", er)
		}
		if _, er := a.PrcvDtq(dtq); er != tkernel.ENOEXS {
			t.Errorf("deleted dtq: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestVeneerTskstatRunningAndReady(t *testing.T) {
	_, sim := boot(t, func(a *itron.API) {
		var peer tkernel.ID
		self, _ := a.CreTsk(itron.T_CTSK{Name: "self", Pri: 10, Task: func(task *tkernel.Task) {
			st, _ := a.RefTsk(0) // caller: RUNNING
			if st.Tskstat != itron.TTSRun {
				t.Errorf("self stat = %v", st.Tskstat)
			}
			st, _ = a.RefTsk(peer) // same prio, behind us: READY
			if st.Tskstat != itron.TTSRdy {
				t.Errorf("peer stat = %v", st.Tskstat)
			}
		}})
		peer, _ = a.CreTsk(itron.T_CTSK{Name: "peer", Pri: 10, Task: func(task *tkernel.Task) {
			a.K.Work(core.Cost{Time: sysc.Ms}, "")
		}})
		// Activate self first: same priority is FIFO, so self runs first
		// and observes peer still READY behind it.
		_ = a.ActTsk(self)
		_ = a.ActTsk(peer)
	})
	run(t, sim, sysc.Sec)
}
