package sched_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// refPriority is the pre-bitmap map-based priority scheduler, retained
// verbatim as the reference implementation for the differential test. It is
// not intrusive: it never touches the threads' ReadyNode, so the same
// threads can sit in a refPriority and a sched.Priority simultaneously.
type refPriority struct {
	classes map[int][]*core.TThread
	n       int
}

func newRefPriority() *refPriority {
	return &refPriority{classes: map[int][]*core.TThread{}}
}

func (s *refPriority) Enqueue(t *core.TThread) {
	p := t.Priority()
	s.classes[p] = append(s.classes[p], t)
	s.n++
}

func (s *refPriority) EnqueueFront(t *core.TThread) {
	p := t.Priority()
	s.classes[p] = append([]*core.TThread{t}, s.classes[p]...)
	s.n++
}

func (s *refPriority) Dequeue(t *core.TThread) {
	for p, q := range s.classes {
		for i, x := range q {
			if x == t {
				s.classes[p] = append(q[:i], q[i+1:]...)
				s.n--
				return
			}
		}
	}
}

func (s *refPriority) Peek() *core.TThread {
	best := -1
	for p, q := range s.classes {
		if len(q) == 0 {
			continue
		}
		if best == -1 || p < best {
			best = p
		}
	}
	if best == -1 {
		return nil
	}
	return s.classes[best][0]
}

func (s *refPriority) Rotate(priority int) {
	q := s.classes[priority]
	if len(q) < 2 {
		return
	}
	head := q[0]
	copy(q, q[1:])
	q[len(q)-1] = head
}

func (s *refPriority) Len() int { return s.n }

// refRoundRobin is the pre-rewrite slice-based round-robin queue, kept as
// the reference for the round-robin differential test.
type refRoundRobin struct {
	q []*core.TThread
}

func (s *refRoundRobin) Enqueue(t *core.TThread) { s.q = append(s.q, t) }

func (s *refRoundRobin) EnqueueFront(t *core.TThread) {
	s.q = append([]*core.TThread{t}, s.q...)
}

func (s *refRoundRobin) Dequeue(t *core.TThread) {
	for i, x := range s.q {
		if x == t {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return
		}
	}
}

func (s *refRoundRobin) Peek() *core.TThread {
	if len(s.q) == 0 {
		return nil
	}
	return s.q[0]
}

func (s *refRoundRobin) Rotate() {
	if len(s.q) < 2 {
		return
	}
	head := s.q[0]
	copy(s.q, s.q[1:])
	s.q[len(s.q)-1] = head
}

func (s *refRoundRobin) Len() int { return len(s.q) }

func name(t *core.TThread) string {
	if t == nil {
		return "<nil>"
	}
	return t.Name()
}

// TestDifferentialPriority drives the bitmap scheduler and the retained
// map-based reference with identical randomized op sequences (seeded, no
// double-enqueues — a thread is in at most one ready structure in the
// kernel) and asserts identical Peek results, population, and final
// dispatch order, including tk_rot_rdq within-class FIFO precedence.
func TestDifferentialPriority(t *testing.T) {
	// Few distinct priorities so classes collide and FIFO order matters.
	ths := mkThreads(t, 5, 5, 5, 9, 9, 9, 9, 2, 2, 7, 7, 7, 7, 7, 1, 12)
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		got := sched.NewPriority()
		want := newRefPriority()
		queued := map[int]bool{}
		var in []int // queued indices, for picking dequeue victims
		pick := func(present bool) int {
			for tries := 0; tries < 64; tries++ {
				i := rng.Intn(len(ths))
				if queued[i] == present {
					return i
				}
			}
			return -1
		}
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(5); op {
			case 0, 1: // enqueue / enqueue-front an absent thread
				if i := pick(false); i >= 0 {
					if op == 0 {
						got.Enqueue(ths[i])
						want.Enqueue(ths[i])
					} else {
						got.EnqueueFront(ths[i])
						want.EnqueueFront(ths[i])
					}
					queued[i] = true
					in = append(in, i)
				}
			case 2: // dequeue a queued thread
				if i := pick(true); i >= 0 {
					got.Dequeue(ths[i])
					want.Dequeue(ths[i])
					queued[i] = false
				}
			case 3: // tk_rot_rdq at the running precedence class
				if p := want.Peek(); p != nil {
					got.Rotate(p.Priority())
					want.Rotate(p.Priority())
				}
			case 4: // rotate an arbitrary (possibly empty) class
				pr := rng.Intn(14)
				got.Rotate(pr)
				want.Rotate(pr)
			}
			if g, w := got.Peek(), want.Peek(); g != w {
				t.Fatalf("seed %d step %d: Peek %s, reference %s", seed, step, name(g), name(w))
			}
			if g, w := got.Len(), want.Len(); g != w {
				t.Fatalf("seed %d step %d: Len %d, reference %d", seed, step, g, w)
			}
		}
		// Drain: the full dispatch order must match.
		for pos := 0; want.Peek() != nil; pos++ {
			g, w := got.Peek(), want.Peek()
			if g != w {
				t.Fatalf("seed %d drain pos %d: dispatch %s, reference %s", seed, pos, name(g), name(w))
			}
			got.Dequeue(w)
			want.Dequeue(w)
		}
		if got.Len() != 0 {
			t.Fatalf("seed %d: %d threads left after drain", seed, got.Len())
		}
		_ = in
	}
}

// TestDifferentialRoundRobin mirrors TestDifferentialPriority for the
// RTK-Spec I single-queue scheduler.
func TestDifferentialRoundRobin(t *testing.T) {
	ths := mkThreads(t, 1, 2, 3, 4, 5, 6, 7, 8)
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		got := sched.NewRoundRobin()
		want := &refRoundRobin{}
		queued := map[int]bool{}
		pick := func(present bool) int {
			for tries := 0; tries < 64; tries++ {
				i := rng.Intn(len(ths))
				if queued[i] == present {
					return i
				}
			}
			return -1
		}
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(4); op {
			case 0, 1:
				if i := pick(false); i >= 0 {
					if op == 0 {
						got.Enqueue(ths[i])
						want.Enqueue(ths[i])
					} else {
						got.EnqueueFront(ths[i])
						want.EnqueueFront(ths[i])
					}
					queued[i] = true
				}
			case 2:
				if i := pick(true); i >= 0 {
					got.Dequeue(ths[i])
					want.Dequeue(ths[i])
					queued[i] = false
				}
			case 3:
				got.Rotate(0)
				want.Rotate()
			}
			if g, w := got.Peek(), want.Peek(); g != w {
				t.Fatalf("seed %d step %d: Peek %s, reference %s", seed, step, name(g), name(w))
			}
			if g, w := got.Len(), want.Len(); g != w {
				t.Fatalf("seed %d step %d: Len %d, reference %d", seed, step, g, w)
			}
		}
		for pos := 0; want.Peek() != nil; pos++ {
			g, w := got.Peek(), want.Peek()
			if g != w {
				t.Fatalf("seed %d drain pos %d: dispatch %s, reference %s", seed, pos, name(g), name(w))
			}
			got.Dequeue(w)
			want.Dequeue(w)
		}
	}
}

// TestSchedulerZeroAllocs asserts the O(1) data path: once the per-priority
// class table exists, Enqueue/EnqueueFront/Dequeue/Peek/Rotate perform no
// allocations.
func TestSchedulerZeroAllocs(t *testing.T) {
	ths := mkThreads(t, 5, 5, 9, 12)
	s := sched.NewPriority()
	// Warm-up: grow the class table to the highest priority in use.
	for _, th := range ths {
		s.Enqueue(th)
	}
	for _, th := range ths {
		s.Dequeue(th)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, th := range ths {
			s.Enqueue(th)
		}
		s.Peek()
		s.Rotate(5)
		s.EnqueueFront(ths[0])
		for _, th := range ths {
			s.Dequeue(th)
		}
	}); n != 0 {
		t.Fatalf("Priority ops allocate: %.1f allocs/run", n)
	}

	rr := sched.NewRoundRobin()
	if n := testing.AllocsPerRun(100, func() {
		for _, th := range ths {
			rr.Enqueue(th)
		}
		rr.Peek()
		rr.Rotate(0)
		rr.EnqueueFront(ths[0])
		for _, th := range ths {
			rr.Dequeue(th)
		}
	}); n != 0 {
		t.Fatalf("RoundRobin ops allocate: %.1f allocs/run", n)
	}
}
