package sched

import "repro/internal/core"

// Walk visits every ready thread in dequeue order — precedence class by
// precedence class, FIFO within each class — without mutating the queue.
// The kernel snapshot layer captures ready-queue order through it:
// re-enqueueing the visited threads in walk order onto an empty scheduler
// rebuilds an identical queue (same bitmap, same intrusive links).
func (s *Priority) Walk(fn func(*core.TThread)) {
	for i := range s.classes {
		for t := s.classes[i].head; t != nil; t = t.ReadyLink().Next {
			fn(t)
		}
	}
}

// Walk visits every ready thread in FIFO order without mutating the
// queue; see Priority.Walk.
func (s *RoundRobin) Walk(fn func(*core.TThread)) {
	for t := s.q.head; t != nil; t = t.ReadyLink().Next {
		fn(t)
	}
}
