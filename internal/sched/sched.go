// Package sched provides the external scheduler plug-ins that SIM_API
// interacts with: the priority-based preemptive ready queue used by
// RTK-Spec II and RTK-Spec TRON (T-Kernel/OS policy), and the round-robin
// queue of RTK-Spec I.
//
// Both schedulers use the classic O(1) RTOS data path: intrusive
// doubly-linked TCB lists threaded through the ReadyNode embedded in each
// core.TThread, with (for Priority) a two-level ready bitmap so the highest
// ready precedence class is found with two TrailingZeros64 instructions.
// Enqueue, EnqueueFront, Dequeue and Rotate are O(1) and allocation-free in
// steady state; Peek is O(1).
package sched

import (
	"math/bits"

	"repro/internal/core"
)

const wordBits = 64

// maxPriorities bounds the two-level bitmap: one 64-bit summary word over up
// to 64 detail words. Far above any µITRON priority range in use (the kernel
// defaults to 140 levels).
const maxPriorities = wordBits * wordBits

// list is one precedence class: an intrusive FIFO of ready threads.
type list struct {
	head, tail *core.TThread
}

// Priority is a priority-based preemptive scheduler: per-priority FIFO
// precedence classes, lower numeric priority runs first, and a ready thread
// preempts the running one only when strictly higher priority. This is the
// T-Kernel/OS scheduling policy.
//
// summary bit w is set iff words[w] != 0; words[w] bit b is set iff class
// w*64+b is non-empty. classes grows lazily to the highest priority seen, so
// steady-state operation never allocates.
type Priority struct {
	summary uint64
	words   [wordBits]uint64
	classes []list
	n       int
}

// NewPriority returns an empty priority scheduler.
func NewPriority() *Priority {
	return &Priority{}
}

// Enqueue adds t at the tail of its priority class. If t is already queued
// (here or in another scheduler) it is relocated.
func (s *Priority) Enqueue(t *core.TThread) { s.insert(t, false) }

// EnqueueFront adds t at the head of its priority class (a preempted task
// keeps precedence within its priority). If t is already queued it is
// relocated.
func (s *Priority) EnqueueFront(t *core.TThread) { s.insert(t, true) }

func (s *Priority) insert(t *core.TThread, front bool) {
	nd := t.ReadyLink()
	if nd.In != nil {
		nd.In.Dequeue(t)
	}
	p := t.Priority()
	if p < 0 || p >= maxPriorities {
		panic("sched: priority out of bitmap range")
	}
	if p >= len(s.classes) {
		// Round the growth up to a whole summary word so a burst of
		// ascending priorities reallocates at most once per 64 classes.
		grown := make([]list, (p/wordBits+1)*wordBits)
		copy(grown, s.classes)
		s.classes = grown
	}
	l := &s.classes[p]
	if front {
		nd.Prev = nil
		nd.Next = l.head
		if l.head != nil {
			l.head.ReadyLink().Prev = t
		} else {
			l.tail = t
		}
		l.head = t
	} else {
		nd.Next = nil
		nd.Prev = l.tail
		if l.tail != nil {
			l.tail.ReadyLink().Next = t
		} else {
			l.head = t
		}
		l.tail = t
	}
	s.words[p/wordBits] |= 1 << (p % wordBits)
	s.summary |= 1 << (p / wordBits)
	nd.In = s
	nd.Prio = p
	s.n++
}

// Dequeue removes t from its class; no-op if t is not queued here.
func (s *Priority) Dequeue(t *core.TThread) {
	nd := t.ReadyLink()
	if nd.In != core.Scheduler(s) {
		return
	}
	p := nd.Prio
	l := &s.classes[p]
	if nd.Prev != nil {
		nd.Prev.ReadyLink().Next = nd.Next
	} else {
		l.head = nd.Next
	}
	if nd.Next != nil {
		nd.Next.ReadyLink().Prev = nd.Prev
	} else {
		l.tail = nd.Prev
	}
	if l.head == nil {
		s.words[p/wordBits] &^= 1 << (p % wordBits)
		if s.words[p/wordBits] == 0 {
			s.summary &^= 1 << (p / wordBits)
		}
	}
	nd.Next, nd.Prev, nd.In = nil, nil, nil
	s.n--
}

// Peek returns the head of the highest-priority non-empty class.
func (s *Priority) Peek() *core.TThread {
	if s.summary == 0 {
		return nil
	}
	w := bits.TrailingZeros64(s.summary)
	b := bits.TrailingZeros64(s.words[w])
	return s.classes[w*wordBits+b].head
}

// ShouldPreempt reports whether ready strictly outranks running.
func (s *Priority) ShouldPreempt(running, ready *core.TThread) bool {
	return ready.Priority() < running.Priority()
}

// Rotate moves the head of the given priority class to its tail
// (tk_rot_rdq).
func (s *Priority) Rotate(priority int) {
	if priority < 0 || priority >= len(s.classes) {
		return
	}
	l := &s.classes[priority]
	h := l.head
	if h == nil || h == l.tail {
		return
	}
	nd := h.ReadyLink()
	l.head = nd.Next
	l.head.ReadyLink().Prev = nil
	nd.Next = nil
	nd.Prev = l.tail
	l.tail.ReadyLink().Next = h
	l.tail = h
}

// Len returns the number of ready threads.
func (s *Priority) Len() int { return s.n }

// RoundRobin is the RTK-Spec I scheduler: a single FIFO ready queue with no
// priority preemption; the running task keeps the CPU until it blocks,
// exits, or the kernel rotates the queue at a time-slice boundary. The queue
// is the same intrusive list as one Priority precedence class.
type RoundRobin struct {
	q list
	n int
}

// NewRoundRobin returns an empty round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Enqueue adds t at the tail of the ready queue; an already-queued thread is
// relocated.
func (s *RoundRobin) Enqueue(t *core.TThread) { s.insert(t, false) }

// EnqueueFront adds t at the head of the ready queue; an already-queued
// thread is relocated.
func (s *RoundRobin) EnqueueFront(t *core.TThread) { s.insert(t, true) }

func (s *RoundRobin) insert(t *core.TThread, front bool) {
	nd := t.ReadyLink()
	if nd.In != nil {
		nd.In.Dequeue(t)
	}
	if front {
		nd.Prev = nil
		nd.Next = s.q.head
		if s.q.head != nil {
			s.q.head.ReadyLink().Prev = t
		} else {
			s.q.tail = t
		}
		s.q.head = t
	} else {
		nd.Next = nil
		nd.Prev = s.q.tail
		if s.q.tail != nil {
			s.q.tail.ReadyLink().Next = t
		} else {
			s.q.head = t
		}
		s.q.tail = t
	}
	nd.In = s
	nd.Prio = 0
	s.n++
}

// Dequeue removes t from the queue; no-op if t is not queued here.
func (s *RoundRobin) Dequeue(t *core.TThread) {
	nd := t.ReadyLink()
	if nd.In != core.Scheduler(s) {
		return
	}
	if nd.Prev != nil {
		nd.Prev.ReadyLink().Next = nd.Next
	} else {
		s.q.head = nd.Next
	}
	if nd.Next != nil {
		nd.Next.ReadyLink().Prev = nd.Prev
	} else {
		s.q.tail = nd.Prev
	}
	nd.Next, nd.Prev, nd.In = nil, nil, nil
	s.n--
}

// Peek returns the head of the ready queue.
func (s *RoundRobin) Peek() *core.TThread { return s.q.head }

// ShouldPreempt always reports false: round-robin switches only at
// time-slice rotation or when the running task gives up the CPU.
func (s *RoundRobin) ShouldPreempt(running, ready *core.TThread) bool { return false }

// Rotate moves the queue head to the tail regardless of the priority
// argument (the queue is priority-less).
func (s *RoundRobin) Rotate(int) {
	h := s.q.head
	if h == nil || h == s.q.tail {
		return
	}
	nd := h.ReadyLink()
	s.q.head = nd.Next
	s.q.head.ReadyLink().Prev = nil
	nd.Next = nil
	nd.Prev = s.q.tail
	s.q.tail.ReadyLink().Next = h
	s.q.tail = h
}

// Len returns the number of ready threads.
func (s *RoundRobin) Len() int { return s.n }
