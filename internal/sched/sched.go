// Package sched provides the external scheduler plug-ins that SIM_API
// interacts with: the priority-based preemptive ready queue used by
// RTK-Spec II and RTK-Spec TRON (T-Kernel/OS policy), and the round-robin
// queue of RTK-Spec I.
package sched

import "repro/internal/core"

// Priority is a priority-based preemptive scheduler: per-priority FIFO
// precedence classes, lower numeric priority runs first, and a ready thread
// preempts the running one only when strictly higher priority. This is the
// T-Kernel/OS scheduling policy.
type Priority struct {
	classes map[int][]*core.TThread
	n       int
}

// NewPriority returns an empty priority scheduler.
func NewPriority() *Priority {
	return &Priority{classes: map[int][]*core.TThread{}}
}

// Enqueue adds t at the tail of its priority class.
func (s *Priority) Enqueue(t *core.TThread) {
	p := t.Priority()
	s.classes[p] = append(s.classes[p], t)
	s.n++
}

// EnqueueFront adds t at the head of its priority class (a preempted task
// keeps precedence within its priority).
func (s *Priority) EnqueueFront(t *core.TThread) {
	p := t.Priority()
	s.classes[p] = append([]*core.TThread{t}, s.classes[p]...)
	s.n++
}

// Dequeue removes t wherever it is queued.
func (s *Priority) Dequeue(t *core.TThread) {
	for p, q := range s.classes {
		for i, x := range q {
			if x == t {
				s.classes[p] = append(q[:i], q[i+1:]...)
				s.n--
				return
			}
		}
	}
}

// Peek returns the head of the highest-priority non-empty class.
func (s *Priority) Peek() *core.TThread {
	best := -1
	for p, q := range s.classes {
		if len(q) == 0 {
			continue
		}
		if best == -1 || p < best {
			best = p
		}
	}
	if best == -1 {
		return nil
	}
	return s.classes[best][0]
}

// ShouldPreempt reports whether ready strictly outranks running.
func (s *Priority) ShouldPreempt(running, ready *core.TThread) bool {
	return ready.Priority() < running.Priority()
}

// Rotate moves the head of the given priority class to its tail
// (tk_rot_rdq).
func (s *Priority) Rotate(priority int) {
	q := s.classes[priority]
	if len(q) < 2 {
		return
	}
	head := q[0]
	copy(q, q[1:])
	q[len(q)-1] = head
}

// Len returns the number of ready threads.
func (s *Priority) Len() int { return s.n }

// RoundRobin is the RTK-Spec I scheduler: a single FIFO ready queue with no
// priority preemption; the running task keeps the CPU until it blocks,
// exits, or the kernel rotates the queue at a time-slice boundary.
type RoundRobin struct {
	q []*core.TThread
}

// NewRoundRobin returns an empty round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Enqueue adds t at the tail of the ready queue.
func (s *RoundRobin) Enqueue(t *core.TThread) { s.q = append(s.q, t) }

// EnqueueFront adds t at the head of the ready queue.
func (s *RoundRobin) EnqueueFront(t *core.TThread) {
	s.q = append([]*core.TThread{t}, s.q...)
}

// Dequeue removes t wherever it is queued.
func (s *RoundRobin) Dequeue(t *core.TThread) {
	for i, x := range s.q {
		if x == t {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return
		}
	}
}

// Peek returns the head of the ready queue.
func (s *RoundRobin) Peek() *core.TThread {
	if len(s.q) == 0 {
		return nil
	}
	return s.q[0]
}

// ShouldPreempt always reports false: round-robin switches only at
// time-slice rotation or when the running task gives up the CPU.
func (s *RoundRobin) ShouldPreempt(running, ready *core.TThread) bool { return false }

// Rotate moves the queue head to the tail regardless of the priority
// argument (the queue is priority-less).
func (s *RoundRobin) Rotate(int) {
	if len(s.q) < 2 {
		return
	}
	head := s.q[0]
	copy(s.q, s.q[1:])
	s.q[len(s.q)-1] = head
}

// Len returns the number of ready threads.
func (s *RoundRobin) Len() int { return len(s.q) }
