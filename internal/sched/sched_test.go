package sched_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sysc"
)

// mkThreads builds detached T-THREADs with given priorities purely for
// scheduler-queue testing.
func mkThreads(t *testing.T, prios ...int) []*core.TThread {
	t.Helper()
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	api := core.NewSimAPI(sim, sched.NewPriority(), nil)
	var out []*core.TThread
	for i, p := range prios {
		out = append(out, api.CreateThread(string(rune('a'+i)), core.KindTask, p, func(*core.TThread) {}))
	}
	return out
}

func TestPriorityPeekOrder(t *testing.T) {
	ths := mkThreads(t, 10, 5, 20, 5)
	s := sched.NewPriority()
	for _, th := range ths {
		s.Enqueue(th)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	// Highest priority (5) FIFO within class: b before d.
	if got := s.Peek(); got != ths[1] {
		t.Fatalf("peek = %v", got.Name())
	}
	s.Dequeue(ths[1])
	if got := s.Peek(); got != ths[3] {
		t.Fatalf("peek2 = %v", got.Name())
	}
	s.Dequeue(ths[3])
	if got := s.Peek(); got != ths[0] {
		t.Fatalf("peek3 = %v", got.Name())
	}
}

func TestPriorityEnqueueFront(t *testing.T) {
	ths := mkThreads(t, 10, 10)
	s := sched.NewPriority()
	s.Enqueue(ths[0])
	s.EnqueueFront(ths[1])
	if s.Peek() != ths[1] {
		t.Fatal("EnqueueFront not at head")
	}
}

func TestPriorityShouldPreempt(t *testing.T) {
	ths := mkThreads(t, 10, 5, 10)
	s := sched.NewPriority()
	if !s.ShouldPreempt(ths[0], ths[1]) {
		t.Fatal("higher priority must preempt")
	}
	if s.ShouldPreempt(ths[0], ths[2]) {
		t.Fatal("equal priority must not preempt")
	}
	if s.ShouldPreempt(ths[1], ths[0]) {
		t.Fatal("lower priority must not preempt")
	}
}

func TestPriorityRotate(t *testing.T) {
	ths := mkThreads(t, 7, 7, 7)
	s := sched.NewPriority()
	for _, th := range ths {
		s.Enqueue(th)
	}
	s.Rotate(7)
	if s.Peek() != ths[1] {
		t.Fatal("rotate did not move head to tail")
	}
	s.Rotate(99) // empty class: no-op
	if s.Len() != 3 {
		t.Fatal("rotate changed population")
	}
}

func TestPriorityDequeueAbsent(t *testing.T) {
	ths := mkThreads(t, 3, 4)
	s := sched.NewPriority()
	s.Enqueue(ths[0])
	s.Dequeue(ths[1]) // absent: no-op
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestRoundRobinFIFO(t *testing.T) {
	ths := mkThreads(t, 30, 1, 20) // priorities ignored
	s := sched.NewRoundRobin()
	for _, th := range ths {
		s.Enqueue(th)
	}
	if s.Peek() != ths[0] {
		t.Fatal("not FIFO")
	}
	if s.ShouldPreempt(ths[0], ths[1]) {
		t.Fatal("round robin never preempts")
	}
	s.Rotate(0)
	if s.Peek() != ths[1] {
		t.Fatal("rotate broken")
	}
	s.EnqueueFront(ths[0]) // re-enqueue of a queued thread relocates it
	if s.Peek() != ths[0] {
		t.Fatal("EnqueueFront broken")
	}
}

func TestRoundRobinDequeue(t *testing.T) {
	ths := mkThreads(t, 1, 2, 3)
	s := sched.NewRoundRobin()
	for _, th := range ths {
		s.Enqueue(th)
	}
	s.Dequeue(ths[1])
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Rotate(0)
	if s.Peek() != ths[2] {
		t.Fatal("order after dequeue+rotate wrong")
	}
}

// Property: Peek always returns a thread of minimal priority among those
// queued, for arbitrary enqueue sequences.
func TestPropertyPriorityPeekIsMinimal(t *testing.T) {
	ths := mkThreads(t, 1, 2, 3, 4, 5, 6, 7, 8)
	f := func(order []uint8) bool {
		s := sched.NewPriority()
		in := map[int]bool{}
		for _, o := range order {
			i := int(o) % len(ths)
			if in[i] {
				s.Dequeue(ths[i])
				in[i] = false
				continue
			}
			s.Enqueue(ths[i])
			in[i] = true
		}
		min := 1 << 30
		count := 0
		for i, present := range in {
			if present {
				count++
				if ths[i].Priority() < min {
					min = ths[i].Priority()
				}
			}
		}
		if s.Len() != count {
			return false
		}
		p := s.Peek()
		if count == 0 {
			return p == nil
		}
		return p != nil && p.Priority() == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
