// Package profiling provides the shared -cpuprofile/-memprofile plumbing of
// the command-line tools, mirroring the flags of `go test`.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config holds the profile output paths; empty strings disable a profile.
type Config struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set and
// returns the config they populate. Call before flag.Parse.
func AddFlags() *Config {
	c := &Config{}
	flag.StringVar(&c.CPU, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&c.Mem, "memprofile", "", "write a pprof heap profile to this file on exit")
	return c
}

// Start begins CPU profiling if requested and returns a stop function that
// ends the CPU profile and writes the heap profile. Call stop once, before
// exiting; it is safe to call when no profile was requested.
func (c *Config) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPU != "" {
		cpuFile, err = os.Create(c.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if c.Mem != "" {
			f, err := os.Create(c.Mem)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
