package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// flakyShard wraps a real shard handler and, while down, answers every
// request with 502 — the same thing a reverse proxy produces when its
// backend refuses connections.
type flakyShard struct {
	http.Handler
	down atomic.Bool
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintln(w, "connection refused")
		return
	}
	f.Handler.ServeHTTP(w, r)
}

// TestRouterFailover: a submission whose owning shard answers 5xx is
// retried on the next ring replica; the failed shard is marked unhealthy
// in /varz until it serves again, and failovers are counted.
func TestRouterFailover(t *testing.T) {
	const n = 3
	base, servers, _ := fleet(t, n)
	_ = base

	// Rebuild the fleet with every shard wrapped in a kill switch.
	flaky := make([]*flakyShard, n)
	shards := make([]Shard, n)
	for i := 0; i < n; i++ {
		flaky[i] = &flakyShard{Handler: servers[i]}
		shards[i] = Shard{Name: fmt.Sprintf("s%d", i), Handler: flaky[i]}
	}
	rt := New(shards, 0)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)

	spec := `{"scenario":"chaos","seed":77,"artifacts":["summary.txt"]}`
	probe := postJob(t, ts, spec)
	waitDone(t, ts, probe.ID)
	owner := probe.ID[:strings.LastIndex(probe.ID, "-")]
	ownerIdx := int(owner[1] - '0')

	// Kill the owner: an identical resubmission must land on a different
	// replica instead of failing.
	flaky[ownerIdx].down.Store(true)
	moved := postJob(t, ts, spec)
	movedShard := moved.ID[:strings.LastIndex(moved.ID, "-")]
	if movedShard == owner {
		t.Fatalf("submission stayed on dead shard %s", owner)
	}
	waitDone(t, ts, moved.ID)

	// The dead shard is visible in /varz, and the failover was counted.
	var v Varz
	if code, b := getJSON(t, ts.URL+"/varz", &v); code != http.StatusOK {
		t.Fatalf("varz: %d %s", code, b)
	}
	found := false
	for _, name := range v.Unhealthy {
		if name == owner {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead shard %s not in unhealthy list %v", owner, v.Unhealthy)
	}
	if v.Totals.Failovers == 0 {
		t.Fatal("failover not counted")
	}
	if v.Totals.Shards != n-1 {
		t.Fatalf("varz aggregated %d shards, want %d live", v.Totals.Shards, n-1)
	}

	// Recovery: once the shard serves again it leaves the unhealthy list.
	flaky[ownerIdx].down.Store(false)
	back := postJob(t, ts, spec)
	waitDone(t, ts, back.ID)
	if got := back.ID[:strings.LastIndex(back.ID, "-")]; got != owner {
		t.Fatalf("recovered submission on %s, want ring owner %s", got, owner)
	}
	v = Varz{}
	if code, b := getJSON(t, ts.URL+"/varz", &v); code != http.StatusOK {
		t.Fatalf("varz: %d %s", code, b)
	}
	for _, name := range v.Unhealthy {
		if name == owner {
			t.Fatalf("recovered shard %s still unhealthy: %v", owner, v.Unhealthy)
		}
	}

	// All shards down: the last 5xx is relayed, not swallowed.
	for _, f := range flaky {
		f.down.Store(true)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-down submit: %d, want 502", resp.StatusCode)
	}

	// 4xx never fails over: an invalid spec is rejected by the owner, and
	// no shard gets marked unhealthy for it.
	for _, f := range flaky {
		f.down.Store(false)
	}
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(`{"scenario":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d, want 400", resp.StatusCode)
	}
}

// TestRingSuccessors: the failover order starts at the owner, visits every
// distinct shard exactly once, and is deterministic.
func TestRingSuccessors(t *testing.T) {
	r := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	for _, key := range []string{"a", "b", "kernel", "0123456789abcdef"} {
		succ := r.Successors(key, 4)
		if len(succ) != 4 {
			t.Fatalf("key %q: %d successors, want 4", key, len(succ))
		}
		if succ[0] != r.Pick(key) {
			t.Fatalf("key %q: first successor %s != owner %s", key, succ[0], r.Pick(key))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %s", key, s)
			}
			seen[s] = true
		}
		again := r.Successors(key, 4)
		for i := range succ {
			if succ[i] != again[i] {
				t.Fatalf("key %q: successor order not deterministic", key)
			}
		}
	}
	if got := r.Successors("x", 2); len(got) != 2 {
		t.Fatalf("capped successors: %d, want 2", len(got))
	}
}
