package router

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRouterForwardsStreaming drives the v3 streaming surface through the
// router: a streamed submission routes by hash, its live SSE event feed
// and its artifacts forward by job-ID prefix to the owning shard, and the
// streamed bytes match a buffered duplicate fetched through the router.
func TestRouterForwardsStreaming(t *testing.T) {
	_, _, ts := fleet(t, 3)

	streamed := postJob(t, ts, `{"dur":"60ms","seed":3,"artifacts":["trace.json","metrics.json"],"stream":true}`)
	if !strings.Contains(streamed.ID, "-") {
		t.Fatalf("job ID %q carries no shard prefix", streamed.ID)
	}

	// The SSE feed forwards to the owning shard and runs to its terminal
	// event (the server closes the feed, which ends the read).
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + streamed.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events through router: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var sawTerminalDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") &&
			strings.Contains(line, `"terminal":true`) && strings.Contains(line, `"state":"done"`) {
			sawTerminalDone = true
		}
	}
	if !sawTerminalDone {
		t.Fatal("feed ended without a terminal done event")
	}

	v := waitDone(t, ts, streamed.ID)
	if !v.Stream {
		t.Fatalf("job view lost stream flag: %+v", v)
	}

	// A buffered duplicate routes to the same shard and answers from its
	// cache (landed by the streamed run); bytes match through the router.
	buffered := postJob(t, ts, `{"dur":"60ms","seed":3,"artifacts":["trace.json","metrics.json"]}`)
	bv := waitDone(t, ts, buffered.ID)
	if !bv.Cached {
		t.Fatalf("buffered duplicate not served from cache: %+v", bv)
	}
	for _, name := range []string{"trace.json", "metrics.json"} {
		sresp, err := http.Get(ts.URL + "/api/v1/jobs/" + streamed.ID + "/artifacts/" + name + "?stream=1")
		if err != nil {
			t.Fatal(err)
		}
		sb, _ := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		bresp, err := http.Get(ts.URL + "/api/v1/jobs/" + buffered.ID + "/artifacts/" + name)
		if err != nil {
			t.Fatal(err)
		}
		bb, _ := io.ReadAll(bresp.Body)
		bresp.Body.Close()
		if len(sb) == 0 || !bytes.Equal(sb, bb) {
			t.Errorf("%s: streamed %d bytes != buffered %d bytes through router", name, len(sb), len(bb))
		}
	}

	// Fleet varz aggregates the streaming counters.
	var vz Varz
	if code, b := getJSON(t, ts.URL+"/varz", &vz); code != http.StatusOK {
		t.Fatalf("varz: %d: %s", code, b)
	}
	if vz.Totals.StreamJobs != 1 {
		t.Errorf("totals.stream_jobs = %d", vz.Totals.StreamJobs)
	}
	if vz.Totals.EventStreamsServed == 0 {
		t.Errorf("totals.event_streams_served = 0")
	}
	if vz.Totals.StreamResultsCached != 1 {
		t.Errorf("totals.stream_results_cached = %d", vz.Totals.StreamResultsCached)
	}

	// Events of an unprefixed or unknown job stay a clean envelope.
	if code, b := getJSON(t, ts.URL+"/api/v1/jobs/zzz/events", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job events: %d: %s", code, b)
	}
}
