// Package router fronts a fleet of rtkserve shards with a single jobs
// API. Submissions are routed by the Spec's canonical content hash over a
// consistent-hash ring, so identical Specs always land on the same shard
// — which is what lets each shard's result cache and singleflight dedupe
// work fleet-wide without any shared state. Job IDs carry their shard's
// name as a prefix ("s0-j17"), so status, cancel, and artifact requests
// route by simple prefix parse. List, healthz, and varz fan out.
//
// The router speaks exactly the shard's wire surface (the server
// package's envelopes and documents), so clients cannot tell a router
// from a single replica — except that list pagination is per-shard:
// the router rejects ?cursor= rather than invent a global ordering.
package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/run"
	"repro/internal/server"
)

// maxSubmitBody bounds a submission body. Sized for specs carrying a
// checkpoint resume_from payload (a base64 snapshot of a full task set's
// kernel state), not just hand-written JSON.
const maxSubmitBody = 4 << 20

// Shard is one rtkserve replica: a routable name and its handler. The
// handler is either an in-process *server.Server or a reverse proxy to a
// remote replica; the router does not care which. The name must match the
// replica's configured server.Config.Name, because job-ID prefix routing
// depends on it.
type Shard struct {
	Name    string
	Handler http.Handler
}

// Router is the fleet front. It implements http.Handler.
type Router struct {
	shards []Shard
	byName map[string]http.Handler
	ring   *Ring
	mux    *http.ServeMux

	mu        sync.Mutex
	unhealthy map[string]bool // shards whose last submission attempt failed with 5xx
	failovers uint64          // submissions served by a non-primary replica
}

// New builds a router over the given shards. Vnodes <= 0 uses the ring
// default.
func New(shards []Shard, vnodes int) *Router {
	rt := &Router{
		shards:    shards,
		byName:    make(map[string]http.Handler, len(shards)),
		unhealthy: make(map[string]bool),
	}
	names := make([]string, 0, len(shards))
	for _, s := range shards {
		names = append(names, s.Name)
		rt.byName[s.Name] = s.Handler
	}
	rt.ring = NewRing(names, vnodes)

	m := http.NewServeMux()
	m.HandleFunc("POST /api/v1/jobs", rt.handleSubmit)
	m.HandleFunc("GET /api/v1/jobs", rt.handleList)
	m.HandleFunc("GET /api/v1/jobs/{id}", rt.forwardByID)
	m.HandleFunc("DELETE /api/v1/jobs/{id}", rt.forwardByID)
	m.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", rt.forwardByID)
	m.HandleFunc("GET /api/v1/jobs/{id}/events", rt.forwardByID)
	m.HandleFunc("GET /healthz", rt.handleHealthz)
	m.HandleFunc("GET /varz", rt.handleVarz)
	rt.mux = m
	return rt
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// RouteSpec returns the shard that owns the given canonical Spec hash.
func (rt *Router) RouteSpec(hash string) string { return rt.ring.Pick(hash) }

// handleSubmit routes a submission by the Spec's canonical content hash.
// A body that fails to canonicalize still routes (by its raw bytes) so
// the owning shard renders the invalid_spec envelope — the router never
// duplicates the shard's validation logic.
//
// Availability over affinity: if the owning shard answers 5xx (crashed
// replica behind a reverse proxy surfaces as a 502 connection error,
// a draining one as 503), the submission retries on the next distinct
// replica clockwise on the ring. The job then runs without that shard's
// cache — a duplicate simulation at worst, never a lost submission. The
// failed shard is marked unhealthy (visible in /varz) until a later
// attempt on it succeeds. Client errors (4xx) never fail over: the next
// shard would reject the same spec the same way.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidSpec,
			"reading body: "+err.Error(), 0)
		return
	}
	key := ""
	var spec run.Spec
	if err := json.Unmarshal(body, &spec); err == nil {
		if h, herr := run.Hash(spec); herr == nil {
			key = h
		}
	}
	if key == "" {
		key = string(body)
	}
	order := rt.ring.Successors(key, len(rt.shards))
	if len(order) == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeInternal,
			"no shards configured", 0)
		return
	}
	var last *bufferedResponse
	for i, name := range order {
		h, ok := rt.byName[name]
		if !ok {
			continue
		}
		req := r.Clone(r.Context())
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
		resp := newBufferedResponse()
		h.ServeHTTP(resp, req)
		if resp.Code < http.StatusInternalServerError {
			rt.setHealth(name, true)
			if i > 0 {
				rt.mu.Lock()
				rt.failovers++
				rt.mu.Unlock()
			}
			copyResponse(w, resp, resp.body.Bytes())
			return
		}
		rt.setHealth(name, false)
		last = resp
	}
	// Every replica failed; relay the last 5xx verbatim.
	copyResponse(w, last, last.body.Bytes())
}

func (rt *Router) setHealth(name string, healthy bool) {
	rt.mu.Lock()
	if healthy {
		delete(rt.unhealthy, name)
	} else {
		rt.unhealthy[name] = true
	}
	rt.mu.Unlock()
}

// unhealthyNames returns the currently-marked shards, sorted.
func (rt *Router) unhealthyNames() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.unhealthy))
	for name := range rt.unhealthy {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// forwardByID routes status/cancel/artifact/events requests by the job
// ID's shard prefix ("s0-j17" -> shard "s0"). The response writer is
// handed to the shard handler directly — never buffered — so chunked
// artifact streams and SSE event feeds flow through the router with the
// shard's own flushing; a proxy shard (cmd/rtkserve) sets FlushInterval
// on its ReverseProxy for the same reason.
func (rt *Router) forwardByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	i := strings.LastIndex(id, "-")
	if i <= 0 {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			"job ID "+id+" carries no shard prefix", 0)
		return
	}
	h, ok := rt.byName[id[:i]]
	if !ok {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			"no shard named "+id[:i], 0)
		return
	}
	h.ServeHTTP(w, r)
}

// handleList fans the query out to every shard and concatenates the
// pages in shard order. state= and limit= pass through; the merged
// result is re-capped at limit. Cursors are per-shard sequence numbers,
// so the router cannot honor them globally and says so.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("cursor") != "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeInvalidArgument,
			"cursor pagination is per-shard; list shards individually to paginate", 0)
		return
	}
	limit := 0
	merged := server.JobList{Jobs: []server.JobView{}}
	for _, s := range rt.shards {
		resp, body := rt.call(s.Handler, http.MethodGet, "/api/v1/jobs?"+q.Encode())
		if resp.Code != http.StatusOK {
			// A shard rejected the query (bad state/limit); relay verbatim.
			copyResponse(w, resp, body)
			return
		}
		var l server.JobList
		if err := json.Unmarshal(body, &l); err != nil {
			server.WriteError(w, http.StatusBadGateway, server.CodeInternal,
				"shard "+s.Name+": "+err.Error(), 0)
			return
		}
		merged.Jobs = append(merged.Jobs, l.Jobs...)
	}
	if l := q.Get("limit"); l != "" {
		// The shards validated it already.
		if n, err := parsePositive(l); err == nil {
			limit = n
		}
	}
	if limit > 0 && len(merged.Jobs) > limit {
		merged.Jobs = merged.Jobs[:limit]
	}
	server.WriteJSON(w, http.StatusOK, merged)
}

// handleHealthz is healthy only when every shard is.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var down []string
	for _, s := range rt.shards {
		resp, _ := rt.call(s.Handler, http.MethodGet, "/healthz")
		if resp.Code != http.StatusOK {
			down = append(down, s.Name)
		}
	}
	if len(down) > 0 {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeInternal,
			"shards down: "+strings.Join(down, ","), 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// Varz is the router's aggregate counters page: the fleet totals plus
// each shard's own varz.
type Varz struct {
	Role   string        `json:"role"`
	Shards []server.Varz `json:"shards"`
	// Unhealthy lists shards whose last submission attempt failed with a
	// 5xx (failover marked them) or that did not answer this varz fan-out.
	Unhealthy []string `json:"unhealthy,omitempty"`
	Totals    Totals   `json:"totals"`
}

// Totals sums the fleet-meaningful counters across shards.
type Totals struct {
	Shards        int    `json:"shards"`
	QueueDepth    int    `json:"queue_depth"`
	InFlight      int    `json:"in_flight"`
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFromCache uint64 `json:"jobs_from_cache"`
	JobsCoalesced uint64 `json:"jobs_coalesced"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	// Streaming pipeline totals (v3).
	StreamJobs            uint64 `json:"stream_jobs"`
	ArtifactStreamsServed uint64 `json:"artifact_streams_served"`
	EventStreamsServed    uint64 `json:"event_streams_served"`
	StreamResultsCached   uint64 `json:"stream_results_cached"`
	// Failovers counts submissions served by a non-primary replica after
	// their owning shard answered 5xx.
	Failovers uint64 `json:"failovers"`
}

func (rt *Router) handleVarz(w http.ResponseWriter, r *http.Request) {
	v := Varz{Role: "router", Shards: []server.Varz{}}
	down := map[string]bool{}
	for _, name := range rt.unhealthyNames() {
		down[name] = true
	}
	for _, s := range rt.shards {
		resp, body := rt.call(s.Handler, http.MethodGet, "/varz")
		var sv server.Varz
		if resp.Code != http.StatusOK || json.Unmarshal(body, &sv) != nil {
			// A shard that cannot render varz is down; report it rather
			// than fail the whole fleet page.
			down[s.Name] = true
			continue
		}
		v.Shards = append(v.Shards, sv)
		v.Totals.Shards++
		v.Totals.QueueDepth += sv.QueueDepth
		v.Totals.InFlight += sv.InFlight
		v.Totals.JobsSubmitted += sv.JobsSubmitted
		v.Totals.JobsRejected += sv.JobsRejected
		v.Totals.JobsCompleted += sv.JobsCompleted
		v.Totals.JobsFromCache += sv.JobsFromCache
		v.Totals.JobsCoalesced += sv.JobsCoalesced
		v.Totals.StreamJobs += sv.StreamJobs
		v.Totals.ArtifactStreamsServed += sv.ArtifactStreamsServed
		v.Totals.EventStreamsServed += sv.EventStreamsServed
		v.Totals.StreamResultsCached += sv.StreamResultsCached
		if sv.Cache != nil {
			v.Totals.CacheHits += sv.Cache.Hits
			v.Totals.CacheMisses += sv.Cache.Misses
		}
	}
	for name := range down {
		v.Unhealthy = append(v.Unhealthy, name)
	}
	sort.Strings(v.Unhealthy)
	rt.mu.Lock()
	v.Totals.Failovers = rt.failovers
	rt.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, v)
}

// call runs an in-process subrequest against a shard handler and buffers
// the response.
func (rt *Router) call(h http.Handler, method, target string) (*bufferedResponse, []byte) {
	req, _ := http.NewRequest(method, target, nil)
	resp := newBufferedResponse()
	h.ServeHTTP(resp, req)
	return resp, resp.body.Bytes()
}

func copyResponse(w http.ResponseWriter, resp *bufferedResponse, body []byte) {
	for k, vv := range resp.header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.Code)
	_, _ = w.Write(body)
}

// bufferedResponse is a minimal in-memory http.ResponseWriter for
// fan-out subrequests.
type bufferedResponse struct {
	Code   int
	header http.Header
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{Code: http.StatusOK, header: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header         { return b.header }
func (b *bufferedResponse) WriteHeader(code int)        { b.Code = code }
func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func parsePositive(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}
