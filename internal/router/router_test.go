package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestRingDeterministic is the acceptance criterion: placement is a pure
// function of the member names, so a rebuilt ring (a router restart)
// routes every key to the same shard.
func TestRingDeterministic(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	a := NewRing(names, 0)
	// Same members in a different declaration order: a restart does not
	// preserve slice order, and must not need to.
	b := NewRing([]string{"s3", "s1", "s4", "s0", "s2"}, 0)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("spec-hash-%d", i)
		if a.Pick(key) != b.Pick(key) {
			t.Fatalf("key %q: %s vs %s after restart", key, a.Pick(key), b.Pick(key))
		}
	}
}

// TestRingBalance: vnodes keep the load split roughly even.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Pick(fmt.Sprintf("key-%d", i))]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("shard %s owns %.0f%% of keys: %v", s, frac*100, counts)
		}
	}
}

// TestRingStableUnderGrowth: adding a member only steals keys — no key
// moves between two surviving members.
func TestRingStableUnderGrowth(t *testing.T) {
	small := NewRing([]string{"s0", "s1", "s2"}, 0)
	big := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	moved, stolen := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := small.Pick(key), big.Pick(key)
		if was == is {
			continue
		}
		if is == "s3" {
			stolen++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving shards", moved)
	}
	if stolen == 0 || stolen > n/2 {
		t.Fatalf("new shard stole %d of %d keys", stolen, n)
	}
}

// fleet builds an in-process router over n real shards.
func fleet(t *testing.T, n int) (*Router, []*server.Server, *httptest.Server) {
	t.Helper()
	shards := make([]Shard, n)
	servers := make([]*server.Server, n)
	for i := 0; i < n; i++ {
		s := server.New(server.Config{Name: fmt.Sprintf("s%d", i), Workers: 2, Queue: 64})
		servers[i] = s
		shards[i] = Shard{Name: fmt.Sprintf("s%d", i), Handler: s}
	}
	rt := New(shards, 0)
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		for _, s := range servers {
			_ = s.Shutdown(context.Background())
		}
	})
	return rt, servers, ts
}

func getJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("decode %s: %v: %s", url, err, b)
		}
	}
	return resp.StatusCode, b
}

func postJob(t *testing.T, ts *httptest.Server, spec string) server.JobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, b)
	}
	var v server.JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) server.JobView {
	t.Helper()
	for i := 0; i < 3000; i++ {
		var v server.JobView
		code, b := getJSON(t, ts.URL+"/api/v1/jobs/"+id, &v)
		if code != http.StatusOK {
			t.Fatalf("status %s: %d: %s", id, code, b)
		}
		switch v.State {
		case server.StateDone:
			return v
		case server.StateFailed, server.StateCancelled:
			t.Fatalf("job %s: %s (%v)", id, v.State, v.Error)
		}
	}
	t.Fatalf("job %s never finished", id)
	return server.JobView{}
}

// TestRouterRoutesByHash: identical Specs land on one shard (and so hit
// that shard's cache); distinct Specs spread across the fleet; job IDs
// route back to the owning shard for status and artifacts.
func TestRouterRoutesByHash(t *testing.T) {
	rt, _, ts := fleet(t, 3)

	spec := `{"scenario":"chaos","seed":9,"artifacts":["summary.txt"]}`
	first := postJob(t, ts, spec)
	fv := waitDone(t, ts, first.ID)
	if first.SpecHash == "" {
		t.Fatal("no spec hash on submit")
	}
	wantShard := rt.RouteSpec(first.SpecHash)
	if !strings.HasPrefix(first.ID, wantShard+"-") {
		t.Fatalf("job %s not on ring-owner %s", first.ID, wantShard)
	}

	// Resubmit through the router: must land on the same shard and be
	// served from its cache.
	second := postJob(t, ts, spec)
	sv := waitDone(t, ts, second.ID)
	if !strings.HasPrefix(second.ID, wantShard+"-") {
		t.Fatalf("resubmission %s left shard %s", second.ID, wantShard)
	}
	if !sv.Cached && !sv.Coalesced {
		t.Fatalf("resubmission not deduped: %+v", sv)
	}
	if sv.SpecHash != fv.SpecHash {
		t.Fatalf("hash changed across submissions: %s vs %s", sv.SpecHash, fv.SpecHash)
	}

	// Artifact fetch routes by ID prefix.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + second.ID + "/artifacts/summary.txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("artifact via router: %d (%d bytes)", resp.StatusCode, len(body))
	}

	// Distinct seeds should not all pile on one shard.
	shardsHit := map[string]bool{}
	for i := 0; i < 24; i++ {
		v := postJob(t, ts, fmt.Sprintf(`{"scenario":"chaos","seed":%d,"artifacts":["summary.txt"]}`, 100+i))
		shardsHit[v.ID[:strings.LastIndex(v.ID, "-")]] = true
	}
	if len(shardsHit) < 2 {
		t.Fatalf("24 distinct specs all routed to %v", shardsHit)
	}
}

// TestRouterUnknownID: IDs without a routable prefix get the not_found
// envelope.
func TestRouterUnknownID(t *testing.T) {
	_, _, ts := fleet(t, 2)
	for _, id := range []string{"j1", "s9-j1"} {
		code, b := getJSON(t, ts.URL+"/api/v1/jobs/"+id, nil)
		if code != http.StatusNotFound {
			t.Fatalf("id %q: %d", id, code)
		}
		var env server.ErrorEnvelope
		if err := json.Unmarshal(b, &env); err != nil || env.Error.Code != server.CodeNotFound {
			t.Fatalf("id %q: %s", id, b)
		}
	}
}

// TestRouterListAndVarz: list fans out and merges; varz aggregates; the
// router refuses global cursors.
func TestRouterListAndVarz(t *testing.T) {
	_, _, ts := fleet(t, 2)

	ids := make(map[string]bool)
	for i := 0; i < 6; i++ {
		v := postJob(t, ts, fmt.Sprintf(`{"scenario":"chaos","seed":%d,"artifacts":["summary.txt"]}`, i))
		ids[v.ID] = true
	}
	for id := range ids {
		waitDone(t, ts, id)
	}

	var l server.JobList
	if code, b := getJSON(t, ts.URL+"/api/v1/jobs?state=done", &l); code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, b)
	}
	if len(l.Jobs) != len(ids) {
		t.Fatalf("merged list has %d jobs, want %d", len(l.Jobs), len(ids))
	}
	for _, j := range l.Jobs {
		if !ids[j.ID] {
			t.Fatalf("unexpected job %s in merged list", j.ID)
		}
	}

	// limit caps the merged result.
	if code, _ := getJSON(t, ts.URL+"/api/v1/jobs?limit=4", &l); code != http.StatusOK || len(l.Jobs) != 4 {
		t.Fatalf("limit=4: %d jobs", len(l.Jobs))
	}

	// Global cursors are refused with a typed envelope.
	code, b := getJSON(t, ts.URL+"/api/v1/jobs?cursor=3", nil)
	var env server.ErrorEnvelope
	_ = json.Unmarshal(b, &env)
	if code != http.StatusBadRequest || env.Error.Code != server.CodeInvalidArgument {
		t.Fatalf("cursor at router: %d %s", code, b)
	}

	var v Varz
	if code, b := getJSON(t, ts.URL+"/varz", &v); code != http.StatusOK {
		t.Fatalf("varz: %d: %s", code, b)
	}
	if v.Role != "router" || v.Totals.Shards != 2 || len(v.Shards) != 2 {
		t.Fatalf("varz shape: %+v", v)
	}
	if v.Totals.JobsSubmitted != 6 || v.Totals.JobsCompleted != 6 {
		t.Fatalf("varz totals: %+v", v.Totals)
	}

	// healthz aggregates.
	if code, b := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Fatalf("healthz: %d %s", code, b)
	}
}
