package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over shard names. Placement depends only
// on the member names and the vnode count — both configuration — so a
// restarted router (or an independently started replica of it) routes
// every key to the same shard. That determinism is what makes the
// per-shard result caches effective: one Spec hash always lands on the
// shard that holds its cached result.
type Ring struct {
	points []ringPoint // sorted by hash
	vnodes int
}

type ringPoint struct {
	hash  uint64
	shard string
}

// defaultVnodes spreads each shard over enough ring positions that load
// imbalance stays within a few percent for small fleets.
const defaultVnodes = 128

// NewRing builds a ring over the given shard names. vnodes <= 0 uses the
// default. Duplicate names collapse to one member.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{vnodes: vnodes}
	for _, s := range shards {
		if seen[s] {
			continue
		}
		seen[s] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(s + "#" + strconv.Itoa(i)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal hashes cannot make placement depend
		// on input order.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Pick returns the shard owning key: the first ring point clockwise from
// the key's hash. Empty rings return "".
func (r *Ring) Pick(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// Successors returns up to n distinct shards in clockwise ring order
// starting from the key's owner. The first element is Pick(key); the rest
// are the failover order — the same deterministic sequence every router
// replica computes, so retries also route consistently.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	var out []string
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// Members returns the distinct shard names on the ring, sorted.
func (r *Ring) Members() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	sort.Strings(out)
	return out
}

// hash64 is fnv64a with a splitmix64 finalizer. Raw FNV clusters on the
// short, similar strings vnode labels are made of ("s1#12"), which skews
// ring ownership badly; the avalanche step spreads them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
