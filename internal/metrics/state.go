package metrics

import "repro/internal/sysc"

// Snapshot support: a warm-start sweep captures the collector after the
// shared prefix and rewinds it before each forked variant, so per-variant
// reports aggregate prefix + variant exactly as a cold run would.

// CollectorState is the captured accumulator state. Opaque: it only flows
// back into LoadState on a collector of the same run family.
type CollectorState struct {
	tasks map[string]taskState
	ctxs  map[uint8]ContextMetrics
	end   sysc.Time
}

// SaveState captures the collector's accumulators.
func (c *Collector) SaveState() CollectorState {
	st := CollectorState{
		tasks: make(map[string]taskState, len(c.tasks)),
		ctxs:  make(map[uint8]ContextMetrics, len(c.ctxs)),
		end:   c.end,
	}
	for name, t := range c.tasks {
		st.tasks[name] = *t
	}
	for k, x := range c.ctxs {
		st.ctxs[k] = *x
	}
	return st
}

// LoadState rewinds the collector to a captured state.
func (c *Collector) LoadState(st CollectorState) {
	clear(c.tasks)
	for name, t := range st.tasks {
		tc := t
		c.tasks[name] = &tc
	}
	clear(c.ctxs)
	for k, x := range st.ctxs {
		xc := x
		c.ctxs[k] = &xc
	}
	c.end = st.end
}
