package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/sysc"
)

func ev(k event.Kind, thread string, at sysc.Time) event.Event {
	return event.Event{Kind: k, Thread: thread, Time: at}
}

func TestDispatchLatencyAndWaitTime(t *testing.T) {
	b := event.NewBus()
	c := Attach(b)

	// a activates at 0, dispatches at 2ms -> latency 2ms.
	b.Publish(ev(event.KindActivate, "a", 0))
	b.Publish(ev(event.KindDispatch, "a", 2*sysc.Ms))
	// a blocks at 5ms, releases at 9ms -> wait 4ms, redispatch at 10ms -> 1ms.
	b.Publish(ev(event.KindBlock, "a", 5*sysc.Ms))
	b.Publish(ev(event.KindRelease, "a", 9*sysc.Ms))
	b.Publish(ev(event.KindDispatch, "a", 10*sysc.Ms))
	// a preempted at 12ms, back at 12ms -> zero latency.
	b.Publish(ev(event.KindPreempt, "a", 12*sysc.Ms))
	b.Publish(ev(event.KindDispatch, "a", 12*sysc.Ms))

	r := c.Report()
	if len(r.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(r.Tasks))
	}
	a := r.Tasks[0]
	if a.Thread != "a" || a.Dispatches != 3 || a.Preemptions != 1 {
		t.Fatalf("counters: %+v", a)
	}
	if a.DispatchLatency.Count != 3 || a.DispatchLatency.SumUs != 3000 {
		t.Fatalf("dispatch latency: %+v", a.DispatchLatency)
	}
	if a.DispatchLatency.MaxUs != 2000 {
		t.Fatalf("max latency: %v", a.DispatchLatency.MaxUs)
	}
	if a.WaitTime.Count != 1 || a.WaitTime.SumUs != 4000 {
		t.Fatalf("wait time: %+v", a.WaitTime)
	}
}

func TestRunSliceRollups(t *testing.T) {
	b := event.NewBus()
	c := Attach(b)

	b.Publish(event.Event{Kind: event.KindRunSlice, Thread: "a", Ctx: 1,
		Start: 0, Time: 3 * sysc.Ms, Energy: 2 * petri.MilliJ})
	b.Publish(event.Event{Kind: event.KindRunSlice, Thread: "a", Ctx: 2,
		Start: 3 * sysc.Ms, Time: 4 * sysc.Ms, Energy: 1 * petri.MilliJ})
	b.Publish(event.Event{Kind: event.KindRunSlice, Thread: "b", Ctx: 1,
		Start: 4 * sysc.Ms, Time: 6 * sysc.Ms, Energy: 4 * petri.MilliJ})

	r := c.Report()
	if len(r.Tasks) != 2 || len(r.Contexts) != 2 {
		t.Fatalf("rows: %d tasks, %d contexts", len(r.Tasks), len(r.Contexts))
	}
	a := r.Tasks[0]
	if a.CETUs != 4000 || a.CEEJoules != 0.003 {
		t.Fatalf("a rollup: %+v", a)
	}
	// Context rows are name-sorted: "service" < "task" (Ctx 1 = task, 2 = service).
	var taskCtx ContextMetrics
	for _, x := range r.Contexts {
		if x.Context == "task" {
			taskCtx = x
		}
	}
	if taskCtx.Slices != 2 || taskCtx.TimeUs != 5000 {
		t.Fatalf("task ctx rollup: %+v", taskCtx)
	}
	if r.SimTimeUs != 6000 {
		t.Fatalf("sim time: %v", r.SimTimeUs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.observe(0)                    // bucket 0
	h.observe(1 * sysc.Us)          // bucket 1
	h.observe(3 * sysc.Us)          // bucket 2
	h.observe(1000000 * sysc.Sec)   // clamped to last bucket
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[histBuckets-1] != 1 {
		t.Fatalf("buckets: %v", h.Buckets)
	}
	if h.Count != 4 {
		t.Fatalf("count: %d", h.Count)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	run := func() []byte {
		b := event.NewBus()
		c := Attach(b)
		b.Publish(ev(event.KindActivate, "z", 0))
		b.Publish(ev(event.KindDispatch, "z", sysc.Ms))
		b.Publish(ev(event.KindActivate, "a", 0))
		b.Publish(ev(event.KindDispatch, "a", 2*sysc.Ms))
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, two := run(), run()
	if !bytes.Equal(one, two) {
		t.Fatal("reports differ across identical runs")
	}
	var r Report
	if err := json.Unmarshal(one, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Tasks) != 2 || r.Tasks[0].Thread != "a" {
		t.Fatalf("rows not name-sorted: %+v", r.Tasks)
	}
}
