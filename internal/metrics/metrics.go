// Package metrics derives per-task scheduling and accounting statistics from
// the kernel event bus: dispatch latency (ready -> running), wait time
// (blocked -> released), preemption/dispatch counts, and CET/CEE rollups per
// task and per execution context. The collector is a pure bus subscriber — it
// never touches kernel internals — and its report is machine-readable JSON
// with deterministic field and row order, suitable for regression diffing
// next to the Figure 7 time/energy distribution.
package metrics

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"

	"repro/internal/event"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// histBuckets is the number of log2 histogram buckets. Bucket i counts
// samples whose value in microseconds has bit length i, so bucket 0 is
// sub-microsecond, bucket 1 is [1us,2us), bucket 20 is [0.5s,1s), and the
// last bucket absorbs everything longer.
const histBuckets = 24

// Histogram is a log2-bucketed latency histogram over simulated time.
type Histogram struct {
	Count   uint64             `json:"count"`
	SumUs   float64            `json:"sum_us"`
	MaxUs   float64            `json:"max_us"`
	Buckets [histBuckets]uint64 `json:"log2_us_buckets"`
}

// observe records one duration sample.
func (h *Histogram) observe(d sysc.Time) {
	if d < 0 {
		return
	}
	us := float64(d) / 1e6
	h.Count++
	h.SumUs += us
	if us > h.MaxUs {
		h.MaxUs = us
	}
	i := bits.Len64(uint64(d / 1e6))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.Buckets[i]++
}

// MeanUs returns the mean sample in microseconds (0 when empty).
func (h *Histogram) MeanUs() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumUs / float64(h.Count)
}

// TaskMetrics aggregates one task's scheduling behaviour over a run.
type TaskMetrics struct {
	Thread          string    `json:"thread"`
	Dispatches      uint64    `json:"dispatches"`
	Preemptions     uint64    `json:"preemptions"`
	CETUs           float64   `json:"cet_us"`
	CEEJoules       float64   `json:"cee_j"`
	DispatchLatency Histogram `json:"dispatch_latency"`
	WaitTime        Histogram `json:"wait_time"`
}

// ContextMetrics rolls consumed time and energy up by execution context
// (task, service, handler, bfm, idle...), mirroring the Figure 7 breakdown.
type ContextMetrics struct {
	Context string  `json:"context"`
	TimeUs  float64 `json:"time_us"`
	Joules  float64 `json:"joules"`
	Slices  uint64  `json:"slices"`
}

// Report is the full machine-readable metrics dump for one run.
type Report struct {
	SimTimeUs float64          `json:"sim_time_us"`
	Tasks     []TaskMetrics    `json:"tasks"`
	Contexts  []ContextMetrics `json:"contexts"`
}

// Collector subscribes to the bus and accumulates metrics as events stream
// by. It keeps O(tasks) state; event volume does not grow its footprint.
type Collector struct {
	sub *event.Subscription

	tasks map[string]*taskState
	ctxs  map[uint8]*ContextMetrics

	end sysc.Time
}

type taskState struct {
	m TaskMetrics

	readyAt   sysc.Time
	ready     bool
	blockedAt sysc.Time
	blocked   bool
}

// collectorKinds is the event subset the collector consumes.
var collectorKinds = []event.Kind{
	event.KindRunSlice,
	event.KindDispatch, event.KindPreempt,
	event.KindBlock, event.KindRelease,
	event.KindActivate,
}

// Attach subscribes a new collector to the bus.
func Attach(b *event.Bus) *Collector {
	c := &Collector{
		tasks: map[string]*taskState{},
		ctxs:  map[uint8]*ContextMetrics{},
	}
	c.sub = b.Subscribe(c.handle, collectorKinds...)
	return c
}

// Close detaches the collector from the bus.
func (c *Collector) Close() { c.sub.Close() }

// task returns (creating on first sight) the state for a thread name.
func (c *Collector) task(name string) *taskState {
	t, ok := c.tasks[name]
	if !ok {
		t = &taskState{m: TaskMetrics{Thread: name}}
		c.tasks[name] = t
	}
	return t
}

func (c *Collector) handle(e event.Event) {
	if e.Time > c.end {
		c.end = e.Time
	}
	switch e.Kind {
	case event.KindRunSlice:
		t := c.task(e.Thread)
		dur := e.Time - e.Start
		t.m.CETUs += float64(dur) / 1e6
		t.m.CEEJoules += e.Energy.Joules()
		ctx, ok := c.ctxs[e.Ctx]
		if !ok {
			ctx = &ContextMetrics{Context: trace.Context(e.Ctx).String()}
			c.ctxs[e.Ctx] = ctx
		}
		ctx.TimeUs += float64(dur) / 1e6
		ctx.Joules += e.Energy.Joules()
		ctx.Slices++
	case event.KindActivate:
		t := c.task(e.Thread)
		t.readyAt, t.ready = e.Time, true
	case event.KindRelease:
		t := c.task(e.Thread)
		if t.blocked {
			t.m.WaitTime.observe(e.Time - t.blockedAt)
			t.blocked = false
		}
		t.readyAt, t.ready = e.Time, true
	case event.KindPreempt:
		// The preempted thread goes back to READY and will be re-dispatched.
		t := c.task(e.Thread)
		t.m.Preemptions++
		t.readyAt, t.ready = e.Time, true
	case event.KindDispatch:
		t := c.task(e.Thread)
		t.m.Dispatches++
		if t.ready {
			t.m.DispatchLatency.observe(e.Time - t.readyAt)
			t.ready = false
		}
	case event.KindBlock:
		t := c.task(e.Thread)
		t.blockedAt, t.blocked = e.Time, true
	}
}

// Report snapshots the accumulated metrics, task rows and context rows
// sorted by name for deterministic output.
func (c *Collector) Report() Report {
	r := Report{SimTimeUs: float64(c.end) / 1e6}
	for _, t := range c.tasks {
		r.Tasks = append(r.Tasks, t.m)
	}
	sort.Slice(r.Tasks, func(i, j int) bool { return r.Tasks[i].Thread < r.Tasks[j].Thread })
	for _, x := range c.ctxs {
		r.Contexts = append(r.Contexts, *x)
	}
	sort.Slice(r.Contexts, func(i, j int) bool { return r.Contexts[i].Context < r.Contexts[j].Context })
	return r
}

// WriteJSON writes the report as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Report())
}
