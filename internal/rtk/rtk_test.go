package rtk_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rtk"
	"repro/internal/run/opts"
	"repro/internal/sysc"
)

func newKernel(t *testing.T, cfg rtk.Config) (*rtk.RTK, *sysc.Simulator) {
	t.Helper()
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	return rtk.New(sim, cfg), sim
}

func TestRoundRobinSharesCPU(t *testing.T) {
	k, sim := newKernel(t, rtk.Config{CommonOptions: opts.CommonOptions{TimeSlice: 5 * sysc.Ms}, Policy: rtk.RoundRobin})
	var slices []string
	mk := func(name string) *rtk.Task {
		return k.CreateTask(name, 0, func(task *rtk.Task) {
			for i := 0; i < 2; i++ {
				task.Work(core.Cost{Time: 5 * sysc.Ms}, "")
				slices = append(slices, name)
			}
		})
	}
	a, b := mk("a"), mk("b")
	_ = k.Start(a)
	_ = k.Start(b)
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(slices, ",")
	if got != "a,b,a,b" {
		t.Fatalf("slices = %q, want interleaved", got)
	}
	if k.Slices() == 0 {
		t.Fatal("no rotations counted")
	}
}

func TestRoundRobinNoPriorityPreemption(t *testing.T) {
	// Under RTK-Spec I a "high-priority" arrival does NOT preempt.
	k, sim := newKernel(t, rtk.Config{CommonOptions: opts.CommonOptions{TimeSlice: 50 * sysc.Ms}, Policy: rtk.RoundRobin})
	var order []string
	a := k.CreateTask("a", 10, func(task *rtk.Task) {
		task.Work(core.Cost{Time: 10 * sysc.Ms}, "")
		order = append(order, "a")
	})
	b := k.CreateTask("b", 1, func(task *rtk.Task) {
		task.Work(core.Cost{Time: 2 * sysc.Ms}, "")
		order = append(order, "b")
	})
	_ = k.Start(a)
	sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		_ = k.Start(b) // would preempt under RTK-II; not under RTK-I
	})
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b" {
		t.Fatalf("order = %v", order)
	}
}

func TestPriorityPreemptivePreempts(t *testing.T) {
	k, sim := newKernel(t, rtk.Config{Policy: rtk.PriorityPreemptive})
	var order []string
	a := k.CreateTask("a", 10, func(task *rtk.Task) {
		task.Work(core.Cost{Time: 10 * sysc.Ms}, "")
		order = append(order, "a")
	})
	b := k.CreateTask("b", 1, func(task *rtk.Task) {
		task.Work(core.Cost{Time: 2 * sysc.Ms}, "")
		order = append(order, "b")
	})
	_ = k.Start(a)
	sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		_ = k.Start(b)
	})
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "b,a" {
		t.Fatalf("order = %v", order)
	}
	if k.API().Preemptions() != 1 {
		t.Fatalf("preemptions = %d", k.API().Preemptions())
	}
}

func TestSleepWakeup(t *testing.T) {
	k, sim := newKernel(t, rtk.Config{Policy: rtk.PriorityPreemptive})
	var woke sysc.Time
	a := k.CreateTask("a", 5, func(task *rtk.Task) {
		task.Sleep()
		woke = sim.Now()
	})
	_ = k.Start(a)
	sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(7 * sysc.Ms)
		k.Wakeup(a)
	})
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if woke != 7*sysc.Ms {
		t.Fatalf("woke at %v", woke)
	}
}

func TestQueuedWakeup(t *testing.T) {
	k, sim := newKernel(t, rtk.Config{Policy: rtk.PriorityPreemptive})
	done := false
	a := k.CreateTask("a", 5, func(task *rtk.Task) {
		task.Work(core.Cost{Time: 3 * sysc.Ms}, "")
		task.Sleep() // wakeup already queued: returns immediately
		done = true
	})
	_ = k.Start(a)
	k.Wakeup(a) // task not sleeping yet
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("queued wakeup lost")
	}
}

func TestDelay(t *testing.T) {
	k, sim := newKernel(t, rtk.Config{Policy: rtk.PriorityPreemptive})
	var at sysc.Time
	a := k.CreateTask("a", 5, func(task *rtk.Task) {
		k.Delay(9 * sysc.Ms)
		at = sim.Now()
	})
	_ = k.Start(a)
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if at != 9*sysc.Ms {
		t.Fatalf("delay ended at %v", at)
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	k, sim := newKernel(t, rtk.Config{Policy: rtk.PriorityPreemptive})
	sem := k.NewSemaphore("items", 0)
	consumed := 0
	cons := k.CreateTask("cons", 5, func(task *rtk.Task) {
		for i := 0; i < 3; i++ {
			sem.Wait(task)
			consumed++
		}
	})
	prod := k.CreateTask("prod", 10, func(task *rtk.Task) {
		for i := 0; i < 3; i++ {
			task.Work(core.Cost{Time: 2 * sysc.Ms}, "produce")
			sem.Signal()
		}
	})
	_ = k.Start(cons)
	_ = k.Start(prod)
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if consumed != 3 {
		t.Fatalf("consumed = %d", consumed)
	}
	if sem.Count() != 0 {
		t.Fatalf("count = %d", sem.Count())
	}
}

func TestSameWorkloadBothPolicies(t *testing.T) {
	// The ablation scenario: identical task set on both kernels; the
	// round-robin kernel interleaves, the preemptive kernel runs strictly
	// by priority.
	runPolicy := func(p rtk.Policy) []string {
		sim := sysc.NewSimulator()
		defer sim.Shutdown()
		k := rtk.New(sim, rtk.Config{CommonOptions: opts.CommonOptions{TimeSlice: 2 * sysc.Ms}, Policy: p})
		var done []string
		for i, name := range []string{"hi", "mid", "lo"} {
			prio := (i + 1) * 10
			n := name
			task := k.CreateTask(n, prio, func(task *rtk.Task) {
				task.Work(core.Cost{Time: 4 * sysc.Ms}, "")
				done = append(done, n)
			})
			_ = k.Start(task)
		}
		if err := sim.Start(100 * sysc.Ms); err != nil {
			t.Fatal(err)
		}
		return done
	}
	pp := runPolicy(rtk.PriorityPreemptive)
	if strings.Join(pp, ",") != "hi,mid,lo" {
		t.Fatalf("priority order = %v", pp)
	}
	rr := runPolicy(rtk.RoundRobin)
	if len(rr) != 3 {
		t.Fatalf("round robin incomplete: %v", rr)
	}
	// Under RR with a 2 ms slice and 4 ms of work each, "hi" cannot
	// monopolize: completion order is FIFO-ish (first finisher is the
	// first enqueued), and total time is shared.
	if strings.Join(rr, ",") != "hi,mid,lo" {
		// acceptable: rotation preserves start order for equal work
		t.Logf("rr order = %v", rr)
	}
}

func TestPolicyString(t *testing.T) {
	if !strings.Contains(rtk.RoundRobin.String(), "round-robin") {
		t.Fatal(rtk.RoundRobin.String())
	}
	if !strings.Contains(rtk.PriorityPreemptive.String(), "preemptive") {
		t.Fatal(rtk.PriorityPreemptive.String())
	}
}
