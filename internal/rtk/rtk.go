// Package rtk implements RTK-Spec I and RTK-Spec II, the two user-defined
// kernel specifications the paper built with SIM_API (before RTK-Spec TRON)
// to guarantee the library's coverage of real RTOS dynamics. Both target
// 8051-class micro-controllers:
//
//   - RTK-Spec I: a round-robin scheduler — tasks share the CPU in FIFO
//     order and the kernel rotates the ready queue on every time slice.
//   - RTK-Spec II: a priority-based preemptive scheduler.
//
// The kernels expose a deliberately small API (create/start tasks,
// sleep/wakeup, delay, a counting semaphore) — the point is that the same
// SIM_API constructs (T-THREADs, dispatching, preemption, the interrupt
// stack) drive all three kernel models unchanged.
package rtk

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/run/opts"
	"repro/internal/sched"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// Policy selects the kernel specification.
type Policy int

// Kernel policies.
const (
	// RoundRobin is RTK-Spec I: FIFO queue, time-sliced.
	RoundRobin Policy = iota
	// PriorityPreemptive is RTK-Spec II.
	PriorityPreemptive
)

// String names the policy.
func (p Policy) String() string {
	if p == RoundRobin {
		return "RTK-Spec I (round-robin)"
	}
	return "RTK-Spec II (priority-preemptive)"
}

// Config parameterizes a kernel instance. The embedded CommonOptions carry
// the cross-kernel knobs: Tick is the system tick (default 1 ms), TimeSlice
// the round-robin quantum (RTK-Spec I; default 5 ms), Bus/Gantt the
// observability wiring.
type Config struct {
	opts.CommonOptions

	// Policy selects RTK-Spec I or II.
	Policy Policy
	// TickSource optionally drives the kernel from an external clock
	// (e.g. the BFM RTC).
	TickSource *sysc.Event
	// ServiceCost is charged per kernel call (default zero).
	ServiceCost core.Cost
}

// Task is an RTK task handle.
type Task struct {
	ID   int
	Name string
	tt   *core.TThread
	k    *RTK
	wup  int
}

// RTK is one kernel instance (RTK-Spec I or II).
type RTK struct {
	sim    *sysc.Simulator
	api    *core.SimAPI
	cfg    Config
	tasks  []*Task
	ticks  uint64
	slices uint64
}

// New builds a kernel over the simulator with its policy's scheduler.
func New(sim *sysc.Simulator, cfg Config) *RTK {
	if cfg.Tick <= 0 {
		cfg.Tick = 1 * sysc.Ms
	}
	if cfg.TimeSlice <= 0 {
		cfg.TimeSlice = 5 * sysc.Ms
	}
	var s core.Scheduler
	if cfg.Policy == RoundRobin {
		s = sched.NewRoundRobin()
	} else {
		s = sched.NewPriority()
	}
	k := &RTK{sim: sim, cfg: cfg}
	bus := cfg.Bus
	if bus == nil {
		bus = event.NewBus()
	}
	event.AttachSimulator(bus, sim)
	if cfg.Gantt != nil {
		trace.AttachGantt(bus, cfg.Gantt)
	}
	k.api = core.NewSimAPI(sim, s, bus)

	tickEv := cfg.TickSource
	if tickEv == nil {
		tickEv = sysc.NewTicker(sim, "rtk.tick", cfg.Tick).Event()
	}
	sliceTicks := int(cfg.TimeSlice / cfg.Tick)
	if sliceTicks < 1 {
		sliceTicks = 1
	}
	n := 0
	sim.SpawnMethod("rtk.tick_handler", func() {
		k.ticks++
		if cfg.Policy == RoundRobin {
			n++
			if n >= sliceTicks {
				n = 0
				k.slices++
				k.api.YieldCurrent()
			}
		}
	}, tickEv)
	return k
}

// API exposes the SIM_API instance.
func (k *RTK) API() *core.SimAPI { return k.api }

// Ticks returns the number of processed ticks.
func (k *RTK) Ticks() uint64 { return k.ticks }

// Slices returns the number of round-robin rotations performed.
func (k *RTK) Slices() uint64 { return k.slices }

// CreateTask registers a task. Priority is ignored under RTK-Spec I.
func (k *RTK) CreateTask(name string, priority int, body func(*Task)) *Task {
	t := &Task{ID: len(k.tasks) + 1, Name: name, k: k}
	t.tt = k.api.CreateThread(name, core.KindTask, priority, func(tt *core.TThread) {
		body(t)
	})
	t.tt.SetExinf(t)
	k.tasks = append(k.tasks, t)
	return t
}

// Start makes a dormant task ready.
func (k *RTK) Start(t *Task) error {
	k.charge("start")
	return k.api.Activate(t.tt)
}

// charge books the kernel service cost on the calling thread.
func (k *RTK) charge(name string) {
	if k.cfg.ServiceCost == (core.Cost{}) {
		return
	}
	if tt := k.api.ExecutingThread(); tt != nil {
		tt.Consume(k.cfg.ServiceCost, trace.CtxService, "rtk_"+name)
	}
}

// Work consumes application execution time in the calling task.
func (t *Task) Work(c core.Cost, note string) {
	t.tt.Consume(c, trace.CtxTask, note)
}

// Sleep blocks the calling task until Wakeup; a queued wakeup returns
// immediately.
func (t *Task) Sleep() {
	t.k.charge("sleep")
	if t.wup > 0 {
		t.wup--
		return
	}
	_ = t.k.api.BlockCurrent(fmt.Sprintf("rtk.sleep#%d", t.ID))
}

// Wakeup releases a sleeping task (queues if not sleeping yet).
func (k *RTK) Wakeup(t *Task) {
	k.charge("wakeup")
	if !k.api.Release(t.tt, nil) {
		t.wup++
	}
}

// Delay suspends the calling task for d (tick granularity).
func (k *RTK) Delay(d sysc.Time) {
	k.charge("delay")
	cur := k.api.Current()
	if cur == nil {
		return
	}
	ev := k.sim.NewEvent("rtk.delay")
	target, _ := cur.Exinf().(*Task)
	k.sim.SpawnMethod("rtk.delay_wake", func() {
		if target != nil {
			k.Wakeup(target)
		}
	}, ev)
	ev.NotifyAfter(d)
	if target != nil {
		target.Sleep()
	}
}

// Semaphore is a counting semaphore with a FIFO wait queue.
type Semaphore struct {
	k     *RTK
	name  string
	count int
	q     []*Task
}

// NewSemaphore creates a semaphore with an initial count.
func (k *RTK) NewSemaphore(name string, init int) *Semaphore {
	return &Semaphore{k: k, name: name, count: init}
}

// Wait acquires one unit, blocking while the count is zero.
func (s *Semaphore) Wait(t *Task) {
	s.k.charge("sem_wait")
	if s.count > 0 && len(s.q) == 0 {
		s.count--
		return
	}
	s.q = append(s.q, t)
	_ = s.k.api.BlockCurrent("rtk.sem." + s.name)
}

// Signal releases one unit, handing it to the queue head if any.
func (s *Semaphore) Signal() {
	s.k.charge("sem_signal")
	if len(s.q) > 0 {
		head := s.q[0]
		s.q = s.q[1:]
		s.k.api.Release(head.tt, nil)
		return
	}
	s.count++
}

// Count returns the current resource count.
func (s *Semaphore) Count() int { return s.count }

// State reports a task's scheduling state.
func (t *Task) State() core.State { return t.tt.State() }

// CET returns the task's consumed execution time.
func (t *Task) CET() sysc.Time { return t.tt.CET() }

// TThread exposes the underlying T-THREAD.
func (t *Task) TThread() *core.TThread { return t.tt }
