package bfm

import "repro/internal/sysc"

// SerialIO models the 8051 serial channel (SBUF/SCON) in mode-1 style:
// writing SBUF costs one machine cycle, transmission of the 10-bit frame
// takes 10/baud seconds of line time, and frame completion raises the
// serial interrupt line. Received bytes are buffered and also raise the
// interrupt.
type SerialIO struct {
	b        *BFM
	baud     int
	frame    sysc.Time // line time of one 10-bit frame
	intLine  int
	busyTill sysc.Time
	txCount  uint64

	rx []byte

	txLog []byte // everything transmitted, for inspection/tests
}

// SerialIntLine is the interrupt line used by the serial channel (8051 TI/RI).
const SerialIntLine = 4

func newSerialIO(b *BFM, baud int) *SerialIO {
	return &SerialIO{
		b:       b,
		baud:    baud,
		frame:   sysc.Time(int64(sysc.Sec) * 10 / int64(baud)),
		intLine: SerialIntLine,
	}
}

// FrameTime returns the line time of one transmitted byte (10 bits).
func (s *SerialIO) FrameTime() sysc.Time { return s.frame }

// TxBusy reports whether the transmitter is still shifting a frame out.
func (s *SerialIO) TxBusy() bool { return s.b.sim.Now() < s.busyTill }

// Send writes one byte to SBUF (1 machine cycle for the store). The frame
// occupies the line for FrameTime; completion raises the serial interrupt.
// Sending while busy drops the previous frame tail (overrun) exactly like
// overwriting SBUF.
func (s *SerialIO) Send(v byte) {
	s.b.call(1, "sbuf.wr")
	s.b.probe("sbuf.tx", uint64(v))
	now := s.b.sim.Now()
	start := now
	if s.busyTill > now {
		start = s.busyTill
	}
	s.busyTill = start + s.frame
	s.txCount++
	s.txLog = append(s.txLog, v)
	done := s.b.sim.NewEvent("serial.txdone")
	s.b.sim.SpawnMethod("serial.ti", func() {
		s.b.IntC.Raise(s.intLine)
	}, done)
	done.NotifyAfter(s.busyTill - now)
}

// SendString queues each byte of msg in order.
func (s *SerialIO) SendString(msg string) {
	for i := 0; i < len(msg); i++ {
		s.Send(msg[i])
	}
}

// InjectRx delivers a byte from the external line into the receive buffer
// (hardware side; no CPU cycles) and raises the serial interrupt.
func (s *SerialIO) InjectRx(v byte) {
	s.rx = append(s.rx, v)
	s.b.probe("sbuf.rx", uint64(v))
	s.b.IntC.Raise(s.intLine)
}

// Recv reads one received byte from SBUF (1 machine cycle); ok is false
// when the buffer is empty.
func (s *SerialIO) Recv() (v byte, ok bool) {
	s.b.call(1, "sbuf.rd")
	if len(s.rx) == 0 {
		return 0, false
	}
	v = s.rx[0]
	s.rx = s.rx[1:]
	return v, true
}

// RxPending returns the number of received bytes not yet read.
func (s *SerialIO) RxPending() int { return len(s.rx) }

// TxCount returns the number of bytes transmitted.
func (s *SerialIO) TxCount() uint64 { return s.txCount }

// TxLog returns a copy of everything transmitted so far.
func (s *SerialIO) TxLog() []byte {
	out := make([]byte, len(s.txLog))
	copy(out, s.txLog)
	return out
}
