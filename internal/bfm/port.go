package bfm

import "fmt"

// Peripheral is an external device attached to a parallel I/O port. The
// port forwards written values to the device and reads the device's output
// latch.
type Peripheral interface {
	// Name identifies the device in traces.
	Name() string
	// PortWrite receives a value driven onto the port.
	PortWrite(v byte)
	// PortRead returns the value the device drives back.
	PortRead() byte
}

// Port is one multiplexed parallel I/O port (P0..P3). Several peripheral
// devices can be attached; a select register multiplexes which device the
// data lines address, as in the case study's "Multiplexed Parallel I/O
// interface to which several external peripheral devices are connected".
type Port struct {
	b       *BFM
	index   int
	latch   byte
	devices []Peripheral
	sel     int

	writes uint64
	reads  uint64
}

func newPort(b *BFM, index int) *Port {
	return &Port{b: b, index: index}
}

// Attach connects a peripheral and returns its select index.
func (p *Port) Attach(dev Peripheral) int {
	p.devices = append(p.devices, dev)
	return len(p.devices) - 1
}

// Select multiplexes the port onto the given attached device
// (1 machine cycle to write the select register).
func (p *Port) Select(idx int) {
	p.b.call(1, fmt.Sprintf("p%d.sel", p.index))
	if idx >= 0 && idx < len(p.devices) {
		p.sel = idx
	}
}

// Write drives a value onto the port (1 machine cycle) and forwards it to
// the selected peripheral.
func (p *Port) Write(v byte) {
	p.b.call(1, fmt.Sprintf("p%d.wr", p.index))
	p.latch = v
	p.writes++
	p.b.probe(fmt.Sprintf("p%d", p.index), uint64(v))
	if p.sel < len(p.devices) {
		p.devices[p.sel].PortWrite(v)
	}
}

// Read samples the port (1 machine cycle): the selected peripheral's output
// if any device is attached, else the latch.
func (p *Port) Read() byte {
	p.b.call(1, fmt.Sprintf("p%d.rd", p.index))
	p.reads++
	if p.sel < len(p.devices) {
		return p.devices[p.sel].PortRead()
	}
	return p.latch
}

// Latch returns the last written value without bus activity (for tests and
// waveform rendering).
func (p *Port) Latch() byte { return p.latch }

// Writes returns the number of write accesses.
func (p *Port) Writes() uint64 { return p.writes }

// Reads returns the number of read accesses.
func (p *Port) Reads() uint64 { return p.reads }
