package bfm_test

import (
	"testing"

	"repro/internal/bfm"
	"repro/internal/sysc"
)

func TestRTLBusReadAfterWrite(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	bus := bfm.NewRTLBus(sim, "bus", 2*sysc.Us, 256)
	var got byte
	sim.Spawn("master", func(th *sysc.Thread) {
		bus.Write(th, 0x42, 0xA7)
		got = bus.Read(th, 0x42)
	})
	if err := sim.Start(sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if got != 0xA7 {
		t.Fatalf("read = %#x", got)
	}
	if bus.Peek(0x42) != 0xA7 {
		t.Fatal("slave memory not written")
	}
	if bus.Transfers() != 2 {
		t.Fatalf("transfers = %d", bus.Transfers())
	}
}

func TestRTLBusHandshakeTiming(t *testing.T) {
	// Each transfer takes a bounded number of clock cycles: the handshake
	// needs one edge to ack and one to drop, so a transfer completes
	// within 2-3 clock periods, deterministically.
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	const period = 10 * sysc.Us
	bus := bfm.NewRTLBus(sim, "bus", period, 64)
	var perTransfer []sysc.Time
	sim.Spawn("master", func(th *sysc.Thread) {
		for i := 0; i < 4; i++ {
			start := th.Now()
			bus.Write(th, uint16(i), byte(i))
			perTransfer = append(perTransfer, th.Now()-start)
		}
	})
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if len(perTransfer) != 4 {
		t.Fatalf("transfers = %v", perTransfer)
	}
	for i, d := range perTransfer {
		if d < period || d > 3*period {
			t.Fatalf("transfer %d took %v (period %v)", i, d, period)
		}
	}
	// Steady-state transfers all take the same time (cycle accuracy).
	for i := 2; i < len(perTransfer); i++ {
		if perTransfer[i] != perTransfer[1] {
			t.Fatalf("jitter: %v", perTransfer)
		}
	}
}

func TestRTLBusBackToBackTransfersStayDistinct(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	bus := bfm.NewRTLBus(sim, "bus", sysc.Us, 256)
	ok := true
	sim.Spawn("master", func(th *sysc.Thread) {
		for i := 0; i < 16; i++ {
			bus.Write(th, uint16(i), byte(0x80|i))
		}
		for i := 0; i < 16; i++ {
			if bus.Read(th, uint16(i)) != byte(0x80|i) {
				ok = false
			}
		}
	})
	if err := sim.Start(sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("back-to-back transfers corrupted data")
	}
	if bus.Transfers() != 32 {
		t.Fatalf("transfers = %d", bus.Transfers())
	}
}

func TestRTLvsTLMSameDataDifferentFidelity(t *testing.T) {
	// The paper's point: the BFM can be modeled at TLM (cycle budgets) or
	// RTL (explicit signals). Both must deliver identical data; the RTL
	// path costs simulation events per transfer, the TLM path costs none.
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	tlm := bfm.New(sim, nil, bfm.DefaultConfig())
	rtl := bfm.NewRTLBus(sim, "bus", sysc.Us, 1024)
	mismatch := false
	sim.Spawn("master", func(th *sysc.Thread) {
		for i := 0; i < 32; i++ {
			v := byte(3*i + 1)
			tlm.Mem.Write(uint16(i), v)
			rtl.Write(th, uint16(i), v)
		}
		for i := 0; i < 32; i++ {
			if tlm.Mem.Read(uint16(i)) != rtl.Read(th, uint16(i)) {
				mismatch = true
			}
		}
	})
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if mismatch {
		t.Fatal("TLM and RTL memories disagree")
	}
}
