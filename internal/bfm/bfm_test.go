package bfm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bfm"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sysc"
	"repro/internal/trace"
)

func newBFM(t *testing.T) (*bfm.BFM, *sysc.Simulator) {
	t.Helper()
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	return bfm.New(sim, nil, bfm.DefaultConfig()), sim
}

func TestMachineCycleTiming(t *testing.T) {
	b, _ := newBFM(t)
	// 12 MHz / 12 clocks = 1 us machine cycle.
	if b.MachineCycle() != sysc.Us {
		t.Fatalf("machine cycle = %v, want 1 us", b.MachineCycle())
	}
}

func TestXRAMReadWrite(t *testing.T) {
	b, _ := newBFM(t)
	b.Mem.Write(0x1234, 0xAB)
	if got := b.Mem.Read(0x1234); got != 0xAB {
		t.Fatalf("read = %#x", got)
	}
	if got := b.Mem.Read(0x0000); got != 0 {
		t.Fatalf("uninitialized = %#x", got)
	}
	if b.Accesses() != 3 {
		t.Fatalf("accesses = %d", b.Accesses())
	}
	if b.BusCycles() != 6 { // 2 cycles per MOVX
		t.Fatalf("cycles = %d", b.BusCycles())
	}
}

func TestXRAMBlockOps(t *testing.T) {
	b, _ := newBFM(t)
	data := []byte{1, 2, 3, 4, 5}
	b.Mem.WriteBlock(0x100, data)
	got := b.Mem.ReadBlock(0x100, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("block mismatch at %d: %v", i, got)
		}
	}
	if b.BusCycles() != 20 {
		t.Fatalf("cycles = %d, want 20", b.BusCycles())
	}
}

// Property: XRAM stores and returns arbitrary byte/address pairs (last
// write wins).
func TestPropertyXRAMLastWriteWins(t *testing.T) {
	f := func(writes []struct {
		A uint16
		V byte
	}) bool {
		sim := sysc.NewSimulator()
		defer sim.Shutdown()
		b := bfm.New(sim, nil, bfm.DefaultConfig())
		last := map[uint16]byte{}
		for _, w := range writes {
			b.Mem.Write(w.A, w.V)
			last[w.A] = w.V
		}
		for a, v := range last {
			if b.Mem.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBFMCallChargesCallingThread(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	api := core.NewSimAPI(sim, sched.NewPriority(), nil)
	b := bfm.New(sim, api, bfm.DefaultConfig())
	task := api.CreateThread("io-task", core.KindTask, 10, func(tt *core.TThread) {
		b.Mem.Write(0x10, 1) // 2 cycles = 2 us
		b.Mem.Read(0x10)     // 2 cycles
		b.Ports[1].Write(7)  // 1 cycle
	})
	_ = api.Activate(task)
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if task.CET() != 5*sysc.Us {
		t.Fatalf("CET = %v, want 5 us", task.CET())
	}
	if task.CEE() == 0 {
		t.Fatal("no energy charged")
	}
}

func TestRTCDrivesTicks(t *testing.T) {
	b, sim := newBFM(t)
	n := 0
	sim.SpawnMethod("count", func() { n++ }, b.RTC.TickEvent())
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestInterruptControllerEnableLatch(t *testing.T) {
	b, _ := newBFM(t)
	var got []int
	b.IntC.SetSink(func(line int) { got = append(got, line) })
	b.IntC.Raise(3) // not enabled: latched
	if len(got) != 0 || !b.IntC.Pending(3) {
		t.Fatal("disabled raise should latch")
	}
	b.IntC.EnableLine(3) // delivers the latched request
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("got %v", got)
	}
	b.IntC.Raise(3)
	if len(got) != 2 {
		t.Fatal("enabled raise should deliver")
	}
	b.IntC.DisableLine(3)
	b.IntC.Raise(3)
	if len(got) != 2 {
		t.Fatal("masked raise delivered")
	}
}

func TestInterruptGlobalEnable(t *testing.T) {
	b, _ := newBFM(t)
	n := 0
	b.IntC.SetSink(func(int) { n++ })
	b.IntC.EnableLine(1)
	b.IntC.SetGlobalEnable(false)
	b.IntC.Raise(1)
	if n != 0 {
		t.Fatal("EA=0 should mask")
	}
	b.IntC.SetGlobalEnable(true)
	if n != 1 {
		t.Fatal("latched request not delivered on EA=1")
	}
}

func TestSerialTransmitTiming(t *testing.T) {
	b, sim := newBFM(t)
	ti := 0
	b.IntC.SetSink(func(line int) {
		if line == bfm.SerialIntLine {
			ti++
		}
	})
	b.IntC.EnableLine(bfm.SerialIntLine)
	// 9600 baud, 10 bits: ~1.0417 ms per frame.
	want := b.Serial.FrameTime()
	if want <= sysc.Ms || want >= 2*sysc.Ms {
		t.Fatalf("frame time = %v", want)
	}
	b.Serial.Send('A')
	if !b.Serial.TxBusy() {
		t.Fatal("transmitter should be busy")
	}
	if err := sim.Start(5 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if ti != 1 {
		t.Fatalf("TI interrupts = %d", ti)
	}
	if b.Serial.TxBusy() {
		t.Fatal("transmitter still busy")
	}
	if string(b.Serial.TxLog()) != "A" {
		t.Fatalf("tx log = %q", b.Serial.TxLog())
	}
}

func TestSerialBackToBackFrames(t *testing.T) {
	b, sim := newBFM(t)
	ti := 0
	b.IntC.SetSink(func(int) { ti++ })
	b.IntC.EnableLine(bfm.SerialIntLine)
	b.Serial.SendString("hey")
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if ti != 3 {
		t.Fatalf("TI = %d, want 3", ti)
	}
	if b.Serial.TxCount() != 3 {
		t.Fatalf("tx count = %d", b.Serial.TxCount())
	}
}

func TestSerialReceive(t *testing.T) {
	b, _ := newBFM(t)
	ri := 0
	b.IntC.SetSink(func(int) { ri++ })
	b.IntC.EnableLine(bfm.SerialIntLine)
	b.Serial.InjectRx('x')
	if ri != 1 || b.Serial.RxPending() != 1 {
		t.Fatalf("ri=%d pending=%d", ri, b.Serial.RxPending())
	}
	v, ok := b.Serial.Recv()
	if !ok || v != 'x' {
		t.Fatalf("recv = %c %v", v, ok)
	}
	if _, ok := b.Serial.Recv(); ok {
		t.Fatal("empty recv should fail")
	}
}

func TestPortPeripheralMux(t *testing.T) {
	b, _ := newBFM(t)
	lcd := bfm.NewLCD(2, 16)
	ssd := bfm.NewSSD()
	p := b.Ports[2]
	iLCD := p.Attach(lcd)
	iSSD := p.Attach(ssd)
	p.Select(iLCD)
	p.Write('H')
	p.Write('i')
	p.Select(iSSD)
	p.Write(0x05) // digit 0 = 5
	if got := lcd.Render(); !strings.HasPrefix(got, "Hi") {
		t.Fatalf("lcd = %q", got)
	}
	if ssd.Render() != "5---" {
		t.Fatalf("ssd = %q", ssd.Render())
	}
}

func TestLCDProtocol(t *testing.T) {
	lcd := bfm.NewLCD(2, 16)
	for _, c := range []byte("GAME") {
		lcd.PortWrite(c)
	}
	lcd.PortWrite(0x80 | 16) // cursor to row 1, col 0
	for _, c := range []byte("OVER") {
		lcd.PortWrite(c)
	}
	lines := strings.Split(lcd.Render(), "\n")
	if !strings.HasPrefix(lines[0], "GAME") || !strings.HasPrefix(lines[1], "OVER") {
		t.Fatalf("render:\n%s", lcd.Render())
	}
	lcd.PortWrite(0x01) // clear
	if strings.TrimSpace(lcd.Render()) != "" {
		t.Fatal("clear failed")
	}
	if lcd.Frames() != 1 {
		t.Fatalf("frames = %d", lcd.Frames())
	}
}

func TestKeypadRaisesInterrupt(t *testing.T) {
	b, _ := newBFM(t)
	var lines []int
	b.IntC.SetSink(func(l int) { lines = append(lines, l) })
	b.IntC.EnableLine(bfm.KeypadIntLine)
	pad := bfm.NewKeypad(b.IntC)
	b.Ports[1].Attach(pad)
	pad.Press(7)
	if len(lines) != 1 || lines[0] != bfm.KeypadIntLine {
		t.Fatalf("lines = %v", lines)
	}
	if got := b.Ports[1].Read(); got != 7 {
		t.Fatalf("key read = %d", got)
	}
}

func TestSSDValue(t *testing.T) {
	ssd := bfm.NewSSD()
	ssd.PortWrite(0x01) // digit0=1
	ssd.PortWrite(0x12) // digit1=2
	ssd.PortWrite(0x23) // digit2=3
	ssd.PortWrite(0x34) // digit3=4
	if ssd.Value() != 1234 {
		t.Fatalf("value = %d", ssd.Value())
	}
	if ssd.Render() != "1234" {
		t.Fatalf("render = %q", ssd.Render())
	}
}

func TestSerialBusyQueuesNextFrame(t *testing.T) {
	// Writing SBUF while a frame is shifting queues the next frame after
	// the current one (busyTill extends), so total line time is 2 frames.
	b, sim := newBFM(t)
	b.Serial.Send('a')
	b.Serial.Send('b') // queued behind the first frame
	if err := sim.Start(1 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if !b.Serial.TxBusy() {
		t.Fatal("should still be shifting after 1 ms")
	}
	if err := sim.Start(3 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if b.Serial.TxBusy() {
		t.Fatal("both frames should be out after ~2.1 ms")
	}
	if string(b.Serial.TxLog()) != "ab" {
		t.Fatalf("log = %q", b.Serial.TxLog())
	}
}

func TestPortSelectBounds(t *testing.T) {
	b, _ := newBFM(t)
	p := b.Ports[0]
	lcd := bfm.NewLCD(1, 8)
	p.Attach(lcd)
	p.Select(99) // out of range: ignored
	p.Write('X')
	if lcd.Writes() != 1 {
		t.Fatalf("write did not reach device after bad select: %d", lcd.Writes())
	}
	if p.Writes() != 1 || p.Latch() != 'X' {
		t.Fatalf("port bookkeeping: writes=%d latch=%q", p.Writes(), p.Latch())
	}
}

func TestVCDProbesBFMTraffic(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	vcd := trace.NewVCD()
	cfg := bfm.DefaultConfig()
	cfg.VCD = vcd
	b := bfm.New(sim, nil, cfg)
	b.Mem.Write(0x42, 0x99)
	b.Ports[0].Write(0x55)
	if vcd.Len() < 3 {
		t.Fatalf("vcd changes = %d", vcd.Len())
	}
	var sb strings.Builder
	vcd.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "$enddefinitions") || !strings.Contains(out, "xram.addr") {
		t.Fatalf("vcd output malformed:\n%s", out)
	}
}
