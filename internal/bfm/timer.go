package bfm

import (
	"fmt"

	"repro/internal/sysc"
)

// Timer models one of the 8051 on-chip timer/counters in the two software
// modes the kernel cares about: mode 1 (16-bit, overflow interrupt, reload
// by software) and mode 2 (8-bit auto-reload — the classic baud/tick
// generator). The timer counts machine cycles; on overflow it raises its
// interrupt line through the interrupt controller.
//
// It is evaluated lazily: instead of an event per count, the overflow
// instant is scheduled directly, so a running timer costs one simulation
// event per overflow (the same abstraction the RTC uses), while the
// register interface (THx/TLx/TRx) behaves like the hardware's.
type Timer struct {
	b       *BFM
	index   int // 0 or 1
	intLine int

	mode    int // 1 = 16-bit, 2 = 8-bit auto-reload
	running bool
	reload  uint16 // TH:TL at the last start (mode 2: TH only)
	started sysc.Time
	gen     int // invalidates scheduled overflows on stop/rewrite

	overflows uint64
}

// Timer interrupt lines (8051 vectors order: INT0=0, T0=1, INT1=2, T1=3).
const (
	Timer0IntLine = 1
	Timer1IntLine = 3
)

// NewTimer creates timer 0 or 1 wired to the BFM's interrupt controller.
func NewTimer(b *BFM, index int) *Timer {
	line := Timer0IntLine
	if index != 0 {
		line = Timer1IntLine
	}
	return &Timer{b: b, index: index, intLine: line, mode: 1}
}

// SetMode selects mode 1 (16-bit) or mode 2 (8-bit auto-reload); TMOD write
// costs one machine cycle.
func (t *Timer) SetMode(mode int) error {
	t.b.call(1, fmt.Sprintf("tmod.t%d", t.index))
	if mode != 1 && mode != 2 {
		return fmt.Errorf("bfm: timer mode %d not supported (1 or 2)", mode)
	}
	t.mode = mode
	return nil
}

// Load writes TH:TL (one machine cycle each on real hardware; merged here).
func (t *Timer) Load(value uint16) {
	t.b.call(2, fmt.Sprintf("thl.t%d", t.index))
	t.reload = value
	if t.running {
		t.restart()
	}
}

// Start sets TRx: the timer counts machine cycles from its current load.
func (t *Timer) Start() {
	t.b.call(1, fmt.Sprintf("tcon.tr%d", t.index))
	if t.running {
		return
	}
	t.running = true
	t.restart()
}

// Stop clears TRx.
func (t *Timer) Stop() {
	t.b.call(1, fmt.Sprintf("tcon.tr%d", t.index))
	t.running = false
	t.gen++
}

// Running reports TRx.
func (t *Timer) Running() bool { return t.running }

// Overflows returns the number of overflow interrupts raised.
func (t *Timer) Overflows() uint64 { return t.overflows }

// PeriodMode2 returns the overflow period in mode 2 for the current reload.
func (t *Timer) PeriodMode2() sysc.Time {
	return sysc.Time(256-int64(t.reload&0xFF)) * t.b.machineCycle
}

// restart schedules the next overflow from now.
func (t *Timer) restart() {
	t.gen++
	gen := t.gen
	var until sysc.Time
	if t.mode == 2 {
		until = sysc.Time(256-int64(t.reload&0xFF)) * t.b.machineCycle
	} else {
		until = sysc.Time(0x10000-int64(t.reload)) * t.b.machineCycle
	}
	ev := t.b.sim.NewEvent(fmt.Sprintf("t%d.ovf", t.index))
	t.b.sim.SpawnMethod(fmt.Sprintf("t%d.ovfm", t.index), func() {
		if !t.running || t.gen != gen {
			return
		}
		t.overflows++
		t.b.IntC.Raise(t.intLine)
		if t.mode == 2 {
			t.restart() // auto-reload
		} else {
			// Mode 1 rolls over to 0 and keeps counting a full period
			// until software reloads.
			t.reload = 0
			t.restart()
		}
	}, ev)
	ev.NotifyAfter(until)
}
