package bfm

// InterruptController models the 8051 interrupt controller: numbered
// request lines with per-line enable bits and a global enable (EA). A raise
// on an enabled line invokes the attached sink — typically the kernel's
// Interrupt Dispatch (RaiseInterrupt) — at the current simulation time.
// Raises on disabled lines are latched and delivered on enable, as the
// 8051's level-latched IE flags do.
type InterruptController struct {
	b       *BFM
	sink    func(line int)
	enabled map[int]bool
	latched map[int]bool
	ea      bool // global enable

	raised  uint64
	dropped uint64
}

func newInterruptController(b *BFM) *InterruptController {
	return &InterruptController{
		b:       b,
		enabled: map[int]bool{},
		latched: map[int]bool{},
		ea:      true,
	}
}

// SetSink connects the controller to the software side (the kernel's
// interrupt dispatch).
func (c *InterruptController) SetSink(fn func(line int)) { c.sink = fn }

// EnableLine unmasks a request line; a latched pending request fires
// immediately.
func (c *InterruptController) EnableLine(line int) {
	c.b.call(1, "ie.set")
	c.enabled[line] = true
	c.deliverLatched(line)
}

// DisableLine masks a request line.
func (c *InterruptController) DisableLine(line int) {
	c.b.call(1, "ie.clr")
	c.enabled[line] = false
}

// SetGlobalEnable sets the EA bit; enabling delivers all latched requests.
func (c *InterruptController) SetGlobalEnable(on bool) {
	c.b.call(1, "ea")
	c.ea = on
	if on {
		for line, pending := range c.latched {
			if pending && c.enabled[line] {
				c.deliverLatched(line)
			}
		}
	}
}

// Raise asserts an interrupt request line from the hardware side (no CPU
// cycles are charged — this is the peripheral's doing).
func (c *InterruptController) Raise(line int) {
	c.b.probe("int.req", uint64(line))
	if !c.ea || !c.enabled[line] {
		c.latched[line] = true
		return
	}
	c.fire(line)
}

func (c *InterruptController) deliverLatched(line int) {
	if c.ea && c.enabled[line] && c.latched[line] {
		c.latched[line] = false
		c.fire(line)
	}
}

func (c *InterruptController) fire(line int) {
	c.raised++
	if c.sink != nil {
		c.sink(line)
	} else {
		c.dropped++
	}
}

// Raised returns the number of delivered interrupt requests.
func (c *InterruptController) Raised() uint64 { return c.raised }

// Dropped returns requests delivered with no sink attached.
func (c *InterruptController) Dropped() uint64 { return c.dropped }

// Pending reports whether a latched (undelivered) request exists on line.
func (c *InterruptController) Pending(line int) bool { return c.latched[line] }
