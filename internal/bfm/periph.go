package bfm

import "strings"

// LCD is a character LCD (HD44780-style, 2 lines × 16 columns) driven over
// a parallel port with a tiny command protocol:
//
//	0x01        clear display, home cursor
//	0x80|addr   set cursor (addr = row*16+col, addr < 32)
//	other       write the byte as a character at the cursor, advance
//
// The video-game task T1 animates frames by re-writing the display.
type LCD struct {
	rows, cols int
	grid       [][]byte
	cursor     int
	frames     uint64 // completed clear-to-clear frames
	writes     uint64
	observer   func() // GUI widget refresh hook
}

// NewLCD creates a rows×cols character LCD.
func NewLCD(rows, cols int) *LCD {
	l := &LCD{rows: rows, cols: cols}
	l.grid = make([][]byte, rows)
	for i := range l.grid {
		l.grid[i] = make([]byte, cols)
		for j := range l.grid[i] {
			l.grid[i][j] = ' '
		}
	}
	return l
}

// Name implements Peripheral.
func (l *LCD) Name() string { return "lcd" }

// PortWrite implements Peripheral: decode the LCD protocol.
func (l *LCD) PortWrite(v byte) {
	l.writes++
	switch {
	case v == 0x01:
		for i := range l.grid {
			for j := range l.grid[i] {
				l.grid[i][j] = ' '
			}
		}
		l.cursor = 0
		l.frames++
	case v&0x80 != 0:
		addr := int(v &^ 0x80)
		if addr < l.rows*l.cols {
			l.cursor = addr
		}
	default:
		r, c := l.cursor/l.cols, l.cursor%l.cols
		if r < l.rows {
			l.grid[r][c] = v
		}
		l.cursor = (l.cursor + 1) % (l.rows * l.cols)
	}
	if l.observer != nil {
		l.observer()
	}
}

// PortRead implements Peripheral: busy flag always clear, return cursor.
func (l *LCD) PortRead() byte { return byte(l.cursor) }

// Render returns the display contents as text lines.
func (l *LCD) Render() string {
	var b strings.Builder
	for i, row := range l.grid {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.Write(row)
	}
	return b.String()
}

// Frames returns the number of clear commands processed (animation frames).
func (l *LCD) Frames() uint64 { return l.frames }

// Writes returns the number of bytes written to the device.
func (l *LCD) Writes() uint64 { return l.writes }

// SetObserver registers a hook invoked on every device write (the GUI
// widget wrapping the peripheral).
func (l *LCD) SetObserver(fn func()) { l.observer = fn }

// Keypad is a 4×4 matrix keypad. The hardware side injects key presses
// (GUI events); a press raises the keypad interrupt line through the
// interrupt controller, and the software reads the key code from the port.
type Keypad struct {
	intc    *InterruptController
	line    int
	last    byte
	pressed uint64
}

// KeypadIntLine is the interrupt line the keypad asserts (8051 INT0).
const KeypadIntLine = 0

// NewKeypad creates a keypad wired to the interrupt controller.
func NewKeypad(intc *InterruptController) *Keypad {
	return &Keypad{intc: intc, line: KeypadIntLine}
}

// Name implements Peripheral.
func (k *Keypad) Name() string { return "keypad" }

// Press injects a key (0..15) from the user/GUI side and asserts INT0.
func (k *Keypad) Press(key byte) {
	k.last = key & 0x0F
	k.pressed++
	if k.intc != nil {
		k.intc.Raise(k.line)
	}
}

// PortWrite implements Peripheral (row-scan strobe; ignored in this model).
func (k *Keypad) PortWrite(byte) {}

// PortRead implements Peripheral: the last pressed key code.
func (k *Keypad) PortRead() byte { return k.last }

// Pressed returns the number of injected key presses.
func (k *Keypad) Pressed() uint64 { return k.pressed }

// SSD is a 4-digit seven-segment display. Writes encode digit position in
// the high nibble and value in the low nibble.
type SSD struct {
	digits   [4]byte
	writes   uint64
	observer func()
}

// NewSSD creates the display with all digits blank (0xF).
func NewSSD() *SSD {
	s := &SSD{}
	for i := range s.digits {
		s.digits[i] = 0xF
	}
	return s
}

// Name implements Peripheral.
func (s *SSD) Name() string { return "ssd" }

// PortWrite implements Peripheral: high nibble = digit index, low = value.
func (s *SSD) PortWrite(v byte) {
	s.writes++
	idx := int(v >> 4 & 0x3)
	s.digits[idx] = v & 0x0F
	if s.observer != nil {
		s.observer()
	}
}

// PortRead implements Peripheral.
func (s *SSD) PortRead() byte { return s.digits[0] }

// Value returns the displayed number (digit 0 = most significant), treating
// blank (0xF) digits as zero.
func (s *SSD) Value() int {
	v := 0
	for _, d := range s.digits {
		x := int(d)
		if x == 0xF {
			x = 0
		}
		v = v*10 + x
	}
	return v
}

// Render returns the digits as a string, blanks as '-'.
func (s *SSD) Render() string {
	var b strings.Builder
	for _, d := range s.digits {
		if d == 0xF {
			b.WriteByte('-')
		} else {
			b.WriteByte('0' + d)
		}
	}
	return b.String()
}

// Writes returns the number of device writes.
func (s *SSD) Writes() uint64 { return s.writes }

// SetObserver registers a GUI refresh hook.
func (s *SSD) SetObserver(fn func()) { s.observer = fn }
