package bfm

import (
	"repro/internal/sysc"
)

// RTLBus is the register-transfer-level realization of the BFM bus: the
// paper's case study modeled the i8051 BFM "at register transfer level"
// with explicit signals, while the rest of this package uses per-access
// cycle budgets (the TLM alternative the paper also names). RTLBus drives
// real address/data/control signals through a clocked request/acknowledge
// handshake, so accesses are observable wire-by-wire in the waveform viewer
// and take their latency from actual clock edges rather than annotations.
//
// Protocol (classic two-phase handshake, one transfer per two rising
// edges):
//
//	master: drive ADDR, WDATA, WR, assert STB   — cycle 1
//	slave : on posedge with STB && !ACK: latch/execute, assert ACK
//	master: on posedge with ACK: sample RDATA, deassert STB
//	slave : on posedge with !STB: deassert ACK
type RTLBus struct {
	sim *sysc.Simulator
	clk *sysc.Clock

	Addr  *sysc.Signal[uint16]
	WData *sysc.Signal[byte]
	RData *sysc.Signal[byte]
	Wr    *sysc.BoolSignal
	Stb   *sysc.BoolSignal
	Ack   *sysc.BoolSignal

	mem       []byte
	transfers uint64
	vcd       func(name string, v uint64) // optional probe hook
}

// NewRTLBus creates the bus with its own clock of the given period and a
// memory slave of size bytes.
func NewRTLBus(sim *sysc.Simulator, name string, clkPeriod sysc.Time, size int) *RTLBus {
	b := &RTLBus{
		sim:   sim,
		clk:   sysc.NewClock(sim, name+".clk", clkPeriod),
		Addr:  sysc.NewSignal[uint16](sim, name+".addr", 0),
		WData: sysc.NewSignal[byte](sim, name+".wdata", 0),
		RData: sysc.NewSignal[byte](sim, name+".rdata", 0),
		Wr:    sysc.NewBoolSignal(sim, name+".wr", false),
		Stb:   sysc.NewBoolSignal(sim, name+".stb", false),
		Ack:   sysc.NewBoolSignal(sim, name+".ack", false),
		mem:   make([]byte, size),
	}
	// Memory slave: a clocked process sampling the request lines on every
	// rising edge.
	sim.SpawnMethod(name+".slave", func() {
		if b.Stb.Read() && !b.Ack.Read() {
			addr := int(b.Addr.Read()) % len(b.mem)
			if b.Wr.Read() {
				b.mem[addr] = b.WData.Read()
			} else {
				b.RData.Write(b.mem[addr])
			}
			b.Ack.Write(true)
		} else if !b.Stb.Read() && b.Ack.Read() {
			b.Ack.Write(false)
		}
	}, b.clk.Posedge())
	return b
}

// Clock returns the bus clock.
func (b *RTLBus) Clock() *sysc.Clock { return b.clk }

// Transfers returns the number of completed handshakes.
func (b *RTLBus) Transfers() uint64 { return b.transfers }

// Peek reads slave memory directly (testing/debug; no bus activity).
func (b *RTLBus) Peek(addr uint16) byte { return b.mem[int(addr)%len(b.mem)] }

// Write performs one bus write through the signal-level handshake; the
// calling thread consumes real clocked time (two-plus rising edges).
func (b *RTLBus) Write(th *sysc.Thread, addr uint16, v byte) {
	b.Addr.Write(addr)
	b.WData.Write(v)
	b.Wr.Write(true)
	b.Stb.Write(true)
	b.waitAck(th)
}

// Read performs one bus read through the handshake and returns the data
// sampled at the acknowledging edge.
func (b *RTLBus) Read(th *sysc.Thread, addr uint16) byte {
	b.Addr.Write(addr)
	b.Wr.Write(false)
	b.Stb.Write(true)
	b.waitAck(th)
	return b.RData.Read()
}

// waitAck completes the handshake: wait for ACK on a rising edge, then
// release STB and wait for ACK to drop so back-to-back transfers stay
// distinct.
func (b *RTLBus) waitAck(th *sysc.Thread) {
	for !b.Ack.Read() {
		th.WaitEvent(b.Ack.Posedge())
	}
	b.Stb.Write(false)
	for b.Ack.Read() {
		th.WaitEvent(b.Ack.Negedge())
	}
	b.transfers++
}
