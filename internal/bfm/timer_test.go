package bfm_test

import (
	"testing"

	"repro/internal/bfm"
	"repro/internal/sysc"
)

func TestTimerMode2AutoReload(t *testing.T) {
	b, sim := newBFM(t)
	var fires []sysc.Time
	b.IntC.SetSink(func(line int) {
		if line == bfm.Timer0IntLine {
			fires = append(fires, sim.Now())
		}
	})
	b.IntC.EnableLine(bfm.Timer0IntLine)
	t0 := bfm.NewTimer(b, 0)
	if err := t0.SetMode(2); err != nil {
		t.Fatal(err)
	}
	t0.Load(0x00F6) // 256-246 = 10 machine cycles = 10 us per overflow
	t0.Start()
	if err := sim.Start(55 * sysc.Us); err != nil {
		t.Fatal(err)
	}
	// Start happened a few bus cycles in; expect ~5 periodic overflows.
	if len(fires) < 4 || len(fires) > 6 {
		t.Fatalf("fires = %v", fires)
	}
	for i := 1; i < len(fires); i++ {
		if d := fires[i] - fires[i-1]; d != 10*sysc.Us {
			t.Fatalf("period %d = %v, want 10 us", i, d)
		}
	}
	if t0.PeriodMode2() != 10*sysc.Us {
		t.Fatalf("PeriodMode2 = %v", t0.PeriodMode2())
	}
}

func TestTimerMode1SixteenBit(t *testing.T) {
	b, sim := newBFM(t)
	n := 0
	b.IntC.SetSink(func(line int) {
		if line == bfm.Timer1IntLine {
			n++
		}
	})
	b.IntC.EnableLine(bfm.Timer1IntLine)
	t1 := bfm.NewTimer(b, 1)
	if err := t1.SetMode(1); err != nil {
		t.Fatal(err)
	}
	t1.Load(0xFF00) // 256 cycles to overflow
	t1.Start()
	if err := sim.Start(300 * sysc.Us); err != nil {
		t.Fatal(err)
	}
	if n != 1 { // after overflow it counts a full 65536 cycles
		t.Fatalf("overflows = %d, want 1 within 300 us", n)
	}
}

func TestTimerStopCancels(t *testing.T) {
	b, sim := newBFM(t)
	n := 0
	b.IntC.SetSink(func(int) { n++ })
	b.IntC.EnableLine(bfm.Timer0IntLine)
	t0 := bfm.NewTimer(b, 0)
	_ = t0.SetMode(2)
	t0.Load(0x00F0)
	t0.Start()
	if !t0.Running() {
		t.Fatal("not running")
	}
	t0.Stop()
	if err := sim.Start(sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("stopped timer fired %d times", n)
	}
}

func TestTimerInvalidMode(t *testing.T) {
	b, _ := newBFM(t)
	t0 := bfm.NewTimer(b, 0)
	if err := t0.SetMode(3); err == nil {
		t.Fatal("mode 3 accepted")
	}
}

func TestTimerDrivesKernelTasks(t *testing.T) {
	// Integration: timer overflow interrupts wake a task through the full
	// BFM -> interrupt controller -> kernel path.
	b, sim := newBFM(t)
	t0 := bfm.NewTimer(b, 0)
	_ = t0.SetMode(2)
	t0.Load(0x0000) // 256 us per overflow
	woken := 0
	sink := func(line int) {
		if line == bfm.Timer0IntLine {
			woken++
		}
	}
	b.IntC.SetSink(sink)
	b.IntC.EnableLine(bfm.Timer0IntLine)
	t0.Start()
	if err := sim.Start(2 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if woken < 6 || woken > 8 { // ~7.8 overflows in 2 ms
		t.Fatalf("woken = %d", woken)
	}
	if t0.Overflows() != uint64(woken) {
		t.Fatalf("overflow count mismatch: %d vs %d", t0.Overflows(), woken)
	}
}
