// Package bfm is the bus functional model of the case study (Section 5.1):
// a cycle-budgeted transaction-level abstraction of an i8051 MCU and its
// surrounding hardware. It follows the paper's driver model: the software
// side interacts through handshake functions (BFM calls), each associated
// with a cycle budget based on the 8051 timing characteristics and an
// estimate of the energy consumed during the access.
//
// The model consists of a real-time clock driving the kernel's central
// module (default resolution 1 ms), a memory controller (external RAM), an
// interrupt controller, a serial I/O channel, and a multiplexed parallel
// I/O interface to which external peripheral devices (LCD, keypad,
// seven-segment display) are connected.
package bfm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// Config parameterizes the BFM timing and energy characteristics.
type Config struct {
	// ClockHz is the oscillator frequency (default 12 MHz — the classic
	// 8051 rate giving a 1 us machine cycle at 12 clocks per cycle).
	ClockHz int64
	// ClocksPerMachineCycle is 12 on a standard 8051.
	ClocksPerMachineCycle int
	// EnergyPerCycle is the estimated energy of one machine cycle of bus
	// activity.
	EnergyPerCycle petri.Energy
	// TickPeriod is the real-time clock resolution (default 1 ms).
	TickPeriod sysc.Time
	// XRAMSize is the external RAM size (default 64 KiB).
	XRAMSize int
	// BaudRate is the serial line rate (default 9600).
	BaudRate int
	// VCD, when non-nil, records signal changes for the waveform viewer.
	VCD *trace.VCD
}

// DefaultConfig returns the case-study configuration.
func DefaultConfig() Config {
	return Config{
		ClockHz:               12_000_000,
		ClocksPerMachineCycle: 12,
		EnergyPerCycle:        2 * petri.NanoJ,
		TickPeriod:            1 * sysc.Ms,
		XRAMSize:              64 * 1024,
		BaudRate:              9600,
	}
}

// BFM is one instance of the i8051 bus functional model.
type BFM struct {
	sim *sysc.Simulator
	api *core.SimAPI // for attributing access budgets to the calling T-THREAD
	cfg Config

	machineCycle sysc.Time

	RTC    *RTC
	Mem    *MemoryController
	IntC   *InterruptController
	Serial *SerialIO
	Ports  [4]*Port // P0..P3

	accesses uint64
	cycles   uint64
}

// New builds the BFM on a simulator. api may be nil (no cost attribution;
// useful for hardware-only tests).
func New(sim *sysc.Simulator, api *core.SimAPI, cfg Config) *BFM {
	if cfg.ClockHz <= 0 {
		cfg.ClockHz = 12_000_000
	}
	if cfg.ClocksPerMachineCycle <= 0 {
		cfg.ClocksPerMachineCycle = 12
	}
	if cfg.TickPeriod <= 0 {
		cfg.TickPeriod = 1 * sysc.Ms
	}
	if cfg.XRAMSize <= 0 {
		cfg.XRAMSize = 64 * 1024
	}
	if cfg.BaudRate <= 0 {
		cfg.BaudRate = 9600
	}
	b := &BFM{sim: sim, api: api, cfg: cfg}
	b.machineCycle = sysc.Time(int64(sysc.Sec) * int64(cfg.ClocksPerMachineCycle) / cfg.ClockHz)
	b.RTC = newRTC(sim, cfg.TickPeriod)
	b.Mem = newMemoryController(b, cfg.XRAMSize)
	b.IntC = newInterruptController(b)
	b.Serial = newSerialIO(b, cfg.BaudRate)
	for i := range b.Ports {
		b.Ports[i] = newPort(b, i)
	}
	return b
}

// Sim returns the underlying simulator.
func (b *BFM) Sim() *sysc.Simulator { return b.sim }

// SetAPI attaches the SIM_API instance used to attribute access budgets to
// the calling T-THREAD (breaks the construction cycle: the kernel needs the
// BFM's RTC tick, the BFM needs the kernel's SIM_API).
func (b *BFM) SetAPI(api *core.SimAPI) { b.api = api }

// MachineCycle returns the duration of one machine cycle.
func (b *BFM) MachineCycle() sysc.Time { return b.machineCycle }

// Accesses returns the number of BFM calls performed.
func (b *BFM) Accesses() uint64 { return b.accesses }

// BusCycles returns the total machine cycles consumed by BFM calls.
func (b *BFM) BusCycles() uint64 { return b.cycles }

// call charges one BFM access of the given cycle budget to the calling
// T-THREAD (if any): the access consumes cycles × machine-cycle of
// execution time and cycles × energy-per-cycle of energy, in the BFM
// context of the trace.
func (b *BFM) call(cycles int, name string) {
	b.accesses++
	b.cycles += uint64(cycles)
	if b.api == nil {
		return
	}
	if tt := b.api.ExecutingThread(); tt != nil {
		tt.Consume(core.Cost{
			Time:   sysc.Time(cycles) * b.machineCycle,
			Energy: petri.Energy(cycles) * b.cfg.EnergyPerCycle,
		}, trace.CtxBFM, name)
	}
}

// probe records a VCD change when a waveform recorder is attached.
func (b *BFM) probe(signal string, val uint64) {
	if b.cfg.VCD != nil {
		b.cfg.VCD.Change(signal, b.sim.Now(), val)
	}
}

// RTC is the real-time clock: it drives the kernel's central module with a
// periodic tick event at the configured resolution.
type RTC struct {
	ticker *sysc.Ticker
	period sysc.Time
}

func newRTC(sim *sysc.Simulator, period sysc.Time) *RTC {
	return &RTC{ticker: sysc.NewTicker(sim, "bfm.rtc", period), period: period}
}

// TickEvent returns the tick event; pass it as the kernel's TickSource.
func (r *RTC) TickEvent() *sysc.Event { return r.ticker.Event() }

// Ticker returns the underlying periodic source; pass it as the kernel's
// Config.Ticker to enable the tickless fast-forward (the kernel is the only
// consumer of the RTC tick).
func (r *RTC) Ticker() *sysc.Ticker { return r.ticker }

// Period returns the tick resolution.
func (r *RTC) Period() sysc.Time { return r.period }

// MemoryController models external data memory (XRAM) accessed with MOVX
// (2 machine cycles per transfer on the 8051). The backing arena is
// allocated on the first write: a 64 KiB zeroed arena per platform build is
// by far the largest construction cost, and most models never touch XRAM
// (reads of unwritten memory are 0 either way).
type MemoryController struct {
	b    *BFM
	size int
	xram []byte // nil until first written
}

func newMemoryController(b *BFM, size int) *MemoryController {
	return &MemoryController{b: b, size: size}
}

// Size returns the XRAM size in bytes.
func (m *MemoryController) Size() int { return m.size }

// mem returns the arena, materializing it on first use.
func (m *MemoryController) mem() []byte {
	if m.xram == nil {
		m.xram = make([]byte, m.size)
	}
	return m.xram
}

// Read performs a MOVX read (2 machine cycles).
func (m *MemoryController) Read(addr uint16) byte {
	m.b.call(2, fmt.Sprintf("movx.rd@%04x", addr))
	if int(addr) >= m.size || m.xram == nil {
		return 0
	}
	return m.xram[addr]
}

// Write performs a MOVX write (2 machine cycles).
func (m *MemoryController) Write(addr uint16, v byte) {
	m.b.call(2, fmt.Sprintf("movx.wr@%04x", addr))
	if int(addr) < m.size {
		m.mem()[addr] = v
	}
	m.b.probe("xram.addr", uint64(addr))
	m.b.probe("xram.data", uint64(v))
}

// ReadBlock copies n bytes starting at addr (2 cycles per byte, one call).
func (m *MemoryController) ReadBlock(addr uint16, n int) []byte {
	m.b.call(2*n, fmt.Sprintf("movx.blk.rd@%04x+%d", addr, n))
	out := make([]byte, 0, n)
	for i := 0; i < n && int(addr)+i < m.size; i++ {
		if m.xram == nil {
			out = append(out, 0)
		} else {
			out = append(out, m.xram[int(addr)+i])
		}
	}
	return out
}

// WriteBlock stores bytes starting at addr (2 cycles per byte, one call).
func (m *MemoryController) WriteBlock(addr uint16, data []byte) {
	m.b.call(2*len(data), fmt.Sprintf("movx.blk.wr@%04x+%d", addr, len(data)))
	for i, v := range data {
		if int(addr)+i < m.size {
			m.mem()[int(addr)+i] = v
		}
	}
}
