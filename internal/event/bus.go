// Package event is the kernel's unified observation surface: a typed,
// multi-subscriber event bus that every layer of the co-simulator publishes
// into — sysc (quiescent points, timed-phase advances), core (charged run
// slices, T-THREAD token transitions) and tkernel (service call enter/exit,
// dispatch/preempt, interrupts, wait enqueue/release, timer-event fires).
//
// The design follows NISTT's non-intrusive tracing architecture: producers
// never know who is listening, and consumers (Gantt recording, Perfetto
// export, metrics, chaos oracles) attach independently without fighting over
// single-consumer hook slots. Subscription is pay-for-what-you-use — with no
// subscriber for a kind, the publish path is a single bitmask test, so an
// untraced speed-measure run is not distorted by the instrumentation.
//
// The bus is deliberately not goroutine-safe: like the rest of the model it
// belongs to exactly one simulation, whose evaluation phase is sequential.
package event

import (
	"repro/internal/petri"
	"repro/internal/sysc"
)

// Kind discriminates the event types carried by the bus.
type Kind uint8

// Event kinds, grouped by publishing layer.
const (
	// sysc layer.
	KindQuiescent   Kind = iota // model quiescent at Time; Seq = delta count
	KindTimeAdvance             // timed phase moved the clock Start -> Time

	// core layer.
	KindRunSlice // thread charged for [Start, Time); Ctx, Energy, Obj=note
	KindToken    // T-THREAD token transition fired; Code = transition index

	// tkernel layer.
	KindSvcEnter  // service call prologue; Obj = service name
	KindSvcExit   // service call epilogue; Obj = name, Code = resolved ER
	KindDispatch  // Thread became the running task
	KindPreempt   // Thread was preempted; Obj = "by <next>"
	KindBlock     // Thread entered a wait queue; Obj = wait object
	KindRelease   // Thread left a wait queue; Obj = reason ("normal", error)
	KindIntEnter  // interrupt handler entered; Seq = nesting depth
	KindIntExit   // interrupt handler exited
	KindActivate  // task activated (dormant -> ready)
	KindExit      // task exited (running -> dormant)
	KindTerminate // task force-terminated
	KindSuspend   // task suspended
	KindResume    // task resumed
	KindTimerFire // timer event fired; Start = armed time, Seq = timer seq

	nKinds
)

var kindNames = [nKinds]string{
	"quiescent", "time-advance",
	"run-slice", "token",
	"svc-enter", "svc-exit", "dispatch", "preempt", "block", "release",
	"int-enter", "int-exit", "activate", "exit", "terminate",
	"suspend", "resume", "timer-fire",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// NumKinds returns the number of defined event kinds.
func NumKinds() int { return int(nKinds) }

// Event is one observation, passed to handlers by value. It is a flat struct
// so publishing allocates nothing; fields not meaningful for a kind are zero.
//
// Field conventions per kind:
//
//	Time    when the event happened (always set)
//	Start   RunSlice start / TimeAdvance previous now / TimerFire armed time
//	Thread  the subject thread/task/handler name, "" for kernel-global events
//	Ctx     RunSlice execution context (trace.Context numeric value)
//	Code    SvcExit resolved ER / Token transition index
//	Obj     service name, wait object, release reason, slice note, "by X"
//	Energy  RunSlice charged energy
//	Seq     Quiescent delta count / IntEnter nesting depth / TimerFire seq
type Event struct {
	Kind   Kind
	Ctx    uint8
	Code   int
	Time   sysc.Time
	Start  sysc.Time
	Seq    uint64
	Energy petri.Energy
	Thread string
	Obj    string
}

// Handler consumes published events. Handlers run synchronously on the
// publishing goroutine inside the simulation's evaluation phase; they must
// observe only — never spawn processes, notify events or call kernel
// services.
type Handler func(Event)

type entry struct {
	id int
	h  Handler
}

// Bus routes events from publishers to per-kind subscriber lists. A nil
// *Bus is valid for publishing checks: Wants reports false and Publish is a
// no-op, so model code can hold an optional bus without guarding every use.
type Bus struct {
	mask   uint32
	subs   [nKinds][]entry
	nextID int
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Wants reports whether any subscriber listens for kind k. Publishers guard
// argument construction with it so an unobserved event costs one bitmask
// test and no formatting or allocation.
func (b *Bus) Wants(k Kind) bool {
	return b != nil && b.mask&(1<<k) != 0
}

// Publish delivers e to every subscriber of e.Kind, in subscription order.
func (b *Bus) Publish(e Event) {
	if b == nil || b.mask&(1<<e.Kind) == 0 {
		return
	}
	for _, s := range b.subs[e.Kind] {
		s.h(e)
	}
}

// Subscription identifies one Subscribe call so it can be undone.
type Subscription struct {
	bus   *Bus
	id    int
	kinds []Kind
}

// Subscribe registers h for the given kinds (all kinds when none are given)
// and returns a handle that detaches it again. Subscribing during a Publish
// of the same kind is not supported.
func (b *Bus) Subscribe(h Handler, kinds ...Kind) *Subscription {
	if len(kinds) == 0 {
		kinds = make([]Kind, nKinds)
		for i := range kinds {
			kinds[i] = Kind(i)
		}
	}
	id := b.nextID
	b.nextID++
	sub := &Subscription{bus: b, id: id, kinds: append([]Kind(nil), kinds...)}
	for _, k := range kinds {
		b.subs[k] = append(b.subs[k], entry{id: id, h: h})
		b.mask |= 1 << k
	}
	return sub
}

// Close removes the subscription's handler from every kind it was registered
// for and recomputes the wants mask. Closing twice is harmless.
func (s *Subscription) Close() {
	if s == nil || s.bus == nil {
		return
	}
	b := s.bus
	s.bus = nil
	for _, k := range s.kinds {
		list := b.subs[k]
		for i := 0; i < len(list); {
			if list[i].id == s.id {
				list = append(list[:i], list[i+1:]...)
			} else {
				i++
			}
		}
		b.subs[k] = list
		if len(list) == 0 {
			b.mask &^= 1 << k
		}
	}
}
