package event_test

import (
	"testing"

	"repro/internal/event"
	"repro/internal/sysc"
)

func TestNilBusIsInert(t *testing.T) {
	var b *event.Bus
	if b.Wants(event.KindDispatch) {
		t.Fatal("nil bus wants events")
	}
	b.Publish(event.Event{Kind: event.KindDispatch}) // must not panic
}

func TestWantsTracksSubscriptions(t *testing.T) {
	b := event.NewBus()
	if b.Wants(event.KindRunSlice) {
		t.Fatal("empty bus wants run-slice")
	}
	sub := b.Subscribe(func(event.Event) {}, event.KindRunSlice)
	if !b.Wants(event.KindRunSlice) {
		t.Fatal("bus does not want run-slice after subscribe")
	}
	if b.Wants(event.KindDispatch) {
		t.Fatal("bus wants a kind nobody subscribed to")
	}
	sub.Close()
	if b.Wants(event.KindRunSlice) {
		t.Fatal("bus still wants run-slice after close")
	}
	sub.Close() // second close is harmless
}

func TestPublishRoutesByKind(t *testing.T) {
	b := event.NewBus()
	var got []event.Event
	b.Subscribe(func(e event.Event) { got = append(got, e) },
		event.KindDispatch, event.KindPreempt)
	b.Publish(event.Event{Kind: event.KindDispatch, Thread: "a"})
	b.Publish(event.Event{Kind: event.KindBlock, Thread: "x"}) // not subscribed
	b.Publish(event.Event{Kind: event.KindPreempt, Thread: "b"})
	if len(got) != 2 || got[0].Thread != "a" || got[1].Thread != "b" {
		t.Fatalf("got %+v", got)
	}
}

func TestSubscribeAllKinds(t *testing.T) {
	b := event.NewBus()
	n := 0
	sub := b.Subscribe(func(event.Event) { n++ })
	for k := 0; k < event.NumKinds(); k++ {
		if !b.Wants(event.Kind(k)) {
			t.Fatalf("kind %v not wanted by catch-all subscriber", event.Kind(k))
		}
		b.Publish(event.Event{Kind: event.Kind(k)})
	}
	if n != event.NumKinds() {
		t.Fatalf("delivered %d of %d", n, event.NumKinds())
	}
	sub.Close()
	for k := 0; k < event.NumKinds(); k++ {
		if b.Wants(event.Kind(k)) {
			t.Fatalf("kind %v still wanted after close", event.Kind(k))
		}
	}
}

func TestMultipleSubscribersInOrder(t *testing.T) {
	b := event.NewBus()
	var order []int
	first := b.Subscribe(func(event.Event) { order = append(order, 1) }, event.KindSvcExit)
	b.Subscribe(func(event.Event) { order = append(order, 2) }, event.KindSvcExit)
	b.Publish(event.Event{Kind: event.KindSvcExit})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v", order)
	}
	first.Close()
	order = nil
	b.Publish(event.Event{Kind: event.KindSvcExit})
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("after close, order %v", order)
	}
	if !b.Wants(event.KindSvcExit) {
		t.Fatal("bus lost interest while a subscriber remains")
	}
}

func TestKindNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < event.NumKinds(); k++ {
		name := event.Kind(k).String()
		if name == "?" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}

// TestAttachSimulator drives a tiny model and checks quiescent/time-advance
// events stream out in time order with matching boundaries.
func TestAttachSimulator(t *testing.T) {
	sim := sysc.NewSimulator()
	b := event.NewBus()
	event.AttachSimulator(b, sim)

	var quiescent, advances []event.Event
	b.Subscribe(func(e event.Event) { quiescent = append(quiescent, e) }, event.KindQuiescent)
	b.Subscribe(func(e event.Event) { advances = append(advances, e) }, event.KindTimeAdvance)

	ev := sim.NewEvent("tick")
	n := 0
	sim.Spawn("ticker", func(th *sysc.Thread) {
		for n < 3 {
			n++
			ev.NotifyAfter(1 * sysc.Ms)
			th.WaitEvent(ev)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	defer sim.Shutdown()

	if len(quiescent) == 0 || len(advances) == 0 {
		t.Fatalf("quiescent=%d advances=%d, want both > 0", len(quiescent), len(advances))
	}
	for _, a := range advances {
		if a.Start >= a.Time {
			t.Fatalf("advance from %v to %v not forward", a.Start, a.Time)
		}
	}
	last := advances[len(advances)-1]
	if last.Time != 3*sysc.Ms {
		t.Fatalf("final advance to %v, want 3ms", last.Time)
	}
}
