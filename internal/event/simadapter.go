package event

import "repro/internal/sysc"

// simAdapter bridges the sysc.Observer callbacks onto the bus.
type simAdapter struct {
	b   *Bus
	sim *sysc.Simulator
}

func (a simAdapter) Quiescent(now sysc.Time) {
	if a.b.Wants(KindQuiescent) {
		a.b.Publish(Event{Kind: KindQuiescent, Time: now, Seq: a.sim.DeltaCount()})
	}
}

func (a simAdapter) TimeAdvance(from, to sysc.Time) {
	if a.b.Wants(KindTimeAdvance) {
		a.b.Publish(Event{Kind: KindTimeAdvance, Start: from, Time: to})
	}
}

// AttachSimulator installs the bus as the simulator's observer, publishing
// KindQuiescent at every quiescent point and KindTimeAdvance whenever the
// timed phase moves the clock. The simulator has a single observer slot;
// fan-out happens on the bus.
func AttachSimulator(b *Bus, sim *sysc.Simulator) {
	sim.SetObserver(simAdapter{b: b, sim: sim})
}
