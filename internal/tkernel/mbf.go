package tkernel

// MessageBuffer is a T-Kernel message buffer (tk_cre_mbf family): messages
// are copied into a ring buffer of bufsz bytes; senders block while the
// buffer lacks space, receivers block while it is empty. A bufsz of zero
// gives fully synchronous send/receive rendezvous.
type MessageBuffer struct {
	id     ID
	name   string
	attr   Attr
	bufsz  int
	maxmsz int
	used   int
	msgs   [][]byte

	sendQ waitQueue
	recvQ waitQueue
	sMsg  map[*Task][]byte  // message a blocked sender wants to enqueue
	rDst  map[*Task]*[]byte // delivery slot of a blocked receiver
}

// MessageBufferInfo is the tk_ref_mbf snapshot.
type MessageBufferInfo struct {
	ID          ID
	Name        string
	BufSize     int
	UsedBytes   int
	FreeBytes   int
	Messages    int
	SendWaiting []WaitRef
	RecvWaiting []WaitRef
}

// CreMbf creates a message buffer with buffer size bufsz and maximum
// message size maxmsz (tk_cre_mbf).
func (k *Kernel) CreMbf(name string, attr Attr, bufsz, maxmsz int) (_ ID, er ER) {
	k.enterSvc("tk_cre_mbf")
	defer k.exitSvc("tk_cre_mbf", &er)
	if bufsz < 0 || maxmsz <= 0 {
		return 0, EPAR
	}
	k.nextMbf++
	id := k.nextMbf
	k.mbfs[id] = &MessageBuffer{
		id: id, name: name, attr: attr, bufsz: bufsz, maxmsz: maxmsz,
		sendQ: newWaitQueue(attr), recvQ: newWaitQueue(TaTFIFO),
		sMsg: map[*Task][]byte{}, rDst: map[*Task]*[]byte{},
	}
	return id, EOK
}

// DelMbf deletes a message buffer; all waiters get E_DLT (tk_del_mbf).
func (k *Kernel) DelMbf(id ID) (er ER) {
	k.enterSvc("tk_del_mbf")
	defer k.exitSvc("tk_del_mbf", &er)
	b, ok := k.mbfs[id]
	if !ok {
		return ENOEXS
	}
	for _, q := range []*waitQueue{&b.sendQ, &b.recvQ} {
		q.drain(func(t *Task) {
			delete(b.sMsg, t)
			delete(b.rDst, t)
			k.wake(t, EDLT)
		})
	}
	delete(k.mbfs, id)
	return EOK
}

// SndMbf sends a message of len(msg) bytes, waiting for space up to tmout
// (tk_snd_mbf). Messages longer than maxmsz are E_PAR.
func (k *Kernel) SndMbf(id ID, msg []byte, tmout TMO) (er ER) {
	k.enterSvc("tk_snd_mbf")
	defer k.exitSvc("tk_snd_mbf", &er)
	return k.finish(k.sndMbfBody(id, msg, tmout))
}

// sndMbfBody is the engine-split call body of SndMbf.
func (k *Kernel) sndMbfBody(id ID, msg []byte, tmout TMO) (ER, *armedWait) {
	b, ok := k.mbfs[id]
	if !ok {
		return ENOEXS, nil
	}
	if len(msg) == 0 || len(msg) > b.maxmsz {
		return EPAR, nil
	}
	own := make([]byte, len(msg))
	copy(own, msg)

	// Direct rendezvous with a waiting receiver when the queue is empty.
	if len(b.msgs) == 0 && b.sendQ.len() == 0 {
		if t := b.recvQ.head(); t != nil {
			b.recvQ.remove(t)
			*b.rDst[t] = own
			delete(b.rDst, t)
			k.wake(t, EOK)
			return EOK, nil
		}
	}
	if b.sendQ.len() == 0 && b.fits(len(own)) {
		b.push(own)
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	b.sendQ.add(task)
	b.sMsg[task] = own
	return EOK, k.armSleep(task, objName("mbf", b.id, b.name), tmout, func() {
		b.sendQ.remove(task)
		delete(b.sMsg, task)
	})
}

// RcvMbf receives the oldest message, waiting up to tmout (tk_rcv_mbf).
func (k *Kernel) RcvMbf(id ID, tmout TMO) (_ []byte, er ER) {
	k.enterSvc("tk_rcv_mbf")
	defer k.exitSvc("tk_rcv_mbf", &er)
	var got []byte
	er = k.finish(k.rcvMbfBody(id, tmout, &got))
	return got, er
}

// rcvMbfBody is the engine-split call body of RcvMbf: the message is
// delivered through dst (nil on error paths).
func (k *Kernel) rcvMbfBody(id ID, tmout TMO, dst *[]byte) (ER, *armedWait) {
	b, ok := k.mbfs[id]
	if !ok {
		return ENOEXS, nil
	}
	if len(b.msgs) > 0 {
		*dst = b.pop()
		k.mbfDrainSenders(b)
		return EOK, nil
	}
	// Empty buffer: a blocked sender (zero-size rendezvous) hands over
	// directly.
	if t := b.sendQ.head(); t != nil {
		*dst = b.sMsg[t]
		b.sendQ.remove(t)
		delete(b.sMsg, t)
		k.wake(t, EOK)
		k.mbfDrainSenders(b)
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	b.recvQ.add(task)
	b.rDst[task] = dst
	return EOK, k.armSleep(task, objName("mbf", b.id, b.name), tmout, func() {
		b.recvQ.remove(task)
		delete(b.rDst, task)
	})
}

// mbfDrainSenders moves blocked senders' messages into freed space, in
// queue order.
func (k *Kernel) mbfDrainSenders(b *MessageBuffer) {
	for {
		t := b.sendQ.head()
		if t == nil {
			return
		}
		msg := b.sMsg[t]
		if !b.fits(len(msg)) {
			return
		}
		b.sendQ.remove(t)
		delete(b.sMsg, t)
		b.push(msg)
		k.wake(t, EOK)
	}
}

// fits reports whether a message of n bytes fits the buffer accounting
// (each message carries a 4-byte length header, as in T-Kernel).
func (b *MessageBuffer) fits(n int) bool {
	return b.used+n+4 <= b.bufsz
}

func (b *MessageBuffer) push(msg []byte) {
	b.msgs = append(b.msgs, msg)
	b.used += len(msg) + 4
}

func (b *MessageBuffer) pop() []byte {
	msg := b.msgs[0]
	b.msgs = b.msgs[1:]
	b.used -= len(msg) + 4
	return msg
}

// RefMbf returns the message-buffer state (tk_ref_mbf).
func (k *Kernel) RefMbf(id ID) (MessageBufferInfo, ER) {
	b, ok := k.mbfs[id]
	if !ok {
		return MessageBufferInfo{}, ENOEXS
	}
	return k.mbfInfo(b), EOK
}

// mbfInfo builds the unified view of one message buffer.
func (k *Kernel) mbfInfo(b *MessageBuffer) MessageBufferInfo {
	return MessageBufferInfo{
		ID:          b.id,
		Name:        b.name,
		BufSize:     b.bufsz,
		UsedBytes:   b.used,
		FreeBytes:   b.bufsz - b.used,
		Messages:    len(b.msgs),
		SendWaiting: b.sendQ.refs(),
		RecvWaiting: b.recvQ.refs(),
	}
}
