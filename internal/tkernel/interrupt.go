package tkernel

import (
	"repro/internal/core"
)

// ISR is a registered external-interrupt service routine (tk_def_int): a
// handler-level T-THREAD activated by the Interrupt Dispatch module when
// its interrupt number is raised by the hardware (BFM interrupt
// controller).
type ISR struct {
	intno   int
	name    string
	tt      *core.TThread
	fires   int
	missed  int // raises rejected because the ISR was still running
	dropped int // raises suppressed by the interrupt filter (fault injection)
}

// ISRInfo is a snapshot of an interrupt handler's statistics.
type ISRInfo struct {
	IntNo   int
	Name    string
	Fires   int
	Missed  int
	Dropped int
}

// IntDecision is the verdict of an interrupt filter for one raise.
type IntDecision int

// Interrupt-filter verdicts.
const (
	// IntPass delivers the interrupt normally.
	IntPass IntDecision = iota
	// IntDrop suppresses the raise silently, as faulty hardware would: the
	// ISR never fires and the raiser observes E_OK.
	IntDrop
)

// DefInt defines the interrupt handler for interrupt number intno
// (tk_def_int). Redefinition replaces the previous handler; a nil fn
// removes the definition.
func (k *Kernel) DefInt(intno int, name string, fn HandlerFunc) (er ER) {
	k.enterSvc("tk_def_int")
	defer k.exitSvc("tk_def_int", &er)
	if intno < 0 {
		return EPAR
	}
	if fn == nil {
		delete(k.isrs, intno)
		return EOK
	}
	isr := &ISR{intno: intno, name: name}
	isr.tt = k.api.CreateThread(name, core.KindISR, 0, func(tt *core.TThread) {
		fn(&HandlerCtx{K: k, tt: tt})
	})
	k.isrs[intno] = isr
	return EOK
}

// RaiseInterrupt is the Interrupt Dispatch entry: it identifies and
// responds to an external interrupt by notifying its dedicated service
// routine. Raising an undefined interrupt returns E_NOEXS; raising one
// whose handler is still running (and which the hardware would therefore
// lose) returns E_QOVR and counts as missed. Nested interrupts arise
// naturally when one ISR is raised while another runs.
func (k *Kernel) RaiseInterrupt(intno int) ER {
	isr, ok := k.isrs[intno]
	if !ok {
		return ENOEXS
	}
	if k.intFilter != nil && k.intFilter(intno) == IntDrop {
		isr.dropped++
		return EOK
	}
	if err := k.api.EnterInterrupt(isr.tt); err != nil {
		isr.missed++
		return EQOVR
	}
	isr.fires++
	return EOK
}

// RefInt returns interrupt-handler statistics.
func (k *Kernel) RefInt(intno int) (ISRInfo, ER) {
	isr, ok := k.isrs[intno]
	if !ok {
		return ISRInfo{}, ENOEXS
	}
	return ISRInfo{IntNo: isr.intno, Name: isr.name, Fires: isr.fires,
		Missed: isr.missed, Dropped: isr.dropped}, EOK
}
