package tkernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

func TestSemaphoreBasic(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, er := k.CreSem("s", tkernel.TaTFIFO, 2, 10)
		if er != tkernel.EOK {
			t.Fatalf("CreSem: %v", er)
		}
		if er := k.WaiSem(sem, 2, tkernel.TmoPol); er != tkernel.EOK {
			t.Errorf("WaiSem: %v", er)
		}
		if er := k.WaiSem(sem, 1, tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("empty WaiSem poll: %v", er)
		}
		if er := k.SigSem(sem, 1); er != tkernel.EOK {
			t.Errorf("SigSem: %v", er)
		}
		info, _ := k.RefSem(sem)
		if info.Count != 1 {
			t.Errorf("count = %d", info.Count)
		}
		if er := k.SigSem(sem, 100); er != tkernel.EQOVR {
			t.Errorf("overflow: %v", er)
		}
		if er := k.WaiSem(sem, 0, tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("zero count: %v", er)
		}
		if er := k.WaiSem(999, 1, tkernel.TmoPol); er != tkernel.ENOEXS {
			t.Errorf("unknown: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestSemaphoreBlockingHandoff(t *testing.T) {
	var acquiredAt sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("s", tkernel.TaTFIFO, 0, 10)
		id, _ := k.CreTsk("waiter", 10, func(task *tkernel.Task) {
			if er := k.WaiSem(sem, 3, tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("WaiSem: %v", er)
			}
			acquiredAt = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SigSem(sem, 1) // not enough
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SigSem(sem, 2) // now satisfiable
	})
	run(t, sim, sysc.Sec)
	if acquiredAt != 4*sysc.Ms {
		t.Fatalf("acquired at %v, want 4 ms", acquiredAt)
	}
}

func TestSemaphoreTimeout(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("s", tkernel.TaTFIFO, 0, 1)
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			code = k.WaiSem(sem, 1, 5*sysc.Ms)
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(10 * sysc.Ms)
		// Late signal goes to the count, not the timed-out waiter.
		_ = k.SigSem(sem, 1)
		info, _ := k.RefSem(sem)
		if info.Count != 1 || len(info.Waiting) != 0 {
			t.Errorf("after timeout: %+v", info)
		}
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ETMOUT {
		t.Fatalf("code = %v", code)
	}
}

func TestSemaphoreStrictQueueOrder(t *testing.T) {
	// A large request at the head blocks smaller ones behind it.
	var order []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("s", tkernel.TaTFIFO, 0, 10)
		big, _ := k.CreTsk("big", 10, func(task *tkernel.Task) {
			_ = k.WaiSem(sem, 5, tkernel.TmoFevr)
			order = append(order, "big")
		})
		small, _ := k.CreTsk("small", 10, func(task *tkernel.Task) {
			_ = k.WaiSem(sem, 1, tkernel.TmoFevr)
			order = append(order, "small")
		})
		_ = k.StaTsk(big)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.StaTsk(small)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SigSem(sem, 2) // small would fit, but big is at the head
		_ = k.DlyTsk(1 * sysc.Ms)
		if len(order) != 0 {
			t.Errorf("premature grant: %v", order)
		}
		_ = k.SigSem(sem, 3) // 5 available: big gets them, then small waits
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SigSem(sem, 1)
	})
	run(t, sim, sysc.Sec)
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphorePriorityQueue(t *testing.T) {
	var order []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("s", tkernel.TaTPRI, 0, 10)
		mk := func(name string, pri int) tkernel.ID {
			id, _ := k.CreTsk(name, pri, func(task *tkernel.Task) {
				_ = k.WaiSem(sem, 1, tkernel.TmoFevr)
				order = append(order, name)
			})
			return id
		}
		lo := mk("lo", 20)
		hi := mk("hi", 5)
		_ = k.StaTsk(lo)
		_ = k.DlyTsk(1 * sysc.Ms) // lo queues first
		_ = k.StaTsk(hi)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SigSem(sem, 1) // priority queue: hi wins despite arriving later
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SigSem(sem, 1)
	})
	run(t, sim, sysc.Sec)
	if len(order) != 2 || order[0] != "hi" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreDeleteReleasesEDLT(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("s", tkernel.TaTFIFO, 0, 1)
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			code = k.WaiSem(sem, 1, tkernel.TmoFevr)
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		if er := k.DelSem(sem); er != tkernel.EOK {
			t.Errorf("DelSem: %v", er)
		}
		if er := k.SigSem(sem, 1); er != tkernel.ENOEXS {
			t.Errorf("signal deleted: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.EDLT {
		t.Fatalf("code = %v", code)
	}
}

func TestEventFlagModes(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		flg, _ := k.CreFlg("f", tkernel.TaWMUL, 0)
		// OR wait satisfied by any bit.
		_ = k.SetFlg(flg, 0b0010)
		ptn, er := k.WaiFlg(flg, 0b0110, tkernel.TwfORW, tkernel.TmoPol)
		if er != tkernel.EOK || ptn != 0b0010 {
			t.Errorf("OR wait: ptn=%b er=%v", ptn, er)
		}
		// AND wait unsatisfied.
		if _, er := k.WaiFlg(flg, 0b0110, tkernel.TwfANDW, tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("AND poll: %v", er)
		}
		_ = k.SetFlg(flg, 0b0100)
		ptn, er = k.WaiFlg(flg, 0b0110, tkernel.TwfANDW|tkernel.TwfCLR, tkernel.TmoPol)
		if er != tkernel.EOK || ptn != 0b0110 {
			t.Errorf("AND+CLR: ptn=%b er=%v", ptn, er)
		}
		info, _ := k.RefFlg(flg)
		if info.Pattern != 0 {
			t.Errorf("pattern after CLR = %b", info.Pattern)
		}
		// Bit-clear mode clears only matched bits.
		_ = k.SetFlg(flg, 0b1011)
		if _, er := k.WaiFlg(flg, 0b0011, tkernel.TwfANDW|tkernel.TwfBitCLR, tkernel.TmoPol); er != tkernel.EOK {
			t.Errorf("BitCLR: %v", er)
		}
		info, _ = k.RefFlg(flg)
		if info.Pattern != 0b1000 {
			t.Errorf("pattern after BitCLR = %b", info.Pattern)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestEventFlagBlockingAndDelivery(t *testing.T) {
	var got uint32
	var at sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		flg, _ := k.CreFlg("f", tkernel.TaWMUL, 0)
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			var er tkernel.ER
			got, er = k.WaiFlg(flg, 0b11, tkernel.TwfANDW, tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("WaiFlg: %v", er)
			}
			at = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SetFlg(flg, 0b01) // not yet
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SetFlg(flg, 0b10) // satisfied
	})
	run(t, sim, sysc.Sec)
	if at != 4*sysc.Ms || got != 0b11 {
		t.Fatalf("at=%v ptn=%b", at, got)
	}
}

func TestEventFlagSingleWaiterEOBJ(t *testing.T) {
	var second tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		flg, _ := k.CreFlg("f", tkernel.TaWSGL, 0)
		a, _ := k.CreTsk("a", 10, func(task *tkernel.Task) {
			_, _ = k.WaiFlg(flg, 1, tkernel.TwfORW, tkernel.TmoFevr)
		})
		b, _ := k.CreTsk("b", 10, func(task *tkernel.Task) {
			_, second = k.WaiFlg(flg, 2, tkernel.TwfORW, tkernel.TmoFevr)
		})
		_ = k.StaTsk(a)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.StaTsk(b)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SetFlg(flg, 3)
	})
	run(t, sim, sysc.Sec)
	if second != tkernel.EOBJ {
		t.Fatalf("second waiter on TA_WSGL flag: %v", second)
	}
}

func TestEventFlagMultipleWaitersReleased(t *testing.T) {
	released := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		flg, _ := k.CreFlg("f", tkernel.TaWMUL, 0)
		for i := 0; i < 3; i++ {
			id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
				if _, er := k.WaiFlg(flg, 1, tkernel.TwfORW, tkernel.TmoFevr); er == tkernel.EOK {
					released++
				}
			})
			_ = k.StaTsk(id)
		}
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SetFlg(flg, 1) // no clearing: releases all three
	})
	run(t, sim, sysc.Sec)
	if released != 3 {
		t.Fatalf("released = %d, want 3", released)
	}
}

func TestEventFlagCLRReleasesOnlyFirst(t *testing.T) {
	released := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		flg, _ := k.CreFlg("f", tkernel.TaWMUL, 0)
		for i := 0; i < 3; i++ {
			id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
				if _, er := k.WaiFlg(flg, 1, tkernel.TwfORW|tkernel.TwfCLR, tkernel.TmoFevr); er == tkernel.EOK {
					released++
				}
			})
			_ = k.StaTsk(id)
		}
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SetFlg(flg, 1) // first waiter clears: others stay blocked
		_ = k.DlyTsk(2 * sysc.Ms)
	})
	run(t, sim, sysc.Sec)
	if released != 1 {
		t.Fatalf("released = %d, want 1 (TWF_CLR)", released)
	}
}

func TestMutexBasicAndIlluse(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mtx, _ := k.CreMtx("m", tkernel.TaTFIFO, 0)
		if er := k.LocMtx(mtx, tkernel.TmoFevr); er != tkernel.EOK {
			t.Errorf("LocMtx: %v", er)
		}
		if er := k.LocMtx(mtx, tkernel.TmoFevr); er != tkernel.EILUSE {
			t.Errorf("recursive lock: %v", er)
		}
		if er := k.UnlMtx(mtx); er != tkernel.EOK {
			t.Errorf("UnlMtx: %v", er)
		}
		if er := k.UnlMtx(mtx); er != tkernel.EILUSE {
			t.Errorf("unlock unowned: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestMutexPriorityInheritance(t *testing.T) {
	// Low-priority owner gets boosted while a high-priority task waits, so
	// a medium task cannot starve it (classic priority-inversion cure).
	var midRan, hiGot sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mtx, _ := k.CreMtx("m", tkernel.TaInherit, 0)
		var lowID tkernel.ID
		lowID, _ = k.CreTsk("low", 30, func(task *tkernel.Task) {
			_ = k.LocMtx(mtx, tkernel.TmoFevr)
			k.Work(core.Cost{Time: 10 * sysc.Ms}, "critical")
			_ = k.UnlMtx(mtx)
		})
		hi, _ := k.CreTsk("hi", 5, func(task *tkernel.Task) {
			_ = k.LocMtx(mtx, tkernel.TmoFevr)
			hiGot = k.Sim().Now()
			_ = k.UnlMtx(mtx)
		})
		mid, _ := k.CreTsk("mid", 15, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 5 * sysc.Ms}, "")
			midRan = k.Sim().Now()
		})
		_ = k.StaTsk(lowID)
		_ = k.DlyTsk(2 * sysc.Ms) // low holds the mutex, 2 of 10 ms done
		_ = k.StaTsk(hi)          // hi blocks on mutex -> low boosted to 5
		_ = k.StaTsk(mid)         // mid (15) must NOT run before low finishes
		_ = k.DlyTsk(1 * sysc.Ms) // let hi run and block on the mutex
		info, _ := k.RefTsk(lowID)
		if info.Priority != 5 || info.BasePrio != 30 {
			t.Errorf("low priority %d/%d, want boosted 5/30", info.Priority, info.BasePrio)
		}
	})
	run(t, sim, sysc.Sec)
	if hiGot != 10*sysc.Ms {
		t.Fatalf("hi acquired at %v, want 10 ms", hiGot)
	}
	if midRan != 15*sysc.Ms {
		t.Fatalf("mid finished at %v, want 15 ms (after low+hi)", midRan)
	}
}

func TestMutexCeiling(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mtx, _ := k.CreMtx("m", tkernel.TaCeiling, 8)
		id, _ := k.CreTsk("w", 20, func(task *tkernel.Task) {
			_ = k.LocMtx(mtx, tkernel.TmoFevr)
			info, _ := k.RefTsk(0)
			if info.Priority != 8 {
				t.Errorf("ceiling boost: pri=%d, want 8", info.Priority)
			}
			_ = k.UnlMtx(mtx)
			info, _ = k.RefTsk(0)
			if info.Priority != 20 {
				t.Errorf("after unlock: pri=%d, want 20", info.Priority)
			}
		})
		_ = k.StaTsk(id)

		// A task whose base priority outranks the ceiling may not lock.
		hi, _ := k.CreTsk("hi", 3, func(task *tkernel.Task) {
			if er := k.LocMtx(mtx, tkernel.TmoFevr); er != tkernel.EILUSE {
				t.Errorf("lock above ceiling: %v", er)
			}
		})
		_ = k.StaTsk(hi)
	})
	run(t, sim, sysc.Sec)
}

func TestMutexAutoReleaseOnExit(t *testing.T) {
	var got sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mtx, _ := k.CreMtx("m", tkernel.TaTFIFO, 0)
		owner, _ := k.CreTsk("owner", 10, func(task *tkernel.Task) {
			_ = k.LocMtx(mtx, tkernel.TmoFevr)
			k.Work(core.Cost{Time: 5 * sysc.Ms}, "")
			// exits without unlocking: kernel must release
		})
		waiter, _ := k.CreTsk("waiter", 12, func(task *tkernel.Task) {
			if er := k.LocMtx(mtx, tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("waiter lock: %v", er)
			}
			got = k.Sim().Now()
		})
		_ = k.StaTsk(owner)
		_ = k.StaTsk(waiter)
	})
	run(t, sim, sysc.Sec)
	if got != 5*sysc.Ms {
		t.Fatalf("waiter acquired at %v, want 5 ms (auto-release on exit)", got)
	}
}

func TestMutexDeleteEDLT(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mtx, _ := k.CreMtx("m", tkernel.TaTFIFO, 0)
		owner, _ := k.CreTsk("owner", 10, func(task *tkernel.Task) {
			_ = k.LocMtx(mtx, tkernel.TmoFevr)
			k.Work(core.Cost{Time: 50 * sysc.Ms}, "")
		})
		waiter, _ := k.CreTsk("waiter", 8, func(task *tkernel.Task) {
			code = k.LocMtx(mtx, tkernel.TmoFevr)
		})
		_ = k.StaTsk(owner)
		_ = k.DlyTsk(1 * sysc.Ms) // owner locks first
		_ = k.StaTsk(waiter)      // higher priority: runs, blocks on mutex
		_ = k.DlyTsk(4 * sysc.Ms)
		_ = k.DelMtx(mtx)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.EDLT {
		t.Fatalf("code = %v", code)
	}
}

func TestMutexCeilingPlusInheritRejected(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if _, er := k.CreMtx("m", tkernel.TaCeiling|tkernel.TaInherit, 5); er != tkernel.ERSATR {
			t.Errorf("combined attributes: %v", er)
		}
		if _, er := k.CreMtx("m", tkernel.TaCeiling, 0); er != tkernel.EPAR {
			t.Errorf("bad ceiling: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

// TestChgPriRepositionsWaiter: changing the priority of a task blocked on a
// TA_TPRI semaphore re-files its wait-queue node, so a later boost lets it
// overtake a waiter that arrived first.
func TestChgPriRepositionsWaiter(t *testing.T) {
	var grants []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("s", tkernel.TaTPRI, 0, 10)
		mk := func(name string, prio int) tkernel.ID {
			id, _ := k.CreTsk(name, prio, func(task *tkernel.Task) {
				if er := k.WaiSem(sem, 1, tkernel.TmoFevr); er != tkernel.EOK {
					t.Errorf("%s WaiSem: %v", name, er)
					return
				}
				grants = append(grants, name)
			})
			_ = k.StaTsk(id)
			return id
		}
		a := mk("a", 10)
		_ = a
		b := mk("b", 11)
		_ = k.DlyTsk(1 * sysc.Ms) // both queued: [a(10), b(11)]
		if er := k.ChgPri(b, 5); er != tkernel.EOK {
			t.Errorf("ChgPri: %v", er)
		}
		// b now outranks a and must be granted first.
		_ = k.SigSem(sem, 1)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SigSem(sem, 1)
	})
	run(t, sim, 100*sysc.Ms)
	if len(grants) != 2 || grants[0] != "b" || grants[1] != "a" {
		t.Fatalf("grant order = %v, want [b a]", grants)
	}
}
