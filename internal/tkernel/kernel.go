package tkernel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/run/opts"
	"repro/internal/sched"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// ID identifies a kernel object within its class (task, semaphore, ...).
type ID int

// TMO is a timeout for wait services. Non-negative values are durations;
// TmoPol polls (fail immediately instead of waiting) and TmoFevr waits
// forever.
type TMO = sysc.Time

// Timeout sentinels.
const (
	TmoPol  TMO = 0
	TmoFevr TMO = -1
)

// Attributes of kernel objects (subset of T-Kernel object attributes).
type Attr uint32

// Object attribute bits.
const (
	TaTFIFO   Attr = 0      // wait queue in FIFO order
	TaTPRI    Attr = 1 << 0 // wait queue in task priority order
	TaWSGL    Attr = 0      // event flag: single waiter
	TaWMUL    Attr = 1 << 1 // event flag: multiple waiters allowed
	TaMFIFO   Attr = 0      // mailbox messages in FIFO order
	TaMPRI    Attr = 1 << 2 // mailbox messages in priority order
	TaInherit Attr = 1 << 3 // mutex: priority inheritance
	TaCeiling Attr = 1 << 4 // mutex: priority ceiling
)

// Costs is the ETM/EEM annotation model for kernel code: the execution time
// and energy charged to the calling T-THREAD for each class of kernel step.
// The paper estimated these a priori for RTK-Spec TRON; they are fully
// user-overridable (and calibratable against an ISS, the paper's future
// work).
type Costs struct {
	Service  core.Cost // one tk_* service call body
	Dispatch core.Cost // one context switch
	TimerIRQ core.Cost // timer-handler pass per tick
}

// DefaultCosts returns the estimated annotations used by the case study:
// a few microseconds and sub-microjoule per kernel step, realistic for the
// i8051-class target of the paper.
func DefaultCosts() Costs {
	return Costs{
		Service:  core.Cost{Time: 5 * sysc.Us, Energy: 250 * petri.NanoJ},
		Dispatch: core.Cost{Time: 8 * sysc.Us, Energy: 400 * petri.NanoJ},
		TimerIRQ: core.Cost{Time: 3 * sysc.Us, Energy: 150 * petri.NanoJ},
	}
}

// ZeroCosts returns an annotation model with no kernel overhead (useful for
// functional tests that assert exact timings).
func ZeroCosts() Costs { return Costs{} }

// Config parameterizes a kernel instance. The embedded CommonOptions carry
// the cross-kernel knobs: Tick is the system-clock resolution driving the
// central module (default 1 ms, the paper's RTC resolution), Bus/Gantt the
// observability wiring; TimeSlice is ignored (the T-Kernel policy is purely
// priority-preemptive).
type Config struct {
	opts.CommonOptions

	// TickSource, when non-nil, is an external tick event (the BFM's
	// real-time clock). When nil the kernel generates its own tick.
	TickSource *sysc.Event
	// Ticker, when non-nil, is the periodic source behind TickSource. Handing
	// the kernel the Ticker (not just its event) enables the tickless
	// fast-forward: at quiescent points the kernel skips tick firings that
	// provably do nothing. Only safe when the kernel is the sole consumer of
	// the tick event. Ignored when TickSource is nil (the kernel then owns
	// its ticker and fast-forwards it anyway).
	Ticker *sysc.Ticker
	// DisableTickless forces every tick to be simulated even when the kernel
	// holds the Ticker handle (for A/B trace comparison and debugging).
	DisableTickless bool
	// Costs is the kernel ETM/EEM annotation model.
	Costs Costs
	// MaxPriority bounds task priorities (1..MaxPriority; default 140).
	MaxPriority int
	// WupCountMax bounds queued wakeups per task (default 65535).
	WupCountMax int

	// TickDelay is the delayed-tick-delivery fault hook: it is consulted
	// with each tick's ordinal and a positive return defers that tick's
	// timer pass (cyclic/alarm firings, wait timeouts) by the returned
	// amount. The hook must be deterministic. Fault instrumentation is
	// frozen at construction so concurrent jobs can never race on it.
	TickDelay func(tick uint64) sysc.Time
	// InterruptFilter is the dropped-interrupt fault hook: it screens every
	// RaiseInterrupt before dispatch and may suppress the raise. The hook
	// must be deterministic.
	InterruptFilter func(intno int) IntDecision
	// ConsumeShaper is the execution-time-inflation fault hook, applied to
	// every Consume cost before the budget is spent (forwarded to the
	// SIM_API instance; see core.WithConsumeShaper).
	ConsumeShaper func(t *core.TThread, c core.Cost, ctx trace.Context) core.Cost
}

// Kernel is one instance of the RTK-Spec TRON simulation model. Create it
// with New, populate the application in the initial task via Boot, and run
// the underlying sysc simulator.
type Kernel struct {
	sim *sysc.Simulator
	api *core.SimAPI
	bus *event.Bus
	cfg Config

	tasks map[ID]*Task
	sems  map[ID]*Semaphore
	flags map[ID]*EventFlag
	mtxs  map[ID]*Mutex
	mbxs  map[ID]*Mailbox
	mbfs  map[ID]*MessageBuffer
	mpfs  map[ID]*FixedPool
	mpls  map[ID]*VariablePool
	cycs  map[ID]*CyclicHandler
	alms  map[ID]*AlarmHandler
	isrs  map[int]*ISR
	pors  map[ID]*Port

	rdvs    map[RdvNo]portRdv
	nextRdv uint64

	nextTask, nextSem, nextFlg, nextMtx, nextMbx, nextMbf ID
	nextMpf, nextMpl, nextCyc, nextAlm, nextPor           ID

	timerQ  timerQueue
	sysBase sysc.Time // tk_set_tim offset: system time = sysBase + sim time
	ticks   uint64

	// ticker is non-nil exactly when the tickless fast-forward is active:
	// the kernel holds the periodic source's handle and may skip provably
	// idle tick firings (crediting them to ticks).
	ticker *sysc.Ticker

	// tickDelay and intFilter are the fault hooks frozen from Config at
	// construction (Config.TickDelay, Config.InterruptFilter); tickDeferEv
	// carries a deferred tick's late timer pass.
	tickDelay   func(tick uint64) sysc.Time
	tickDeferEv *sysc.Event
	intFilter   func(intno int) IntDecision

	booted bool
	disDsp bool
}

// New creates a kernel bound to a fresh SIM_API instance over sim, using
// the T-Kernel priority-based preemptive scheduling policy.
func New(sim *sysc.Simulator, cfg Config) *Kernel {
	if cfg.Tick <= 0 {
		cfg.Tick = 1 * sysc.Ms
	}
	if cfg.MaxPriority <= 0 {
		cfg.MaxPriority = 140
	}
	if cfg.WupCountMax <= 0 {
		cfg.WupCountMax = 65535
	}
	bus := cfg.Bus
	if bus == nil {
		bus = event.NewBus()
	}
	event.AttachSimulator(bus, sim)
	if cfg.Gantt != nil {
		trace.AttachGantt(bus, cfg.Gantt)
	}
	var apiOpts []core.Option
	if cfg.ConsumeShaper != nil {
		apiOpts = append(apiOpts, core.WithConsumeShaper(cfg.ConsumeShaper))
	}
	k := &Kernel{
		sim:       sim,
		api:       core.NewSimAPI(sim, sched.NewPriority(), bus, apiOpts...),
		bus:       bus,
		cfg:       cfg,
		tickDelay: cfg.TickDelay,
		intFilter: cfg.InterruptFilter,
		tasks:     map[ID]*Task{},
		sems:      map[ID]*Semaphore{},
		flags:     map[ID]*EventFlag{},
		mtxs:      map[ID]*Mutex{},
		mbxs:      map[ID]*Mailbox{},
		mbfs:      map[ID]*MessageBuffer{},
		mpfs:      map[ID]*FixedPool{},
		mpls:      map[ID]*VariablePool{},
		cycs:      map[ID]*CyclicHandler{},
		alms:      map[ID]*AlarmHandler{},
		isrs:      map[int]*ISR{},
		pors:      map[ID]*Port{},
		rdvs:      map[RdvNo]portRdv{},
	}
	return k
}

// API exposes the SIM_API library instance (for debugger support and
// experiment harnesses).
func (k *Kernel) API() *core.SimAPI { return k.api }

// Bus returns the kernel event bus: the single observation surface for
// traces, metrics and invariant oracles. Never nil.
func (k *Kernel) Bus() *event.Bus { return k.bus }

// Sim returns the underlying simulator.
func (k *Kernel) Sim() *sysc.Simulator { return k.sim }

// Tick returns the configured system-clock resolution.
func (k *Kernel) Tick() sysc.Time { return k.cfg.Tick }

// Engine returns the configured T-THREAD engine (opts.EngineGoroutine or
// opts.EngineContinuation), so system builders outside the kernel can pick
// the matching device-model process style.
func (k *Kernel) Engine() string { return k.cfg.Engine }

// Ticks returns the number of system ticks processed so far.
func (k *Kernel) Ticks() uint64 { return k.ticks }

// Boot installs the kernel's central module (Figure 3) and schedules the
// startup sequence: on "reset" the Boot process initializes the kernel
// internal state and starts the initial task, which calls the user main
// entry to create and start tasks, handlers and application resources.
// The initial task runs at the highest priority (0).
func (k *Kernel) Boot(userMain func(*Kernel)) {
	if k.booted {
		panic("tkernel: Boot called twice")
	}
	k.booted = true

	// Thread Dispatch: sensitive to the system tick; activates the timer
	// handler inside T-Kernel/OS.
	tickEv := k.cfg.TickSource
	ticker := k.cfg.Ticker
	if tickEv == nil {
		ticker = sysc.NewTicker(k.sim, "tkernel.tick", k.cfg.Tick)
		tickEv = ticker.Event()
	}
	k.sim.SpawnMethod("tkernel.thread_dispatch", k.timerHandler, tickEv)
	if ticker != nil && !k.cfg.DisableTickless {
		k.ticker = ticker
		k.sim.SetWarpHook(k.warp)
	}

	// Deferred-tick carrier for the delayed-tick-delivery fault hook.
	k.tickDeferEv = k.sim.NewEvent("tkernel.tick_defer")
	k.sim.SpawnMethod("tkernel.deferred_tick", k.runTimerQ, k.tickDeferEv)

	// Boot module: kernel startup upon H/W reset (time zero).
	k.sim.Spawn("tkernel.boot", func(th *sysc.Thread) {
		init := k.api.CreateThread("INIT", core.KindTask, 0, func(tt *core.TThread) {
			tt.Consume(k.cfg.Costs.Service, trace.CtxStartup, "kernel-init")
			userMain(k)
		})
		k.tasks[0] = &Task{id: 0, k: k, tt: init, name: "INIT"}
		init.SetExinf(k.tasks[0])
		if err := k.api.Activate(init); err != nil {
			panic(err)
		}
	})
}

// timerHandler is the kernel timer handler, activated by Thread Dispatch on
// every system tick: it updates the system clock and checks the timer queue
// for cyclic events, alarm events, and task-resuming (timeout) events, then
// drives the simulation library to dispatch or preempt.
func (k *Kernel) timerHandler() {
	k.ticks++
	if k.tickDelay != nil {
		if d := k.tickDelay(k.ticks); d > 0 {
			// Deliver this tick's timer pass late. Overlapping deferrals
			// merge onto the earliest pending delivery (sc_event override
			// rules), which models a hardware timer losing edges: the late
			// pass pops everything due by then in one go.
			k.tickDeferEv.NotifyAfter(d)
			return
		}
	}
	k.runTimerQ()
}

// runTimerQ pops and runs every timer-queue entry due at the current time.
func (k *Kernel) runTimerQ() {
	now := k.sim.Now()
	for {
		it, ok := k.timerQ.popDue(now)
		if !ok {
			return
		}
		if k.bus.Wants(event.KindTimerFire) {
			k.bus.Publish(event.Event{Kind: event.KindTimerFire,
				Time: now, Start: it.when, Seq: it.seq})
		}
		it.fn()
	}
}

// warp is the tickless fast-forward, called by the simulator at every
// quiescent point. A tick firing is a no-op unless a kernel timer entry is
// due at it, so the ticker can jump straight to the first instant with real
// work: the earliest timer deadline, the earliest non-tick simulator event
// (whatever it makes runnable may call timed services), or the Start horizon
// (so step mode observes the same final tick count). SkipTo grid-ceils the
// target and preserves phase; the skipped firings are credited to ticks up
// front, which is exact because nothing can run — and hence nothing can read
// Ticks() — before the first of those instants.
func (k *Kernel) warp(now, horizon sysc.Time) {
	if k.tickDelay != nil {
		return // chaos tick faults must see every tick delivered
	}
	next, ok := k.ticker.NextFire()
	if !ok {
		return
	}
	target := sysc.Time(-1)
	if w, ok := k.timerQ.earliest(); ok {
		target = w
	}
	if w, ok := k.sim.NextTimedExcluding(k.ticker.Gen()); ok && (target < 0 || w < target) {
		target = w
	}
	if horizon != sysc.MaxTime && (target < 0 || horizon < target) {
		target = horizon
	}
	if target <= next {
		// Nothing to skip — including the unbounded-Run-with-no-work case
		// (target < 0), where the ticker must stay free-running.
		return
	}
	k.ticks += uint64(k.ticker.SkipTo(target))
}

// after schedules fn to run at the first tick at or after d from now.
// Returns the entry handle (sequence number) for diagnostics.
func (k *Kernel) after(d sysc.Time, fn func()) uint64 {
	when := k.sim.Now() + d
	if k.ticker != nil && k.tickDelay == nil {
		// Backstop for deadlines created outside the simulation (service
		// calls between Start steps): if the ticker was fast-forwarded past
		// this deadline's tick, pull it back and undo the skip credit.
		k.ticks -= uint64(k.ticker.EnsureFire(when))
	}
	return k.timerQ.add(when, fn)
}

// SystemTime returns the current system time (tk_get_tim).
func (k *Kernel) SystemTime() sysc.Time { return k.sysBase + k.sim.Now() }

// SetSystemTime sets the current system time (tk_set_tim).
func (k *Kernel) SetSystemTime(t sysc.Time) { k.sysBase = t - k.sim.Now() }

// --- service-call machinery ---

// caller returns the task whose body invoked the current service call, or
// nil when the call comes from a handler or a plain simulation process.
func (k *Kernel) caller() *Task {
	tt := k.api.ExecutingThread()
	if tt == nil {
		return nil
	}
	if task, ok := tt.Exinf().(*Task); ok && tt.Kind() == core.KindTask {
		return task
	}
	return nil
}

// enterSvc is the service-call prologue: it locks dispatching for the
// duration of the call body (service-call atomicity), publishes the enter
// event and charges the service ETM/EEM annotation to the calling T-THREAD.
// Every service pairs it with a deferred exitSvc over a named ER result, so
// the exit event carries the resolved return code on every path — including
// early E_ID/E_NOEXS error returns.
func (k *Kernel) enterSvc(name string) {
	tt := k.api.ExecutingThread()
	if tt != nil {
		// A preempted caller must be dispatched again before it may begin
		// an atomic service body (see TThread.AwaitCPU).
		tt.AwaitCPU()
	}
	k.api.LockDispatch()
	if k.bus.Wants(event.KindSvcEnter) {
		k.bus.Publish(event.Event{Kind: event.KindSvcEnter,
			Time: k.sim.Now(), Thread: threadName(tt), Obj: name})
	}
	if tt != nil {
		tt.Consume(k.cfg.Costs.Service, trace.CtxService, name)
	}
}

// exitSvc is the service-call epilogue: it publishes the exit event with the
// resolved error code and releases the dispatch lock.
func (k *Kernel) exitSvc(name string, er *ER) {
	if k.bus.Wants(event.KindSvcExit) {
		k.bus.Publish(event.Event{Kind: event.KindSvcExit,
			Time: k.sim.Now(), Thread: threadName(k.api.ExecutingThread()),
			Obj: name, Code: int(*er)})
	}
	k.api.UnlockDispatch()
}

// threadName names a T-THREAD, tolerating nil (handler/boot contexts).
func threadName(tt *core.TThread) string {
	if tt == nil {
		return ""
	}
	return tt.Name()
}

// blockCheck validates that the executing context may issue a blocking wait
// with the given timeout: only task context, outside handlers, with
// dispatching enabled beyond the service's own lock. It returns the calling
// task, or an error code.
func (k *Kernel) blockCheck(tmout TMO) (*Task, ER) {
	if tmout < TmoFevr {
		return nil, EPAR
	}
	if k.api.InHandler() {
		return nil, ECTX
	}
	task := k.caller()
	if task == nil {
		return nil, ECTX
	}
	return task, EOK
}

// armedWait is a committed-but-not-yet-blocked wait: the task is on its
// object's wait queue with the timeout armed, and the caller must complete
// the wait (block on obj, then endSleep) on its engine's blocking path.
// Each Task embeds one (a task waits on at most one object), so arming a
// wait never allocates.
type armedWait struct {
	task *Task
	obj  string
}

// armSleep is the first half of sleepOn: it commits the calling task to a
// wait (seq-based timeout invalidation guarantees a stale timeout never
// releases a newer wait of the same task) and returns the armed wait for
// the engine-specific blocking path to complete.
func (k *Kernel) armSleep(task *Task, obj string, tmout TMO, cancel func()) *armedWait {
	task.waitSeq++
	seq := task.waitSeq
	task.waitCancel = cancel
	if tmout >= 0 {
		k.after(tmout, func() {
			if task.waitSeq == seq && task.tt.State() != core.StateDormant {
				if task.waitCancel != nil {
					task.waitCancel()
					task.waitCancel = nil
				}
				k.api.Release(task.tt, ETMOUT)
			}
		})
	}
	task.aw.task = task
	task.aw.obj = obj
	return &task.aw
}

// endSleep is the second half of sleepOn, run after the block completes
// under the re-acquired dispatch lock: it invalidates any outstanding
// timeout and resolves the release code.
func (k *Kernel) endSleep(task *Task, err error) ER {
	task.waitSeq++
	task.waitCancel = nil
	return erOf(err)
}

// finish completes a split service body on the goroutine engine. A body
// that did not arm a wait just yields its code; one that did is blocked
// here with the service's dispatch lock released around the wait
// (atomicity covers the call body up to the block) and re-acquired
// afterwards. The continuation engine's machine replaces this with
// StepBlock at the same point.
func (k *Kernel) finish(er ER, aw *armedWait) ER {
	if aw == nil {
		return er
	}
	k.api.UnlockDispatch()
	err := k.api.BlockCurrent(aw.obj)
	k.api.LockDispatch()
	return k.endSleep(aw.task, err)
}

// sleepOn blocks the calling task on a kernel object with an optional
// timeout and returns the wait release code (armSleep + finish in one
// step, for services that are not split onto the program IR).
func (k *Kernel) sleepOn(task *Task, obj string, tmout TMO, cancel func()) ER {
	return k.finish(EOK, k.armSleep(task, obj, tmout, cancel))
}

// engineCompiled reports whether this kernel compiles program-IR bodies to
// continuation machines instead of interpreting them on goroutines.
func (k *Kernel) engineCompiled() bool {
	return k.cfg.Engine == opts.EngineContinuation
}

// wake releases a waiting task with the given code, invalidating its
// timeout entry and wait-queue bookkeeping.
func (k *Kernel) wake(task *Task, code ER) {
	task.waitSeq++
	task.waitCancel = nil
	if code == EOK {
		k.api.Release(task.tt, nil)
	} else {
		k.api.Release(task.tt, code)
	}
}

// timerQueue is the kernel's time-event queue: entries fire in (when, seq)
// order when the timer handler observes their deadline at a tick. It is a
// binary min-heap on (when, seq), so add/pop are O(log n) and the earliest
// deadline — which the tickless fast-forward consults at every quiescent
// point — is O(1).
type timerQueue struct {
	items []timerItem
	seq   uint64
}

type timerItem struct {
	when sysc.Time
	seq  uint64
	fn   func()
}

func (q *timerQueue) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

func (q *timerQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *timerQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
}

func (q *timerQueue) add(when sysc.Time, fn func()) uint64 {
	q.seq++
	q.items = append(q.items, timerItem{when: when, seq: q.seq, fn: fn})
	q.up(len(q.items) - 1)
	return q.seq
}

// popDue removes and returns the earliest entry with when <= now.
func (q *timerQueue) popDue(now sysc.Time) (timerItem, bool) {
	if len(q.items) == 0 || q.items[0].when > now {
		return timerItem{}, false
	}
	it := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = timerItem{} // drop the fn reference
	q.items = q.items[:last]
	q.down(0)
	return it, true
}

// earliest returns the earliest pending deadline.
func (q *timerQueue) earliest() (sysc.Time, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].when, true
}

// Len returns the number of pending time events.
func (q *timerQueue) Len() int { return len(q.items) }

// waitQueue orders tasks waiting on a kernel object, FIFO or by priority
// according to the object's attributes. It is an intrusive doubly-linked
// list threaded through the wqNext/wqPrev links embedded in each Task — a
// task waits on at most one object, so one embedded node suffices — making
// add and remove O(1) for FIFO queues and alloc-free ordered inserts for
// TA_TPRI queues. The embedded wqIn back-pointer makes remove-if-absent a
// no-op and lets priority changes relocate a waiter without rebuilding
// anything.
//
// A waitQueue must not be copied once tasks are linked (the links point
// back at it); kernel objects embed it by value and never move.
type waitQueue struct {
	first, last *Task
	n           int
	prio        bool
	mtx         *Mutex // owning mutex, for inheritance recompute on re-sort
}

func newWaitQueue(attr Attr) waitQueue { return waitQueue{prio: attr&TaTPRI != 0} }

// add inserts t: at the tail for FIFO queues, or before the first strictly
// lower-precedence waiter for TA_TPRI queues (FIFO within equal priority,
// per T-Kernel). An already-queued task is relocated.
func (q *waitQueue) add(t *Task) {
	if t.wqIn != nil {
		t.wqIn.remove(t)
	}
	if q.prio {
		p := t.tt.Priority()
		for x := q.first; x != nil; x = x.wqNext {
			if p < x.tt.Priority() {
				q.insertBefore(t, x)
				return
			}
		}
	}
	// FIFO tail (also the TA_TPRI "no lower-precedence waiter" case).
	t.wqNext = nil
	t.wqPrev = q.last
	if q.last != nil {
		q.last.wqNext = t
	} else {
		q.first = t
	}
	q.last = t
	t.wqIn = q
	q.n++
}

// insertBefore links t immediately ahead of x (x must be queued here).
func (q *waitQueue) insertBefore(t, x *Task) {
	t.wqNext = x
	t.wqPrev = x.wqPrev
	if x.wqPrev != nil {
		x.wqPrev.wqNext = t
	} else {
		q.first = t
	}
	x.wqPrev = t
	t.wqIn = q
	q.n++
}

// remove unlinks t; no-op when t is not queued here.
func (q *waitQueue) remove(t *Task) {
	if t.wqIn != q {
		return
	}
	if t.wqPrev != nil {
		t.wqPrev.wqNext = t.wqNext
	} else {
		q.first = t.wqNext
	}
	if t.wqNext != nil {
		t.wqNext.wqPrev = t.wqPrev
	} else {
		q.last = t.wqPrev
	}
	t.wqNext, t.wqPrev, t.wqIn = nil, nil, nil
	q.n--
}

func (q *waitQueue) head() *Task { return q.first }

func (q *waitQueue) len() int { return q.n }

// drain repeatedly removes the queue head and hands it to fn (the Del*
// release-everybody pattern; safe against fn mutating the queue).
func (q *waitQueue) drain(fn func(*Task)) {
	for t := q.first; t != nil; t = q.first {
		q.remove(t)
		fn(t)
	}
}

// ids of waiting tasks in queue order, for invariant snapshots.
func (q *waitQueue) ids() []ID {
	var out []ID
	for t := q.first; t != nil; t = t.wqNext {
		out = append(out, t.id)
	}
	return out
}

// prios of waiting tasks in queue order, for invariant snapshots.
func (q *waitQueue) prios() []int {
	var out []int
	for t := q.first; t != nil; t = t.wqNext {
		out = append(out, t.tt.Priority())
	}
	return out
}

// names of waiting tasks, for DS listings.
func (q *waitQueue) names() []string {
	var out []string
	for t := q.first; t != nil; t = t.wqNext {
		out = append(out, t.name)
	}
	return out
}

// refs returns the unified per-waiter view in queue order.
func (q *waitQueue) refs() []WaitRef {
	var out []WaitRef
	for t := q.first; t != nil; t = t.wqNext {
		out = append(out, WaitRef{ID: t.id, Name: t.name, Priority: t.tt.Priority()})
	}
	return out
}

// requeueWaiter re-files a waiting task within its priority-ordered wait
// queue after its effective priority changed (tk_chg_pri on a waiter, or a
// priority-inheritance boost reaching a task that is itself blocked): the
// node is moved to the tail of its new precedence group. When the queue
// belongs to an inheritance mutex, a head change re-propagates the boost to
// that mutex's owner.
func (k *Kernel) requeueWaiter(task *Task) {
	q := task.wqIn
	if q == nil || !q.prio {
		return
	}
	q.remove(task)
	q.add(task)
	if q.mtx != nil {
		k.recomputeInheritance(q.mtx)
	}
}

// setEffective applies an effective-priority change to a task and keeps its
// wait-queue position consistent.
func (k *Kernel) setEffective(task *Task, p int) {
	if p == task.tt.Priority() {
		return
	}
	k.api.SetEffectivePriority(task.tt, p)
	k.requeueWaiter(task)
}

// objName builds the wait-object label shown in traces and DS listings.
func objName(class string, id ID, name string) string {
	if name != "" {
		return fmt.Sprintf("%s#%d(%s)", class, id, name)
	}
	return fmt.Sprintf("%s#%d", class, id)
}
