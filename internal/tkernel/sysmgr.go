package tkernel

import "repro/internal/sysc"

// SysInfo is the tk_ref_sys snapshot.
type SysInfo struct {
	SystemTime  sysc.Time
	Tick        sysc.Time
	Ticks       uint64
	RunTask     string // name of the RUNNING task ("" if idle)
	InHandler   bool
	IntNesting  int
	DispatchDis bool
	Tasks       int
	Semaphores  int
	EventFlags  int
	Mutexes     int
	Mailboxes   int
	MsgBuffers  int
	FixedPools  int
	VarPools    int
	CyclicHdrs  int
	AlarmHdrs   int
	Ports       int
}

// VerInfo is the tk_ref_ver snapshot: identification of the simulated
// kernel specification.
type VerInfo struct {
	Maker   string
	Product string
	SpecVer string
	KernVer string
}

// RefVer returns kernel version information (tk_ref_ver).
func (k *Kernel) RefVer() VerInfo {
	return VerInfo{
		Maker:   "RTK-Spec (simulation model)",
		Product: "RTK-Spec TRON / T-Kernel-OS model",
		SpecVer: "µITRON 4.0 / T-Kernel 1.0",
		KernVer: "1.0.0",
	}
}

// RefSys returns a kernel state snapshot (tk_ref_sys).
func (k *Kernel) RefSys() SysInfo {
	info := SysInfo{
		SystemTime:  k.SystemTime(),
		Tick:        k.cfg.Tick,
		Ticks:       k.ticks,
		InHandler:   k.api.InHandler(),
		IntNesting:  k.api.InterruptDepth(),
		DispatchDis: k.disDsp,
		Tasks:       len(k.tasks),
		Semaphores:  len(k.sems),
		EventFlags:  len(k.flags),
		Mutexes:     len(k.mtxs),
		Mailboxes:   len(k.mbxs),
		MsgBuffers:  len(k.mbfs),
		FixedPools:  len(k.mpfs),
		VarPools:    len(k.mpls),
		CyclicHdrs:  len(k.cycs),
		AlarmHdrs:   len(k.alms),
		Ports:       len(k.pors),
	}
	if cur := k.api.Current(); cur != nil {
		info.RunTask = cur.Name()
	}
	return info
}

// DisDsp disables task dispatching (tk_dis_dsp). The running task keeps the
// processor until EnaDsp; interrupts still preempt.
func (k *Kernel) DisDsp() ER {
	if k.api.InHandler() {
		return ECTX
	}
	if tt := k.api.ExecutingThread(); tt != nil {
		tt.AwaitCPU()
	}
	if k.disDsp {
		return EOK
	}
	k.disDsp = true
	k.api.LockDispatch()
	return EOK
}

// EnaDsp re-enables task dispatching (tk_ena_dsp).
func (k *Kernel) EnaDsp() ER {
	if k.api.InHandler() {
		return ECTX
	}
	if !k.disDsp {
		return EOK
	}
	k.disDsp = false
	k.api.UnlockDispatch()
	return EOK
}

// TaskList returns the IDs of all existing tasks in ascending order.
func (k *Kernel) TaskList() []ID {
	out := make([]ID, 0, len(k.tasks))
	for id := range k.tasks {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Object-class ID listings for the debugger support layer.
func (k *Kernel) SemList() []ID { return idsOf(k.sems) }
func (k *Kernel) FlgList() []ID { return idsOf(k.flags) }
func (k *Kernel) MtxList() []ID { return idsOf(k.mtxs) }
func (k *Kernel) MbxList() []ID { return idsOf(k.mbxs) }
func (k *Kernel) MbfList() []ID { return idsOf(k.mbfs) }
func (k *Kernel) MpfList() []ID { return idsOf(k.mpfs) }
func (k *Kernel) MplList() []ID { return idsOf(k.mpls) }
func (k *Kernel) CycList() []ID { return idsOf(k.cycs) }
func (k *Kernel) AlmList() []ID { return idsOf(k.alms) }
func (k *Kernel) PorList() []ID { return idsOf(k.pors) }

// IntList returns the defined interrupt numbers in ascending order.
func (k *Kernel) IntList() []int {
	out := make([]int, 0, len(k.isrs))
	for n := range k.isrs {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func idsOf[T any](m map[ID]T) []ID {
	out := make([]ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
