package tkernel_test

import (
	"testing"

	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// Error paths under resource exhaustion: timed waits on dry pools and full
// message buffers must expire with E_TMOUT at exactly the requested time,
// forced release must deliver E_RLWAI, and in every case the wait queues
// (observed through the introspection snapshots) must be left clean.

func TestFixedPoolTimedGetTimesOut(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	k, sim := boot(t, func(k *tkernel.Kernel) {
		mpf, _ := k.CreMpf("p", tkernel.TaTFIFO, 1, 16)
		held, _ := k.GetMpf(mpf, tkernel.TmoPol)
		id, _ := k.CreTsk("waiter", 10, func(task *tkernel.Task) {
			_, code = k.GetMpf(mpf, 7*sysc.Ms)
			at = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(3 * sysc.Ms)
		// Mid-wait: the waiter must be queued on the pool.
		snaps := k.SnapshotFixedPools()
		if len(snaps) != 1 || len(snaps[0].Waiting) != 1 || snaps[0].Waiting[0].ID != id {
			t.Errorf("mid-wait snapshot: %+v", snaps)
		}
		_ = k.DlyTsk(10 * sysc.Ms)
		_ = k.RelMpf(mpf, held)
	})
	run(t, sim, 100*sysc.Ms)
	if code != tkernel.ETMOUT || at != 7*sysc.Ms {
		t.Fatalf("waiter got %v at %v, want E_TMOUT at 7 ms", code, at)
	}
	// Timeout must have removed the waiter from the queue, and accounting
	// must balance after the release.
	p := k.SnapshotFixedPools()[0]
	if len(p.Waiting) != 0 {
		t.Fatalf("stale waiter after timeout: %+v", p)
	}
	if p.Free+p.Outstanding != p.Total || p.Free != p.Total {
		t.Fatalf("pool accounting after release: %+v", p)
	}
}

func TestVariablePoolExhaustionPaths(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	k, sim := boot(t, func(k *tkernel.Kernel) {
		mpl, _ := k.CreMpl("v", tkernel.TaTFIFO, 128)
		big, _ := k.GetMpl(mpl, 120, tkernel.TmoPol)
		// Polling a carved-out arena fails immediately.
		if _, er := k.GetMpl(mpl, 64, tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("poll on carved arena: %v", er)
		}
		id, _ := k.CreTsk("waiter", 10, func(task *tkernel.Task) {
			_, code = k.GetMpl(mpl, 64, 5*sysc.Ms)
			at = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		snaps := k.SnapshotVariablePools()
		if len(snaps) != 1 || len(snaps[0].Waiting) != 1 || snaps[0].Waiting[0].ID != id {
			t.Errorf("mid-wait snapshot: %+v", snaps)
		}
		_ = k.DlyTsk(10 * sysc.Ms)
		_ = k.RelMpl(mpl, big)
	})
	run(t, sim, 100*sysc.Ms)
	if code != tkernel.ETMOUT || at != 5*sysc.Ms {
		t.Fatalf("waiter got %v at %v, want E_TMOUT at 5 ms", code, at)
	}
	p := k.SnapshotVariablePools()[0]
	if len(p.Waiting) != 0 {
		t.Fatalf("stale waiter after timeout: %+v", p)
	}
	if p.FreeBytes+p.AllocBytes != p.ArenaSize || p.AllocBytes != 0 {
		t.Fatalf("arena accounting after release: %+v", p)
	}
}

func TestMessageBufferSendTimeoutOnFullBuffer(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	k, sim := boot(t, func(k *tkernel.Kernel) {
		// 12 bytes: exactly one 8-byte message (+4 header); a second send
		// must block for space that never comes.
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 12, 8)
		if er := k.SndMbf(mbf, []byte("occupied"), tkernel.TmoPol); er != tkernel.EOK {
			t.Fatalf("fill: %v", er)
		}
		if er := k.SndMbf(mbf, []byte("poll"), tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("poll on full buffer: %v", er)
		}
		id, _ := k.CreTsk("sender", 10, func(task *tkernel.Task) {
			code = k.SndMbf(mbf, []byte("late"), 6*sysc.Ms)
			at = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		snaps := k.SnapshotMessageBuffers()
		if len(snaps) != 1 || len(snaps[0].SendWaiting) != 1 || snaps[0].SendWaiting[0].ID != id {
			t.Errorf("mid-wait snapshot: %+v", snaps)
		}
		_ = k.DlyTsk(10 * sysc.Ms)
		// The timed-out message must never have been enqueued.
		got, er := k.RcvMbf(mbf, tkernel.TmoPol)
		if er != tkernel.EOK || string(got) != "occupied" {
			t.Errorf("drain: %q %v", got, er)
		}
		if _, er := k.RcvMbf(mbf, tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("buffer should be empty: %v", er)
		}
	})
	run(t, sim, 100*sysc.Ms)
	if code != tkernel.ETMOUT || at != 6*sysc.Ms {
		t.Fatalf("sender got %v at %v, want E_TMOUT at 6 ms", code, at)
	}
	b := k.SnapshotMessageBuffers()[0]
	if len(b.SendWaiting) != 0 || len(b.RecvWaiting) != 0 {
		t.Fatalf("stale waiters after timeout: %+v", b)
	}
}

func TestRelWaiReleasesPoolWaiter(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	k, sim := boot(t, func(k *tkernel.Kernel) {
		mpf, _ := k.CreMpf("p", tkernel.TaTFIFO, 1, 16)
		held, _ := k.GetMpf(mpf, tkernel.TmoPol)
		id, _ := k.CreTsk("waiter", 10, func(task *tkernel.Task) {
			_, code = k.GetMpf(mpf, tkernel.TmoFevr)
			at = k.Sim().Now()
		})
		// Releasing a task that is not waiting is E_OBJ; unknown is E_NOEXS.
		if er := k.RelWai(id); er != tkernel.EOBJ {
			t.Errorf("RelWai on dormant: %v", er)
		}
		if er := k.RelWai(999); er != tkernel.ENOEXS {
			t.Errorf("RelWai on unknown: %v", er)
		}
		_ = k.StaTsk(id)
		_ = k.DlyTsk(4 * sysc.Ms)
		if er := k.RelWai(id); er != tkernel.EOK {
			t.Errorf("RelWai: %v", er)
		}
		_ = k.DlyTsk(1 * sysc.Ms)
		// The forced release must have dequeued the waiter: releasing the
		// held block now returns it to the free list instead of handing it
		// to a ghost waiter.
		_ = k.RelMpf(mpf, held)
	})
	run(t, sim, 100*sysc.Ms)
	if code != tkernel.ERLWAI || at != 4*sysc.Ms {
		t.Fatalf("waiter got %v at %v, want E_RLWAI at 4 ms", code, at)
	}
	p := k.SnapshotFixedPools()[0]
	if len(p.Waiting) != 0 || p.Free != p.Total || p.Outstanding != 0 {
		t.Fatalf("pool state after forced release: %+v", p)
	}
}

func TestRelWaiReleasesMessageBufferReceiver(t *testing.T) {
	var code tkernel.ER
	var got []byte
	k, sim := boot(t, func(k *tkernel.Kernel) {
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 64, 16)
		id, _ := k.CreTsk("rcv", 10, func(task *tkernel.Task) {
			got, code = k.RcvMbf(mbf, tkernel.TmoFevr)
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(3 * sysc.Ms)
		if er := k.RelWai(id); er != tkernel.EOK {
			t.Errorf("RelWai: %v", er)
		}
		_ = k.DlyTsk(1 * sysc.Ms)
		// A message sent after the forced release must stay queued: the
		// released receiver's delivery slot is gone.
		if er := k.SndMbf(mbf, []byte("after"), tkernel.TmoPol); er != tkernel.EOK {
			t.Errorf("send after release: %v", er)
		}
	})
	run(t, sim, 100*sysc.Ms)
	if code != tkernel.ERLWAI || got != nil {
		t.Fatalf("receiver got %q, %v, want nil, E_RLWAI", got, code)
	}
	b := k.SnapshotMessageBuffers()[0]
	if len(b.RecvWaiting) != 0 || b.Messages != 1 {
		t.Fatalf("buffer state after forced release: %+v", b)
	}
}
