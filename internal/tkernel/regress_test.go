package tkernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// Regression: a task preempted in the zero-time window between annotated
// steps must not begin a new atomic service body (dispatch lock) until it
// is dispatched again; this scenario deadlocked before TThread.AwaitCPU.
func TestProducerConsumerDefaultCosts(t *testing.T) {
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.DefaultCosts()})
	produced, consumed := 0, 0
	k.Boot(func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("items", tkernel.TaTFIFO, 0, 16)
		c, _ := k.CreTsk("consumer", 10, func(task *tkernel.Task) {
			for {
				if er := k.WaiSem(sem, 1, tkernel.TmoFevr); er != tkernel.EOK {
					return
				}
				k.Work(core.Cost{Time: 2 * sysc.Ms, Energy: 40 * petri.MicroJ}, "consume")
				consumed++
			}
		})
		p, _ := k.CreTsk("producer", 12, func(task *tkernel.Task) {
			for i := 0; i < 50; i++ {
				k.Work(core.Cost{Time: 5 * sysc.Ms, Energy: 60 * petri.MicroJ}, "produce")
				_ = k.SigSem(sem, 1)
				produced++
				_ = k.DlyTsk(10 * sysc.Ms)
			}
		})
		_ = k.StaTsk(c)
		_ = k.StaTsk(p)
	})
	if err := sim.Start(500 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	t.Logf("produced=%d consumed=%d", produced, consumed)
	info, _ := k.RefTsk(2)
	t.Logf("producer: %+v", info)
	if produced < 20 {
		t.Fatalf("producer stalled: produced=%d", produced)
	}
}
