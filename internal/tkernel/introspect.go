package tkernel

import (
	"sort"

	"repro/internal/core"
)

// This file is the kernel's invariant-introspection surface: deterministic
// (ID-sorted) structural snapshots of kernel objects, consumed by the chaos
// oracle layer (internal/chaos) to check wait-queue membership, priority
// inheritance, and resource accounting live during a simulation. Snapshots
// expose object identity and bookkeeping that the tk_ref_* services
// deliberately omit (task IDs instead of names, queue-order priorities,
// outstanding-block counts).

// TaskSnapshot is one task's scheduling state for invariant checking.
type TaskSnapshot struct {
	ID           ID
	Name         string
	State        core.State
	Priority     int // current (possibly boosted) priority
	BasePriority int
	WaitObj      string // objName of the blocking object ("" if none)
	WupCount     int
}

// SnapshotTasks returns all tasks (including the INIT task, ID 0) sorted by
// ID.
func (k *Kernel) SnapshotTasks() []TaskSnapshot {
	out := make([]TaskSnapshot, 0, len(k.tasks))
	for id, t := range k.tasks {
		out = append(out, TaskSnapshot{
			ID:           id,
			Name:         t.name,
			State:        t.tt.State(),
			Priority:     t.tt.Priority(),
			BasePriority: t.tt.BasePriority(),
			WaitObj:      t.tt.WaitObject(),
			WupCount:     t.wupCount,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MutexSnapshot is one mutex's ownership state for invariant checking.
type MutexSnapshot struct {
	ID           ID
	Name         string
	Attr         Attr
	Ceiling      int
	Owner        ID // 0 = unlocked (the INIT task never owns mutexes)
	HasOwner     bool
	Waiting      []ID  // queue order
	WaitingPrios []int // current priorities, queue order
}

// SnapshotMutexes returns all mutexes sorted by ID.
func (k *Kernel) SnapshotMutexes() []MutexSnapshot {
	out := make([]MutexSnapshot, 0, len(k.mtxs))
	for id, m := range k.mtxs {
		s := MutexSnapshot{
			ID: id, Name: m.name, Attr: m.attr, Ceiling: m.ceiling,
			Waiting: m.wq.ids(), WaitingPrios: m.wq.prios(),
		}
		if m.owner != nil {
			s.Owner = m.owner.id
			s.HasOwner = true
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SemSnapshot is one semaphore's counting state for invariant checking.
type SemSnapshot struct {
	ID       ID
	Name     string
	Count    int
	MaxCount int
	Waiting  []ID
	HeadNeed int // resource request of the queue head (0 when no waiters)
}

// SnapshotSemaphores returns all semaphores sorted by ID.
func (k *Kernel) SnapshotSemaphores() []SemSnapshot {
	out := make([]SemSnapshot, 0, len(k.sems))
	for id, s := range k.sems {
		snap := SemSnapshot{ID: id, Name: s.name, Count: s.count,
			MaxCount: s.maxSem, Waiting: s.wq.ids()}
		if h := s.wq.head(); h != nil {
			snap.HeadNeed = s.pending[h]
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FixedPoolSnapshot is one fixed pool's accounting for invariant checking.
type FixedPoolSnapshot struct {
	ID          ID
	Name        string
	Total       int // block count at creation
	Free        int // blocks on the free list
	Outstanding int // blocks handed out and not yet returned
	Waiting     []ID
}

// SnapshotFixedPools returns all fixed-size pools sorted by ID.
func (k *Kernel) SnapshotFixedPools() []FixedPoolSnapshot {
	out := make([]FixedPoolSnapshot, 0, len(k.mpfs))
	for id, p := range k.mpfs {
		out = append(out, FixedPoolSnapshot{
			ID: id, Name: p.name, Total: p.blkcnt, Free: len(p.free),
			Outstanding: p.outstanding, Waiting: p.wq.ids(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VariablePoolSnapshot is one variable pool's accounting for invariant
// checking.
type VariablePoolSnapshot struct {
	ID         ID
	Name       string
	ArenaSize  int
	FreeBytes  int // total free-hole bytes
	AllocBytes int // bytes currently carved out (payload + headers)
	Waiting    []ID
}

// SnapshotVariablePools returns all variable-size pools sorted by ID.
func (k *Kernel) SnapshotVariablePools() []VariablePoolSnapshot {
	out := make([]VariablePoolSnapshot, 0, len(k.mpls))
	for id, p := range k.mpls {
		s := VariablePoolSnapshot{ID: id, Name: p.name,
			ArenaSize: len(p.arena), AllocBytes: p.allocBytes,
			Waiting: p.wq.ids()}
		for _, h := range p.holes {
			s.FreeBytes += h.size
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MbfSnapshot is one message buffer's queue state for invariant checking.
type MbfSnapshot struct {
	ID          ID
	Name        string
	BufSize     int
	UsedBytes   int
	Messages    int
	SendWaiting []ID
	RecvWaiting []ID
}

// SnapshotMessageBuffers returns all message buffers sorted by ID.
func (k *Kernel) SnapshotMessageBuffers() []MbfSnapshot {
	out := make([]MbfSnapshot, 0, len(k.mbfs))
	for id, b := range k.mbfs {
		out = append(out, MbfSnapshot{
			ID: id, Name: b.name, BufSize: b.bufsz, UsedBytes: b.used,
			Messages: len(b.msgs), SendWaiting: b.sendQ.ids(),
			RecvWaiting: b.recvQ.ids(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InjectPoolLeak corrupts a fixed pool's bookkeeping for oracle self-testing:
// it removes one block from the free list without recording it as
// outstanding, modeling a kernel accounting bug (a leaked block). The pool
// accounting oracle must flag the pool afterwards. Chaos campaigns use it to
// prove the oracle layer catches real defects; it has no legitimate use in a
// model of a correct kernel.
func (k *Kernel) InjectPoolLeak(id ID) ER {
	p, ok := k.mpfs[id]
	if !ok {
		return ENOEXS
	}
	if len(p.free) == 0 {
		return EOBJ
	}
	p.free = p.free[:len(p.free)-1]
	return EOK
}
