package tkernel

import "sort"

// This file is the kernel's invariant-introspection surface: deterministic
// (ID-sorted) structural snapshots of kernel objects, consumed by the chaos
// oracle layer (internal/chaos) to check wait-queue membership, priority
// inheritance, and resource accounting live during a simulation. The
// snapshot path and the tk_ref_* services return the same unified views
// (TaskInfo, SemInfo, MutexInfo, ...): object identity, queue-order waiter
// priorities and bookkeeping counters are part of every view, so there is a
// single source of truth for kernel-object state.

// WaitRef identifies one waiting task in a kernel object's queue, in queue
// order: its ID, name and current (possibly boosted) priority.
type WaitRef struct {
	ID       ID
	Name     string
	Priority int
}

// SnapshotTasks returns all tasks (including the INIT task, ID 0) sorted by
// ID.
func (k *Kernel) SnapshotTasks() []TaskInfo {
	out := make([]TaskInfo, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, k.taskInfo(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotMutexes returns all mutexes sorted by ID.
func (k *Kernel) SnapshotMutexes() []MutexInfo {
	out := make([]MutexInfo, 0, len(k.mtxs))
	for _, m := range k.mtxs {
		out = append(out, k.mtxInfo(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotSemaphores returns all semaphores sorted by ID.
func (k *Kernel) SnapshotSemaphores() []SemInfo {
	out := make([]SemInfo, 0, len(k.sems))
	for _, s := range k.sems {
		out = append(out, k.semInfo(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotFixedPools returns all fixed-size pools sorted by ID.
func (k *Kernel) SnapshotFixedPools() []FixedPoolInfo {
	out := make([]FixedPoolInfo, 0, len(k.mpfs))
	for _, p := range k.mpfs {
		out = append(out, k.mpfInfo(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotVariablePools returns all variable-size pools sorted by ID.
func (k *Kernel) SnapshotVariablePools() []VariablePoolInfo {
	out := make([]VariablePoolInfo, 0, len(k.mpls))
	for _, p := range k.mpls {
		out = append(out, k.mplInfo(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotMessageBuffers returns all message buffers sorted by ID.
func (k *Kernel) SnapshotMessageBuffers() []MessageBufferInfo {
	out := make([]MessageBufferInfo, 0, len(k.mbfs))
	for _, b := range k.mbfs {
		out = append(out, k.mbfInfo(b))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InjectPoolLeak corrupts a fixed pool's bookkeeping for oracle self-testing:
// it removes one block from the free list without recording it as
// outstanding, modeling a kernel accounting bug (a leaked block). The pool
// accounting oracle must flag the pool afterwards. Chaos campaigns use it to
// prove the oracle layer catches real defects; it has no legitimate use in a
// model of a correct kernel.
func (k *Kernel) InjectPoolLeak(id ID) ER {
	p, ok := k.mpfs[id]
	if !ok {
		return ENOEXS
	}
	if len(p.free) == 0 {
		return EOBJ
	}
	p.free = p.free[:len(p.free)-1]
	return EOK
}
