package tkernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

func TestCyclicHandlerFires(t *testing.T) {
	var fires []sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		cyc, er := k.CreCyc("H1", 10*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
			fires = append(fires, h.Now())
		})
		if er != tkernel.EOK {
			t.Fatalf("CreCyc: %v", er)
		}
		_ = k.StaCyc(cyc)
	})
	run(t, sim, 45*sysc.Ms)
	want := []sysc.Time{10 * sysc.Ms, 20 * sysc.Ms, 30 * sysc.Ms, 40 * sysc.Ms}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestCyclicHandlerPhase(t *testing.T) {
	var first sysc.Time = -1
	_, sim := boot(t, func(k *tkernel.Kernel) {
		cyc, _ := k.CreCyc("H", 10*sysc.Ms, 3*sysc.Ms, func(h *tkernel.HandlerCtx) {
			if first < 0 {
				first = h.Now()
			}
		})
		_ = k.StaCyc(cyc)
	})
	run(t, sim, 30*sysc.Ms)
	if first != 3*sysc.Ms {
		t.Fatalf("first fire at %v, want phase 3 ms", first)
	}
}

func TestStpCycStopsFiring(t *testing.T) {
	count := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		var cyc tkernel.ID
		cyc, _ = k.CreCyc("H", 5*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
			count++
		})
		_ = k.StaCyc(cyc)
		_ = k.DlyTsk(12 * sysc.Ms) // two fires (5, 10)
		_ = k.StpCyc(cyc)
		info, _ := k.RefCyc(cyc)
		if info.Active {
			t.Error("still active after StpCyc")
		}
	})
	run(t, sim, 100*sysc.Ms)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestCyclicHandlerPreemptsTask(t *testing.T) {
	// A cyclic handler borrows the CPU from the running task; the task's
	// wall-clock completion stretches by the handler's execution time.
	var taskEnd sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		cyc, _ := k.CreCyc("H", 10*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 2 * sysc.Ms}, "cyclic-work")
		})
		_ = k.StaCyc(cyc)
		id, _ := k.CreTsk("T", 10, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 20 * sysc.Ms}, "long")
			taskEnd = k.Sim().Now()
		})
		_ = k.StaTsk(id)
	})
	run(t, sim, sysc.Sec)
	// Task needs 20 ms CPU; handlers at 10 and 20 (and one at 30 lands
	// while the task still needs time stolen back): fires at 10 & 20 steal
	// 2x2 ms -> task ends at 24 ms.
	if taskEnd != 24*sysc.Ms {
		t.Fatalf("task ended at %v, want 24 ms", taskEnd)
	}
}

func TestCyclicOverrunCounted(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		var cyc tkernel.ID
		cyc, _ = k.CreCyc("H", 5*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 12 * sysc.Ms}, "too-long") // longer than period
		})
		_ = k.StaCyc(cyc)
		_ = k.DlyTsk(30 * sysc.Ms)
		info, _ := k.RefCyc(cyc)
		if info.Overruns == 0 {
			t.Error("overruns not counted")
		}
	})
	run(t, sim, 100*sysc.Ms)
}

func TestAlarmHandlerOneShot(t *testing.T) {
	var fires []sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		alm, er := k.CreAlm("H2", func(h *tkernel.HandlerCtx) {
			fires = append(fires, h.Now())
		})
		if er != tkernel.EOK {
			t.Fatalf("CreAlm: %v", er)
		}
		_ = k.StaAlm(alm, 7*sysc.Ms)
	})
	run(t, sim, 50*sysc.Ms)
	if len(fires) != 1 || fires[0] != 7*sysc.Ms {
		t.Fatalf("fires = %v, want one at 7 ms", fires)
	}
}

func TestAlarmRearmReplaces(t *testing.T) {
	var fires []sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		alm, _ := k.CreAlm("A", func(h *tkernel.HandlerCtx) {
			fires = append(fires, h.Now())
		})
		_ = k.StaAlm(alm, 20*sysc.Ms)
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.StaAlm(alm, 3*sysc.Ms) // replaces: fires at 5, not 20
	})
	run(t, sim, 50*sysc.Ms)
	if len(fires) != 1 || fires[0] != 5*sysc.Ms {
		t.Fatalf("fires = %v, want one at 5 ms", fires)
	}
}

func TestStpAlmCancels(t *testing.T) {
	count := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		alm, _ := k.CreAlm("A", func(h *tkernel.HandlerCtx) { count++ })
		_ = k.StaAlm(alm, 10*sysc.Ms)
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.StpAlm(alm)
	})
	run(t, sim, 50*sysc.Ms)
	if count != 0 {
		t.Fatalf("alarm fired %d times after stop", count)
	}
}

func TestHandlerCannotBlock(t *testing.T) {
	var code tkernel.ER = tkernel.EOK
	_, sim := boot(t, func(k *tkernel.Kernel) {
		alm, _ := k.CreAlm("A", func(h *tkernel.HandlerCtx) {
			code = h.K.SlpTsk(tkernel.TmoFevr) // blocking from handler: E_CTX
		})
		_ = k.StaAlm(alm, 5*sysc.Ms)
	})
	run(t, sim, 50*sysc.Ms)
	if code != tkernel.ECTX {
		t.Fatalf("blocking in handler = %v, want E_CTX", code)
	}
}

func TestHandlerWakesTaskWithDelayedDispatch(t *testing.T) {
	// The paper's delayed-dispatching rule: a handler waking a high-priority
	// task does not dispatch until the handler returns.
	var wokeAt sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("sleeper", 5, func(task *tkernel.Task) {
			_ = k.SlpTsk(tkernel.TmoFevr)
			wokeAt = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		alm, _ := k.CreAlm("A", func(h *tkernel.HandlerCtx) {
			_ = h.K.WupTsk(id)
			h.Work(core.Cost{Time: 3 * sysc.Ms}, "post-wakeup-work")
		})
		_ = k.StaAlm(alm, 10*sysc.Ms)
	})
	run(t, sim, sysc.Sec)
	if wokeAt != 13*sysc.Ms {
		t.Fatalf("woke at %v, want 13 ms (10 + 3 handler)", wokeAt)
	}
}

func TestExternalInterruptISR(t *testing.T) {
	var fired []sysc.Time
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(func(k *tkernel.Kernel) {
		_ = k.DefInt(3, "uart-isr", func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 1 * sysc.Ms}, "isr-body")
			fired = append(fired, h.Now())
		})
	})
	// External interrupt controller raising INT3.
	sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(5 * sysc.Ms)
		if er := k.RaiseInterrupt(3); er != tkernel.EOK {
			t.Errorf("raise: %v", er)
		}
		th.Wait(10 * sysc.Ms)
		_ = k.RaiseInterrupt(3)
	})
	t.Cleanup(sim.Shutdown)
	run(t, sim, 50*sysc.Ms)
	if len(fired) != 2 || fired[0] != 6*sysc.Ms || fired[1] != 16*sysc.Ms {
		t.Fatalf("fired = %v", fired)
	}
	info, _ := k.RefInt(3)
	if info.Fires != 2 || info.Missed != 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestRaiseUnknownInterrupt(t *testing.T) {
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(func(k *tkernel.Kernel) {})
	t.Cleanup(sim.Shutdown)
	if er := k.RaiseInterrupt(99); er != tkernel.ENOEXS {
		t.Fatalf("unknown interrupt: %v", er)
	}
}

func TestInterruptWhileISRRunningIsMissed(t *testing.T) {
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(func(k *tkernel.Kernel) {
		_ = k.DefInt(1, "slow-isr", func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 10 * sysc.Ms}, "slow")
		})
	})
	var second tkernel.ER
	sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = k.RaiseInterrupt(1)
		th.Wait(3 * sysc.Ms)
		second = k.RaiseInterrupt(1) // same ISR still running
	})
	t.Cleanup(sim.Shutdown)
	run(t, sim, 50*sysc.Ms)
	if second != tkernel.EQOVR {
		t.Fatalf("second raise = %v, want E_QOVR", second)
	}
	info, _ := k.RefInt(1)
	if info.Missed != 1 {
		t.Fatalf("missed = %d", info.Missed)
	}
}

func TestNestedInterruptsViaKernel(t *testing.T) {
	var order []string
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(func(k *tkernel.Kernel) {
		_ = k.DefInt(1, "isr-lo", func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 6 * sysc.Ms}, "lo")
			order = append(order, "lo")
		})
		_ = k.DefInt(2, "isr-hi", func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 1 * sysc.Ms}, "hi")
			order = append(order, "hi")
		})
	})
	sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = k.RaiseInterrupt(1)
		th.Wait(2 * sysc.Ms)
		_ = k.RaiseInterrupt(2) // nests inside isr-lo
	})
	t.Cleanup(sim.Shutdown)
	run(t, sim, 50*sysc.Ms)
	if len(order) != 2 || order[0] != "hi" || order[1] != "lo" {
		t.Fatalf("order = %v (nested ISR must finish first)", order)
	}
	if k.API().MaxInterruptDepth() != 2 {
		t.Fatalf("depth = %d", k.API().MaxInterruptDepth())
	}
}

func TestRefSysSnapshot(t *testing.T) {
	k, sim := boot(t, func(k *tkernel.Kernel) {
		_, _ = k.CreSem("s", tkernel.TaTFIFO, 1, 1)
		_, _ = k.CreFlg("f", tkernel.TaWMUL, 0)
		_, _ = k.CreMbx("m", tkernel.TaMFIFO)
		_, _ = k.CreTsk("w", 10, func(*tkernel.Task) {})
	})
	run(t, sim, 20*sysc.Ms)
	sys := k.RefSys()
	if sys.Semaphores != 1 || sys.EventFlags != 1 || sys.Mailboxes != 1 {
		t.Fatalf("counts: %+v", sys)
	}
	if sys.Tasks < 2 { // INIT + w
		t.Fatalf("tasks = %d", sys.Tasks)
	}
	if sys.Ticks == 0 || sys.Tick != sysc.Ms {
		t.Fatalf("tick data: %+v", sys)
	}
	ver := k.RefVer()
	if ver.Product == "" || ver.SpecVer == "" {
		t.Fatal("empty version info")
	}
}

func TestDisDspPreventsPreemption(t *testing.T) {
	var hiStart sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		hi, _ := k.CreTsk("hi", 1, func(task *tkernel.Task) {
			hiStart = k.Sim().Now()
		})
		lo, _ := k.CreTsk("lo", 20, func(task *tkernel.Task) {
			_ = k.DisDsp()
			k.Work(core.Cost{Time: 8 * sysc.Ms}, "protected")
			_ = k.StaTsk(hi) // would preempt, but dispatching disabled
			k.Work(core.Cost{Time: 4 * sysc.Ms}, "still-protected")
			_ = k.EnaDsp()
			k.Work(core.Cost{Time: 3 * sysc.Ms}, "preemptible")
		})
		_ = k.StaTsk(lo)
	})
	run(t, sim, sysc.Sec)
	if hiStart != 12*sysc.Ms {
		t.Fatalf("hi started at %v, want 12 ms (after EnaDsp)", hiStart)
	}
}

func TestTimerHandlerChargesNothingWithZeroCosts(t *testing.T) {
	k, sim := boot(t, func(k *tkernel.Kernel) {})
	run(t, sim, 100*sysc.Ms)
	if k.API().BusyTime() != 0 {
		t.Fatalf("busy = %v with zero costs and no tasks", k.API().BusyTime())
	}
}
