package tkernel

// MemBlock is a block handed out by a memory pool. Data is real usable
// memory backed by the pool arena.
type MemBlock struct {
	Data []byte
	pool ID   // owning pool id
	off  int  // arena offset (variable pools)
	idx  int  // block index (fixed pools)
	live bool // double-free guard
}

// FixedPool is a T-Kernel fixed-size memory pool (tk_cre_mpf family):
// blkcnt blocks of blksz bytes; tk_get_mpf blocks while exhausted.
type FixedPool struct {
	id          ID
	name        string
	attr        Attr
	blksz       int
	blkcnt      int
	free        []int // free block indexes (LIFO)
	outstanding int   // blocks currently handed out (accounting invariant)
	arena       []byte
	blocks      []*MemBlock
	wq          waitQueue
	dst         map[*Task]**MemBlock
}

// FixedPoolInfo is the tk_ref_mpf snapshot.
type FixedPoolInfo struct {
	ID          ID
	Name        string
	BlockSize   int
	Total       int // block count at creation
	Free        int // blocks on the free list
	Outstanding int // blocks handed out and not yet returned
	Waiting     []WaitRef
}

// CreMpf creates a fixed-size pool (tk_cre_mpf).
func (k *Kernel) CreMpf(name string, attr Attr, blkcnt, blksz int) (_ ID, er ER) {
	k.enterSvc("tk_cre_mpf")
	defer k.exitSvc("tk_cre_mpf", &er)
	if blkcnt <= 0 || blksz <= 0 {
		return 0, EPAR
	}
	k.nextMpf++
	id := k.nextMpf
	p := &FixedPool{
		id: id, name: name, attr: attr, blksz: blksz, blkcnt: blkcnt,
		arena: make([]byte, blkcnt*blksz),
		wq:    newWaitQueue(attr),
		dst:   map[*Task]**MemBlock{},
	}
	p.blocks = make([]*MemBlock, blkcnt)
	for i := blkcnt - 1; i >= 0; i-- {
		p.free = append(p.free, i)
		p.blocks[i] = &MemBlock{pool: id, idx: i,
			Data: p.arena[i*blksz : (i+1)*blksz]}
	}
	k.mpfs[id] = p
	return id, EOK
}

// DelMpf deletes a fixed pool; waiters get E_DLT (tk_del_mpf).
func (k *Kernel) DelMpf(id ID) (er ER) {
	k.enterSvc("tk_del_mpf")
	defer k.exitSvc("tk_del_mpf", &er)
	p, ok := k.mpfs[id]
	if !ok {
		return ENOEXS
	}
	p.wq.drain(func(t *Task) {
		delete(p.dst, t)
		k.wake(t, EDLT)
	})
	delete(k.mpfs, id)
	return EOK
}

// GetMpf acquires one block, waiting up to tmout (tk_get_mpf).
func (k *Kernel) GetMpf(id ID, tmout TMO) (_ *MemBlock, er ER) {
	k.enterSvc("tk_get_mpf")
	defer k.exitSvc("tk_get_mpf", &er)
	var got *MemBlock
	er = k.finish(k.getMpfBody(id, tmout, &got))
	return got, er
}

// getMpfBody is the engine-split call body of GetMpf: the block is
// delivered through dst (nil on error paths).
func (k *Kernel) getMpfBody(id ID, tmout TMO, dst **MemBlock) (ER, *armedWait) {
	p, ok := k.mpfs[id]
	if !ok {
		return ENOEXS, nil
	}
	if p.wq.len() == 0 && len(p.free) > 0 {
		*dst = p.take()
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	p.wq.add(task)
	p.dst[task] = dst
	return EOK, k.armSleep(task, objName("mpf", p.id, p.name), tmout, func() {
		p.wq.remove(task)
		delete(p.dst, task)
	})
}

func (p *FixedPool) take() *MemBlock {
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	b := p.blocks[i]
	b.live = true
	p.outstanding++
	return b
}

// RelMpf returns a block to its pool (tk_rel_mpf); a waiting task is handed
// the block directly.
func (k *Kernel) RelMpf(id ID, b *MemBlock) (er ER) {
	k.enterSvc("tk_rel_mpf")
	defer k.exitSvc("tk_rel_mpf", &er)
	return k.relMpfBody(id, b)
}

// relMpfBody is the engine-split call body of RelMpf.
func (k *Kernel) relMpfBody(id ID, b *MemBlock) ER {
	p, ok := k.mpfs[id]
	if !ok {
		return ENOEXS
	}
	if b == nil || b.pool != id || !b.live {
		return EPAR
	}
	b.live = false
	if t := p.wq.head(); t != nil {
		// Direct handoff: the block stays outstanding, ownership moves.
		p.wq.remove(t)
		b.live = true
		*p.dst[t] = b
		delete(p.dst, t)
		k.wake(t, EOK)
		return EOK
	}
	p.free = append(p.free, b.idx)
	p.outstanding--
	return EOK
}

// RefMpf returns the fixed-pool state (tk_ref_mpf).
func (k *Kernel) RefMpf(id ID) (FixedPoolInfo, ER) {
	p, ok := k.mpfs[id]
	if !ok {
		return FixedPoolInfo{}, ENOEXS
	}
	return k.mpfInfo(p), EOK
}

// mpfInfo builds the unified view of one fixed pool.
func (k *Kernel) mpfInfo(p *FixedPool) FixedPoolInfo {
	return FixedPoolInfo{ID: p.id, Name: p.name, BlockSize: p.blksz,
		Total: p.blkcnt, Free: len(p.free), Outstanding: p.outstanding,
		Waiting: p.wq.refs()}
}

// VariablePool is a T-Kernel variable-size memory pool (tk_cre_mpl family)
// backed by a first-fit free-list allocator with coalescing over a real
// byte arena.
type VariablePool struct {
	id         ID
	name       string
	attr       Attr
	arena      []byte
	holes      []hole // sorted by offset, coalesced
	allocBytes int    // bytes currently carved out (accounting invariant)
	wq         waitQueue
	reqs       map[*Task]*mplReq
}

type hole struct{ off, size int }

type mplReq struct {
	size int
	dst  **MemBlock
}

// VariablePoolInfo is the tk_ref_mpl snapshot.
type VariablePoolInfo struct {
	ID         ID
	Name       string
	ArenaSize  int
	FreeBytes  int // total free-hole bytes (FreeBytes+AllocBytes == ArenaSize)
	FreeMax    int // largest contiguous allocatable (payload) size
	AllocBytes int // bytes currently carved out (payload + headers)
	Waiting    []WaitRef
}

// align rounds n up to 8 bytes (allocator granule).
func align(n int) int { return (n + 7) &^ 7 }

// CreMpl creates a variable-size pool of mplsz bytes (tk_cre_mpl).
func (k *Kernel) CreMpl(name string, attr Attr, mplsz int) (_ ID, er ER) {
	k.enterSvc("tk_cre_mpl")
	defer k.exitSvc("tk_cre_mpl", &er)
	if mplsz <= 0 {
		return 0, EPAR
	}
	mplsz = align(mplsz)
	k.nextMpl++
	id := k.nextMpl
	k.mpls[id] = &VariablePool{
		id: id, name: name, attr: attr,
		arena: make([]byte, mplsz),
		holes: []hole{{0, mplsz}},
		wq:    newWaitQueue(attr),
		reqs:  map[*Task]*mplReq{},
	}
	return id, EOK
}

// DelMpl deletes a variable pool; waiters get E_DLT (tk_del_mpl).
func (k *Kernel) DelMpl(id ID) (er ER) {
	k.enterSvc("tk_del_mpl")
	defer k.exitSvc("tk_del_mpl", &er)
	p, ok := k.mpls[id]
	if !ok {
		return ENOEXS
	}
	p.wq.drain(func(t *Task) {
		delete(p.reqs, t)
		k.wake(t, EDLT)
	})
	delete(k.mpls, id)
	return EOK
}

// alloc carves size bytes (plus an 8-byte header granule) first-fit.
func (p *VariablePool) alloc(size int) (*MemBlock, bool) {
	need := align(size) + 8
	for i, h := range p.holes {
		if h.size < need {
			continue
		}
		off := h.off
		if h.size == need {
			p.holes = append(p.holes[:i], p.holes[i+1:]...)
		} else {
			p.holes[i] = hole{off: h.off + need, size: h.size - need}
		}
		p.allocBytes += need
		return &MemBlock{
			pool: p.id, off: off, live: true,
			Data: p.arena[off+8 : off+need],
		}, true
	}
	return nil, false
}

// release returns a block's extent to the free list, coalescing neighbours.
func (p *VariablePool) release(b *MemBlock) {
	size := len(b.Data) + 8
	p.allocBytes -= size
	pos := len(p.holes)
	for i, h := range p.holes {
		if h.off > b.off {
			pos = i
			break
		}
	}
	p.holes = append(p.holes, hole{})
	copy(p.holes[pos+1:], p.holes[pos:])
	p.holes[pos] = hole{off: b.off, size: size}
	// Coalesce with next, then previous.
	if pos+1 < len(p.holes) && p.holes[pos].off+p.holes[pos].size == p.holes[pos+1].off {
		p.holes[pos].size += p.holes[pos+1].size
		p.holes = append(p.holes[:pos+1], p.holes[pos+2:]...)
	}
	if pos > 0 && p.holes[pos-1].off+p.holes[pos-1].size == p.holes[pos].off {
		p.holes[pos-1].size += p.holes[pos].size
		p.holes = append(p.holes[:pos], p.holes[pos+1:]...)
	}
}

// GetMpl allocates size bytes, waiting up to tmout while space is
// insufficient (tk_get_mpl).
func (k *Kernel) GetMpl(id ID, size int, tmout TMO) (_ *MemBlock, er ER) {
	k.enterSvc("tk_get_mpl")
	defer k.exitSvc("tk_get_mpl", &er)
	var got *MemBlock
	er = k.finish(k.getMplBody(id, size, tmout, &got))
	return got, er
}

// getMplBody is the engine-split call body of GetMpl: the block is
// delivered through dst (nil on error paths).
func (k *Kernel) getMplBody(id ID, size int, tmout TMO, dst **MemBlock) (ER, *armedWait) {
	p, ok := k.mpls[id]
	if !ok {
		return ENOEXS, nil
	}
	if size <= 0 || align(size)+8 > len(p.arena) {
		return EPAR, nil
	}
	if p.wq.len() == 0 {
		if b, ok := p.alloc(size); ok {
			*dst = b
			return EOK, nil
		}
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	p.wq.add(task)
	p.reqs[task] = &mplReq{size: size, dst: dst}
	return EOK, k.armSleep(task, objName("mpl", p.id, p.name), tmout, func() {
		p.wq.remove(task)
		delete(p.reqs, task)
	})
}

// RelMpl frees a block (tk_rel_mpl) and satisfies queued requests in order.
func (k *Kernel) RelMpl(id ID, b *MemBlock) (er ER) {
	k.enterSvc("tk_rel_mpl")
	defer k.exitSvc("tk_rel_mpl", &er)
	return k.relMplBody(id, b)
}

// relMplBody is the engine-split call body of RelMpl.
func (k *Kernel) relMplBody(id ID, b *MemBlock) ER {
	p, ok := k.mpls[id]
	if !ok {
		return ENOEXS
	}
	if b == nil || b.pool != id || !b.live {
		return EPAR
	}
	b.live = false
	p.release(b)
	// Grant queued requests in strict queue order while they fit.
	for {
		t := p.wq.head()
		if t == nil {
			return EOK
		}
		req := p.reqs[t]
		blk, ok := p.alloc(req.size)
		if !ok {
			return EOK
		}
		p.wq.remove(t)
		delete(p.reqs, t)
		*req.dst = blk
		k.wake(t, EOK)
	}
}

// RefMpl returns the variable-pool state (tk_ref_mpl).
func (k *Kernel) RefMpl(id ID) (VariablePoolInfo, ER) {
	p, ok := k.mpls[id]
	if !ok {
		return VariablePoolInfo{}, ENOEXS
	}
	return k.mplInfo(p), EOK
}

// mplInfo builds the unified view of one variable pool.
func (k *Kernel) mplInfo(p *VariablePool) VariablePoolInfo {
	info := VariablePoolInfo{ID: p.id, Name: p.name, ArenaSize: len(p.arena),
		AllocBytes: p.allocBytes, Waiting: p.wq.refs()}
	for _, h := range p.holes {
		info.FreeBytes += h.size
		if h.size > info.FreeMax {
			info.FreeMax = h.size
		}
	}
	if info.FreeMax >= 8 {
		info.FreeMax -= 8 // usable payload of the largest hole
	} else {
		info.FreeMax = 0
	}
	return info
}
