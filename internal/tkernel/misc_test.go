package tkernel_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

func TestErrorCodeNames(t *testing.T) {
	codes := map[tkernel.ER]string{
		tkernel.EOK: "E_OK", tkernel.ESYS: "E_SYS", tkernel.ENOSPT: "E_NOSPT",
		tkernel.ERSATR: "E_RSATR", tkernel.EPAR: "E_PAR", tkernel.EID: "E_ID",
		tkernel.ECTX: "E_CTX", tkernel.EILUSE: "E_ILUSE", tkernel.ENOMEM: "E_NOMEM",
		tkernel.ELIMIT: "E_LIMIT", tkernel.EOBJ: "E_OBJ", tkernel.ENOEXS: "E_NOEXS",
		tkernel.EQOVR: "E_QOVR", tkernel.ERLWAI: "E_RLWAI", tkernel.ETMOUT: "E_TMOUT",
		tkernel.EDLT: "E_DLT", tkernel.EDISWAI: "E_DISWAI",
	}
	for code, want := range codes {
		if code.Error() != want {
			t.Errorf("%d -> %q, want %q", int(code), code.Error(), want)
		}
	}
	if !tkernel.EOK.OK() || tkernel.EPAR.OK() {
		t.Fatal("OK() wrong")
	}
	if !strings.Contains(tkernel.ER(-999).Error(), "E_?") {
		t.Fatal("unknown code name")
	}
}

func TestObjectListsAndRefs(t *testing.T) {
	k, sim := boot(t, func(k *tkernel.Kernel) {
		_, _ = k.CreSem("s", tkernel.TaTFIFO, 1, 2)
		_, _ = k.CreFlg("f", tkernel.TaWMUL, 0)
		_, _ = k.CreMtx("m", tkernel.TaTFIFO, 0)
		mbx, _ := k.CreMbx("x", tkernel.TaMFIFO)
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 64, 16)
		_, _ = k.CreMpf("pf", tkernel.TaTFIFO, 2, 8)
		_, _ = k.CreMpl("pl", tkernel.TaTFIFO, 128)
		_, _ = k.CreCyc("c", 10*sysc.Ms, 0, func(*tkernel.HandlerCtx) {})
		alm, _ := k.CreAlm("a", func(*tkernel.HandlerCtx) {})
		_ = k.DefInt(3, "i", func(*tkernel.HandlerCtx) {})
		_, _ = k.CrePor("p", tkernel.TaTFIFO, 8, 8)
		_, _ = k.CreTsk("t", 10, func(*tkernel.Task) {})

		if len(k.TaskList()) < 2 || len(k.SemList()) != 1 || len(k.FlgList()) != 1 ||
			len(k.MtxList()) != 1 || len(k.MbxList()) != 1 || len(k.MbfList()) != 1 ||
			len(k.MpfList()) != 1 || len(k.MplList()) != 1 || len(k.CycList()) != 1 ||
			len(k.AlmList()) != 1 || len(k.PorList()) != 1 || len(k.IntList()) != 1 {
			t.Error("object lists incomplete")
		}
		if info, er := k.RefMbx(mbx); er != tkernel.EOK || info.Name != "x" {
			t.Errorf("RefMbx: %+v %v", info, er)
		}
		if info, er := k.RefMbf(mbf); er != tkernel.EOK || info.FreeBytes != 64 {
			t.Errorf("RefMbf: %+v %v", info, er)
		}
		if info, er := k.RefMtx(1); er != tkernel.EOK || info.OwnerName != "" {
			t.Errorf("RefMtx: %+v %v", info, er)
		}
		if info, er := k.RefAlm(alm); er != tkernel.EOK || info.Active {
			t.Errorf("RefAlm: %+v %v", info, er)
		}
	})
	run(t, sim, 20*sysc.Ms)
	if k.Tick() != sysc.Ms {
		t.Fatalf("Tick = %v", k.Tick())
	}
}

func TestDeleteObjectFamilies(t *testing.T) {
	var flgCode, mbxCode, mbfCode, mpfCode, mplCode tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		flg, _ := k.CreFlg("f", tkernel.TaWMUL, 0)
		mbx, _ := k.CreMbx("x", tkernel.TaMFIFO)
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 0, 8) // rendezvous buffer
		mpf, _ := k.CreMpf("pf", tkernel.TaTFIFO, 1, 8)
		mpl, _ := k.CreMpl("pl", tkernel.TaTFIFO, 64)
		// Exhaust the pools so waiters block.
		_, _ = k.GetMpf(mpf, tkernel.TmoPol)
		_, _ = k.GetMpl(mpl, 40, tkernel.TmoPol)

		mk := func(name string, fn func(*tkernel.Task)) {
			id, _ := k.CreTsk(name, 10, fn)
			_ = k.StaTsk(id)
		}
		mk("wf", func(task *tkernel.Task) { _, flgCode = k.WaiFlg(flg, 1, tkernel.TwfORW, tkernel.TmoFevr) })
		mk("wx", func(task *tkernel.Task) { _, mbxCode = k.RcvMbx(mbx, tkernel.TmoFevr) })
		mk("wb", func(task *tkernel.Task) { mbfCode = k.SndMbf(mbf, []byte("z"), tkernel.TmoFevr) })
		mk("wpf", func(task *tkernel.Task) { _, mpfCode = k.GetMpf(mpf, tkernel.TmoFevr) })
		mk("wpl", func(task *tkernel.Task) { _, mplCode = k.GetMpl(mpl, 40, tkernel.TmoFevr) })

		_ = k.DlyTsk(3 * sysc.Ms)
		if er := k.DelFlg(flg); er != tkernel.EOK {
			t.Errorf("DelFlg: %v", er)
		}
		if er := k.DelMbx(mbx); er != tkernel.EOK {
			t.Errorf("DelMbx: %v", er)
		}
		if er := k.DelMbf(mbf); er != tkernel.EOK {
			t.Errorf("DelMbf: %v", er)
		}
		if er := k.DelMpf(mpf); er != tkernel.EOK {
			t.Errorf("DelMpf: %v", er)
		}
		if er := k.DelMpl(mpl); er != tkernel.EOK {
			t.Errorf("DelMpl: %v", er)
		}
		// Deleting again: E_NOEXS.
		if er := k.DelFlg(flg); er != tkernel.ENOEXS {
			t.Errorf("DelFlg twice: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	for name, code := range map[string]tkernel.ER{
		"flg": flgCode, "mbx": mbxCode, "mbf": mbfCode,
		"mpf": mpfCode, "mpl": mplCode,
	} {
		if code != tkernel.EDLT {
			t.Errorf("%s waiter code = %v, want E_DLT", name, code)
		}
	}
}

func TestDelCycDelAlmStopFiring(t *testing.T) {
	fired := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		cyc, _ := k.CreCyc("c", 5*sysc.Ms, 0, func(*tkernel.HandlerCtx) { fired++ })
		_ = k.StaCyc(cyc)
		alm, _ := k.CreAlm("a", func(*tkernel.HandlerCtx) { fired++ })
		_ = k.StaAlm(alm, 20*sysc.Ms)
		_ = k.DlyTsk(7 * sysc.Ms) // one cyc fire
		if er := k.DelCyc(cyc); er != tkernel.EOK {
			t.Errorf("DelCyc: %v", er)
		}
		if er := k.DelAlm(alm); er != tkernel.EOK {
			t.Errorf("DelAlm: %v", er)
		}
		if er := k.DelCyc(cyc); er != tkernel.ENOEXS {
			t.Errorf("DelCyc twice: %v", er)
		}
	})
	run(t, sim, 100*sysc.Ms)
	if fired != 1 {
		t.Fatalf("fired = %d after deletion", fired)
	}
}

func TestTaskAccessorsAndTThread(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		var captured *tkernel.Task
		id, _ := k.CreTsk("acc", 10, func(task *tkernel.Task) {
			captured = task
			k.Work(core.Cost{Time: sysc.Ms}, "")
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(3 * sysc.Ms)
		if captured == nil {
			t.Fatal("task body never ran")
		}
		if captured.ID() != id || captured.Name() != "acc" {
			t.Errorf("accessors: id=%d name=%q", captured.ID(), captured.Name())
		}
		if captured.TThread() == nil || captured.TThread().CET() != sysc.Ms {
			t.Errorf("TThread CET = %v", captured.TThread().CET())
		}
	})
	run(t, sim, sysc.Sec)
}

func TestActTskCanActInPackage(t *testing.T) {
	runs := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("q", 10, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: sysc.Ms}, "")
			runs++
		})
		if er := k.ActTsk(id, 2); er != tkernel.EOK {
			t.Errorf("act 1: %v", er)
		}
		if er := k.ActTsk(id, 2); er != tkernel.EOK {
			t.Errorf("act 2 (queued): %v", er)
		}
		if er := k.ActTsk(id, 2); er != tkernel.EOK {
			t.Errorf("act 3 (queued): %v", er)
		}
		if er := k.ActTsk(id, 2); er != tkernel.EQOVR {
			t.Errorf("act 4 over max: %v", er)
		}
		if n, er := k.CanAct(id); er != tkernel.EOK || n != 2 {
			t.Errorf("can_act = %d %v", n, er)
		}
		if er := k.ActTsk(999, 2); er != tkernel.ENOEXS {
			t.Errorf("unknown: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if runs != 1 {
		t.Fatalf("runs = %d after cancel", runs)
	}
}

func TestMutexOwnerShownInRef(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mtx, _ := k.CreMtx("m", tkernel.TaTFIFO, 0)
		id, _ := k.CreTsk("owner", 10, func(task *tkernel.Task) {
			_ = k.LocMtx(mtx, tkernel.TmoFevr)
			k.Work(core.Cost{Time: 10 * sysc.Ms}, "")
			_ = k.UnlMtx(mtx)
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		info, _ := k.RefMtx(mtx)
		if info.OwnerName != "owner" {
			t.Errorf("owner = %q", info.OwnerName)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestGetTidOutsideTask(t *testing.T) {
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(func(*tkernel.Kernel) {})
	if err := sim.Start(5 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if id := k.GetTid(); id != 0 {
		t.Fatalf("GetTid outside task = %d", id)
	}
}
