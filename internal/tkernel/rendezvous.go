package tkernel

// Rendezvous ports are the T-Kernel/µITRON client-server synchronization
// object (tk_cre_por family): a client calls a port with a call pattern and
// a message (tk_cal_por) and blocks; a server accepts calls matching an
// accept pattern (tk_acp_por), obtains a rendezvous number, performs the
// service, and replies (tk_rpl_rdv), which releases the client with the
// reply message. The call timeout covers the establishment of the
// rendezvous only — once accepted, the client waits indefinitely for the
// reply, per the specification.

// Port is a rendezvous port.
type Port struct {
	id      ID
	name    string
	attr    Attr
	maxCMsz int // maximum call-message size
	maxRMsz int // maximum reply-message size

	callQ waitQueue // blocked callers
	acpQ  waitQueue // blocked acceptors

	calls map[*Task]*porCall
	acps  map[*Task]*porAcp
}

type porCall struct {
	calptn uint32
	msg    []byte
	reply  *[]byte // reply destination in the caller's frame
}

type porAcp struct {
	acpptn uint32
	rdvno  *RdvNo  // delivered rendezvous number
	msg    *[]byte // delivered call message
}

// RdvNo identifies an established rendezvous awaiting its reply.
type RdvNo uint64

// rendezvous is an accepted, unreplied call.
type rendezvous struct {
	client *Task
	reply  *[]byte
}

// PortInfo is the tk_ref_por snapshot.
type PortInfo struct {
	ID          ID
	Name        string
	CallWaiting []WaitRef
	AcceptWait  []WaitRef
	OpenRdv     int
}

// CrePor creates a rendezvous port (tk_cre_por).
func (k *Kernel) CrePor(name string, attr Attr, maxCMsz, maxRMsz int) (_ ID, er ER) {
	k.enterSvc("tk_cre_por")
	defer k.exitSvc("tk_cre_por", &er)
	if maxCMsz <= 0 || maxRMsz <= 0 {
		return 0, EPAR
	}
	k.nextPor++
	id := k.nextPor
	k.pors[id] = &Port{
		id: id, name: name, attr: attr, maxCMsz: maxCMsz, maxRMsz: maxRMsz,
		callQ: newWaitQueue(attr), acpQ: newWaitQueue(TaTFIFO),
		calls: map[*Task]*porCall{}, acps: map[*Task]*porAcp{},
	}
	return id, EOK
}

// DelPor deletes a port: queued callers and acceptors get E_DLT; clients in
// an established rendezvous also get E_DLT (tk_del_por).
func (k *Kernel) DelPor(id ID) (er ER) {
	k.enterSvc("tk_del_por")
	defer k.exitSvc("tk_del_por", &er)
	p, ok := k.pors[id]
	if !ok {
		return ENOEXS
	}
	p.callQ.drain(func(t *Task) {
		delete(p.calls, t)
		k.wake(t, EDLT)
	})
	p.acpQ.drain(func(t *Task) {
		delete(p.acps, t)
		k.wake(t, EDLT)
	})
	for no, r := range k.rdvs {
		if r.port == id {
			delete(k.rdvs, no)
			k.wake(r.rendezvous.client, EDLT)
		}
	}
	delete(k.pors, id)
	return EOK
}

// CalPor calls a port (tk_cal_por): block until a server accepts a call
// whose calptn intersects its accept pattern AND replies. The reply
// message is returned. tmout bounds rendezvous establishment only.
func (k *Kernel) CalPor(id ID, calptn uint32, msg []byte, tmout TMO) (_ []byte, er ER) {
	k.enterSvc("tk_cal_por")
	defer k.exitSvc("tk_cal_por", &er)
	p, ok := k.pors[id]
	if !ok {
		return nil, ENOEXS
	}
	if calptn == 0 || len(msg) > p.maxCMsz {
		return nil, EPAR
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return nil, er
	}
	own := make([]byte, len(msg))
	copy(own, msg)
	var reply []byte

	// A matching acceptor already waiting: establish immediately.
	if srv := p.matchAcceptor(calptn); srv != nil {
		acp := p.acps[srv]
		p.acpQ.remove(srv)
		delete(p.acps, srv)
		no := k.establish(p, task, &reply)
		*acp.rdvno = no
		*acp.msg = own
		k.wake(srv, EOK)
		// Rendezvous established: wait (unbounded) for the reply.
		code := k.sleepOn(task, objName("rdv", p.id, p.name), TmoFevr, func() {
			k.dropRdvOf(task)
		})
		return reply, code
	}

	if tmout == TmoPol {
		return nil, ETMOUT
	}
	p.callQ.add(task)
	p.calls[task] = &porCall{calptn: calptn, msg: own, reply: &reply}
	code := k.sleepOn(task, objName("por", p.id, p.name), tmout, func() {
		p.callQ.remove(task)
		delete(p.calls, task)
		k.dropRdvOf(task)
	})
	return reply, code
}

// AcpPor accepts a call on a port (tk_acp_por): returns the rendezvous
// number and the call message of the first queued caller whose pattern
// matches acpptn, blocking up to tmout when none is queued.
func (k *Kernel) AcpPor(id ID, acpptn uint32, tmout TMO) (_ RdvNo, _ []byte, er ER) {
	k.enterSvc("tk_acp_por")
	defer k.exitSvc("tk_acp_por", &er)
	p, ok := k.pors[id]
	if !ok {
		return 0, nil, ENOEXS
	}
	if acpptn == 0 {
		return 0, nil, EPAR
	}

	// A matching caller already queued: establish immediately.
	if cl := p.matchCaller(acpptn); cl != nil {
		call := p.calls[cl]
		p.callQ.remove(cl)
		delete(p.calls, cl)
		// The caller's timeout no longer applies; it now waits for the
		// reply indefinitely.
		cl.waitSeq++
		cl.tt.SetWaitObject(objName("rdv", p.id, p.name))
		no := k.establish(p, cl, call.reply)
		return no, call.msg, EOK
	}

	if tmout == TmoPol {
		return 0, nil, ETMOUT
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return 0, nil, er
	}
	var no RdvNo
	var msg []byte
	p.acpQ.add(task)
	p.acps[task] = &porAcp{acpptn: acpptn, rdvno: &no, msg: &msg}
	code := k.sleepOn(task, objName("por", p.id, p.name), tmout, func() {
		p.acpQ.remove(task)
		delete(p.acps, task)
	})
	return no, msg, code
}

// RplRdv replies to an established rendezvous, releasing the client with
// the reply message (tk_rpl_rdv).
func (k *Kernel) RplRdv(no RdvNo, reply []byte) (er ER) {
	k.enterSvc("tk_rpl_rdv")
	defer k.exitSvc("tk_rpl_rdv", &er)
	r, ok := k.rdvs[no]
	if !ok {
		return EOBJ
	}
	p := k.pors[r.port]
	if p != nil && len(reply) > p.maxRMsz {
		return EPAR
	}
	delete(k.rdvs, no)
	own := make([]byte, len(reply))
	copy(own, reply)
	*r.reply = own
	r.client.rdvno = 0
	k.wake(r.client, EOK)
	return EOK
}

// RefPor returns the port state (tk_ref_por).
func (k *Kernel) RefPor(id ID) (PortInfo, ER) {
	p, ok := k.pors[id]
	if !ok {
		return PortInfo{}, ENOEXS
	}
	open := 0
	for _, r := range k.rdvs {
		if r.port == id {
			open++
		}
	}
	return PortInfo{ID: p.id, Name: p.name, CallWaiting: p.callQ.refs(),
		AcceptWait: p.acpQ.refs(), OpenRdv: open}, EOK
}

// establish registers a rendezvous for the given client.
func (k *Kernel) establish(p *Port, client *Task, reply *[]byte) RdvNo {
	k.nextRdv++
	no := RdvNo(k.nextRdv)
	k.rdvs[no] = portRdv{port: p.id, rendezvous: rendezvous{client: client, reply: reply}}
	client.rdvno = no
	return no
}

// dropRdvOf removes a client's open rendezvous (timeout/forced release).
func (k *Kernel) dropRdvOf(task *Task) {
	if task.rdvno != 0 {
		delete(k.rdvs, task.rdvno)
		task.rdvno = 0
	}
}

// matchAcceptor finds the first waiting acceptor whose pattern intersects
// calptn.
func (p *Port) matchAcceptor(calptn uint32) *Task {
	for t := p.acpQ.head(); t != nil; t = t.wqNext {
		if a := p.acps[t]; a != nil && a.acpptn&calptn != 0 {
			return t
		}
	}
	return nil
}

// matchCaller finds the first queued caller whose pattern intersects
// acpptn.
func (p *Port) matchCaller(acpptn uint32) *Task {
	for t := p.callQ.head(); t != nil; t = t.wqNext {
		if c := p.calls[t]; c != nil && c.calptn&acpptn != 0 {
			return t
		}
	}
	return nil
}

// portRdv ties a rendezvous to its port for deletion handling.
type portRdv struct {
	port ID
	rendezvous
}
