package tkernel_test

import (
	"testing"

	"repro/internal/run/opts"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// runTicked boots a kernel on an external 1 ms ticker with a probe counting
// the tick firings that are actually simulated, runs userMain for 1 s, and
// returns (logical ticks, simulated firings).
func runTicked(t *testing.T, disable bool, userMain func(*tkernel.Kernel)) (uint64, int) {
	t.Helper()
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	tk := sysc.NewTicker(sim, "tick", sysc.Ms)
	fired := 0
	sim.SpawnMethod("probe", func() { fired++ }, tk.Event())
	k := tkernel.New(sim, tkernel.Config{
		CommonOptions:   opts.CommonOptions{Tick: sysc.Ms},
		TickSource:      tk.Event(),
		Ticker:          tk,
		DisableTickless: disable,
	})
	k.Boot(userMain)
	if err := sim.Start(sysc.Sec); err != nil {
		t.Fatal(err)
	}
	return k.Ticks(), fired
}

// TestTicklessSkipsIdleTicks: with no timed kernel work at all, the tickless
// kernel simulates a single tick firing (the horizon one) yet accounts the
// same 1000 logical ticks as the fully ticked run.
func TestTicklessSkipsIdleTicks(t *testing.T) {
	ticks, fired := runTicked(t, false, func(*tkernel.Kernel) {})
	if ticks != 1000 {
		t.Fatalf("tickless ticks = %d, want 1000", ticks)
	}
	if fired > 1 {
		t.Fatalf("tickless simulated %d firings, want <= 1", fired)
	}
	bTicks, bFired := runTicked(t, true, func(*tkernel.Kernel) {})
	if bTicks != 1000 || bFired != 1000 {
		t.Fatalf("baseline = %d ticks, %d firings, want 1000/1000", bTicks, bFired)
	}
}

// TestTicklessCyclicExact: a 100 ms cyclic handler fires on exactly the same
// schedule with and without tickless, while the tickless run only simulates
// the ticks that pop it.
func TestTicklessCyclicExact(t *testing.T) {
	run := func(disable bool) (uint64, int, []sysc.Time) {
		var at []sysc.Time
		ticks, fired := runTicked(t, disable, func(k *tkernel.Kernel) {
			id, _ := k.CreCyc("cyc", 100*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
				at = append(at, h.K.Sim().Now())
			})
			_ = k.StaCyc(id)
		})
		return ticks, fired, at
	}
	ticks, fired, at := run(false)
	bTicks, bFired, bAt := run(true)
	if ticks != bTicks {
		t.Fatalf("ticks %d != baseline %d", ticks, bTicks)
	}
	if len(at) != len(bAt) {
		t.Fatalf("cyclic fired %d vs baseline %d", len(at), len(bAt))
	}
	for i := range at {
		if at[i] != bAt[i] {
			t.Fatalf("firing %d at %v, baseline %v", i, at[i], bAt[i])
		}
	}
	if fired >= bFired/10 {
		t.Fatalf("tickless simulated %d of %d firings — no skipping", fired, bFired)
	}
}

// TestTicklessDisabledUnderTickFault: a tick-delay hook (the chaos fault)
// must see every tick delivered even when the kernel holds the ticker.
func TestTicklessDisabledUnderTickFault(t *testing.T) {
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	tk := sysc.NewTicker(sim, "tick", sysc.Ms)
	fired := 0
	sim.SpawnMethod("probe", func() { fired++ }, tk.Event())
	seen := 0
	k := tkernel.New(sim, tkernel.Config{
		CommonOptions: opts.CommonOptions{Tick: sysc.Ms},
		TickSource:    tk.Event(),
		Ticker:        tk,
		TickDelay:     func(uint64) sysc.Time { seen++; return 0 },
	})
	k.Boot(func(*tkernel.Kernel) {})
	if err := sim.Start(100 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if fired != 100 || seen != 100 || k.Ticks() != 100 {
		t.Fatalf("fired=%d hook=%d ticks=%d, want 100 each", fired, seen, k.Ticks())
	}
}
