package tkernel

// Semaphore is a T-Kernel counting semaphore (tk_cre_sem family): a
// non-negative resource count with a wait queue of tasks requesting counts.
type Semaphore struct {
	id      ID
	name    string
	attr    Attr
	count   int
	maxSem  int
	wq      waitQueue
	pending map[*Task]int // requested count per waiting task
}

// SemInfo is the unified semaphore view returned by both tk_ref_sem and the
// invariant snapshot path (SnapshotSemaphores).
type SemInfo struct {
	ID       ID
	Name     string
	Count    int
	MaxCount int
	HeadNeed int // resource request of the queue head (0 when no waiters)
	Waiting  []WaitRef
}

// CreSem creates a semaphore with an initial count and a maximum count
// (tk_cre_sem).
func (k *Kernel) CreSem(name string, attr Attr, initCount, maxCount int) (_ ID, er ER) {
	k.enterSvc("tk_cre_sem")
	defer k.exitSvc("tk_cre_sem", &er)
	if maxCount <= 0 || initCount < 0 || initCount > maxCount {
		return 0, EPAR
	}
	k.nextSem++
	id := k.nextSem
	k.sems[id] = &Semaphore{
		id: id, name: name, attr: attr,
		count: initCount, maxSem: maxCount,
		wq:      newWaitQueue(attr),
		pending: map[*Task]int{},
	}
	return id, EOK
}

// DelSem deletes a semaphore; waiting tasks are released with E_DLT
// (tk_del_sem).
func (k *Kernel) DelSem(id ID) (er ER) {
	k.enterSvc("tk_del_sem")
	defer k.exitSvc("tk_del_sem", &er)
	s, ok := k.sems[id]
	if !ok {
		return ENOEXS
	}
	s.wq.drain(func(t *Task) {
		delete(s.pending, t)
		k.wake(t, EDLT)
	})
	delete(k.sems, id)
	return EOK
}

// SigSem returns cnt resources to the semaphore and grants queued requests
// in queue order (tk_sig_sem).
func (k *Kernel) SigSem(id ID, cnt int) (er ER) {
	k.enterSvc("tk_sig_sem")
	defer k.exitSvc("tk_sig_sem", &er)
	return k.sigSemBody(id, cnt)
}

// sigSemBody is the engine-split call body of SigSem.
func (k *Kernel) sigSemBody(id ID, cnt int) ER {
	s, ok := k.sems[id]
	if !ok {
		return ENOEXS
	}
	if cnt <= 0 {
		return EPAR
	}
	if s.count+cnt > s.maxSem {
		return EQOVR
	}
	s.count += cnt
	k.semGrant(s)
	return EOK
}

// semGrant satisfies waiting requests from the head of the queue while the
// count allows (strict queue order: a large head request blocks smaller
// ones behind it, per the T-Kernel TA_CNT-less semantics).
func (k *Kernel) semGrant(s *Semaphore) {
	for {
		t := s.wq.head()
		if t == nil {
			return
		}
		need := s.pending[t]
		if s.count < need {
			return
		}
		s.count -= need
		s.wq.remove(t)
		delete(s.pending, t)
		k.wake(t, EOK)
	}
}

// WaiSem acquires cnt resources, waiting up to tmout (tk_wai_sem).
func (k *Kernel) WaiSem(id ID, cnt int, tmout TMO) (er ER) {
	k.enterSvc("tk_wai_sem")
	defer k.exitSvc("tk_wai_sem", &er)
	return k.finish(k.waiSemBody(id, cnt, tmout))
}

// waiSemBody is the engine-split call body of WaiSem.
func (k *Kernel) waiSemBody(id ID, cnt int, tmout TMO) (ER, *armedWait) {
	s, ok := k.sems[id]
	if !ok {
		return ENOEXS, nil
	}
	if cnt <= 0 || cnt > s.maxSem {
		return EPAR, nil
	}
	if s.wq.len() == 0 && s.count >= cnt {
		s.count -= cnt
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	s.wq.add(task)
	s.pending[task] = cnt
	sid := s.id
	return EOK, k.armSleep(task, objName("sem", sid, s.name), tmout, func() {
		s.wq.remove(task)
		delete(s.pending, task)
	})
}

// RefSem returns the semaphore state (tk_ref_sem).
func (k *Kernel) RefSem(id ID) (SemInfo, ER) {
	s, ok := k.sems[id]
	if !ok {
		return SemInfo{}, ENOEXS
	}
	return k.semInfo(s), EOK
}

// semInfo builds the unified view of one semaphore.
func (k *Kernel) semInfo(s *Semaphore) SemInfo {
	info := SemInfo{ID: s.id, Name: s.name, Count: s.count,
		MaxCount: s.maxSem, Waiting: s.wq.refs()}
	if h := s.wq.head(); h != nil {
		info.HeadNeed = s.pending[h]
	}
	return info
}
