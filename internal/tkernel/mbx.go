package tkernel

// Message is a mailbox message: an arbitrary payload with a message
// priority used when the mailbox orders messages by priority (TA_MPRI).
type Message struct {
	Priority int
	Payload  any
}

// Mailbox is a T-Kernel mailbox (tk_cre_mbx family): senders never block
// (messages are queued by reference), receivers block until a message
// arrives.
type Mailbox struct {
	id   ID
	name string
	attr Attr
	msgs []*Message
	wq   waitQueue
	dest map[*Task]**Message // delivery slot per waiting receiver
}

// MailboxInfo is the tk_ref_mbx snapshot.
type MailboxInfo struct {
	ID       ID
	Name     string
	Messages int
	NextPrio int // priority of the head message (0 if empty)
	Waiting  []WaitRef
}

// CreMbx creates a mailbox (tk_cre_mbx). TaMPRI orders messages by
// priority; the default is FIFO.
func (k *Kernel) CreMbx(name string, attr Attr) (_ ID, er ER) {
	k.enterSvc("tk_cre_mbx")
	defer k.exitSvc("tk_cre_mbx", &er)
	k.nextMbx++
	id := k.nextMbx
	k.mbxs[id] = &Mailbox{id: id, name: name, attr: attr,
		wq: newWaitQueue(attr), dest: map[*Task]**Message{}}
	return id, EOK
}

// DelMbx deletes a mailbox; waiting receivers get E_DLT (tk_del_mbx).
func (k *Kernel) DelMbx(id ID) (er ER) {
	k.enterSvc("tk_del_mbx")
	defer k.exitSvc("tk_del_mbx", &er)
	m, ok := k.mbxs[id]
	if !ok {
		return ENOEXS
	}
	m.wq.drain(func(t *Task) {
		delete(m.dest, t)
		k.wake(t, EDLT)
	})
	delete(k.mbxs, id)
	return EOK
}

// SndMbx sends a message (tk_snd_mbx); never blocks. A waiting receiver is
// handed the message directly.
func (k *Kernel) SndMbx(id ID, msg *Message) (er ER) {
	k.enterSvc("tk_snd_mbx")
	defer k.exitSvc("tk_snd_mbx", &er)
	return k.sndMbxBody(id, msg)
}

// sndMbxBody is the engine-split call body of SndMbx.
func (k *Kernel) sndMbxBody(id ID, msg *Message) ER {
	m, ok := k.mbxs[id]
	if !ok {
		return ENOEXS
	}
	if msg == nil {
		return EPAR
	}
	if t := m.wq.head(); t != nil {
		m.wq.remove(t)
		*m.dest[t] = msg
		delete(m.dest, t)
		k.wake(t, EOK)
		return EOK
	}
	if m.attr&TaMPRI != 0 {
		pos := len(m.msgs)
		for i, x := range m.msgs {
			if msg.Priority < x.Priority {
				pos = i
				break
			}
		}
		m.msgs = append(m.msgs, nil)
		copy(m.msgs[pos+1:], m.msgs[pos:])
		m.msgs[pos] = msg
	} else {
		m.msgs = append(m.msgs, msg)
	}
	return EOK
}

// RcvMbx receives the head message, waiting up to tmout (tk_rcv_mbx).
func (k *Kernel) RcvMbx(id ID, tmout TMO) (_ *Message, er ER) {
	k.enterSvc("tk_rcv_mbx")
	defer k.exitSvc("tk_rcv_mbx", &er)
	var got *Message
	er = k.finish(k.rcvMbxBody(id, tmout, &got))
	return got, er
}

// rcvMbxBody is the engine-split call body of RcvMbx: the message is
// delivered through dst (nil on error paths).
func (k *Kernel) rcvMbxBody(id ID, tmout TMO, dst **Message) (ER, *armedWait) {
	m, ok := k.mbxs[id]
	if !ok {
		return ENOEXS, nil
	}
	if len(m.msgs) > 0 {
		*dst = m.msgs[0]
		m.msgs = m.msgs[1:]
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	m.wq.add(task)
	m.dest[task] = dst
	return EOK, k.armSleep(task, objName("mbx", m.id, m.name), tmout, func() {
		m.wq.remove(task)
		delete(m.dest, task)
	})
}

// RefMbx returns the mailbox state (tk_ref_mbx).
func (k *Kernel) RefMbx(id ID) (MailboxInfo, ER) {
	m, ok := k.mbxs[id]
	if !ok {
		return MailboxInfo{}, ENOEXS
	}
	info := MailboxInfo{ID: m.id, Name: m.name, Messages: len(m.msgs),
		Waiting: m.wq.refs()}
	if len(m.msgs) > 0 {
		info.NextPrio = m.msgs[0].Priority
	}
	return info, EOK
}
