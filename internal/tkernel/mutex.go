package tkernel

// Mutex is a T-Kernel mutex (tk_cre_mtx family) supporting FIFO/priority
// wait queues, priority inheritance (TA_INHERIT) and priority ceiling
// (TA_CEILING). Mutexes owned by a task are released automatically when the
// task exits or is terminated.
type Mutex struct {
	id      ID
	name    string
	attr    Attr
	ceiling int // ceiling priority (TA_CEILING)
	owner   *Task
	wq      waitQueue
}

// MutexInfo is the tk_ref_mtx snapshot.
type MutexInfo struct {
	ID        ID
	Name      string
	Attr      Attr
	Ceiling   int
	Owner     ID     // waiting-task view: 0 when unlocked (see HasOwner)
	OwnerName string // "" when unlocked
	HasOwner  bool
	Waiting   []WaitRef
}

// CreMtx creates a mutex (tk_cre_mtx). For TA_CEILING, ceilpri is the
// ceiling priority; ignored otherwise.
func (k *Kernel) CreMtx(name string, attr Attr, ceilpri int) (_ ID, er ER) {
	k.enterSvc("tk_cre_mtx")
	defer k.exitSvc("tk_cre_mtx", &er)
	if attr&TaCeiling != 0 && (ceilpri < 1 || ceilpri > k.cfg.MaxPriority) {
		return 0, EPAR
	}
	if attr&TaCeiling != 0 && attr&TaInherit != 0 {
		return 0, ERSATR
	}
	k.nextMtx++
	id := k.nextMtx
	wqAttr := attr
	if attr&(TaInherit|TaCeiling) != 0 {
		wqAttr |= TaTPRI // inheritance/ceiling imply priority-ordered queue
	}
	m := &Mutex{id: id, name: name, attr: attr, ceiling: ceilpri,
		wq: newWaitQueue(wqAttr)}
	m.wq.mtx = m
	k.mtxs[id] = m
	return id, EOK
}

// DelMtx deletes a mutex; waiters are released with E_DLT (tk_del_mtx).
func (k *Kernel) DelMtx(id ID) (er ER) {
	k.enterSvc("tk_del_mtx")
	defer k.exitSvc("tk_del_mtx", &er)
	m, ok := k.mtxs[id]
	if !ok {
		return ENOEXS
	}
	if m.owner != nil {
		k.dropOwnership(m.owner, m)
	}
	m.wq.drain(func(t *Task) {
		k.wake(t, EDLT)
	})
	delete(k.mtxs, id)
	return EOK
}

// LocMtx locks the mutex, waiting up to tmout (tk_loc_mtx). Re-locking a
// mutex the caller already owns is E_ILUSE. Under TA_CEILING, a locker
// whose base priority outranks the ceiling is E_ILUSE.
func (k *Kernel) LocMtx(id ID, tmout TMO) (er ER) {
	k.enterSvc("tk_loc_mtx")
	defer k.exitSvc("tk_loc_mtx", &er)
	return k.finish(k.locMtxBody(id, tmout))
}

// locMtxBody is the engine-split call body of LocMtx.
func (k *Kernel) locMtxBody(id ID, tmout TMO) (ER, *armedWait) {
	m, ok := k.mtxs[id]
	if !ok {
		return ENOEXS, nil
	}
	if tmout < TmoFevr {
		return EPAR, nil
	}
	task := k.caller()
	if task == nil || k.api.InHandler() {
		return ECTX, nil // mutexes are task-context only
	}
	if m.owner == task {
		return EILUSE, nil
	}
	if m.attr&TaCeiling != 0 && task.tt.BasePriority() < m.ceiling {
		return EILUSE, nil
	}
	if m.owner == nil {
		k.takeOwnership(task, m)
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	// Priority inheritance: boost the owner to the blocker's priority (and,
	// if the owner is itself blocked in a priority queue, re-file it there —
	// transitive inheritance along a wait chain).
	if m.attr&TaInherit != 0 && task.tt.Priority() < m.owner.tt.Priority() {
		k.setEffective(m.owner, task.tt.Priority())
	}
	m.wq.add(task)
	// On success the releaser transfers ownership to the waiter already.
	return EOK, k.armSleep(task, objName("mtx", m.id, m.name), tmout, func() {
		m.wq.remove(task)
		k.recomputeInheritance(m)
	})
}

// UnlMtx unlocks the mutex and passes ownership to the head waiter
// (tk_unl_mtx). Only the owner may unlock (E_ILUSE).
func (k *Kernel) UnlMtx(id ID) (er ER) {
	k.enterSvc("tk_unl_mtx")
	defer k.exitSvc("tk_unl_mtx", &er)
	return k.unlMtxBody(id)
}

// unlMtxBody is the engine-split call body of UnlMtx.
func (k *Kernel) unlMtxBody(id ID) ER {
	m, ok := k.mtxs[id]
	if !ok {
		return ENOEXS
	}
	task := k.caller()
	if task == nil {
		return ECTX
	}
	if m.owner != task {
		return EILUSE
	}
	k.dropOwnership(task, m)
	if next := m.wq.head(); next != nil {
		m.wq.remove(next)
		k.takeOwnership(next, m)
		k.recomputeInheritance(m)
		k.wake(next, EOK)
	}
	return EOK
}

// RefMtx returns the mutex state (tk_ref_mtx).
func (k *Kernel) RefMtx(id ID) (MutexInfo, ER) {
	m, ok := k.mtxs[id]
	if !ok {
		return MutexInfo{}, ENOEXS
	}
	return k.mtxInfo(m), EOK
}

// mtxInfo builds the unified view of one mutex.
func (k *Kernel) mtxInfo(m *Mutex) MutexInfo {
	info := MutexInfo{ID: m.id, Name: m.name, Attr: m.attr,
		Ceiling: m.ceiling, Waiting: m.wq.refs()}
	if m.owner != nil {
		info.Owner = m.owner.id
		info.OwnerName = m.owner.name
		info.HasOwner = true
	}
	return info
}

// takeOwnership records ownership and applies a ceiling boost.
func (k *Kernel) takeOwnership(task *Task, m *Mutex) {
	m.owner = task
	task.owned = append(task.owned, m)
	if m.attr&TaCeiling != 0 && m.ceiling < task.tt.Priority() {
		k.setEffective(task, m.ceiling)
	}
}

// dropOwnership removes m from the task's owned set and recomputes the
// task's effective priority from its remaining mutexes.
func (k *Kernel) dropOwnership(task *Task, m *Mutex) {
	m.owner = nil
	for i, x := range task.owned {
		if x == m {
			task.owned = append(task.owned[:i], task.owned[i+1:]...)
			break
		}
	}
	k.recomputeEffective(task)
}

// recomputeEffective sets the task's effective priority to the strongest of
// its base priority, the ceilings of owned ceiling-mutexes, and the top
// waiter priorities of owned inheritance-mutexes.
func (k *Kernel) recomputeEffective(task *Task) {
	p := task.tt.BasePriority()
	for _, m := range task.owned {
		if m.attr&TaCeiling != 0 && m.ceiling < p {
			p = m.ceiling
		}
		if m.attr&TaInherit != 0 {
			if h := m.wq.head(); h != nil && h.tt.Priority() < p {
				p = h.tt.Priority()
			}
		}
	}
	k.setEffective(task, p)
}

// recomputeInheritance refreshes the owner's boost after the wait queue of
// an inheritance mutex changes.
func (k *Kernel) recomputeInheritance(m *Mutex) {
	if m.owner != nil && m.attr&TaInherit != 0 {
		k.recomputeEffective(m.owner)
	}
}

// releaseOwnedMutexes unlocks everything a task owns (task exit and
// termination paths, per the T-Kernel rule).
func (k *Kernel) releaseOwnedMutexes(task *Task) {
	for len(task.owned) > 0 {
		m := task.owned[len(task.owned)-1]
		k.dropOwnership(task, m)
		if next := m.wq.head(); next != nil {
			m.wq.remove(next)
			k.takeOwnership(next, m)
			k.recomputeInheritance(m)
			k.wake(next, EOK)
		}
	}
}
