package tkernel

import (
	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// Task is a T-Kernel task: an application thread of control wrapped in a
// T-THREAD and scheduled by the kernel.
type Task struct {
	id   ID
	k    *Kernel
	tt   *core.TThread
	name string

	wupCount   int
	waitSeq    int
	waitCancel func()
	rdvno      RdvNo // open rendezvous awaiting reply (0 = none)

	// Intrusive wait-queue node: a task waits on at most one kernel object,
	// so one embedded link suffices. Owned by the waitQueue in wqIn.
	wqNext, wqPrev *Task
	wqIn           *waitQueue

	// aw is the embedded armed-wait record handed out by armSleep; a task
	// arms at most one wait at a time, so embedding it keeps the split
	// service bodies allocation-free.
	aw armedWait

	owned []*Mutex // mutexes currently locked by this task
}

// ID returns the task identifier.
func (t *Task) ID() ID { return t.id }

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// TThread exposes the underlying T-THREAD (for statistics and tracing).
func (t *Task) TThread() *core.TThread { return t.tt }

// TaskInfo is the tk_ref_tsk snapshot.
type TaskInfo struct {
	ID       ID
	Name     string
	State    core.State
	Priority int
	BasePrio int
	WaitObj  string
	WupCount int
	SusCount int
	CET      sysc.Time
	CEE      core.Energy
	Cycles   int
}

// CreTsk creates a task (tk_cre_tsk): name, priority (1..MaxPriority) and
// the task body. The body receives the owning task handle; it may issue any
// kernel service. Tasks are created DORMANT.
func (k *Kernel) CreTsk(name string, priority int, body func(*Task)) (_ ID, er ER) {
	k.enterSvc("tk_cre_tsk")
	defer k.exitSvc("tk_cre_tsk", &er)
	if priority < 1 || priority > k.cfg.MaxPriority {
		return 0, EPAR
	}
	k.nextTask++
	id := k.nextTask
	task := &Task{id: id, k: k, name: name}
	task.tt = k.api.CreateThread(name, core.KindTask, priority, func(tt *core.TThread) {
		// T-Kernel releases any mutexes a task still holds when it ends,
		// whether it returns normally or is unwound by tk_ter/ext_tsk.
		defer k.releaseOwnedMutexes(task)
		body(task)
	})
	task.tt.SetExinf(task)
	k.tasks[id] = task
	return id, EOK
}

// DelTsk deletes a dormant task (tk_del_tsk).
func (k *Kernel) DelTsk(id ID) (er ER) {
	k.enterSvc("tk_del_tsk")
	defer k.exitSvc("tk_del_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	if task.tt.State() != core.StateDormant {
		return EOBJ
	}
	if err := k.api.DeleteThread(task.tt); err != nil {
		return EOBJ
	}
	delete(k.tasks, id)
	return EOK
}

// StaTsk starts a dormant task (tk_sta_tsk).
func (k *Kernel) StaTsk(id ID) (er ER) {
	k.enterSvc("tk_sta_tsk")
	defer k.exitSvc("tk_sta_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	task.wupCount = 0
	if err := k.api.Activate(task.tt); err != nil {
		return EOBJ
	}
	return EOK
}

// ExtTsk exits the calling task (tk_ext_tsk): in this model the task body
// simply returns; ExtTsk exists for completeness and unwinds the body via
// the termination path after releasing any held mutexes.
func (k *Kernel) ExtTsk() ER {
	task := k.caller()
	if task == nil || k.api.InHandler() {
		return ECTX
	}
	k.releaseOwnedMutexes(task)
	task.tt.Exit() // unwinds the body; never returns
	return EOK
}

// TerTsk forcibly terminates another task (tk_ter_tsk). Terminating the
// calling task itself is E_OBJ (use ExtTsk).
func (k *Kernel) TerTsk(id ID) (er ER) {
	k.enterSvc("tk_ter_tsk")
	defer k.exitSvc("tk_ter_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	if task == k.caller() {
		return EOBJ
	}
	if task.tt.State() == core.StateDormant {
		return EOBJ
	}
	if task.waitCancel != nil {
		task.waitCancel()
		task.waitCancel = nil
	}
	task.waitSeq++
	k.releaseOwnedMutexes(task)
	if err := k.api.Terminate(task.tt); err != nil {
		return EOBJ
	}
	return EOK
}

// ActTsk activates a task with µITRON v4 act_tsk semantics: a dormant task
// starts; an active task gets the request queued (up to max activations)
// and re-activates when it exits. This is the ITRON-compatibility hook used
// by internal/itron; T-Kernel itself only has the strict StaTsk.
func (k *Kernel) ActTsk(id ID, maxQueued int) (er ER) {
	k.enterSvc("act_tsk")
	defer k.exitSvc("act_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	if task.tt.State() == core.StateDormant {
		if err := k.api.Activate(task.tt); err != nil {
			return EOBJ
		}
		return EOK
	}
	if k.api.QueuedActivations(task.tt) >= maxQueued {
		return EQOVR
	}
	k.api.QueueActivation(task.tt)
	return EOK
}

// CanAct cancels queued activation requests and returns how many were
// queued (µITRON can_act). id 0 = caller.
func (k *Kernel) CanAct(id ID) (_ int, er ER) {
	k.enterSvc("can_act")
	defer k.exitSvc("can_act", &er)
	task, er := k.taskOrSelf(id)
	if er != EOK {
		return 0, er
	}
	n := k.api.QueuedActivations(task.tt)
	for i := 0; i < n; i++ {
		k.api.UnqueueActivation(task.tt)
	}
	return n, EOK
}

// ChgPri changes a task's base priority (tk_chg_pri). id 0 = caller.
func (k *Kernel) ChgPri(id ID, priority int) (er ER) {
	k.enterSvc("tk_chg_pri")
	defer k.exitSvc("tk_chg_pri", &er)
	task, er := k.taskOrSelf(id)
	if er != EOK {
		return er
	}
	if priority < 1 || priority > k.cfg.MaxPriority {
		return EPAR
	}
	if task.tt.State() == core.StateDormant {
		return EOBJ
	}
	k.api.ChangePriority(task.tt, priority)
	k.requeueWaiter(task)
	return EOK
}

// SlpTsk puts the calling task to sleep awaiting a wakeup (tk_slp_tsk).
// A queued wakeup (tk_wup_tsk issued earlier) completes it immediately.
func (k *Kernel) SlpTsk(tmout TMO) (er ER) {
	k.enterSvc("tk_slp_tsk")
	defer k.exitSvc("tk_slp_tsk", &er)
	return k.finish(k.slpTskBody(tmout))
}

// slpTskBody is the engine-split call body of SlpTsk.
func (k *Kernel) slpTskBody(tmout TMO) (ER, *armedWait) {
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	if task.wupCount > 0 {
		task.wupCount--
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	return EOK, k.armSleep(task, "sleep", tmout, nil)
}

// WupTsk wakes a sleeping task (tk_wup_tsk); wakeups queue when the task is
// not sleeping yet (up to WupCountMax).
func (k *Kernel) WupTsk(id ID) (er ER) {
	k.enterSvc("tk_wup_tsk")
	defer k.exitSvc("tk_wup_tsk", &er)
	return k.wupTskBody(id)
}

// wupTskBody is the engine-split call body of WupTsk.
func (k *Kernel) wupTskBody(id ID) ER {
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	st := task.tt.State()
	if st == core.StateDormant || st == core.StateNonExistent {
		return EOBJ
	}
	if (st == core.StateWaiting || st == core.StateWaitSuspended) && task.tt.WaitObject() == "sleep" {
		k.wake(task, EOK)
		return EOK
	}
	if task.wupCount >= k.cfg.WupCountMax {
		return EQOVR
	}
	task.wupCount++
	return EOK
}

// CanWup cancels queued wakeups and returns how many were queued
// (tk_can_wup). id 0 = caller.
func (k *Kernel) CanWup(id ID) (_ int, er ER) {
	k.enterSvc("tk_can_wup")
	defer k.exitSvc("tk_can_wup", &er)
	task, er := k.taskOrSelf(id)
	if er != EOK {
		return 0, er
	}
	n := task.wupCount
	task.wupCount = 0
	return n, EOK
}

// DlyTsk delays the calling task for at least d (tk_dly_tsk). Unlike
// SlpTsk, wakeups do not shorten the delay; only RelWai does (E_RLWAI).
func (k *Kernel) DlyTsk(d sysc.Time) (er ER) {
	k.enterSvc("tk_dly_tsk")
	defer k.exitSvc("tk_dly_tsk", &er)
	return dlyTskPost(k.finish(k.dlyTskBody(d)))
}

// dlyTskBody is the engine-split call body of DlyTsk.
func (k *Kernel) dlyTskBody(d sysc.Time) (ER, *armedWait) {
	task, er := k.blockCheck(TmoFevr)
	if er != EOK {
		return er, nil
	}
	if d <= 0 {
		return EOK, nil
	}
	return EOK, k.armSleep(task, "delay", d, nil)
}

// dlyTskPost remaps the release code: normal expiry of a delay is success.
func dlyTskPost(code ER) ER {
	if code == ETMOUT {
		return EOK
	}
	return code
}

// RelWai forcibly releases another task's wait state with E_RLWAI
// (tk_rel_wai).
func (k *Kernel) RelWai(id ID) (er ER) {
	k.enterSvc("tk_rel_wai")
	defer k.exitSvc("tk_rel_wai", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	st := task.tt.State()
	if st != core.StateWaiting && st != core.StateWaitSuspended {
		return EOBJ
	}
	if task.waitCancel != nil {
		task.waitCancel()
		task.waitCancel = nil
	}
	k.wake(task, ERLWAI)
	return EOK
}

// SusTsk forcibly suspends a task (tk_sus_tsk); suspensions nest.
func (k *Kernel) SusTsk(id ID) (er ER) {
	k.enterSvc("tk_sus_tsk")
	defer k.exitSvc("tk_sus_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	if task == k.caller() && k.disDsp {
		return ECTX
	}
	if err := k.api.SuspendForce(task.tt); err != nil {
		return EOBJ
	}
	return EOK
}

// RsmTsk resumes a forcibly suspended task by one level (tk_rsm_tsk).
func (k *Kernel) RsmTsk(id ID) (er ER) {
	k.enterSvc("tk_rsm_tsk")
	defer k.exitSvc("tk_rsm_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	if err := k.api.ResumeForce(task.tt); err != nil {
		return EOBJ
	}
	return EOK
}

// FrsmTsk resumes a task regardless of the suspension nesting depth
// (tk_frsm_tsk).
func (k *Kernel) FrsmTsk(id ID) (er ER) {
	k.enterSvc("tk_frsm_tsk")
	defer k.exitSvc("tk_frsm_tsk", &er)
	task, ok := k.tasks[id]
	if !ok {
		return ENOEXS
	}
	for task.tt.SuspendCount() > 0 {
		if err := k.api.ResumeForce(task.tt); err != nil {
			return EOBJ
		}
	}
	return EOK
}

// GetTid returns the calling task's ID (tk_get_tid); 0 in non-task context.
func (k *Kernel) GetTid() ID {
	if t := k.caller(); t != nil {
		return t.id
	}
	return 0
}

// RefTsk returns a task state snapshot (tk_ref_tsk). id 0 = caller.
func (k *Kernel) RefTsk(id ID) (TaskInfo, ER) {
	task, er := k.taskOrSelf(id)
	if er != EOK {
		return TaskInfo{}, er
	}
	return k.taskInfo(task), EOK
}

// taskInfo builds the unified view of one task.
func (k *Kernel) taskInfo(task *Task) TaskInfo {
	return TaskInfo{
		ID:       task.id,
		Name:     task.name,
		State:    task.tt.State(),
		Priority: task.tt.Priority(),
		BasePrio: task.tt.BasePriority(),
		WaitObj:  task.tt.WaitObject(),
		WupCount: task.wupCount,
		SusCount: task.tt.SuspendCount(),
		CET:      task.tt.CET(),
		CEE:      task.tt.CEE(),
		Cycles:   task.tt.Cycles(),
	}
}

// RotRdq rotates the ready queue of the given priority (tk_rot_rdq);
// priority 0 rotates the class of the running task.
func (k *Kernel) RotRdq(priority int) (er ER) {
	k.enterSvc("tk_rot_rdq")
	defer k.exitSvc("tk_rot_rdq", &er)
	return k.rotRdqBody(priority)
}

// rotRdqBody is the engine-split call body of RotRdq.
func (k *Kernel) rotRdqBody(priority int) ER {
	if priority == 0 {
		if cur := k.api.Current(); cur != nil {
			k.api.YieldCurrent()
		}
		return EOK
	}
	if priority < 1 || priority > k.cfg.MaxPriority {
		return EPAR
	}
	k.api.RotateReady(priority)
	return EOK
}

// taskOrSelf resolves id (0 = calling task).
func (k *Kernel) taskOrSelf(id ID) (*Task, ER) {
	if id == 0 {
		t := k.caller()
		if t == nil {
			return nil, ECTX
		}
		return t, EOK
	}
	t, ok := k.tasks[id]
	if !ok {
		return nil, ENOEXS
	}
	return t, EOK
}

// Work consumes application execution time/energy in the calling task or
// handler context — the annotation a user places around basic blocks of
// application code (the paper's SIM_Wait usage in tasks).
func (k *Kernel) Work(c core.Cost, note string) {
	if tt := k.api.ExecutingThread(); tt != nil {
		tt.Consume(c, trace.CtxTask, note)
	}
}
