package tkernel

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sysc"
)

// mkTasks builds bare tasks (detached from any kernel) for wait-queue unit
// tests; only the TThread priority matters to the queue.
func mkTasks(t *testing.T, prios ...int) []*Task {
	t.Helper()
	sim := sysc.NewSimulator()
	t.Cleanup(sim.Shutdown)
	api := core.NewSimAPI(sim, sched.NewPriority(), nil)
	var out []*Task
	for i, p := range prios {
		name := fmt.Sprintf("t%d", i)
		tt := api.CreateThread(name, core.KindTask, p, func(*core.TThread) {})
		out = append(out, &Task{id: ID(i + 1), name: name, tt: tt})
	}
	return out
}

func order(q *waitQueue) []ID { return q.ids() }

func eq(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWaitQueueFIFO(t *testing.T) {
	ts := mkTasks(t, 5, 3, 9)
	q := newWaitQueue(TaTFIFO)
	for _, x := range ts {
		q.add(x)
	}
	if !eq(order(&q), []ID{1, 2, 3}) {
		t.Fatalf("order = %v", order(&q))
	}
	q.remove(ts[1])
	if !eq(order(&q), []ID{1, 3}) || q.len() != 2 {
		t.Fatalf("after remove: %v len %d", order(&q), q.len())
	}
	q.remove(ts[1]) // absent: no-op
	if q.len() != 2 {
		t.Fatal("remove of absent task changed population")
	}
	if q.head() != ts[0] {
		t.Fatalf("head = %v", q.head().name)
	}
	var drained []ID
	q.drain(func(x *Task) { drained = append(drained, x.id) })
	if !eq(drained, []ID{1, 3}) || q.len() != 0 || q.head() != nil {
		t.Fatalf("drain = %v, len %d", drained, q.len())
	}
}

func TestWaitQueuePriorityOrder(t *testing.T) {
	// Priorities 5, 3, 9, 3: priority order with FIFO within class.
	ts := mkTasks(t, 5, 3, 9, 3)
	q := newWaitQueue(TaTPRI)
	for _, x := range ts {
		q.add(x)
	}
	if !eq(order(&q), []ID{2, 4, 1, 3}) {
		t.Fatalf("order = %v", order(&q))
	}
	if got := q.prios(); got[0] != 3 || got[1] != 3 || got[2] != 5 || got[3] != 9 {
		t.Fatalf("prios = %v", got)
	}
}

// TestWaitQueueReposition mirrors requeueWaiter: when a queued task's
// priority changes, the node moves to the tail of its new precedence group.
func TestWaitQueueReposition(t *testing.T) {
	ts := mkTasks(t, 5, 6, 7)
	q := newWaitQueue(TaTPRI)
	for _, x := range ts {
		q.add(x)
	}
	// Boost the last waiter above everyone: it must move to the head.
	ts[2].tt.API().SetEffectivePriority(ts[2].tt, 1)
	k := &Kernel{}
	ts[2].wqIn = &q // normally maintained by add; assert it is
	k.requeueWaiter(ts[2])
	if !eq(order(&q), []ID{3, 1, 2}) {
		t.Fatalf("after boost: %v", order(&q))
	}
	// Drop it to the same class as task 1 (prio 5): FIFO puts it behind.
	ts[2].tt.API().SetEffectivePriority(ts[2].tt, 5)
	k.requeueWaiter(ts[2])
	if !eq(order(&q), []ID{1, 3, 2}) {
		t.Fatalf("after drop: %v", order(&q))
	}
}

// TestWaitQueueZeroAllocs asserts the intrusive data path: add/remove/head
// perform no allocations for FIFO and priority queues alike.
func TestWaitQueueZeroAllocs(t *testing.T) {
	ts := mkTasks(t, 4, 2, 6, 2)
	fifo := newWaitQueue(TaTFIFO)
	pri := newWaitQueue(TaTPRI)
	if n := testing.AllocsPerRun(100, func() {
		for _, x := range ts {
			fifo.add(x)
		}
		fifo.head()
		for _, x := range ts {
			fifo.remove(x)
		}
		for _, x := range ts {
			pri.add(x)
		}
		pri.head()
		for _, x := range ts {
			pri.remove(x)
		}
	}); n != 0 {
		t.Fatalf("wait-queue ops allocate: %.1f allocs/run", n)
	}
}

// TestTimerQueueHeapOrder asserts the heap pops in (when, seq) order and
// earliest() tracks the root.
func TestTimerQueueHeapOrder(t *testing.T) {
	var q timerQueue
	if _, ok := q.earliest(); ok {
		t.Fatal("empty queue has an earliest deadline")
	}
	var fired []int
	mk := func(tag int) func() { return func() { fired = append(fired, tag) } }
	q.add(30*sysc.Ms, mk(3))
	q.add(10*sysc.Ms, mk(1))
	q.add(20*sysc.Ms, mk(2))
	q.add(10*sysc.Ms, mk(11)) // same instant: seq order after tag 1
	if w, ok := q.earliest(); !ok || w != 10*sysc.Ms {
		t.Fatalf("earliest = %v", w)
	}
	for {
		it, ok := q.popDue(25 * sysc.Ms)
		if !ok {
			break
		}
		it.fn()
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 11 || fired[2] != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if w, ok := q.earliest(); !ok || w != 30*sysc.Ms {
		t.Fatalf("earliest after pops = %v", w)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}
