package tkernel_test

import (
	"testing"

	"repro/internal/event"
	"repro/internal/run/opts"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// svcPairChecker observes svc-enter/svc-exit bus events and asserts LIFO
// pairing: every exit must match the innermost open enter by name.
type svcPairChecker struct {
	t     *testing.T
	stack []string
	exits []svcExit
}

type svcExit struct {
	name string
	er   tkernel.ER
}

func (c *svcPairChecker) handle(e event.Event) {
	switch e.Kind {
	case event.KindSvcEnter:
		c.stack = append(c.stack, e.Obj)
	case event.KindSvcExit:
		if len(c.stack) == 0 {
			c.t.Errorf("svc-exit %q with no open svc-enter", e.Obj)
			return
		}
		top := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		if top != e.Obj {
			c.t.Errorf("svc-exit %q paired against svc-enter %q", e.Obj, top)
		}
		c.exits = append(c.exits, svcExit{name: e.Obj, er: tkernel.ER(e.Code)})
	}
}

// last returns the most recent exit record.
func (c *svcPairChecker) last() svcExit {
	if len(c.exits) == 0 {
		return svcExit{}
	}
	return c.exits[len(c.exits)-1]
}

// noSuch is an ID no kernel object ever receives, driving every looked-up
// service down its early-return E_NOEXS path.
const noSuch = tkernel.ID(9999)

// TestServiceCallEnterExitPairing drives every kernel service call once —
// most through their early-return error paths via a nonexistent object ID,
// the rest through valid paths — and asserts, from bus events alone, that
// (a) every svc-enter is closed by a matching svc-exit and (b) the ER
// published on exit equals the ER the call returned, including for
// early-return errors.
func TestServiceCallEnterExitPairing(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	bus := event.NewBus()
	k := tkernel.New(sim, tkernel.Config{CommonOptions: opts.CommonOptions{Bus: bus}, Costs: tkernel.ZeroCosts()})
	chk := &svcPairChecker{t: t}
	bus.Subscribe(chk.handle, event.KindSvcEnter, event.KindSvcExit)

	type call struct {
		svc  string
		do   func() tkernel.ER
		want tkernel.ER // EOK entries additionally pin the expected code
	}
	noop := func(*tkernel.Task) {}
	hNoop := func(*tkernel.HandlerCtx) {}
	k.Boot(func(k *tkernel.Kernel) {
		var worker, sem, flg, mbx, mbf, mpf, mpl, mtx, por, alm, cyc tkernel.ID
		calls := []call{
			// Object creation: valid paths.
			{"tk_cre_tsk", func() tkernel.ER { var er tkernel.ER; worker, er = k.CreTsk("w", 10, noop); return er }, tkernel.EOK},
			{"tk_cre_sem", func() tkernel.ER { var er tkernel.ER; sem, er = k.CreSem("s", tkernel.TaTFIFO, 1, 2); return er }, tkernel.EOK},
			{"tk_cre_flg", func() tkernel.ER { var er tkernel.ER; flg, er = k.CreFlg("f", tkernel.TaTFIFO, 0); return er }, tkernel.EOK},
			{"tk_cre_mbx", func() tkernel.ER { var er tkernel.ER; mbx, er = k.CreMbx("x", tkernel.TaTFIFO); return er }, tkernel.EOK},
			{"tk_cre_mbf", func() tkernel.ER { var er tkernel.ER; mbf, er = k.CreMbf("b", tkernel.TaTFIFO, 64, 16); return er }, tkernel.EOK},
			{"tk_cre_mpf", func() tkernel.ER { var er tkernel.ER; mpf, er = k.CreMpf("pf", tkernel.TaTFIFO, 2, 32); return er }, tkernel.EOK},
			{"tk_cre_mpl", func() tkernel.ER { var er tkernel.ER; mpl, er = k.CreMpl("pl", tkernel.TaTFIFO, 256); return er }, tkernel.EOK},
			{"tk_cre_mtx", func() tkernel.ER { var er tkernel.ER; mtx, er = k.CreMtx("m", tkernel.TaTFIFO, 0); return er }, tkernel.EOK},
			{"tk_cre_por", func() tkernel.ER { var er tkernel.ER; por, er = k.CrePor("p", tkernel.TaTFIFO, 16, 16); return er }, tkernel.EOK},
			{"tk_cre_alm", func() tkernel.ER { var er tkernel.ER; alm, er = k.CreAlm("a", hNoop); return er }, tkernel.EOK},
			{"tk_cre_cyc", func() tkernel.ER { var er tkernel.ER; cyc, er = k.CreCyc("c", 10*sysc.Ms, 0, hNoop); return er }, tkernel.EOK},

			// Task management: every service down its E_NOEXS early return.
			{"tk_sta_tsk", func() tkernel.ER { return k.StaTsk(noSuch) }, tkernel.ENOEXS},
			{"tk_ter_tsk", func() tkernel.ER { return k.TerTsk(noSuch) }, tkernel.ENOEXS},
			{"act_tsk", func() tkernel.ER { return k.ActTsk(noSuch, 1) }, tkernel.ENOEXS},
			{"can_act", func() tkernel.ER { _, er := k.CanAct(noSuch); return er }, tkernel.ENOEXS},
			{"tk_chg_pri", func() tkernel.ER { return k.ChgPri(noSuch, 5) }, tkernel.ENOEXS},
			{"tk_wup_tsk", func() tkernel.ER { return k.WupTsk(noSuch) }, tkernel.ENOEXS},
			{"tk_can_wup", func() tkernel.ER { _, er := k.CanWup(noSuch); return er }, tkernel.ENOEXS},
			{"tk_rel_wai", func() tkernel.ER { return k.RelWai(noSuch) }, tkernel.ENOEXS},
			{"tk_sus_tsk", func() tkernel.ER { return k.SusTsk(noSuch) }, tkernel.ENOEXS},
			{"tk_rsm_tsk", func() tkernel.ER { return k.RsmTsk(noSuch) }, tkernel.ENOEXS},
			{"tk_frsm_tsk", func() tkernel.ER { return k.FrsmTsk(noSuch) }, tkernel.ENOEXS},
			{"tk_del_tsk", func() tkernel.ER { return k.DelTsk(noSuch) }, tkernel.ENOEXS},

			// Synchronization / IPC: one valid and one E_NOEXS path each class.
			{"tk_sig_sem", func() tkernel.ER { return k.SigSem(sem, 1) }, tkernel.EOK},
			{"tk_wai_sem", func() tkernel.ER { return k.WaiSem(sem, 1, tkernel.TmoPol) }, tkernel.EOK},
			{"tk_sig_sem", func() tkernel.ER { return k.SigSem(noSuch, 1) }, tkernel.ENOEXS},
			{"tk_wai_sem", func() tkernel.ER { return k.WaiSem(noSuch, 1, tkernel.TmoPol) }, tkernel.ENOEXS},
			{"tk_set_flg", func() tkernel.ER { return k.SetFlg(flg, 1) }, tkernel.EOK},
			{"tk_wai_flg", func() tkernel.ER { _, er := k.WaiFlg(flg, 1, tkernel.TwfANDW, tkernel.TmoPol); return er }, tkernel.EOK},
			{"tk_clr_flg", func() tkernel.ER { return k.ClrFlg(flg, 0) }, tkernel.EOK},
			{"tk_set_flg", func() tkernel.ER { return k.SetFlg(noSuch, 1) }, tkernel.ENOEXS},
			{"tk_clr_flg", func() tkernel.ER { return k.ClrFlg(noSuch, 0) }, tkernel.ENOEXS},
			{"tk_wai_flg", func() tkernel.ER { _, er := k.WaiFlg(noSuch, 1, tkernel.TwfANDW, tkernel.TmoPol); return er }, tkernel.ENOEXS},
			{"tk_snd_mbx", func() tkernel.ER { return k.SndMbx(mbx, &tkernel.Message{}) }, tkernel.EOK},
			{"tk_rcv_mbx", func() tkernel.ER { _, er := k.RcvMbx(mbx, tkernel.TmoPol); return er }, tkernel.EOK},
			{"tk_snd_mbx", func() tkernel.ER { return k.SndMbx(noSuch, &tkernel.Message{}) }, tkernel.ENOEXS},
			{"tk_rcv_mbx", func() tkernel.ER { _, er := k.RcvMbx(noSuch, tkernel.TmoPol); return er }, tkernel.ENOEXS},
			{"tk_snd_mbf", func() tkernel.ER { return k.SndMbf(mbf, []byte("m"), tkernel.TmoPol) }, tkernel.EOK},
			{"tk_rcv_mbf", func() tkernel.ER { _, er := k.RcvMbf(mbf, tkernel.TmoPol); return er }, tkernel.EOK},
			{"tk_snd_mbf", func() tkernel.ER { return k.SndMbf(noSuch, []byte("m"), tkernel.TmoPol) }, tkernel.ENOEXS},
			{"tk_rcv_mbf", func() tkernel.ER { _, er := k.RcvMbf(noSuch, tkernel.TmoPol); return er }, tkernel.ENOEXS},
			{"tk_loc_mtx", func() tkernel.ER { return k.LocMtx(mtx, tkernel.TmoPol) }, tkernel.EOK},
			{"tk_unl_mtx", func() tkernel.ER { return k.UnlMtx(mtx) }, tkernel.EOK},
			{"tk_loc_mtx", func() tkernel.ER { return k.LocMtx(noSuch, tkernel.TmoPol) }, tkernel.ENOEXS},
			{"tk_unl_mtx", func() tkernel.ER { return k.UnlMtx(noSuch) }, tkernel.ENOEXS},

			// Memory pools.
			{"tk_get_mpf", func() tkernel.ER { _, er := k.GetMpf(noSuch, tkernel.TmoPol); return er }, tkernel.ENOEXS},
			{"tk_rel_mpf", func() tkernel.ER { return k.RelMpf(noSuch, nil) }, tkernel.ENOEXS},
			{"tk_get_mpl", func() tkernel.ER { _, er := k.GetMpl(noSuch, 8, tkernel.TmoPol); return er }, tkernel.ENOEXS},
			{"tk_rel_mpl", func() tkernel.ER { return k.RelMpl(noSuch, nil) }, tkernel.ENOEXS},

			// Time-event handlers.
			{"tk_sta_alm", func() tkernel.ER { return k.StaAlm(alm, 50*sysc.Ms) }, tkernel.EOK},
			{"tk_stp_alm", func() tkernel.ER { return k.StpAlm(alm) }, tkernel.EOK},
			{"tk_sta_cyc", func() tkernel.ER { return k.StaCyc(cyc) }, tkernel.EOK},
			{"tk_stp_cyc", func() tkernel.ER { return k.StpCyc(cyc) }, tkernel.EOK},
			{"tk_sta_alm", func() tkernel.ER { return k.StaAlm(noSuch, sysc.Ms) }, tkernel.ENOEXS},
			{"tk_stp_alm", func() tkernel.ER { return k.StpAlm(noSuch) }, tkernel.ENOEXS},
			{"tk_sta_cyc", func() tkernel.ER { return k.StaCyc(noSuch) }, tkernel.ENOEXS},
			{"tk_stp_cyc", func() tkernel.ER { return k.StpCyc(noSuch) }, tkernel.ENOEXS},

			// Rendezvous.
			{"tk_cal_por", func() tkernel.ER { _, er := k.CalPor(noSuch, 1, nil, tkernel.TmoPol); return er }, tkernel.ENOEXS},
			{"tk_acp_por", func() tkernel.ER { _, _, er := k.AcpPor(noSuch, 1, tkernel.TmoPol); return er }, tkernel.ENOEXS},

			// Self-referential task services on valid paths.
			{"tk_slp_tsk", func() tkernel.ER { return k.SlpTsk(tkernel.TmoPol) }, 0},
			{"tk_dly_tsk", func() tkernel.ER { return k.DlyTsk(sysc.Ms) }, tkernel.EOK},
			{"tk_rot_rdq", func() tkernel.ER { return k.RotRdq(10) }, tkernel.EOK},

			// Remaining services: exercised for pairing; ER pinned only to the
			// call's own return below.
			{"tk_rpl_rdv", func() tkernel.ER { return k.RplRdv(0, nil) }, 0},
			{"tk_def_int", func() tkernel.ER { return k.DefInt(1, "irq1", hNoop) }, tkernel.EOK},

			// Object deletion: valid paths close out every created object.
			{"tk_del_sem", func() tkernel.ER { return k.DelSem(sem) }, tkernel.EOK},
			{"tk_del_flg", func() tkernel.ER { return k.DelFlg(flg) }, tkernel.EOK},
			{"tk_del_mbx", func() tkernel.ER { return k.DelMbx(mbx) }, tkernel.EOK},
			{"tk_del_mbf", func() tkernel.ER { return k.DelMbf(mbf) }, tkernel.EOK},
			{"tk_del_mpf", func() tkernel.ER { return k.DelMpf(mpf) }, tkernel.EOK},
			{"tk_del_mpl", func() tkernel.ER { return k.DelMpl(mpl) }, tkernel.EOK},
			{"tk_del_mtx", func() tkernel.ER { return k.DelMtx(mtx) }, tkernel.EOK},
			{"tk_del_por", func() tkernel.ER { return k.DelPor(por) }, tkernel.EOK},
			{"tk_del_alm", func() tkernel.ER { return k.DelAlm(alm) }, tkernel.EOK},
			{"tk_del_cyc", func() tkernel.ER { return k.DelCyc(cyc) }, tkernel.EOK},
			{"tk_del_tsk", func() tkernel.ER { return k.DelTsk(worker) }, tkernel.EOK},
			{"tk_del_sem", func() tkernel.ER { return k.DelSem(noSuch) }, tkernel.ENOEXS},
			{"tk_del_flg", func() tkernel.ER { return k.DelFlg(noSuch) }, tkernel.ENOEXS},
			{"tk_del_mbx", func() tkernel.ER { return k.DelMbx(noSuch) }, tkernel.ENOEXS},
			{"tk_del_mbf", func() tkernel.ER { return k.DelMbf(noSuch) }, tkernel.ENOEXS},
			{"tk_del_mpf", func() tkernel.ER { return k.DelMpf(noSuch) }, tkernel.ENOEXS},
			{"tk_del_mpl", func() tkernel.ER { return k.DelMpl(noSuch) }, tkernel.ENOEXS},
			{"tk_del_mtx", func() tkernel.ER { return k.DelMtx(noSuch) }, tkernel.ENOEXS},
			{"tk_del_por", func() tkernel.ER { return k.DelPor(noSuch) }, tkernel.ENOEXS},
			{"tk_del_alm", func() tkernel.ER { return k.DelAlm(noSuch) }, tkernel.ENOEXS},
			{"tk_del_cyc", func() tkernel.ER { return k.DelCyc(noSuch) }, tkernel.ENOEXS},
		}
		for i, c := range calls {
			er := c.do()
			// want == 0 with a non-EOK call (tk_slp_tsk poll, tk_rpl_rdv on a
			// bad rendezvous number) only pins exit-ER == returned-ER.
			if c.want != 0 && er != c.want {
				t.Errorf("call %d (%s): returned %v, want %v", i, c.svc, er, c.want)
			}
			got := chk.last()
			if got.name != c.svc {
				t.Errorf("call %d (%s): last svc-exit was %q", i, c.svc, got.name)
				continue
			}
			if got.er != er {
				t.Errorf("call %d (%s): exit published ER %v, call returned %v", i, c.svc, got.er, er)
			}
		}
	})
	run(t, sim, sysc.Sec)
	if len(chk.stack) != 0 {
		t.Errorf("unbalanced svc-enter stack at end of run: %v", chk.stack)
	}
	// Every distinct kernel service (59 enterSvc names) must have been exercised.
	seen := map[string]bool{}
	for _, e := range chk.exits {
		seen[e.name] = true
	}
	if len(seen) != 59 {
		t.Errorf("exercised %d distinct services, want 59: %v", len(seen), seen)
	}
}
