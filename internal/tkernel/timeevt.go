package tkernel

import (
	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// HandlerFunc is the body of a time-event or interrupt handler. It runs in
// handler (task-independent) context: task dispatching is delayed until it
// returns, and blocking service calls are forbidden (E_CTX). The handler
// consumes execution time/energy through the ctx.Work annotation.
type HandlerFunc func(ctx *HandlerCtx)

// HandlerCtx is the execution context handed to a running handler.
type HandlerCtx struct {
	K  *Kernel
	tt *core.TThread
}

// Work consumes handler execution time/energy (the handler's ETM/EEM).
func (h *HandlerCtx) Work(c core.Cost, note string) {
	h.tt.Consume(c, trace.CtxHandler, note)
}

// Now returns the current simulation time.
func (h *HandlerCtx) Now() sysc.Time { return h.tt.Now() }

// CyclicHandler is a T-Kernel cyclic handler (tk_cre_cyc family): a
// time-event handler started every cycle time once activated.
type CyclicHandler struct {
	id       ID
	name     string
	interval sysc.Time
	phase    sysc.Time
	active   bool
	tt       *core.TThread
	k        *Kernel
	fn       HandlerFunc
	overruns int
	fires    int
	gen      int // activation generation: stale timer entries are ignored
}

// CyclicInfo is the tk_ref_cyc snapshot.
type CyclicInfo struct {
	Name     string
	Active   bool
	Interval sysc.Time
	Fires    int
	Overruns int
}

// CreCyc creates a cyclic handler with the given cycle interval and initial
// phase (tk_cre_cyc). TA_STA semantics are obtained by calling StaCyc.
func (k *Kernel) CreCyc(name string, interval, phase sysc.Time, fn HandlerFunc) (_ ID, er ER) {
	k.enterSvc("tk_cre_cyc")
	defer k.exitSvc("tk_cre_cyc", &er)
	if interval <= 0 || phase < 0 {
		return 0, EPAR
	}
	k.nextCyc++
	id := k.nextCyc
	c := &CyclicHandler{id: id, name: name, interval: interval, phase: phase,
		k: k, fn: fn}
	c.tt = k.api.CreateThread(name, core.KindCyclicHandler, 0, func(tt *core.TThread) {
		fn(&HandlerCtx{K: k, tt: tt})
	})
	k.cycs[id] = c
	return id, EOK
}

// DelCyc deletes a cyclic handler (tk_del_cyc).
func (k *Kernel) DelCyc(id ID) (er ER) {
	k.enterSvc("tk_del_cyc")
	defer k.exitSvc("tk_del_cyc", &er)
	c, ok := k.cycs[id]
	if !ok {
		return ENOEXS
	}
	c.active = false
	c.gen++
	delete(k.cycs, id)
	return EOK
}

// StaCyc activates a cyclic handler: the first activation occurs after the
// phase, subsequent ones every interval (tk_sta_cyc).
func (k *Kernel) StaCyc(id ID) (er ER) {
	k.enterSvc("tk_sta_cyc")
	defer k.exitSvc("tk_sta_cyc", &er)
	c, ok := k.cycs[id]
	if !ok {
		return ENOEXS
	}
	if c.active {
		return EOK // restarting resets the phase
	}
	c.active = true
	c.gen++
	first := c.phase
	if first == 0 {
		first = c.interval
	}
	k.scheduleCyc(c, first)
	return EOK
}

// scheduleCyc arms the next firing d from now.
func (k *Kernel) scheduleCyc(c *CyclicHandler, d sysc.Time) {
	gen := c.gen
	k.after(d, func() {
		if !c.active || c.gen != gen {
			return
		}
		c.fires++
		if err := k.api.EnterInterrupt(c.tt); err != nil {
			c.overruns++ // previous activation still running
		}
		k.scheduleCyc(c, c.interval)
	})
}

// StpCyc deactivates a cyclic handler (tk_stp_cyc).
func (k *Kernel) StpCyc(id ID) (er ER) {
	k.enterSvc("tk_stp_cyc")
	defer k.exitSvc("tk_stp_cyc", &er)
	c, ok := k.cycs[id]
	if !ok {
		return ENOEXS
	}
	c.active = false
	c.gen++
	return EOK
}

// RefCyc returns the cyclic-handler state (tk_ref_cyc).
func (k *Kernel) RefCyc(id ID) (CyclicInfo, ER) {
	c, ok := k.cycs[id]
	if !ok {
		return CyclicInfo{}, ENOEXS
	}
	return CyclicInfo{Name: c.name, Active: c.active, Interval: c.interval,
		Fires: c.fires, Overruns: c.overruns}, EOK
}

// AlarmHandler is a T-Kernel alarm handler (tk_cre_alm family): a one-shot
// time-event handler started a relative time after activation.
type AlarmHandler struct {
	id     ID
	name   string
	active bool
	tt     *core.TThread
	k      *Kernel
	fn     HandlerFunc
	fires  int
	gen    int
}

// AlarmInfo is the tk_ref_alm snapshot.
type AlarmInfo struct {
	Name   string
	Active bool
	Fires  int
}

// CreAlm creates an alarm handler (tk_cre_alm).
func (k *Kernel) CreAlm(name string, fn HandlerFunc) (_ ID, er ER) {
	k.enterSvc("tk_cre_alm")
	defer k.exitSvc("tk_cre_alm", &er)
	k.nextAlm++
	id := k.nextAlm
	a := &AlarmHandler{id: id, name: name, k: k, fn: fn}
	a.tt = k.api.CreateThread(name, core.KindAlarmHandler, 0, func(tt *core.TThread) {
		fn(&HandlerCtx{K: k, tt: tt})
	})
	k.alms[id] = a
	return id, EOK
}

// DelAlm deletes an alarm handler (tk_del_alm).
func (k *Kernel) DelAlm(id ID) (er ER) {
	k.enterSvc("tk_del_alm")
	defer k.exitSvc("tk_del_alm", &er)
	a, ok := k.alms[id]
	if !ok {
		return ENOEXS
	}
	a.active = false
	a.gen++
	delete(k.alms, id)
	return EOK
}

// StaAlm arms the alarm to fire once, d from now (tk_sta_alm). Re-arming
// replaces the previous setting.
func (k *Kernel) StaAlm(id ID, d sysc.Time) (er ER) {
	k.enterSvc("tk_sta_alm")
	defer k.exitSvc("tk_sta_alm", &er)
	return k.staAlmBody(id, d)
}

// staAlmBody is the engine-split call body of StaAlm.
func (k *Kernel) staAlmBody(id ID, d sysc.Time) ER {
	a, ok := k.alms[id]
	if !ok {
		return ENOEXS
	}
	if d < 0 {
		return EPAR
	}
	a.active = true
	a.gen++
	gen := a.gen
	k.after(d, func() {
		if !a.active || a.gen != gen {
			return
		}
		a.active = false
		a.fires++
		_ = k.api.EnterInterrupt(a.tt)
	})
	return EOK
}

// StpAlm disarms the alarm (tk_stp_alm).
func (k *Kernel) StpAlm(id ID) (er ER) {
	k.enterSvc("tk_stp_alm")
	defer k.exitSvc("tk_stp_alm", &er)
	a, ok := k.alms[id]
	if !ok {
		return ENOEXS
	}
	a.active = false
	a.gen++
	return EOK
}

// RefAlm returns the alarm-handler state (tk_ref_alm).
func (k *Kernel) RefAlm(id ID) (AlarmInfo, ER) {
	a, ok := k.alms[id]
	if !ok {
		return AlarmInfo{}, ENOEXS
	}
	return AlarmInfo{Name: a.name, Active: a.active, Fires: a.fires}, EOK
}
