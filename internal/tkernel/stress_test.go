package tkernel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/run/opts"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
)

// stressOutcome captures everything the invariants check.
type stressOutcome struct {
	busy        sysc.Time
	totalCET    sysc.Time
	perTaskCET  []sysc.Time
	ctxSwitches uint64
	preemptions uint64
	checks      int
	finished    int
}

// runStress builds a random-but-seeded task system: tasks of random
// priority each perform a random program of work slices, delays, semaphore
// hand-offs and sleeps (woken by a partner), under a cyclic handler firing
// every 7 ms. Everything is derived from the seed, so identical seeds must
// give identical outcomes. The kernel invariants (non-overlap, accounting,
// queue consistency, Petri tokens) are checked live by the shared chaos
// oracle layer rather than reimplemented here.
func runStress(t *testing.T, seed int64, nTasks int, simFor sysc.Time) stressOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	g := trace.NewGantt()
	k := tkernel.New(sim, tkernel.Config{CommonOptions: opts.CommonOptions{Gantt: g}, Costs: tkernel.ZeroCosts()})
	orc := chaos.Attach(k, g, 1*sysc.Ms)

	finished := 0
	expectedWork := make([]sysc.Time, nTasks)
	ids := make([]tkernel.ID, nTasks)

	// Pre-generate each task's program so the closure order is
	// deterministic regardless of scheduling.
	type step struct {
		op  int // 0 work, 1 delay, 2 sem-signal, 3 sem-wait, 4 yield-rotate
		dur sysc.Time
	}
	programs := make([][]step, nTasks)
	for i := range programs {
		n := 3 + rng.Intn(6)
		for j := 0; j < n; j++ {
			st := step{op: rng.Intn(5), dur: sysc.Time(rng.Intn(4)+1) * sysc.Ms}
			if st.op == 0 {
				expectedWork[i] += st.dur
			}
			programs[i] = append(programs[i], st)
		}
	}

	k.Boot(func(k *tkernel.Kernel) {
		sem, _ := k.CreSem("stress-sem", tkernel.TaTPRI, 2, 1<<30)
		cyc, _ := k.CreCyc("stress-cyc", 7*sysc.Ms, 0, func(h *tkernel.HandlerCtx) {
			h.Work(core.Cost{Time: 100 * sysc.Us}, "tick-work")
			_ = h.K.SigSem(sem, 1) // keep the semaphore supplied
		})
		_ = k.StaCyc(cyc)
		for i := 0; i < nTasks; i++ {
			idx := i
			prio := 5 + rng.Intn(20)
			ids[i], _ = k.CreTsk(fmt.Sprintf("task%d", i), prio, func(task *tkernel.Task) {
				for _, st := range programs[idx] {
					switch st.op {
					case 0:
						k.Work(core.Cost{Time: st.dur, Energy: 1}, "work")
					case 1:
						_ = k.DlyTsk(st.dur)
					case 2:
						_ = k.SigSem(sem, 1)
					case 3:
						_ = k.WaiSem(sem, 1, st.dur) // bounded wait
					case 4:
						_ = k.RotRdq(0)
					}
				}
				finished++
			})
			_ = k.StaTsk(ids[i])
		}
	})
	if err := sim.Start(simFor); err != nil {
		t.Fatal(err)
	}
	orc.Final(simFor)

	out := stressOutcome{
		busy:        k.API().BusyTime(),
		ctxSwitches: k.API().ContextSwitches(),
		preemptions: k.API().Preemptions(),
		checks:      orc.Checks(),
		finished:    finished,
	}
	for _, id := range ids {
		info, _ := k.RefTsk(id)
		out.perTaskCET = append(out.perTaskCET, info.CET)
		out.totalCET += info.CET
	}

	// The shared invariant layer covers non-overlap, busy/CET accounting,
	// queue consistency, mutex/PI sanity, pool conservation and Petri
	// tokens — live, at every quiescent millisecond, not just at the end.
	if !orc.Passed() {
		for _, v := range orc.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		t.FailNow()
	}
	if out.checks == 0 {
		t.Fatalf("seed %d: oracle never ran", seed)
	}
	// Workload-specific invariant the generic oracles cannot know about:
	// completed tasks consumed exactly the work their program requested.
	for i, id := range ids {
		info, _ := k.RefTsk(id)
		if info.State == core.StateDormant && info.Cycles > 0 {
			if info.CET != expectedWork[i] {
				t.Fatalf("seed %d: task%d CET %v != requested %v",
					seed, i, info.CET, expectedWork[i])
			}
		}
	}
	return out
}

func TestStressRandomSystems(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			out := runStress(t, seed, 6, 500*sysc.Ms)
			if out.finished == 0 {
				t.Fatal("no task finished")
			}
		})
	}
}

func TestStressDeterminism(t *testing.T) {
	a := runStress(t, 42, 8, 300*sysc.Ms)
	b := runStress(t, 42, 8, 300*sysc.Ms)
	if a.busy != b.busy || a.ctxSwitches != b.ctxSwitches ||
		a.preemptions != b.preemptions || a.finished != b.finished {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.perTaskCET {
		if a.perTaskCET[i] != b.perTaskCET[i] {
			t.Fatalf("task %d CET differs: %v vs %v", i, a.perTaskCET[i], b.perTaskCET[i])
		}
	}
}

func TestStressManyTasks(t *testing.T) {
	out := runStress(t, 7, 24, 1*sysc.Sec)
	if out.finished < 20 {
		t.Fatalf("only %d/24 tasks finished in 1 s", out.finished)
	}
	if out.ctxSwitches == 0 || out.preemptions == 0 {
		t.Fatalf("implausible kernel activity: %+v", out)
	}
}
