package tkernel

// Event flag wait modes (tk_wai_flg).
type FlagMode uint32

// Wait-mode bits.
const (
	TwfANDW   FlagMode = 0      // wait until all bits of waiptn are set
	TwfORW    FlagMode = 1 << 0 // wait until any bit of waiptn is set
	TwfCLR    FlagMode = 1 << 1 // clear the whole pattern on release
	TwfBitCLR FlagMode = 1 << 2 // clear only the matched bits on release
)

// EventFlag is a T-Kernel event flag: a 32-bit pattern tasks wait on with
// AND/OR conditions and optional clearing (tk_cre_flg family).
type EventFlag struct {
	id      ID
	name    string
	attr    Attr
	pattern uint32
	wq      waitQueue
	waits   map[*Task]*flgWait
}

type flgWait struct {
	waiptn uint32
	mode   FlagMode
	relptn *uint32 // where to deliver the release pattern
}

// FlagInfo is the tk_ref_flg snapshot.
type FlagInfo struct {
	ID      ID
	Name    string
	Pattern uint32
	Waiting []WaitRef
}

// CreFlg creates an event flag with an initial pattern (tk_cre_flg).
// TaWMUL permits multiple simultaneous waiters.
func (k *Kernel) CreFlg(name string, attr Attr, init uint32) (_ ID, er ER) {
	k.enterSvc("tk_cre_flg")
	defer k.exitSvc("tk_cre_flg", &er)
	k.nextFlg++
	id := k.nextFlg
	k.flags[id] = &EventFlag{
		id: id, name: name, attr: attr, pattern: init,
		wq:    newWaitQueue(attr),
		waits: map[*Task]*flgWait{},
	}
	return id, EOK
}

// DelFlg deletes an event flag; waiters are released with E_DLT (tk_del_flg).
func (k *Kernel) DelFlg(id ID) (er ER) {
	k.enterSvc("tk_del_flg")
	defer k.exitSvc("tk_del_flg", &er)
	f, ok := k.flags[id]
	if !ok {
		return ENOEXS
	}
	f.wq.drain(func(t *Task) {
		delete(f.waits, t)
		k.wake(t, EDLT)
	})
	delete(k.flags, id)
	return EOK
}

// flgMatch evaluates a wait condition against the current pattern.
func flgMatch(pattern, waiptn uint32, mode FlagMode) bool {
	if mode&TwfORW != 0 {
		return pattern&waiptn != 0
	}
	return pattern&waiptn == waiptn
}

// SetFlg sets bits in the pattern and releases all satisfied waiters in
// queue order (tk_set_flg).
func (k *Kernel) SetFlg(id ID, setptn uint32) (er ER) {
	k.enterSvc("tk_set_flg")
	defer k.exitSvc("tk_set_flg", &er)
	return k.setFlgBody(id, setptn)
}

// setFlgBody is the engine-split call body of SetFlg.
func (k *Kernel) setFlgBody(id ID, setptn uint32) ER {
	f, ok := k.flags[id]
	if !ok {
		return ENOEXS
	}
	f.pattern |= setptn
	k.flgRelease(f)
	return EOK
}

// flgRelease walks the wait queue releasing satisfied waiters; TwfCLR and
// TwfBitCLR clearing can unsatisfy later waiters, so the scan restarts on
// every successful release.
func (k *Kernel) flgRelease(f *EventFlag) {
	for {
		released := false
		for t := f.wq.head(); t != nil; t = t.wqNext {
			w := f.waits[t]
			if w == nil || !flgMatch(f.pattern, w.waiptn, w.mode) {
				continue
			}
			if w.relptn != nil {
				*w.relptn = f.pattern
			}
			if w.mode&TwfCLR != 0 {
				f.pattern = 0
			} else if w.mode&TwfBitCLR != 0 {
				f.pattern &^= w.waiptn
			}
			f.wq.remove(t)
			delete(f.waits, t)
			k.wake(t, EOK)
			released = true
			break
		}
		if !released {
			return
		}
	}
}

// ClrFlg clears bits: pattern &= clrptn (tk_clr_flg; clrptn is the mask of
// bits to KEEP, per the T-Kernel signature).
func (k *Kernel) ClrFlg(id ID, clrptn uint32) (er ER) {
	k.enterSvc("tk_clr_flg")
	defer k.exitSvc("tk_clr_flg", &er)
	f, ok := k.flags[id]
	if !ok {
		return ENOEXS
	}
	f.pattern &= clrptn
	return EOK
}

// WaiFlg waits until the flag pattern satisfies (waiptn, mode), delivering
// the pattern at release time (tk_wai_flg).
func (k *Kernel) WaiFlg(id ID, waiptn uint32, mode FlagMode, tmout TMO) (_ uint32, er ER) {
	k.enterSvc("tk_wai_flg")
	defer k.exitSvc("tk_wai_flg", &er)
	var relptn uint32
	er = k.finish(k.waiFlgBody(id, waiptn, mode, tmout, &relptn))
	return relptn, er
}

// waiFlgBody is the engine-split call body of WaiFlg: the release pattern
// is delivered through relptn (zero on error paths).
func (k *Kernel) waiFlgBody(id ID, waiptn uint32, mode FlagMode, tmout TMO, relptn *uint32) (ER, *armedWait) {
	f, ok := k.flags[id]
	if !ok {
		return ENOEXS, nil
	}
	if waiptn == 0 {
		return EPAR, nil
	}
	if f.attr&TaWMUL == 0 && f.wq.len() > 0 {
		return EOBJ, nil // single-waiter flag already has a waiter
	}
	if flgMatch(f.pattern, waiptn, mode) {
		*relptn = f.pattern
		if mode&TwfCLR != 0 {
			f.pattern = 0
		} else if mode&TwfBitCLR != 0 {
			f.pattern &^= waiptn
		}
		return EOK, nil
	}
	if tmout == TmoPol {
		return ETMOUT, nil
	}
	task, er := k.blockCheck(tmout)
	if er != EOK {
		return er, nil
	}
	f.wq.add(task)
	f.waits[task] = &flgWait{waiptn: waiptn, mode: mode, relptn: relptn}
	return EOK, k.armSleep(task, objName("flg", f.id, f.name), tmout, func() {
		f.wq.remove(task)
		delete(f.waits, task)
	})
}

// RefFlg returns the event-flag state (tk_ref_flg).
func (k *Kernel) RefFlg(id ID) (FlagInfo, ER) {
	f, ok := k.flags[id]
	if !ok {
		return FlagInfo{}, ENOEXS
	}
	return FlagInfo{ID: f.id, Name: f.name, Pattern: f.pattern,
		Waiting: f.wq.refs()}, EOK
}
