package tkernel_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

func TestMailboxFIFO(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbx, _ := k.CreMbx("m", tkernel.TaMFIFO)
		_ = k.SndMbx(mbx, &tkernel.Message{Payload: "first"})
		_ = k.SndMbx(mbx, &tkernel.Message{Payload: "second"})
		m1, er := k.RcvMbx(mbx, tkernel.TmoPol)
		if er != tkernel.EOK || m1.Payload != "first" {
			t.Errorf("rcv1 = %v, %v", m1, er)
		}
		m2, _ := k.RcvMbx(mbx, tkernel.TmoPol)
		if m2.Payload != "second" {
			t.Errorf("rcv2 = %v", m2)
		}
		if _, er := k.RcvMbx(mbx, tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("empty poll: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestMailboxPriorityOrder(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbx, _ := k.CreMbx("m", tkernel.TaMPRI)
		_ = k.SndMbx(mbx, &tkernel.Message{Priority: 5, Payload: "mid"})
		_ = k.SndMbx(mbx, &tkernel.Message{Priority: 9, Payload: "low"})
		_ = k.SndMbx(mbx, &tkernel.Message{Priority: 1, Payload: "high"})
		want := []string{"high", "mid", "low"}
		for _, w := range want {
			m, _ := k.RcvMbx(mbx, tkernel.TmoPol)
			if m.Payload != w {
				t.Errorf("got %v, want %s", m.Payload, w)
			}
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestMailboxBlockingReceive(t *testing.T) {
	var at sysc.Time
	var got any
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbx, _ := k.CreMbx("m", tkernel.TaMFIFO)
		id, _ := k.CreTsk("rcv", 10, func(task *tkernel.Task) {
			m, er := k.RcvMbx(mbx, tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("RcvMbx: %v", er)
				return
			}
			got, at = m.Payload, k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(6 * sysc.Ms)
		_ = k.SndMbx(mbx, &tkernel.Message{Payload: 42})
	})
	run(t, sim, sysc.Sec)
	if at != 6*sysc.Ms || got != 42 {
		t.Fatalf("at=%v got=%v", at, got)
	}
}

func TestMailboxReceiveTimeout(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbx, _ := k.CreMbx("m", tkernel.TaMFIFO)
		id, _ := k.CreTsk("rcv", 10, func(task *tkernel.Task) {
			_, code = k.RcvMbx(mbx, 4*sysc.Ms)
		})
		_ = k.StaTsk(id)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ETMOUT {
		t.Fatalf("code = %v", code)
	}
}

func TestMessageBufferCopySemantics(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 256, 64)
		src := []byte("hello")
		_ = k.SndMbf(mbf, src, tkernel.TmoPol)
		src[0] = 'X' // mutating the source must not affect the queued copy
		got, er := k.RcvMbf(mbf, tkernel.TmoPol)
		if er != tkernel.EOK || !bytes.Equal(got, []byte("hello")) {
			t.Errorf("got %q, %v", got, er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestMessageBufferValidation(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 64, 16)
		if er := k.SndMbf(mbf, make([]byte, 17), tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("oversize: %v", er)
		}
		if er := k.SndMbf(mbf, nil, tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("empty: %v", er)
		}
		if er := k.SndMbf(999, []byte("x"), tkernel.TmoPol); er != tkernel.ENOEXS {
			t.Errorf("unknown: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestMessageBufferSenderBlocksWhenFull(t *testing.T) {
	var sentAt sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		// 24 bytes: fits exactly one 16-byte message (+4 header) but not two.
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 24, 16)
		id, _ := k.CreTsk("snd", 10, func(task *tkernel.Task) {
			_ = k.SndMbf(mbf, make([]byte, 16), tkernel.TmoFevr) // fills
			if er := k.SndMbf(mbf, make([]byte, 16), tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("second send: %v", er)
			}
			sentAt = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(5 * sysc.Ms)
		if _, er := k.RcvMbf(mbf, tkernel.TmoPol); er != tkernel.EOK {
			t.Errorf("drain: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if sentAt != 5*sysc.Ms {
		t.Fatalf("second send completed at %v, want 5 ms", sentAt)
	}
}

func TestMessageBufferZeroSizeRendezvous(t *testing.T) {
	var sndDone, rcvDone sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 0, 32)
		snd, _ := k.CreTsk("snd", 10, func(task *tkernel.Task) {
			if er := k.SndMbf(mbf, []byte("sync"), tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("snd: %v", er)
			}
			sndDone = k.Sim().Now()
		})
		rcv, _ := k.CreTsk("rcv", 11, func(task *tkernel.Task) {
			got, er := k.RcvMbf(mbf, tkernel.TmoFevr)
			if er != tkernel.EOK || string(got) != "sync" {
				t.Errorf("rcv: %q %v", got, er)
			}
			rcvDone = k.Sim().Now()
		})
		_ = k.StaTsk(snd)
		_ = k.DlyTsk(3 * sysc.Ms) // sender blocks (no buffer space)
		_ = k.StaTsk(rcv)
	})
	run(t, sim, sysc.Sec)
	if sndDone != 3*sysc.Ms || rcvDone != 3*sysc.Ms {
		t.Fatalf("rendezvous at snd=%v rcv=%v, want both 3 ms", sndDone, rcvDone)
	}
}

func TestMessageBufferFIFOAcrossBlockedSenders(t *testing.T) {
	var got []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mbf, _ := k.CreMbf("b", tkernel.TaTFIFO, 12, 8) // one 8-byte msg max
		mkSender := func(name string, msg string) tkernel.ID {
			id, _ := k.CreTsk(name, 10, func(task *tkernel.Task) {
				_ = k.SndMbf(mbf, []byte(msg), tkernel.TmoFevr)
			})
			return id
		}
		s1 := mkSender("s1", "one")
		s2 := mkSender("s2", "two")
		s3 := mkSender("s3", "three")
		_ = k.StaTsk(s1)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.StaTsk(s2)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.StaTsk(s3)
		_ = k.DlyTsk(1 * sysc.Ms)
		for i := 0; i < 3; i++ {
			m, er := k.RcvMbf(mbf, tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("rcv %d: %v", i, er)
			}
			got = append(got, string(m))
			_ = k.DlyTsk(1 * sysc.Ms)
		}
	})
	run(t, sim, sysc.Sec)
	want := []string{"one", "two", "three"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFixedPoolExhaustionAndHandoff(t *testing.T) {
	var gotAt sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpf, _ := k.CreMpf("p", tkernel.TaTFIFO, 2, 32)
		b1, er := k.GetMpf(mpf, tkernel.TmoPol)
		if er != tkernel.EOK || len(b1.Data) != 32 {
			t.Fatalf("get1: %v", er)
		}
		b2, _ := k.GetMpf(mpf, tkernel.TmoPol)
		if _, er := k.GetMpf(mpf, tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("exhausted poll: %v", er)
		}
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			b, er := k.GetMpf(mpf, tkernel.TmoFevr)
			if er != tkernel.EOK || b == nil {
				t.Errorf("blocked get: %v", er)
				return
			}
			gotAt = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(4 * sysc.Ms)
		_ = k.RelMpf(mpf, b1)
		info, _ := k.RefMpf(mpf)
		if info.Free != 0 { // handed straight to the waiter
			t.Errorf("free = %d", info.Free)
		}
		_ = k.RelMpf(mpf, b2)
	})
	run(t, sim, sysc.Sec)
	if gotAt != 4*sysc.Ms {
		t.Fatalf("blocked get completed at %v", gotAt)
	}
}

func TestFixedPoolDoubleFreeRejected(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpf, _ := k.CreMpf("p", tkernel.TaTFIFO, 1, 16)
		b, _ := k.GetMpf(mpf, tkernel.TmoPol)
		if er := k.RelMpf(mpf, b); er != tkernel.EOK {
			t.Errorf("rel: %v", er)
		}
		if er := k.RelMpf(mpf, b); er != tkernel.EPAR {
			t.Errorf("double free: %v", er)
		}
		if er := k.RelMpf(mpf, nil); er != tkernel.EPAR {
			t.Errorf("nil: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestFixedPoolBlocksAreDisjoint(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpf, _ := k.CreMpf("p", tkernel.TaTFIFO, 4, 8)
		var blocks []*tkernel.MemBlock
		for i := 0; i < 4; i++ {
			b, er := k.GetMpf(mpf, tkernel.TmoPol)
			if er != tkernel.EOK {
				t.Fatalf("get %d: %v", i, er)
			}
			for j := range b.Data {
				b.Data[j] = byte(i)
			}
			blocks = append(blocks, b)
		}
		for i, b := range blocks {
			for _, v := range b.Data {
				if v != byte(i) {
					t.Fatalf("block %d corrupted: %v", i, b.Data)
				}
			}
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestVariablePoolAllocFreeCoalesce(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpl, _ := k.CreMpl("v", tkernel.TaTFIFO, 1024)
		info, _ := k.RefMpl(mpl)
		total := info.FreeBytes
		a, er := k.GetMpl(mpl, 100, tkernel.TmoPol)
		if er != tkernel.EOK || len(a.Data) < 100 {
			t.Fatalf("alloc a: %v", er)
		}
		b, _ := k.GetMpl(mpl, 200, tkernel.TmoPol)
		c, _ := k.GetMpl(mpl, 300, tkernel.TmoPol)
		// Free the middle block, then its neighbours: everything coalesces.
		_ = k.RelMpl(mpl, b)
		_ = k.RelMpl(mpl, a)
		_ = k.RelMpl(mpl, c)
		info, _ = k.RefMpl(mpl)
		if info.FreeBytes != total {
			t.Fatalf("leak: free %d of %d", info.FreeBytes, total)
		}
		// One coalesced hole: max allocation equals the whole pool again.
		if _, er := k.GetMpl(mpl, 1000, tkernel.TmoPol); er != tkernel.EOK {
			t.Fatalf("full-size realloc failed: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestVariablePoolBlockingGet(t *testing.T) {
	var at sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpl, _ := k.CreMpl("v", tkernel.TaTFIFO, 256)
		big, _ := k.GetMpl(mpl, 200, tkernel.TmoPol)
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			b, er := k.GetMpl(mpl, 200, tkernel.TmoFevr)
			if er != tkernel.EOK || b == nil {
				t.Errorf("blocked alloc: %v", er)
				return
			}
			at = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(3 * sysc.Ms)
		_ = k.RelMpl(mpl, big)
	})
	run(t, sim, sysc.Sec)
	if at != 3*sysc.Ms {
		t.Fatalf("alloc completed at %v", at)
	}
}

func TestVariablePoolValidation(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpl, _ := k.CreMpl("v", tkernel.TaTFIFO, 128)
		if _, er := k.GetMpl(mpl, 0, tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("zero size: %v", er)
		}
		if _, er := k.GetMpl(mpl, 10000, tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("oversize: %v", er)
		}
		b, _ := k.GetMpl(mpl, 16, tkernel.TmoPol)
		if er := k.RelMpl(mpl, b); er != tkernel.EOK {
			t.Errorf("rel: %v", er)
		}
		if er := k.RelMpl(mpl, b); er != tkernel.EPAR {
			t.Errorf("double free: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestVariablePoolWriteIntegrity(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mpl, _ := k.CreMpl("v", tkernel.TaTFIFO, 512)
		a, _ := k.GetMpl(mpl, 64, tkernel.TmoPol)
		b, _ := k.GetMpl(mpl, 64, tkernel.TmoPol)
		for i := range a.Data {
			a.Data[i] = 0xAA
		}
		for i := range b.Data {
			b.Data[i] = 0xBB
		}
		for _, v := range a.Data {
			if v != 0xAA {
				t.Fatal("block a corrupted by block b")
			}
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestWorkChargesCallerOnly(t *testing.T) {
	k, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 5 * sysc.Ms, Energy: 1}, "block")
		})
		_ = k.StaTsk(id)
	})
	run(t, sim, 100*sysc.Ms)
	tt := k.API().LookupByName("w")
	if tt.CET() != 5*sysc.Ms {
		t.Fatalf("CET = %v", tt.CET())
	}
}
