package tkernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// boot builds a kernel on a fresh simulator with zero kernel-cost
// annotations (exact timing assertions) and boots userMain as the INIT task.
func boot(t *testing.T, main func(k *tkernel.Kernel)) (*tkernel.Kernel, *sysc.Simulator) {
	t.Helper()
	sim := sysc.NewSimulator()
	k := tkernel.New(sim, tkernel.Config{Costs: tkernel.ZeroCosts()})
	k.Boot(main)
	t.Cleanup(sim.Shutdown)
	return k, sim
}

func run(t *testing.T, sim *sysc.Simulator, until sysc.Time) {
	t.Helper()
	if err := sim.Start(until); err != nil {
		t.Fatal(err)
	}
}

func TestBootRunsInitAndUserTasks(t *testing.T) {
	var order []string
	k, sim := boot(t, func(k *tkernel.Kernel) {
		order = append(order, "init")
		id, er := k.CreTsk("worker", 10, func(task *tkernel.Task) {
			order = append(order, "worker")
		})
		if er != tkernel.EOK {
			t.Errorf("CreTsk: %v", er)
		}
		if er := k.StaTsk(id); er != tkernel.EOK {
			t.Errorf("StaTsk: %v", er)
		}
	})
	run(t, sim, 100*sysc.Ms)
	if len(order) != 2 || order[0] != "init" || order[1] != "worker" {
		t.Fatalf("order = %v", order)
	}
	if k.Ticks() == 0 {
		t.Fatal("timer ticks did not advance")
	}
}

func TestCreTskValidation(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if _, er := k.CreTsk("bad", 0, func(*tkernel.Task) {}); er != tkernel.EPAR {
			t.Errorf("priority 0: %v", er)
		}
		if _, er := k.CreTsk("bad", 10000, func(*tkernel.Task) {}); er != tkernel.EPAR {
			t.Errorf("priority 10000: %v", er)
		}
	})
	run(t, sim, 10*sysc.Ms)
}

func TestStaTskErrors(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if er := k.StaTsk(999); er != tkernel.ENOEXS {
			t.Errorf("unknown id: %v", er)
		}
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			_ = k.SlpTsk(tkernel.TmoFevr)
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(5 * sysc.Ms) // let worker start and block
		if er := k.StaTsk(id); er != tkernel.EOBJ {
			t.Errorf("double start: %v", er)
		}
	})
	run(t, sim, 100*sysc.Ms)
}

func TestSlpWupRoundTrip(t *testing.T) {
	var wokeAt sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("sleeper", 10, func(task *tkernel.Task) {
			if er := k.SlpTsk(tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("SlpTsk: %v", er)
			}
			wokeAt = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(10 * sysc.Ms)
		if er := k.WupTsk(id); er != tkernel.EOK {
			t.Errorf("WupTsk: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if wokeAt != 10*sysc.Ms {
		t.Fatalf("woke at %v, want 10 ms", wokeAt)
	}
}

func TestQueuedWakeup(t *testing.T) {
	var immediate bool
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("sleeper", 10, func(task *tkernel.Task) {
			start := k.Sim().Now()
			if er := k.SlpTsk(tkernel.TmoFevr); er != tkernel.EOK {
				t.Errorf("SlpTsk: %v", er)
			}
			immediate = k.Sim().Now() == start
		})
		// Wakeup BEFORE the sleep: queues.
		_ = k.StaTsk(id)
		if er := k.WupTsk(id); er != tkernel.EOK {
			t.Errorf("WupTsk: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if !immediate {
		t.Fatal("queued wakeup should complete the sleep immediately")
	}
}

func TestCanWup(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			_ = k.DlyTsk(20 * sysc.Ms)
		})
		_ = k.StaTsk(id)
		_ = k.WupTsk(id)
		_ = k.WupTsk(id)
		n, er := k.CanWup(id)
		if er != tkernel.EOK || n != 2 {
			t.Errorf("CanWup = %d, %v", n, er)
		}
		n, _ = k.CanWup(id)
		if n != 0 {
			t.Errorf("second CanWup = %d", n)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestSlpTskTimeout(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("sleeper", 10, func(task *tkernel.Task) {
			code = k.SlpTsk(5 * sysc.Ms)
			at = k.Sim().Now()
		})
		_ = k.StaTsk(id)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ETMOUT {
		t.Fatalf("code = %v, want E_TMOUT", code)
	}
	if at != 5*sysc.Ms {
		t.Fatalf("timed out at %v, want 5 ms (tick-aligned)", at)
	}
}

func TestSlpTskPolling(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if er := k.SlpTsk(tkernel.TmoPol); er != tkernel.ETMOUT {
			t.Errorf("polling sleep with no wakeup: %v", er)
		}
	})
	run(t, sim, 10*sysc.Ms)
}

func TestDlyTsk(t *testing.T) {
	var at sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if er := k.DlyTsk(7 * sysc.Ms); er != tkernel.EOK {
			t.Errorf("DlyTsk: %v", er)
		}
		at = k.Sim().Now()
		// A wakeup must NOT shorten a delay.
		id, _ := k.CreTsk("d", 10, func(task *tkernel.Task) {
			start := k.Sim().Now()
			_ = k.DlyTsk(10 * sysc.Ms)
			if k.Sim().Now()-start < 10*sysc.Ms {
				t.Error("wakeup shortened a delay")
			}
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.WupTsk(id)
	})
	run(t, sim, sysc.Sec)
	if at != 7*sysc.Ms {
		t.Fatalf("delay ended at %v", at)
	}
}

func TestRelWai(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("sleeper", 10, func(task *tkernel.Task) {
			code = k.SlpTsk(tkernel.TmoFevr)
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(3 * sysc.Ms)
		if er := k.RelWai(id); er != tkernel.EOK {
			t.Errorf("RelWai: %v", er)
		}
		if er := k.RelWai(id); er != tkernel.EOBJ {
			t.Errorf("RelWai on non-waiting: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ERLWAI {
		t.Fatalf("release code = %v, want E_RLWAI", code)
	}
}

func TestSusRsmTsk(t *testing.T) {
	var end sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 10 * sysc.Ms}, "busy")
			end = k.Sim().Now()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(2 * sysc.Ms)
		_ = k.SusTsk(id)
		_ = k.DlyTsk(5 * sysc.Ms)
		_ = k.RsmTsk(id)
	})
	run(t, sim, sysc.Sec)
	// Ran 0..2 (after init), suspended 2..7, resumed: 8 more ms -> 15.
	if end != 15*sysc.Ms {
		t.Fatalf("end = %v, want 15 ms", end)
	}
}

func TestFrsmTsk(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 5 * sysc.Ms}, "busy")
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.SusTsk(id)
		_ = k.SusTsk(id)
		_ = k.SusTsk(id)
		info, _ := k.RefTsk(id)
		if info.SusCount != 3 {
			t.Errorf("suscount = %d", info.SusCount)
		}
		if er := k.FrsmTsk(id); er != tkernel.EOK {
			t.Errorf("FrsmTsk: %v", er)
		}
		info, _ = k.RefTsk(id)
		if info.SusCount != 0 || info.State != core.StateReady {
			t.Errorf("after frsm: %+v", info)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestChgPri(t *testing.T) {
	var order []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		a, _ := k.CreTsk("a", 10, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 4 * sysc.Ms}, "")
			order = append(order, "a")
		})
		b, _ := k.CreTsk("b", 12, func(task *tkernel.Task) {
			k.Work(core.Cost{Time: 4 * sysc.Ms}, "")
			order = append(order, "b")
		})
		_ = k.StaTsk(a)
		_ = k.StaTsk(b)
		// b is behind a; raise b above a: preempts immediately when INIT
		// sleeps.
		if er := k.ChgPri(b, 5); er != tkernel.EOK {
			t.Errorf("ChgPri: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if len(order) != 2 || order[0] != "b" {
		t.Fatalf("order = %v, want b first", order)
	}
}

func TestChgPriValidation(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("w", 10, func(*tkernel.Task) {})
		if er := k.ChgPri(id, 0); er != tkernel.EPAR {
			t.Errorf("bad pri: %v", er)
		}
		if er := k.ChgPri(id, 10); er != tkernel.EOBJ {
			t.Errorf("dormant: %v", er)
		}
		if er := k.ChgPri(999, 10); er != tkernel.ENOEXS {
			t.Errorf("unknown: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestTerTskAndRestart(t *testing.T) {
	runs := 0
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("victim", 10, func(task *tkernel.Task) {
			runs++
			k.Work(core.Cost{Time: 100 * sysc.Ms}, "")
			runs += 100 // must not be reached on the first run
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(5 * sysc.Ms)
		if er := k.TerTsk(id); er != tkernel.EOK {
			t.Errorf("TerTsk: %v", er)
		}
		info, _ := k.RefTsk(id)
		if info.State != core.StateDormant {
			t.Errorf("state %v", info.State)
		}
		if er := k.TerTsk(id); er != tkernel.EOBJ {
			t.Errorf("TerTsk dormant: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if runs != 1 {
		t.Fatalf("runs = %d", runs)
	}
}

func TestExtTskUnwinds(t *testing.T) {
	reached := false
	var state core.State
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("quitter", 10, func(task *tkernel.Task) {
			_ = k.ExtTsk()
			reached = true // unreachable
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(5 * sysc.Ms)
		info, _ := k.RefTsk(id)
		state = info.State
	})
	run(t, sim, sysc.Sec)
	if reached {
		t.Fatal("code after ExtTsk executed")
	}
	if state != core.StateDormant {
		t.Fatalf("state %v", state)
	}
}

func TestDelTsk(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		id, _ := k.CreTsk("w", 10, func(*tkernel.Task) {})
		if er := k.DelTsk(id); er != tkernel.EOK {
			t.Errorf("DelTsk: %v", er)
		}
		if er := k.DelTsk(id); er != tkernel.ENOEXS {
			t.Errorf("DelTsk again: %v", er)
		}
		if er := k.StaTsk(id); er != tkernel.ENOEXS {
			t.Errorf("StaTsk deleted: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestGetTidAndRefTsk(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		var inner tkernel.ID
		id, _ := k.CreTsk("w", 10, func(task *tkernel.Task) {
			inner = k.GetTid()
		})
		_ = k.StaTsk(id)
		_ = k.DlyTsk(3 * sysc.Ms)
		if inner != id {
			t.Errorf("GetTid inside task = %d, want %d", inner, id)
		}
		info, er := k.RefTsk(id)
		if er != tkernel.EOK || info.Name != "w" || info.Cycles != 1 {
			t.Errorf("RefTsk = %+v, %v", info, er)
		}
	})
	run(t, sim, sysc.Sec)
}

func TestRotRdqTimeSlicing(t *testing.T) {
	var finished []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		mk := func(name string) tkernel.ID {
			id, _ := k.CreTsk(name, 10, func(task *tkernel.Task) {
				k.Work(core.Cost{Time: 6 * sysc.Ms}, "")
				finished = append(finished, name)
			})
			return id
		}
		a, b := mk("a"), mk("b")
		_ = k.StaTsk(a)
		_ = k.StaTsk(b)
		// Rotate the priority-10 class every 2 ms from INIT (higher prio).
		for i := 0; i < 10; i++ {
			_ = k.DlyTsk(2 * sysc.Ms)
			_ = k.RotRdq(10)
		}
	})
	run(t, sim, sysc.Sec)
	// Interleaved: a 0-2, b 2-4, a 4-6, b 6-8, a 8-10 (a done), b 10-12.
	if len(finished) != 2 || finished[0] != "a" || finished[1] != "b" {
		t.Fatalf("finished = %v", finished)
	}
}

func TestSystemTime(t *testing.T) {
	k, sim := boot(t, func(k *tkernel.Kernel) {
		k.SetSystemTime(1000 * sysc.Sec)
	})
	run(t, sim, 50*sysc.Ms)
	want := 1000*sysc.Sec + 50*sysc.Ms
	if got := k.SystemTime(); got != want {
		t.Fatalf("system time = %v, want %v", got, want)
	}
}

func TestBlockFromInitWithDispatchDisabled(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if er := k.DisDsp(); er != tkernel.EOK {
			t.Errorf("DisDsp: %v", er)
		}
		sys := k.RefSys()
		if !sys.DispatchDis {
			t.Error("DispatchDis not reported")
		}
		if er := k.EnaDsp(); er != tkernel.EOK {
			t.Errorf("EnaDsp: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}
