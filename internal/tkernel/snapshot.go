package tkernel

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sysc"
)

// This file is the T-Kernel layer of the kernel snapshot stack
// (internal/snapshot): quiescent-point capture and in-place restore of
// every kernel object's dynamic state — wait queues, counts, patterns,
// buffered messages, handler activation state, the timer queue and the
// system clock bookkeeping. It sits above core.SimAPI.SaveState (which
// owns the T-THREADs) and sysc.SaveState (which owns processes, events
// and the timed heap).
//
// Closures are restorable here because every one the kernel arms —
// wait-timeout cancellations, cyclic/alarm firing entries — captures only
// pointers that are stable across one construction (the kernel, a task, a
// handler) plus guard counters (waitSeq, gen) that the restore writes
// back, so a replayed closure observes exactly the state it was created
// against. The timer queue is therefore captured as a value copy of its
// heap array, closures included, in exact array order.
//
// Not every object class is supported yet: memory pools hand out
// *MemBlock pointers that application closures hold across waits, and
// mailboxes/rendezvous carry caller-owned message headers — state the
// kernel cannot re-root. Capture refuses when such objects exist; callers
// fall back to a cold run.

// TaskSnap is the captured kernel-side state of one task (the T-THREAD
// side is captured by core.SimAPI.SaveState).
type TaskSnap struct {
	ID       ID
	WupCount int
	WaitSeq  int
	Cancel   func() // armed wait-cancellation closure (nil when not waiting)
	AwTask   bool   // task.aw.task is set
	AwObj    string
	Owned    []ID // locked mutexes, acquisition order

	// Compiled program machine resumption state (continuation engine).
	HasMachine bool
	PC         int
	SP         uint8
	AwArmed    bool
}

// SemSnap is the captured state of one semaphore. Wait and Need are
// parallel: Need[i] is the resource request of waiting task Wait[i].
type SemSnap struct {
	ID    ID
	Count int
	Wait  []ID
	Need  []int
}

// FlgSnap is the captured state of one event flag. The per-waiter arrays
// are parallel to Wait; Relptn is the delivery pointer of each waiter — a
// stable per-task scratch slot, kept as a pointer because the value it
// addresses is owned (and captured) by the workload layer.
type FlgSnap struct {
	ID      ID
	Pattern uint32
	Wait    []ID
	Waiptn  []uint32
	Mode    []FlagMode
	Relptn  []*uint32
}

// MtxSnap is the captured state of one mutex.
type MtxSnap struct {
	ID       ID
	HasOwner bool
	Owner    ID
	Wait     []ID
}

// MbfSnap is the captured state of one message buffer. SendMsg is
// parallel to SendQ (the message each blocked sender wants to enqueue);
// RecvDst is parallel to RecvQ (each blocked receiver's delivery slot, a
// stable workload-owned scratch pointer).
type MbfSnap struct {
	ID      ID
	Used    int
	Msgs    [][]byte
	SendQ   []ID
	SendMsg [][]byte
	RecvQ   []ID
	RecvDst []*[]byte
}

// CycSnap is the captured state of one cyclic handler.
type CycSnap struct {
	ID       ID
	Active   bool
	Fires    int
	Overruns int
	Gen      int

	HasMachine bool
	PC         int
	SP         uint8
}

// AlmSnap is the captured state of one alarm handler.
type AlmSnap struct {
	ID     ID
	Active bool
	Fires  int
	Gen    int

	HasMachine bool
	PC         int
	SP         uint8
}

// ISRSnap is the captured state of one interrupt service routine.
type ISRSnap struct {
	IntNo   int
	Fires   int
	Missed  int
	Dropped int

	HasMachine bool
	PC         int
	SP         uint8
}

// KernelState is the complete captured kernel-layer state at a quiescent
// point. Object slices are in ID order (ISRs in interrupt-number order);
// the timer queue is a value copy of the heap array in exact layout so
// restore reproduces identical pop order.
type KernelState struct {
	Tasks []TaskSnap
	Sems  []SemSnap
	Flags []FlgSnap
	Mtxs  []MtxSnap
	Mbfs  []MbfSnap
	Cycs  []CycSnap
	Alms  []AlmSnap
	Isrs  []ISRSnap

	Timer    []timerItem
	TimerSeq uint64
	SysBase  sysc.Time
	Ticks    uint64
	DisDsp   bool
}

// TimerEntry is the encodable view of one pending timer-queue callback:
// the firing instant and push sequence, without the closure (a restore
// from bytes replays construction, which re-creates the closures).
type TimerEntry struct {
	When sysc.Time
	Seq  uint64
}

// TimerEntries returns the captured timer queue in exact heap-array
// order, closures elided.
func (st *KernelState) TimerEntries() []TimerEntry {
	out := make([]TimerEntry, len(st.Timer))
	for i, it := range st.Timer {
		out[i] = TimerEntry{When: it.when, Seq: it.seq}
	}
	return out
}

// machineOf returns the thread's compiled program machine, or nil.
func machineOf(tt *core.TThread) *progMachine {
	if tt == nil {
		return nil
	}
	m, _ := tt.CompiledBody().(*progMachine)
	return m
}

// sortedIDs returns the map's keys in ascending order.
func sortedIDs[V any](m map[ID]V) []ID {
	out := make([]ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SaveState captures the kernel's dynamic state at a sysc quiescent
// point. It fails when the kernel holds object classes the snapshot layer
// does not support, or when a goroutine-backed T-THREAD is active (its
// stack position could not be re-established on restore; the dormant
// INIT task and dormant closure handlers are fine).
func (k *Kernel) SaveState() (*KernelState, error) {
	if !k.booted {
		return nil, fmt.Errorf("tkernel: cannot capture state before Boot")
	}
	switch {
	case len(k.mbxs) > 0:
		return nil, fmt.Errorf("tkernel: state capture does not support mailboxes")
	case len(k.mpfs) > 0:
		return nil, fmt.Errorf("tkernel: state capture does not support fixed-size memory pools")
	case len(k.mpls) > 0:
		return nil, fmt.Errorf("tkernel: state capture does not support variable-size memory pools")
	case len(k.pors) > 0 || len(k.rdvs) > 0:
		return nil, fmt.Errorf("tkernel: state capture does not support rendezvous ports")
	}
	for _, tt := range k.api.Threads() {
		if !tt.Compiled() && tt.State() != core.StateDormant {
			return nil, fmt.Errorf("tkernel: goroutine-backed thread %q is active at the capture point", tt.Name())
		}
	}
	st := &KernelState{
		Timer:    append([]timerItem(nil), k.timerQ.items...),
		TimerSeq: k.timerQ.seq,
		SysBase:  k.sysBase,
		Ticks:    k.ticks,
		DisDsp:   k.disDsp,
	}
	for _, id := range sortedIDs(k.tasks) {
		t := k.tasks[id]
		s := TaskSnap{
			ID:       id,
			WupCount: t.wupCount,
			WaitSeq:  t.waitSeq,
			Cancel:   t.waitCancel,
			AwTask:   t.aw.task != nil,
			AwObj:    t.aw.obj,
		}
		for _, m := range t.owned {
			s.Owned = append(s.Owned, m.id)
		}
		if m := machineOf(t.tt); m != nil {
			s.HasMachine = true
			s.PC = m.pc
			s.SP = uint8(m.sp)
			s.AwArmed = m.aw != nil
		}
		st.Tasks = append(st.Tasks, s)
	}
	for _, id := range sortedIDs(k.sems) {
		sem := k.sems[id]
		s := SemSnap{ID: id, Count: sem.count}
		for t := sem.wq.head(); t != nil; t = t.wqNext {
			s.Wait = append(s.Wait, t.id)
			s.Need = append(s.Need, sem.pending[t])
		}
		st.Sems = append(st.Sems, s)
	}
	for _, id := range sortedIDs(k.flags) {
		f := k.flags[id]
		s := FlgSnap{ID: id, Pattern: f.pattern}
		for t := f.wq.head(); t != nil; t = t.wqNext {
			w := f.waits[t]
			if w == nil {
				return nil, fmt.Errorf("tkernel: flag %d waiter %q has no wait record", id, t.name)
			}
			s.Wait = append(s.Wait, t.id)
			s.Waiptn = append(s.Waiptn, w.waiptn)
			s.Mode = append(s.Mode, w.mode)
			s.Relptn = append(s.Relptn, w.relptn)
		}
		st.Flags = append(st.Flags, s)
	}
	for _, id := range sortedIDs(k.mtxs) {
		m := k.mtxs[id]
		s := MtxSnap{ID: id, HasOwner: m.owner != nil}
		if m.owner != nil {
			s.Owner = m.owner.id
		}
		for t := m.wq.head(); t != nil; t = t.wqNext {
			s.Wait = append(s.Wait, t.id)
		}
		st.Mtxs = append(st.Mtxs, s)
	}
	for _, id := range sortedIDs(k.mbfs) {
		b := k.mbfs[id]
		s := MbfSnap{ID: id, Used: b.used}
		for _, msg := range b.msgs {
			s.Msgs = append(s.Msgs, append([]byte(nil), msg...))
		}
		for t := b.sendQ.head(); t != nil; t = t.wqNext {
			s.SendQ = append(s.SendQ, t.id)
			s.SendMsg = append(s.SendMsg, append([]byte(nil), b.sMsg[t]...))
		}
		for t := b.recvQ.head(); t != nil; t = t.wqNext {
			s.RecvQ = append(s.RecvQ, t.id)
			s.RecvDst = append(s.RecvDst, b.rDst[t])
		}
		st.Mbfs = append(st.Mbfs, s)
	}
	for _, id := range sortedIDs(k.cycs) {
		c := k.cycs[id]
		s := CycSnap{ID: id, Active: c.active, Fires: c.fires, Overruns: c.overruns, Gen: c.gen}
		if m := machineOf(c.tt); m != nil {
			s.HasMachine, s.PC, s.SP = true, m.pc, uint8(m.sp)
		}
		st.Cycs = append(st.Cycs, s)
	}
	for _, id := range sortedIDs(k.alms) {
		a := k.alms[id]
		s := AlmSnap{ID: id, Active: a.active, Fires: a.fires, Gen: a.gen}
		if m := machineOf(a.tt); m != nil {
			s.HasMachine, s.PC, s.SP = true, m.pc, uint8(m.sp)
		}
		st.Alms = append(st.Alms, s)
	}
	intnos := make([]int, 0, len(k.isrs))
	for n := range k.isrs {
		intnos = append(intnos, n)
	}
	sort.Ints(intnos)
	for _, n := range intnos {
		isr := k.isrs[n]
		s := ISRSnap{IntNo: n, Fires: isr.fires, Missed: isr.missed, Dropped: isr.dropped}
		if m := machineOf(isr.tt); m != nil {
			s.HasMachine, s.PC, s.SP = true, m.pc, uint8(m.sp)
		}
		st.Isrs = append(st.Isrs, s)
	}
	return st, nil
}

// relink rebuilds the queue to hold exactly the given tasks in captured
// order. Callers must have cleared every task's queue links first.
func (q *waitQueue) relink(tasks []*Task) {
	q.first, q.last, q.n = nil, nil, 0
	var prev *Task
	for _, t := range tasks {
		t.wqPrev = prev
		t.wqNext = nil
		t.wqIn = q
		if prev == nil {
			q.first = t
		} else {
			prev.wqNext = t
		}
		prev = t
		q.n++
	}
	q.last = prev
}

// taskList resolves captured task IDs against the registry.
func (k *Kernel) taskList(ids []ID) ([]*Task, error) {
	out := make([]*Task, len(ids))
	for i, id := range ids {
		t := k.tasks[id]
		if t == nil {
			return nil, fmt.Errorf("tkernel: captured wait queue references unknown task %d", id)
		}
		out[i] = t
	}
	return out, nil
}

// LoadState restores a state captured from this same construction: the
// same object population (the supported synthetic workloads create all
// kernel objects at boot and never delete them).
func (k *Kernel) LoadState(st *KernelState) error {
	if len(st.Tasks) != len(k.tasks) || len(st.Sems) != len(k.sems) ||
		len(st.Flags) != len(k.flags) || len(st.Mtxs) != len(k.mtxs) ||
		len(st.Mbfs) != len(k.mbfs) || len(st.Cycs) != len(k.cycs) ||
		len(st.Alms) != len(k.alms) || len(st.Isrs) != len(k.isrs) {
		return fmt.Errorf("tkernel: state mismatch: kernel object population changed since capture")
	}
	// Unlink every task from whatever queue it is on now; the captured
	// queues re-link below.
	for _, t := range k.tasks {
		t.wqNext, t.wqPrev, t.wqIn = nil, nil, nil
	}
	for i := range st.Tasks {
		s := &st.Tasks[i]
		t := k.tasks[s.ID]
		if t == nil {
			return fmt.Errorf("tkernel: captured state references unknown task %d", s.ID)
		}
		t.wupCount = s.WupCount
		t.waitSeq = s.WaitSeq
		t.waitCancel = s.Cancel
		t.rdvno = 0
		if s.AwTask {
			t.aw.task = t
		} else {
			t.aw.task = nil
		}
		t.aw.obj = s.AwObj
		t.owned = t.owned[:0]
		for _, mid := range s.Owned {
			m := k.mtxs[mid]
			if m == nil {
				return fmt.Errorf("tkernel: task %d owns unknown mutex %d", s.ID, mid)
			}
			t.owned = append(t.owned, m)
		}
		if m := machineOf(t.tt); m != nil {
			if !s.HasMachine {
				return fmt.Errorf("tkernel: task %d gained a compiled machine since capture", s.ID)
			}
			m.pc = s.PC
			m.sp = svcPhase(s.SP)
			if s.AwArmed {
				m.aw = &t.aw
			} else {
				m.aw = nil
			}
		} else if s.HasMachine {
			return fmt.Errorf("tkernel: task %d lost its compiled machine since capture", s.ID)
		}
	}
	for i := range st.Sems {
		s := &st.Sems[i]
		sem := k.sems[s.ID]
		if sem == nil {
			return fmt.Errorf("tkernel: captured state references unknown semaphore %d", s.ID)
		}
		sem.count = s.Count
		ts, err := k.taskList(s.Wait)
		if err != nil {
			return err
		}
		sem.wq.relink(ts)
		clear(sem.pending)
		for j, t := range ts {
			sem.pending[t] = s.Need[j]
		}
	}
	for i := range st.Flags {
		s := &st.Flags[i]
		f := k.flags[s.ID]
		if f == nil {
			return fmt.Errorf("tkernel: captured state references unknown flag %d", s.ID)
		}
		f.pattern = s.Pattern
		ts, err := k.taskList(s.Wait)
		if err != nil {
			return err
		}
		f.wq.relink(ts)
		clear(f.waits)
		for j, t := range ts {
			f.waits[t] = &flgWait{waiptn: s.Waiptn[j], mode: s.Mode[j], relptn: s.Relptn[j]}
		}
	}
	for i := range st.Mtxs {
		s := &st.Mtxs[i]
		m := k.mtxs[s.ID]
		if m == nil {
			return fmt.Errorf("tkernel: captured state references unknown mutex %d", s.ID)
		}
		m.owner = nil
		if s.HasOwner {
			o := k.tasks[s.Owner]
			if o == nil {
				return fmt.Errorf("tkernel: mutex %d owned by unknown task %d", s.ID, s.Owner)
			}
			m.owner = o
		}
		ts, err := k.taskList(s.Wait)
		if err != nil {
			return err
		}
		m.wq.relink(ts)
	}
	for i := range st.Mbfs {
		s := &st.Mbfs[i]
		b := k.mbfs[s.ID]
		if b == nil {
			return fmt.Errorf("tkernel: captured state references unknown message buffer %d", s.ID)
		}
		b.used = s.Used
		b.msgs = b.msgs[:0]
		for _, msg := range s.Msgs {
			b.msgs = append(b.msgs, append([]byte(nil), msg...))
		}
		senders, err := k.taskList(s.SendQ)
		if err != nil {
			return err
		}
		b.sendQ.relink(senders)
		clear(b.sMsg)
		for j, t := range senders {
			b.sMsg[t] = append([]byte(nil), s.SendMsg[j]...)
		}
		receivers, err := k.taskList(s.RecvQ)
		if err != nil {
			return err
		}
		b.recvQ.relink(receivers)
		clear(b.rDst)
		for j, t := range receivers {
			b.rDst[t] = s.RecvDst[j]
		}
	}
	for i := range st.Cycs {
		s := &st.Cycs[i]
		c := k.cycs[s.ID]
		if c == nil {
			return fmt.Errorf("tkernel: captured state references unknown cyclic handler %d", s.ID)
		}
		c.active = s.Active
		c.fires = s.Fires
		c.overruns = s.Overruns
		c.gen = s.Gen
		if m := machineOf(c.tt); m != nil && s.HasMachine {
			m.pc, m.sp, m.aw = s.PC, svcPhase(s.SP), nil
		}
	}
	for i := range st.Alms {
		s := &st.Alms[i]
		a := k.alms[s.ID]
		if a == nil {
			return fmt.Errorf("tkernel: captured state references unknown alarm handler %d", s.ID)
		}
		a.active = s.Active
		a.fires = s.Fires
		a.gen = s.Gen
		if m := machineOf(a.tt); m != nil && s.HasMachine {
			m.pc, m.sp, m.aw = s.PC, svcPhase(s.SP), nil
		}
	}
	for i := range st.Isrs {
		s := &st.Isrs[i]
		isr := k.isrs[s.IntNo]
		if isr == nil {
			return fmt.Errorf("tkernel: captured state references unknown interrupt %d", s.IntNo)
		}
		isr.fires = s.Fires
		isr.missed = s.Missed
		isr.dropped = s.Dropped
		if m := machineOf(isr.tt); m != nil && s.HasMachine {
			m.pc, m.sp, m.aw = s.PC, svcPhase(s.SP), nil
		}
	}
	k.timerQ.items = append(k.timerQ.items[:0], st.Timer...)
	k.timerQ.seq = st.TimerSeq
	k.sysBase = st.SysBase
	k.ticks = st.Ticks
	k.disDsp = st.DisDsp
	return nil
}
