package tkernel_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

func TestRendezvousClientFirst(t *testing.T) {
	var reply []byte
	var clientDone, serverAccepted sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, er := k.CrePor("svc", tkernel.TaTFIFO, 64, 64)
		if er != tkernel.EOK {
			t.Fatalf("CrePor: %v", er)
		}
		client, _ := k.CreTsk("client", 10, func(task *tkernel.Task) {
			r, er := k.CalPor(por, 0b01, []byte("ping"), tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("CalPor: %v", er)
				return
			}
			reply = r
			clientDone = k.Sim().Now()
		})
		server, _ := k.CreTsk("server", 12, func(task *tkernel.Task) {
			_ = k.DlyTsk(3 * sysc.Ms) // client calls first
			no, msg, er := k.AcpPor(por, 0b11, tkernel.TmoFevr)
			if er != tkernel.EOK || string(msg) != "ping" {
				t.Errorf("AcpPor: %q %v", msg, er)
				return
			}
			serverAccepted = k.Sim().Now()
			k.Work(core.Cost{Time: 4 * sysc.Ms}, "service-body")
			if er := k.RplRdv(no, []byte("pong")); er != tkernel.EOK {
				t.Errorf("RplRdv: %v", er)
			}
		})
		_ = k.StaTsk(client)
		_ = k.StaTsk(server)
	})
	run(t, sim, sysc.Sec)
	if string(reply) != "pong" {
		t.Fatalf("reply = %q", reply)
	}
	if serverAccepted != 3*sysc.Ms {
		t.Fatalf("accepted at %v", serverAccepted)
	}
	if clientDone != 7*sysc.Ms {
		t.Fatalf("client done at %v, want 7 ms (3 + 4 service)", clientDone)
	}
}

func TestRendezvousServerFirst(t *testing.T) {
	var reply []byte
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 64, 64)
		server, _ := k.CreTsk("server", 10, func(task *tkernel.Task) {
			no, msg, er := k.AcpPor(por, 0b10, tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("AcpPor: %v", er)
				return
			}
			_ = k.RplRdv(no, append([]byte("echo:"), msg...))
		})
		client, _ := k.CreTsk("client", 12, func(task *tkernel.Task) {
			_ = k.DlyTsk(2 * sysc.Ms) // server accepts first
			r, er := k.CalPor(por, 0b10, []byte("hi"), tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("CalPor: %v", er)
				return
			}
			reply = r
		})
		_ = k.StaTsk(server)
		_ = k.StaTsk(client)
	})
	run(t, sim, sysc.Sec)
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestRendezvousPatternMatching(t *testing.T) {
	// An acceptor with pattern 0b10 must not accept a 0b01 call.
	var accepted bool
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 16, 16)
		server, _ := k.CreTsk("server", 10, func(task *tkernel.Task) {
			_, _, er := k.AcpPor(por, 0b10, 20*sysc.Ms)
			accepted = er == tkernel.EOK
		})
		client, _ := k.CreTsk("client", 12, func(task *tkernel.Task) {
			_, _ = k.CalPor(por, 0b01, []byte("x"), 20*sysc.Ms)
		})
		_ = k.StaTsk(server)
		_ = k.StaTsk(client)
	})
	run(t, sim, sysc.Sec)
	if accepted {
		t.Fatal("mismatched patterns must not rendezvous")
	}
}

func TestRendezvousCallTimeout(t *testing.T) {
	var code tkernel.ER
	var at sysc.Time
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 16, 16)
		client, _ := k.CreTsk("client", 10, func(task *tkernel.Task) {
			_, code = k.CalPor(por, 1, []byte("x"), 5*sysc.Ms)
			at = k.Sim().Now()
		})
		_ = k.StaTsk(client)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ETMOUT || at != 5*sysc.Ms {
		t.Fatalf("code=%v at=%v", code, at)
	}
}

func TestRendezvousTimeoutStopsAtEstablishment(t *testing.T) {
	// Once accepted, the call timeout no longer applies: the service body
	// may exceed it and the client still gets the reply.
	var code tkernel.ER
	var reply []byte
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 16, 16)
		client, _ := k.CreTsk("client", 10, func(task *tkernel.Task) {
			reply, code = k.CalPor(por, 1, []byte("x"), 5*sysc.Ms)
		})
		server, _ := k.CreTsk("server", 12, func(task *tkernel.Task) {
			no, _, er := k.AcpPor(por, 1, tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("acp: %v", er)
				return
			}
			k.Work(core.Cost{Time: 50 * sysc.Ms}, "slow-service") // > timeout
			_ = k.RplRdv(no, []byte("late-ok"))
		})
		_ = k.StaTsk(client)
		_ = k.StaTsk(server)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.EOK || string(reply) != "late-ok" {
		t.Fatalf("code=%v reply=%q", code, reply)
	}
}

func TestRendezvousAcceptTimeout(t *testing.T) {
	var code tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 16, 16)
		server, _ := k.CreTsk("server", 10, func(task *tkernel.Task) {
			_, _, code = k.AcpPor(por, 1, 4*sysc.Ms)
		})
		_ = k.StaTsk(server)
	})
	run(t, sim, sysc.Sec)
	if code != tkernel.ETMOUT {
		t.Fatalf("code = %v", code)
	}
}

func TestRendezvousValidation(t *testing.T) {
	_, sim := boot(t, func(k *tkernel.Kernel) {
		if _, er := k.CrePor("bad", tkernel.TaTFIFO, 0, 8); er != tkernel.EPAR {
			t.Errorf("zero maxcmsz: %v", er)
		}
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 4, 4)
		if _, er := k.CalPor(por, 1, make([]byte, 5), tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("oversize call: %v", er)
		}
		if _, er := k.CalPor(por, 0, []byte("x"), tkernel.TmoPol); er != tkernel.EPAR {
			t.Errorf("zero pattern: %v", er)
		}
		if _, _, er := k.AcpPor(999, 1, tkernel.TmoPol); er != tkernel.ENOEXS {
			t.Errorf("unknown port: %v", er)
		}
		if er := k.RplRdv(999, []byte("x")); er != tkernel.EOBJ {
			t.Errorf("bad rdvno: %v", er)
		}
	})
	run(t, sim, 50*sysc.Ms)
}

func TestRendezvousDeleteReleasesAll(t *testing.T) {
	var callCode, acpCode, midCode tkernel.ER
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 16, 16)
		caller, _ := k.CreTsk("caller", 10, func(task *tkernel.Task) {
			_, callCode = k.CalPor(por, 0b100, []byte("q"), tkernel.TmoFevr)
		})
		acceptor, _ := k.CreTsk("acceptor", 11, func(task *tkernel.Task) {
			_, _, acpCode = k.AcpPor(por, 0b1000, tkernel.TmoFevr)
		})
		// A client mid-rendezvous (accepted, not replied) also gets E_DLT.
		midClient, _ := k.CreTsk("mid", 12, func(task *tkernel.Task) {
			_, midCode = k.CalPor(por, 0b1, []byte("m"), tkernel.TmoFevr)
		})
		server, _ := k.CreTsk("server", 13, func(task *tkernel.Task) {
			_, _, er := k.AcpPor(por, 0b1, tkernel.TmoFevr)
			if er != tkernel.EOK {
				t.Errorf("server acp: %v", er)
			}
			// never replies
		})
		_ = k.StaTsk(caller)
		_ = k.StaTsk(acceptor)
		_ = k.StaTsk(midClient)
		_ = k.StaTsk(server)
		_ = k.DlyTsk(5 * sysc.Ms)
		info, _ := k.RefPor(por)
		if info.OpenRdv != 1 || len(info.CallWaiting) != 1 || len(info.AcceptWait) != 1 {
			t.Errorf("port state: %+v", info)
		}
		if er := k.DelPor(por); er != tkernel.EOK {
			t.Errorf("DelPor: %v", er)
		}
	})
	run(t, sim, sysc.Sec)
	if callCode != tkernel.EDLT || acpCode != tkernel.EDLT || midCode != tkernel.EDLT {
		t.Fatalf("codes: call=%v acp=%v mid=%v", callCode, acpCode, midCode)
	}
}

func TestRendezvousMultipleClientsFIFO(t *testing.T) {
	var served []string
	_, sim := boot(t, func(k *tkernel.Kernel) {
		por, _ := k.CrePor("svc", tkernel.TaTFIFO, 16, 16)
		mkClient := func(name string) tkernel.ID {
			id, _ := k.CreTsk(name, 10, func(task *tkernel.Task) {
				if _, er := k.CalPor(por, 1, []byte(name), tkernel.TmoFevr); er == tkernel.EOK {
					served = append(served, name)
				}
			})
			return id
		}
		c1 := mkClient("c1")
		c2 := mkClient("c2")
		server, _ := k.CreTsk("server", 5, func(task *tkernel.Task) {
			_ = k.DlyTsk(3 * sysc.Ms)
			for i := 0; i < 2; i++ {
				no, _, er := k.AcpPor(por, 1, tkernel.TmoFevr)
				if er != tkernel.EOK {
					t.Errorf("acp %d: %v", i, er)
					return
				}
				k.Work(core.Cost{Time: sysc.Ms}, "")
				_ = k.RplRdv(no, []byte("ok"))
			}
		})
		_ = k.StaTsk(c1)
		_ = k.DlyTsk(1 * sysc.Ms)
		_ = k.StaTsk(c2)
		_ = k.StaTsk(server)
	})
	run(t, sim, sysc.Sec)
	if len(served) != 2 || served[0] != "c1" || served[1] != "c2" {
		t.Fatalf("served = %v", served)
	}
}
