// Package tkernel is the RTK-Spec TRON kernel simulation model: a
// behaviourally faithful model of T-Kernel/OS, the µITRON-lineage real-time
// kernel of the T-Engine platform, built from the T-THREAD and SIM_API
// constructs of internal/core.
//
// The kernel employs priority-based preemptive scheduling and provides task
// management, task synchronization (sleep/wakeup, suspend/resume), event
// flags, semaphores, mutexes (with priority inheritance and ceiling),
// mailboxes, message buffers, fixed- and variable-size memory pools, time
// management (system time, cyclic handlers, alarm handlers, task delays),
// interrupt handling with nested interrupts and delayed dispatching, and
// system management, mirroring the tk_* service-call API.
package tkernel

import "fmt"

// ER is a µITRON/T-Kernel service-call error code. The zero value is E_OK.
// ER implements error so codes can flow through SIM_API release channels;
// E_OK is reported as success.
type ER int

// µITRON v4 / T-Kernel error codes (the subset the model uses).
const (
	EOK     ER = 0   // normal completion
	ESYS    ER = -5  // system error
	ENOSPT  ER = -9  // feature not supported
	ERSATR  ER = -11 // reserved attribute
	EPAR    ER = -17 // parameter error
	EID     ER = -18 // invalid ID number
	ECTX    ER = -25 // context error
	EILUSE  ER = -28 // illegal service call use
	ENOMEM  ER = -33 // insufficient memory
	ELIMIT  ER = -34 // exceeded system limit
	EOBJ    ER = -41 // object state error
	ENOEXS  ER = -42 // object does not exist
	EQOVR   ER = -43 // queueing overflow
	ERLWAI  ER = -49 // wait released (tk_rel_wai)
	ETMOUT  ER = -50 // polling failure or timeout
	EDLT    ER = -51 // waited object was deleted
	EDISWAI ER = -52 // wait released by wait-disable
)

// Error renders the canonical code name.
func (e ER) Error() string {
	switch e {
	case EOK:
		return "E_OK"
	case ESYS:
		return "E_SYS"
	case ENOSPT:
		return "E_NOSPT"
	case ERSATR:
		return "E_RSATR"
	case EPAR:
		return "E_PAR"
	case EID:
		return "E_ID"
	case ECTX:
		return "E_CTX"
	case EILUSE:
		return "E_ILUSE"
	case ENOMEM:
		return "E_NOMEM"
	case ELIMIT:
		return "E_LIMIT"
	case EOBJ:
		return "E_OBJ"
	case ENOEXS:
		return "E_NOEXS"
	case EQOVR:
		return "E_QOVR"
	case ERLWAI:
		return "E_RLWAI"
	case ETMOUT:
		return "E_TMOUT"
	case EDLT:
		return "E_DLT"
	case EDISWAI:
		return "E_DISWAI"
	}
	return fmt.Sprintf("E_?(%d)", int(e))
}

// OK reports whether the code is E_OK.
func (e ER) OK() bool { return e == EOK }

// erOf converts a SIM_API release code (error) back to an ER.
func erOf(err error) ER {
	if err == nil {
		return EOK
	}
	if er, ok := err.(ER); ok {
		return er
	}
	return ESYS
}
