package tkernel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// This file is the program IR: task and handler bodies expressed as a flat
// list of operations instead of a Go closure. A program runs on either
// T-THREAD engine from one source of truth:
//
//   - the goroutine engine interprets it, issuing the ordinary public
//     service calls (interpret);
//   - the continuation engine compiles it to a resumable machine driven
//     inline by the scheduler loop (progMachine), where every service call
//     is re-expressed through the Step* primitives and the engine-split
//     xxxBody halves of the services.
//
// Both paths traverse the identical kernel bookkeeping in the identical
// order, so a program produces byte-identical traces, metrics and gantt
// artifacts on either engine.

// opKind discriminates program operations.
type opKind uint8

const (
	opAtom opKind = iota // run an instantaneous side effect
	opWork               // consume application time/energy (k.Work / ctx.Work)
	opSvc                // issue one kernel service call
	opJump               // unconditional branch
	opBr                 // conditional branch
	opExit               // end the body (the closure's return)
)

// progOp is one program operation. Service ops carry both engine faces:
// call issues the public service (goroutine interpreter), try runs the
// engine-split body and may hand back an armed wait for the machine's
// StepBlock to complete.
type progOp struct {
	kind opKind
	name string // service name / work note

	run  func()                           // opAtom
	cost core.Cost                        // opWork
	ctx  trace.Context                    // opWork
	call func(k *Kernel) ER               // opSvc, goroutine engine
	try  func(k *Kernel) (ER, *armedWait) // opSvc, continuation engine
	post func(ER) ER                      // opSvc, optional code remap
	er   *ER                              // opSvc, optional result out

	cond  func() bool // opBr
	label string      // opJump/opBr target label (resolved by finalize)
	to    int         // resolved target pc
}

// Program is a compiled T-THREAD body under construction: append ops with
// the builder methods, then hand it to CreTskProg / CreCycProg / CreAlmProg
// / DefIntProg. Build each task or handler its own Program (out-pointers
// and frame variables are per-instance state).
type Program struct {
	name      string
	ctx       trace.Context // context class of Work ops
	ops       []progOp
	labels    map[string]int
	finalized bool
	hasIo     bool // an AtomIo op is present: body needs the goroutine engine
}

// NewProgram starts a task-body program: Work ops are charged in task
// context.
func (k *Kernel) NewProgram(name string) *Program {
	return &Program{name: name, ctx: trace.CtxTask, labels: map[string]int{}}
}

// NewHandlerProgram starts a handler-body program: Work ops are charged in
// handler context.
func (k *Kernel) NewHandlerProgram(name string) *Program {
	return &Program{name: name, ctx: trace.CtxHandler, labels: map[string]int{}}
}

// finalize resolves label targets; idempotent.
func (p *Program) finalize() {
	if p.finalized {
		return
	}
	p.finalized = true
	for i := range p.ops {
		op := &p.ops[i]
		if op.kind != opJump && op.kind != opBr {
			continue
		}
		to, ok := p.labels[op.label]
		if !ok {
			panic(fmt.Sprintf("tkernel: program %q: undefined label %q", p.name, op.label))
		}
		op.to = to
	}
}

func (p *Program) add(op progOp) *Program {
	if p.finalized {
		panic(fmt.Sprintf("tkernel: program %q: modified after finalize", p.name))
	}
	p.ops = append(p.ops, op)
	return p
}

// Atom appends an instantaneous side effect (plain Go between service
// calls: state updates, condition latching). The closure must not consume
// execution time — BFM accesses and other nested SIM_Wait points belong in
// AtomIo.
func (p *Program) Atom(fn func()) *Program {
	return p.add(progOp{kind: opAtom, run: fn})
}

// AtomIo appends a side effect whose closure consumes execution time
// internally — BFM port accesses, widget raster work, anything reaching
// TThread.Consume outside a Work op. Such nested consumes are parking
// preemption points the inline machine cannot resume through, so a body
// containing an AtomIo runs on the reference goroutine engine even when the
// kernel is configured for the continuation engine (the fallback is
// per-body: sibling IO-free bodies still compile).
func (p *Program) AtomIo(fn func()) *Program {
	p.hasIo = true
	return p.add(progOp{kind: opAtom, run: fn})
}

// Work appends an application execution-time/energy annotation (k.Work in
// task programs, ctx.Work in handler programs).
func (p *Program) Work(c core.Cost, note string) *Program {
	return p.add(progOp{kind: opWork, name: note, cost: c, ctx: p.ctx})
}

// Label marks the next op as a branch target.
func (p *Program) Label(name string) *Program {
	p.labels[name] = len(p.ops)
	return p
}

// Jump appends an unconditional branch to a label.
func (p *Program) Jump(label string) *Program {
	return p.add(progOp{kind: opJump, label: label})
}

// Br appends a conditional branch: cond is evaluated when the op executes.
func (p *Program) Br(cond func() bool, label string) *Program {
	return p.add(progOp{kind: opBr, cond: cond, label: label})
}

// Exit appends an explicit body end (the closure's early return).
func (p *Program) Exit() *Program {
	return p.add(progOp{kind: opExit})
}

// svc appends a service op.
func (p *Program) svc(name string, call func(k *Kernel) ER,
	try func(k *Kernel) (ER, *armedWait), post func(ER) ER, er *ER) *Program {
	return p.add(progOp{kind: opSvc, name: name, call: call, try: try, post: post, er: er})
}

// wrap lifts a non-blocking engine-split body into the try signature.
func wrap(body func(k *Kernel) ER) func(k *Kernel) (ER, *armedWait) {
	return func(k *Kernel) (ER, *armedWait) { return body(k), nil }
}

// --- service ops -----------------------------------------------------------
//
// ID arguments are pointers so a program can reference objects created
// after the program is built (including an op arming the handler's own
// alarm); value arguments that vary per iteration come in through pointers
// too. The optional er out-pointer receives the resolved return code.

// SlpTsk appends tk_slp_tsk.
func (p *Program) SlpTsk(tmout TMO, er *ER) *Program {
	return p.svc("tk_slp_tsk",
		func(k *Kernel) ER { return k.SlpTsk(tmout) },
		func(k *Kernel) (ER, *armedWait) { return k.slpTskBody(tmout) },
		nil, er)
}

// DlyTsk appends tk_dly_tsk.
func (p *Program) DlyTsk(d sysc.Time, er *ER) *Program {
	return p.svc("tk_dly_tsk",
		func(k *Kernel) ER { return k.DlyTsk(d) },
		func(k *Kernel) (ER, *armedWait) { return k.dlyTskBody(d) },
		dlyTskPost, er)
}

// WupTsk appends tk_wup_tsk.
func (p *Program) WupTsk(id *ID, er *ER) *Program {
	return p.svc("tk_wup_tsk",
		func(k *Kernel) ER { return k.WupTsk(*id) },
		func(k *Kernel) (ER, *armedWait) { return k.wupTskBody(*id), nil },
		nil, er)
}

// RotRdq appends tk_rot_rdq.
func (p *Program) RotRdq(priority int, er *ER) *Program {
	return p.svc("tk_rot_rdq",
		func(k *Kernel) ER { return k.RotRdq(priority) },
		func(k *Kernel) (ER, *armedWait) { return k.rotRdqBody(priority), nil },
		nil, er)
}

// SigSem appends tk_sig_sem.
func (p *Program) SigSem(id *ID, cnt int, er *ER) *Program {
	return p.svc("tk_sig_sem",
		func(k *Kernel) ER { return k.SigSem(*id, cnt) },
		func(k *Kernel) (ER, *armedWait) { return k.sigSemBody(*id, cnt), nil },
		nil, er)
}

// WaiSem appends tk_wai_sem.
func (p *Program) WaiSem(id *ID, cnt int, tmout TMO, er *ER) *Program {
	return p.svc("tk_wai_sem",
		func(k *Kernel) ER { return k.WaiSem(*id, cnt, tmout) },
		func(k *Kernel) (ER, *armedWait) { return k.waiSemBody(*id, cnt, tmout) },
		nil, er)
}

// SetFlg appends tk_set_flg.
func (p *Program) SetFlg(id *ID, setptn uint32, er *ER) *Program {
	return p.svc("tk_set_flg",
		func(k *Kernel) ER { return k.SetFlg(*id, setptn) },
		func(k *Kernel) (ER, *armedWait) { return k.setFlgBody(*id, setptn), nil },
		nil, er)
}

// WaiFlg appends tk_wai_flg; the release pattern is delivered through ptn.
func (p *Program) WaiFlg(id *ID, waiptn uint32, mode FlagMode, tmout TMO, ptn *uint32, er *ER) *Program {
	return p.svc("tk_wai_flg",
		func(k *Kernel) ER {
			got, e := k.WaiFlg(*id, waiptn, mode, tmout)
			*ptn = got
			return e
		},
		func(k *Kernel) (ER, *armedWait) {
			*ptn = 0
			return k.waiFlgBody(*id, waiptn, mode, tmout, ptn)
		}, nil, er)
}

// SndMbx appends tk_snd_mbx; the message is read from msg when the op runs.
func (p *Program) SndMbx(id *ID, msg **Message, er *ER) *Program {
	return p.svc("tk_snd_mbx",
		func(k *Kernel) ER { return k.SndMbx(*id, *msg) },
		func(k *Kernel) (ER, *armedWait) { return k.sndMbxBody(*id, *msg), nil },
		nil, er)
}

// RcvMbx appends tk_rcv_mbx; the message is delivered through msg.
func (p *Program) RcvMbx(id *ID, tmout TMO, msg **Message, er *ER) *Program {
	return p.svc("tk_rcv_mbx",
		func(k *Kernel) ER {
			got, e := k.RcvMbx(*id, tmout)
			*msg = got
			return e
		},
		func(k *Kernel) (ER, *armedWait) {
			*msg = nil
			return k.rcvMbxBody(*id, tmout, msg)
		}, nil, er)
}

// SndMbf appends tk_snd_mbf; the message is read from msg when the op runs.
func (p *Program) SndMbf(id *ID, msg *[]byte, tmout TMO, er *ER) *Program {
	return p.svc("tk_snd_mbf",
		func(k *Kernel) ER { return k.SndMbf(*id, *msg, tmout) },
		func(k *Kernel) (ER, *armedWait) { return k.sndMbfBody(*id, *msg, tmout) },
		nil, er)
}

// RcvMbf appends tk_rcv_mbf; the message is delivered through msg.
func (p *Program) RcvMbf(id *ID, tmout TMO, msg *[]byte, er *ER) *Program {
	return p.svc("tk_rcv_mbf",
		func(k *Kernel) ER {
			got, e := k.RcvMbf(*id, tmout)
			*msg = got
			return e
		},
		func(k *Kernel) (ER, *armedWait) {
			*msg = nil
			return k.rcvMbfBody(*id, tmout, msg)
		}, nil, er)
}

// GetMpf appends tk_get_mpf; the block is delivered through blk.
func (p *Program) GetMpf(id *ID, tmout TMO, blk **MemBlock, er *ER) *Program {
	return p.svc("tk_get_mpf",
		func(k *Kernel) ER {
			got, e := k.GetMpf(*id, tmout)
			*blk = got
			return e
		},
		func(k *Kernel) (ER, *armedWait) {
			*blk = nil
			return k.getMpfBody(*id, tmout, blk)
		}, nil, er)
}

// RelMpf appends tk_rel_mpf; the block is read from blk when the op runs.
func (p *Program) RelMpf(id *ID, blk **MemBlock, er *ER) *Program {
	return p.svc("tk_rel_mpf",
		func(k *Kernel) ER { return k.RelMpf(*id, *blk) },
		func(k *Kernel) (ER, *armedWait) { return k.relMpfBody(*id, *blk), nil },
		nil, er)
}

// GetMpl appends tk_get_mpl; the block is delivered through blk.
func (p *Program) GetMpl(id *ID, size int, tmout TMO, blk **MemBlock, er *ER) *Program {
	return p.svc("tk_get_mpl",
		func(k *Kernel) ER {
			got, e := k.GetMpl(*id, size, tmout)
			*blk = got
			return e
		},
		func(k *Kernel) (ER, *armedWait) {
			*blk = nil
			return k.getMplBody(*id, size, tmout, blk)
		}, nil, er)
}

// RelMpl appends tk_rel_mpl; the block is read from blk when the op runs.
func (p *Program) RelMpl(id *ID, blk **MemBlock, er *ER) *Program {
	return p.svc("tk_rel_mpl",
		func(k *Kernel) ER { return k.RelMpl(*id, *blk) },
		func(k *Kernel) (ER, *armedWait) { return k.relMplBody(*id, *blk), nil },
		nil, er)
}

// LocMtx appends tk_loc_mtx.
func (p *Program) LocMtx(id *ID, tmout TMO, er *ER) *Program {
	return p.svc("tk_loc_mtx",
		func(k *Kernel) ER { return k.LocMtx(*id, tmout) },
		func(k *Kernel) (ER, *armedWait) { return k.locMtxBody(*id, tmout) },
		nil, er)
}

// UnlMtx appends tk_unl_mtx.
func (p *Program) UnlMtx(id *ID, er *ER) *Program {
	return p.svc("tk_unl_mtx",
		func(k *Kernel) ER { return k.UnlMtx(*id) },
		func(k *Kernel) (ER, *armedWait) { return k.unlMtxBody(*id), nil },
		nil, er)
}

// StaAlm appends tk_sta_alm (the alarm re-arm pattern: id may point at the
// alarm's own ID, assigned after the program is built).
func (p *Program) StaAlm(id *ID, d sysc.Time, er *ER) *Program {
	return p.svc("tk_sta_alm",
		func(k *Kernel) ER { return k.StaAlm(*id, d) },
		func(k *Kernel) (ER, *armedWait) { return k.staAlmBody(*id, d), nil },
		nil, er)
}

// --- goroutine engine: interpreter -----------------------------------------

// interpret runs the program once on the goroutine engine, issuing the
// ordinary public service calls (full enterSvc/exitSvc machinery).
func (p *Program) interpret(k *Kernel) {
	pc := 0
	for pc < len(p.ops) {
		op := &p.ops[pc]
		switch op.kind {
		case opAtom:
			op.run()
			pc++
		case opWork:
			if tt := k.api.ExecutingThread(); tt != nil {
				tt.Consume(op.cost, op.ctx, op.name)
			}
			pc++
		case opSvc:
			er := op.call(k)
			if op.er != nil {
				*op.er = er
			}
			pc++
		case opJump:
			pc = op.to
		case opBr:
			if op.cond() {
				pc = op.to
			} else {
				pc++
			}
		case opExit:
			return
		}
	}
}

// --- continuation engine: compiled machine ---------------------------------

// svcPhase tracks where inside one service op a machine is parked.
type svcPhase uint8

const (
	spEnter   svcPhase = iota // AwaitCPU before the dispatch lock
	spConsume                 // service-cost Consume, then the call body
	spBlock                   // parked on an armed wait
)

// progMachine drives a Program as a resumable state machine on the
// continuation engine (core.CompiledBody). Each service op is re-expressed
// as the exact phase sequence of the goroutine public service: StepAwaitCPU
// / LockDispatch / SvcEnter / StepConsume (enterSvc), the engine-split
// body, then SvcExit / UnlockDispatch (exitSvc) — with StepBlock replacing
// finish's BlockCurrent when the body armed a wait.
type progMachine struct {
	k    *Kernel
	p    *Program
	task *Task // owning task; nil for handler machines

	pc int
	sp svcPhase
	aw *armedWait
}

// Step implements core.CompiledBody.
func (m *progMachine) Step(t *core.TThread) core.BodyStep {
	k := m.k
	for {
		if m.pc >= len(m.p.ops) {
			return m.done(core.BodyDone)
		}
		op := &m.p.ops[m.pc]
		switch op.kind {
		case opAtom:
			op.run()
			m.pc++
		case opWork:
			switch t.StepConsume(op.cost, op.ctx, op.name) {
			case core.StepWait:
				return core.BodyWait
			case core.StepReset:
				return m.done(core.BodyReset)
			}
			m.pc++
		case opJump:
			m.pc = op.to
		case opBr:
			if op.cond() {
				m.pc = op.to
			} else {
				m.pc++
			}
		case opExit:
			return m.done(core.BodyDone)
		case opSvc:
			switch m.sp {
			case spEnter:
				switch t.StepAwaitCPU() {
				case core.StepWait:
					return core.BodyWait
				case core.StepReset:
					return m.done(core.BodyReset)
				}
				k.api.LockDispatch()
				if k.bus.Wants(event.KindSvcEnter) {
					k.bus.Publish(event.Event{Kind: event.KindSvcEnter,
						Time: k.sim.Now(), Thread: t.Name(), Obj: op.name})
				}
				m.sp = spConsume
			case spConsume:
				switch t.StepConsume(k.cfg.Costs.Service, trace.CtxService, op.name) {
				case core.StepWait:
					return core.BodyWait
				case core.StepReset:
					// The goroutine twin's deferred exitSvc runs during the
					// reset unwind with the zero-value named er.
					m.svcExit(t, op.name, EOK)
					k.api.UnlockDispatch()
					return m.done(core.BodyReset)
				}
				er, aw := op.try(k)
				if aw == nil {
					m.svcDone(t, op, er)
					continue
				}
				m.aw = aw
				k.api.UnlockDispatch()
				m.sp = spBlock
			case spBlock:
				st, err := t.StepBlock(m.aw.obj)
				switch st {
				case core.StepWait:
					return core.BodyWait
				case core.StepReset:
					// The goroutine twin's unwind through a parked service is
					// the latent unmatched-UnlockDispatch path; the machine
					// just rewinds (the dispatch lock is not held while
					// parked).
					return m.done(core.BodyReset)
				}
				k.api.LockDispatch()
				er := k.endSleep(m.aw.task, err)
				m.aw = nil
				m.svcDone(t, op, er)
			}
		}
	}
}

// svcDone finishes a service op under the dispatch lock: remap, publish the
// exit event, deliver the code, unlock, advance.
func (m *progMachine) svcDone(t *core.TThread, op *progOp, er ER) {
	if op.post != nil {
		er = op.post(er)
	}
	m.svcExit(t, op.name, er)
	if op.er != nil {
		*op.er = er
	}
	m.k.api.UnlockDispatch()
	m.sp = spEnter
	m.pc++
}

// svcExit publishes the service exit event (exitSvc's publish half).
func (m *progMachine) svcExit(t *core.TThread, name string, er ER) {
	k := m.k
	if k.bus.Wants(event.KindSvcExit) {
		k.bus.Publish(event.Event{Kind: event.KindSvcExit,
			Time: k.sim.Now(), Thread: t.Name(), Obj: name, Code: int(er)})
	}
}

// done rewinds the machine for the next activation. Task machines release
// still-held mutexes first, mirroring the goroutine body's deferred
// releaseOwnedMutexes (which runs on normal return and during the reset
// unwind alike).
func (m *progMachine) done(st core.BodyStep) core.BodyStep {
	m.pc = 0
	m.sp = spEnter
	m.aw = nil
	if m.task != nil {
		m.k.releaseOwnedMutexes(m.task)
	}
	return st
}

// --- creation --------------------------------------------------------------

// CreTskProg creates a task whose body is a program (tk_cre_tsk). On the
// goroutine engine the program is interpreted by a goroutine body; on the
// continuation engine it is compiled to a machine driven inline by the
// scheduler loop.
func (k *Kernel) CreTskProg(name string, priority int, prog *Program) (_ ID, er ER) {
	k.enterSvc("tk_cre_tsk")
	defer k.exitSvc("tk_cre_tsk", &er)
	if priority < 1 || priority > k.cfg.MaxPriority {
		return 0, EPAR
	}
	prog.finalize()
	k.nextTask++
	id := k.nextTask
	task := &Task{id: id, k: k, name: name}
	if k.engineCompiled() && !prog.hasIo {
		task.tt = k.api.CreateThreadCompiled(name, core.KindTask, priority,
			&progMachine{k: k, p: prog, task: task})
	} else {
		task.tt = k.api.CreateThread(name, core.KindTask, priority, func(tt *core.TThread) {
			// T-Kernel releases any mutexes a task still holds when it ends,
			// whether it returns normally or is unwound by tk_ter/ext_tsk.
			defer k.releaseOwnedMutexes(task)
			prog.interpret(k)
		})
	}
	task.tt.SetExinf(task)
	k.tasks[id] = task
	return id, EOK
}

// newHandlerThread registers a handler-level T-THREAD running a program on
// the configured engine.
func (k *Kernel) newHandlerThread(name string, kind core.Kind, prog *Program) *core.TThread {
	prog.finalize()
	if k.engineCompiled() && !prog.hasIo {
		return k.api.CreateThreadCompiled(name, kind, 0, &progMachine{k: k, p: prog})
	}
	return k.api.CreateThread(name, kind, 0, func(tt *core.TThread) {
		prog.interpret(k)
	})
}

// CreCycProg creates a cyclic handler whose body is a program (tk_cre_cyc).
func (k *Kernel) CreCycProg(name string, interval, phase sysc.Time, prog *Program) (_ ID, er ER) {
	k.enterSvc("tk_cre_cyc")
	defer k.exitSvc("tk_cre_cyc", &er)
	if interval <= 0 || phase < 0 {
		return 0, EPAR
	}
	k.nextCyc++
	id := k.nextCyc
	c := &CyclicHandler{id: id, name: name, interval: interval, phase: phase, k: k}
	c.tt = k.newHandlerThread(name, core.KindCyclicHandler, prog)
	k.cycs[id] = c
	return id, EOK
}

// CreAlmProg creates an alarm handler whose body is a program (tk_cre_alm).
func (k *Kernel) CreAlmProg(name string, prog *Program) (_ ID, er ER) {
	k.enterSvc("tk_cre_alm")
	defer k.exitSvc("tk_cre_alm", &er)
	k.nextAlm++
	id := k.nextAlm
	a := &AlarmHandler{id: id, name: name, k: k}
	a.tt = k.newHandlerThread(name, core.KindAlarmHandler, prog)
	k.alms[id] = a
	return id, EOK
}

// DefIntProg defines an interrupt handler whose body is a program
// (tk_def_int).
func (k *Kernel) DefIntProg(intno int, name string, prog *Program) (er ER) {
	k.enterSvc("tk_def_int")
	defer k.exitSvc("tk_def_int", &er)
	if intno < 0 {
		return EPAR
	}
	isr := &ISR{intno: intno, name: name}
	isr.tt = k.newHandlerThread(name, core.KindISR, prog)
	k.isrs[intno] = isr
	return EOK
}
