// Package stream provides the bounded-memory transport between an
// incrementally produced artifact and its concurrent readers: a spill
// ring. The producer (a trace exporter, a metrics encoder) writes bytes
// as the simulation emits them; any number of readers — live HTTP
// streams, the end-of-run cache landing — read the same byte sequence
// from any offset. Memory stays O(window): the ring keeps only the
// newest `window` bytes in RAM and spills older bytes to a lazily
// created temp file, so an arbitrarily long trace costs the server a
// fixed buffer plus disk, never trace-sized heap.
//
// The byte contract is exact: every reader observes precisely the bytes
// written, in order, with no gaps — a streamed artifact is byte-identical
// to its buffered twin by construction. A SHA-256 runs incrementally over
// the writes, so the strong ETag of the finished artifact is available
// without ever materializing it.
package stream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"sync"
)

// DefaultWindow is the in-memory window a zero-configured ring keeps.
const DefaultWindow = 256 << 10

// ErrClosed rejects writes after Close.
var ErrClosed = errors.New("stream: ring closed")

// Ring is a bounded spill ring: an io.Writer whose contents remain fully
// readable while only the newest window bytes stay in memory. Safe for
// one writer and many concurrent readers.
type Ring struct {
	mu     sync.Mutex
	window int
	dir    string

	buf     []byte // bytes [spilled, size)
	spilled int64  // bytes flushed to the spill file, i.e. file length
	size    int64  // total bytes written
	file    *os.File
	fileErr error

	hash   hash.Hash
	etag   string
	closed bool
	err    error

	// wake is closed and replaced whenever data arrives or the ring
	// closes; readers park on the current instance.
	wake chan struct{}
}

// NewRing builds a ring spilling to dir (the OS temp dir when empty) once
// writes exceed window bytes (DefaultWindow when <= 0). The spill file is
// created lazily — a small artifact never touches disk.
func NewRing(dir string, window int) *Ring {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Ring{
		window: window,
		dir:    dir,
		hash:   sha256.New(),
		wake:   make(chan struct{}),
	}
}

// Write appends p to the ring, spilling bytes beyond the memory window to
// the temp file. It never blocks on readers — a slow reader costs disk,
// not backpressure into the simulation.
func (r *Ring) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	if r.fileErr != nil {
		return 0, r.fileErr
	}
	r.hash.Write(p)
	r.buf = append(r.buf, p...)
	r.size += int64(len(p))
	if len(r.buf) > r.window {
		if err := r.spillLocked(len(r.buf) - r.window); err != nil {
			r.fileErr = err
			return 0, err
		}
	}
	r.wakeLocked()
	return len(p), nil
}

// spillLocked flushes the oldest n buffered bytes to the spill file.
func (r *Ring) spillLocked(n int) error {
	if r.file == nil {
		f, err := os.CreateTemp(r.dir, "rtk-stream-*.spill")
		if err != nil {
			return fmt.Errorf("stream: spill: %w", err)
		}
		// Unlink immediately: the file lives exactly as long as the ring
		// holds it open, however the process exits.
		_ = os.Remove(f.Name())
		r.file = f
	}
	if _, err := r.file.WriteAt(r.buf[:n], r.spilled); err != nil {
		return fmt.Errorf("stream: spill: %w", err)
	}
	r.spilled += int64(n)
	r.buf = append(r.buf[:0], r.buf[n:]...)
	return nil
}

// wakeLocked rouses every parked reader.
func (r *Ring) wakeLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// Close marks the stream terminal. A nil err means the producer finished
// cleanly: readers drain the remaining bytes and get io.EOF. A non-nil
// err is a mid-stream failure: readers drain and then receive it. Closing
// twice keeps the first terminal state.
func (r *Ring) Close(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.err = err
	r.etag = `"` + hex.EncodeToString(r.hash.Sum(nil)) + `"`
	r.wakeLocked()
}

// Release drops the spill file. Call once no reader will touch the ring
// again (job eviction); it does not wake or fail readers.
func (r *Ring) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.file != nil {
		_ = r.file.Close()
		r.file = nil
	}
}

// Size returns the total bytes written so far.
func (r *Ring) Size() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Closed reports whether the stream is terminal.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Err returns the terminal error (nil before Close or on clean close).
func (r *Ring) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// ETag returns the strong entity tag of the full content — the quoted hex
// SHA-256, the same tag the buffered serving path computes. Empty until
// the ring is closed.
func (r *Ring) ETag() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.etag
}

// readAtLocked copies available bytes at off into p. Caller holds r.mu
// and guarantees off < r.size.
func (r *Ring) readAtLocked(p []byte, off int64) (int, error) {
	if off >= r.spilled {
		return copy(p, r.buf[off-r.spilled:]), nil
	}
	// Spilled region: read from the file without holding readers to the
	// memory window. Cap at the spilled boundary; the next call continues
	// from memory.
	want := int64(len(p))
	if rem := r.spilled - off; rem < want {
		want = rem
	}
	n, err := r.file.ReadAt(p[:want], off)
	if err != nil && err != io.EOF {
		return n, fmt.Errorf("stream: spill read: %w", err)
	}
	return n, nil
}

// Bytes materializes the full content, refusing past max (<= 0 means no
// bound). Only valid once the ring is closed; the server uses it to land
// small finished artifacts in the result cache.
func (r *Ring) Bytes(max int64) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		return nil, errors.New("stream: Bytes before Close")
	}
	if max > 0 && r.size > max {
		return nil, fmt.Errorf("stream: content %d bytes exceeds inline bound %d", r.size, max)
	}
	out := make([]byte, r.size)
	for off := int64(0); off < r.size; {
		n, err := r.readAtLocked(out[off:], off)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("stream: short read at %d of %d", off, r.size)
		}
		off += int64(n)
	}
	return out, nil
}

// Reader is a sequential blocking reader over the ring's full byte
// sequence from offset 0. Read blocks until bytes arrive, the ring
// closes, or the reader's context is done.
type Reader struct {
	ring *Ring
	ctx  context.Context
	off  int64
}

// Reader returns a new sequential reader. ctx bounds every blocking
// Read (a disconnected HTTP client's request context unparks the
// handler); context.Background blocks until data or close.
func (r *Ring) Reader(ctx context.Context) *Reader {
	return &Reader{ring: r, ctx: ctx}
}

// Read implements io.Reader: the exact written byte sequence, then the
// terminal state (io.EOF on clean close, the producer's error otherwise).
func (rd *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	r := rd.ring
	for {
		r.mu.Lock()
		if rd.off < r.size {
			n, err := r.readAtLocked(p, rd.off)
			r.mu.Unlock()
			rd.off += int64(n)
			return n, err
		}
		if r.closed {
			err := r.err
			r.mu.Unlock()
			if err == nil {
				err = io.EOF
			}
			return 0, err
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-wake:
		case <-rd.ctx.Done():
			return 0, rd.ctx.Err()
		}
	}
}

// Offset returns how many bytes this reader has consumed.
func (rd *Reader) Offset() int64 { return rd.off }
