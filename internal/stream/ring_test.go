package stream

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// pattern builds a deterministic pseudo-random byte sequence.
func pattern(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestRingByteExactness writes several windows' worth of data in ragged
// chunks and checks that a concurrent reader, a late reader, and the
// materializer all observe exactly the written bytes.
func TestRingByteExactness(t *testing.T) {
	const total = 1 << 20 // 4x the window
	want := pattern(total)
	r := NewRing(t.TempDir(), 256<<10)

	var live []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b, err := io.ReadAll(r.Reader(context.Background()))
		if err != nil {
			t.Errorf("live reader: %v", err)
		}
		live = b
	}()

	rng := rand.New(rand.NewSource(3))
	for off := 0; off < total; {
		n := 1 + rng.Intn(64<<10)
		if off+n > total {
			n = total - off
		}
		if _, err := r.Write(want[off : off+n]); err != nil {
			t.Fatalf("write: %v", err)
		}
		off += n
	}
	r.Close(nil)
	wg.Wait()

	if !bytes.Equal(live, want) {
		t.Fatalf("live reader saw %d bytes, want %d (content mismatch)", len(live), total)
	}
	lateB, err := io.ReadAll(r.Reader(context.Background()))
	if err != nil || !bytes.Equal(lateB, want) {
		t.Fatalf("late reader mismatch (err=%v, %d bytes)", err, len(lateB))
	}
	mat, err := r.Bytes(0)
	if err != nil || !bytes.Equal(mat, want) {
		t.Fatalf("Bytes mismatch (err=%v, %d bytes)", err, len(mat))
	}
}

// TestRingMemoryBound checks the spill actually happens: after writing far
// more than the window, the in-memory buffer stays at most window bytes.
func TestRingMemoryBound(t *testing.T) {
	const window = 32 << 10
	r := NewRing(t.TempDir(), window)
	chunk := pattern(4 << 10)
	for i := 0; i < 64; i++ { // 256 KiB through a 32 KiB window
		if _, err := r.Write(chunk); err != nil {
			t.Fatalf("write: %v", err)
		}
		r.mu.Lock()
		n := len(r.buf)
		r.mu.Unlock()
		if n > window {
			t.Fatalf("in-memory buffer %d exceeds window %d", n, window)
		}
	}
	r.mu.Lock()
	spilled, file := r.spilled, r.file
	r.mu.Unlock()
	if file == nil || spilled == 0 {
		t.Fatalf("expected spill file after overflow (spilled=%d)", spilled)
	}
	r.Close(nil)
	b, err := r.Bytes(0)
	if err != nil || int64(len(b)) != r.Size() {
		t.Fatalf("materialize after spill: err=%v len=%d size=%d", err, len(b), r.Size())
	}
}

// TestRingSmallNeverSpills checks a sub-window artifact never touches disk.
func TestRingSmallNeverSpills(t *testing.T) {
	r := NewRing(t.TempDir(), 64<<10)
	r.Write(pattern(1000))
	r.Close(nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.file != nil {
		t.Fatal("small write created a spill file")
	}
}

// TestRingTerminalError checks a mid-stream producer failure reaches the
// reader after the bytes written so far.
func TestRingTerminalError(t *testing.T) {
	r := NewRing(t.TempDir(), 0)
	want := pattern(999)
	r.Write(want)
	boom := errors.New("producer exploded")
	r.Close(boom)

	got, err := io.ReadAll(r.Reader(context.Background()))
	if !errors.Is(err, boom) {
		t.Fatalf("reader error = %v, want %v", err, boom)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reader got %d bytes before error, want %d", len(got), len(want))
	}
	if !errors.Is(r.Err(), boom) {
		t.Fatalf("Err() = %v", r.Err())
	}
	if _, err := r.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

// TestRingETag checks the incremental hash matches the strong ETag the
// buffered path would compute over the same bytes.
func TestRingETag(t *testing.T) {
	r := NewRing(t.TempDir(), 1<<10)
	want := pattern(10 << 10)
	for i := 0; i < len(want); i += 777 {
		end := i + 777
		if end > len(want) {
			end = len(want)
		}
		r.Write(want[i:end])
	}
	if r.ETag() != "" {
		t.Fatal("ETag before close should be empty")
	}
	r.Close(nil)
	sum := sha256.Sum256(want)
	if want := `"` + hex.EncodeToString(sum[:]) + `"`; r.ETag() != want {
		t.Fatalf("ETag = %s, want %s", r.ETag(), want)
	}
}

// TestRingReaderContextCancel checks a parked reader unblocks when its
// context dies.
func TestRingReaderContextCancel(t *testing.T) {
	r := NewRing(t.TempDir(), 0)
	ctx, cancel := context.WithCancel(context.Background())
	rd := r.Reader(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := rd.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("read = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never unparked after cancel")
	}
}

// TestRingBytesBound checks the inline bound is enforced.
func TestRingBytesBound(t *testing.T) {
	r := NewRing(t.TempDir(), 0)
	r.Write(pattern(2048))
	r.Close(nil)
	if _, err := r.Bytes(1024); err == nil {
		t.Fatal("Bytes over bound should fail")
	}
	if b, err := r.Bytes(2048); err != nil || len(b) != 2048 {
		t.Fatalf("Bytes at bound: err=%v len=%d", err, len(b))
	}
}
