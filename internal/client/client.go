// Package client is the Go client of the rtkserve jobs API (v3): submit,
// poll, cancel, download — and the streaming surface, live chunked
// artifact downloads and the SSE job-event feed with Last-Event-ID
// resume. It speaks exactly the server package's wire types (JobView,
// Event, the error envelope), so a client-side document is the server's
// document, not a translation; cmd/serveload and external tooling build
// on it instead of hand-rolling HTTP.
//
// Errors cross as *client.Error carrying the HTTP status and the typed
// envelope code, so callers switch on codes (server.CodeSaturated, ...)
// rather than parsing messages. Submit retries saturation (429) and drain
// (503) rejections with the server's own Retry-After hint.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/run"
	"repro/internal/server"
)

// Client talks to one rtkserve replica or router.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// SubmitAttempts bounds Submit's retry loop on 429/503 (default 100).
	SubmitAttempts int
	// MaxRetryAfter caps how long one Retry-After hint is honored
	// (default 2s) — a load generator should not sleep a full server
	// drain hint.
	MaxRetryAfter time.Duration
}

// New builds a client for the service at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Error is a non-2xx API response: the HTTP status plus the server's
// structured envelope.
type Error struct {
	Status int
	server.APIError
}

func (e *Error) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsCode reports whether err is an API error with the given envelope code.
func IsCode(err error, code string) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes a non-2xx body into *Error; body is consumed. The
// envelope's retry_after_ms wins over the coarser Retry-After header
// (whole seconds), which non-envelope intermediaries may still set.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	e := &Error{Status: resp.StatusCode}
	var env server.ErrorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		e.APIError = env.Error
	} else {
		e.Code = server.CodeInternal
		e.Message = strings.TrimSpace(string(body))
	}
	if e.RetryAfterMS == 0 {
		if secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil {
			e.RetryAfterMS = secs * 1000
		}
	}
	return e
}

// do runs one request and decodes a 2xx JSON body into out.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits a Spec and returns the accepted job document (which may
// already be terminal: a cache hit is born done). Saturation (429) and
// drain (503) rejections are retried with the server's Retry-After hint,
// capped by MaxRetryAfter, up to SubmitAttempts times.
func (c *Client) Submit(ctx context.Context, spec run.Spec) (server.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.JobView{}, err
	}
	return c.SubmitJSON(ctx, body)
}

// SubmitJSON is Submit for a raw Spec document.
func (c *Client) SubmitJSON(ctx context.Context, spec []byte) (server.JobView, error) {
	attempts := c.SubmitAttempts
	if attempts <= 0 {
		attempts = 100
	}
	capWait := c.MaxRetryAfter
	if capWait <= 0 {
		capWait = 2 * time.Second
	}
	var last error
	for i := 0; i < attempts; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/api/v1/jobs", bytes.NewReader(spec))
		if err != nil {
			return server.JobView{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		var v server.JobView
		err = c.do(req, &v)
		if err == nil {
			return v, nil
		}
		var ae *Error
		if !errors.As(err, &ae) ||
			(ae.Status != http.StatusTooManyRequests && ae.Status != http.StatusServiceUnavailable) {
			return server.JobView{}, err
		}
		last = err
		wait := time.Duration(ae.RetryAfterMS) * time.Millisecond
		if wait <= 0 {
			wait = 10 * time.Millisecond
		}
		if wait > capWait {
			wait = capWait
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return server.JobView{}, context.Cause(ctx)
		}
	}
	return server.JobView{}, fmt.Errorf("submit: retries exhausted: %w", last)
}

// Job fetches a job's current document.
func (c *Client) Job(ctx context.Context, id string) (server.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobView{}, err
	}
	var v server.JobView
	return v, c.do(req, &v)
}

// Cancel requests cancellation and returns the (possibly already
// terminal) job document.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobView{}, err
	}
	var v server.JobView
	return v, c.do(req, &v)
}

// terminal reports whether a state is final.
func terminal(st server.State) bool {
	return st == server.StateDone || st == server.StateFailed || st == server.StateCancelled
}

// Wait polls the job until it is terminal (poll <= 0: 2ms). The terminal
// document is returned even for failed/cancelled jobs; the error is
// non-nil only when polling itself fails.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobView, error) {
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return server.JobView{}, err
		}
		if terminal(v.State) {
			return v, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return server.JobView{}, context.Cause(ctx)
		}
	}
}

// Artifact downloads one artifact of a finished job, whole.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	rc, err := c.ArtifactReader(ctx, id, name)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

// ArtifactReader opens a finished job's artifact for incremental
// consumption — hashing or piping without holding the whole body.
func (c *Client) ArtifactReader(ctx context.Context, id, name string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/api/v1/jobs/"+id+"/artifacts/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp.Body, nil
}

// StreamArtifact opens a live chunked download (?stream=1) of an
// artifact: bytes arrive as the running simulation produces them. The
// reader yields exactly the artifact's byte sequence; if the producing
// run fails mid-stream, the final Read (after the payload) returns the
// server's X-Stream-Error trailer as an *Error instead of io.EOF. Close
// the reader when done.
func (c *Client) StreamArtifact(ctx context.Context, id, name string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/api/v1/jobs/"+id+"/artifacts/"+name+"?stream=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return &streamReader{resp: resp}, nil
}

// streamReader surfaces the X-Stream-Error trailer as the terminal read
// error. Trailers are only populated once the body is fully consumed.
type streamReader struct {
	resp *http.Response
}

func (r *streamReader) Read(p []byte) (int, error) {
	n, err := r.resp.Body.Read(p)
	if errors.Is(err, io.EOF) {
		if tr := r.resp.Trailer.Get(server.TrailerStreamError); tr != "" {
			code, msg, _ := strings.Cut(tr, ": ")
			return n, &Error{Status: http.StatusOK, APIError: server.APIError{Code: code, Message: msg}}
		}
	}
	return n, err
}

func (r *streamReader) Close() error { return r.resp.Body.Close() }

// Events opens the job's SSE feed, resuming after lastEventID (0 = from
// the start). The server closes the feed after the terminal event;
// EventStream.Next then returns io.EOF.
func (c *Client) Events(ctx context.Context, id string, lastEventID uint64) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return &EventStream{body: resp.Body, lastID: lastEventID}, nil
}

// EventStream decodes an SSE job-event feed.
type EventStream struct {
	body   io.ReadCloser
	buf    []byte
	off    int
	lastID uint64
}

// LastID returns the ID of the last event decoded — the resume point for
// a reconnect (pass it back to Events after a broken feed).
func (es *EventStream) LastID() uint64 { return es.lastID }

// Close releases the feed.
func (es *EventStream) Close() error { return es.body.Close() }

// readLine returns the next newline-terminated line of the feed.
func (es *EventStream) readLine() (string, error) {
	for {
		if i := bytes.IndexByte(es.buf[es.off:], '\n'); i >= 0 {
			line := string(es.buf[es.off : es.off+i])
			es.off += i + 1
			return line, nil
		}
		es.buf = append(es.buf[:copy(es.buf, es.buf[es.off:])], make([]byte, 4096)...)
		rest := len(es.buf) - 4096
		es.off = 0
		n, err := es.body.Read(es.buf[rest:])
		es.buf = es.buf[:rest+n]
		if n == 0 && err != nil {
			return "", err
		}
	}
}

// Next decodes the next event. io.EOF marks the orderly end of the feed
// (the server closes it after the terminal event).
func (es *EventStream) Next() (server.Event, error) {
	var e server.Event
	var sawData bool
	for {
		line, err := es.readLine()
		if err != nil {
			return server.Event{}, err
		}
		switch {
		case line == "":
			if sawData {
				es.lastID = e.ID
				return e, nil
			}
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &e); err != nil {
				return server.Event{}, fmt.Errorf("events: bad frame: %w", err)
			}
			sawData = true
		// id: and event: lines duplicate fields of the JSON body.
		}
	}
}
