package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/run"
	"repro/internal/server"
)

func testSpec(seed uint64, stream bool) run.Spec {
	return run.Spec{
		Scenario:  "videogame",
		Dur:       run.Duration(60 * time.Millisecond),
		Seed:      seed,
		Artifacts: []string{run.ArtifactTrace, run.ArtifactMetrics},
		Stream:    stream,
	}
}

// TestClientRoundTrip covers the buffered lifecycle: submit, wait,
// artifact download, and the cache hit on a duplicate submission.
func TestClientRoundTrip(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	v, err := c.Submit(ctx, testSpec(7, false))
	if err != nil {
		t.Fatal(err)
	}
	v, err = c.Wait(ctx, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != server.StateDone {
		t.Fatalf("state = %s, error = %+v", v.State, v.Error)
	}
	trace, err := c.Artifact(ctx, v.ID, run.ArtifactTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace artifact")
	}

	dup, err := c.Submit(ctx, testSpec(7, false))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached || dup.State != server.StateDone {
		t.Fatalf("duplicate not cache-served: %+v", dup)
	}

	if _, err := c.Artifact(ctx, v.ID, "nope.json"); !IsCode(err, server.CodeNotFound) {
		t.Fatalf("missing artifact error = %v", err)
	}
	if _, err := c.Job(ctx, "zzz"); !IsCode(err, server.CodeNotFound) {
		t.Fatalf("unknown job error = %v", err)
	}
}

// TestClientStreaming covers the v3 surface end to end: a streamed
// submission, its SSE event feed decoded to the terminal event with a
// mid-feed reconnect via LastID, and a live artifact download matching
// the buffered bytes.
func TestClientStreaming(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, DisableCache: true})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	v, err := c.Submit(ctx, testSpec(11, true))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Stream {
		t.Fatalf("view lost stream flag: %+v", v)
	}

	// Read two events, drop the feed, resume from LastID: the union must
	// be gapless and duplicate-free up to the terminal event.
	es, err := c.Events(ctx, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []server.Event
	for len(got) < 2 {
		e, err := es.Next()
		if err != nil {
			t.Fatalf("first feed ended early: %v", err)
		}
		got = append(got, e)
	}
	es.Close()

	es, err = c.Events(ctx, v.ID, es.LastID())
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	for {
		e, err := es.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	for i, e := range got {
		if e.ID != uint64(i+1) {
			t.Fatalf("event %d has ID %d: resume gapped or duplicated", i, e.ID)
		}
	}
	last := got[len(got)-1]
	if !last.Terminal || last.State != server.StateDone {
		t.Fatalf("feed did not end terminal done: %+v", last)
	}

	streamed, err := c.StreamArtifact(ctx, v.ID, run.ArtifactTrace)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := io.ReadAll(streamed)
	streamed.Close()
	if err != nil {
		t.Fatalf("clean stream surfaced error: %v", err)
	}

	bv, err := c.Submit(ctx, testSpec(11, false))
	if err != nil {
		t.Fatal(err)
	}
	if bv, err = c.Wait(ctx, bv.ID, 0); err != nil {
		t.Fatal(err)
	}
	bb, err := c.Artifact(ctx, bv.ID, run.ArtifactTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) == 0 || !bytes.Equal(sb, bb) {
		t.Fatalf("streamed %d bytes != buffered %d bytes", len(sb), len(bb))
	}
}

// TestSubmitRetriesSaturation exercises the Retry-After loop against a
// handler that rejects twice before accepting, and the exhaustion path.
func TestSubmitRetriesSaturation(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			server.WriteError(w, http.StatusTooManyRequests,
				server.CodeSaturated, "queue full", 5*time.Millisecond)
			return
		}
		server.WriteJSON(w, http.StatusAccepted, server.JobView{ID: "j1", State: server.StateQueued})
	}))
	defer ts.Close()

	c := New(ts.URL)
	start := time.Now()
	v, err := c.Submit(context.Background(), testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j1" || calls.Load() != 3 {
		t.Fatalf("view %+v after %d calls", v, calls.Load())
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatalf("two 5ms Retry-After hints not honored (%v elapsed)", time.Since(start))
	}

	calls.Store(-1 << 40) // never accepts within the attempt budget
	c.SubmitAttempts = 3
	_, err = c.Submit(context.Background(), testSpec(1, false))
	if !IsCode(err, server.CodeSaturated) {
		t.Fatalf("exhaustion error = %v", err)
	}
}

// TestSubmitDoesNotRetryRejection: a 400 envelope comes straight back.
func TestSubmitDoesNotRetryRejection(t *testing.T) {
	srv := server.New(server.Config{Workers: 1})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, err := New(ts.URL).SubmitJSON(context.Background(), []byte(`{"dur":"1ms","artifacts":["x"]}`))
	var ae *Error
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("invalid spec error = %v", err)
	}
}

// TestStreamArtifactTrailerError: a mid-stream failure after headers is
// surfaced by the terminal read, not swallowed as a short io.EOF.
func TestStreamArtifactTrailerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", server.TrailerStreamError)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "partial-")
		w.Header().Set(server.TrailerStreamError, server.CodeCancelled+": job cancelled")
	}))
	defer ts.Close()

	rc, err := New(ts.URL).StreamArtifact(context.Background(), "j1", "trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	body, err := io.ReadAll(rc)
	if string(body) != "partial-" {
		t.Fatalf("body = %q", body)
	}
	if !IsCode(err, server.CodeCancelled) {
		t.Fatalf("trailer error = %v", err)
	}
}

// TestClientCancel cancels a queued job through the client.
func TestClientCancel(t *testing.T) {
	release := make(chan struct{})
	srv := server.New(server.Config{
		Workers: 1,
		Execute: func(ctx context.Context, spec run.Spec) (run.Result, error) {
			select {
			case <-release:
				return run.Result{}, nil
			case <-ctx.Done():
				return run.Result{}, context.Cause(ctx)
			}
		},
	})
	defer srv.Shutdown(context.Background())
	defer close(release)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	v, err := c.Submit(ctx, testSpec(2, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	v, err = c.Wait(ctx, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != server.StateCancelled {
		t.Fatalf("state after cancel = %s", v.State)
	}
}
