package i8051

import "fmt"

// Step decodes and executes one instruction, returning the machine cycles
// it took (standard 12-clock-per-cycle 8051 timing). A pending interrupt is
// vectored first.
func (c *CPU) Step() int {
	before := c.Cycles
	if c.takeIRQ() {
		return int(c.Cycles - before)
	}
	start := c.PC
	op := c.fetch()
	cy := c.exec(op)
	c.Cycles += uint64(cy)
	c.Instrs++
	// SJMP to itself = the conventional HALT idiom.
	if op == 0x80 && c.PC == start {
		c.Halted = true
	}
	return cy
}

// Run executes up to n instructions (or until Halted) and returns how many
// ran.
func (c *CPU) Run(n int) int {
	for i := 0; i < n; i++ {
		if c.Halted {
			return i
		}
		c.Step()
	}
	return n
}

// exec dispatches one opcode and returns its cycle count.
func (c *CPU) exec(op byte) int {
	// Column-regular families first.
	switch {
	case op&0x1F == 0x01: // AJMP addr11
		lo := c.fetch()
		c.PC = c.PC&0xF800 | uint16(op&0xE0)<<3 | uint16(lo)
		return 2
	case op&0x1F == 0x11: // ACALL addr11
		lo := c.fetch()
		c.pushPC()
		c.PC = c.PC&0xF800 | uint16(op&0xE0)<<3 | uint16(lo)
		return 2
	}

	switch op {
	case 0x00: // NOP
		return 1
	case 0x02: // LJMP addr16
		hi, lo := c.fetch(), c.fetch()
		c.PC = uint16(hi)<<8 | uint16(lo)
		return 2
	case 0x12: // LCALL addr16
		hi, lo := c.fetch(), c.fetch()
		c.pushPC()
		c.PC = uint16(hi)<<8 | uint16(lo)
		return 2
	case 0x22, 0x32: // RET / RETI
		c.popPC()
		return 2
	case 0x03: // RR A
		a := c.A()
		c.SetA(a>>1 | a<<7)
		return 1
	case 0x13: // RRC A
		a := c.A()
		oldCY := c.CY()
		c.setFlag(FlagCY, a&1 != 0)
		a >>= 1
		if oldCY {
			a |= 0x80
		}
		c.SetA(a)
		return 1
	case 0x23: // RL A
		a := c.A()
		c.SetA(a<<1 | a>>7)
		return 1
	case 0x33: // RLC A
		a := c.A()
		oldCY := c.CY()
		c.setFlag(FlagCY, a&0x80 != 0)
		a <<= 1
		if oldCY {
			a |= 1
		}
		c.SetA(a)
		return 1

	// --- INC / DEC ---
	case 0x04:
		c.SetA(c.A() + 1)
		return 1
	case 0x05:
		d := c.fetch()
		c.writeDirect(d, c.readDirect(d)+1)
		return 1
	case 0x06, 0x07:
		a := c.R(int(op & 1))
		c.writeIndirect(a, c.readIndirect(a)+1)
		return 1
	case 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F:
		n := int(op & 7)
		c.SetR(n, c.R(n)+1)
		return 1
	case 0x14:
		c.SetA(c.A() - 1)
		return 1
	case 0x15:
		d := c.fetch()
		c.writeDirect(d, c.readDirect(d)-1)
		return 1
	case 0x16, 0x17:
		a := c.R(int(op & 1))
		c.writeIndirect(a, c.readIndirect(a)-1)
		return 1
	case 0x18, 0x19, 0x1A, 0x1B, 0x1C, 0x1D, 0x1E, 0x1F:
		n := int(op & 7)
		c.SetR(n, c.R(n)-1)
		return 1
	case 0xA3: // INC DPTR
		c.SetDPTR(c.DPTR() + 1)
		return 2

	// --- ADD / ADDC / SUBB ---
	case 0x24:
		c.add(c.fetch(), false)
		return 1
	case 0x25:
		c.add(c.readDirect(c.fetch()), false)
		return 1
	case 0x26, 0x27:
		c.add(c.readIndirect(c.R(int(op&1))), false)
		return 1
	case 0x28, 0x29, 0x2A, 0x2B, 0x2C, 0x2D, 0x2E, 0x2F:
		c.add(c.R(int(op&7)), false)
		return 1
	case 0x34:
		c.add(c.fetch(), true)
		return 1
	case 0x35:
		c.add(c.readDirect(c.fetch()), true)
		return 1
	case 0x36, 0x37:
		c.add(c.readIndirect(c.R(int(op&1))), true)
		return 1
	case 0x38, 0x39, 0x3A, 0x3B, 0x3C, 0x3D, 0x3E, 0x3F:
		c.add(c.R(int(op&7)), true)
		return 1
	case 0x94:
		c.subb(c.fetch())
		return 1
	case 0x95:
		c.subb(c.readDirect(c.fetch()))
		return 1
	case 0x96, 0x97:
		c.subb(c.readIndirect(c.R(int(op & 1))))
		return 1
	case 0x98, 0x99, 0x9A, 0x9B, 0x9C, 0x9D, 0x9E, 0x9F:
		c.subb(c.R(int(op & 7)))
		return 1

	// --- logic on A ---
	case 0x44:
		c.SetA(c.A() | c.fetch())
		return 1
	case 0x45:
		c.SetA(c.A() | c.readDirect(c.fetch()))
		return 1
	case 0x46, 0x47:
		c.SetA(c.A() | c.readIndirect(c.R(int(op&1))))
		return 1
	case 0x48, 0x49, 0x4A, 0x4B, 0x4C, 0x4D, 0x4E, 0x4F:
		c.SetA(c.A() | c.R(int(op&7)))
		return 1
	case 0x54:
		c.SetA(c.A() & c.fetch())
		return 1
	case 0x55:
		c.SetA(c.A() & c.readDirect(c.fetch()))
		return 1
	case 0x56, 0x57:
		c.SetA(c.A() & c.readIndirect(c.R(int(op&1))))
		return 1
	case 0x58, 0x59, 0x5A, 0x5B, 0x5C, 0x5D, 0x5E, 0x5F:
		c.SetA(c.A() & c.R(int(op&7)))
		return 1
	case 0x64:
		c.SetA(c.A() ^ c.fetch())
		return 1
	case 0x65:
		c.SetA(c.A() ^ c.readDirect(c.fetch()))
		return 1
	case 0x66, 0x67:
		c.SetA(c.A() ^ c.readIndirect(c.R(int(op&1))))
		return 1
	case 0x68, 0x69, 0x6A, 0x6B, 0x6C, 0x6D, 0x6E, 0x6F:
		c.SetA(c.A() ^ c.R(int(op&7)))
		return 1

	// --- logic on direct ---
	case 0x42: // ORL dir,A
		d := c.fetch()
		c.writeDirect(d, c.readDirect(d)|c.A())
		return 1
	case 0x43: // ORL dir,#imm
		d, imm := c.fetch(), c.fetch()
		c.writeDirect(d, c.readDirect(d)|imm)
		return 2
	case 0x52:
		d := c.fetch()
		c.writeDirect(d, c.readDirect(d)&c.A())
		return 1
	case 0x53:
		d, imm := c.fetch(), c.fetch()
		c.writeDirect(d, c.readDirect(d)&imm)
		return 2
	case 0x62:
		d := c.fetch()
		c.writeDirect(d, c.readDirect(d)^c.A())
		return 1
	case 0x63:
		d, imm := c.fetch(), c.fetch()
		c.writeDirect(d, c.readDirect(d)^imm)
		return 2

	// --- MOV ---
	case 0x74:
		c.SetA(c.fetch())
		return 1
	case 0x75:
		d, imm := c.fetch(), c.fetch()
		c.writeDirect(d, imm)
		return 2
	case 0x76, 0x77:
		c.writeIndirect(c.R(int(op&1)), c.fetch())
		return 1
	case 0x78, 0x79, 0x7A, 0x7B, 0x7C, 0x7D, 0x7E, 0x7F:
		c.SetR(int(op&7), c.fetch())
		return 1
	case 0x85: // MOV dir,dir — source first in encoding
		src, dst := c.fetch(), c.fetch()
		c.writeDirect(dst, c.readDirect(src))
		return 2
	case 0x86, 0x87: // MOV dir,@Ri
		d := c.fetch()
		c.writeDirect(d, c.readIndirect(c.R(int(op&1))))
		return 2
	case 0x88, 0x89, 0x8A, 0x8B, 0x8C, 0x8D, 0x8E, 0x8F: // MOV dir,Rn
		d := c.fetch()
		c.writeDirect(d, c.R(int(op&7)))
		return 2
	case 0x90: // MOV DPTR,#imm16
		hi, lo := c.fetch(), c.fetch()
		c.SetDPTR(uint16(hi)<<8 | uint16(lo))
		return 2
	case 0xA6, 0xA7: // MOV @Ri,dir
		d := c.fetch()
		c.writeIndirect(c.R(int(op&1)), c.readDirect(d))
		return 2
	case 0xA8, 0xA9, 0xAA, 0xAB, 0xAC, 0xAD, 0xAE, 0xAF: // MOV Rn,dir
		d := c.fetch()
		c.SetR(int(op&7), c.readDirect(d))
		return 2
	case 0xE5:
		c.SetA(c.readDirect(c.fetch()))
		return 1
	case 0xE6, 0xE7:
		c.SetA(c.readIndirect(c.R(int(op & 1))))
		return 1
	case 0xE8, 0xE9, 0xEA, 0xEB, 0xEC, 0xED, 0xEE, 0xEF:
		c.SetA(c.R(int(op & 7)))
		return 1
	case 0xF5:
		c.writeDirect(c.fetch(), c.A())
		return 1
	case 0xF6, 0xF7:
		c.writeIndirect(c.R(int(op&1)), c.A())
		return 1
	case 0xF8, 0xF9, 0xFA, 0xFB, 0xFC, 0xFD, 0xFE, 0xFF:
		c.SetR(int(op&7), c.A())
		return 1

	// --- MOVC / MOVX ---
	case 0x93: // MOVC A,@A+DPTR
		c.SetA(c.Code[c.DPTR()+uint16(c.A())])
		return 2
	case 0x83: // MOVC A,@A+PC
		c.SetA(c.Code[c.PC+uint16(c.A())])
		return 2
	case 0xE0: // MOVX A,@DPTR
		c.SetA(c.XRAM.Read(c.DPTR()))
		return 2
	case 0xE2, 0xE3: // MOVX A,@Ri
		c.SetA(c.XRAM.Read(uint16(c.R(int(op & 1)))))
		return 2
	case 0xF0: // MOVX @DPTR,A
		c.XRAM.Write(c.DPTR(), c.A())
		return 2
	case 0xF2, 0xF3: // MOVX @Ri,A
		c.XRAM.Write(uint16(c.R(int(op&1))), c.A())
		return 2

	// --- XCH / SWAP / CLR / CPL / DA ---
	case 0xC4: // SWAP A
		a := c.A()
		c.SetA(a<<4 | a>>4)
		return 1
	case 0xC5:
		d := c.fetch()
		a, v := c.A(), c.readDirect(d)
		c.SetA(v)
		c.writeDirect(d, a)
		return 1
	case 0xC6, 0xC7:
		r := c.R(int(op & 1))
		a, v := c.A(), c.readIndirect(r)
		c.SetA(v)
		c.writeIndirect(r, a)
		return 1
	case 0xC8, 0xC9, 0xCA, 0xCB, 0xCC, 0xCD, 0xCE, 0xCF:
		n := int(op & 7)
		a, v := c.A(), c.R(n)
		c.SetA(v)
		c.SetR(n, a)
		return 1
	case 0xD6, 0xD7: // XCHD A,@Ri — swap low nibbles
		r := c.R(int(op & 1))
		a, v := c.A(), c.readIndirect(r)
		c.SetA(a&0xF0 | v&0x0F)
		c.writeIndirect(r, v&0xF0|a&0x0F)
		return 1
	case 0xE4: // CLR A
		c.SetA(0)
		return 1
	case 0xF4: // CPL A
		c.SetA(^c.A())
		return 1
	case 0xD4: // DA A
		c.daa()
		return 1

	// --- MUL / DIV ---
	case 0xA4: // MUL AB
		p := uint16(c.A()) * uint16(c.B())
		c.SetA(byte(p))
		c.SetB(byte(p >> 8))
		c.setFlag(FlagCY, false)
		c.setFlag(FlagOV, p > 0xFF)
		return 4
	case 0x84: // DIV AB
		b := c.B()
		c.setFlag(FlagCY, false)
		if b == 0 {
			c.setFlag(FlagOV, true)
			return 4
		}
		a := c.A()
		c.SetA(a / b)
		c.SetB(a % b)
		c.setFlag(FlagOV, false)
		return 4

	// --- stack ---
	case 0xC0: // PUSH dir
		c.push(c.readDirect(c.fetch()))
		return 2
	case 0xD0: // POP dir
		c.writeDirect(c.fetch(), c.pop())
		return 2

	// --- jumps ---
	case 0x80: // SJMP rel
		c.rel(c.fetch())
		return 2
	case 0x73: // JMP @A+DPTR
		c.PC = c.DPTR() + uint16(c.A())
		return 2
	case 0x40: // JC
		return c.condJump(c.CY())
	case 0x50: // JNC
		return c.condJump(!c.CY())
	case 0x60: // JZ
		return c.condJump(c.A() == 0)
	case 0x70: // JNZ
		return c.condJump(c.A() != 0)
	case 0x20: // JB bit,rel
		bit := c.fetch()
		return c.condJump(c.readBit(bit))
	case 0x30: // JNB bit,rel
		bit := c.fetch()
		return c.condJump(!c.readBit(bit))
	case 0x10: // JBC bit,rel — jump and clear
		bit := c.fetch()
		set := c.readBit(bit)
		if set {
			c.writeBit(bit, false)
		}
		return c.condJump(set)

	// --- CJNE ---
	case 0xB4: // CJNE A,#imm,rel
		imm := c.fetch()
		return c.cjne(c.A(), imm)
	case 0xB5: // CJNE A,dir,rel
		v := c.readDirect(c.fetch())
		return c.cjne(c.A(), v)
	case 0xB6, 0xB7: // CJNE @Ri,#imm,rel
		imm := c.fetch()
		return c.cjne(c.readIndirect(c.R(int(op&1))), imm)
	case 0xB8, 0xB9, 0xBA, 0xBB, 0xBC, 0xBD, 0xBE, 0xBF: // CJNE Rn,#imm,rel
		imm := c.fetch()
		return c.cjne(c.R(int(op&7)), imm)

	// --- DJNZ ---
	case 0xD5: // DJNZ dir,rel
		d := c.fetch()
		v := c.readDirect(d) - 1
		c.writeDirect(d, v)
		return c.condJump(v != 0)
	case 0xD8, 0xD9, 0xDA, 0xDB, 0xDC, 0xDD, 0xDE, 0xDF: // DJNZ Rn,rel
		n := int(op & 7)
		v := c.R(n) - 1
		c.SetR(n, v)
		return c.condJump(v != 0)

	// --- bit operations ---
	case 0xC2: // CLR bit
		c.writeBit(c.fetch(), false)
		return 1
	case 0xD2: // SETB bit
		c.writeBit(c.fetch(), true)
		return 1
	case 0xB2: // CPL bit
		bit := c.fetch()
		c.writeBit(bit, !c.readBit(bit))
		return 1
	case 0xC3: // CLR C
		c.setFlag(FlagCY, false)
		return 1
	case 0xD3: // SETB C
		c.setFlag(FlagCY, true)
		return 1
	case 0xB3: // CPL C
		c.setFlag(FlagCY, !c.CY())
		return 1
	case 0xA2: // MOV C,bit
		c.setFlag(FlagCY, c.readBit(c.fetch()))
		return 1
	case 0x92: // MOV bit,C
		c.writeBit(c.fetch(), c.CY())
		return 2
	case 0x72: // ORL C,bit
		c.setFlag(FlagCY, c.CY() || c.readBit(c.fetch()))
		return 2
	case 0xA0: // ORL C,/bit
		c.setFlag(FlagCY, c.CY() || !c.readBit(c.fetch()))
		return 2
	case 0x82: // ANL C,bit
		c.setFlag(FlagCY, c.CY() && c.readBit(c.fetch()))
		return 2
	case 0xB0: // ANL C,/bit
		c.setFlag(FlagCY, c.CY() && !c.readBit(c.fetch()))
		return 2

	case 0xA5: // reserved
		return 1
	}
	panic(fmt.Sprintf("i8051: unimplemented opcode %#02x at PC=%04x", op, c.PC-1))
}

// condJump fetches the rel byte and branches when cond holds (all
// conditional branches are 2 cycles taken or not).
func (c *CPU) condJump(cond bool) int {
	d := c.fetch()
	if cond {
		c.rel(d)
	}
	return 2
}

// cjne compares and branches when a != b; CY is set when a < b (unsigned).
func (c *CPU) cjne(a, b byte) int {
	c.setFlag(FlagCY, a < b)
	return c.condJump(a != b)
}

// add performs A += v (+CY) with the 8051 flag model.
func (c *CPU) add(v byte, withCarry bool) {
	a := c.A()
	cin := uint16(0)
	if withCarry && c.CY() {
		cin = 1
	}
	sum := uint16(a) + uint16(v) + cin
	half := a&0x0F + v&0x0F + byte(cin)
	c.setFlag(FlagCY, sum > 0xFF)
	c.setFlag(FlagAC, half > 0x0F)
	// OV: carry into bit 7 xor carry out of bit 7.
	c7 := (uint16(a&0x7F) + uint16(v&0x7F) + cin) > 0x7F
	c.setFlag(FlagOV, c7 != (sum > 0xFF))
	c.SetA(byte(sum))
}

// subb performs A -= v + CY with the 8051 flag model.
func (c *CPU) subb(v byte) {
	a := c.A()
	cin := uint16(0)
	if c.CY() {
		cin = 1
	}
	diff := uint16(a) - uint16(v) - cin
	c.setFlag(FlagCY, uint16(a) < uint16(v)+cin)
	c.setFlag(FlagAC, uint16(a&0x0F) < uint16(v&0x0F)+cin)
	// OV: borrow into bit 7 xor borrow out of bit 7.
	b7 := uint16(a&0x7F) < uint16(v&0x7F)+cin
	c.setFlag(FlagOV, b7 != (uint16(a) < uint16(v)+cin))
	c.SetA(byte(diff))
}

// daa decimal-adjusts the accumulator after BCD addition.
func (c *CPU) daa() {
	a := uint16(c.A())
	if a&0x0F > 9 || c.flag(FlagAC) {
		a += 0x06
	}
	if a > 0xFF {
		c.setFlag(FlagCY, true)
	}
	a &= 0xFF
	if a&0xF0 > 0x90 || c.CY() {
		a += 0x60
	}
	if a > 0xFF {
		c.setFlag(FlagCY, true)
	}
	c.SetA(byte(a))
}
