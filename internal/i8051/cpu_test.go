package i8051

import (
	"testing"
	"testing/quick"
)

// runProgram assembles, executes until halt (bounded), and returns the CPU.
func runProgram(t *testing.T, a *Asm) *CPU {
	t.Helper()
	c := New(a.Assemble())
	c.Run(1_000_000)
	if !c.Halted {
		t.Fatalf("program did not halt: %v", c)
	}
	return c
}

func TestMovImmediateAndRegisters(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovAImm(0x42).
		MovRA(3).
		MovRImm(5, 0x99).
		MovDirA(0x30).
		Halt())
	if c.A() != 0x42 || c.R(3) != 0x42 || c.R(5) != 0x99 || c.IRAM[0x30] != 0x42 {
		t.Fatalf("state: %v R3=%02x R5=%02x [30]=%02x", c, c.R(3), c.R(5), c.IRAM[0x30])
	}
}

func TestMovDirDirEncoding(t *testing.T) {
	// MOV dir,dir encodes source first; 0x85 src dst.
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 0xAB).
		MovDirDir(0x31, 0x30).
		Halt())
	if c.IRAM[0x31] != 0xAB {
		t.Fatalf("[31]=%02x", c.IRAM[0x31])
	}
}

func TestIndirectAddressing(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovRImm(0, 0x40). // R0 -> 0x40
		MovAImm(0x77).
		MovAtRiA(0).      // [0x40] = A
		MovRImm(1, 0x40). // R1 -> 0x40
		ClrA().
		MovAAtRi(1). // A = [0x40]
		Halt())
	if c.A() != 0x77 || c.IRAM[0x40] != 0x77 {
		t.Fatalf("A=%02x [40]=%02x", c.A(), c.IRAM[0x40])
	}
}

func TestAddFlags(t *testing.T) {
	cases := []struct {
		a, b       byte
		sum        byte
		cy, ac, ov bool
	}{
		{0x10, 0x20, 0x30, false, false, false},
		{0xFF, 0x01, 0x00, true, true, false},
		{0x7F, 0x01, 0x80, false, true, true},  // signed overflow
		{0x80, 0x80, 0x00, true, false, true},  // -128 + -128
		{0x0F, 0x01, 0x10, false, true, false}, // half carry
	}
	for _, tc := range cases {
		c := runProgram(t, NewAsm().MovAImm(tc.a).AddAImm(tc.b).Halt())
		if c.A() != tc.sum || c.CY() != tc.cy || c.flag(FlagAC) != tc.ac || c.flag(FlagOV) != tc.ov {
			t.Errorf("%02x+%02x: A=%02x CY=%v AC=%v OV=%v, want %02x %v %v %v",
				tc.a, tc.b, c.A(), c.CY(), c.flag(FlagAC), c.flag(FlagOV),
				tc.sum, tc.cy, tc.ac, tc.ov)
		}
	}
}

func TestAddcUsesCarry(t *testing.T) {
	c := runProgram(t, NewAsm().
		SetbC().
		MovAImm(0x10).
		AddcAImm(0x05).
		Halt())
	if c.A() != 0x16 {
		t.Fatalf("A=%02x, want 16", c.A())
	}
}

func TestSubbFlags(t *testing.T) {
	// 0x10 - 0x20 borrows.
	c := runProgram(t, NewAsm().ClrC().MovAImm(0x10).SubbAImm(0x20).Halt())
	if c.A() != 0xF0 || !c.CY() {
		t.Fatalf("A=%02x CY=%v", c.A(), c.CY())
	}
	// 0x80 - 0x01 = 0x7F: signed overflow.
	c = runProgram(t, NewAsm().ClrC().MovAImm(0x80).SubbAImm(0x01).Halt())
	if c.A() != 0x7F || !c.flag(FlagOV) {
		t.Fatalf("A=%02x OV=%v", c.A(), c.flag(FlagOV))
	}
}

func TestMulDiv(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovAImm(25).
		MovDirImm(SfrB, 13).
		MulAB().
		Halt())
	// 25*13 = 325 = 0x0145
	if c.A() != 0x45 || c.B() != 0x01 || !c.flag(FlagOV) || c.CY() {
		t.Fatalf("MUL: A=%02x B=%02x OV=%v", c.A(), c.B(), c.flag(FlagOV))
	}
	c = runProgram(t, NewAsm().
		MovAImm(100).
		MovDirImm(SfrB, 7).
		DivAB().
		Halt())
	if c.A() != 14 || c.B() != 2 || c.flag(FlagOV) {
		t.Fatalf("DIV: A=%d B=%d", c.A(), c.B())
	}
	// Division by zero sets OV.
	c = runProgram(t, NewAsm().MovAImm(5).MovDirImm(SfrB, 0).DivAB().Halt())
	if !c.flag(FlagOV) {
		t.Fatal("DIV by zero should set OV")
	}
}

func TestLogicAndRotates(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovAImm(0b1100_1010).
		AnlAImm(0b1111_0000).
		Halt())
	if c.A() != 0b1100_0000 {
		t.Fatalf("ANL: %08b", c.A())
	}
	c = runProgram(t, NewAsm().MovAImm(0x81).RlA().Halt())
	if c.A() != 0x03 {
		t.Fatalf("RL: %02x", c.A())
	}
	c = runProgram(t, NewAsm().ClrC().MovAImm(0x81).RlcA().Halt())
	if c.A() != 0x02 || !c.CY() {
		t.Fatalf("RLC: %02x CY=%v", c.A(), c.CY())
	}
	c = runProgram(t, NewAsm().MovAImm(0xA5).SwapA().Halt())
	if c.A() != 0x5A {
		t.Fatalf("SWAP: %02x", c.A())
	}
	c = runProgram(t, NewAsm().MovAImm(0x0F).CplA().Halt())
	if c.A() != 0xF0 {
		t.Fatalf("CPL: %02x", c.A())
	}
}

func TestParityFlag(t *testing.T) {
	c := runProgram(t, NewAsm().MovAImm(0b0000_0111).Halt())
	if !c.flag(FlagP) {
		t.Fatal("3 ones: P should be set")
	}
	c = runProgram(t, NewAsm().MovAImm(0b0000_0011).Halt())
	if c.flag(FlagP) {
		t.Fatal("2 ones: P should be clear")
	}
}

func TestDJNZLoop(t *testing.T) {
	// Sum 1..10 via DJNZ.
	c := runProgram(t, NewAsm().
		MovRImm(0, 10).
		ClrA().
		Label("loop").
		AddAR(0).
		DjnzR(0, "loop").
		Halt())
	if c.A() != 55 {
		t.Fatalf("sum = %d", c.A())
	}
}

func TestCJNEAndCarry(t *testing.T) {
	// CJNE sets CY when first < second.
	c := runProgram(t, NewAsm().
		MovAImm(5).
		CjneAImm(9, "diff").
		Label("diff").
		Halt())
	if !c.CY() {
		t.Fatal("CJNE 5,9 should set CY")
	}
	c = runProgram(t, NewAsm().
		MovAImm(9).
		CjneAImm(5, "diff").
		Label("diff").
		Halt())
	if c.CY() {
		t.Fatal("CJNE 9,5 should clear CY")
	}
}

func TestCallRetAndStack(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovAImm(1).
		Lcall("sub").
		MovRA(7). // after return: A==3
		Halt().
		Label("sub").
		IncA().
		IncA().
		Ret())
	if c.R(7) != 3 {
		t.Fatalf("R7=%d", c.R(7))
	}
	if c.SP() != 0x07 {
		t.Fatalf("SP=%02x, want balanced 07", c.SP())
	}
}

func TestPushPop(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 0xAA).
		PushDir(0x30).
		MovDirImm(0x30, 0x00).
		PopDir(0x31).
		Halt())
	if c.IRAM[0x31] != 0xAA {
		t.Fatalf("[31]=%02x", c.IRAM[0x31])
	}
}

func TestBitOperations(t *testing.T) {
	// Bit 0x08 = IRAM 0x21 bit 0.
	c := runProgram(t, NewAsm().
		SetbBit(0x08).
		Jnb(0x08, "fail").
		ClrBit(0x08).
		Jb(0x08, "fail").
		CplBit(0x08).
		MovCBit(0x08).
		MovBitC(0x0F). // IRAM 0x21 bit 7
		MovAImm(1).
		Sjmp("end").
		Label("fail").
		MovAImm(0xFF).
		Label("end").
		Halt())
	if c.A() != 1 {
		t.Fatal("bit branch logic failed")
	}
	if c.IRAM[0x21] != 0x81 {
		t.Fatalf("[21]=%02x, want 81", c.IRAM[0x21])
	}
}

func TestJBCClearsBit(t *testing.T) {
	c := runProgram(t, NewAsm().
		SetbBit(0x10). // IRAM 0x22 bit 0
		Jbc(0x10, "taken").
		MovAImm(0xFF).
		Halt().
		Label("taken").
		MovAImm(0x01).
		Halt())
	if c.A() != 1 || c.IRAM[0x22] != 0 {
		t.Fatalf("A=%02x [22]=%02x", c.A(), c.IRAM[0x22])
	}
}

func TestRegisterBanks(t *testing.T) {
	// Switch to bank 1 (PSW.RS0=1, bit 0xD3) and verify R0 maps to 0x08.
	c := runProgram(t, NewAsm().
		MovRImm(0, 0x11). // bank 0 R0 -> IRAM 0x00
		SetbBit(0xD3).    // PSW.3 = RS0
		MovRImm(0, 0x22). // bank 1 R0 -> IRAM 0x08
		Halt())
	if c.IRAM[0x00] != 0x11 || c.IRAM[0x08] != 0x22 {
		t.Fatalf("[00]=%02x [08]=%02x", c.IRAM[0x00], c.IRAM[0x08])
	}
}

func TestMOVXExternalRAM(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDPTR(0x1234).
		MovAImm(0x5C).
		MovxDPTRA().
		ClrA().
		MovxADPTR().
		Halt())
	if c.A() != 0x5C || c.XRAM.Read(0x1234) != 0x5C {
		t.Fatalf("A=%02x", c.A())
	}
}

func TestMOVCCodeTable(t *testing.T) {
	a := NewAsm().
		MovDPTR(0x0100).
		MovAImm(2).
		MovCAtADPTR().
		Halt()
	a.Org(0x0100)
	a.emit(10, 20, 30, 40)
	c := runProgram(t, a)
	if c.A() != 30 {
		t.Fatalf("A=%d", c.A())
	}
}

func TestDAA(t *testing.T) {
	// BCD 28 + 19 = 47.
	c := runProgram(t, NewAsm().
		MovAImm(0x28).
		AddAImm(0x19).
		DaA().
		Halt())
	if c.A() != 0x47 {
		t.Fatalf("DA: %02x, want 47 BCD", c.A())
	}
}

func TestXCH(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovAImm(0x11).
		MovRImm(2, 0x22).
		XchAR(2).
		Halt())
	if c.A() != 0x22 || c.R(2) != 0x11 {
		t.Fatalf("A=%02x R2=%02x", c.A(), c.R(2))
	}
}

func TestCycleCounts(t *testing.T) {
	// MOV A,#imm (1) + MOV dir,#imm (2) + MUL (4) + SJMP (2) = 9 cycles.
	c := New(NewAsm().
		MovAImm(3).
		MovDirImm(SfrB, 4).
		MulAB().
		Halt().
		Assemble())
	c.Run(4)
	if c.Cycles != 9 {
		t.Fatalf("cycles = %d, want 9", c.Cycles)
	}
	if c.Instrs != 4 {
		t.Fatalf("instrs = %d", c.Instrs)
	}
}

func TestInterruptVectoring(t *testing.T) {
	// Main loop increments R7 forever; ISR at INT0 vector sets IRAM 0x40
	// and returns.
	a := NewAsm().
		Ljmp("main").
		Org(VecINT0).
		MovDirImm(0x40, 0xEE).
		Reti().
		Label("main").
		MovDirImm(SfrIE, 0x81). // EA | EX0
		Label("loop").
		IncR(7).
		Sjmp("loop")
	c := New(a.Assemble())
	c.Run(10)
	c.RaiseIRQ(VecINT0)
	c.Run(10)
	if c.IRAM[0x40] != 0xEE {
		t.Fatal("ISR did not run")
	}
	// Returned to the loop: R7 keeps counting.
	before := c.R(7)
	c.Run(10)
	if c.R(7) <= before {
		t.Fatal("main loop did not resume after RETI")
	}
}

func TestInterruptMaskedByEA(t *testing.T) {
	a := NewAsm().
		Ljmp("main").
		Org(VecINT0).
		MovDirImm(0x40, 0xEE).
		Reti().
		Label("main").
		Label("loop").
		IncR(7).
		Sjmp("loop")
	c := New(a.Assemble())
	c.Run(5)
	c.RaiseIRQ(VecINT0) // EA clear: stays pending
	c.Run(20)
	if c.IRAM[0x40] != 0 {
		t.Fatal("masked interrupt executed")
	}
}

func TestPortAndSerialObservers(t *testing.T) {
	var ports []byte
	var serial []byte
	c := New(NewAsm().
		MovDirImm(SfrP1, 0x55).
		MovDirImm(SfrSBUF, 'H').
		Halt().
		Assemble())
	c.PortOut = func(port int, v byte) {
		if port == 1 {
			ports = append(ports, v)
		}
	}
	c.SerialOut = func(v byte) { serial = append(serial, v) }
	c.Run(100)
	if len(ports) != 1 || ports[0] != 0x55 {
		t.Fatalf("ports = %v", ports)
	}
	if len(serial) != 1 || serial[0] != 'H' {
		t.Fatalf("serial = %v", serial)
	}
}

func TestFibonacciProgram(t *testing.T) {
	// Compute fib(10) = 55 iteratively: (R0,R1) = (fib(i), fib(i+1)).
	c := runProgram(t, NewAsm().
		MovRImm(0, 0). // fib(0)
		MovRImm(1, 1). // fib(1)
		MovRImm(2, 9). // loop count
		Label("loop").
		MovAR(0).
		AddAR(1).              // A = a+b
		MovDirDir(0x00, 0x01). // R0 <- R1 (bank-0 direct addresses)
		MovRA(1).              // R1 <- A
		DjnzR(2, "loop").
		MovAR(1).
		Halt())
	if c.A() != 55 {
		t.Fatalf("fib(10) = %d", c.A())
	}
}

// Property: ADD then SUBB with the same operand restores A when no borrow
// interference (CY cleared in between).
func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(x, y byte) bool {
		c := runQuiet(NewAsm().
			MovAImm(x).
			AddAImm(y).
			ClrC().
			SubbAImm(y).
			Halt())
		return c != nil && c.A() == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MUL AB == native product for all byte pairs (sampled).
func TestPropertyMul(t *testing.T) {
	f := func(x, y byte) bool {
		c := runQuiet(NewAsm().
			MovAImm(x).
			MovDirImm(SfrB, y).
			MulAB().
			Halt())
		if c == nil {
			return false
		}
		p := uint16(x) * uint16(y)
		return c.A() == byte(p) && c.B() == byte(p>>8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func runQuiet(a *Asm) *CPU {
	c := New(a.Assemble())
	c.Run(1_000_000)
	if !c.Halted {
		return nil
	}
	return c
}
