package i8051_test

import (
	"testing"

	"repro/internal/bfm"
	"repro/internal/i8051"
	"repro/internal/sysc"
)

func TestMachineAdvancesSimulatedTime(t *testing.T) {
	// 10 iterations of a 4-cycle loop body (IncA=1, DJNZ=2, plus final
	// fall-through) then halt: verify simulated time equals cycles × 1 us.
	fw := i8051.NewAsm().
		MovRImm(0, 10). // 1 cycle
		Label("loop").
		IncA().           // 1 cycle × 10
		DjnzR(0, "loop"). // 2 cycles × 10
		Halt().           // 2 cycles
		Assemble()
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	cpu := i8051.New(fw)
	m := i8051.NewMachine(sim, cpu, sysc.Us, 1)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
	// 1 + 10*1 + 10*2 + 2 = 33 cycles -> sim halts at 33 us.
	if cpu.Cycles != 33 {
		t.Fatalf("cycles = %d", cpu.Cycles)
	}
	if sim.Now() != 33*sysc.Us {
		t.Fatalf("sim time = %v, want 33 us", sim.Now())
	}
	if cpu.A() != 10 {
		t.Fatalf("A = %d", cpu.A())
	}
}

func TestMachineBatchingPreservesResult(t *testing.T) {
	fw := i8051.NewAsm().
		MovRImm(0, 200).
		ClrA().
		Label("loop").
		AddAImm(1).
		DjnzR(0, "loop").
		Halt().
		Assemble()
	run := func(batch int) (byte, sysc.Time) {
		sim := sysc.NewSimulator()
		defer sim.Shutdown()
		cpu := i8051.New(fw)
		i8051.NewMachine(sim, cpu, sysc.Us, batch)
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return cpu.A(), sim.Now()
	}
	a1, t1 := run(1)
	a2, t2 := run(50)
	if a1 != a2 || a1 != 200 {
		t.Fatalf("batching changed result: %d vs %d", a1, a2)
	}
	if t1 != t2 {
		t.Fatalf("batching changed total time: %v vs %v", t1, t2)
	}
}

func TestMachineSharesBFMXRAM(t *testing.T) {
	// Firmware stores 0xA5 at XRAM 0x0042 through the BFM's memory
	// controller (the shared bus of the co-simulation platform).
	fw := i8051.NewAsm().
		MovDPTR(0x0042).
		MovAImm(0xA5).
		MovxDPTRA().
		Halt().
		Assemble()
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	b := bfm.New(sim, nil, bfm.DefaultConfig())
	cpu := i8051.New(fw)
	cpu.XRAM = b.Mem
	i8051.NewMachine(sim, cpu, b.MachineCycle(), 1)
	// The BFM's RTC free-runs, so use a bounded horizon (Run would never
	// return).
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if got := b.Mem.Read(0x0042); got != 0xA5 {
		t.Fatalf("xram = %#x", got)
	}
}

func TestMachineDoneEvent(t *testing.T) {
	fw := i8051.NewAsm().MovAImm(1).Halt().Assemble()
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	cpu := i8051.New(fw)
	m := i8051.NewMachine(sim, cpu, sysc.Us, 1)
	fired := false
	sim.SpawnMethod("watch", func() { fired = true }, m.Done())
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("done event not fired")
	}
}
