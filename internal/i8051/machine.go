package i8051

import (
	"repro/internal/sysc"
)

// Machine couples the ISS to the sysc simulation clock: the CPU executes as
// a simulation process, advancing simulated time by machine-cycle × cycles
// for every instruction — the "ISS level" of co-simulation the paper's
// conclusion compares RTOS-level simulation against.
type Machine struct {
	CPU *CPU

	sim          *sysc.Simulator
	machineCycle sysc.Time
	batch        int // instructions executed per simulation event
	thread       *sysc.Thread
	done         *sysc.Event
}

// NewMachine spawns the CPU as a simulation process. machineCycle is the
// duration of one machine cycle (1 us on a 12 MHz 8051); batch sets how
// many instructions execute per simulation event (1 = fully interleaved,
// larger batches trade interleaving granularity for speed, like a
// quantum-keeper in TLM).
func NewMachine(sim *sysc.Simulator, cpu *CPU, machineCycle sysc.Time, batch int) *Machine {
	if machineCycle <= 0 {
		machineCycle = sysc.Us
	}
	if batch < 1 {
		batch = 1
	}
	m := &Machine{CPU: cpu, sim: sim, machineCycle: machineCycle, batch: batch,
		done: sim.NewEvent("i8051.done")}
	m.thread = sim.Spawn("i8051.cpu", m.run)
	return m
}

// Done returns an event notified when the CPU halts.
func (m *Machine) Done() *sysc.Event { return m.done }

// Halted reports whether the CPU reached its halt idiom.
func (m *Machine) Halted() bool { return m.CPU.Halted }

func (m *Machine) run(th *sysc.Thread) {
	for !m.CPU.Halted {
		cycles := 0
		for i := 0; i < m.batch && !m.CPU.Halted; i++ {
			cycles += m.CPU.Step()
		}
		if cycles > 0 {
			th.Wait(sysc.Time(cycles) * m.machineCycle)
		}
	}
	m.done.Notify()
}
