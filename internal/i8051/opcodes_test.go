package i8051

import "testing"

// Broad opcode-family coverage: every addressing-mode variant the main
// tests do not reach, executed as small programs with checked results.

func TestOpcodesMovDirAndRegForms(t *testing.T) {
	c := runProgram(t, NewAsm().
		Nop().
		MovDirImm(0x30, 0x5A).
		MovADir(0x30).    // A = [30]
		MovRDir(4, 0x30). // R4 = [30]
		MovDirR(0x31, 4). // [31] = R4
		Halt())
	if c.A() != 0x5A || c.R(4) != 0x5A || c.IRAM[0x31] != 0x5A {
		t.Fatalf("A=%02x R4=%02x [31]=%02x", c.A(), c.R(4), c.IRAM[0x31])
	}
}

func TestOpcodesIncDecForms(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x40, 9).
		IncDir(0x40). // [40] = 10
		MovRImm(3, 5).
		DecR(3). // R3 = 4
		MovAImm(7).
		DecA(). // A = 6
		MovDPTR(0x00FF).
		IncDPTR(). // DPTR = 0x0100
		// INC/DEC @Ri
		MovRImm(0, 0x40).
		emitOp(0x06). // INC @R0 -> [40] = 11
		emitOp(0x16). // DEC @R0 -> [40] = 10
		Halt())
	if c.IRAM[0x40] != 10 || c.R(3) != 4 || c.A() != 6 || c.DPTR() != 0x0100 {
		t.Fatalf("[40]=%d R3=%d A=%d DPTR=%04x", c.IRAM[0x40], c.R(3), c.A(), c.DPTR())
	}
}

// emitOp exposes raw emission for opcodes without a builder method.
func (a *Asm) emitOp(bs ...byte) *Asm { return a.emit(bs...) }

func TestOpcodesArithAddressingModes(t *testing.T) {
	// ADD A,dir / ADD A,@Ri / ADDC A,dir / SUBB A,Rn / SUBB A,dir / @Ri.
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 5).
		MovRImm(0, 0x30).
		MovAImm(1).
		AddADir(0x30). // A = 6
		emitOp(0x26).  // ADD A,@R0 -> 11
		ClrC().
		emitOp(0x35, 0x30). // ADDC A,dir -> 16
		MovRImm(2, 6).
		ClrC().
		SubbAR(2).          // 16-6 = 10
		emitOp(0x95, 0x30). // SUBB A,dir -> 5
		emitOp(0x96).       // SUBB A,@R0 -> 0
		Halt())
	if c.A() != 0 {
		t.Fatalf("A = %d, want 0", c.A())
	}
}

func TestOpcodesLogicAddressingModes(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 0b1010_1010).
		MovRImm(0, 0x30).
		MovRImm(5, 0b0000_1111).
		MovAImm(0b1111_0000).
		emitOp(0x45, 0x30). // ORL A,dir -> 1111 1010
		emitOp(0x56).       // ANL A,@R0 -> 1010 1010
		emitOp(0x6D).       // XRL A,R5  -> 1010 0101
		OrlAImm(0b0100_0000).
		XrlAImm(0b0000_0001).
		Halt())
	if c.A() != 0b1110_0100 {
		t.Fatalf("A = %08b", c.A())
	}
}

func TestOpcodesLogicOnDirect(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 0b0011_0000).
		MovAImm(0b0000_0011).
		emitOp(0x42, 0x30).       // ORL dir,A   -> 0011 0011
		emitOp(0x43, 0x30, 0x80). // ORL dir,#   -> 1011 0011
		emitOp(0x52, 0x30).       // ANL dir,A   -> 0000 0011
		emitOp(0x53, 0x30, 0x01). // ANL dir,#   -> 0000 0001
		emitOp(0x62, 0x30).       // XRL dir,A   -> 0000 0010
		emitOp(0x63, 0x30, 0xFF). // XRL dir,#   -> 1111 1101
		Halt())
	if c.IRAM[0x30] != 0b1111_1101 {
		t.Fatalf("[30] = %08b", c.IRAM[0x30])
	}
}

func TestOpcodesXchXchd(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 0x12).
		MovAImm(0x34).
		XchADir(0x30). // A=0x12, [30]=0x34
		MovRImm(0, 0x30).
		emitOp(0xD6). // XCHD A,@R0: low nibbles swap -> A=0x14, [30]=0x32
		Halt())
	if c.A() != 0x14 || c.IRAM[0x30] != 0x32 {
		t.Fatalf("A=%02x [30]=%02x", c.A(), c.IRAM[0x30])
	}
}

func TestOpcodesRotatesRight(t *testing.T) {
	c := runProgram(t, NewAsm().MovAImm(0x01).RrA().Halt())
	if c.A() != 0x80 {
		t.Fatalf("RR: %02x", c.A())
	}
	c = runProgram(t, NewAsm().SetbC().MovAImm(0x02).RrcA().Halt())
	if c.A() != 0x81 || c.CY() {
		t.Fatalf("RRC: %02x CY=%v", c.A(), c.CY())
	}
}

func TestOpcodesConditionalJumps(t *testing.T) {
	// JZ/JNZ/JC/JNC both taken and not taken.
	c := runProgram(t, NewAsm().
		ClrA().
		Jz("z1"). // taken
		MovRImm(7, 0xEE).
		Label("z1").
		MovAImm(1).
		Jz("bad"). // not taken
		Jnz("n1"). // taken
		Label("bad").
		MovRImm(7, 0xEE).
		Label("n1").
		SetbC().
		Jc("c1"). // taken
		MovRImm(7, 0xEE).
		Label("c1").
		ClrC().
		Jnc("ok"). // taken
		MovRImm(7, 0xEE).
		Label("ok").
		Halt())
	if c.R(7) == 0xEE {
		t.Fatal("a branch went the wrong way")
	}
}

func TestOpcodesAjmpAcall(t *testing.T) {
	// AJMP/ACALL with page-relative encoding: build manually within page 0.
	a := NewAsm()
	a.emitOp(0x01, 0x06) // AJMP 0x0006 (op 0x01: a10..a8=0)
	a.Org(0x0006)
	a.emitOp(0x11, 0x0B) // ACALL 0x000B
	a.MovRImm(6, 0x77).  // after return
				Halt()
	a.Org(0x000B)
	a.MovAImm(0x55).Ret()
	c := runProgram(t, a)
	if c.A() != 0x55 || c.R(6) != 0x77 {
		t.Fatalf("A=%02x R6=%02x", c.A(), c.R(6))
	}
}

func TestOpcodesJmpADPTR(t *testing.T) {
	a := NewAsm().
		MovDPTR(0x0010).
		MovAImm(0x02).
		emitOp(0x73) // JMP @A+DPTR -> 0x0012
	a.Org(0x0010)
	a.Halt() // 0x0010: wrong target, halts with R7=0
	a.Org(0x0012)
	a.MovRImm(7, 9).Halt()
	c := runProgram(t, a)
	if c.R(7) != 9 {
		t.Fatalf("R7 = %d", c.R(7))
	}
}

func TestOpcodesMovcPC(t *testing.T) {
	// MOVC A,@A+PC reads relative to the NEXT instruction's address.
	a := NewAsm().
		MovAImm(2).
		emitOp(0x83). // MOVC A,@A+PC; PC is at Halt (2 bytes), +2 = table[0]
		Halt()
	a.emitOp(0xDE, 0xAD) // table right after the halt
	c := runProgram(t, a)
	if c.A() != 0xDE {
		t.Fatalf("A = %02x", c.A())
	}
}

func TestOpcodesMovxRi(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovRImm(0, 0x20).
		MovAImm(0x99).
		emitOp(0xF2). // MOVX @R0,A -> XRAM[0x20]
		ClrA().
		emitOp(0xE2). // MOVX A,@R0
		Halt())
	if c.A() != 0x99 || c.XRAM.Read(0x20) != 0x99 {
		t.Fatalf("A=%02x", c.A())
	}
}

func TestOpcodesDjnzDirCjneForms(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 3).
		ClrA().
		Label("l").
		IncA().
		DjnzDir(0x30, "l"). // 3 iterations
		MovRImm(1, 5).
		CjneRImm(1, 5, "ne"). // equal: falls through
		MovRImm(7, 0xAA).
		Label("ne").
		Halt())
	if c.A() != 3 {
		t.Fatalf("DJNZ dir iterations: A = %d", c.A())
	}
	if c.R(7) != 0xAA {
		t.Fatal("equal CJNE Rn,#imm must fall through")
	}
}

func TestOpcodesCjneIndirect(t *testing.T) {
	c := runProgram(t, NewAsm().
		MovDirImm(0x30, 7).
		MovRImm(0, 0x30).
		MovRImm(7, 0).
		emitOp(0xB6, 0x07, 0x02). // CJNE @R0,#7,+2 — equal: no jump
		MovRImm(7, 1).            // executed
		Halt())
	if c.R(7) != 1 {
		t.Fatalf("R7 = %d (equal CJNE must not jump)", c.R(7))
	}
	// CJNE A,dir,rel with unequal values jumps.
	c = runProgram(t, NewAsm().
		MovDirImm(0x30, 9).
		MovAImm(4).
		emitOp(0xB5, 0x30, 0x02). // CJNE A,dir,+2 — jumps over marker
		MovRImm(7, 0xEE).
		Halt())
	if c.R(7) == 0xEE {
		t.Fatal("unequal CJNE fell through")
	}
	if !c.CY() { // 4 < 9 sets carry
		t.Fatal("CJNE carry wrong")
	}
}

func TestOpcodesBitCarryLogic(t *testing.T) {
	// ORL/ANL C,bit and complemented forms + CPL C + JBC not-taken.
	c := runProgram(t, NewAsm().
		ClrBit(0x08).
		ClrC().
		emitOp(0x72, 0x08). // ORL C,bit(0) -> 0
		emitOp(0xA0, 0x08). // ORL C,/bit(0) -> 1
		emitOp(0x82, 0x08). // ANL C,bit(0) -> 0
		CplC().             // 1
		emitOp(0xB0, 0x08). // ANL C,/bit(0) -> 1
		Jbc(0x08, "bad").   // bit clear: not taken
		MovBitC(0x09).      // bit 0x09 <- C(1)
		Halt().
		Label("bad").
		ClrA().
		Halt())
	if !c.readBit(0x09) {
		t.Fatal("bit-carry pipeline wrong")
	}
}

func TestOpcodesDAAWithCarryChain(t *testing.T) {
	// BCD 99 + 01 = 100: A=0x00, CY=1.
	c := runProgram(t, NewAsm().
		MovAImm(0x99).
		AddAImm(0x01).
		DaA().
		Halt())
	if c.A() != 0x00 || !c.CY() {
		t.Fatalf("DA: A=%02x CY=%v", c.A(), c.CY())
	}
}

func TestOpcodesReservedA5(t *testing.T) {
	c := New([]byte{0xA5, 0x80, 0xFE})
	c.Run(10)
	if !c.Halted || c.Instrs != 2 {
		t.Fatalf("reserved opcode handling: %v", c)
	}
}

func TestCPUStringer(t *testing.T) {
	c := New(NewAsm().MovAImm(1).Halt().Assemble())
	c.Run(5)
	if s := c.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestAllOpcodesDecode(t *testing.T) {
	// Every opcode must decode without panicking when fed zero operands.
	for op := 0; op <= 0xFF; op++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("opcode %#02x panicked: %v", op, r)
				}
			}()
			prog := []byte{byte(op), 0, 0, 0}
			c := New(prog)
			c.SFR[SfrSP-0x80] = 0x20 // keep stack ops in bounds
			c.Step()
		}()
	}
}
